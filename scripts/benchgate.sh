#!/usr/bin/env bash
# Benchmark regression gate for the simulation hot paths.
#
# Runs the guarded benchmarks and compares each ns/op against the
# checked-in baseline (testdata/bench_baseline.txt), failing on a
# regression beyond the slack. The guarded set:
#
#   BenchmarkRaceDetectorOverhead/without-detector  - the no-sink hot path
#     (an empty Config.Sinks run must keep paying nothing for the event
#     stream; the PR-1 optimized baseline was ~31 µs, ~38 µs with the
#     detector attached)
#   BenchmarkRaceDetectorOverhead/with-detector     - one native sink
#   BenchmarkDetectorPipeline/single-pass           - full pipeline fan-out
#   BenchmarkFaultInjection/off                     - fault hooks disabled
#     (the nil-injector check at every instrumented primitive op must cost
#     nothing when nobody asked for chaos)
#
# Refresh the baseline on the reference machine with:
#   scripts/benchgate.sh -update
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=testdata/bench_baseline.txt
SLACK_PCT=${BENCHGATE_SLACK_PCT:-15}
BENCHES='BenchmarkRaceDetectorOverhead|BenchmarkDetectorPipeline/single-pass|BenchmarkFaultInjection/off'

raw=$(go test -bench "$BENCHES" -benchtime 1000x -count 6 -run '^$' . | grep -E '^Benchmark')

# Take the fastest of the counts per benchmark (the least-noise estimate)
# and strip the -GOMAXPROCS suffix so names are stable across machines.
current=$(echo "$raw" | awk '
  { name=$1; sub(/-[0-9]+$/, "", name); ns=$3+0
    if (!(name in best) || ns < best[name]) best[name]=ns }
  END { for (n in best) printf "%s %.1f\n", n, best[n] }' | sort)

if [[ "${1:-}" == "-update" ]]; then
  {
    echo "# ns/op baseline for scripts/benchgate.sh (fastest of 6x1000 iterations)."
    echo "# Regenerate on the reference machine with: scripts/benchgate.sh -update"
    echo "$current"
  } > "$BASELINE"
  echo "benchgate: baseline updated:"
  cat "$BASELINE"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "benchgate: missing $BASELINE (run scripts/benchgate.sh -update)" >&2
  exit 1
fi

echo "benchgate: current (fastest of 6 counts):"
echo "$current"
fail=0
while read -r name base; do
  [[ "$name" == \#* || -z "$name" ]] && continue
  cur=$(echo "$current" | awk -v n="$name" '$1==n {print $2}')
  if [[ -z "$cur" ]]; then
    echo "benchgate: FAIL $name: benchmark missing from run" >&2
    fail=1
    continue
  fi
  verdict=$(awk -v c="$cur" -v b="$base" -v s="$SLACK_PCT" '
    BEGIN { limit = b * (100 + s) / 100
            if (c > limit) printf "FAIL %.1f ns/op vs baseline %.1f (limit %.1f)", c, b, limit
            else           printf "ok   %.1f ns/op vs baseline %.1f (limit %.1f)", c, b, limit }')
  echo "benchgate: $verdict  $name"
  [[ "$verdict" == FAIL* ]] && fail=1
done < "$BASELINE"
exit $fail
