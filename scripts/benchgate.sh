#!/usr/bin/env bash
# Benchmark regression gate for the simulation hot paths.
#
# Runs the guarded benchmarks and compares each ns/op against the
# checked-in baseline (testdata/bench_baseline.txt), failing on a
# regression beyond the slack; allocs/op is gated strictly (allocation
# counts are deterministic per op, so any increase is a real regression —
# and the pooled lanes must hold their 0). The guarded set:
#
#   BenchmarkRaceDetectorOverhead/without-detector  - the no-sink hot path
#     (an empty Config.Sinks run must keep paying nothing for the event
#     stream; the PR-1 optimized baseline was ~31 µs, ~38 µs with the
#     detector attached)
#   BenchmarkRaceDetectorOverhead/with-detector     - one native sink
#   BenchmarkDetectorPipeline/single-pass           - full pipeline fan-out
#   BenchmarkFaultInjection/off                     - fault hooks disabled
#     (the nil-injector check at every instrumented primitive op must cost
#     nothing when nobody asked for chaos)
#   BenchmarkPooledRun/no-sink                      - RunPool steady state
#     (recycled runtime on the same workload: must stay 0 allocs/op and
#     beat the fresh-run lane by the ISSUE-6 margin)
#   BenchmarkPooledRun/with-detector                - pooled + one sink
#   BenchmarkTraceArchive/record                    - judged run + Recorder
#     (the archive-while-sweeping lane; gated so codec changes cannot
#     silently tax recording sweeps)
#   BenchmarkTraceArchive/replay                    - decode + re-judge
#     (RunAllTrace over an archived frame — the offline verdict path)
#   BenchmarkEngineSubmit/cold                      - full engine execution
#     (submit, worker dispatch, pooled 5-run sweep, render)
#   BenchmarkEngineSubmit/warm                      - store hit end to end
#     (the daemon's steady-state answer path: key, Get, decode, ticket)
#   BenchmarkEngineSubmit/coalesced                 - attach to an in-flight
#     ticket (the dedup fast path under submission storms)
#   BenchmarkStoreGet                               - raw verdict-store hit
#     (must stay 0 allocs/op: the warm daemon rides it on every request)
#
# The recorder-OFF guarantee rides on the existing rows: recording is a
# plain event.Sink behind Config.Sinks, so with no RecordDir the hot path
# is exactly the no-sink/without-detector lane gated above — any recorder
# cost leaking into it shows up as a regression there.
#
# Refresh the baseline on the reference machine with:
#   scripts/benchgate.sh -update
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=testdata/bench_baseline.txt
SLACK_PCT=${BENCHGATE_SLACK_PCT:-15}
BENCHES='BenchmarkRaceDetectorOverhead|BenchmarkDetectorPipeline/single-pass|BenchmarkFaultInjection/off|BenchmarkPooledRun|BenchmarkTraceArchive/(record|replay)$|BenchmarkEngineSubmit/(cold|warm|coalesced)$|BenchmarkStoreGet$'

raw=$(go test -bench "$BENCHES" -benchtime 1000x -count 6 -benchmem -run '^$' . | grep -E '^Benchmark')

# Take the fastest ns/op and the smallest allocs/op of the counts per
# benchmark (the least-noise estimates) and strip the -GOMAXPROCS suffix so
# names are stable across machines.
current=$(echo "$raw" | awk '
  { name=$1; sub(/-[0-9]+$/, "", name)
    ns=-1; al=-1
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i + 0
      if ($(i+1) == "allocs/op") al = $i + 0
    }
    if (!(name in bestns) || ns < bestns[name]) bestns[name] = ns
    if (!(name in bestal) || al < bestal[name]) bestal[name] = al }
  END { for (n in bestns) printf "%s %.1f %d\n", n, bestns[n], bestal[n] }' | sort)

if [[ "${1:-}" == "-update" ]]; then
  {
    echo "# 'name ns/op allocs/op' baseline for scripts/benchgate.sh"
    echo "# (fastest / smallest of 6x1000 iterations)."
    echo "# Regenerate on the reference machine with: scripts/benchgate.sh -update"
    echo "$current"
  } > "$BASELINE"
  echo "benchgate: baseline updated:"
  cat "$BASELINE"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "benchgate: missing $BASELINE (run scripts/benchgate.sh -update)" >&2
  exit 1
fi

echo "benchgate: current (fastest of 6 counts):"
echo "$current"
fail=0
while read -r name base basealloc; do
  [[ "$name" == \#* || -z "$name" ]] && continue
  cur=$(echo "$current" | awk -v n="$name" '$1==n {print $2}')
  curalloc=$(echo "$current" | awk -v n="$name" '$1==n {print $3}')
  if [[ -z "$cur" ]]; then
    echo "benchgate: FAIL $name: benchmark missing from run" >&2
    fail=1
    continue
  fi
  verdict=$(awk -v c="$cur" -v b="$base" -v s="$SLACK_PCT" '
    BEGIN { limit = b * (100 + s) / 100
            if (c > limit) printf "FAIL %.1f ns/op vs baseline %.1f (limit %.1f)", c, b, limit
            else           printf "ok   %.1f ns/op vs baseline %.1f (limit %.1f)", c, b, limit }')
  echo "benchgate: $verdict  $name"
  [[ "$verdict" == FAIL* ]] && fail=1
  # Older baselines carry no allocs column; the ns gate still applies.
  if [[ -n "${basealloc:-}" ]]; then
    if (( curalloc > basealloc )); then
      echo "benchgate: FAIL $curalloc allocs/op vs baseline $basealloc  $name"
      fail=1
    else
      echo "benchgate: ok   $curalloc allocs/op vs baseline $basealloc  $name"
    fi
  fi
done < "$BASELINE"
exit $fail
