#!/usr/bin/env bash
# Checkpoint/resume smoke: kill a detector sweep mid-flight with SIGINT,
# resume it from its checkpoint, and require the resumed fold to be
# identical to an uninterrupted sweep (modulo wall time, which is
# deliberately excluded from the deterministic fold).
#
# Tune with RESUME_KERNEL / RESUME_RUNS / RESUME_DETS / RESUME_INT_AFTER.
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL=${RESUME_KERNEL:-kubernetes-finishreq}
RUNS=${RESUME_RUNS:-30000}
DETS=${RESUME_DETS:-race,leak}
INT_AFTER=${RESUME_INT_AFTER:-0.4}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
BIN=$workdir/godetect
go build -o "$BIN" ./cmd/godetect
cp=$workdir/sweep.json

echo "resume-smoke: reference sweep ($KERNEL fixed, $RUNS runs, $DETS)"
"$BIN" -kernel "$KERNEL" -fixed -with "$DETS" -runs "$RUNS" > "$workdir/ref.out"

echo "resume-smoke: interrupted sweep (SIGINT after ${INT_AFTER}s)"
timeout -s INT "$INT_AFTER" \
  "$BIN" -kernel "$KERNEL" -fixed -with "$DETS" -runs "$RUNS" -resume "$cp" \
  > "$workdir/leg1.out" || true

if [[ ! -s "$cp" ]]; then
  echo "resume-smoke: FAIL — interrupted leg left no checkpoint" >&2
  cat "$workdir/leg1.out" >&2
  exit 1
fi
if ! grep -q "incomplete" "$workdir/leg1.out"; then
  echo "resume-smoke: note — sweep outran the signal (machine too fast); resume path still exercised"
fi

echo "resume-smoke: resuming from checkpoint"
"$BIN" -kernel "$KERNEL" -fixed -with "$DETS" -runs "$RUNS" -resume "$cp" > "$workdir/leg2.out"

# The per-detector lines end with live-process wall time; everything else
# (verdicts, fired runs, event counts) is part of the deterministic fold.
# Trailing whitespace goes too: the fixed-width columns pad a µs-range time
# differently from a ms-range one.
norm() { awk '{ if ($0 ~ / events /) sub(/[[:space:]][^[:space:]]+$/, ""); sub(/[[:space:]]+$/, ""); print }' "$1"; }
if ! diff <(norm "$workdir/ref.out") <(norm "$workdir/leg2.out"); then
  echo "resume-smoke: FAIL — resumed fold differs from the uninterrupted sweep" >&2
  exit 1
fi
echo "resume-smoke: ok — resumed fold matches the uninterrupted sweep"
