#!/usr/bin/env bash
# Record→replay equivalence smoke for the trace archive path.
#
# Three gates, all on real godetect processes:
#
#   1. A recorded live sweep and its offline replay must write byte-identical
#      checkpoint files (same verdicts, same per-detector event counts, same
#      fold — wall time is never checkpointed).
#   2. The same must hold for a fault-injected sweep: FaultInject events and
#      the archived fault plans round-trip through the codec.
#   3. An archive recorded under ONE detector must re-judge under the full
#      registry to exactly what a live full-registry sweep produces — the
#      "new detector over old executions" workflow the archive exists for.
#
# Usage: scripts/replay_smoke.sh  (REPLAY_RUNS and REPLAY_KERNEL override
# the sweep size and subject kernel).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=${REPLAY_RUNS:-100}
KERNEL=${REPLAY_KERNEL:-docker-abba-order}
DETS="race,vet,leak"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "replay_smoke: building godetect"
go build -o "$tmp/godetect" ./cmd/godetect

run() { "$tmp/godetect" "$@" > /dev/null; }

echo "replay_smoke: [1/3] live sweep ($KERNEL, $RUNS runs) recorded to an archive"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
    -record "$tmp/archive" -resume "$tmp/live.ckpt"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
    -replay "$tmp/archive" -resume "$tmp/replay.ckpt"
cmp "$tmp/live.ckpt" "$tmp/replay.ckpt" || {
  echo "replay_smoke: FAIL: offline replay checkpoint differs from the live sweep's" >&2
  exit 1
}

echo "replay_smoke: [2/3] fault-injected sweep archives and replays identically"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 -faults 2 \
    -record "$tmp/archive-inj" -resume "$tmp/live-inj.ckpt"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 -faults 2 \
    -replay "$tmp/archive-inj" -resume "$tmp/replay-inj.ckpt"
cmp "$tmp/live-inj.ckpt" "$tmp/replay-inj.ckpt" || {
  echo "replay_smoke: FAIL: fault-injected replay checkpoint differs" >&2
  exit 1
}

echo "replay_smoke: [3/3] archive recorded under 'race' re-judged by the full set"
run -kernel "$KERNEL" -with race -runs "$RUNS" -seed 1 -record "$tmp/archive-old"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 -resume "$tmp/live-full.ckpt"
run -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
    -replay "$tmp/archive-old" -resume "$tmp/replay-full.ckpt"
cmp "$tmp/live-full.ckpt" "$tmp/replay-full.ckpt" || {
  echo "replay_smoke: FAIL: re-judging with detectors unknown at record time diverged from live" >&2
  exit 1
}

echo "replay_smoke: PASS (live sweep, fault-injected sweep, and new-detector re-judge all fold byte-identically)"
