#!/usr/bin/env bash
# Sharded-sweep driver: split one detector sweep's seed range across N
# godetect processes (one per shard, running concurrently), fold the shard
# checkpoints back into the serial checkpoint, and require that fold to be
# byte-identical to an uninterrupted single-process sweep of the same
# options — the proof that sharding changes the wall clock and nothing else.
#
# Tune with SHARD_KERNEL / SHARD_RUNS / SHARD_DETS / SHARD_N.
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL=${SHARD_KERNEL:-grpc-lost-update}
RUNS=${SHARD_RUNS:-10000}
DETS=${SHARD_DETS:-race,leak}
N=${SHARD_N:-4}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
BIN=$workdir/godetect
go build -o "$BIN" ./cmd/godetect

echo "shardsweep: reference serial sweep ($KERNEL, $RUNS runs, $DETS)"
"$BIN" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" \
  -resume "$workdir/serial.ck" > "$workdir/serial.out"

echo "shardsweep: $N concurrent shard processes"
pids=()
for ((i = 0; i < N; i++)); do
  "$BIN" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" \
    -resume "$workdir/shard.ck" -shards "$N" -shard "$i" \
    > "$workdir/shard$i.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid"
done

echo "shardsweep: folding $N shard checkpoints"
"$BIN" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" \
  -resume "$workdir/shard.ck" -shards "$N" -fold > "$workdir/fold.out"

if ! cmp -s "$workdir/serial.ck" "$workdir/shard.ck"; then
  echo "shardsweep: FAIL — folded checkpoint differs from the serial sweep's" >&2
  exit 1
fi

# The per-detector lines end with live-process wall time, and the fold's
# header names its mode; everything else is part of the deterministic fold.
norm() {
  awk '{ if ($0 ~ / events /) sub(/[[:space:]][^[:space:]]+$/, "");
         sub(/, fold of [0-9]+ shards,/, ",");
         sub(/[[:space:]]+$/, ""); print }' "$1"
}
if ! diff <(norm "$workdir/serial.out") <(norm "$workdir/fold.out"); then
  echo "shardsweep: FAIL — folded report differs from the serial sweep" >&2
  exit 1
fi
echo "shardsweep: ok — $N shards folded byte-identical to the serial sweep"
