#!/usr/bin/env bash
# Daemon-mode smoke for the service layer (store + engine + daemon API).
#
# Five gates, all on real godetect processes over a unix socket:
#
#   1. A sweep submitted through `-remote` prints byte-identical output to
#      the one-shot CLI computing the same job in-process.
#   2. Submitting it again is a warm cache hit: the daemon's stats show one
#      execution, one hit — and the bytes still match.
#   3. SIGKILL the daemon (no drain, no sync courtesy): the verdict store
#      must reopen cleanly — crash-safety is the store's job, not the
#      shutdown path's.
#   4. A restarted daemon over the same store file serves the verdict from
#      cache (zero executions) and the bytes still match the one-shot CLI.
#   5. SIGTERM drains gracefully: the daemon exits 0 on its own.
#
# Usage: scripts/serve_smoke.sh  (SERVE_RUNS and SERVE_KERNEL override the
# sweep size and subject kernel).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=${SERVE_RUNS:-100}
KERNEL=${SERVE_KERNEL:-docker-abba-order}
DETS="race,vet,leak,cycle"

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve_smoke: building godetect"
go build -o "$tmp/godetect" ./cmd/godetect

SOCK="unix://$tmp/godetect.sock"
STORE="$tmp/verdicts.db"

start_daemon() {
  "$tmp/godetect" serve -addr "$SOCK" -store "$STORE" 2>> "$tmp/serve.log" &
  daemon_pid=$!
  disown "$daemon_pid" 2>/dev/null || true
  for _ in $(seq 1 100); do
    if "$tmp/godetect" -remote "$SOCK" -stats > /dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "serve_smoke: FAIL: daemon did not become ready" >&2
  cat "$tmp/serve.log" >&2
  exit 1
}

stat_of() { # stat_of <field>
  "$tmp/godetect" -remote "$SOCK" -stats | python3 -c "import json,sys; print(json.load(sys.stdin)['$1'])"
}

echo "serve_smoke: [1/5] daemon-served sweep matches the one-shot CLI byte for byte"
"$tmp/godetect" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 > "$tmp/oneshot.txt"
start_daemon
"$tmp/godetect" -remote "$SOCK" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 > "$tmp/cold.txt"
cmp "$tmp/oneshot.txt" "$tmp/cold.txt" || {
  echo "serve_smoke: FAIL: daemon cold output differs from one-shot CLI" >&2
  diff "$tmp/oneshot.txt" "$tmp/cold.txt" >&2 || true
  exit 1
}

echo "serve_smoke: [2/5] resubmission is a warm cache hit"
"$tmp/godetect" -remote "$SOCK" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 > "$tmp/warm.txt"
cmp "$tmp/oneshot.txt" "$tmp/warm.txt" || {
  echo "serve_smoke: FAIL: daemon warm output differs from one-shot CLI" >&2
  exit 1
}
executed=$(stat_of executed); hits=$(stat_of cacheHits)
if [ "$executed" != 1 ] || [ "$hits" != 1 ]; then
  echo "serve_smoke: FAIL: stats show executed=$executed cacheHits=$hits, want 1/1" >&2
  exit 1
fi

echo "serve_smoke: [3/5] SIGKILL the daemon; the store must survive unsynced death"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "serve_smoke: [4/5] restarted daemon serves the verdict from the persisted cache"
start_daemon
"$tmp/godetect" -remote "$SOCK" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 > "$tmp/revived.txt"
cmp "$tmp/oneshot.txt" "$tmp/revived.txt" || {
  echo "serve_smoke: FAIL: post-restart output differs from one-shot CLI" >&2
  exit 1
}
executed=$(stat_of executed); hits=$(stat_of cacheHits)
if [ "$executed" != 0 ] || [ "$hits" != 1 ]; then
  echo "serve_smoke: FAIL: restart stats show executed=$executed cacheHits=$hits, want 0/1 (cache did not survive)" >&2
  exit 1
fi

echo "serve_smoke: [5/5] SIGTERM drains gracefully"
kill -TERM "$daemon_pid"
drained=1
for _ in $(seq 1 100); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then drained=0; break; fi
  sleep 0.1
done
if [ "$drained" != 0 ]; then
  echo "serve_smoke: FAIL: daemon still alive 10s after SIGTERM" >&2
  exit 1
fi
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "serve_smoke: PASS (cold=one-shot, warm hit, SIGKILL-crash survival, restart from cache, graceful drain)"
