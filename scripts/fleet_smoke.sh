#!/usr/bin/env bash
# Chaos smoke for the fleet scheduler (multi-daemon sharded sweeps).
#
# Four gates, all on real godetect processes over unix sockets:
#
#   1. A healthy 3-daemon fleet folds a sharded sweep byte-identically to a
#      serial run: same canonical text (modulo the fold label), same merged
#      checkpoint bytes under cmp.
#   2. SIGKILL one daemon mid-sweep: the fleet re-dispatches its shards to
#      the survivors (stolen counter > 0), does not degrade to local
#      execution, and the fold is STILL byte-identical to serial.
#   3. Every daemon unreachable: the sweep completes on the local fallback
#      with the structured degraded report and the pinned exit code 3 — and
#      even the degraded fold matches serial byte for byte.
#   4. The degraded report is structured: degraded=true and every shard
#      accounted to the local pseudo-daemon.
#
# Usage: scripts/fleet_smoke.sh  (FLEET_RUNS and FLEET_KERNEL override the
# sweep size and subject kernel).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=${FLEET_RUNS:-600000}
KERNEL=${FLEET_KERNEL:-docker-abba-order}
DETS="cycle"
SHARDS=6

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "fleet_smoke: building godetect"
go build -o "$tmp/godetect" ./cmd/godetect

start_daemon() { # start_daemon <index>
  local sock="unix://$tmp/d$1.sock"
  "$tmp/godetect" serve -addr "$sock" 2>> "$tmp/serve$1.log" &
  pids[$1]=$!
  for _ in $(seq 1 100); do
    if "$tmp/godetect" -remote "$sock" -stats > /dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "fleet_smoke: FAIL: daemon $1 did not become ready" >&2
  cat "$tmp/serve$1.log" >&2
  exit 1
}

HOSTS="unix://$tmp/d1.sock,unix://$tmp/d2.sock,unix://$tmp/d3.sock"

# The fleet's stderr mixes scheduler log lines with one JSON report block;
# the report starts at the first '{'.
report_field() { # report_field <stderr-file> <python-expr over d>
  python3 - "$1" <<EOF
import json, sys
txt = open(sys.argv[1]).read()
d = json.loads(txt[txt.index('{'):])
print($2)
EOF
}

check_fold() { # check_fold <txt> <ck> <label>
  sed "s/, fold of $SHARDS shards//" "$1" > "$1.norm"
  cmp -s "$tmp/serial.txt" "$1.norm" || {
    echo "fleet_smoke: FAIL: $3 fold text differs from serial" >&2
    diff "$tmp/serial.txt" "$1.norm" >&2 || true
    exit 1
  }
  cmp "$tmp/serial.ck" "$2" || {
    echo "fleet_smoke: FAIL: $3 merged checkpoint differs from serial checkpoint" >&2
    exit 1
  }
}

echo "fleet_smoke: serial baseline ($RUNS runs)"
"$tmp/godetect" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
  -resume "$tmp/serial.ck" > "$tmp/serial.txt"

echo "fleet_smoke: [1/4] healthy 3-daemon fleet folds byte-identically to serial"
start_daemon 1; start_daemon 2; start_daemon 3
"$tmp/godetect" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
  -fleet "$HOSTS" -shards "$SHARDS" -resume "$tmp/healthy.ck" \
  > "$tmp/healthy.txt" 2> "$tmp/healthy.err" || {
  echo "fleet_smoke: FAIL: healthy fleet run exited $?" >&2
  cat "$tmp/healthy.err" >&2
  exit 1
}
check_fold "$tmp/healthy.txt" "$tmp/healthy.ck" "healthy fleet"
if [ "$(report_field "$tmp/healthy.err" "d['degraded']")" != "False" ]; then
  echo "fleet_smoke: FAIL: healthy fleet reported degraded" >&2
  exit 1
fi

echo "fleet_smoke: [2/4] SIGKILL one daemon mid-sweep; survivors steal its shards"
"$tmp/godetect" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
  -fleet "$HOSTS" -shards "$SHARDS" -resume "$tmp/chaos.ck" \
  -probe-interval 100ms \
  > "$tmp/chaos.txt" 2> "$tmp/chaos.err" &
fleet_pid=$!
# Wait for the first shard checkpoint to land, proving the sweep is in
# flight, then kill a daemon with no courtesy whatsoever.
for _ in $(seq 1 200); do
  if ls "$tmp"/chaos.ck.shard* > /dev/null 2>&1; then break; fi
  sleep 0.05
done
if ! ls "$tmp"/chaos.ck.shard* > /dev/null 2>&1; then
  echo "fleet_smoke: FAIL: no shard checkpoint appeared within 10s" >&2
  kill "$fleet_pid" 2>/dev/null || true
  exit 1
fi
kill -9 "${pids[1]}"
wait "${pids[1]}" 2>/dev/null || true
unset 'pids[1]'
if ! wait "$fleet_pid"; then
  echo "fleet_smoke: FAIL: chaos fleet run failed" >&2
  cat "$tmp/chaos.err" >&2
  exit 1
fi
check_fold "$tmp/chaos.txt" "$tmp/chaos.ck" "post-SIGKILL fleet"
stolen=$(report_field "$tmp/chaos.err" "sum(x['stolen'] for x in d['daemons'])")
if [ "$stolen" -lt 1 ]; then
  echo "fleet_smoke: FAIL: no shard was re-dispatched after the SIGKILL (stolen=$stolen)" >&2
  cat "$tmp/chaos.err" >&2
  exit 1
fi
if [ "$(report_field "$tmp/chaos.err" "d['degraded']")" != "False" ]; then
  echo "fleet_smoke: FAIL: losing one of three daemons should not degrade to local" >&2
  cat "$tmp/chaos.err" >&2
  exit 1
fi

echo "fleet_smoke: [3/4] every daemon down: local fallback completes, exit code 3"
for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
for p in "${pids[@]:-}"; do wait "$p" 2>/dev/null || true; done
pids=()
rc=0
"$tmp/godetect" -kernel "$KERNEL" -with "$DETS" -runs "$RUNS" -seed 1 \
  -fleet "$HOSTS" -shards "$SHARDS" -resume "$tmp/dark.ck" \
  -probe-interval 100ms \
  > "$tmp/dark.txt" 2> "$tmp/dark.err" || rc=$?
if [ "$rc" != 3 ]; then
  echo "fleet_smoke: FAIL: all-daemons-down run exited $rc, want the pinned degraded code 3" >&2
  cat "$tmp/dark.err" >&2
  exit 1
fi
check_fold "$tmp/dark.txt" "$tmp/dark.ck" "degraded fleet"

echo "fleet_smoke: [4/4] degraded report is structured"
if [ "$(report_field "$tmp/dark.err" "d['degraded']")" != "True" ]; then
  echo "fleet_smoke: FAIL: degraded run did not report degraded=true" >&2
  exit 1
fi
local_done=$(report_field "$tmp/dark.err" "[x for x in d['daemons'] if x['name']=='local'][0]['completed']")
if [ "$local_done" != "$SHARDS" ]; then
  echo "fleet_smoke: FAIL: local fallback completed $local_done of $SHARDS shards" >&2
  exit 1
fi

echo "fleet_smoke: PASS (healthy fold=serial, SIGKILL survived with steals, blackout degraded to local with exit 3)"
