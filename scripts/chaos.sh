#!/usr/bin/env bash
# Chaos smoke lane: every kernel, buggy and fixed, under benign fault
# injection (-faults). The gate is the yield-injection soundness argument
# made executable:
#
#   - fixed variants MUST stay quiet under any amount of benign injection
#     (an extra yield at an existing yield point only reaches states
#     ordinary scheduling already reaches) — godetect exits non-zero when a
#     fixed kernel fires, which fails this script;
#   - buggy variants are swept under the same injection as a crash/panic
#     smoke for the injector plumbing itself.
#
# Tune with CHAOS_RUNS / CHAOS_FAULTS / CHAOS_FAULTSEED.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=${CHAOS_RUNS:-40}
FAULTS=${CHAOS_FAULTS:-3}
FAULTSEED=${CHAOS_FAULTSEED:-1}

BIN=$(mktemp -d)/godetect
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/godetect

echo "chaos: sweeping buggy variants ($RUNS runs, $FAULTS faults/run, faultseed $FAULTSEED)"
"$BIN" -all -runs "$RUNS" -faults "$FAULTS" -faultseed "$FAULTSEED" > /dev/null

echo "chaos: sweeping fixed variants (must stay quiet under injection)"
if ! out=$("$BIN" -all -fixed -runs "$RUNS" -faults "$FAULTS" -faultseed "$FAULTSEED"); then
  echo "$out"
  echo "chaos: FAIL — a fixed kernel fired under benign fault injection (unsound injector or broken fix)" >&2
  exit 1
fi

echo "chaos: ok — all fixed kernels quiet under $FAULTS benign faults/run"
