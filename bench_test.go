package goconcbugs

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations DESIGN.md calls out. Each benchmark prints its table or figure
// once (so `go test -bench` regenerates the paper's rows) and then times
// the underlying computation.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"goconcbugs/internal/core"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/engine"
	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/race"
	"goconcbugs/internal/rpc"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/stats"
	"goconcbugs/internal/store"
	"goconcbugs/internal/trace"
	"goconcbugs/internal/vet"
)

var printGates sync.Map

// printOnce emits the regenerated artifact a single time per benchmark,
// regardless of how many times the harness re-enters it.
func printOnce(key string, f func()) {
	once, _ := printGates.LoadOrStore(key, &sync.Once{})
	once.(*sync.Once).Do(f)
}

func study() *core.Study {
	s := core.NewStudy()
	s.SourceRoot = "testdata/apps"
	return s
}

func BenchmarkTable1(b *testing.B) {
	s := study()
	printOnce("t1", func() { fmt.Print("\n", s.Table1()) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Table1()
	}
}

func BenchmarkTable2(b *testing.B) {
	s := study()
	printOnce("t2", func() {
		t, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print("\n", t)
	})
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := study()
	printOnce("t3", func() { fmt.Print("\n", s.Table3()) })
	for i := 0; i < b.N; i++ {
		cmp := rpc.Compare(rpc.Workloads()[0])
		b.ReportMetric(cmp.ServerCreateRatio, "create-ratio")
	}
}

func BenchmarkTable4(b *testing.B) {
	s := study()
	printOnce("t4", func() {
		t, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print("\n", t)
	})
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	s := study()
	printOnce("t5", func() { fmt.Print("\n", s.Table5()) })
	for i := 0; i < b.N; i++ {
		_ = s.Table5()
	}
}

func BenchmarkTable6(b *testing.B) {
	s := study()
	printOnce("t6", func() { fmt.Print("\n", s.Table6()) })
	for i := 0; i < b.N; i++ {
		_ = s.Table6()
	}
}

func BenchmarkTable7(b *testing.B) {
	s := study()
	printOnce("t7", func() {
		t, lifts := s.Table7()
		fmt.Print("\n", t)
		for i, e := range lifts {
			if i >= 2 {
				break
			}
			fmt.Printf("lift(%s, %s) = %.2f\n", e.Row, e.Col, e.Lift)
		}
	})
	for i := 0; i < b.N; i++ {
		_, lifts := s.Table7()
		b.ReportMetric(lifts[0].Lift, "top-lift")
	}
}

func BenchmarkTable8(b *testing.B) {
	s := study()
	printOnce("t8", func() {
		t, _ := s.Table8()
		fmt.Print("\n", t)
	})
	for i := 0; i < b.N; i++ {
		_, res := s.Table8()
		b.ReportMetric(float64(res.BuiltinDetected), "builtin-detected")
		b.ReportMetric(float64(res.LeakDetected), "leak-detected")
	}
}

func BenchmarkTable9(b *testing.B) {
	s := study()
	printOnce("t9", func() { fmt.Print("\n", s.Table9()) })
	for i := 0; i < b.N; i++ {
		_ = s.Table9()
	}
}

func BenchmarkTable10(b *testing.B) {
	s := study()
	printOnce("t10", func() {
		t, _ := s.Table10()
		fmt.Print("\n", t)
	})
	for i := 0; i < b.N; i++ {
		_, _ = s.Table10()
	}
}

func BenchmarkTable11(b *testing.B) {
	s := study()
	printOnce("t11", func() {
		t, lifts := s.Table11()
		fmt.Print("\n", t)
		for _, e := range lifts {
			if e.Row == "chan" && e.Col == "Channel" {
				fmt.Printf("lift(chan, Channel) = %.2f\n", e.Lift)
			}
		}
	})
	for i := 0; i < b.N; i++ {
		_, _ = s.Table11()
	}
}

func BenchmarkTable12(b *testing.B) {
	s := study()
	s.Runs = 100
	printOnce("t12", func() {
		t, res := s.Table12()
		fmt.Print("\n", t)
		fmt.Printf("every-run detections: %d, rare detections: %d\n", res.EveryRun, res.Rare)
	})
	// Timing loop at the paper's protocol is expensive; use a smaller
	// per-iteration protocol for the timed part.
	s.Runs = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := s.Table12()
		b.ReportMetric(float64(res.TotalDetected), "detected")
	}
}

func BenchmarkFigure2_3(b *testing.B) {
	s := study()
	printOnce("f23", func() {
		for _, fig := range s.Figure2and3() {
			fmt.Print("\n", fig)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = s.Figure2and3()
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := study()
	printOnce("f4", func() {
		fmt.Print("\n", s.Figure4())
		for cause, m := range s.LifetimeMedians() {
			fmt.Printf("median lifetime (%s): %.0f days\n", cause, m)
		}
	})
	for i := 0; i < b.N; i++ {
		_ = s.Figure4()
	}
}

func BenchmarkSection7Detector(b *testing.B) {
	s := study()
	printOnce("s7", func() {
		findings, err := s.Section7Detector()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nSection 7 detector: %d candidate bugs in the application trees\n", len(findings))
		for _, f := range findings {
			fmt.Println(" ", f)
		}
	})
	for i := 0; i < b.N; i++ {
		if _, err := s.Section7Detector(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationShadowWords sweeps the race detector's shadow-word
// budget on a kernel engineered to need deep history.
func BenchmarkAblationShadowWords(b *testing.B) {
	k, _ := kernels.ByID("docker-apiversion")
	for _, words := range []int{1, 2, 4, 8, -1} {
		name := fmt.Sprintf("words=%d", words)
		if words < 0 {
			name = "words=unbounded"
		}
		b.Run(name, func(b *testing.B) {
			detected := 0
			for i := 0; i < b.N; i++ {
				st := explore.Run(k.Buggy, explore.Options{
					Runs: 10, BaseSeed: int64(i), Config: k.Config(0),
					WithRace: true, ShadowWords: words,
				})
				detected += st.RaceDetectedRuns
			}
			b.ReportMetric(float64(detected)/float64(b.N*10), "detect-rate")
		})
	}
}

// BenchmarkAblationBuiltinVsLeak compares the two blocking detectors over
// the Table 8 set.
func BenchmarkAblationBuiltinVsLeak(b *testing.B) {
	set := kernels.DeadlockStudySet()
	for i := 0; i < b.N; i++ {
		builtin, leak := 0, 0
		for _, k := range set {
			res := sim.Run(k.Config(1), k.Buggy)
			if (deadlock.Builtin{}).Detect(res).Detected {
				builtin++
			}
			if (deadlock.Leak{}).Detect(res).Detected || res.Outcome == sim.OutcomeBuiltinDeadlock {
				leak++
			}
		}
		b.ReportMetric(float64(builtin), "builtin")
		b.ReportMetric(float64(leak), "leak")
	}
}

// BenchmarkAblationBufferedFix measures Figure 1's patch: leak rate of the
// unbuffered (buggy) vs buffered (fixed) channel across 50 seeds.
func BenchmarkAblationBufferedFix(b *testing.B) {
	k, _ := kernels.ByID("kubernetes-finishreq")
	for i := 0; i < b.N; i++ {
		buggy := explore.Run(k.Buggy, explore.Options{Runs: 50, Config: k.Config(0)})
		fixed := explore.Run(k.Fixed, explore.Options{Runs: 50, Config: k.Config(0)})
		b.ReportMetric(buggy.ManifestRate(), "buggy-leak-rate")
		b.ReportMetric(fixed.ManifestRate(), "fixed-leak-rate")
	}
}

// BenchmarkAblationSeedSensitivity measures how manifestation varies with
// the seed on a schedule-sensitive bug (Figure 10's double close).
func BenchmarkAblationSeedSensitivity(b *testing.B) {
	k, _ := kernels.ByID("docker-24007-double-close")
	for i := 0; i < b.N; i++ {
		st := explore.Run(k.Buggy, explore.Options{Runs: 100, BaseSeed: int64(i * 100), Config: k.Config(0)})
		b.ReportMetric(st.ManifestRate(), "panic-rate")
	}
}

// BenchmarkAblationPoolSize sweeps the worker-pool size of the C-style
// server: the goroutine-creation ratio of Table 3 is a property of the
// threading model, not of the specific pool width.
func BenchmarkAblationPoolSize(b *testing.B) {
	w := rpc.Workloads()[0]
	for _, pool := range []int{1, 2, 5, 16} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := rpc.NewTracker()
				srv := rpc.NewServer(rpc.ModelWorkerPool, pool, rpc.EchoHandler(0), tr)
				cl := rpc.Dial(srv, rpc.ModelWorkerPool, tr, w.Requests)
				for r := 0; r < w.Requests; r++ {
					cl.Call("echo", []byte{1})
				}
				cl.Hangup()
				srv.Close()
				tr.Finish()
				b.ReportMetric(float64(tr.Created()), "goroutines")
			}
		})
	}
}

// BenchmarkDetectorComparison runs the extension experiment: all four
// detectors over the reproduced kernels.
func BenchmarkDetectorComparison(b *testing.B) {
	s := study()
	s.Runs = 30
	printOnce("detcmp", func() {
		t, cmp := s.DetectorComparisonTable()
		fmt.Print("\n", t)
		_ = cmp
	})
	for i := 0; i < b.N; i++ {
		_, cmp := s.DetectorComparisonTable()
		b.ReportMetric(float64(cmp.Builtin), "builtin")
		b.ReportMetric(float64(cmp.Race), "race")
		b.ReportMetric(float64(cmp.Leak), "leak")
		b.ReportMetric(float64(cmp.Vet), "vet")
	}
}

// BenchmarkDetectorPipeline measures the event-stream pipeline's reason to
// exist: one instrumented pass with race+vet+leak attached versus three
// sequential single-detector runs of the same kernel. The printed per-kernel
// table (the paper-figure kernels) is the "§ Detector pipeline" table in
// EXPERIMENTS.md.
func BenchmarkDetectorPipeline(b *testing.B) {
	dets := []detect.Detector{
		detect.MustLookup("race"), detect.MustLookup("vet"), detect.MustLookup("leak"),
	}
	var figureKernels []kernels.Kernel
	for _, k := range kernels.All() {
		if k.Figure > 0 {
			figureKernels = append(figureKernels, k)
		}
	}
	singlePass := func(k kernels.Kernel) {
		detect.RunAll(k.Config(1), k.Buggy, dets...)
	}
	sequential := func(k kernels.Kernel) {
		for _, d := range dets {
			detect.RunAll(k.Config(1), k.Buggy, d)
		}
	}
	printOnce("detpipeline", func() {
		fmt.Printf("\n%-34s %14s %14s %7s\n", "kernel (buggy, race+vet+leak)", "single pass", "3 sequential", "ratio")
		for _, k := range figureKernels {
			const reps = 50
			measure := func(f func(kernels.Kernel)) time.Duration {
				start := time.Now()
				for i := 0; i < reps; i++ {
					f(k)
				}
				return time.Since(start) / reps
			}
			measure(singlePass) // warm both paths once before timing
			measure(sequential)
			sp, seq := measure(singlePass), measure(sequential)
			fmt.Printf("%-34s %14v %14v %6.1fx\n", k.ID, sp, seq, float64(seq)/float64(sp))
		}
	})
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range figureKernels {
				singlePass(k)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range figureKernels {
				sequential(k)
			}
		}
	})
}

// BenchmarkSystematicExploration measures exhaustive schedule enumeration
// on the Figure 10 kernel (a few thousand schedules).
func BenchmarkSystematicExploration(b *testing.B) {
	k, _ := kernels.ByID("docker-24007-double-close")
	printOnce("systematic", func() {
		res := explore.Systematic(k.Buggy, explore.SystematicOptions{Config: k.Config(0), MaxRuns: 50_000})
		fmt.Printf("\nsystematic exploration of %s: %d schedules (complete=%v), %d failing\n",
			k.ID, res.Runs, res.Complete, res.Failures)
	})
	for i := 0; i < b.N; i++ {
		res := explore.Systematic(k.Buggy, explore.SystematicOptions{Config: k.Config(0), MaxRuns: 50_000})
		b.ReportMetric(float64(res.Runs), "schedules")
		b.ReportMetric(float64(res.Failures), "failing")
	}
}

// BenchmarkDPORvsDFS prints, for every kernel, the schedule count of the
// full depth-first enumeration next to the dynamic partial-order-reduced
// search (the EXPERIMENTS.md "§ Partial-order reduction" table is this
// output), then times the reduced search on the Figure 10 kernel.
func BenchmarkDPORvsDFS(b *testing.B) {
	printOnce("dporvsdfs", func() {
		fmt.Printf("\n%-34s %10s %10s %8s %8s\n", "kernel (buggy)", "full DFS", "DPOR", "pruned", "ratio")
		for _, k := range kernels.All() {
			opts := explore.SystematicOptions{Config: k.Config(0), MaxRuns: 120_000}
			full := explore.Systematic(k.Buggy, opts)
			opts.Reduction = true
			red := explore.Systematic(k.Buggy, opts)
			fullCount := fmt.Sprintf("%d", full.Runs)
			if !full.Complete {
				fullCount = ">" + fullCount
			}
			ratio := "-"
			if full.Complete && red.Runs > 0 {
				ratio = fmt.Sprintf("%.1fx", float64(full.Runs)/float64(red.Runs))
			}
			fmt.Printf("%-34s %10s %10d %8d %8s\n", k.ID, fullCount, red.Runs, red.SchedulesPruned, ratio)
		}
	})
	k, _ := kernels.ByID("docker-24007-double-close")
	for i := 0; i < b.N; i++ {
		res := explore.Systematic(k.Buggy, explore.SystematicOptions{
			Config: k.Config(0), MaxRuns: 120_000, Reduction: true,
		})
		b.ReportMetric(float64(res.Runs), "schedules")
		b.ReportMetric(float64(res.SchedulesPruned), "pruned")
	}
}

// BenchmarkParallelExploration compares serial and fanned-out systematic
// search on the same kernel and schedule budget. The results are
// bit-identical by construction (see explore.SystematicOptions.Workers);
// the sub-benchmarks measure what the worker pool costs or saves on this
// host's core count.
func BenchmarkParallelExploration(b *testing.B) {
	k, _ := kernels.ByID("docker-24007-double-close")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := explore.Systematic(k.Buggy, explore.SystematicOptions{
					Config: k.Config(0), MaxRuns: 50_000, Workers: workers,
				})
				b.ReportMetric(float64(res.Runs), "schedules")
			}
		})
	}
}

// BenchmarkVetOverhead measures the rule monitor's cost on a healthy
// pipeline.
func BenchmarkVetOverhead(b *testing.B) {
	prog := func(t *sim.T) {
		ch := sim.NewChan[int](t, 2)
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		t.Go(func(ct *sim.T) {
			for i := 0; i < 16; i++ {
				ch.Send(ct, i)
			}
			ch.Close(ct)
			wg.Done(ct)
		})
		t.Go(func(ct *sim.T) {
			for {
				if _, ok := ch.Recv(ct); !ok {
					break
				}
			}
			wg.Done(ct)
		})
		wg.Wait(t)
	}
	b.Run("without-vet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{Seed: int64(i)}, prog)
		}
	})
	b.Run("with-vet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := vet.New()
			sim.Run(sim.Config{Seed: int64(i), Sinks: []event.Sink{m}}, prog)
		}
	})
}

// --- Substrate microbenchmarks ---

func BenchmarkSimChannelRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{Seed: int64(i)}, func(t *sim.T) {
			ch := sim.NewChan[int](t, 0)
			t.Go(func(ct *sim.T) { ch.Send(ct, 1) })
			ch.Recv(t)
		})
	}
}

func BenchmarkSimMutexContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{Seed: int64(i)}, func(t *sim.T) {
			mu := sim.NewMutex(t, "mu")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 4)
			for g := 0; g < 4; g++ {
				t.Go(func(ct *sim.T) {
					for j := 0; j < 8; j++ {
						mu.Lock(ct)
						mu.Unlock(ct)
					}
					wg.Done(ct)
				})
			}
			wg.Wait(t)
		})
	}
}

func BenchmarkRaceDetectorOverhead(b *testing.B) {
	prog := func(t *sim.T) {
		x := sim.NewVar[int](t, "x")
		mu := sim.NewMutex(t, "mu")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for g := 0; g < 2; g++ {
			t.Go(func(ct *sim.T) {
				for j := 0; j < 16; j++ {
					mu.Lock(ct)
					x.Store(ct, x.Load(ct)+1)
					mu.Unlock(ct)
				}
				wg.Done(ct)
			})
		}
		wg.Wait(t)
	}
	b.Run("without-detector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{Seed: int64(i)}, prog)
		}
	})
	b.Run("with-detector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{Seed: int64(i), Sinks: []event.Sink{race.New(0)}}, prog)
		}
	})
}

// BenchmarkFaultInjection measures the fault hook's cost at the three
// operating points: injection off (the nil-injector check every primitive
// op pays — must be free), an attached injector whose budget is exhausted
// immediately (the common post-budget steady state), and live benign
// injection. The benchgate guards the "off" lane: hooks nobody enabled must
// not tax the hot path.
func BenchmarkFaultInjection(b *testing.B) {
	prog := func(t *sim.T) {
		x := sim.NewVar[int](t, "x")
		mu := sim.NewMutex(t, "mu")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for g := 0; g < 2; g++ {
			t.Go(func(ct *sim.T) {
				for j := 0; j < 16; j++ {
					mu.Lock(ct)
					x.Store(ct, x.Load(ct)+1)
					mu.Unlock(ct)
				}
				wg.Done(ct)
			})
		}
		wg.Wait(t)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{Seed: int64(i)}, prog)
		}
	})
	b.Run("spent-budget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := inject.New(inject.Options{Seed: int64(i), Budget: 1, MeanGap: 1})
			for in.Consult(sim.SiteVar, 1, "warm") == sim.FaultNone {
				// burn the budget before the run (gap 1 means at most two
				// consultations until the single fault fires)
			}
			sim.Run(sim.Config{Seed: int64(i), Injector: in}, prog)
		}
	})
	b.Run("benign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Config{Seed: int64(i), Injector: inject.ForRun(inject.Options{Budget: 3}, i)}, prog)
		}
	})
}

// BenchmarkPooledRun measures sim.RunPool's steady state on the same
// no-sink program the RaceDetectorOverhead/FaultInjection gates time with a
// fresh runtime per run. The benchgate guards both lanes: the pooled no-sink
// lane must hold 0 allocs/op (every per-run structure recycled) and beat the
// historical fresh-run baseline by the ISSUE-6 margin; the with-detector
// lane keeps the pooled instrumented path honest.
func BenchmarkPooledRun(b *testing.B) {
	// The program body is the same contended-counter workload the fresh-run
	// gates use, but structured the way a zero-alloc caller would write it:
	// the goroutine bodies close over one long-lived state struct (created
	// once, like methods on a server object) instead of capturing per-run
	// locals, so the program itself allocates nothing per run and the lane
	// measures the runtime's own steady state.
	type state struct {
		x  *sim.Var[int]
		mu *sim.Mutex
		wg *sim.WaitGroup
	}
	st := &state{}
	worker := func(ct *sim.T) {
		for j := 0; j < 16; j++ {
			st.mu.Lock(ct)
			st.x.Store(ct, st.x.Load(ct)+1)
			st.mu.Unlock(ct)
		}
		st.wg.Done(ct)
	}
	prog := func(t *sim.T) {
		st.x = sim.NewVar[int](t, "x")
		st.mu = sim.NewMutex(t, "mu")
		st.wg = sim.NewWaitGroup(t, "wg")
		st.wg.Add(t, 2)
		for g := 0; g < 2; g++ {
			t.Go(worker)
		}
		st.wg.Wait(t)
	}
	b.Run("no-sink", func(b *testing.B) {
		pool := sim.NewRunPool()
		defer pool.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pool.Run(sim.Config{Seed: int64(i)}, prog)
		}
	})
	b.Run("with-detector", func(b *testing.B) {
		pool := sim.NewRunPool()
		defer pool.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pool.Run(sim.Config{Seed: int64(i), Sinks: []event.Sink{race.New(0)}}, prog)
		}
	})
}

// BenchmarkTraceArchive prices the trace-in/verdict-out split on the same
// contended-counter workload the RaceDetectorOverhead gates use. "record" is
// a live run with the streaming trace/v1 Recorder attached (compare against
// BenchmarkRaceDetectorOverhead/without-detector for the recording
// overhead); "replay" re-judges the archived stream through the full
// race+vet+leak pipeline offline (compare against a live RunAll of the same
// detectors for the replay-vs-live speedup); "size" reports the archive
// bytes per run. The recorder-off hot path itself is guarded by the
// benchgate's without-detector row: an empty sink set must keep paying
// nothing for the existence of the codec.
func BenchmarkTraceArchive(b *testing.B) {
	prog := func(t *sim.T) {
		x := sim.NewVar[int](t, "x")
		mu := sim.NewMutex(t, "mu")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for g := 0; g < 2; g++ {
			t.Go(func(ct *sim.T) {
				for j := 0; j < 16; j++ {
					mu.Lock(ct)
					x.Store(ct, x.Load(ct)+1)
					mu.Unlock(ct)
				}
				wg.Done(ct)
			})
		}
		wg.Wait(t)
	}
	dets := []detect.Detector{
		detect.MustLookup("race"), detect.MustLookup("vet"), detect.MustLookup("leak"),
	}
	archive := func(w io.Writer, seed int64) error {
		tw := trace.NewWriter(w)
		rec := tw.BeginRun(trace.RunMeta{Name: "bench", Runs: 1, Seed: seed})
		res := sim.Run(sim.Config{Name: "bench", Seed: seed, Sinks: []event.Sink{rec}}, prog)
		return rec.FinishRun(res, nil)
	}
	b.Run("record", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := archive(io.Discard, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		var buf bytes.Buffer
		if err := archive(&buf, 1); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := detect.RunAllTrace(bytes.NewReader(data), dets...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live-judged", func(b *testing.B) {
		// The replay lane's live twin: same workload, same detectors, fresh
		// simulation per judging — replay speedup = live-judged / replay.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detect.RunAll(sim.Config{Name: "bench", Seed: 1}, prog, dets...)
		}
	})
}

func BenchmarkLiftComputation(b *testing.B) {
	cont := stats.NewContingency([]string{"a", "b", "c"}, []string{"x", "y"})
	cont.Add("a", "x", 20)
	cont.Add("b", "y", 11)
	cont.Add("c", "x", 7)
	for i := 0; i < b.N; i++ {
		_ = cont.LiftRanking(0)
	}
}

// BenchmarkEngineSubmit times the service layer's three request paths: a
// cold submission that actually sweeps, a warm one answered from the
// persistent verdict store, and a coalesced enqueue that attaches to an
// identical in-flight job. Warm and coalesced are the daemon's steady
// state — they are what "godetect as a service" buys over re-running the
// CLI.
// gatedStore is a VerdictStore whose PutKey parks the caller until gate is
// closed, signalling entered on first arrival — it pins an engine worker at
// the publish barrier so the coalesced lane times queue-attach alone.
type gatedStore struct {
	*store.Store
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (s *gatedStore) PutKey(k store.Key, val []byte) error {
	s.once.Do(func() { close(s.entered) })
	<-s.gate
	return s.Store.PutKey(k, val)
}

func BenchmarkEngineSubmit(b *testing.B) {
	ctx := context.Background()
	job := engine.Job{Kind: engine.KindSweep, Kernel: "docker-abba-order",
		Runs: 5, Seed: 1, Detectors: []string{"cycle"}}

	b.Run("cold", func(b *testing.B) {
		// No store: every submission executes the 5-run sweep.
		e := engine.New(engine.Options{Workers: 1, SweepWorkers: 1})
		defer e.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Submit(ctx, job); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(filepath.Join(b.TempDir(), "verdicts.db"), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		e := engine.New(engine.Options{Workers: 1, SweepWorkers: 1, Store: st})
		defer e.Close()
		if _, err := e.Submit(ctx, job); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Submit(ctx, job)
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatal("warm lane missed the cache")
			}
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		// Hold the engine's only worker at the store-put barrier of a
		// decoy job so the target ticket stays parked in the queue:
		// attaching to it is then the pure coalesce fast path, with no
		// concurrent execution perturbing the timer (this may be a
		// single-CPU host, where a busy worker would steal whole
		// scheduler timeslices from the timed loop).
		st, err := store.Open(filepath.Join(b.TempDir(), "verdicts.db"), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		gs := &gatedStore{Store: st, entered: make(chan struct{}), gate: make(chan struct{})}
		e := engine.New(engine.Options{Workers: 1, SweepWorkers: 1, Store: gs, QueueDepth: 4})
		defer func() { close(gs.gate); e.Close() }()
		decoy := job
		decoy.Seed = 99
		if _, err := e.Enqueue(decoy); err != nil {
			b.Fatal(err)
		}
		<-gs.entered // the worker is now asleep inside PutKey(decoy)
		parked, err := e.Enqueue(job)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, err := e.Enqueue(job)
			if err != nil {
				b.Fatal(err)
			}
			if t != parked {
				b.Fatal("submission did not coalesce onto the parked ticket")
			}
		}
	})
}

// BenchmarkStoreGet times the verdict store's hit path. The no-copy lane is
// the one the warm daemon rides on every request; it must stay at 0
// allocs/op (gated by scripts/benchgate.sh).
func BenchmarkStoreGet(b *testing.B) {
	st, err := store.Open(filepath.Join(b.TempDir(), "verdicts.db"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	key := store.Key{Fingerprint: "sweep/v1 prog=bench variant=buggy faults=off",
		Config: "0123456789abcdef", Detectors: "cycle", Seeds: "base=1 runs=100"}
	if err := st.PutKey(key, bytes.Repeat([]byte("v"), 2048)); err != nil {
		b.Fatal(err)
	}
	ks := key.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, ok := st.Get(ks)
		if !ok || len(raw) != 2048 {
			b.Fatal("store miss")
		}
	}
}
