// Package goconcbugs is a from-scratch reproduction of "Understanding
// Real-World Concurrency Bugs in Go" (Tu, Liu, Song, Zhang; ASPLOS 2019).
//
// The library re-implements everything the study needs on a laptop: a
// deterministic model of Go's concurrency runtime (internal/sim), the two
// detectors the paper evaluates (internal/race, internal/deadlock), the 41
// reproduced bug kernels (internal/kernels), the 171-bug dataset and
// taxonomy (internal/corpus), the static analyzers of Sections 3 and 7
// (internal/static), and the dynamic RPC comparison substrate
// (internal/rpc). internal/core ties them together and regenerates every
// table and figure of the paper's evaluation; cmd/gobugstudy, cmd/godetect
// and cmd/gostatic expose that as executables, and bench_test.go holds one
// benchmark per table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package goconcbugs
