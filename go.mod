module goconcbugs

go 1.24
