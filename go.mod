module goconcbugs

go 1.22
