// Staticscan runs the Section 3 measurements and the Section 7
// anonymous-function race detector over the six synthetic application
// trees, printing a Table 2/4-style summary and the detector's findings
// (which include the seeded Figure 8 bug).
//
//	go run ./examples/staticscan [root]
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"goconcbugs/internal/static"
)

func main() {
	root := "testdata/apps"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-14s %6s %6s %6s %6s  %s\n", "tree", "LOC", "go", "anon", "named", "top primitives")
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		m, err := static.Analyze(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("%-14s %6d %6d %6d %6d  Mutex %.0f%%, chan %.0f%% (shared %.0f%% vs msg %.0f%%)\n",
			e.Name(), m.LOC, m.GoStmts, m.GoAnon, m.GoNamed,
			m.Share(static.PrimMutex)*100, m.Share(static.PrimChan)*100,
			m.ShareOf(static.SharedMemoryPrimitives)*100,
			m.ShareOf(static.MessagePassingPrimitives)*100)
	}

	fmt.Println("\nSection 7 detector findings:")
	findings, err := static.FindAnonRaces(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(findings) == 0 {
		fmt.Println("  none")
		return
	}
	for _, f := range findings {
		fmt.Println("  ", f)
	}
}
