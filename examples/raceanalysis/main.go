// Raceanalysis reruns the paper's Table 12 protocol on one bug — 100
// seeded runs under the happens-before race detector — and then the
// shadow-word ablation: the same bug under 1, 2, 4, 8 and unbounded shadow
// words, showing why the detector's four-word history can miss races.
//
//	go run ./examples/raceanalysis [kernel-id]
package main

import (
	"fmt"
	"os"

	"goconcbugs/internal/explore"
	"goconcbugs/internal/kernels"
)

func main() {
	id := "docker-apiversion" // Figure 8 by default
	if len(os.Args) > 1 {
		id = os.Args[1]
	}
	k, ok := kernels.ByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", id)
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n%s\n\n", k.ID, k.Description)

	st := explore.Run(k.Buggy, explore.Options{
		Runs: 100, Config: k.Config(0), WithRace: true,
	})
	fmt.Printf("100 runs with the race detector: detected in %d runs (first at run %d)\n",
		st.RaceDetectedRuns, st.FirstDetectedRun)
	if st.SampleRace != "" {
		fmt.Println("  ", st.SampleRace)
	}
	fmt.Printf("functional misbehavior (check failures): %d runs\n\n", st.CheckFailureRuns)

	fmt.Println("shadow-word ablation (Section 6.3: 'with only four shadow words ... the")
	fmt.Println("detector cannot keep a long history and may miss data races'):")
	for _, words := range []int{1, 2, 4, 8, -1} {
		st := explore.Run(k.Buggy, explore.Options{
			Runs: 100, Config: k.Config(0), WithRace: true, ShadowWords: words,
		})
		label := fmt.Sprintf("%d", words)
		if words < 0 {
			label = "unbounded"
		}
		fmt.Printf("  shadow words %-9s -> detected in %3d/100 runs, %d distinct races\n",
			label, st.RaceDetectedRuns, st.RacesTotal)
	}
}
