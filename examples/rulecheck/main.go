// Rulecheck demonstrates the dynamic rule-enforcement monitor of the
// paper's Section 7 discussion ("A novel dynamic technique can try to
// enforce such rules and detect violation at runtime"): it sweeps every bug
// kernel under the checker and highlights the three figure bugs that the
// race detector and the built-in deadlock detector both miss — the double
// close (Figure 10), the WaitGroup order violation (Figure 9), and the
// channel-under-lock structure (Figure 7).
//
//	go run ./examples/rulecheck
package main

import (
	"fmt"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/vet"
)

func main() {
	fmt.Println("Dynamic usage-rule checking over every bug kernel (50 seeds each):")
	fmt.Println()
	caught := 0
	for _, k := range kernels.All() {
		rules := map[vet.Rule]bool{}
		for seed := int64(0); seed < 50; seed++ {
			m, _ := vet.Check(k.Config(seed), k.Buggy)
			for _, v := range m.Violations() {
				rules[v.Rule] = true
			}
		}
		if len(rules) == 0 {
			continue
		}
		caught++
		fmt.Printf("%-34s ->", k.ID)
		for r := range rules {
			fmt.Printf(" %s", r)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d of %d kernels trip at least one usage rule.\n", caught, len(kernels.All()))
	fmt.Println()
	fmt.Println("The detection gap this closes (Tables 8 and 12's misses):")
	for _, id := range []string{"docker-24007-double-close", "etcd-waitgroup-order", "boltdb-240-chan-mutex"} {
		k, _ := kernels.ByID(id)
		var hit []string
		for seed := int64(0); seed < 50; seed++ {
			m, _ := vet.Check(k.Config(seed), k.Buggy)
			for _, v := range m.Violations() {
				hit = append(hit, v.String())
			}
			if len(hit) > 0 {
				break
			}
		}
		fmt.Printf("  %s (Figure %d):\n", k.ID, k.Figure)
		if len(hit) > 0 {
			fmt.Printf("    %s\n", hit[0])
		}
	}
}
