// Verifyfix demonstrates systematic schedule exploration (stateless model
// checking) over the simulated runtime: instead of sampling 100 random
// schedules as the paper's protocol does, it enumerates *every* schedule of
// a small kernel — proving a patch correct for all interleavings, and
// finding a bug's failing schedule without luck, then replaying it.
//
//	go run ./examples/verifyfix [kernel-id]
package main

import (
	"fmt"
	"os"

	"goconcbugs/internal/explore"
	"goconcbugs/internal/kernels"
)

func main() {
	id := "boltdb-392-double-lock"
	if len(os.Args) > 1 {
		id = os.Args[1]
	}
	k, ok := kernels.ByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", id)
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n%s\n\n", k.ID, k.Description)

	opts := explore.SystematicOptions{Config: k.Config(0), MaxRuns: 200_000}

	fmt.Println("exploring every schedule of the buggy variant ...")
	buggy := explore.Systematic(k.Buggy, opts)
	fmt.Printf("  schedules: %d (complete=%v, max depth %d)\n", buggy.Runs, buggy.Complete, buggy.MaxDepth)
	fmt.Printf("  failing schedules: %d\n", buggy.Failures)
	if buggy.FirstFailure != nil {
		fmt.Printf("  first failing decision sequence: %v\n", buggy.FailureSchedule)
		replay, err := explore.ReplaySchedule(k.Buggy, k.Config(0), buggy.FailureSchedule)
		if err != nil {
			fmt.Printf("  replay mismatch: %v\n", err)
		}
		fmt.Printf("  replayed deterministically: outcome=%v, leaked=%d, panics=%d\n",
			replay.Outcome, len(replay.Leaked), len(replay.Panics))
	}

	fmt.Println("\nexploring every schedule of the fixed variant ...")
	verified, fixed := explore.VerifyAllSchedules(k.Fixed, opts)
	fmt.Printf("  schedules: %d (complete=%v), failing: %d\n", fixed.Runs, fixed.Complete, fixed.Failures)
	redOpts := opts
	redOpts.Reduction = true
	redVerified, reduced := explore.VerifyAllSchedules(k.Fixed, redOpts)
	fmt.Printf("  with DPOR: %d schedules (pruned %d, sleep-set hits %d), failing: %d, verified=%v\n",
		reduced.Runs, reduced.SchedulesPruned, reduced.SleepSetHits, reduced.Failures, redVerified)
	if verified {
		fmt.Println("  VERIFIED: the patch holds on every interleaving within the bound —")
		fmt.Println("  stronger evidence than the 100-run sampling protocol of Tables 8/12.")
	} else if fixed.Failures == 0 {
		fmt.Println("  no failures found, but the schedule space exceeded the budget;")
		fmt.Println("  rerun with a larger -MaxRuns or rely on the sampling protocol.")
	} else {
		fmt.Println("  the 'fix' still fails on some schedule!")
	}

	// A taste of the state-space sizes involved, across a few kernels —
	// full DFS vs the CHESS-style bound of two preemptions vs DPOR.
	fmt.Println("\nschedule-space sizes of other small kernels (budget 50k):")
	for _, id := range []string{"boltdb-240-chan-mutex", "docker-24007-double-close", "etcd-chan-circular"} {
		k, _ := kernels.ByID(id)
		full := explore.Systematic(k.Buggy, explore.SystematicOptions{Config: k.Config(0), MaxRuns: 50_000})
		bounded := explore.Systematic(k.Buggy, explore.SystematicOptions{
			Config: k.Config(0), MaxRuns: 50_000, PreemptionBound: 2,
		})
		reduced := explore.Systematic(k.Buggy, explore.SystematicOptions{
			Config: k.Config(0), MaxRuns: 50_000, Reduction: true,
		})
		status := "exhausted budget"
		if full.Complete {
			status = "complete"
		}
		fmt.Printf("  %-28s full: %5d schedules (%s), %d failing | ≤2 preemptions: %4d, %d failing | DPOR: %4d, %d failing\n",
			k.ID, full.Runs, status, full.Failures, bounded.Runs, bounded.Failures, reduced.Runs, reduced.Failures)
	}
}
