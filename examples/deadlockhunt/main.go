// Deadlockhunt sweeps every blocking kernel with both blocking detectors,
// reproducing the Table 8 experiment and its Implication 4 ablation: the
// built-in detector catches 2 of 21 bugs, the leak detector all of them.
//
//	go run ./examples/deadlockhunt
package main

import (
	"fmt"

	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

func main() {
	fmt.Println("Blocking-bug sweep: built-in deadlock detector vs goroutine-leak detector")
	fmt.Println()
	builtinTotal, leakTotal := 0, 0
	for _, k := range kernels.Blocking() {
		res := sim.Run(k.Config(1), k.Buggy)
		builtin := deadlock.Builtin{}.Detect(res)
		leak := deadlock.Leak{}.Detect(res)
		caught := builtin.Detected || leak.Detected
		if builtin.Detected {
			builtinTotal++
		}
		if caught {
			leakTotal++
		}
		mark := func(b bool) string {
			if b {
				return "CAUGHT"
			}
			return "missed"
		}
		// Section 4's taxonomy line: is this a classic circular wait
		// (what traditional lock-cycle detectors hunt), or the broader
		// blocking the paper emphasizes?
		shape := "non-circular"
		if deadlock.AnalyzeCircularity(res).CircularWait {
			shape = "lock-cycle"
		}
		fmt.Printf("%-34s %-20s builtin: %-6s  leak: %-6s  %-12s (%s)\n",
			k.ID, string(k.BlockClass), mark(builtin.Detected), mark(caught),
			shape, deadlock.Classify(res.Leaked))
	}
	fmt.Println()
	fmt.Printf("built-in detector: %d/%d — 'Simple runtime deadlock detector is not effective' (Implication 4)\n",
		builtinTotal, len(kernels.Blocking()))
	fmt.Printf("leak detector:     %d/%d — the detection direction the paper proposes\n",
		leakTotal, len(kernels.Blocking()))
}
