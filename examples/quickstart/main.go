// Quickstart: reproduce the paper's Figure 1 bug (Kubernetes#5316), watch
// the goroutine leak, then watch the landed one-line patch remove it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

func main() {
	k, ok := kernels.ByID("kubernetes-finishreq")
	if !ok {
		panic("kernel registry is missing the Figure 1 bug")
	}
	fmt.Println("== Figure 1: kubernetes-finishreq ==")
	fmt.Println(k.Description)
	fmt.Println()

	// Run the buggy variant once. The simulated runtime is deterministic:
	// the same seed always produces the same interleaving.
	res := sim.Run(k.Config(1), k.Buggy)
	fmt.Printf("buggy variant:   outcome=%v, goroutines=%d\n", res.Outcome, res.GoroutinesCreated)

	// Go's built-in detector only fires when the whole process is asleep;
	// here the server kept going, so it sees nothing (Table 8).
	builtin := deadlock.Builtin{}.Detect(res)
	fmt.Printf("built-in detector: detected=%v\n", builtin.Detected)

	// The goroutine-leak detector — what the paper's Implication 4 calls
	// for — pinpoints the stuck handler.
	leak := deadlock.Leak{}.Detect(res)
	fmt.Printf("leak detector:     detected=%v\n", leak.Detected)
	if leak.Detected {
		fmt.Println(leak.Message)
	}
	fmt.Println()

	// The patch: one character, `make(chan ob)` -> `make(chan ob, 1)`.
	fmt.Println("fix:", k.FixDescription)
	res = sim.Run(k.Config(1), k.Fixed)
	leak = deadlock.Leak{}.Detect(res)
	fmt.Printf("fixed variant:   outcome=%v, leaks detected=%v\n", res.Outcome, leak.Detected)
}
