// Command gobugstudy regenerates the paper's tables and figures.
//
// Usage:
//
//	gobugstudy                      # everything
//	gobugstudy -table 8             # one table (1-12)
//	gobugstudy -figures             # Figures 2, 3 and 4 only
//	gobugstudy -observations        # the nine observations' checks
//	gobugstudy -runs 200 -seed 7    # detector-experiment protocol knobs
//	gobugstudy -apps path/to/trees  # alternate source trees for Tables 2/4
package main

import (
	"flag"
	"fmt"
	"os"

	"goconcbugs/internal/core"
	"goconcbugs/internal/corpus"
)

func main() {
	table := flag.Int("table", 0, "render a single table (1-12); 0 = all")
	figures := flag.Bool("figures", false, "render the figures only")
	observations := flag.Bool("observations", false, "evaluate the nine observations")
	detectors := flag.Bool("detectors", false, "run the four-detector comparison (extension experiment)")
	summary := flag.Bool("summary", false, "print the one-page report card of headline numbers")
	exportJSON := flag.Bool("json", false, "dump the 171-bug dataset as JSON to stdout")
	runs := flag.Int("runs", 100, "runs per kernel for the race-detector experiment")
	seed := flag.Int64("seed", 1, "base seed for every simulated experiment")
	apps := flag.String("apps", "testdata/apps", "root of the six application trees for Tables 2 and 4")
	flag.Parse()

	s := core.NewStudy()
	s.Runs = *runs
	s.BaseSeed = *seed
	s.SourceRoot = *apps

	if *exportJSON {
		if err := corpus.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gobugstudy:", err)
			os.Exit(1)
		}
		return
	}
	if *summary {
		if _, err := s.Summarize().WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gobugstudy:", err)
			os.Exit(1)
		}
		return
	}
	if *detectors {
		t, cmp := s.DetectorComparisonTable()
		fmt.Print(t)
		fmt.Printf("detected by at least one detector: %d/%d kernels\n", countAny(cmp), cmp.Kernels)
		return
	}
	if err := run(s, *table, *figures, *observations); err != nil {
		fmt.Fprintln(os.Stderr, "gobugstudy:", err)
		os.Exit(1)
	}
}

func countAny(cmp *core.DetectorComparison) int {
	n := 0
	for _, r := range cmp.Rows {
		if r.AnyDetected() {
			n++
		}
	}
	return n
}

func run(s *core.Study, table int, figures, observations bool) error {
	if observations {
		return printObservations(s)
	}
	if figures {
		return printFigures(s)
	}
	if table != 0 {
		return printTable(s, table)
	}
	for n := 1; n <= 12; n++ {
		if err := printTable(s, n); err != nil {
			return err
		}
		fmt.Println()
	}
	if err := printFigures(s); err != nil {
		return err
	}
	fmt.Println()
	return printObservations(s)
}

func printTable(s *core.Study, n int) error {
	switch n {
	case 1:
		fmt.Print(s.Table1())
	case 2:
		t, err := s.Table2()
		if err != nil {
			return err
		}
		fmt.Print(t)
	case 3:
		fmt.Print(s.Table3())
	case 4:
		t, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Print(t)
	case 5:
		fmt.Print(s.Table5())
	case 6:
		fmt.Print(s.Table6())
	case 7:
		t, lifts := s.Table7()
		fmt.Print(t)
		fmt.Println("lift ranking (categories with >= 10 bugs):")
		for i, e := range lifts {
			if i >= 5 {
				break
			}
			fmt.Printf("  lift(%s, %s) = %.2f (n=%d)\n", e.Row, e.Col, e.Lift, e.Count)
		}
	case 8:
		t, _ := s.Table8()
		fmt.Print(t)
	case 9:
		fmt.Print(s.Table9())
	case 10:
		t, lifts := s.Table10()
		fmt.Print(t)
		for _, e := range lifts {
			if (e.Row == "anonymous function" && e.Col == "Private") ||
				(e.Row == "chan" && e.Col == "Move_s") {
				fmt.Printf("  lift(%s, %s) = %.2f\n", e.Row, e.Col, e.Lift)
			}
		}
	case 11:
		t, lifts := s.Table11()
		fmt.Print(t)
		for _, e := range lifts {
			if e.Row == "chan" && e.Col == "Channel" {
				fmt.Printf("  lift(%s, %s) = %.2f\n", e.Row, e.Col, e.Lift)
			}
		}
	case 12:
		t, res := s.Table12()
		fmt.Print(t)
		fmt.Printf("detected on every run: %d; detected only on some runs: %d\n", res.EveryRun, res.Rare)
	default:
		return fmt.Errorf("no table %d", n)
	}
	return nil
}

func printFigures(s *core.Study) error {
	for _, fig := range s.Figure2and3() {
		fmt.Print(fig)
		fmt.Println()
	}
	fmt.Print(s.Figure4())
	medians := s.LifetimeMedians()
	for cause, m := range medians {
		fmt.Printf("  median lifetime (%s): %.0f days\n", cause, m)
	}
	return nil
}

func printObservations(s *core.Study) error {
	fmt.Println("Observations (paper claim -> reproduction check):")
	for _, o := range s.Observations() {
		status := "HOLDS"
		if !o.Holds {
			status = "FAILS"
		}
		fmt.Printf("  [%s] Observation %d: %s\n          %s\n", status, o.Number, o.Claim, o.Detail)
	}
	return nil
}
