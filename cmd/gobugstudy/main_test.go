package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI tests re-execute this test binary as the command itself: TestMain
// routes straight into main() when the marker env var is set, so the real
// flag parsing, exit codes and output paths are exercised without a
// separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("GOBUGSTUDY_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI runs the command from the repository root (the default -apps path
// is relative to it) and returns stdout, stderr and the exit code.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GOBUGSTUDY_BE_CLI=1")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

func TestTable8Golden(t *testing.T) {
	out, _, code := runCLI(t, "-table", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"Table 8: Built-in deadlock detector on the 21 reproduced blocking bugs",
		"Mutex                7               1",
		"Total                21              2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	out, _, code := runCLI(t, "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var doc struct {
		BugCount    int              `json:"bugCount"`
		Blocking    int              `json:"blocking"`
		NonBlocking int              `json:"nonBlocking"`
		Bugs        []map[string]any `json:"bugs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	if doc.BugCount != 171 || len(doc.Bugs) != 171 {
		t.Errorf("bugCount=%d len(bugs)=%d, want 171 (the paper's corpus)", doc.BugCount, len(doc.Bugs))
	}
	if doc.Blocking+doc.NonBlocking != 171 {
		t.Errorf("blocking %d + nonBlocking %d != 171", doc.Blocking, doc.NonBlocking)
	}
}

func TestDetectorsExperiment(t *testing.T) {
	out, _, code := runCLI(t, "-detectors", "-runs", "5", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "detected by at least one detector:") {
		t.Errorf("missing detector summary in:\n%s", out)
	}
}

func TestBadFlagValueExits2(t *testing.T) {
	_, stderr, code := runCLI(t, "-table", "notanumber")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (flag parse error); stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Errorf("stderr lacks flag diagnostic:\n%s", stderr)
	}
}

func TestUnknownTableFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-table", "13")
	if code == 0 {
		t.Fatal("exit 0 for a table the paper does not have")
	}
	if !strings.Contains(stderr, "gobugstudy:") {
		t.Errorf("stderr lacks command-prefixed error:\n%s", stderr)
	}
}
