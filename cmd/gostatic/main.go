// Command gostatic runs the paper's static measurements and the Section 7
// anonymous-function race detector over any Go source tree.
//
// Usage:
//
//	gostatic path/to/tree            # Table 2/4-style metrics
//	gostatic -anonraces path/to/tree # Section 7 detector findings
package main

import (
	"flag"
	"fmt"
	"os"

	"goconcbugs/internal/static"
)

func main() {
	anonraces := flag.Bool("anonraces", false, "run the anonymous-function race detector")
	blocking := flag.Bool("blocking", false, "run the blocking-pattern detectors (Figure 7 / missing unlock)")
	flag.Parse()
	root := flag.Arg(0)
	if root == "" {
		fmt.Fprintln(os.Stderr, "usage: gostatic [-anonraces|-blocking] <dir>")
		os.Exit(2)
	}
	if *blocking {
		findings, err := static.FindBlockingPatterns(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gostatic:", err)
			os.Exit(1)
		}
		if len(findings) == 0 {
			fmt.Println("no blocking-pattern candidates")
			return
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		return
	}
	if *anonraces {
		findings, err := static.FindAnonRaces(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gostatic:", err)
			os.Exit(1)
		}
		if len(findings) == 0 {
			fmt.Println("no anonymous-function race candidates")
			return
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		return
	}
	m, err := static.Analyze(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gostatic:", err)
		os.Exit(1)
	}
	fmt.Printf("files: %d, lines: %d\n", m.Files, m.LOC)
	fmt.Printf("goroutine creation sites: %d (%.2f per KLOC) — anonymous %d, named %d\n",
		m.GoStmts, m.GoPerKLOC(), m.GoAnon, m.GoNamed)
	fmt.Printf("primitive usages: %d (%.2f per KLOC)\n", m.PrimitiveTotal(), m.PrimitivesPerKLOC())
	for _, p := range static.Primitives {
		fmt.Printf("  %-10s %5d  (%.1f%%)\n", p, m.Primitives[p], m.Share(p)*100)
	}
	fmt.Printf("shared-memory share %.1f%%, message-passing share %.1f%%\n",
		m.ShareOf(static.SharedMemoryPrimitives)*100,
		m.ShareOf(static.MessagePassingPrimitives)*100)
}
