package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// See cmd/gobugstudy/main_test.go for the exec-self pattern.
func TestMain(m *testing.M) {
	if os.Getenv("GOSTATIC_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GOSTATIC_BE_CLI=1")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

func TestMetricsOnApps(t *testing.T) {
	out, _, code := runCLI(t, filepath.Join("testdata", "apps"))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"files:", "goroutine creation sites:", "primitive usages:", "shared-memory share"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAnonRaces(t *testing.T) {
	out, _, code := runCLI(t, "-anonraces", filepath.Join("testdata", "apps"))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// The checked-in trees reproduce figure bugs, so the Section 7
	// detector must find at least one candidate (exact findings are the
	// static package's own tests' business).
	if strings.TrimSpace(out) == "" || strings.Contains(out, "no anonymous-function race candidates") {
		t.Errorf("expected candidates over testdata/apps, got:\n%s", out)
	}
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, stderr, code := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: gostatic") {
		t.Errorf("stderr lacks usage line:\n%s", stderr)
	}
}

func TestMissingDirExits1(t *testing.T) {
	_, stderr, code := runCLI(t, filepath.Join("no", "such", "dir"))
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "gostatic:") {
		t.Errorf("stderr lacks command-prefixed error:\n%s", stderr)
	}
}
