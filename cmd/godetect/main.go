// Command godetect runs bug kernels under the reimplemented detectors.
//
// Usage:
//
//	godetect -list                        # list every kernel
//	godetect -kernel kubernetes-finishreq # run one kernel's buggy variant
//	godetect -kernel docker-apiversion -fixed -runs 100
//	godetect -all                         # sweep every kernel
//	godetect -kernel grpc-lost-update -trace -seed 3
//	godetect -kernel docker-abba-order -systematic -dpor
//	godetect -detectors                   # list the detector registry
//	godetect -kernel etcd-wal-doubleclose -with race,vet,leak
//	godetect -kernel docker-abba-order -with race -record archive/
//	godetect -kernel docker-abba-order -with race,vet,leak -replay archive/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "list kernels")
	all := flag.Bool("all", false, "sweep every kernel")
	kernel := flag.String("kernel", "", "kernel id to run")
	fixed := flag.Bool("fixed", false, "run the fixed variant instead of the buggy one")
	runs := flag.Int("runs", 100, "number of seeded runs")
	seed := flag.Int64("seed", 0, "base seed")
	trace := flag.Bool("trace", false, "print the first run's event trace")
	shadow := flag.Int("shadow", 0, "race-detector shadow words (0 = Go's 4, negative = unbounded)")
	vetFlag := flag.Bool("vet", false, "also run the usage-rule checker (package vet)")
	catalog := flag.Bool("catalog", false, "emit the kernel catalog as Markdown (KERNELS.md)")
	chrome := flag.String("chrometrace", "", "write the first run's trace to this file in Chrome Trace Event Format")
	systematic := flag.Bool("systematic", false, "exhaustively explore every schedule instead of seeded sampling")
	dpor := flag.Bool("dpor", false, "with -systematic: prune equivalent interleavings via dynamic partial-order reduction")
	maxRuns := flag.Int("maxruns", 200_000, "with -systematic: schedule budget")
	conf := flag.Bool("conformance", false, "differentially test the sim against the real Go runtime on generated programs")
	programs := flag.Int("programs", 200, "with -conformance: number of generated programs")
	emitsrc := flag.Bool("emitsrc", false, "with -conformance: print the program generated for -seed as standalone Go source and exit")
	kinds := flag.String("kinds", "", "with -conformance: comma-separated primitive families to focus the generator on (cond,timer,ctx,sem); empty = all")
	detectorsFlag := flag.Bool("detectors", false, "list the detector registry")
	with := flag.String("with", "", "comma-separated detector set to sweep in one pass per run (see -detectors); non-zero exit if one fires on a -fixed kernel")
	faults := flag.Int("faults", 0, "inject up to this many scheduling faults per run (0 = off); non-zero exit if a -fixed kernel fires under injection")
	faultseed := flag.Int64("faultseed", 1, "base seed for the fault injector; run i perturbs with faultseed+i")
	aggressive := flag.Bool("aggressive", false, "with -faults: also inject program-changing faults (early timeouts, spurious wakeups, goroutine kills, panics, channel closes) — a correct program may legitimately fail under these")
	deadlineFlag := flag.Duration("deadline", 0, "wall-clock budget for sweeps and exploration; on expiry partial results are reported with an incomplete verdict")
	resume := flag.String("resume", "", "checkpoint file for -with sweeps: progress is saved there periodically and a restart with the same options resumes instead of re-running")
	faulttable := flag.Bool("faulttable", false, "emit the fault-injection experiment table (Markdown): schedules-to-first-detection with vs without benign injection, per study kernel")
	shards := flag.Int("shards", 1, "partition a -with sweep's seed range into this many contiguous shards, one process each (needs -resume for the shard checkpoints)")
	shardIdx := flag.Int("shard", 0, "with -shards: the 0-based shard this process sweeps")
	foldFlag := flag.Bool("fold", false, "with -shards: merge the shard checkpoints into the serial checkpoint and print the combined report instead of sweeping")
	record := flag.String("record", "", "with -with: archive every run of the sweep as trace/v1 files under this directory (re-judge offline with -replay); -all records into per-kernel subdirectories")
	replay := flag.String("replay", "", "re-judge a sweep archive recorded with -record instead of running live; pass the recording's -kernel/-all, -with, -runs, -seed, and -faults options (the detector set may differ — that is the point)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of this invocation to the file")
	memprofile := flag.String("memprofile", "", "write a heap profile to the file at exit")
	flag.Parse()

	// Every long-running mode is interruptible: SIGINT/SIGTERM stop
	// dispatching new runs and the partial results fold, so a checkpointed
	// sweep can resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadlineFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadlineFlag)
		defer cancel()
	}
	var injOpts *inject.Options
	if *faults > 0 {
		injOpts = &inject.Options{Seed: *faultseed, Budget: *faults, Aggressive: *aggressive}
	}

	prof, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		os.Exit(1)
	}

	// Every mode returns an exit code instead of calling os.Exit, so the
	// profile writers always flush no matter which path exits.
	code := func() int {
		if *faulttable {
			return runFaultTable(ctx, *runs, *faultseed)
		}
		if *detectorsFlag {
			for _, d := range detect.All() {
				fmt.Printf("%-8s %s\n", d.Name, d.Desc)
			}
			return 0
		}
		if *catalog {
			printCatalog()
			return 0
		}
		if *conf {
			return runConformance(ctx, *programs, *seed, *emitsrc, *kinds)
		}

		var dets []detect.Detector
		if *with != "" {
			var err error
			if dets, err = detect.Parse(*with); err != nil {
				fmt.Fprintln(os.Stderr, "godetect:", err)
				return 1
			}
		}
		if (*record != "" || *replay != "") && dets == nil {
			fmt.Fprintln(os.Stderr, "godetect: -record/-replay archive detector sweeps; add -with (see -detectors)")
			return 2
		}
		if *replay != "" && (*record != "" || *shards > 1 || *foldFlag) {
			fmt.Fprintln(os.Stderr, "godetect: -replay re-judges an existing archive; it cannot be combined with -record, -shards, or -fold")
			return 2
		}
		if *shards > 1 || *foldFlag {
			if *shards <= 1 {
				fmt.Fprintln(os.Stderr, "godetect: -fold needs -shards N to know how many shard checkpoints to merge")
				return 2
			}
			if dets == nil || *resume == "" {
				fmt.Fprintln(os.Stderr, "godetect: -shards needs a -with detector sweep and a -resume checkpoint base")
				return 2
			}
			if !*foldFlag && (*shardIdx < 0 || *shardIdx >= *shards) {
				fmt.Fprintf(os.Stderr, "godetect: -shard %d out of range [0, %d)\n", *shardIdx, *shards)
				return 2
			}
		}

		switch {
		case *list:
			listKernels()
		case *all:
			fired := false
			for _, k := range kernels.All() {
				if *systematic {
					systematicSweep(ctx, k, *fixed, *maxRuns, *dpor)
					continue
				}
				checkpoint := ""
				if *resume != "" {
					checkpoint = *resume + "." + k.ID
				}
				if dets != nil {
					f, err := pipelineSweep(ctx, k, *fixed, *runs, *seed, dets, checkpoint, injOpts, *shards, *shardIdx, *foldFlag,
						kernelDir(*record, k.ID), kernelDir(*replay, k.ID))
					if err != nil {
						fmt.Fprintln(os.Stderr, "godetect:", err)
						return 1
					}
					if f {
						fired = true
					}
					continue
				}
				if sweep(ctx, k, *fixed, *runs, *seed, *shadow, injOpts) && injOpts != nil {
					fired = true
				}
				if *vetFlag {
					runVet(k, *fixed, *runs, *seed)
				}
			}
			if fired && *fixed {
				return 1
			}
		case *kernel != "":
			k, ok := kernels.ByID(*kernel)
			if !ok {
				fmt.Fprintf(os.Stderr, "godetect: unknown kernel %q (try -list)\n", *kernel)
				return 1
			}
			if *trace {
				printTrace(k, *fixed, *seed)
			}
			if *systematic {
				systematicSweep(ctx, k, *fixed, *maxRuns, *dpor)
				return 0
			}
			if *chrome != "" {
				if err := writeChromeTrace(k, *fixed, *seed, *chrome); err != nil {
					fmt.Fprintln(os.Stderr, "godetect:", err)
					return 1
				}
				fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
			}
			if dets != nil {
				fired, err := pipelineSweep(ctx, k, *fixed, *runs, *seed, dets, *resume, injOpts, *shards, *shardIdx, *foldFlag, *record, *replay)
				if err != nil {
					fmt.Fprintln(os.Stderr, "godetect:", err)
					return 1
				}
				if fired && *fixed {
					return 1
				}
				return 0
			}
			if sweep(ctx, k, *fixed, *runs, *seed, *shadow, injOpts) && *fixed && injOpts != nil {
				return 1
			}
			if *vetFlag {
				runVet(k, *fixed, *runs, *seed)
			}
		default:
			flag.Usage()
			return 2
		}
		return 0
	}()
	prof()
	os.Exit(code)
}

// startProfiles turns on the requested pprof outputs and returns the flush
// hook main runs before exiting (os.Exit skips defers, so dispatch paths
// return codes instead of exiting directly).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the live set the profile reports
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "godetect: heap profile:", err)
		}
	}, nil
}

// shardCheckpointName derives shard i's checkpoint file from the serial
// checkpoint base — the base itself stays reserved for the folded result.
func shardCheckpointName(base string, shard, shards int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", base, shard, shards)
}

// injectorFor adapts the CLI fault options to the per-run injector hook of
// the sweep harnesses; nil options mean no injection.
func injectorFor(injOpts *inject.Options) func(run int, seed int64) sim.Injector {
	if injOpts == nil {
		return nil
	}
	opts := *injOpts
	return func(run int, seed int64) sim.Injector { return inject.ForRun(opts, run) }
}

// printReplay prints the one command that reproduces run firstRun of a
// sweep bit-identically: a single-run sweep whose base seeds are shifted so
// its run 0 is exactly the firing run.
func printReplay(k kernels.Kernel, fixed bool, firstRun int, seed int64, injOpts *inject.Options) {
	cmd := fmt.Sprintf("go run ./cmd/godetect -kernel %s", k.ID)
	if fixed {
		cmd += " -fixed"
	}
	cmd += fmt.Sprintf(" -runs 1 -seed %d", seed+int64(firstRun))
	if injOpts != nil {
		cmd += fmt.Sprintf(" -faults %d -faultseed %d", injOpts.Budget, injOpts.Seed+int64(firstRun))
		if injOpts.Aggressive {
			cmd += " -aggressive"
		}
	}
	fmt.Printf("    replay: %s\n", cmd)
}

// kernelDir places one kernel's archive under an -all record/replay base
// directory; an empty base stays empty (feature off).
func kernelDir(base, id string) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, id)
}

// pipelineSweep sweeps the kernel with the selected detector set attached to
// every run's single event stream, printing per-detector stats. It reports
// whether any detector fired — the caller turns that into a non-zero exit
// for -fixed kernels, making the pipeline usable as a regression gate.
//
// With shards > 1 it sweeps only shard shardIdx's contiguous seed block into
// a per-shard checkpoint; with fold it executes nothing and instead merges
// the shard checkpoints into the serial checkpoint at the base path, folding
// the combined report — byte-identical to an unsharded sweep's.
//
// recordDir archives every run as a trace/v1 file while sweeping; replayDir
// executes nothing and re-judges such an archive offline instead, folding
// the same report (and checkpoint) a live sweep of these options writes.
func pipelineSweep(ctx context.Context, k kernels.Kernel, fixed bool, runs int, seed int64, dets []detect.Detector, checkpoint string, injOpts *inject.Options, shards, shardIdx int, fold bool, recordDir, replayDir string) (bool, error) {
	label := "buggy"
	if fixed {
		label = "fixed"
	}
	if injOpts != nil {
		label += fmt.Sprintf(", %d faults/run", injOpts.Budget)
	}
	opts := detect.SweepOptions{
		Runs: runs, BaseSeed: seed, Config: k.Config(seed),
		Context:     ctx,
		InjectorFor: injectorFor(injOpts),
		Checkpoint:  checkpoint,
		RecordDir:   recordDir,
	}
	var sw *detect.SweepReport
	switch {
	case replayDir != "":
		var err error
		if sw, err = detect.ReplayDir(replayDir, opts, dets...); err != nil {
			return false, err
		}
		label += ", offline replay"
	case fold:
		srcs := make([]string, shards)
		for i := range srcs {
			srcs[i] = shardCheckpointName(checkpoint, i, shards)
		}
		var err error
		if sw, err = detect.MergeSweepCheckpoints(checkpoint, srcs, opts, dets...); err != nil {
			return false, err
		}
		label += fmt.Sprintf(", fold of %d shards", shards)
	case shards > 1:
		opts.ShardCount, opts.ShardIndex = shards, shardIdx
		opts.Checkpoint = shardCheckpointName(checkpoint, shardIdx, shards)
		label += fmt.Sprintf(", shard %d/%d", shardIdx, shards)
		sw = detect.Sweep(variant(k, fixed), opts, dets...)
	default:
		sw = detect.Sweep(variant(k, fixed), opts, dets...)
	}
	fmt.Printf("%s (%s, %d runs, single pass per run): %s\n", k.ID, label, sw.Runs, sw.Verdict)
	fired := false
	firstRun := -1
	for _, st := range sw.Detectors {
		status := "quiet"
		if st.Detected() {
			fired = true
			if firstRun < 0 || st.FirstRun < firstRun {
				firstRun = st.FirstRun
			}
			status = fmt.Sprintf("fired on %d/%d runs (first run %d)", st.DetectedRuns, sw.Runs, st.FirstRun)
		}
		fmt.Printf("    %-8s %-34s %9d events  %12v\n", st.Detector, status, st.Events, st.Elapsed)
		if st.Sample != "" {
			fmt.Printf("             e.g. %s\n", firstLine(st.Sample))
		}
	}
	if len(sw.Incomplete) > 0 {
		fmt.Printf("    %d incomplete run(s) (first: run %d, %s)\n",
			len(sw.Incomplete), sw.Incomplete[0].Run, sw.Incomplete[0].Reason)
	}
	if fired {
		printReplay(k, fixed, firstRun, seed, injOpts)
	}
	return fired, nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// printCatalog renders the registry as the Markdown catalog checked in as
// KERNELS.md.
func printCatalog() {
	fmt.Println("# Bug kernel catalog")
	fmt.Println()
	fmt.Println("Generated with `go run ./cmd/godetect -catalog > KERNELS.md`.")
	fmt.Println("Each kernel reproduces one studied bug as a Buggy/Fixed program pair")
	fmt.Println("against the deterministic runtime (`internal/sim`); run one with")
	fmt.Println("`go run ./cmd/godetect -kernel <id> [-fixed] [-trace] [-vet]`.")
	for _, behavior := range []corpus.Behavior{corpus.Blocking, corpus.NonBlocking} {
		fmt.Printf("\n## %s bugs\n\n", behavior)
		fmt.Println("| Kernel | App | Class | Figure | Study set | Bug | Fix |")
		fmt.Println("|---|---|---|---|---|---|---|")
		for _, k := range kernels.All() {
			if k.Behavior != behavior {
				continue
			}
			class := string(k.BlockClass)
			if behavior == corpus.NonBlocking {
				class = string(k.NBCause)
			}
			fig, study := "", ""
			if k.Figure > 0 {
				fig = fmt.Sprintf("Fig. %d", k.Figure)
			}
			if k.InDetectorStudy {
				study = "Table 8"
				if behavior == corpus.NonBlocking {
					study = "Table 12"
				}
			}
			fmt.Printf("| `%s` | %s | %s | %s | %s | %s | %s |\n",
				k.ID, k.App, class, fig, study,
				oneLine(k.Description), oneLine(k.FixDescription))
		}
	}
}

func oneLine(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' || r == '|' {
			r = ' '
		}
		out = append(out, r)
	}
	return string(out)
}

func listKernels() {
	for _, k := range kernels.All() {
		tag := ""
		if k.InDetectorStudy {
			tag = " [study-set]"
		}
		fig := ""
		if k.Figure > 0 {
			fig = fmt.Sprintf(" (Figure %d)", k.Figure)
		}
		fmt.Printf("%-34s %-12s %s%s%s\n", k.ID, k.Behavior, k.App, fig, tag)
	}
}

func variant(k kernels.Kernel, fixed bool) sim.Program {
	if fixed {
		return k.Fixed
	}
	return k.Buggy
}

// sweep samples the kernel over seeded runs, optionally under fault
// injection, and reports whether anything fired (manifested or detected) —
// under injection the caller turns a fixed-kernel fire into a non-zero
// exit, which is the chaos gate.
func sweep(ctx context.Context, k kernels.Kernel, fixed bool, runs int, seed int64, shadow int, injOpts *inject.Options) bool {
	prog := variant(k, fixed)
	st := explore.Run(prog, explore.Options{
		Runs:        runs,
		BaseSeed:    seed,
		Config:      k.Config(seed),
		WithRace:    k.Behavior == corpus.NonBlocking,
		ShadowWords: shadow,
		Context:     ctx,
		InjectorFor: injectorFor(injOpts),
	})
	label := "buggy"
	if fixed {
		label = "fixed"
	}
	if injOpts != nil {
		label += fmt.Sprintf(", %d faults/run", injOpts.Budget)
	}
	fmt.Printf("%s (%s, %d runs): manifested %d, deadlock %d, leak %d, panic %d, check-fail %d, race-detected %d\n",
		k.ID, label, st.Runs, st.Manifested, st.BuiltinDeadlocks, st.LeakRuns, st.Panics,
		st.CheckFailureRuns, st.RaceDetectedRuns)
	if st.Completed < st.Runs {
		fmt.Printf("    incomplete: %d/%d runs completed (%d host panics)\n", st.Completed, st.Runs, len(st.Errors))
	}
	for _, sample := range []string{st.SampleLeak, st.SamplePanic, st.SampleCheckFail, st.SampleRace} {
		if sample != "" {
			fmt.Printf("    e.g. %s\n", sample)
		}
	}
	fired := st.Manifested > 0 || st.RaceDetectedRuns > 0
	if fired {
		first := st.FirstManifestRun
		if first < 0 || (st.FirstDetectedRun >= 0 && st.FirstDetectedRun < first) {
			first = st.FirstDetectedRun
		}
		printReplay(k, fixed, first, seed, injOpts)
	}
	return fired
}

// systematicSweep exhaustively explores the kernel's schedule space instead
// of sampling seeds, optionally with dynamic partial-order reduction.
func systematicSweep(ctx context.Context, k kernels.Kernel, fixed bool, maxRuns int, dpor bool) {
	label := "buggy"
	if fixed {
		label = "fixed"
	}
	res := explore.Systematic(variant(k, fixed), explore.SystematicOptions{
		Config:    k.Config(0),
		MaxRuns:   maxRuns,
		Reduction: dpor,
		Context:   ctx,
	})
	mode := "full DFS"
	if dpor {
		mode = "DPOR"
	}
	fmt.Printf("%s (%s, %s): %d schedules (complete=%v, max depth %d), %d failing — %s",
		k.ID, label, mode, res.Runs, res.Complete, res.MaxDepth, res.Failures, res.Verdict)
	if dpor {
		fmt.Printf(", pruned %d, sleep-set hits %d", res.SchedulesPruned, res.SleepSetHits)
	}
	fmt.Println()
	if res.FirstFailure != nil {
		fmt.Printf("    first failing decision sequence: %v\n", res.FailureSchedule)
	}
}

// runVet sweeps seeds under the usage-rule checker and prints the distinct
// findings.
func runVet(k kernels.Kernel, fixed bool, runs int, seed int64) {
	distinct := map[string]bool{}
	for i := 0; i < runs; i++ {
		m, _ := vet.Check(k.Config(seed+int64(i)), variant(k, fixed))
		for _, v := range m.Violations() {
			distinct[v.String()] = true
		}
	}
	if len(distinct) == 0 {
		fmt.Println("    vet: no rule violations")
		return
	}
	for v := range distinct {
		fmt.Printf("    %s\n", v)
	}
}

// writeChromeTrace runs the kernel once with the streaming Chrome-trace
// sink attached, writing the Trace Event Format rendering as it executes.
func writeChromeTrace(k kernels.Kernel, fixed bool, seed int64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := k.Config(seed)
	cts := sim.NewChromeTraceSink(f)
	cfg.Sinks = []event.Sink{cts}
	sim.Run(cfg, variant(k, fixed))
	return cts.Err()
}

func printTrace(k kernels.Kernel, fixed bool, seed int64) {
	cfg := k.Config(seed)
	tc := &sim.TraceCollector{}
	det := race.New(0)
	cfg.Sinks = []event.Sink{tc, det}
	res := sim.Run(cfg, variant(k, fixed))
	fmt.Printf("--- trace of %s (seed %d, outcome %v) ---\n", k.ID, seed, res.Outcome)
	for _, e := range tc.Events() {
		fmt.Println(" ", e)
	}
	builtin := deadlock.Builtin{}.Detect(res)
	leak := deadlock.Leak{}.Detect(res)
	if builtin.Detected {
		fmt.Println(builtin.Message)
	}
	if leak.Detected {
		fmt.Println(leak.Message)
	}
	for _, r := range det.Reports() {
		fmt.Println(" ", r)
	}
}
