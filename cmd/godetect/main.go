// Command godetect runs bug kernels under the reimplemented detectors.
//
// Usage:
//
//	godetect -list                        # list every kernel
//	godetect -kernel kubernetes-finishreq # run one kernel's buggy variant
//	godetect -kernel docker-apiversion -fixed -runs 100
//	godetect -all                         # sweep every kernel
//	godetect -kernel grpc-lost-update -trace -seed 3
//	godetect -kernel docker-abba-order -systematic -dpor
//	godetect -detectors                   # list the detector registry
//	godetect -kernel etcd-wal-doubleclose -with race,vet,leak
//	godetect -kernel docker-abba-order -with race -record archive/
//	godetect -kernel docker-abba-order -with race,vet,leak -replay archive/
//	godetect serve -addr unix:///tmp/godetect.sock -store verdicts.db
//	godetect -remote unix:///tmp/godetect.sock -kernel docker-abba-order -with cycle
//
// Every mode routes through internal/engine, so a verdict is computed (and
// rendered) by exactly one code path whether it runs in-process, is served
// warm from a -store verdict cache, or comes back from a daemon over
// -remote. The rendering is wall-time-free and deterministic: equal
// requests print equal bytes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goconcbugs/internal/detect"
	"goconcbugs/internal/engine"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/store"
)

// verbs is the subcommand dispatch table: "godetect <verb> [flags]" routes
// here; anything else is the classic flag-driven one-shot mode. Verb files
// register themselves from init.
var verbs = map[string]func(args []string) int{}

func registerVerb(name string, fn func(args []string) int) { verbs[name] = fn }

func main() {
	if len(os.Args) > 1 {
		if fn, ok := verbs[os.Args[1]]; ok {
			os.Exit(fn(os.Args[2:]))
		}
	}
	os.Exit(oneShot(os.Args[1:]))
}

// oneShot is the default verb: parse the classic flag set, run one request
// (locally or against a daemon), print the canonical text, exit.
func oneShot(args []string) int {
	fs := flag.CommandLine
	list := fs.Bool("list", false, "list kernels")
	all := fs.Bool("all", false, "sweep every kernel")
	kernel := fs.String("kernel", "", "kernel id to run")
	fixed := fs.Bool("fixed", false, "run the fixed variant instead of the buggy one")
	runs := fs.Int("runs", 100, "number of seeded runs")
	seed := fs.Int64("seed", 0, "base seed")
	trace := fs.Bool("trace", false, "print the first run's event trace")
	shadow := fs.Int("shadow", 0, "race-detector shadow words (0 = Go's 4, negative = unbounded)")
	vetFlag := fs.Bool("vet", false, "also run the usage-rule checker (package vet)")
	catalog := fs.Bool("catalog", false, "emit the kernel catalog as Markdown (KERNELS.md)")
	chrome := fs.String("chrometrace", "", "write the first run's trace to this file in Chrome Trace Event Format")
	systematic := fs.Bool("systematic", false, "exhaustively explore every schedule instead of seeded sampling")
	dpor := fs.Bool("dpor", false, "with -systematic: prune equivalent interleavings via dynamic partial-order reduction")
	maxRuns := fs.Int("maxruns", 200_000, "with -systematic: schedule budget")
	conf := fs.Bool("conformance", false, "differentially test the sim against the real Go runtime on generated programs")
	programs := fs.Int("programs", 200, "with -conformance: number of generated programs")
	emitsrc := fs.Bool("emitsrc", false, "with -conformance: print the program generated for -seed as standalone Go source and exit")
	kinds := fs.String("kinds", "", "with -conformance: comma-separated primitive families to focus the generator on (cond,timer,ctx,sem); empty = all")
	detectorsFlag := fs.Bool("detectors", false, "list the detector registry")
	with := fs.String("with", "", "comma-separated detector set to sweep in one pass per run (see -detectors); non-zero exit if one fires on a -fixed kernel")
	faults := fs.Int("faults", 0, "inject up to this many scheduling faults per run (0 = off); non-zero exit if a -fixed kernel fires under injection")
	faultseed := fs.Int64("faultseed", 1, "base seed for the fault injector; run i perturbs with faultseed+i")
	aggressive := fs.Bool("aggressive", false, "with -faults: also inject program-changing faults (early timeouts, spurious wakeups, goroutine kills, panics, channel closes) — a correct program may legitimately fail under these")
	deadlineFlag := fs.Duration("deadline", 0, "wall-clock budget for sweeps and exploration; on expiry partial results are reported with an incomplete verdict")
	resume := fs.String("resume", "", "checkpoint file for -with sweeps: progress is saved there periodically and a restart with the same options resumes instead of re-running")
	faulttable := fs.Bool("faulttable", false, "emit the fault-injection experiment table (Markdown): schedules-to-first-detection with vs without benign injection, per study kernel")
	shards := fs.Int("shards", 1, "partition a -with sweep's seed range into this many contiguous shards, one process each (needs -resume for the shard checkpoints)")
	shardIdx := fs.Int("shard", 0, "with -shards: the 0-based shard this process sweeps")
	foldFlag := fs.Bool("fold", false, "with -shards: merge the shard checkpoints into the serial checkpoint and print the combined report instead of sweeping")
	record := fs.String("record", "", "with -with: archive every run of the sweep as trace/v1 files under this directory (re-judge offline with -replay); -all records into per-kernel subdirectories")
	replay := fs.String("replay", "", "re-judge a sweep archive recorded with -record instead of running live; pass the recording's -kernel/-all, -with, -runs, -seed, and -faults options (the detector set may differ — that is the point)")
	remote := fs.String("remote", "", "submit to a godetect daemon at this address (unix:///path/sock or host:port) instead of executing in-process")
	fleetHosts := fs.String("fleet", "", "comma-separated daemon addresses: fan a -with sweep's shards across them with retry, stealing, and local fallback (needs -kernel and -resume; composes with -shards); exit 3 if the sweep degraded to local execution")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Second, "with -fleet: how long a shard lease may run before another daemon may steal the shard")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "with -fleet: daemon health probe cadence; two consecutive failures mark a daemon unhealthy")
	hedgeAfter := fs.Duration("hedge-after", 0, "with -fleet: duplicate a shard still running after this long onto an idle daemon, first finisher wins (0 = off)")
	storePath := fs.String("store", "", "persistent verdict cache file: equal requests are served from it instead of re-running")
	statsFlag := fs.Bool("stats", false, "print the engine's stats as JSON after the run (alone with -remote: just query the daemon)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of this invocation to the file")
	memprofile := fs.String("memprofile", "", "write a heap profile to the file at exit")
	fs.Parse(args)

	// Every long-running mode is interruptible: SIGINT/SIGTERM stop
	// dispatching new runs and the partial results fold, so a checkpointed
	// sweep can resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadlineFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadlineFlag)
		defer cancel()
	}
	var injOpts *inject.Options
	if *faults > 0 {
		injOpts = &inject.Options{Seed: *faultseed, Budget: *faults, Aggressive: *aggressive}
	}

	prof, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		os.Exit(1)
	}

	// Every mode returns an exit code instead of calling os.Exit, so the
	// profile writers always flush no matter which path exits.
	code := func() int {
		if *faulttable {
			return runFaultTable(ctx, *runs, *faultseed)
		}
		if *detectorsFlag {
			for _, d := range detect.All() {
				fmt.Printf("%-8s %s\n", d.Name, d.Desc)
			}
			return 0
		}
		if *catalog {
			printCatalog()
			return 0
		}
		if *conf && *emitsrc {
			return runEmitSrc(*seed, *kinds)
		}

		var dets []detect.Detector
		if *with != "" {
			var err error
			if dets, err = detect.Parse(*with); err != nil {
				fmt.Fprintln(os.Stderr, "godetect:", err)
				return 1
			}
		}
		if (*record != "" || *replay != "") && dets == nil {
			fmt.Fprintln(os.Stderr, "godetect: -record/-replay archive detector sweeps; add -with (see -detectors)")
			return 2
		}
		if *replay != "" && (*record != "" || *shards > 1 || *foldFlag) {
			fmt.Fprintln(os.Stderr, "godetect: -replay re-judges an existing archive; it cannot be combined with -record, -shards, or -fold")
			return 2
		}
		if *fleetHosts != "" {
			if *kernel == "" || dets == nil || *resume == "" {
				fmt.Fprintln(os.Stderr, "godetect: -fleet needs -kernel, a -with detector sweep, and a -resume checkpoint base")
				return 2
			}
			if *all || *conf || *systematic || *replay != "" || *foldFlag || *remote != "" {
				fmt.Fprintln(os.Stderr, "godetect: -fleet runs one kernel's detector sweep; it cannot combine with -all, -conformance, -systematic, -replay, -fold, or -remote")
				return 2
			}
			ff := fleetFlags{hosts: *fleetHosts, leaseTimeout: *leaseTimeout,
				probeInterval: *probeInterval, hedgeAfter: *hedgeAfter}
			base := engineJob{
				fixed: *fixed, runs: *runs, seed: *seed, dets: detectorNames(dets),
				injOpts: injOpts, shards: *shards, resume: *resume,
			}
			return runFleet(ctx, ff, *kernel, base, *storePath)
		}
		if *shards > 1 || *foldFlag {
			if *shards <= 1 {
				fmt.Fprintln(os.Stderr, "godetect: -fold needs -shards N to know how many shard checkpoints to merge")
				return 2
			}
			if dets == nil || *resume == "" {
				fmt.Fprintln(os.Stderr, "godetect: -shards needs a -with detector sweep and a -resume checkpoint base")
				return 2
			}
			if !*foldFlag && (*shardIdx < 0 || *shardIdx >= *shards) {
				fmt.Fprintf(os.Stderr, "godetect: -shard %d out of range [0, %d)\n", *shardIdx, *shards)
				return 2
			}
		}

		// The submitter is where every remaining mode executes: a local
		// engine (optionally store-backed) or a daemon client. Jobs carry
		// the deadline themselves only on the remote path — locally the
		// engine context above already bounds them.
		sub, cleanup, err := newSubmitter(ctx, *remote, *storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect:", err)
			return 1
		}
		defer cleanup()
		var jobDeadline = *deadlineFlag
		if *remote == "" {
			jobDeadline = 0
		}

		base := engineJob{
			fixed: *fixed, runs: *runs, seed: *seed, dets: detectorNames(dets),
			injOpts: injOpts, shadow: *shadow, vet: *vetFlag,
			systematic: *systematic, dpor: *dpor, maxRuns: *maxRuns,
			shards: *shards, shardIdx: *shardIdx, fold: *foldFlag,
			record: *record, replay: *replay, resume: *resume,
			deadline: jobDeadline,
		}

		code := func() int {
			switch {
			case *statsFlag && *remote != "" && !*all && *kernel == "" && !*conf:
				// Bare stats query: -remote -stats with no job flags.
				return 0
			case *conf:
				return runConformanceJob(ctx, sub, *programs, *seed, *kinds, jobDeadline)
			case *list:
				listKernels()
				return 0
			case *all:
				return runAll(ctx, sub, base)
			case *kernel != "":
				k, ok := kernels.ByID(*kernel)
				if !ok {
					fmt.Fprintf(os.Stderr, "godetect: unknown kernel %q (try -list)\n", *kernel)
					return 1
				}
				if *trace {
					printTrace(k, *fixed, *seed)
				}
				if *chrome != "" {
					if err := writeChromeTrace(k, *fixed, *seed, *chrome); err != nil {
						fmt.Fprintln(os.Stderr, "godetect:", err)
						return 1
					}
					fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
				}
				return runOne(ctx, sub, k.ID, base)
			default:
				fs.Usage()
				return 2
			}
		}()
		if *statsFlag && code != 2 {
			if err := printStats(ctx, sub); err != nil {
				fmt.Fprintln(os.Stderr, "godetect:", err)
				return 1
			}
		}
		return code
	}()
	prof()
	return code
}

// detectorNames maps a parsed detector set back to its registry names (the
// engine job carries names, not instances).
func detectorNames(dets []detect.Detector) []string {
	if dets == nil {
		return nil
	}
	names := make([]string, len(dets))
	for i, d := range dets {
		names[i] = d.Name
	}
	return names
}

// newSubmitter builds the execution backend: a daemon client when remote is
// set, otherwise an in-process engine, store-backed when storePath is set.
func newSubmitter(ctx context.Context, remote, storePath string) (submitter, func(), error) {
	if remote != "" {
		return remoteSubmitter{engine.NewClient(remote)}, func() {}, nil
	}
	var st *store.Store
	if storePath != "" {
		var err error
		if st, err = store.Open(storePath, store.Options{}); err != nil {
			return nil, nil, err
		}
	}
	// One job at a time, full fan-out inside it: the classic CLI profile.
	opts := engine.Options{Workers: 1, SweepWorkers: 0, Context: ctx}
	if st != nil {
		// Assigned conditionally: a typed-nil *store.Store inside the
		// VerdictStore interface would defeat the engine's nil checks.
		opts.Store = st
	}
	eng := engine.New(opts)
	cleanup := func() {
		eng.Close()
		if st != nil {
			st.Close()
		}
	}
	return localSubmitter{eng}, cleanup, nil
}
