package main

import (
	"context"
	"fmt"
	"os"

	"goconcbugs/internal/conformance"
)

// runConformance is the CLI face of internal/conformance: a seeded sweep of
// generated programs cross-checked between the simulated and real runtimes.
// With emitsrc it instead prints the program a seed generates, both as IR
// and as the standalone Go source the subprocess oracles build — the fast
// way to inspect what a divergence report's seed means.
func runConformance(ctx context.Context, programs int, seed int64, emitsrc bool, kinds string) int {
	fams, err := conformance.ParseFamilies(kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		return 1
	}
	if emitsrc {
		p := conformance.GenerateWith(seed, conformance.ModeSafe, fams)
		fmt.Fprintf(os.Stderr, "%s\n", p)
		fmt.Print(conformance.EmitGo(p))
		return 0
	}
	st := conformance.Sweep(conformance.SweepOptions{
		Programs: programs,
		BaseSeed: seed,
		Context:  ctx,
		Check:    conformance.CheckOptions{Families: &fams},
	})
	fmt.Printf("conformance: %d programs from seed %d — %d checked, %d strict (complete exploration), %d sim schedules — %s\n",
		st.Programs, seed, st.Completed, st.Strict, st.Schedules, st.Verdict)
	fmt.Printf("host outcomes: done %d, hung %d, panic %d; must-deadlock confirmed hung: %d\n",
		st.HostKinds[conformance.KindDone], st.HostKinds[conformance.KindHung],
		st.HostKinds[conformance.KindPanic], st.AllHungConfirmed)
	fmt.Printf("kind coverage (programs containing each statement kind, %d liveness-checked):\n", st.SignalGuaranteed)
	for _, k := range conformance.AllStmtKinds {
		if n := st.KindCoverage[k]; n > 0 {
			fmt.Printf("  %-16s %d\n", k, n)
		}
	}
	if st.StepLimited > 0 {
		fmt.Printf("WARNING: %d schedules hit the sim step budget (harness bug: IR programs are loop-free)\n", st.StepLimited)
	}
	if len(st.Divergences) == 0 {
		fmt.Println("no divergences")
		return 0
	}
	for _, d := range st.Divergences {
		fmt.Printf("\n%v\n", d)
	}
	fmt.Printf("\n%d divergence(s)\n", len(st.Divergences))
	return 1
}
