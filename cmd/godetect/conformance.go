package main

import (
	"fmt"
	"os"

	"goconcbugs/internal/conformance"
)

// runEmitSrc prints the program -seed generates, both as IR (stderr) and as
// the standalone Go source the subprocess oracles build (stdout) — the fast
// way to inspect what a divergence report's seed means. The conformance
// sweep itself runs through the engine (run.go); only this inspection mode
// stays CLI-local.
func runEmitSrc(seed int64, kinds string) int {
	fams, err := conformance.ParseFamilies(kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		return 1
	}
	p := conformance.GenerateWith(seed, conformance.ModeSafe, fams)
	fmt.Fprintf(os.Stderr, "%s\n", p)
	fmt.Print(conformance.EmitGo(p))
	return 0
}
