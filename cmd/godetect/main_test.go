package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// See cmd/gobugstudy/main_test.go for the exec-self pattern.
func TestMain(m *testing.M) {
	if os.Getenv("GODETECT_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GODETECT_BE_CLI=1")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

func TestListKernels(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"boltdb-240-chan-mutex", "[study-set]", "non-blocking"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -list output", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 41 {
		t.Errorf("-list shows %d kernels, want at least the 41 study-set ones", lines)
	}
}

func TestRunOneKernel(t *testing.T) {
	out, _, code := runCLI(t, "-kernel", "boltdb-240-chan-mutex", "-fixed", "-runs", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "boltdb-240-chan-mutex (fixed, 5 runs)") {
		t.Errorf("missing sweep line in:\n%s", out)
	}
}

func TestUnknownKernelExits1(t *testing.T) {
	_, stderr, code := runCLI(t, "-kernel", "no-such-kernel")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown kernel "no-such-kernel"`) {
		t.Errorf("stderr lacks diagnostic:\n%s", stderr)
	}
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, stderr, code := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Errorf("stderr lacks usage text:\n%s", stderr)
	}
}

func TestConformanceSweep(t *testing.T) {
	out, _, code := runCLI(t, "-conformance", "-programs", "25", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"conformance: 25 programs from seed 1", "host outcomes:", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConformanceEmitSrc(t *testing.T) {
	out, stderr, code := runCLI(t, "-conformance", "-emitsrc", "-seed", "4")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"package main", "func main() {", "CONFORMANCE-VARS"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in emitted source:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr, "program seed=4") {
		t.Errorf("stderr lacks the IR rendering:\n%s", stderr)
	}
}

// TestRecordThenReplaySweep archives a detector sweep with -record, re-judges
// it with -replay, and requires the offline checkpoint to be byte-identical
// to the live sweep's — the CLI face of the trace-in, verdict-out contract.
func TestRecordThenReplaySweep(t *testing.T) {
	dir := t.TempDir()
	arch := filepath.Join(dir, "archive")
	cpLive := filepath.Join(dir, "live.ckpt")
	cpReplay := filepath.Join(dir, "replay.ckpt")

	out, _, code := runCLI(t, "-kernel", "docker-abba-order", "-with", "race,leak",
		"-runs", "10", "-record", arch, "-resume", cpLive)
	if code != 0 {
		t.Fatalf("record sweep: exit %d:\n%s", code, out)
	}
	if traces, _ := filepath.Glob(filepath.Join(arch, "*.trace")); len(traces) != 10 {
		t.Fatalf("archive holds %d trace files, want 10", len(traces))
	}

	out, _, code = runCLI(t, "-kernel", "docker-abba-order", "-with", "race,leak",
		"-runs", "10", "-replay", arch, "-resume", cpReplay)
	if code != 0 {
		t.Fatalf("replay sweep: exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "offline replay") {
		t.Errorf("replay output lacks the offline-replay label:\n%s", out)
	}

	live, err := os.ReadFile(cpLive)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := os.ReadFile(cpReplay)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, replay) {
		t.Error("replay checkpoint is not byte-identical to the live sweep's")
	}
}

func TestRecordReplayFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"-kernel", "docker-abba-order", "-record", "x"},                                 // no -with
		{"-kernel", "docker-abba-order", "-replay", "x"},                                 // no -with
		{"-kernel", "docker-abba-order", "-with", "race", "-replay", "x", "-record", "y"}, // both
	} {
		if _, stderr, code := runCLI(t, tc...); code != 2 {
			t.Errorf("%v: exit %d, want 2; stderr:\n%s", tc, code, stderr)
		}
	}
}
