package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"testing"

	"goconcbugs/internal/engine"
)

// fakeSubmitter serves canned stats plus a health probe that may fail — the
// shape of pointing the CLI at an older daemon without /v1/health.
type fakeSubmitter struct {
	health    engine.Health
	healthErr error
}

func (f fakeSubmitter) Submit(context.Context, engine.Job) (*engine.Result, error) {
	return nil, errors.New("not under test")
}
func (f fakeSubmitter) Stats(context.Context) (engine.Stats, error) {
	return engine.Stats{}, nil
}
func (f fakeSubmitter) Health(context.Context) (engine.Health, error) {
	return f.health, f.healthErr
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fnErr := fn()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), fnErr
}

// TestPrintStatsHealthErrorNonFatal: a failing health probe (e.g. a 404 from
// a daemon predating the endpoint) must not sink the stats that were already
// fetched — they print with the failure noted under "healthError".
func TestPrintStatsHealthErrorNonFatal(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return printStats(context.Background(), fakeSubmitter{healthErr: errors.New("404 page not found")})
	})
	if err != nil {
		t.Fatalf("printStats failed on health error: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("stats output is not JSON: %v\n%s", err, out)
	}
	if _, ok := m["healthError"]; !ok {
		t.Error("healthError note missing from stats output")
	}
	if _, ok := m["health"]; ok {
		t.Error("health key present despite failed probe")
	}
}

// TestPrintStatsIncludesHealth: a working probe lands under "health" with
// the stats fields still top-level.
func TestPrintStatsIncludesHealth(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return printStats(context.Background(), fakeSubmitter{health: engine.Health{Status: "ok"}})
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("stats output is not JSON: %v\n%s", err, out)
	}
	if _, ok := m["health"]; !ok {
		t.Error("health key missing from stats output")
	}
	if _, ok := m["healthError"]; ok {
		t.Error("healthError present on a successful probe")
	}
}
