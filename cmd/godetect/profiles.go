package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles turns on the requested pprof outputs and returns the flush
// hook main runs before exiting (os.Exit skips defers, so dispatch paths
// return codes instead of exiting directly).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the live set the profile reports
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "godetect: heap profile:", err)
		}
	}, nil
}
