package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"goconcbugs/internal/engine"
	"goconcbugs/internal/fleet"
	"goconcbugs/internal/store"
)

// exitDegraded is the pinned exit code for a fleet sweep that completed
// only by falling back to local execution: the verdict is sound, the fleet
// is not. Scripts gate on it.
const exitDegraded = 3

// fleetFlags carries the fleet-only knobs from the flag set.
type fleetFlags struct {
	hosts         string
	leaseTimeout  time.Duration
	probeInterval time.Duration
	hedgeAfter    time.Duration
}

// runFleet fans the one-kernel sweep across the -fleet daemons. The
// canonical fold text goes to stdout — byte-comparable with a serial run —
// and the nondeterministic scheduling report goes to stderr as JSON.
func runFleet(ctx context.Context, ff fleetFlags, kernelID string, b engineJob, storePath string) int {
	hosts := splitHosts(ff.hosts)

	// The template must be a plain unsharded sweep: the fleet owns the
	// shard coordinates and checkpoint placement.
	tmpl := b
	tmpl.shards, tmpl.shardIdx, tmpl.fold = 1, 0, false
	resume := tmpl.resume
	tmpl.resume = ""
	job := tmpl.job(kernelID, false)

	local := engine.Options{Workers: 1}
	if storePath != "" {
		st, err := store.Open(storePath, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect:", err)
			return 1
		}
		defer st.Close()
		local.Store = st
	}

	rep, err := fleet.Run(ctx, job, fleet.Options{
		Hosts:          hosts,
		Shards:         b.shards,
		CheckpointBase: resume,
		LeaseTimeout:   ff.leaseTimeout,
		ProbeInterval:  ff.probeInterval,
		HedgeAfter:     ff.hedgeAfter,
		LocalEngine:    local,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		return 1
	}

	fmt.Print(rep.Result.Text)
	view := struct {
		Degraded    bool                `json:"degraded"`
		LocalShards int                 `json:"localShards"`
		Shards      int                 `json:"shards"`
		Daemons     []fleet.DaemonReport `json:"daemons"`
	}{rep.Degraded, rep.LocalShards, rep.Shards, rep.Daemons}
	if raw, merr := json.MarshalIndent(view, "", "  "); merr == nil {
		fmt.Fprintln(os.Stderr, string(raw))
	}

	if rep.Degraded {
		return exitDegraded
	}
	return b.fireExit(rep.Result)
}

func splitHosts(s string) []string {
	var hosts []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	return hosts
}
