package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goconcbugs/internal/engine"
	"goconcbugs/internal/store"
)

func init() { registerVerb("serve", cmdServe) }

// cmdServe runs godetect as a daemon: an engine worker pool behind the HTTP
// API, fronted by the persistent verdict store. SIGTERM/SIGINT drain
// gracefully — in-flight jobs finish, the store syncs, then the process
// exits — so a SIGKILL is the only way to lose the (still crash-safe)
// cache.
func cmdServe(args []string) int {
	fs := flag.NewFlagSet("godetect serve", flag.ExitOnError)
	addr := fs.String("addr", "unix:///tmp/godetect.sock", "listen address: unix:///path/sock (or a bare path), else host:port")
	storePath := fs.String("store", "", "persistent verdict cache file (empty = in-memory only for this process's lifetime)")
	maxBytes := fs.Int64("storebytes", store.DefaultMaxBytes, "verdict cache size bound; least-recently-used entries are evicted past it")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "job-executing workers, each owning a warm runtime pool")
	sweepWorkers := fs.Int("sweepworkers", 1, "per-job run fan-out; 1 keeps jobs the unit of parallelism")
	queueDepth := fs.Int("queue", 256, "pending-job bound; submissions past it get HTTP 503")
	drain := fs.Duration("drain", time.Minute, "graceful-shutdown budget for in-flight jobs and blocked waiters")
	fs.Parse(args)

	var st *store.Store
	if *storePath != "" {
		var err error
		if st, err = store.Open(*storePath, store.Options{MaxBytes: *maxBytes}); err != nil {
			fmt.Fprintln(os.Stderr, "godetect serve:", err)
			return 1
		}
		defer st.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := engine.Options{
		Workers: *workers, SweepWorkers: *sweepWorkers, QueueDepth: *queueDepth,
	}
	if st != nil {
		// Conditional so an uncached daemon gets a nil interface, not a
		// typed-nil *store.Store that would dodge the engine's nil checks.
		opts.Store = st
	}
	eng := engine.New(opts)
	srv := engine.NewServer(eng)
	if network, address := engine.SplitAddr(*addr); network == "unix" {
		// A previous unclean exit leaves the socket file behind; a fresh
		// daemon owns the address.
		os.Remove(address)
	}
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "godetect serve:", err)
		eng.Close()
		return 1
	}
	fmt.Fprintf(os.Stderr, "godetect serve: listening on %s\n", srv.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "godetect serve: draining")
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "godetect serve: drain:", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect serve:", err)
			eng.Close()
			return 1
		}
	}
	eng.Close() // drains already-accepted jobs
	return 0
}
