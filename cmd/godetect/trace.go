package main

import (
	"fmt"
	"os"
	"path/filepath"

	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/event"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

func variant(k kernels.Kernel, fixed bool) sim.Program {
	if fixed {
		return k.Fixed
	}
	return k.Buggy
}

// kernelDir places one kernel's archive under an -all record/replay base
// directory; an empty base stays empty (feature off).
func kernelDir(base, id string) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, id)
}

// writeChromeTrace runs the kernel once with the streaming Chrome-trace
// sink attached, writing the Trace Event Format rendering as it executes.
func writeChromeTrace(k kernels.Kernel, fixed bool, seed int64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := k.Config(seed)
	cts := sim.NewChromeTraceSink(f)
	cfg.Sinks = []event.Sink{cts}
	sim.Run(cfg, variant(k, fixed))
	return cts.Err()
}

func printTrace(k kernels.Kernel, fixed bool, seed int64) {
	cfg := k.Config(seed)
	tc := &sim.TraceCollector{}
	det := race.New(0)
	cfg.Sinks = []event.Sink{tc, det}
	res := sim.Run(cfg, variant(k, fixed))
	fmt.Printf("--- trace of %s (seed %d, outcome %v) ---\n", k.ID, seed, res.Outcome)
	for _, e := range tc.Events() {
		fmt.Println(" ", e)
	}
	builtin := deadlock.Builtin{}.Detect(res)
	leak := deadlock.Leak{}.Detect(res)
	if builtin.Detected {
		fmt.Println(builtin.Message)
	}
	if leak.Detected {
		fmt.Println(leak.Message)
	}
	for _, r := range det.Reports() {
		fmt.Println(" ", r)
	}
}
