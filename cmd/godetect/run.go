package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"goconcbugs/internal/engine"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// submitter is the execution backend every one-shot mode runs against: an
// in-process engine or a daemon client. Both return the same canonical
// Result — the CLI only prints Text and derives exit codes.
type submitter interface {
	Submit(ctx context.Context, job engine.Job) (*engine.Result, error)
	Stats(ctx context.Context) (engine.Stats, error)
}

type localSubmitter struct{ eng *engine.Engine }

// Submit waits on a background context: the engine's own (signal) context
// bounds execution, and a canceled sweep still folds partial results the
// user should see.
func (s localSubmitter) Submit(_ context.Context, job engine.Job) (*engine.Result, error) {
	return s.eng.Submit(context.Background(), job)
}

func (s localSubmitter) Stats(context.Context) (engine.Stats, error) { return s.eng.Stats(), nil }

type remoteSubmitter struct{ c *engine.Client }

func (s remoteSubmitter) Submit(ctx context.Context, job engine.Job) (*engine.Result, error) {
	return s.c.Submit(ctx, job)
}

func (s remoteSubmitter) Stats(ctx context.Context) (engine.Stats, error) { return s.c.Stats(ctx) }

// Health exposes the daemon's load-and-liveness snapshot; printStats folds
// it into the -stats JSON for remote backends only (local health is the
// process itself).
func (s remoteSubmitter) Health(ctx context.Context) (engine.Health, error) { return s.c.Health(ctx) }

// engineJob is the parsed flag set in job-building form: job() spells it as
// an engine.Job for one kernel.
type engineJob struct {
	fixed            bool
	runs             int
	seed             int64
	dets             []string
	injOpts          *inject.Options
	shadow           int
	vet              bool
	systematic, dpor bool
	maxRuns          int
	shards, shardIdx int
	fold             bool
	record           string
	replay           string
	resume           string
	deadline         time.Duration
}

func (b engineJob) job(kernelID string, all bool) engine.Job {
	j := engine.Job{Kernel: kernelID, Fixed: b.fixed, Seed: b.seed, Deadline: b.deadline}
	if b.injOpts != nil {
		j.Faults, j.FaultSeed, j.Aggressive = b.injOpts.Budget, b.injOpts.Seed, b.injOpts.Aggressive
	}
	switch {
	case b.systematic:
		j.Kind = engine.KindSystematic
		j.MaxRuns, j.DPOR = b.maxRuns, b.dpor
	case len(b.dets) > 0:
		j.Kind = engine.KindSweep
		j.Runs = b.runs
		j.Detectors = b.dets
		j.Checkpoint = b.resume
		j.RecordDir, j.ReplayDir = b.record, b.replay
		if all {
			// -all splits checkpoints and archives per kernel.
			if b.resume != "" {
				j.Checkpoint = b.resume + "." + kernelID
			}
			j.RecordDir = kernelDir(b.record, kernelID)
			j.ReplayDir = kernelDir(b.replay, kernelID)
		}
		if b.shards > 1 {
			j.Shards, j.Shard = b.shards, b.shardIdx
		}
		j.Fold = b.fold
	default:
		j.Kind = engine.KindRun
		j.Runs = b.runs
		j.Shadow = b.shadow
		j.Vet = b.vet
	}
	return j
}

// fireExit turns a result's fired bit into the mode's exit code: detector
// sweeps gate -fixed kernels, plain sweeps gate -fixed only under fault
// injection (the chaos gate), systematic exploration always exits 0.
func (b engineJob) fireExit(res *engine.Result) int {
	if !res.Fired || !b.fixed {
		return 0
	}
	switch {
	case b.systematic:
		return 0
	case len(b.dets) > 0:
		return 1
	case b.injOpts != nil:
		return 1
	}
	return 0
}

// runOne executes the single-kernel mode.
func runOne(ctx context.Context, sub submitter, kernelID string, b engineJob) int {
	res, err := sub.Submit(ctx, b.job(kernelID, false))
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		return 1
	}
	fmt.Print(res.Text)
	return b.fireExit(res)
}

// runAll sweeps every registered kernel, folding the per-kernel exit codes
// the way the classic CLI did: any -fixed fire fails the invocation.
func runAll(ctx context.Context, sub submitter, b engineJob) int {
	code := 0
	for _, k := range kernels.All() {
		res, err := sub.Submit(ctx, b.job(k.ID, true))
		if err != nil {
			fmt.Fprintln(os.Stderr, "godetect:", err)
			return 1
		}
		fmt.Print(res.Text)
		if b.fireExit(res) != 0 {
			code = 1
		}
	}
	return code
}

// runConformanceJob executes the -conformance sweep; divergences exit 1.
func runConformanceJob(ctx context.Context, sub submitter, programs int, seed int64, kinds string, deadline time.Duration) int {
	res, err := sub.Submit(ctx, engine.Job{
		Kind: engine.KindConformance, Programs: programs, Seed: seed,
		Families: kinds, Deadline: deadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "godetect:", err)
		return 1
	}
	fmt.Print(res.Text)
	if res.Fired {
		return 1
	}
	return 0
}

// injectorFor adapts fault options to the per-run injector hook of the
// exploration harnesses; nil options mean no injection. (The engine builds
// its own from job fields — this adapter serves the CLI-local fault table.)
func injectorFor(injOpts *inject.Options) func(run int, seed int64) sim.Injector {
	if injOpts == nil {
		return nil
	}
	opts := *injOpts
	return func(run int, seed int64) sim.Injector { return inject.ForRun(opts, run) }
}

// printStats renders the backend's counters as JSON (the -stats flag). A
// remote backend additionally reports the daemon's /v1/health snapshot
// under a "health" key; the stats fields stay top-level so existing
// consumers keep parsing. A failed health fetch (an older daemon without
// the endpoint, say) is non-fatal: the stats still print, with the error
// noted under "healthError" instead.
func printStats(ctx context.Context, sub submitter) error {
	st, err := sub.Stats(ctx)
	if err != nil {
		return err
	}
	var out any = st
	if h, ok := sub.(interface {
		Health(context.Context) (engine.Health, error)
	}); ok {
		var m map[string]any
		raw, err := json.Marshal(st)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			return err
		}
		if health, herr := h.Health(ctx); herr != nil {
			m["healthError"] = herr.Error()
		} else {
			m["health"] = health
		}
		out = m
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(raw))
	return nil
}
