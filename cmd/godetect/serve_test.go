package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"goconcbugs/internal/engine"
)

// startDaemon execs this test binary as `godetect serve` on a unix socket
// under dir, waits until it answers, and returns the socket address plus a
// stop function (SIGTERM + wait for the graceful drain).
func startDaemon(t *testing.T, dir string, extra ...string) (string, func()) {
	t.Helper()
	sock := filepath.Join(dir, "d.sock")
	args := append([]string{"serve", "-addr", "unix://" + sock}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GODETECT_BE_CLI=1")
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = root
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("daemon did not drain within 30s of SIGTERM")
		}
	}
	t.Cleanup(stop)

	// Readiness: the socket file appears, then stats answers.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, _, code := runCLI(t, "-remote", "unix://"+sock, "-stats"); code == 0 {
			return "unix://" + sock, stop
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not become ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func daemonStats(t *testing.T, addr string) engine.Stats {
	t.Helper()
	out, stderr, code := runCLI(t, "-remote", addr, "-stats")
	if code != 0 {
		t.Fatalf("-stats exit %d: %s", code, stderr)
	}
	var st engine.Stats
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("stats JSON: %v in:\n%s", err, out)
	}
	return st
}

// TestServeRemoteMatchesOneShot is the CLI face of the service invariant:
// the same request through `-remote` (cold, then warm from the daemon's
// store) prints exactly the bytes the one-shot CLI prints.
func TestServeRemoteMatchesOneShot(t *testing.T) {
	dir := t.TempDir()
	addr, _ := startDaemon(t, dir, "-store", filepath.Join(dir, "verdicts.db"))

	args := []string{"-kernel", "docker-abba-order", "-with", "cycle,race", "-runs", "10", "-seed", "3"}
	local, _, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("one-shot exit %d", code)
	}

	cold, _, code := runCLI(t, append([]string{"-remote", addr}, args...)...)
	if code != 0 {
		t.Fatalf("remote cold exit %d", code)
	}
	if cold != local {
		t.Fatalf("daemon cold output diverged from one-shot:\n--- local ---\n%s--- remote ---\n%s", local, cold)
	}
	warm, _, code := runCLI(t, append([]string{"-remote", addr}, args...)...)
	if code != 0 {
		t.Fatalf("remote warm exit %d", code)
	}
	if warm != local {
		t.Fatalf("daemon warm output diverged from one-shot:\n--- local ---\n%s--- remote ---\n%s", local, warm)
	}

	st := daemonStats(t, addr)
	if st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("daemon stats %+v, want 1 executed / 1 cache hit", st)
	}
}

// TestServeStoreSurvivesRestart restarts the daemon over the same store
// file and requires the verdict to come back from cache, identical.
func TestServeStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "verdicts.db")
	args := []string{"-kernel", "grpc-lost-update", "-with", "race", "-runs", "10", "-seed", "5"}

	addr, stop := startDaemon(t, dir, "-store", db)
	first, _, code := runCLI(t, append([]string{"-remote", addr}, args...)...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	stop()

	addr2, _ := startDaemon(t, dir, "-store", db)
	second, _, code := runCLI(t, append([]string{"-remote", addr2}, args...)...)
	if code != 0 {
		t.Fatalf("exit %d after restart", code)
	}
	if second != first {
		t.Fatal("restarted daemon served different bytes")
	}
	st := daemonStats(t, addr2)
	if st.Executed != 0 || st.CacheHits != 1 {
		t.Fatalf("restarted daemon stats %+v, want 0 executed / 1 hit", st)
	}
}

// TestRemoteExitCodes: the fired-on-fixed regression gate works through the
// daemon exactly as it does locally.
func TestRemoteExitCodes(t *testing.T) {
	dir := t.TempDir()
	addr, _ := startDaemon(t, dir)
	// Fixed variant, no detector fires: exit 0.
	if out, _, code := runCLI(t, "-remote", addr, "-kernel", "docker-abba-order", "-fixed", "-with", "cycle", "-runs", "5"); code != 0 {
		t.Fatalf("fixed quiet sweep exit %d:\n%s", code, out)
	}
	// Buggy variant fires but is not -fixed: still exit 0.
	if _, _, code := runCLI(t, "-remote", addr, "-kernel", "docker-abba-order", "-with", "cycle", "-runs", "5"); code != 0 {
		t.Fatalf("buggy sweep exit %d, want 0", code)
	}
	// Unknown kernel through the API: exit 1 with a diagnostic.
	_, stderr, code := runCLI(t, "-remote", addr, "-kernel", "no-such-kernel")
	if code != 1 || !strings.Contains(stderr, "no-such-kernel") {
		t.Fatalf("unknown kernel via daemon: exit %d, stderr:\n%s", code, stderr)
	}
}

// TestServeLocalStoreFlag: the one-shot CLI with -store also serves warm
// results (no daemon involved), and -stats reports the hit.
func TestOneShotStoreFlag(t *testing.T) {
	db := filepath.Join(t.TempDir(), "verdicts.db")
	args := []string{"-store", db, "-kernel", "docker-abba-order", "-with", "cycle", "-runs", "10", "-seed", "2"}
	first, _, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	out, _, code := runCLI(t, append(args, "-stats")...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, first) {
		t.Fatalf("warm one-shot output diverged:\n%s\nvs\n%s", first, out)
	}
	var st engine.Stats
	if err := json.Unmarshal([]byte(strings.TrimPrefix(out, first)), &st); err != nil {
		t.Fatalf("trailing -stats JSON: %v", err)
	}
	if st.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 cache hit", st)
	}
}
