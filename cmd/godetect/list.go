package main

import (
	"fmt"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/kernels"
)

func listKernels() {
	for _, k := range kernels.All() {
		tag := ""
		if k.InDetectorStudy {
			tag = " [study-set]"
		}
		fig := ""
		if k.Figure > 0 {
			fig = fmt.Sprintf(" (Figure %d)", k.Figure)
		}
		fmt.Printf("%-34s %-12s %s%s%s\n", k.ID, k.Behavior, k.App, fig, tag)
	}
}

// printCatalog renders the registry as the Markdown catalog checked in as
// KERNELS.md.
func printCatalog() {
	fmt.Println("# Bug kernel catalog")
	fmt.Println()
	fmt.Println("Generated with `go run ./cmd/godetect -catalog > KERNELS.md`.")
	fmt.Println("Each kernel reproduces one studied bug as a Buggy/Fixed program pair")
	fmt.Println("against the deterministic runtime (`internal/sim`); run one with")
	fmt.Println("`go run ./cmd/godetect -kernel <id> [-fixed] [-trace] [-vet]`.")
	for _, behavior := range []corpus.Behavior{corpus.Blocking, corpus.NonBlocking} {
		fmt.Printf("\n## %s bugs\n\n", behavior)
		fmt.Println("| Kernel | App | Class | Figure | Study set | Bug | Fix |")
		fmt.Println("|---|---|---|---|---|---|---|")
		for _, k := range kernels.All() {
			if k.Behavior != behavior {
				continue
			}
			class := string(k.BlockClass)
			if behavior == corpus.NonBlocking {
				class = string(k.NBCause)
			}
			fig, study := "", ""
			if k.Figure > 0 {
				fig = fmt.Sprintf("Fig. %d", k.Figure)
			}
			if k.InDetectorStudy {
				study = "Table 8"
				if behavior == corpus.NonBlocking {
					study = "Table 12"
				}
			}
			fmt.Printf("| `%s` | %s | %s | %s | %s | %s | %s |\n",
				k.ID, k.App, class, fig, study,
				oneLine(k.Description), oneLine(k.FixDescription))
		}
	}
}

func oneLine(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' || r == '|' {
			r = ' '
		}
		out = append(out, r)
	}
	return string(out)
}
