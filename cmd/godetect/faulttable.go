package main

import (
	"context"
	"fmt"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
)

// runFaultTable regenerates the fault-injection experiment table in
// EXPERIMENTS.md: for every study-set kernel, the first run (seed index) at
// which the buggy variant manifests or is detected, with and without benign
// fault injection, plus the soundness column — the fixed variant must stay
// quiet under the same injection. Blocking kernels count manifestation
// (deadlock/leak); non-blocking kernels run under the race detector and
// count first detection.
func runFaultTable(ctx context.Context, runs int, faultseed int64) int {
	injOpts := inject.Options{Seed: faultseed, Budget: inject.DefaultBudget}
	fmt.Println("| Kernel | Behavior | No faults: hits (first) | Benign faults: hits (first) | Fixed quiet under faults |")
	fmt.Println("|---|---|---|---|---|")
	unsound := 0
	for _, k := range kernels.All() {
		if !k.InDetectorStudy {
			continue
		}
		if ctx.Err() != nil {
			fmt.Printf("\n(interrupted: %v)\n", ctx.Err())
			return 1
		}
		withRace := k.Behavior == corpus.NonBlocking
		base := explore.Options{
			Runs: runs, Config: k.Config(0), WithRace: withRace, Context: ctx,
		}
		injected := base
		injected.InjectorFor = injectorFor(&injOpts)

		plain := explore.Run(k.Buggy, base)
		faulted := explore.Run(k.Buggy, injected)
		fixedSt := explore.Run(k.Fixed, injected)
		quiet := fixedSt.Manifested == 0 && fixedSt.RaceDetectedRuns == 0 && len(fixedSt.Errors) == 0
		quietCell := "yes"
		if !quiet {
			quietCell = "**NO**"
			unsound++
		}
		fmt.Printf("| `%s` | %s | %s | %s | %s |\n",
			k.ID, k.Behavior, hitCell(plain), hitCell(faulted), quietCell)
	}
	fmt.Printf("\n%d runs per cell, fault budget %d/run, fault seed %d (replay any cell with `-runs %d -faults %d -faultseed %d`).\n",
		runs, injOpts.Budget, faultseed, runs, injOpts.Budget, faultseed)
	if unsound > 0 {
		fmt.Printf("\nUNSOUND: %d fixed kernel(s) fired under benign injection\n", unsound)
		return 1
	}
	return 0
}

// hitCell renders one sweep's detection evidence: how many runs hit the bug
// (manifested or race-detected, whichever is larger — they overlap) and the
// earliest run index that did.
func hitCell(st *explore.Stats) string {
	hits := st.Manifested
	if st.RaceDetectedRuns > hits {
		hits = st.RaceDetectedRuns
	}
	first := st.FirstManifestRun
	if first < 0 || (st.FirstDetectedRun >= 0 && st.FirstDetectedRun < first) {
		first = st.FirstDetectedRun
	}
	if hits == 0 {
		return fmt.Sprintf("0/%d", st.Runs)
	}
	return fmt.Sprintf("%d/%d (run %d)", hits, st.Runs, first)
}
