// Package daemon is a miniature container daemon written in the style of
// the Docker code the paper measured: Mutex-dominant shared-memory
// synchronization (≈63% of primitive usages), a significant channel share
// (≈28%), and goroutines created mostly from anonymous functions.
package daemon

import (
	"fmt"
	"sync"
	"time"
)

// Container is one managed container.
type Container struct {
	mu      sync.Mutex
	ID      string
	State   string
	ExitErr error
}

// SetState transitions the container under its lock.
func (c *Container) SetState(s string) {
	c.mu.Lock()
	c.State = s
	c.mu.Unlock()
}

// Daemon owns the container table and the event stream.
type Daemon struct {
	mu         sync.Mutex
	containers map[string]*Container
	events     chan string
	initOnce   sync.Once
}

// New creates a daemon.
func New() *Daemon {
	return &Daemon{
		containers: make(map[string]*Container),
		events:     make(chan string, 64),
	}
}

// Init lazily initializes shared state exactly once.
func (d *Daemon) Init() {
	d.initOnce.Do(func() {
		d.events <- "daemon-started"
	})
}

// Add registers a container.
func (d *Daemon) Add(c *Container) {
	d.mu.Lock()
	d.containers[c.ID] = c
	d.mu.Unlock()
	d.events <- "add:" + c.ID
}

// Get looks a container up.
func (d *Daemon) Get(id string) *Container {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.containers[id]
}

// StartAll launches every container; each start runs on its own goroutine,
// the common Docker pattern.
func (d *Daemon) StartAll() {
	d.mu.Lock()
	list := make([]*Container, 0, len(d.containers))
	for _, c := range d.containers {
		list = append(list, c)
	}
	d.mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(len(list))
	for _, c := range list {
		c := c
		go func() {
			defer wg.Done()
			c.SetState("running")
			d.events <- "start:" + c.ID
		}()
	}
	wg.Wait()
}

// Events exposes the daemon's event stream.
func (d *Daemon) Events() <-chan string { return d.events }

// Monitor drains events until the stop channel closes.
func (d *Daemon) Monitor(stop chan struct{}) {
	go func() {
		for {
			select {
			case e := <-d.events:
				_ = e
			case <-stop:
				return
			}
		}
	}()
}

// WaitExit polls a container's state with a timeout, a select-over-timer
// pattern.
func (d *Daemon) WaitExit(id string, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() {
		c := d.Get(id)
		c.mu.Lock()
		err := c.ExitErr
		c.mu.Unlock()
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("wait %s: timeout", id)
	}
}
