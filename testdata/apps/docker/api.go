package daemon

import (
	"fmt"
	"sync"
)

// This file carries the daemon's API layer — including, deliberately, the
// Figure 8 bug the paper's Section 7 detector targets: a loop variable
// captured by anonymous goroutines.

// APIServer fans version probes out to client goroutines.
type APIServer struct {
	mu       sync.Mutex
	versions []string
}

// ProbeVersions reproduces the Docker bug of Figure 8: every goroutine
// captures the loop variable i, so the recorded versions race with the
// parent's increments. The Section 7 detector flags this site.
func (s *APIServer) ProbeVersions() {
	var wg sync.WaitGroup
	for i := 17; i <= 21; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			apiVersion := fmt.Sprintf("v1.%d", i) // BUG: captured loop variable
			s.mu.Lock()
			s.versions = append(s.versions, apiVersion)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
}

// ProbeVersionsFixed is the landed patch: pass a private copy.
func (s *APIServer) ProbeVersionsFixed() {
	var wg sync.WaitGroup
	for i := 17; i <= 21; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			apiVersion := fmt.Sprintf("v1.%d", i)
			s.mu.Lock()
			s.versions = append(s.versions, apiVersion)
			s.mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// Versions returns a copy of the recorded versions.
func (s *APIServer) Versions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.versions))
	copy(out, s.versions)
	return out
}

// Broadcast notifies every attached client on its own goroutine.
func Broadcast(clients []chan string, msg string) {
	for _, ch := range clients {
		ch := ch
		go func() {
			select {
			case ch <- msg:
			default:
			}
		}()
	}
}
