package daemon

import (
	"errors"
	"sync"
	"time"
)

// The registry client half of the mini-daemon: layer pulls fan out a
// goroutine per layer (anonymous functions, the Docker style) gated by a
// buffered-channel semaphore, with Mutex-guarded progress accounting.

// Layer is one image layer to pull.
type Layer struct {
	Digest string
	Size   int
}

// PullSession tracks one image pull.
type PullSession struct {
	mu       sync.Mutex
	progress map[string]int
	errs     []error
	done     sync.Once
	doneCh   chan struct{}
}

// NewPullSession creates a session.
func NewPullSession() *PullSession {
	return &PullSession{progress: make(map[string]int), doneCh: make(chan struct{})}
}

func (s *PullSession) report(digest string, n int) {
	s.mu.Lock()
	s.progress[digest] += n
	s.mu.Unlock()
}

func (s *PullSession) fail(err error) {
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

// Err returns the first recorded error.
func (s *PullSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	return nil
}

// finish closes the completion channel exactly once (the Docker#24007
// lesson applied).
func (s *PullSession) finish() {
	s.done.Do(func() { close(s.doneCh) })
}

// Done exposes the completion channel.
func (s *PullSession) Done() <-chan struct{} { return s.doneCh }

// PullImage downloads all layers with at most maxConcurrent in flight.
func PullImage(layers []Layer, maxConcurrent int, fetch func(Layer) error) *PullSession {
	s := NewPullSession()
	sem := make(chan struct{}, maxConcurrent)
	var wg sync.WaitGroup
	for _, l := range layers {
		l := l
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fetch(l); err != nil {
				s.fail(err)
				return
			}
			s.report(l.Digest, l.Size)
		}()
	}
	go func() {
		wg.Wait()
		s.finish()
	}()
	return s
}

// WaitPull blocks until the pull completes or the timeout fires.
func WaitPull(s *PullSession, timeout time.Duration) error {
	select {
	case <-s.Done():
		return s.Err()
	case <-time.After(timeout):
		return errors.New("registry: pull timed out")
	}
}
