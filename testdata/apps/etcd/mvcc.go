package kv

import (
	"errors"
	"sync"
)

// The MVCC backend: etcd's lock-based half. Table 4 measured etcd at 45%
// Mutex against 43% chan — the raft plumbing is channel-heavy while the
// storage layer below it is classic mutex code.

// revision orders writes.
type revision struct {
	main int64
	sub  int64
}

// keyIndex tracks the revisions of one key.
type keyIndex struct {
	mu        sync.Mutex
	key       string
	revisions []revision
}

func (ki *keyIndex) put(rev revision) {
	ki.mu.Lock()
	ki.revisions = append(ki.revisions, rev)
	ki.mu.Unlock()
}

func (ki *keyIndex) last() (revision, bool) {
	ki.mu.Lock()
	defer ki.mu.Unlock()
	if len(ki.revisions) == 0 {
		return revision{}, false
	}
	return ki.revisions[len(ki.revisions)-1], true
}

// treeIndex maps keys to their indexes.
type treeIndex struct {
	mu    sync.RWMutex
	index map[string]*keyIndex
}

func newTreeIndex() *treeIndex {
	return &treeIndex{index: make(map[string]*keyIndex)}
}

func (ti *treeIndex) get(key string) *keyIndex {
	ti.mu.RLock()
	ki := ti.index[key]
	ti.mu.RUnlock()
	return ki
}

func (ti *treeIndex) ensure(key string) *keyIndex {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ki := ti.index[key]
	if ki == nil {
		ki = &keyIndex{key: key}
		ti.index[key] = ki
	}
	return ki
}

// backend is the bytes store under the index.
type backend struct {
	mu      sync.Mutex
	buckets map[string]map[string][]byte
	pending int
}

func newBackend() *backend {
	return &backend{buckets: make(map[string]map[string][]byte)}
}

func (b *backend) write(bucket, key string, value []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.buckets[bucket]
	if m == nil {
		m = make(map[string][]byte)
		b.buckets[bucket] = m
	}
	m[key] = value
	b.pending++
}

func (b *backend) read(bucket, key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.buckets[bucket]
	if m == nil {
		return nil, false
	}
	v, ok := m[key]
	return v, ok
}

func (b *backend) commit() int {
	b.mu.Lock()
	n := b.pending
	b.pending = 0
	b.mu.Unlock()
	return n
}

// MVCCStore combines index and backend.
type MVCCStore struct {
	mu      sync.RWMutex
	ti      *treeIndex
	be      *backend
	currRev int64
}

// NewMVCCStore creates the store.
func NewMVCCStore() *MVCCStore {
	return &MVCCStore{ti: newTreeIndex(), be: newBackend()}
}

// Put writes a key at the next revision.
func (s *MVCCStore) Put(key string, value []byte) int64 {
	s.mu.Lock()
	s.currRev++
	rev := s.currRev
	s.mu.Unlock()
	ki := s.ti.ensure(key)
	ki.put(revision{main: rev})
	s.be.write("key", key, value)
	return rev
}

// Get reads a key's latest value.
func (s *MVCCStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ki := s.ti.get(key)
	if ki == nil {
		return nil, errors.New("mvcc: key not found")
	}
	if _, ok := ki.last(); !ok {
		return nil, errors.New("mvcc: no revision")
	}
	v, ok := s.be.read("key", key)
	if !ok {
		return nil, errors.New("mvcc: index/backend mismatch")
	}
	return v, nil
}

// Rev returns the current revision.
func (s *MVCCStore) Rev() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.currRev
}

// Compact drops revisions below rev and reports how many entries committed.
func (s *MVCCStore) Compact(rev int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ti.mu.Lock()
	for _, ki := range s.ti.index {
		ki.mu.Lock()
		kept := ki.revisions[:0]
		for _, r := range ki.revisions {
			if r.main >= rev {
				kept = append(kept, r)
			}
		}
		ki.revisions = kept
		ki.mu.Unlock()
	}
	s.ti.mu.Unlock()
	return s.be.commit()
}
