// Package kv is a miniature etcd-style key-value server: the most
// channel-heavy of the six trees (the paper measured ≈43% chan usage —
// nearly matching its 45% Mutex share), with raft-style message plumbing.
package kv

import (
	"sync"
	"time"
)

// Entry is one replicated log entry.
type Entry struct {
	Index uint64
	Key   string
	Value string
}

// Node is the raft-ish replication core: everything flows through channels.
type Node struct {
	proposals chan Entry
	commits   chan Entry
	readyCh   chan struct{}
	stopCh    chan struct{}
	tickCh    <-chan time.Time

	mu      sync.Mutex
	applied uint64
	store   map[string]string
	once    sync.Once
}

// NewNode creates a node.
func NewNode() *Node {
	return &Node{
		proposals: make(chan Entry, 32),
		commits:   make(chan Entry, 32),
		readyCh:   make(chan struct{}),
		stopCh:    make(chan struct{}),
		tickCh:    time.Tick(time.Second),
		store:     make(map[string]string),
	}
}

// Start launches the processing loops.
func (n *Node) Start() {
	n.once.Do(func() {
		go n.run()
		go n.apply()
	})
}

func (n *Node) run() {
	var index uint64
	close(n.readyCh)
	for {
		select {
		case p := <-n.proposals:
			index++
			p.Index = index
			select {
			case n.commits <- p:
			case <-n.stopCh:
				return
			}
		case <-n.tickCh:
			// heartbeat
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) apply() {
	for {
		select {
		case e := <-n.commits:
			n.mu.Lock()
			n.store[e.Key] = e.Value
			n.applied = e.Index
			n.mu.Unlock()
		case <-n.stopCh:
			return
		}
	}
}

// Propose submits a write through the channel pipeline.
func (n *Node) Propose(key, value string) {
	<-n.readyCh
	n.proposals <- Entry{Key: key, Value: value}
}

// Get reads a key.
func (n *Node) Get(key string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.store[key]
	return v, ok
}

// Stop tears the node down.
func (n *Node) Stop() { close(n.stopCh) }

// Watch streams changes for a key prefix over a fresh channel; the watcher
// goroutine is created from an anonymous function, as most etcd goroutines
// are.
func (n *Node) Watch(stop <-chan struct{}) <-chan Entry {
	out := make(chan Entry, 8)
	go func() {
		defer close(out)
		for {
			select {
			case e := <-n.commits:
				select {
				case out <- e:
				default:
				}
			case <-stop:
				return
			}
		}
	}()
	return out
}

// Barrier waits for all in-flight proposals to commit by threading a
// sentinel through the channel pipeline.
func (n *Node) Barrier() {
	done := make(chan struct{})
	go func() {
		n.Propose("__barrier", "")
		close(done)
	}()
	<-done
}

// Lease grants a TTL'd key with a channel-carried expiry.
func (n *Node) Lease(key string, ttl time.Duration) <-chan string {
	expired := make(chan string, 1)
	go func() {
		t := time.NewTimer(ttl)
		defer t.Stop()
		select {
		case <-t.C:
			expired <- key
		case <-n.stopCh:
		}
	}()
	return expired
}
