package controller

import (
	"errors"
	"sync"
	"time"
)

// The scheduler half of the mini-Kubernetes: more Mutex-guarded state and
// more named-function goroutines (go c.worker()-style), keeping the tree's
// named-over-anonymous balance the paper measured for Kubernetes.

// Node is a schedulable machine.
type Node struct {
	Name     string
	capacity int
	used     int
}

// Scheduler assigns pods to nodes.
type Scheduler struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	bindings map[string]string
	queue    chan string
	stopCh   chan struct{}
	cache    *Store
	metrics  schedulerMetrics
}

type schedulerMetrics struct {
	mu        sync.Mutex
	scheduled int
	failed    int
}

func (m *schedulerMetrics) observe(ok bool) {
	m.mu.Lock()
	if ok {
		m.scheduled++
	} else {
		m.failed++
	}
	m.mu.Unlock()
}

func (m *schedulerMetrics) snapshot() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scheduled, m.failed
}

// NewScheduler creates a scheduler over the shared pod cache.
func NewScheduler(cache *Store) *Scheduler {
	return &Scheduler{
		nodes:    make(map[string]*Node),
		bindings: make(map[string]string),
		queue:    make(chan string, 64),
		stopCh:   make(chan struct{}),
		cache:    cache,
	}
}

// AddNode registers capacity.
func (s *Scheduler) AddNode(n *Node) {
	s.mu.Lock()
	s.nodes[n.Name] = n
	s.mu.Unlock()
}

// Run starts the named scheduling loops.
func (s *Scheduler) Run(workers int) {
	for i := 0; i < workers; i++ {
		go s.scheduleLoop()
	}
	go s.reconcileBindings()
}

func (s *Scheduler) scheduleLoop() {
	for {
		select {
		case pod := <-s.queue:
			_ = s.schedule(pod)
		case <-s.stopCh:
			return
		}
	}
}

func (s *Scheduler) schedule(pod string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		if n.used < n.capacity {
			n.used++
			s.bindings[pod] = n.Name
			s.metrics.observe(true)
			return nil
		}
	}
	s.metrics.observe(false)
	return errors.New("scheduler: no node with free capacity")
}

func (s *Scheduler) reconcileBindings() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			for pod, node := range s.bindings {
				if s.nodes[node] == nil {
					delete(s.bindings, pod)
				}
			}
			s.mu.Unlock()
		case <-s.stopCh:
			return
		}
	}
}

// Enqueue schedules a pod.
func (s *Scheduler) Enqueue(pod string) { s.queue <- pod }

// Binding looks a pod's node up.
func (s *Scheduler) Binding(pod string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.bindings[pod]
	return n, ok
}

// Stop shuts the loops down.
func (s *Scheduler) Stop() { close(s.stopCh) }

// Stats reports scheduling counters.
func (s *Scheduler) Stats() (scheduled, failed int) {
	return s.metrics.snapshot()
}
