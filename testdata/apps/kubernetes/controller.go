// Package controller is a miniature Kubernetes-style controller: the most
// Mutex-heavy of the six trees (the paper measured ≈70% Mutex usage and the
// lowest goroutine density, with named worker functions outnumbering
// anonymous ones — Kubernetes is one of the two apps where normal-function
// goroutines dominate).
package controller

import (
	"sync"
	"time"
)

// Pod is one scheduled unit.
type Pod struct {
	Name  string
	Phase string
}

// Store is the controller's shared cache.
type Store struct {
	mu   sync.RWMutex
	pods map[string]*Pod
}

// NewStore creates a store.
func NewStore() *Store {
	return &Store{pods: make(map[string]*Pod)}
}

// Update writes a pod under the write lock.
func (s *Store) Update(p *Pod) {
	s.mu.Lock()
	s.pods[p.Name] = p
	s.mu.Unlock()
}

// Get reads a pod under the read lock.
func (s *Store) Get(name string) *Pod {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pods[name]
}

// Len reports the cache size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pods)
}

// Controller reconciles pods from a work queue.
type Controller struct {
	store    *Store
	queue    chan string
	stopCh   chan struct{}
	mu       sync.Mutex
	inflight int
	started  sync.Once
}

// NewController creates a controller.
func NewController(store *Store) *Controller {
	return &Controller{store: store, queue: make(chan string, 128), stopCh: make(chan struct{})}
}

// Run starts the named worker goroutines (the Kubernetes style: named
// functions, fixed worker counts).
func (c *Controller) Run(workers int) {
	c.started.Do(func() {
		for i := 0; i < workers; i++ {
			go c.worker()
		}
		go c.resync()
	})
}

func (c *Controller) worker() {
	for {
		select {
		case name := <-c.queue:
			c.reconcile(name)
		case <-c.stopCh:
			return
		}
	}
}

func (c *Controller) reconcile(name string) {
	c.mu.Lock()
	c.inflight++
	c.mu.Unlock()
	if p := c.store.Get(name); p != nil {
		p.Phase = "Running"
		c.store.Update(p)
	}
	c.mu.Lock()
	c.inflight--
	c.mu.Unlock()
}

func (c *Controller) resync() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			n := c.inflight
			c.mu.Unlock()
			_ = n
		case <-c.stopCh:
			return
		}
	}
}

// Enqueue schedules a pod for reconciliation.
func (c *Controller) Enqueue(name string) { c.queue <- name }

// Stop shuts every worker down.
func (c *Controller) Stop() { close(c.stopCh) }

// WaitSettled blocks until no reconciliation is in flight.
func (c *Controller) WaitSettled() {
	var wg sync.WaitGroup
	wg.Add(1)
	go c.poll(&wg)
	wg.Wait()
}

func (c *Controller) poll(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		c.mu.Lock()
		n := c.inflight
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
