// Package grpcc is the gRPC-C contrast tree: the same transport domain as
// testdata/apps/grpc, written the way the C codebase is structured —
// long-lived worker threads created at startup (the paper counted five
// creation sites in gRPC-C, 0.03 per KLOC), lock-based synchronization only
// (746 lock usages, no channels, 5.3 primitive usages per KLOC), and
// condition-variable completion queues instead of message passing.
package grpcc

import (
	"errors"
	"sync"
)

// completionQueue is the C-style work queue: a locked ring plus a condition
// variable, not a channel.
type completionQueue struct {
	mu     sync.Mutex
	cv     *sync.Cond
	events []event
	closed bool
}

type event struct {
	tag     int
	payload []byte
}

func newCompletionQueue() *completionQueue {
	q := &completionQueue{}
	q.cv = sync.NewCond(&q.mu)
	return q
}

func (q *completionQueue) push(e event) {
	q.mu.Lock()
	q.events = append(q.events, e)
	q.mu.Unlock()
	q.cv.Signal()
}

func (q *completionQueue) next() (event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.events) == 0 && !q.closed {
		q.cv.Wait()
	}
	if len(q.events) == 0 {
		return event{}, false
	}
	e := q.events[0]
	q.events = q.events[1:]
	return e, true
}

func (q *completionQueue) shutdown() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cv.Broadcast()
}

// Server owns the fixed worker pool.
type Server struct {
	mu       sync.Mutex
	cq       *completionQueue
	handlers map[string]func([]byte) []byte
	started  bool
	wg       sync.WaitGroup
	stats    serverStats
}

type serverStats struct {
	mu      sync.Mutex
	served  int
	errored int
}

// NewServer creates a server.
func NewServer() *Server {
	return &Server{cq: newCompletionQueue(), handlers: make(map[string]func([]byte) []byte)}
}

// Register installs a method handler.
func (s *Server) Register(method string, h func([]byte) []byte) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Start spins up the fixed pool — the single goroutine creation site in
// this tree, mirroring gRPC-C's handful of thread spawns.
func (s *Server) Start(workers int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("grpcc: already started")
	}
	s.started = true
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return nil
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		e, ok := s.cq.next()
		if !ok {
			return
		}
		s.dispatch(e)
	}
}

func (s *Server) dispatch(e event) {
	s.mu.Lock()
	h := s.handlers["echo"]
	s.mu.Unlock()
	if h == nil {
		s.stats.mu.Lock()
		s.stats.errored++
		s.stats.mu.Unlock()
		return
	}
	h(e.payload)
	s.stats.mu.Lock()
	s.stats.served++
	s.stats.mu.Unlock()
}

// Submit enqueues one request.
func (s *Server) Submit(tag int, payload []byte) {
	s.cq.push(event{tag: tag, payload: payload})
}

// Stop drains and joins the pool.
func (s *Server) Stop() {
	s.cq.shutdown()
	s.wg.Wait()
}

// Stats reports counters.
func (s *Server) Stats() (served, errored int) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return s.stats.served, s.stats.errored
}
