package transport

import (
	"sync"
	"sync/atomic"
)

// Flow control and per-connection accounting: the Mutex-dominant part of
// the transport, mirroring gRPC-Go's ≈61% Mutex share.

// quotaPool tracks send quota under a mutex.
type quotaPool struct {
	mu    sync.Mutex
	quota int
	waits int
}

func newQuotaPool(q int) *quotaPool { return &quotaPool{quota: q} }

// acquire takes n units of quota, reporting how much was granted.
func (p *quotaPool) acquire(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.quota {
		n = p.quota
		p.waits++
	}
	p.quota -= n
	return n
}

// release returns quota.
func (p *quotaPool) release(n int) {
	p.mu.Lock()
	p.quota += n
	p.mu.Unlock()
}

// inFlow is the receive-side window.
type inFlow struct {
	mu      sync.Mutex
	limit   uint32
	unacked uint32
}

// onData accounts received bytes.
func (f *inFlow) onData(n uint32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unacked += n
	return f.unacked <= f.limit
}

// onRead returns window updates once enough is consumed.
func (f *inFlow) onRead(n uint32) uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unacked < n {
		n = f.unacked
	}
	f.unacked -= n
	if f.unacked < f.limit/4 {
		return f.limit - f.unacked
	}
	return 0
}

// connStats aggregates counters under a mutex plus one atomic hot path.
type connStats struct {
	mu       sync.Mutex
	streams  int
	failures int
	msgs     int64
}

func (s *connStats) streamOpened() {
	s.mu.Lock()
	s.streams++
	s.mu.Unlock()
}

func (s *connStats) streamFailed() {
	s.mu.Lock()
	s.failures++
	s.mu.Unlock()
}

func (s *connStats) message() { atomic.AddInt64(&s.msgs, 1) }

func (s *connStats) snapshot() (int, int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams, s.failures, atomic.LoadInt64(&s.msgs)
}

// settings serializes option application.
type settings struct {
	mu        sync.RWMutex
	maxConns  int
	authority string
}

func (s *settings) setMaxConns(n int) {
	s.mu.Lock()
	s.maxConns = n
	s.mu.Unlock()
}

func (s *settings) getAuthority() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.authority
}

func (s *settings) setAuthority(a string) {
	s.mu.Lock()
	s.authority = a
	s.mu.Unlock()
}

func (s *settings) getMaxConns() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxConns
}
