// Package transport is a miniature gRPC-Go-style HTTP/2 transport layer:
// goroutine-per-stream with anonymous functions dominating creation sites
// and a Mutex-led primitive mix (the paper measured 14.8 primitive usages
// per KLOC here against gRPC-C's 5.3 — and this tree also carries a
// written-after-go capture for the Section 7 detector to find).
package transport

import (
	"errors"
	"sync"
	"time"
)

// Stream is one RPC stream.
type Stream struct {
	mu     sync.Mutex
	id     int
	closed bool
	buf    []byte
}

// Write appends a frame unless the stream is closed.
func (s *Stream) Write(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("transport: closed stream")
	}
	s.buf = append(s.buf, p...)
	return nil
}

// Close closes the stream.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Conn multiplexes streams over one connection.
type Conn struct {
	mu      sync.Mutex
	streams map[int]*Stream
	frames  chan []byte
	done    chan struct{}
	nextID  int
	setup   sync.Once
}

// NewConn creates a connection.
func NewConn() *Conn {
	return &Conn{streams: make(map[int]*Stream), frames: make(chan []byte, 32), done: make(chan struct{})}
}

// Serve starts the connection loops once.
func (c *Conn) Serve() {
	c.setup.Do(func() {
		go func() {
			for {
				select {
				case f := <-c.frames:
					c.dispatch(f)
				case <-c.done:
					return
				}
			}
		}()
		go c.keepalive()
	})
}

func (c *Conn) dispatch(f []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.streams {
		_ = s
		break
	}
	_ = f
}

func (c *Conn) keepalive() {
	t := time.NewTicker(10 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			select {
			case c.frames <- []byte("PING"):
			default:
			}
		case <-c.done:
			return
		}
	}
}

// NewStream opens a stream and spawns its reader — a goroutine per stream,
// the gRPC-Go shape.
func (c *Conn) NewStream() *Stream {
	c.mu.Lock()
	c.nextID++
	s := &Stream{id: c.nextID}
	c.streams[s.id] = s
	c.mu.Unlock()
	go func() {
		for {
			select {
			case f := <-c.frames:
				s.mu.Lock()
				closed := s.closed
				s.mu.Unlock()
				if closed {
					return
				}
				_ = f
			case <-c.done:
				return
			}
		}
	}()
	return s
}

// DialAsync dials in the background; the captured err is written by the
// parent after the goroutine starts — the Section 7 detector's
// written-after-go pattern, modeled on the bug class the paper's tool
// reported upstream.
func DialAsync(addr string) (*Conn, error) {
	var err error
	conn := NewConn()
	go func() {
		if err != nil { // BUG: reads err the parent is about to write
			return
		}
		conn.Serve()
	}()
	err = validate(addr)
	return conn, err
}

func validate(addr string) error {
	if addr == "" {
		return errors.New("transport: empty address")
	}
	return nil
}

// Close tears the connection down.
func (c *Conn) Close() { close(c.done) }
