package storage

import (
	"errors"
	"sync"
	"sync/atomic"
)

// The transaction coordinator half of the mini-CockroachDB: Mutex-dominant
// bookkeeping with a WaitGroup-joined parallel commit, matching the store's
// paper-measured profile (highest WaitGroup share of the six apps).

// TxnStatus is a transaction's lifecycle state.
type TxnStatus int

// Transaction states.
const (
	TxnPending TxnStatus = iota
	TxnCommitted
	TxnAborted
)

// Txn is one distributed transaction.
type Txn struct {
	mu      sync.Mutex
	id      int64
	status  TxnStatus
	intents []Command
}

// Coordinator hands out transactions and commits them.
type Coordinator struct {
	mu     sync.Mutex
	nextID int64
	open   map[int64]*Txn
	store  *Store
	aborts int64
}

// NewCoordinator creates a coordinator over the store.
func NewCoordinator(store *Store) *Coordinator {
	return &Coordinator{open: make(map[int64]*Txn), store: store}
}

// Begin opens a transaction.
func (c *Coordinator) Begin() *Txn {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	txn := &Txn{id: c.nextID}
	c.open[txn.id] = txn
	return txn
}

// Stage adds a write intent.
func (t *Txn) Stage(cmd Command) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != TxnPending {
		return errors.New("txn: staging on a finished transaction")
	}
	t.intents = append(t.intents, cmd)
	return nil
}

// Commit applies all intents in parallel and waits for the batch — the
// parallel-commit WaitGroup pattern.
func (c *Coordinator) Commit(t *Txn) error {
	t.mu.Lock()
	if t.status != TxnPending {
		t.mu.Unlock()
		return errors.New("txn: double finish")
	}
	intents := append([]Command(nil), t.intents...)
	t.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(len(intents))
	for _, cmd := range intents {
		cmd := cmd
		go func() {
			defer wg.Done()
			c.mu.Lock()
			r := c.store.replicas[cmd.Range]
			c.mu.Unlock()
			if r != nil {
				r.Apply(cmd)
			}
		}()
	}
	wg.Wait()

	t.mu.Lock()
	t.status = TxnCommitted
	t.mu.Unlock()
	c.mu.Lock()
	delete(c.open, t.id)
	c.mu.Unlock()
	return nil
}

// Abort rolls a transaction back.
func (c *Coordinator) Abort(t *Txn) {
	t.mu.Lock()
	t.status = TxnAborted
	t.mu.Unlock()
	c.mu.Lock()
	delete(c.open, t.id)
	c.mu.Unlock()
	atomic.AddInt64(&c.aborts, 1)
}

// Aborts reports the abort counter.
func (c *Coordinator) Aborts() int64 { return atomic.LoadInt64(&c.aborts) }

// OpenTxns reports the number of open transactions.
func (c *Coordinator) OpenTxns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.open)
}
