// Package storage is a miniature CockroachDB-style replica store: heavy
// WaitGroup use relative to the other trees (the paper measured the highest
// WaitGroup share, ≈8.6%) over a Mutex-dominant core with a channel-based
// command queue.
package storage

import (
	"sync"
	"sync/atomic"
)

// Command is one replicated command.
type Command struct {
	Range int
	Op    string
}

// Replica applies commands for one range.
type Replica struct {
	mu      sync.RWMutex
	rangeID int
	data    map[string]string
	applied int64
}

// NewReplica creates a replica.
func NewReplica(id int) *Replica {
	return &Replica{rangeID: id, data: make(map[string]string)}
}

// Apply executes one command under the write lock.
func (r *Replica) Apply(c Command) {
	r.mu.Lock()
	r.data[c.Op] = "done"
	r.mu.Unlock()
	atomic.AddInt64(&r.applied, 1)
}

// Applied reads the applied counter.
func (r *Replica) Applied() int64 { return atomic.LoadInt64(&r.applied) }

// Store fans commands out to replicas and waits for batches with
// WaitGroups.
type Store struct {
	mu       sync.Mutex
	replicas map[int]*Replica
	queue    chan Command
	stopper  chan struct{}
	wg       sync.WaitGroup
}

// NewStore creates a store.
func NewStore() *Store {
	return &Store{
		replicas: make(map[int]*Replica),
		queue:    make(chan Command, 64),
		stopper:  make(chan struct{}),
	}
}

// AddReplica registers a replica.
func (s *Store) AddReplica(r *Replica) {
	s.mu.Lock()
	s.replicas[r.rangeID] = r
	s.mu.Unlock()
}

// Start launches the command processors; CockroachDB's stopper pattern
// tracks each with the store WaitGroup.
func (s *Store) Start(workers int) {
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case c := <-s.queue:
					s.mu.Lock()
					r := s.replicas[c.Range]
					s.mu.Unlock()
					if r != nil {
						r.Apply(c)
					}
				case <-s.stopper:
					return
				}
			}
		}()
	}
}

// Submit enqueues a command.
func (s *Store) Submit(c Command) { s.queue <- c }

// ApplyBatch applies a batch across replicas in parallel and waits for the
// whole batch — a WaitGroup per batch.
func (s *Store) ApplyBatch(cmds []Command) {
	var wg sync.WaitGroup
	wg.Add(len(cmds))
	for _, c := range cmds {
		c := c
		go func() {
			defer wg.Done()
			s.mu.Lock()
			r := s.replicas[c.Range]
			s.mu.Unlock()
			if r != nil {
				r.Apply(c)
			}
		}()
	}
	wg.Wait()
}

// Quiesce stops the workers and waits for them.
func (s *Store) Quiesce() {
	close(s.stopper)
	s.wg.Wait()
}

// GC walks replicas in parallel, gated by a semaphore channel.
func (s *Store) GC() {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	s.mu.Lock()
	replicas := make([]*Replica, 0, len(s.replicas))
	for _, r := range s.replicas {
		replicas = append(replicas, r)
	}
	s.mu.Unlock()
	for _, r := range replicas {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			r.mu.Lock()
			for k := range r.data {
				if k == "" {
					delete(r.data, k)
				}
			}
			r.mu.Unlock()
			<-sem
		}()
	}
	wg.Wait()
}
