// Package bolt is a miniature BoltDB-style embedded store: tiny, almost
// purely Mutex-based (the paper measured ≈70% Mutex, no Once/WaitGroup/Cond
// at all), and one of the two apps whose few goroutines come from named
// functions rather than anonymous ones.
package bolt

import (
	"errors"
	"sync"
)

// DB is a single-file key-value store.
type DB struct {
	metalock sync.Mutex
	mmaplock sync.RWMutex
	rwlock   sync.Mutex

	data   map[string][]byte
	opened bool
	batch  chan func(*Tx) error
}

// Tx is one transaction.
type Tx struct {
	db       *DB
	writable bool
}

// Open initializes the store.
func Open() *DB {
	db := &DB{data: make(map[string][]byte), opened: true, batch: make(chan func(*Tx) error, 8)}
	return db
}

// Begin starts a transaction, taking the locks the real BoltDB takes.
func (db *DB) Begin(writable bool) (*Tx, error) {
	if writable {
		db.rwlock.Lock()
	}
	db.metalock.Lock()
	if !db.opened {
		db.metalock.Unlock()
		if writable {
			db.rwlock.Unlock()
		}
		return nil, errors.New("bolt: database not open")
	}
	db.metalock.Unlock()
	db.mmaplock.RLock()
	return &Tx{db: db, writable: writable}, nil
}

// Commit finishes a transaction.
func (tx *Tx) Commit() {
	tx.db.mmaplock.RUnlock()
	if tx.writable {
		tx.db.rwlock.Unlock()
	}
}

// Put stores a key in a writable transaction.
func (tx *Tx) Put(key string, value []byte) {
	tx.db.metalock.Lock()
	tx.db.data[key] = value
	tx.db.metalock.Unlock()
}

// Get reads a key.
func (tx *Tx) Get(key string) []byte {
	tx.db.metalock.Lock()
	defer tx.db.metalock.Unlock()
	return tx.db.data[key]
}

// runBatch drains queued batch functions (the named-function goroutine).
func (db *DB) runBatch() {
	for fn := range db.batch {
		tx, err := db.Begin(true)
		if err != nil {
			return
		}
		_ = fn(tx)
		tx.Commit()
	}
}

// StartBatch launches the batch processor.
func (db *DB) StartBatch() {
	go db.runBatch()
}
