package bolt

import "sync"

// The freelist: BoltDB's page allocator, pure Mutex territory like the rest
// of this tree (the paper measured no Once/WaitGroup/Cond here at all).

// pgid is a page identifier.
type pgid uint64

// freelist tracks free and pending pages.
type freelist struct {
	mu      sync.Mutex
	ids     []pgid
	pending map[uint64][]pgid
}

func newFreelist() *freelist {
	return &freelist{pending: make(map[uint64][]pgid)}
}

// allocate returns a run of n contiguous free pages, or 0.
func (f *freelist) allocate(n int) pgid {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.ids) < n {
		return 0
	}
	run := 1
	for i := 1; i < len(f.ids); i++ {
		if f.ids[i] == f.ids[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run == n {
			start := f.ids[i-n+1]
			f.ids = append(f.ids[:i-n+1], f.ids[i+1:]...)
			return start
		}
	}
	return 0
}

// free marks a page pending under a transaction id.
func (f *freelist) free(txid uint64, p pgid) {
	f.mu.Lock()
	f.pending[txid] = append(f.pending[txid], p)
	f.mu.Unlock()
}

// release moves all pages pending under transactions <= txid to the free
// list.
func (f *freelist) release(txid uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, pages := range f.pending {
		if id <= txid {
			f.ids = append(f.ids, pages...)
			delete(f.pending, id)
		}
	}
	sortPgids(f.ids)
}

// count reports free and pending totals.
func (f *freelist) count() (free, pending int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	free = len(f.ids)
	for _, p := range f.pending {
		pending += len(p)
	}
	return free, pending
}

func sortPgids(ids []pgid) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
