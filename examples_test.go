package goconcbugs

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every example under examples/ end to
// end, asserting a clean exit within a hard timeout. The directory is
// enumerated rather than hard-coded so a new example is smoked the moment
// it lands.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", "./examples/"+name).CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example hung past the smoke timeout\n%s", out)
			}
			if err != nil {
				t.Fatalf("exit: %v\n%s", err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Fatal("example produced no output")
			}
		})
	}
	if n < 6 {
		t.Errorf("smoked %d examples, expected the six shipped ones", n)
	}
}
