package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"name", "n"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The numeric column starts at the same offset on every data line.
	idx := strings.Index(lines[1], "n")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestTableNote(t *testing.T) {
	tb := &Table{Header: []string{"a"}, Note: "reconstructed"}
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "note: reconstructed") {
		t.Fatal("note missing")
	}
}

func TestFormatters(t *testing.T) {
	if Itoa(42) != "42" || Ftoa(1.234) != "1.23" || Pct(0.5) != "50.0%" {
		t.Fatal("formatter output changed")
	}
}

func TestFigureSparkline(t *testing.T) {
	f := &Figure{
		Title: "F", XLabel: "x", YLabel: "y",
		Series: []Series{{
			Label:  "s",
			Points: [][2]float64{{0, 0}, {1, 0.5}, {2, 1}},
		}},
	}
	out := f.String()
	if !strings.Contains(out, "s") || !strings.Contains(out, "[0.00 .. 1.00]") {
		t.Fatalf("figure output:\n%s", out)
	}
	if !strings.ContainsRune(out, '▁') || !strings.ContainsRune(out, '█') {
		t.Fatalf("sparkline missing extremes:\n%s", out)
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	f := &Figure{Series: []Series{{Label: "flat", Points: [][2]float64{{0, 3}, {1, 3}}}}}
	out := f.String()
	if strings.Count(out, "▁") != 2 {
		t.Fatalf("flat series should render as the lowest glyph:\n%s", out)
	}
}

func TestEmptyFigure(t *testing.T) {
	f := &Figure{Title: "empty"}
	if !strings.Contains(f.String(), "empty") {
		t.Fatal("title missing")
	}
}
