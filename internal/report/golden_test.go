package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// golden compares got against testdata/<name>.golden, rewriting the file
// when -update is set.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s rendering changed; rerun with -update if intended.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestTableGolden pins the full table rendering — title, alignment with a
// cell wider than its header, an underfilled row, and the note line.
func TestTableGolden(t *testing.T) {
	tb := &Table{
		Title:  "Table X. Goroutines per threading model.",
		Note:   "reconstructed from the study set, not the original testbed",
		Header: []string{"workload", "go", "c", "ratio"},
	}
	tb.AddRow("sync-small", "82", Itoa(7), Ftoa(11.714))
	tb.AddRow("async-stream-very-long-name", "164", "7", Ftoa(23.4286))
	tb.AddRow("multi-conn", "89", "7", Pct(0.127))
	golden(t, "table", tb.String())
}

// TestTableGoldenBare pins the minimal form: no title, no note, one row.
func TestTableGoldenBare(t *testing.T) {
	tb := &Table{Header: []string{"k", "v"}}
	tb.AddRow("x", "1")
	golden(t, "table_bare", tb.String())
}

// TestFigureGolden pins the sparkline rendering: a rising series, a flat
// series (all-low glyphs), and a single-point series, with endpoint labels.
func TestFigureGolden(t *testing.T) {
	f := &Figure{
		Title: "Figure Y. Bugs over time.", XLabel: "year", YLabel: "count",
		Series: []Series{
			{Label: "blocking", Points: [][2]float64{{0, 1}, {1, 4}, {2, 2}, {3, 9}, {4, 16}}},
			{Label: "flat", Points: [][2]float64{{0, 3}, {1, 3}, {2, 3}}},
			{Label: "single", Points: [][2]float64{{0, 5}}},
			{Label: "empty"},
		},
	}
	golden(t, "figure", f.String())
}
