// Package report renders the study's tables and figures as plain text, the
// way the CLI and benchmarks present them.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Itoa is fmt.Sprintf("%d", n) shorthand for table cells.
func Itoa(n int) string { return fmt.Sprintf("%d", n) }

// Ftoa formats a float with two decimals.
func Ftoa(f float64) string { return fmt.Sprintf("%.2f", f) }

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Series is a labeled sequence of (x, y) points — the text form of a
// figure's line.
type Series struct {
	Label  string
	Points [][2]float64
}

// Figure is a titled collection of series with an optional ASCII sparkline
// rendering.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders each series as a compact sparkline plus endpoints.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (x: %s, y: %s)\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-16s %s", s.Label, sparkline(s.Points))
		if n := len(s.Points); n > 0 {
			fmt.Fprintf(&b, "  [%.2f .. %.2f]", s.Points[0][1], s.Points[n-1][1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(points [][2]float64) string {
	if len(points) == 0 {
		return ""
	}
	lo, hi := points[0][1], points[0][1]
	for _, p := range points {
		if p[1] < lo {
			lo = p[1]
		}
		if p[1] > hi {
			hi = p[1]
		}
	}
	var b strings.Builder
	for _, p := range points {
		idx := 0
		if hi > lo {
			idx = int((p[1] - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
