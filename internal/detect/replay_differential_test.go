package detect

// The differential replay suite: "trace-in, verdict-out" is only trustworthy
// if judging an archived stream is indistinguishable from judging the live
// run it recorded. These tests pin that equivalence at the pipeline level —
// verdicts, per-detector event counts, and the event ordering itself — over
// every kernel (buggy and fixed), a corpus of generated conformance-IR
// programs, a DPOR-discovered schedule, and fault-injected runs (whose
// FaultInject events must round-trip with site and action intact).

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"goconcbugs/internal/conformance"
	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/trace"
)

// renderReplayEvent canonicalizes one event during the sink callback (the
// Event and its slices are runtime-owned and reused, so rendering doubles as
// the cloning step).
func renderReplayEvent(ev *event.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s step=%d time=%d g=%d gname=%q vc=%s held=%q obj=%q objid=%d",
		ev.Kind, ev.Step, ev.Time, ev.G, ev.GName, ev.VC.String(), ev.HeldLocks, ev.Obj, ev.ObjID)
	if ev.Var != nil {
		fmt.Fprintf(&b, " var={%d %q %d}", ev.Var.ID, ev.Var.Name, ev.Var.CreatedBy)
	}
	fmt.Fprintf(&b, " ctr=%d delta=%d aux=%d dec=%d detail=%q",
		ev.Counter, ev.Delta, ev.Aux, ev.Dec, ev.Detail)
	if s := ev.Sched; s != nil {
		fmt.Fprintf(&b, " sched={g=%d dec=%d pref=%d opts=%v nops=%d}",
			s.G, s.Decision, s.Preferred, s.OptionGs, len(s.Ops))
	}
	return b.String()
}

// streamSink captures the full rendered stream of a run, live or replayed.
type streamSink struct{ events []string }

func (s *streamSink) Kinds() []event.Kind    { return event.AllKinds() }
func (s *streamSink) Event(ev *event.Event)  { s.events = append(s.events, renderReplayEvent(ev)) }

// recordJudged runs prog through RunAll with a trace Recorder and a stream
// capture attached, returning the single-frame archive, the live report, and
// the live stream. The injected fault plan (when cfg carries an injector)
// lands in the frame trailer exactly as the sweep recorder writes it.
func recordJudged(t testing.TB, cfg sim.Config, prog sim.Program, dets []Detector) ([]byte, *Report, []string) {
	t.Helper()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	var planSpec []byte
	if p, ok := cfg.Injector.(planner); ok {
		planSpec, _ = p.Plan().Encode()
	}
	rec := tw.BeginRun(trace.RunMeta{
		Name: cfg.Name, Runs: 1, Seed: cfg.Seed,
		MaxSteps: cfg.MaxSteps, LeakThreshold: cfg.LeakThreshold,
		FaultPlan: planSpec,
	})
	capt := &streamSink{}
	cfg.Sinks = append(cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)], capt, rec)
	live := RunAll(cfg, prog, dets...)
	var plan []byte
	if p, ok := cfg.Injector.(planner); ok {
		plan, _ = p.Plan().Encode()
	}
	if err := rec.FinishRun(live.Result, plan); err != nil {
		t.Fatalf("FinishRun: %v", err)
	}
	return buf.Bytes(), live, capt.events
}

// replayedStream decodes the archive's event stream alone, for ordering
// comparisons against the live capture.
func replayedStream(t testing.TB, data []byte) []string {
	t.Helper()
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := tr.NextRun(); err != nil {
		t.Fatalf("NextRun: %v", err)
	}
	capt := &streamSink{}
	if _, err := tr.Replay(event.NewMux([]event.Sink{capt})); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return capt.events
}

// diffReports fails the test unless the replayed report matches the live one
// on everything deterministic: outcome, verdicts, and per-detector event
// counts (wall times are process wall-clock and excluded by design).
func diffReports(t *testing.T, label string, live, rep *Report) {
	t.Helper()
	if live.Result.Outcome != rep.Result.Outcome {
		t.Errorf("%s: outcome live=%v replay=%v", label, live.Result.Outcome, rep.Result.Outcome)
	}
	if !reflect.DeepEqual(live.Verdicts, rep.Verdicts) {
		t.Errorf("%s: verdicts differ:\n live:   %+v\n replay: %+v", label, live.Verdicts, rep.Verdicts)
	}
	for i := range live.Stats {
		if live.Stats[i].Events != rep.Stats[i].Events {
			t.Errorf("%s: %s consumed %d events live, %d on replay",
				label, live.Stats[i].Detector, live.Stats[i].Events, rep.Stats[i].Events)
		}
	}
}

func diffStreams(t *testing.T, label string, live, replayed []string) {
	t.Helper()
	if len(live) != len(replayed) {
		t.Fatalf("%s: replay delivered %d events, live %d", label, len(replayed), len(live))
	}
	for i := range live {
		if live[i] != replayed[i] {
			t.Fatalf("%s: event %d differs:\n live:   %s\n replay: %s", label, i, live[i], replayed[i])
		}
	}
}

// TestReplayMatchesLiveOnKernels records one live judged run per kernel and
// variant and asserts RunAllTrace over the archive is bit-identical to the
// live RunAll: same verdicts, same per-detector counts, same stream.
func TestReplayMatchesLiveOnKernels(t *testing.T) {
	dets := All()
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			for variant, prog := range map[string]sim.Program{"buggy": k.Buggy, "fixed": k.Fixed} {
				data, live, stream := recordJudged(t, k.Config(1), prog, dets)
				rep, err := RunAllTrace(bytes.NewReader(data), dets...)
				if err != nil {
					t.Fatalf("%s: RunAllTrace: %v", variant, err)
				}
				diffReports(t, variant, live, rep)
				diffStreams(t, variant, stream, replayedStream(t, data))
			}
		})
	}
}

// TestReplayMatchesLiveOnGeneratedPrograms is the same equivalence over 200
// conformance-IR programs — the full statement taxonomy (channels, select,
// mutexes, cond, timers, contexts, semaphores) flows through the codec, not
// just the kernels' shapes.
func TestReplayMatchesLiveOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("200-program corpus; skipped in -short")
	}
	dets := All()
	for seed := int64(0); seed < 200; seed++ {
		p := conformance.Generate(seed, conformance.ModeSafe)
		cfg := sim.Config{Name: fmt.Sprintf("conformance-%d", seed), Seed: seed}
		data, live, stream := recordJudged(t, cfg, conformance.SimProgram(p), dets)
		rep, err := RunAllTrace(bytes.NewReader(data), dets...)
		if err != nil {
			t.Fatalf("seed %d: RunAllTrace: %v", seed, err)
		}
		label := fmt.Sprintf("seed %d", seed)
		diffReports(t, label, live, rep)
		diffStreams(t, label, stream, replayedStream(t, data))
	}
}

// TestReplayMatchesLiveOnDPORSchedule archives a run driven by a schedule
// that dynamic partial-order reduction discovered (the first failing decision
// sequence of a reduced exploration) and asserts offline replay reproduces
// the live verdicts on it — DPOR-found interleavings archive like any other.
func TestReplayMatchesLiveOnDPORSchedule(t *testing.T) {
	k, ok := kernels.ByID("docker-abba-order")
	if !ok {
		t.Fatal("kernel docker-abba-order not registered")
	}
	res := explore.Systematic(k.Buggy, explore.SystematicOptions{
		Config: k.Config(0), MaxRuns: 50_000, Reduction: true,
	})
	if res.FailureSchedule == nil {
		t.Fatal("DPOR exploration found no failing schedule for docker-abba-order/buggy")
	}
	cfg := k.Config(0)
	choose, check := explore.ScheduleChooser(res.FailureSchedule)
	cfg.Chooser = choose
	dets := All()
	data, live, stream := recordJudged(t, cfg, k.Buggy, dets)
	if err := check(); err != nil {
		t.Fatalf("DPOR schedule did not replay cleanly under the pipeline: %v", err)
	}
	if !live.Detected() {
		t.Fatal("the DPOR failing schedule fired no detector live — schedule not reproduced")
	}
	rep, err := RunAllTrace(bytes.NewReader(data), dets...)
	if err != nil {
		t.Fatalf("RunAllTrace: %v", err)
	}
	diffReports(t, "dpor-schedule", live, rep)
	diffStreams(t, "dpor-schedule", stream, replayedStream(t, data))
}

// TestReplayMatchesLiveOnFaultInjectedRun archives fault-injected runs and
// asserts (a) the FaultInject events round-trip with site and action intact,
// (b) verdicts and streams match live, and (c) the recorded fault plan in
// the frame trailer equals the injector's.
func TestReplayMatchesLiveOnFaultInjectedRun(t *testing.T) {
	k, ok := kernels.ByID("docker-abba-order")
	if !ok {
		t.Fatal("kernel docker-abba-order not registered")
	}
	dets := All()
	injected := false
	for seed := int64(0); seed < 50 && !injected; seed++ {
		inj := inject.New(inject.Options{Seed: seed, Budget: 3})
		cfg := k.Config(seed)
		cfg.Injector = inj
		data, live, stream := recordJudged(t, cfg, k.Buggy, dets)

		var liveFaults []string
		for _, e := range stream {
			if strings.HasPrefix(e, event.FaultInject.String()+" ") {
				liveFaults = append(liveFaults, e)
			}
		}
		if len(liveFaults) == 0 {
			continue
		}
		injected = true

		rep, err := RunAllTrace(bytes.NewReader(data), dets...)
		if err != nil {
			t.Fatalf("seed %d: RunAllTrace: %v", seed, err)
		}
		diffReports(t, "fault-injected", live, rep)
		replayed := replayedStream(t, data)
		diffStreams(t, "fault-injected", stream, replayed)
		// Stream identity already implies it, but pin the payload contract
		// explicitly: site (Counter) and action (Detail) survive the codec.
		var repFaults []string
		for _, e := range replayed {
			if strings.HasPrefix(e, event.FaultInject.String()+" ") {
				repFaults = append(repFaults, e)
			}
		}
		if !reflect.DeepEqual(liveFaults, repFaults) {
			t.Errorf("FaultInject events did not round-trip:\n live:   %v\n replay: %v", liveFaults, repFaults)
		}

		// The trailer's plan must be the injector's recorded plan, faults
		// included — that is what makes the archived run re-executable.
		tr, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.NextRun(); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Replay(nil); err != nil {
			t.Fatal(err)
		}
		want, _ := inj.Plan().Encode()
		if !bytes.Equal(tr.FaultPlan(), want) {
			t.Errorf("trailer fault plan differs:\n got:  %s\n want: %s", tr.FaultPlan(), want)
		}
		if gotPlan, err := inject.DecodePlan(tr.FaultPlan()); err != nil {
			t.Errorf("trailer plan does not decode: %v", err)
		} else if len(gotPlan.Faults) != len(inj.Plan().Faults) {
			t.Errorf("trailer plan has %d faults, injector recorded %d", len(gotPlan.Faults), len(inj.Plan().Faults))
		}
	}
	if !injected {
		t.Fatal("no seed in [0,50) drew a fault — injector or kernel changed shape")
	}
}
