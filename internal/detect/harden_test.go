package detect

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"goconcbugs/internal/event"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/sim"
)

// hardenProg is a small, bug-free program used by the hardening tests; slow
// enough (via yield loops) that cancellation can land mid-sweep.
func hardenProg(tt *sim.T) {
	ch := sim.NewChan[int](tt, 0)
	tt.Go(func(ct *sim.T) {
		for i := 0; i < 50; i++ {
			ct.Yield()
		}
		ch.Send(ct, 1)
	})
	ch.Recv(tt)
}

// boomInstance panics in Finish whenever the run's seed satisfies pred —
// the deliberately buggy detector of the pool-drain regression test.
type boomInstance struct{ pred func(seed int64) bool }

func (b *boomInstance) Kinds() []event.Kind { return nil }
func (b *boomInstance) Event(*event.Event)  {}
func (b *boomInstance) Finish(res *sim.Result) Verdict {
	if b.pred(res.Seed) {
		panic("detector bug: unhandled seed shape")
	}
	return Verdict{Detector: "boom"}
}

func boomDetector(pred func(seed int64) bool) Detector {
	return Detector{Name: "boom", Desc: "panics on chosen seeds", New: func() Instance {
		return &boomInstance{pred: pred}
	}}
}

// TestSweepSurvivesPanickingDetector: a panicking detector instance must not
// kill the worker pool — the sweep drains, panicked runs fold as Incomplete
// with ReasonPanic, and the healthy runs still count.
func TestSweepSurvivesPanickingDetector(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep := Sweep(hardenProg, SweepOptions{
			Runs: 12, BaseSeed: 100, Workers: workers,
		}, boomDetector(func(seed int64) bool { return seed%4 == 0 }))
		if rep.Completed != 9 {
			t.Fatalf("workers=%d: Completed = %d, want 9 (12 runs, seeds 100..111, 3 multiples of 4)", workers, rep.Completed)
		}
		if len(rep.Incomplete) != 3 {
			t.Fatalf("workers=%d: Incomplete = %+v, want the 3 panicked runs", workers, rep.Incomplete)
		}
		for _, inc := range rep.Incomplete {
			if inc.Reason != harness.ReasonPanic || inc.Seed%4 != 0 {
				t.Fatalf("workers=%d: incomplete run misclassified: %+v", workers, inc)
			}
		}
		if rep.Verdict.Status != harness.Incomplete || rep.Verdict.Reason != harness.ReasonPanic {
			t.Fatalf("workers=%d: verdict = %v, want incomplete(panic)", workers, rep.Verdict)
		}
	}
}

// TestSweepCancellationReturnsPartial: canceling the context mid-sweep stops
// dispatch promptly; completed runs fold, never-run seeds land in Incomplete
// with the context's reason, and the verdict says the sweep was cut short.
func TestSweepCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first run: everything is incomplete
	start := time.Now()
	rep := Sweep(hardenProg, SweepOptions{
		Runs: 5000, BaseSeed: 1, Workers: 2, Context: ctx,
	}, MustLookup("race"))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled sweep took %v", elapsed)
	}
	if rep.Completed != 0 || len(rep.Incomplete) != 5000 {
		t.Fatalf("completed=%d incomplete=%d, want 0/5000", rep.Completed, len(rep.Incomplete))
	}
	if rep.Verdict.Status != harness.Incomplete || rep.Verdict.Reason != harness.ReasonCanceled {
		t.Fatalf("verdict = %v, want incomplete(canceled)", rep.Verdict)
	}
}

// TestSweepDeadlineReturnsPartial: a deadline mid-sweep folds what finished
// and classifies the remainder as deadline-incomplete, within a bounded
// return time (in-flight runs finish, they are microseconds each).
func TestSweepDeadlineReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep := Sweep(hardenProg, SweepOptions{
		Runs: 200000, BaseSeed: 1, Workers: 2, Context: ctx,
	}, MustLookup("race"))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadlined sweep took %v", elapsed)
	}
	if rep.Completed == 0 || rep.Completed >= 200000 {
		t.Fatalf("Completed = %d, want a strict partial result", rep.Completed)
	}
	if rep.Verdict.Status != harness.Incomplete || rep.Verdict.Reason != harness.ReasonDeadline {
		t.Fatalf("verdict = %v, want incomplete(deadline)", rep.Verdict)
	}
	if got := rep.Completed + len(rep.Incomplete); got != 200000 {
		t.Fatalf("completed+incomplete = %d, every seed must be accounted for", got)
	}
}

// stripElapsed zeroes the wall-time fields, which are legitimately different
// between runs of the same sweep.
func stripElapsed(rep *SweepReport) *SweepReport {
	cp := *rep
	cp.Detectors = append([]SweepStat(nil), rep.Detectors...)
	for i := range cp.Detectors {
		cp.Detectors[i].Elapsed = 0
	}
	return &cp
}

// TestSweepCheckpointResumeFoldsIdentically is the resumability contract: a
// sweep interrupted mid-flight and resumed from its checkpoint folds to the
// same report as one that was never interrupted — and the resumed sweep only
// executes the missing seeds.
func TestSweepCheckpointResumeFoldsIdentically(t *testing.T) {
	race := MustLookup("race")
	baseline := Sweep(hardenProg, SweepOptions{Runs: 40, BaseSeed: 7, Workers: 1}, race)

	cp := filepath.Join(t.TempDir(), "sweep.json")
	opts := SweepOptions{Runs: 40, BaseSeed: 7, Workers: 1, Checkpoint: cp, CheckpointEvery: 5}

	// Leg 1: cancel after ~15 runs via a counting detector constructor.
	ctx, cancel := context.WithCancel(context.Background())
	executed := 0
	counting := Detector{Name: race.Name, Desc: race.Desc, New: func() Instance {
		executed++
		if executed == 15 {
			cancel()
		}
		return race.New()
	}}
	o1 := opts
	o1.Context = ctx
	partial := Sweep(hardenProg, o1, counting)
	if partial.Completed == 0 || partial.Completed >= 40 {
		t.Fatalf("interrupted leg completed %d of 40, want a strict partial", partial.Completed)
	}

	// Leg 2: resume from the checkpoint, no cancellation.
	executed2 := 0
	counting2 := Detector{Name: race.Name, Desc: race.Desc, New: func() Instance {
		executed2++
		return race.New()
	}}
	resumed := Sweep(hardenProg, opts, counting2)
	if resumed.Completed != 40 {
		t.Fatalf("resumed sweep completed %d of 40: %+v", resumed.Completed, resumed.Verdict)
	}
	if executed2 >= 40 {
		t.Fatalf("resume re-executed everything (%d constructor calls); checkpoint was ignored", executed2)
	}
	if executed2+partial.Completed != 40 {
		t.Fatalf("leg1 completed %d, leg2 executed %d; together they must cover exactly 40", partial.Completed, executed2)
	}
	if !reflect.DeepEqual(stripElapsed(resumed), stripElapsed(baseline)) {
		t.Fatalf("resumed fold differs from uninterrupted sweep:\n%+v\n%+v", stripElapsed(resumed), stripElapsed(baseline))
	}
}

// TestSweepCheckpointFingerprintMismatchStartsFresh: a checkpoint written
// under different options must be ignored, not half-applied.
func TestSweepCheckpointFingerprintMismatchStartsFresh(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.json")
	race := MustLookup("race")
	Sweep(hardenProg, SweepOptions{Runs: 10, BaseSeed: 7, Workers: 1, Checkpoint: cp}, race)
	rep := Sweep(hardenProg, SweepOptions{Runs: 10, BaseSeed: 8, Workers: 1, Checkpoint: cp}, race)
	if rep.Completed != 10 {
		t.Fatalf("mismatched checkpoint: completed %d, want a full fresh sweep", rep.Completed)
	}
}

// TestSweepWorkerIndependenceUnderInjection: with per-run injectors derived
// purely from (run, seed), the folded report is bit-identical for any worker
// count — the property that makes sweep hits replayable with one command.
func TestSweepWorkerIndependenceUnderInjection(t *testing.T) {
	injOpts := inject.Options{Seed: 5, Budget: 3}
	mk := func(workers int) *SweepReport {
		return stripElapsed(Sweep(hardenProg, SweepOptions{
			Runs: 30, BaseSeed: 3, Workers: workers,
			InjectorFor: func(run int, seed int64) sim.Injector { return inject.ForRun(injOpts, run) },
		}, MustLookup("race"), MustLookup("leak")))
	}
	serial := mk(1)
	parallel := mk(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 folds differ under injection:\n%+v\n%+v", serial, parallel)
	}
}
