// Package detect is the composable detector pipeline: a named registry of
// the study's detectors and a driver that attaches ANY subset of them to a
// single instrumented simulation pass.
//
// Before the unified event stream, each detector dragged its own run along:
// regenerating the detector-comparison extension meant simulating every
// kernel once per detector. Now every detector is an event.Sink (or a
// Result-only analysis), so one sim.Run dispatches each event once through
// the event.Mux and every attached detector sees it. RunAll is that single
// pass; Sweep folds RunAll over many seeds (the paper's Table 12 protocol,
// "We ran each buggy program 100 times with the race detector turned on").
//
// The pipeline also does the accounting the comparison experiment wants:
// per detector, how many events it consumed and how much wall time its
// Event calls (plus Finish) took — the measured version of the overhead
// argument in Section 5.3's detector discussion.
package detect

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"goconcbugs/internal/event"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/sim"
)

// Verdict is one detector's judgement of one run.
type Verdict struct {
	// Detector is the registry name that produced this verdict.
	Detector string
	// Detected reports whether the detector fired.
	Detected bool
	// Message is one representative finding (empty when !Detected).
	Message string
	// Findings lists every finding, rendered.
	Findings []string
	// Rules lists the detector-specific rule identifiers behind the
	// findings, when the detector has a rule taxonomy (vet does).
	Rules []string
}

// Instance is one attached detector for a single run. Kinds and Event
// follow event.Sink; a Result-only detector (built-in deadlock, leak,
// cycle analysis) returns nil from Kinds and is never dispatched to —
// all its work happens in Finish.
type Instance interface {
	Kinds() []event.Kind
	Event(*event.Event)
	Finish(res *sim.Result) Verdict
}

// Detector is a registry entry: a name, a one-line description, and a
// constructor for per-run instances (instances are single-run; vector
// clocks from different runs are incomparable).
type Detector struct {
	Name string
	Desc string
	New  func() Instance
}

var (
	regMu    sync.Mutex
	registry []Detector
)

// Register adds a detector to the registry. Names must be unique; the
// built-in set registers itself in this package's init.
func Register(d Detector) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, e := range registry {
		if e.Name == d.Name {
			panic(fmt.Sprintf("detect: duplicate detector %q", d.Name))
		}
	}
	registry = append(registry, d)
}

// All returns the registry in registration order.
func All() []Detector {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]Detector(nil), registry...)
}

// Names returns the registered detector names in registration order.
func Names() []string {
	var out []string
	for _, d := range All() {
		out = append(out, d.Name)
	}
	return out
}

// Lookup finds a detector by name.
func Lookup(name string) (Detector, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Detector{}, false
}

// MustLookup is Lookup for names known at compile time.
func MustLookup(name string) Detector {
	d, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("detect: unknown detector %q", name))
	}
	return d
}

// Parse resolves a comma-separated detector list ("race,vet,leak").
func Parse(list string) ([]Detector, error) {
	var out []Detector
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		d, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown detector %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty detector list (have %s)", strings.Join(Names(), ", "))
	}
	return out, nil
}

// Stat accounts one detector's share of a pass.
type Stat struct {
	Detector string
	// Events is the number of events dispatched to the detector (0 for
	// Result-only detectors).
	Events int64
	// Elapsed is the wall time spent inside the detector's Event and
	// Finish calls.
	Elapsed time.Duration
}

// counted is the sink actually registered with the mux: it forwards to the
// instance while counting events and accumulating wall time.
type counted struct {
	inst Instance
	stat Stat
}

func (c *counted) Kinds() []event.Kind { return c.inst.Kinds() }

func (c *counted) Event(ev *event.Event) {
	start := time.Now()
	c.inst.Event(ev)
	c.stat.Elapsed += time.Since(start)
	c.stat.Events++
}

// Report is the outcome of one single-pass instrumented run.
type Report struct {
	Result   *sim.Result
	Verdicts []Verdict
	Stats    []Stat
	// Elapsed is the wall time of the whole run, detectors included.
	Elapsed time.Duration
}

// Verdict returns the named detector's verdict (zero Verdict if absent).
func (r *Report) Verdict(name string) Verdict {
	for _, v := range r.Verdicts {
		if v.Detector == name {
			return v
		}
	}
	return Verdict{}
}

// Detected reports whether any attached detector fired.
func (r *Report) Detected() bool {
	for _, v := range r.Verdicts {
		if v.Detected {
			return true
		}
	}
	return false
}

// RunAll runs prog once with every listed detector attached to the same
// event stream — each event is produced once and fanned out by the mux —
// then collects the verdicts. Sinks already present in cfg are kept.
func RunAll(cfg sim.Config, prog sim.Program, dets ...Detector) *Report {
	return runAll(nil, cfg, prog, dets)
}

// runAll is RunAll with an optional recycled runtime. With a pool the
// returned Report carries a cloned Result (the pooled one is only valid
// until the pool's next run).
func runAll(pool *sim.RunPool, cfg sim.Config, prog sim.Program, dets []Detector) *Report {
	insts := make([]*counted, len(dets))
	// Full slice expression: never grow a caller-owned backing array.
	sinks := cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)]
	for i, d := range dets {
		insts[i] = &counted{inst: d.New(), stat: Stat{Detector: d.Name}}
		sinks = append(sinks, insts[i])
	}
	cfg.Sinks = sinks
	start := time.Now()
	var res *sim.Result
	if pool != nil {
		res = pool.Run(cfg, prog)
	} else {
		res = sim.Run(cfg, prog)
	}
	rep := &Report{Result: res}
	for _, c := range insts {
		fs := time.Now()
		v := c.inst.Finish(res)
		c.stat.Elapsed += time.Since(fs)
		rep.Verdicts = append(rep.Verdicts, v)
		rep.Stats = append(rep.Stats, c.stat)
	}
	rep.Elapsed = time.Since(start)
	if pool != nil {
		// The pooled Result is recycled on the pool's next run; the report
		// keeps a private copy.
		rep.Result = res.Clone()
	}
	return rep
}

// SweepOptions configures a multi-seed sweep.
type SweepOptions struct {
	// Runs is the number of seeds (default 100, the Table 12 protocol).
	Runs int
	// BaseSeed is the first seed; run i uses BaseSeed+i.
	BaseSeed int64
	// Config is the per-run configuration (Seed is overwritten per run;
	// Sinks present in it are kept on every run).
	Config sim.Config
	// Workers fans runs out over that many host goroutines (0 or negative
	// = GOMAXPROCS, 1 = serial). Results fold in seed order either way.
	Workers int
	// Context, when non-nil, bounds the sweep's wall-clock: once it is
	// canceled (or its deadline expires) no new runs start, in-flight runs
	// finish, and the report folds what completed — never-run seeds appear
	// in Incomplete and the Verdict says why. Nil means run to the end.
	Context context.Context
	// InjectorFor, when non-nil, builds a fresh fault injector for each
	// run (injectors are stateful and single-run). It must be a pure
	// function of (run, seed), so the sweep stays a deterministic function
	// of its options for any Workers value.
	InjectorFor func(run int, seed int64) sim.Injector
	// Checkpoint, when non-empty, is a file the sweep periodically writes
	// its per-run records to (atomically) and reads back on start: records
	// already present are not re-executed, so an interrupted sweep resumed
	// with the same options folds to the same report as an uninterrupted
	// one. A checkpoint written under different options is ignored.
	Checkpoint string
	// CheckpointEvery saves after that many newly completed runs (default
	// Runs/50, floored at 10 — each save re-marshals every record, so a
	// fixed small interval would make checkpointing quadratic on large
	// sweeps); the final state is always saved.
	CheckpointEvery int
	// RecordDir, when non-empty, archives every completed run as a
	// trace/v1 file under it (run-NNNNN.trace, one frame per file, written
	// atomically) for offline re-judging by ReplayDir. Frames are
	// position-independent, so sharded sweeps recording into the same
	// directory assemble the exact archive a serial sweep writes.
	// Recording is best-effort with the same contract as Checkpoint: a
	// write failure costs the archive entry, never the sweep.
	RecordDir string
	// Pool, when non-nil, is an external sim.RunPool the serial sweep path
	// (Workers == 1) recycles runs through instead of creating its own —
	// a job-engine worker executing many sweeps back to back keeps one
	// warm runtime across all of them. The pool is single-owner and is NOT
	// closed by Sweep; it is ignored when the sweep runs parallel workers
	// (each worker owns a private pool either way).
	Pool *sim.RunPool
	// ShardCount and ShardIndex restrict the sweep to one contiguous block
	// of the seed range: with ShardCount > 1, only runs in shard ShardIndex
	// (per harness.Shard) execute, and the report folds that block alone.
	// Each shard writes a full-length checkpoint with nulls outside its
	// block; MergeSweepCheckpoints folds the shard files back into the
	// byte-identical checkpoint — and hence the identical report — a serial
	// sweep would have produced. ShardCount <= 1 means unsharded.
	ShardCount int
	ShardIndex int
}

// SweepStat aggregates one detector over a sweep.
type SweepStat struct {
	Detector     string
	DetectedRuns int
	// FirstRun is the index of the first detecting run, -1 if none.
	FirstRun int
	// Sample is one representative finding from the first detecting run.
	Sample string
	// Rules is the union of rule identifiers across runs, sorted.
	Rules []string
	// Events is the total events dispatched to the detector across all
	// completed runs. Elapsed is the wall time spent inside the detector
	// in THIS process — a resumed sweep excludes time spent before the
	// checkpoint (wall time is not reproducible, so it is never part of
	// the deterministic fold).
	Events  int64
	Elapsed time.Duration
}

// Detected reports whether any run fired — the paper's "We consider a bug
// detected within runs as a detected bug".
func (s SweepStat) Detected() bool { return s.DetectedRuns > 0 }

// IncompleteRun is one seed the sweep could not finish: it panicked on the
// host side or was never dispatched before cancellation.
type IncompleteRun struct {
	Run    int    `json:"run"`
	Seed   int64  `json:"seed"`
	Reason string `json:"reason"` // harness.ReasonPanic / Canceled / Deadline
	Detail string `json:"detail,omitempty"`
}

// SweepReport is the seed-order fold of a sweep.
type SweepReport struct {
	Runs      int
	Detectors []SweepStat
	// Completed counts runs that executed to the end; panicked and
	// never-dispatched seeds are listed in Incomplete instead of being
	// silently dropped.
	Completed  int
	Incomplete []IncompleteRun
	// Verdict is the structured outcome: Confirmed when any completed run
	// fired a detector, Refuted when every scheduled run completed clean,
	// Incomplete (with a reason) otherwise.
	Verdict harness.Verdict
}

// Stat returns the named detector's aggregate (zero SweepStat if absent).
func (r *SweepReport) Stat(name string) SweepStat {
	for _, s := range r.Detectors {
		if s.Detector == name {
			return s
		}
	}
	return SweepStat{Detector: name, FirstRun: -1}
}

// sweepRecord is one run's deterministic outcome — the unit of
// checkpointing. Wall time is deliberately absent: it is not reproducible,
// so keeping it out makes the fold of a resumed sweep bit-identical to an
// uninterrupted one.
type sweepRecord struct {
	Run      int               `json:"run"`
	Seed     int64             `json:"seed"`
	Err      *harness.RunError `json:"err,omitempty"`
	Verdicts []Verdict         `json:"verdicts,omitempty"`
	// Events is the per-detector dispatch count, indexed like dets.
	Events []int64 `json:"events,omitempty"`
}

// sweepCheckpoint is the on-disk format: Records is indexed by run with
// nulls for seeds not yet executed, and Fingerprint guards against resuming
// under different options (a mismatch silently starts fresh).
type sweepCheckpoint struct {
	Fingerprint string         `json:"fingerprint"`
	Records     []*sweepRecord `json:"records"`
}

func sweepFingerprint(opts SweepOptions, dets []Detector) string {
	names := make([]string, len(dets))
	for i, d := range dets {
		names[i] = d.Name
	}
	inj := ""
	if opts.InjectorFor != nil {
		inj = " inject"
	}
	return fmt.Sprintf("sweep/v1 runs=%d base=%d prog=%s dets=%s%s",
		opts.Runs, opts.BaseSeed, opts.Config.Name, strings.Join(names, ","), inj)
}

// Sweep runs prog under opts.Runs seeds, every listed detector attached to
// each run's single event stream, and folds the verdicts in seed order (so
// the report is identical for any Workers value).
//
// The sweep is hardened: a run that panics on the host side (a buggy
// detector or kernel) is isolated, recorded in Incomplete, and the pool
// keeps draining; cancellation via Context stops dispatching and folds the
// partial result; Checkpoint persists per-run records so an interrupted
// sweep resumes where it stopped.
func Sweep(prog sim.Program, opts SweepOptions, dets ...Detector) *SweepReport {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = opts.Runs / 50
		if opts.CheckpointEvery < 10 {
			opts.CheckpointEvery = 10
		}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.RecordDir != "" {
		// Best-effort, like checkpoint saves: per-run recording quietly
		// no-ops if the directory cannot exist.
		_ = os.MkdirAll(opts.RecordDir, 0o755)
	}

	lo, hi := 0, opts.Runs
	if opts.ShardCount > 1 {
		lo, hi = harness.Shard(opts.Runs, opts.ShardCount, opts.ShardIndex)
	}

	records := make([]*sweepRecord, opts.Runs)
	fp := sweepFingerprint(opts, dets)
	if opts.Checkpoint != "" {
		var cp sweepCheckpoint
		if err := harness.LoadCheckpoint(opts.Checkpoint, &cp); err == nil &&
			cp.Fingerprint == fp && len(cp.Records) == opts.Runs {
			copy(records, cp.Records)
		}
	}
	var worklist []int
	for i := lo; i < hi; i++ {
		if records[i] == nil {
			worklist = append(worklist, i)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(worklist) {
		workers = len(worklist)
	}

	// mu guards records, the live-elapsed accumulator, and checkpoint
	// writes; records entries are immutable once stored.
	var mu sync.Mutex
	elapsed := make([]time.Duration, len(dets))
	newDone := 0
	saveLocked := func() {
		snap := sweepCheckpoint{Fingerprint: fp, Records: records}
		// A failed save costs resumability, not correctness; the sweep
		// itself proceeds.
		_ = harness.SaveCheckpoint(opts.Checkpoint, &snap)
	}
	// Each worker owns a RunPool so back-to-back seeds recycle one runtime.
	oneRun := func(pool *sim.RunPool, i int) {
		cfg := opts.Config
		cfg.Seed = opts.BaseSeed + int64(i)
		if opts.InjectorFor != nil {
			cfg.Injector = opts.InjectorFor(i, cfg.Seed)
		}
		var rc *recording
		if opts.RecordDir != "" {
			rc = beginRecording(opts, i, &cfg)
		}
		var rep *Report
		runErr := harness.Capture(i, cfg.Seed, func() { rep = runAll(pool, cfg, prog, dets) })
		if rc != nil {
			rc.finish(rep)
		}
		rec := &sweepRecord{Run: i, Seed: cfg.Seed, Err: runErr}
		if runErr == nil {
			rec.Verdicts = rep.Verdicts
			rec.Events = make([]int64, len(dets))
			for di := range dets {
				rec.Events[di] = rep.Stats[di].Events
			}
		}
		mu.Lock()
		records[i] = rec
		if rep != nil {
			for di := range dets {
				elapsed[di] += rep.Stats[di].Elapsed
			}
		}
		newDone++
		if opts.Checkpoint != "" && newDone%opts.CheckpointEvery == 0 {
			saveLocked()
		}
		mu.Unlock()
	}
	if workers <= 1 {
		pool := opts.Pool
		if pool == nil {
			pool = sim.NewRunPool()
			defer pool.Close()
		}
		for _, i := range worklist {
			if ctx.Err() != nil {
				break
			}
			oneRun(pool, i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool := sim.NewRunPool()
				defer pool.Close()
				for i := range next {
					oneRun(pool, i)
				}
			}()
		}
		for _, i := range worklist {
			if ctx.Err() != nil {
				break
			}
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if opts.Checkpoint != "" {
		mu.Lock()
		saveLocked()
		mu.Unlock()
	}

	return foldSweep(opts, dets, records, lo, hi, elapsed, ctx.Err())
}

// foldSweep builds the seed-order report from per-run records over the
// half-open run range [lo, hi). It is shared by Sweep (serial, resumed, and
// single-shard) and MergeSweepCheckpoints (full range over merged shards), so
// every path to a report folds identically. elapsed may be nil: wall time is
// process-local and never part of the deterministic fold.
func foldSweep(opts SweepOptions, dets []Detector, records []*sweepRecord, lo, hi int, elapsed []time.Duration, ctxErr error) *SweepReport {
	out := &SweepReport{Runs: hi - lo}
	rules := make([]map[string]bool, len(dets))
	for di, d := range dets {
		out.Detectors = append(out.Detectors, SweepStat{Detector: d.Name, FirstRun: -1})
		rules[di] = map[string]bool{}
	}
	for i := lo; i < hi; i++ {
		rec := records[i]
		if rec == nil {
			reason := harness.ReasonCanceled
			if ctxErr != nil {
				reason = harness.CtxReason(ctxErr)
			}
			out.Incomplete = append(out.Incomplete, IncompleteRun{
				Run: i, Seed: opts.BaseSeed + int64(i), Reason: reason,
			})
			continue
		}
		if rec.Err != nil {
			out.Incomplete = append(out.Incomplete, IncompleteRun{
				Run: i, Seed: rec.Seed, Reason: harness.ReasonPanic, Detail: rec.Err.PanicValue,
			})
			continue
		}
		out.Completed++
		for di := range dets {
			st := &out.Detectors[di]
			v := rec.Verdicts[di]
			st.Events += rec.Events[di]
			if v.Detected {
				st.DetectedRuns++
				if st.FirstRun < 0 {
					st.FirstRun = i
					st.Sample = v.Message
				}
			}
			for _, r := range v.Rules {
				rules[di][r] = true
			}
		}
	}
	for di := range dets {
		if elapsed != nil {
			out.Detectors[di].Elapsed = elapsed[di]
		}
		for r := range rules[di] {
			out.Detectors[di].Rules = append(out.Detectors[di].Rules, r)
		}
		sort.Strings(out.Detectors[di].Rules)
	}

	detected := false
	for di := range out.Detectors {
		if out.Detectors[di].DetectedRuns > 0 {
			detected = true
			break
		}
	}
	switch {
	case detected:
		out.Verdict = harness.Verdict{Status: harness.Confirmed}
	case len(out.Incomplete) == 0:
		out.Verdict = harness.Verdict{Status: harness.Refuted}
	default:
		reason := out.Incomplete[0].Reason
		for _, inc := range out.Incomplete {
			// A cut-short sweep dominates isolated panics as the
			// headline reason.
			if inc.Reason != harness.ReasonPanic {
				reason = inc.Reason
				break
			}
		}
		out.Verdict = harness.Incompletef(reason, "%d of %d runs incomplete", len(out.Incomplete), out.Runs)
	}
	return out
}

// Structured merge failures. MergeSweepCheckpoints wraps each with the
// offending path and details; callers classify with errors.Is — a fleet
// scheduler treats ErrShardUnreadable as "re-fetch that shard" but
// ErrShardOverlap/ErrShardFingerprint as partitioning bugs that no retry
// fixes.
var (
	// ErrShardUnreadable: a shard checkpoint file is missing or corrupt.
	ErrShardUnreadable = errors.New("shard checkpoint unreadable")
	// ErrShardFingerprint: a shard checkpoint was written under different
	// sweep options (program, seed range, detector set, injection).
	ErrShardFingerprint = errors.New("shard checkpoint fingerprint mismatch")
	// ErrShardLength: a shard checkpoint's record slice is not the sweep's
	// full length — it was written by a different format or a torn tool.
	ErrShardLength = errors.New("shard checkpoint length mismatch")
	// ErrShardOverlap: the same run appears in more than one shard
	// checkpoint — overlapping shard ranges or a duplicated shard file.
	ErrShardOverlap = errors.New("shard checkpoints overlap")
)

// MergeSweepCheckpoints folds the checkpoint files written by sharded Sweeps
// of the same program and options back into the one report a serial sweep
// would produce. Every source must carry the fingerprint of opts/dets and a
// full-length record slice; records present in more than one source mean the
// shards overlapped (a partitioning bug) and are rejected, as is the same
// source path listed twice. Seeds no shard executed fold into Incomplete,
// exactly as a canceled serial sweep's would. Failures wrap the ErrShard*
// sentinels, never fold silently.
//
// When dst is non-empty the merged full-length checkpoint is saved there
// first; because sweepRecords hold no wall time and the fingerprint carries
// no shard identity, that file is byte-identical to the checkpoint an
// uninterrupted serial sweep of the same options writes.
func MergeSweepCheckpoints(dst string, srcs []string, opts SweepOptions, dets ...Detector) (*SweepReport, error) {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	fp := sweepFingerprint(opts, dets)
	records := make([]*sweepRecord, opts.Runs)
	seen := make(map[string]bool, len(srcs))
	for _, src := range srcs {
		if seen[src] {
			return nil, fmt.Errorf("detect: shard checkpoint %s listed twice: %w", src, ErrShardOverlap)
		}
		seen[src] = true
		var cp sweepCheckpoint
		if err := harness.LoadCheckpoint(src, &cp); err != nil {
			return nil, fmt.Errorf("detect: reading shard checkpoint %s: %w (%w)", src, err, ErrShardUnreadable)
		}
		if cp.Fingerprint != fp {
			return nil, fmt.Errorf("detect: shard checkpoint %s was written under different options:\n  have %q\n  want %q\n  %w", src, cp.Fingerprint, fp, ErrShardFingerprint)
		}
		if len(cp.Records) != opts.Runs {
			return nil, fmt.Errorf("detect: shard checkpoint %s holds %d records, want %d: %w", src, len(cp.Records), opts.Runs, ErrShardLength)
		}
		for i, rec := range cp.Records {
			if rec == nil {
				continue
			}
			if records[i] != nil {
				return nil, fmt.Errorf("detect: run %d appears in more than one shard checkpoint (%s) — shards must partition the seed range: %w", i, src, ErrShardOverlap)
			}
			records[i] = rec
		}
	}
	if dst != "" {
		if err := harness.SaveCheckpoint(dst, &sweepCheckpoint{Fingerprint: fp, Records: records}); err != nil {
			return nil, err
		}
	}
	return foldSweep(opts, dets, records, 0, opts.Runs, nil, nil), nil
}
