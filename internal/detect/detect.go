// Package detect is the composable detector pipeline: a named registry of
// the study's detectors and a driver that attaches ANY subset of them to a
// single instrumented simulation pass.
//
// Before the unified event stream, each detector dragged its own run along:
// regenerating the detector-comparison extension meant simulating every
// kernel once per detector. Now every detector is an event.Sink (or a
// Result-only analysis), so one sim.Run dispatches each event once through
// the event.Mux and every attached detector sees it. RunAll is that single
// pass; Sweep folds RunAll over many seeds (the paper's Table 12 protocol,
// "We ran each buggy program 100 times with the race detector turned on").
//
// The pipeline also does the accounting the comparison experiment wants:
// per detector, how many events it consumed and how much wall time its
// Event calls (plus Finish) took — the measured version of the overhead
// argument in Section 5.3's detector discussion.
package detect

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"goconcbugs/internal/event"
	"goconcbugs/internal/sim"
)

// Verdict is one detector's judgement of one run.
type Verdict struct {
	// Detector is the registry name that produced this verdict.
	Detector string
	// Detected reports whether the detector fired.
	Detected bool
	// Message is one representative finding (empty when !Detected).
	Message string
	// Findings lists every finding, rendered.
	Findings []string
	// Rules lists the detector-specific rule identifiers behind the
	// findings, when the detector has a rule taxonomy (vet does).
	Rules []string
}

// Instance is one attached detector for a single run. Kinds and Event
// follow event.Sink; a Result-only detector (built-in deadlock, leak,
// cycle analysis) returns nil from Kinds and is never dispatched to —
// all its work happens in Finish.
type Instance interface {
	Kinds() []event.Kind
	Event(*event.Event)
	Finish(res *sim.Result) Verdict
}

// Detector is a registry entry: a name, a one-line description, and a
// constructor for per-run instances (instances are single-run; vector
// clocks from different runs are incomparable).
type Detector struct {
	Name string
	Desc string
	New  func() Instance
}

var (
	regMu    sync.Mutex
	registry []Detector
)

// Register adds a detector to the registry. Names must be unique; the
// built-in set registers itself in this package's init.
func Register(d Detector) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, e := range registry {
		if e.Name == d.Name {
			panic(fmt.Sprintf("detect: duplicate detector %q", d.Name))
		}
	}
	registry = append(registry, d)
}

// All returns the registry in registration order.
func All() []Detector {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]Detector(nil), registry...)
}

// Names returns the registered detector names in registration order.
func Names() []string {
	var out []string
	for _, d := range All() {
		out = append(out, d.Name)
	}
	return out
}

// Lookup finds a detector by name.
func Lookup(name string) (Detector, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Detector{}, false
}

// MustLookup is Lookup for names known at compile time.
func MustLookup(name string) Detector {
	d, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("detect: unknown detector %q", name))
	}
	return d
}

// Parse resolves a comma-separated detector list ("race,vet,leak").
func Parse(list string) ([]Detector, error) {
	var out []Detector
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		d, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown detector %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty detector list (have %s)", strings.Join(Names(), ", "))
	}
	return out, nil
}

// Stat accounts one detector's share of a pass.
type Stat struct {
	Detector string
	// Events is the number of events dispatched to the detector (0 for
	// Result-only detectors).
	Events int64
	// Elapsed is the wall time spent inside the detector's Event and
	// Finish calls.
	Elapsed time.Duration
}

// counted is the sink actually registered with the mux: it forwards to the
// instance while counting events and accumulating wall time.
type counted struct {
	inst Instance
	stat Stat
}

func (c *counted) Kinds() []event.Kind { return c.inst.Kinds() }

func (c *counted) Event(ev *event.Event) {
	start := time.Now()
	c.inst.Event(ev)
	c.stat.Elapsed += time.Since(start)
	c.stat.Events++
}

// Report is the outcome of one single-pass instrumented run.
type Report struct {
	Result   *sim.Result
	Verdicts []Verdict
	Stats    []Stat
	// Elapsed is the wall time of the whole run, detectors included.
	Elapsed time.Duration
}

// Verdict returns the named detector's verdict (zero Verdict if absent).
func (r *Report) Verdict(name string) Verdict {
	for _, v := range r.Verdicts {
		if v.Detector == name {
			return v
		}
	}
	return Verdict{}
}

// Detected reports whether any attached detector fired.
func (r *Report) Detected() bool {
	for _, v := range r.Verdicts {
		if v.Detected {
			return true
		}
	}
	return false
}

// RunAll runs prog once with every listed detector attached to the same
// event stream — each event is produced once and fanned out by the mux —
// then collects the verdicts. Sinks already present in cfg are kept.
func RunAll(cfg sim.Config, prog sim.Program, dets ...Detector) *Report {
	insts := make([]*counted, len(dets))
	// Full slice expression: never grow a caller-owned backing array.
	sinks := cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)]
	for i, d := range dets {
		insts[i] = &counted{inst: d.New(), stat: Stat{Detector: d.Name}}
		sinks = append(sinks, insts[i])
	}
	cfg.Sinks = sinks
	start := time.Now()
	res := sim.Run(cfg, prog)
	rep := &Report{Result: res}
	for _, c := range insts {
		fs := time.Now()
		v := c.inst.Finish(res)
		c.stat.Elapsed += time.Since(fs)
		rep.Verdicts = append(rep.Verdicts, v)
		rep.Stats = append(rep.Stats, c.stat)
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// SweepOptions configures a multi-seed sweep.
type SweepOptions struct {
	// Runs is the number of seeds (default 100, the Table 12 protocol).
	Runs int
	// BaseSeed is the first seed; run i uses BaseSeed+i.
	BaseSeed int64
	// Config is the per-run configuration (Seed is overwritten per run;
	// Sinks present in it are kept on every run).
	Config sim.Config
	// Workers fans runs out over that many host goroutines (0 or negative
	// = GOMAXPROCS, 1 = serial). Results fold in seed order either way.
	Workers int
}

// SweepStat aggregates one detector over a sweep.
type SweepStat struct {
	Detector     string
	DetectedRuns int
	// FirstRun is the index of the first detecting run, -1 if none.
	FirstRun int
	// Sample is one representative finding from the first detecting run.
	Sample string
	// Rules is the union of rule identifiers across runs, sorted.
	Rules []string
	// Events and Elapsed are totals across all runs.
	Events  int64
	Elapsed time.Duration
}

// Detected reports whether any run fired — the paper's "We consider a bug
// detected within runs as a detected bug".
func (s SweepStat) Detected() bool { return s.DetectedRuns > 0 }

// SweepReport is the seed-order fold of a sweep.
type SweepReport struct {
	Runs      int
	Detectors []SweepStat
}

// Stat returns the named detector's aggregate (zero SweepStat if absent).
func (r *SweepReport) Stat(name string) SweepStat {
	for _, s := range r.Detectors {
		if s.Detector == name {
			return s
		}
	}
	return SweepStat{Detector: name, FirstRun: -1}
}

// Sweep runs prog under opts.Runs seeds, every listed detector attached to
// each run's single event stream, and folds the verdicts in seed order (so
// the report is identical for any Workers value).
func Sweep(prog sim.Program, opts SweepOptions, dets ...Detector) *SweepReport {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}
	reports := make([]*Report, opts.Runs)
	oneRun := func(i int) {
		cfg := opts.Config
		cfg.Seed = opts.BaseSeed + int64(i)
		reports[i] = RunAll(cfg, prog, dets...)
	}
	if workers == 1 {
		for i := range reports {
			oneRun(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					oneRun(i)
				}
			}()
		}
		for i := range reports {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	out := &SweepReport{Runs: opts.Runs}
	rules := make([]map[string]bool, len(dets))
	for di, d := range dets {
		out.Detectors = append(out.Detectors, SweepStat{Detector: d.Name, FirstRun: -1})
		rules[di] = map[string]bool{}
	}
	for i, rep := range reports {
		for di := range dets {
			st := &out.Detectors[di]
			v := rep.Verdicts[di]
			st.Events += rep.Stats[di].Events
			st.Elapsed += rep.Stats[di].Elapsed
			if v.Detected {
				st.DetectedRuns++
				if st.FirstRun < 0 {
					st.FirstRun = i
					st.Sample = v.Message
				}
			}
			for _, r := range v.Rules {
				rules[di][r] = true
			}
		}
	}
	for di := range dets {
		for r := range rules[di] {
			out.Detectors[di].Rules = append(out.Detectors[di].Rules, r)
		}
		sort.Strings(out.Detectors[di].Rules)
	}
	return out
}
