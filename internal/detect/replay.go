// Offline replay: the detector pipeline driven by archived trace/v1 event
// streams instead of a live simulation. Record once (SweepOptions.RecordDir
// or trace.Record), re-judge forever — including with detectors that did
// not exist when the run executed, the paper's own post-hoc methodology.
package detect

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"goconcbugs/internal/event"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/trace"
)

// RunAllTrace is RunAll's offline twin: it decodes one archived run frame
// from r and drives every listed detector from the decoded stream, exactly
// as the mux dispatched it live. Verdicts and per-detector event counts are
// bit-identical to the live run's because both sides see the same events in
// the same order: a recorder subscribes to every kind, so the archive holds
// the full stream, and replay dispatches it through the same per-kind mux
// the simulation used.
func RunAllTrace(r io.Reader, dets ...Detector) (*Report, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	if _, err := tr.NextRun(); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("detect: trace holds no run frames")
		}
		return nil, err
	}
	return replayRun(tr, dets)
}

// replayRun judges the current frame of tr, mirroring runAll's counted
// dispatch and Finish loop over the archived stream and Result.
func replayRun(tr *trace.Reader, dets []Detector) (*Report, error) {
	insts := make([]*counted, len(dets))
	sinks := make([]event.Sink, len(dets))
	for i, d := range dets {
		insts[i] = &counted{inst: d.New(), stat: Stat{Detector: d.Name}}
		sinks[i] = insts[i]
	}
	start := time.Now()
	res, err := tr.Replay(event.NewMux(sinks))
	if err != nil {
		return nil, err
	}
	rep := &Report{Result: res}
	for _, c := range insts {
		fs := time.Now()
		v := c.inst.Finish(res)
		c.stat.Elapsed += time.Since(fs)
		rep.Verdicts = append(rep.Verdicts, v)
		rep.Stats = append(rep.Stats, c.stat)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// traceFingerprint identifies a sweep's archive. Unlike sweepFingerprint it
// deliberately excludes the detector set: re-judging an old archive with
// detectors that did not exist at record time is the point of replay, so an
// archive is keyed only by what produced the events.
func traceFingerprint(opts SweepOptions) string {
	inj := ""
	if opts.InjectorFor != nil {
		inj = " inject"
	}
	return fmt.Sprintf("trace/v1 runs=%d base=%d prog=%s%s",
		opts.Runs, opts.BaseSeed, opts.Config.Name, inj)
}

// ReplayDir re-judges a sweep archive recorded via SweepOptions.RecordDir:
// every *.trace file under dir replays through the listed detectors, and
// the records fold with foldSweep — the same fold as a live sweep, so the
// report (and, when opts.Checkpoint is set, the checkpoint file) is
// byte-identical to what a live Sweep of the same options and detectors
// writes. Runs absent from the archive (a shard not yet recorded, or a run
// that panicked while recording) fold into Incomplete.
//
// opts must be the recording sweep's options: Runs, BaseSeed, Config.Name
// and whether InjectorFor was set are checked against every frame header
// and a mismatch returns a *trace.FingerprintError.
func ReplayDir(dir string, opts SweepOptions, dets ...Detector) (*SweepReport, error) {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("detect: no .trace files under %s", dir)
	}
	sort.Strings(files)
	want := traceFingerprint(opts)
	records := make([]*sweepRecord, opts.Runs)
	for _, path := range files {
		if err := replayFile(path, want, opts, dets, records); err != nil {
			return nil, err
		}
	}
	if opts.Checkpoint != "" {
		cp := sweepCheckpoint{Fingerprint: sweepFingerprint(opts, dets), Records: records}
		if err := harness.SaveCheckpoint(opts.Checkpoint, &cp); err != nil {
			return nil, err
		}
	}
	return foldSweep(opts, dets, records, 0, opts.Runs, nil, nil), nil
}

// replayFile folds every frame of one archive file into records.
func replayFile(path, want string, opts SweepOptions, dets []Detector, records []*sweepRecord) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return fmt.Errorf("detect: %s: %w", path, err)
	}
	for {
		meta, err := tr.NextRun()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("detect: %s: %w", path, err)
		}
		if meta.Fingerprint != want {
			return fmt.Errorf("detect: %s: %w", path, &trace.FingerprintError{Have: meta.Fingerprint, Want: want})
		}
		if meta.Run < 0 || meta.Run >= opts.Runs {
			return fmt.Errorf("detect: %s: frame claims run %d of a %d-run sweep", path, meta.Run, opts.Runs)
		}
		if records[meta.Run] != nil {
			return fmt.Errorf("detect: %s: run %d appears in more than one frame — archives must partition the seed range", path, meta.Run)
		}
		rep, err := replayRun(tr, dets)
		if err != nil {
			return fmt.Errorf("detect: %s: %w", path, err)
		}
		rec := &sweepRecord{Run: meta.Run, Seed: meta.Seed, Verdicts: rep.Verdicts}
		rec.Events = make([]int64, len(dets))
		for di := range dets {
			rec.Events[di] = rep.Stats[di].Events
		}
		records[meta.Run] = rec
	}
}

// planner is the optional interface through which a sim.Injector exposes
// its recorded fault plan (inject.Injector does). The sweep recorder
// archives the pre-run plan spec in the frame header — enough to rebuild
// the injector deterministically — and the post-run plan, faults included,
// in the trailer for attribution.
type planner interface{ Plan() *inject.Plan }

// recording is one run's in-flight archive: a temp file in the record
// directory that is renamed to its final name only once the run completed
// and the frame is fully written, so readers never observe a partial file
// and a run that panics host-side leaves no archive entry (it replays as
// Incomplete, just as it folds live).
type recording struct {
	file *os.File
	path string
	rec  *trace.Recorder
	inj  sim.Injector
}

// beginRecording opens run i's archive file and attaches its Recorder to
// cfg.Sinks. Recording is best-effort, the same contract as checkpoint
// saves: a failure costs the archive entry, never the sweep — it returns
// nil and the run proceeds unrecorded.
func beginRecording(opts SweepOptions, i int, cfg *sim.Config) *recording {
	f, err := os.CreateTemp(opts.RecordDir, ".run-*.tmp")
	if err != nil {
		return nil
	}
	var planSpec []byte
	if p, ok := cfg.Injector.(planner); ok {
		planSpec, _ = p.Plan().Encode()
	}
	tw := trace.NewWriter(f)
	rec := tw.BeginRun(trace.RunMeta{
		Fingerprint:   traceFingerprint(opts),
		Name:          cfg.Name,
		Run:           i,
		Runs:          opts.Runs,
		BaseSeed:      opts.BaseSeed,
		Seed:          cfg.Seed,
		MaxSteps:      cfg.MaxSteps,
		LeakThreshold: cfg.LeakThreshold,
		FaultPlan:     planSpec,
	})
	cfg.Sinks = append(cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)], rec)
	return &recording{
		file: f,
		path: filepath.Join(opts.RecordDir, fmt.Sprintf("run-%05d.trace", i)),
		rec:  rec,
		inj:  cfg.Injector,
	}
}

// finish closes the frame with the run's Result and publishes the file;
// rep == nil (the run panicked host-side) discards the partial archive.
func (rc *recording) finish(rep *Report) {
	tmp := rc.file.Name()
	defer os.Remove(tmp)
	if rep == nil {
		rc.file.Close()
		return
	}
	var plan []byte
	if p, ok := rc.inj.(planner); ok {
		plan, _ = p.Plan().Encode()
	}
	if err := rc.rec.FinishRun(rep.Result, plan); err != nil {
		rc.file.Close()
		return
	}
	if err := rc.file.Close(); err != nil {
		return
	}
	_ = os.Rename(tmp, rc.path)
}
