package detect

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"goconcbugs/internal/harness"
	"goconcbugs/internal/sim"
)

// shardProg has a real data race, so different seeds fold different verdicts
// — a merge that mixed up records would not go unnoticed.
func shardProg(tt *sim.T) {
	x := sim.NewVar[int](tt, "x")
	done := sim.NewChan[int](tt, 2)
	tt.Go(func(ct *sim.T) { x.Store(ct, 1); done.Send(ct, 1) })
	tt.Go(func(ct *sim.T) { x.Store(ct, 2); done.Send(ct, 2) })
	done.Recv(tt)
	done.Recv(tt)
}

func shardDets() []Detector {
	return []Detector{MustLookup("race"), MustLookup("leak")}
}

func zeroElapsed(r *SweepReport) {
	for i := range r.Detectors {
		r.Detectors[i].Elapsed = 0
	}
}

// TestShardedSweepFoldsIdenticalToSerial is the sharding contract: four
// shard processes, each sweeping its own contiguous seed block into its own
// checkpoint, merge into the byte-identical checkpoint file — and the
// identical report — a serial sweep of the same options produces.
func TestShardedSweepFoldsIdenticalToSerial(t *testing.T) {
	dir := t.TempDir()
	dets := shardDets()
	opts := SweepOptions{Runs: 23, BaseSeed: 5, Config: sim.Config{Name: "shard-prog"}}

	serialOpts := opts
	serialOpts.Checkpoint = filepath.Join(dir, "serial.ck")
	serial := Sweep(shardProg, serialOpts, dets...)
	if serial.Verdict.Status != harness.Confirmed {
		t.Fatalf("serial sweep verdict = %v, want confirmed (the program races)", serial.Verdict)
	}

	const shards = 4
	var srcs []string
	for s := 0; s < shards; s++ {
		so := opts
		so.ShardCount, so.ShardIndex = shards, s
		so.Checkpoint = filepath.Join(dir, "shard"+string(rune('0'+s))+".ck")
		so.Workers = 1 + s%2 // serial and parallel shards must fold the same
		srcs = append(srcs, so.Checkpoint)
		rep := Sweep(shardProg, so, dets...)
		lo, hi := harness.Shard(opts.Runs, shards, s)
		if rep.Runs != hi-lo || rep.Completed != hi-lo {
			t.Fatalf("shard %d: Runs=%d Completed=%d, want both %d", s, rep.Runs, rep.Completed, hi-lo)
		}
	}

	mergedPath := filepath.Join(dir, "merged.ck")
	merged, err := MergeSweepCheckpoints(mergedPath, srcs, opts, dets...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	serialBytes, err := os.ReadFile(serialOpts.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialBytes, mergedBytes) {
		t.Errorf("merged checkpoint differs from serial checkpoint:\n  serial: %d bytes\n  merged: %d bytes", len(serialBytes), len(mergedBytes))
	}

	zeroElapsed(serial)
	zeroElapsed(merged)
	if !reflect.DeepEqual(serial, merged) {
		t.Errorf("merged report differs from serial:\n  serial: %+v\n  merged: %+v", serial, merged)
	}
}

// TestMergeSweepCheckpointsRejectsMisuse: a checkpoint from different
// options, and overlapping shards, are partitioning bugs the merge must
// refuse rather than fold into a wrong verdict.
func TestMergeSweepCheckpointsRejectsMisuse(t *testing.T) {
	dir := t.TempDir()
	dets := shardDets()
	opts := SweepOptions{Runs: 8, BaseSeed: 1, Config: sim.Config{Name: "shard-prog"}}

	so := opts
	so.ShardCount, so.ShardIndex = 2, 0
	so.Checkpoint = filepath.Join(dir, "half.ck")
	Sweep(shardProg, so, dets...)

	other := opts
	other.BaseSeed = 99
	if _, err := MergeSweepCheckpoints("", []string{so.Checkpoint}, other, dets...); err == nil {
		t.Error("merging a checkpoint written under a different base seed did not fail")
	}
	if _, err := MergeSweepCheckpoints("", []string{so.Checkpoint, so.Checkpoint}, opts, dets...); err == nil {
		t.Error("merging the same shard twice (overlapping records) did not fail")
	}
	if _, err := MergeSweepCheckpoints("", []string{filepath.Join(dir, "absent.ck")}, opts, dets...); err == nil {
		t.Error("merging a missing checkpoint file did not fail")
	}
}

// TestMergeSweepCheckpointsAdversarial is the structured-error contract for
// the merge under adversarial inputs: overlapping shard ranges, a missing
// shard file, the same shard file listed twice, wrong-length records, and
// fingerprints from different options must all classify via the ErrShard*
// sentinels instead of folding a wrong verdict silently.
func TestMergeSweepCheckpointsAdversarial(t *testing.T) {
	dir := t.TempDir()
	dets := shardDets()
	opts := SweepOptions{Runs: 12, BaseSeed: 2, Config: sim.Config{Name: "shard-prog"}}

	// Honest 2-way sharding, plus a deliberately overlapping 3-way shard 0
	// (runs 0-3) that collides with 2-way shard 0 (runs 0-5).
	shardFile := func(count, index int) string {
		so := opts
		so.ShardCount, so.ShardIndex = count, index
		so.Checkpoint = filepath.Join(dir, fmt.Sprintf("s%d-of-%d.ck", index, count))
		Sweep(shardProg, so, dets...)
		return so.Checkpoint
	}
	half0, half1 := shardFile(2, 0), shardFile(2, 1)
	third0 := shardFile(3, 0)

	otherSeed := opts
	otherSeed.BaseSeed = 99
	otherSeedFile := filepath.Join(dir, "other-seed.ck")
	{
		so := otherSeed
		so.ShardCount, so.ShardIndex = 2, 0
		so.Checkpoint = otherSeedFile
		Sweep(shardProg, so, dets...)
	}

	shortRuns := opts
	shortRuns.Runs = 6
	shortFile := filepath.Join(dir, "short.ck")
	{
		so := shortRuns
		so.ShardCount, so.ShardIndex = 2, 0
		so.Checkpoint = shortFile
		Sweep(shardProg, so, dets...)
	}
	// Same Runs in the fingerprint but a truncated record slice: corrupt the
	// honest file's records by hand.
	tornFile := filepath.Join(dir, "torn.ck")
	{
		var cp sweepCheckpoint
		if err := harness.LoadCheckpoint(half0, &cp); err != nil {
			t.Fatal(err)
		}
		cp.Records = cp.Records[:4]
		if err := harness.SaveCheckpoint(tornFile, &cp); err != nil {
			t.Fatal(err)
		}
	}
	garbageFile := filepath.Join(dir, "garbage.ck")
	if err := os.WriteFile(garbageFile, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		srcs []string
		want error
	}{
		{"overlapping shard ranges", []string{half0, third0}, ErrShardOverlap},
		{"same file listed twice", []string{half0, half0}, ErrShardOverlap},
		{"missing shard file", []string{half0, filepath.Join(dir, "absent.ck")}, ErrShardUnreadable},
		{"corrupt shard file", []string{garbageFile}, ErrShardUnreadable},
		{"mismatched fingerprint (base seed)", []string{otherSeedFile}, ErrShardFingerprint},
		{"mismatched fingerprint (runs)", []string{shortFile}, ErrShardFingerprint},
		{"truncated record slice", []string{tornFile}, ErrShardLength},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := filepath.Join(dir, "dst-"+tc.name+".ck")
			rep, err := MergeSweepCheckpoints(dst, tc.srcs, opts, dets...)
			if err == nil {
				t.Fatalf("merge folded silently: %+v", rep.Verdict)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}

	// The honest pair still folds — the adversarial rejections above are not
	// false positives from an over-strict merge.
	if _, err := MergeSweepCheckpoints("", []string{half0, half1}, opts, dets...); err != nil {
		t.Fatalf("honest merge failed: %v", err)
	}
}

// TestMergeSweepCheckpointsFoldsMissingShardAsIncomplete: when a shard never
// ran, its seeds fold as incomplete — the merge reports a partial campaign
// honestly instead of silently refuting on the seeds it happens to have.
func TestMergeSweepCheckpointsFoldsMissingShardAsIncomplete(t *testing.T) {
	dir := t.TempDir()
	dets := shardDets()
	opts := SweepOptions{Runs: 10, BaseSeed: 3, Config: sim.Config{Name: "shard-prog"}}

	so := opts
	so.ShardCount, so.ShardIndex = 2, 1
	so.Checkpoint = filepath.Join(dir, "only-half.ck")
	Sweep(shardProg, so, dets...)

	merged, err := MergeSweepCheckpoints("", []string{so.Checkpoint}, opts, dets...)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := harness.Shard(opts.Runs, 2, 1)
	if merged.Completed != hi-lo {
		t.Fatalf("Completed = %d, want the executed shard's %d runs", merged.Completed, hi-lo)
	}
	if len(merged.Incomplete) != lo {
		t.Fatalf("Incomplete = %d seeds, want the missing shard's %d", len(merged.Incomplete), lo)
	}
}
