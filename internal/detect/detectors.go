package detect

import (
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/event"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// The study's detector set. Registration order is the order the paper
// introduces them: the two it evaluates (builtin, race), then the two its
// Section 7 proposes (leak, vet), then the circular-wait analysis that
// draws Section 4's deadlock-vs-blocking line.
func init() {
	Register(Detector{
		Name: "builtin",
		Desc: "Go's global runtime deadlock detector (Section 5.3)",
		New:  func() Instance { return resultOnly{detect: builtinDetect} },
	})
	Register(Detector{
		Name: "race",
		Desc: "happens-before data race detector, Go's 4 shadow words (Section 5.3)",
		New:  func() Instance { return &raceInstance{det: race.New(0)} },
	})
	Register(Detector{
		Name: "leak",
		Desc: "goroutine-leak / partial-deadlock detector (Implication 4)",
		New:  func() Instance { return resultOnly{detect: leakDetect} },
	})
	Register(Detector{
		Name: "vet",
		Desc: "dynamic misuse-rule checker (Section 7's rule enforcement)",
		New:  func() Instance { return &vetInstance{mon: vet.New()} },
	})
	Register(Detector{
		Name: "cycle",
		Desc: "lock wait-for-graph circular-wait analysis (Section 4)",
		New:  func() Instance { return resultOnly{detect: cycleDetect} },
	})
}

// resultOnly adapts a pure post-run analysis: no event kinds, all the work
// in Finish.
type resultOnly struct {
	detect func(*sim.Result) Verdict
}

func (resultOnly) Kinds() []event.Kind              { return nil }
func (resultOnly) Event(*event.Event)               {}
func (r resultOnly) Finish(res *sim.Result) Verdict { return r.detect(res) }

func builtinDetect(res *sim.Result) Verdict {
	d := deadlock.Builtin{}.Detect(res)
	v := Verdict{Detector: "builtin", Detected: d.Detected, Message: d.Message}
	if d.Detected {
		v.Findings = []string{d.Message}
	}
	return v
}

func leakDetect(res *sim.Result) Verdict {
	d := deadlock.Leak{}.Detect(res)
	v := Verdict{Detector: "leak", Detected: d.Detected, Message: d.Message}
	if d.Detected {
		v.Findings = []string{d.Message}
	}
	return v
}

func cycleDetect(res *sim.Result) Verdict {
	c := deadlock.AnalyzeCircularity(res)
	v := Verdict{Detector: "cycle", Detected: c.CircularWait, Message: c.Description}
	if c.CircularWait {
		v.Findings = []string{c.Description}
	}
	return v
}

// raceInstance wraps the happens-before detector (already a native sink).
type raceInstance struct{ det *race.Detector }

func (r *raceInstance) Kinds() []event.Kind   { return r.det.Kinds() }
func (r *raceInstance) Event(ev *event.Event) { r.det.Event(ev) }

func (r *raceInstance) Finish(*sim.Result) Verdict {
	v := Verdict{Detector: "race"}
	for _, rep := range r.det.Reports() {
		v.Findings = append(v.Findings, rep.String())
	}
	if len(v.Findings) > 0 {
		v.Detected = true
		v.Message = v.Findings[0]
	}
	return v
}

// vetInstance wraps the rule monitor (already a native sink).
type vetInstance struct{ mon *vet.Monitor }

func (m *vetInstance) Kinds() []event.Kind   { return m.mon.Kinds() }
func (m *vetInstance) Event(ev *event.Event) { m.mon.Event(ev) }

func (m *vetInstance) Finish(*sim.Result) Verdict {
	v := Verdict{Detector: "vet"}
	seen := map[string]bool{}
	for _, viol := range m.mon.Violations() {
		v.Findings = append(v.Findings, viol.String())
		if !seen[string(viol.Rule)] {
			seen[string(viol.Rule)] = true
			v.Rules = append(v.Rules, string(viol.Rule))
		}
	}
	if len(v.Findings) > 0 {
		v.Detected = true
		v.Message = v.Findings[0]
	}
	return v
}
