package detect

import (
	"reflect"
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

func TestRegistryHasStudyDetectors(t *testing.T) {
	want := []string{"builtin", "race", "leak", "vet", "cycle"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		d, ok := Lookup(n)
		if !ok || d.Desc == "" || d.New == nil {
			t.Fatalf("Lookup(%q) = %+v, %v", n, d, ok)
		}
	}
}

func TestParse(t *testing.T) {
	dets, err := Parse("race, vet,leak")
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 3 || dets[0].Name != "race" || dets[1].Name != "vet" || dets[2].Name != "leak" {
		t.Fatalf("Parse = %+v", dets)
	}
	if _, err := Parse("race,nosuch"); err == nil {
		t.Fatal("Parse accepted an unknown detector")
	}
	if _, err := Parse(" , "); err == nil {
		t.Fatal("Parse accepted an empty list")
	}
}

// TestSinglePassMatchesIsolatedRuns is the pipeline's core property: running
// every detector on ONE instrumented pass yields the verdict each would
// produce with the run all to itself. The stream each sink sees must be
// identical either way.
func TestSinglePassMatchesIsolatedRuns(t *testing.T) {
	all := All()
	for _, k := range kernels.All() {
		for _, fixed := range []bool{false, true} {
			prog, label := k.Buggy, "buggy"
			if fixed {
				prog, label = k.Fixed, "fixed"
			}
			combined := RunAll(k.Config(1), prog, all...)
			for _, d := range all {
				solo := RunAll(k.Config(1), prog, d)
				got, want := combined.Verdict(d.Name), solo.Verdict(d.Name)
				if got.Detected != want.Detected || !reflect.DeepEqual(got.Findings, want.Findings) {
					t.Errorf("%s/%s: %s verdict differs combined vs isolated:\n  combined: %+v\n  isolated: %+v",
						k.ID, label, d.Name, got, want)
				}
			}
		}
	}
}

func TestStatsCountEvents(t *testing.T) {
	rep := RunAll(sim.Config{Seed: 1}, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		ch := sim.NewChan[int](tt, 1)
		tt.Go(func(ct *sim.T) {
			x.Store(ct, 1)
			ch.Send(ct, 1)
		})
		x.Store(tt, 2)
		ch.Recv(tt)
		tt.Sleep(10)
	}, MustLookup("race"), MustLookup("vet"), MustLookup("builtin"))

	var race, vet, builtin Stat
	for _, s := range rep.Stats {
		switch s.Detector {
		case "race":
			race = s
		case "vet":
			vet = s
		case "builtin":
			builtin = s
		}
	}
	if race.Events == 0 {
		t.Error("race detector saw no memory events")
	}
	if vet.Events == 0 {
		t.Error("vet monitor saw no sync events")
	}
	if builtin.Events != 0 {
		t.Errorf("result-only detector was dispatched %d events", builtin.Events)
	}
}

func TestSweepFoldIsWorkerIndependent(t *testing.T) {
	k, ok := kernels.ByID("grpc-lost-update")
	if !ok {
		for _, alt := range kernels.All() {
			k, ok = alt, true
			break
		}
		if !ok {
			t.Skip("no kernels registered")
		}
	}
	opts := SweepOptions{Runs: 20, BaseSeed: 1, Config: k.Config(1)}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 4
	a := Sweep(k.Buggy, serial, MustLookup("race"), MustLookup("vet"))
	b := Sweep(k.Buggy, parallel, MustLookup("race"), MustLookup("vet"))
	for _, name := range []string{"race", "vet"} {
		sa, sb := a.Stat(name), b.Stat(name)
		if sa.DetectedRuns != sb.DetectedRuns || sa.FirstRun != sb.FirstRun ||
			sa.Sample != sb.Sample || !reflect.DeepEqual(sa.Rules, sb.Rules) ||
			sa.Events != sb.Events {
			t.Errorf("%s: serial and parallel sweeps disagree:\n  serial:   %+v\n  parallel: %+v", name, sa, sb)
		}
	}
}
