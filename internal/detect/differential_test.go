package detect

import (
	"reflect"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// The adapter sinks (ObserverSink, MonitorSink) re-express the deleted
// legacy Config hooks over the unified event stream. These differential
// tests pin the refactor: on every kernel, buggy and fixed, the adapter
// path must reproduce the native-sink path verdict for verdict — and the
// run itself must be bit-identical (event-for-event equal traces) no matter
// which sink set is attached.

func raceReports(d *race.Detector) []string {
	var out []string
	for _, r := range d.Reports() {
		out = append(out, r.String())
	}
	return out
}

func vetViolations(m *vet.Monitor) []string {
	var out []string
	for _, v := range m.Violations() {
		out = append(out, v.String())
	}
	return out
}

func traceStrings(tc *sim.TraceCollector) []string {
	var out []string
	for _, e := range tc.Events() {
		out = append(out, e.String())
	}
	return out
}

func TestAdapterSinksMatchNativeOnKernels(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			for _, fixed := range []bool{false, true} {
				prog, label := k.Buggy, "buggy"
				if fixed {
					prog, label = k.Fixed, "fixed"
				}
				cfg := k.Config(1)

				// Native path: the detectors consume events directly.
				nativeRace := race.New(0)
				nativeVet := vet.New()
				nativeTrace := &sim.TraceCollector{}
				nc := cfg
				nc.Sinks = []event.Sink{nativeTrace, nativeRace, nativeVet}
				nres := sim.Run(nc, prog)

				// Adapter path: the same detectors behind the legacy-hook
				// adapters (race.Detector is a MemoryObserver, vet.Monitor
				// is a sim.Monitor).
				adapterRace := race.New(0)
				adapterVet := vet.New()
				adapterTrace := &sim.TraceCollector{}
				ac := cfg
				ac.Sinks = []event.Sink{
					adapterTrace,
					sim.ObserverSink{Obs: adapterRace},
					sim.MonitorSink{Mon: adapterVet},
				}
				ares := sim.Run(ac, prog)

				if nres.Outcome != ares.Outcome {
					t.Fatalf("%s: outcome differs native=%v adapter=%v", label, nres.Outcome, ares.Outcome)
				}
				if got, want := raceReports(adapterRace), raceReports(nativeRace); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: race reports differ:\n  adapter: %v\n  native:  %v", label, got, want)
				}
				if got, want := vetViolations(adapterVet), vetViolations(nativeVet); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: vet violations differ:\n  adapter: %v\n  native:  %v", label, got, want)
				}
				if got, want := traceStrings(adapterTrace), traceStrings(nativeTrace); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: traces differ (%d vs %d events) — the sink set perturbed the run", label, len(got), len(want))
				}
			}
		})
	}
}

// TestPipelineVerdictsMatchLegacyProtocolOnKernels checks the higher-level
// claim behind Tables 8 and 12: for each study kernel, the single-pass
// pipeline verdicts equal what the pre-pipeline per-detector runs produced.
func TestPipelineVerdictsMatchLegacyProtocolOnKernels(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			rep := RunAll(k.Config(1), k.Buggy, All()...)

			// Legacy protocol: one isolated run per detector.
			soloRace := race.New(0)
			rc := k.Config(1)
			rc.Sinks = []event.Sink{soloRace}
			sim.Run(rc, k.Buggy)
			if got, want := rep.Verdict("race").Detected, len(soloRace.Reports()) > 0; got != want {
				t.Errorf("race: pipeline=%v isolated=%v", got, want)
			}

			soloVet, _ := vet.Check(k.Config(1), k.Buggy)
			if got, want := rep.Verdict("vet").Detected, len(soloVet.Violations()) > 0; got != want {
				t.Errorf("vet: pipeline=%v isolated=%v", got, want)
			}
		})
	}
}
