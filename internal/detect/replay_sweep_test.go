package detect

// Sweep-level record/replay equivalence: a sweep archived via RecordDir and
// re-judged by ReplayDir must fold to the very checkpoint bytes the live
// sweep wrote — serial, sharded, fault-injected, and when the replay attaches
// detectors the recording never ran.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/trace"
)

func mustKernel(t *testing.T, id string) kernels.Kernel {
	t.Helper()
	k, ok := kernels.ByID(id)
	if !ok {
		t.Fatalf("kernel %q not registered", id)
	}
	return k
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return data
}

// diffSweepReports compares the deterministic content of two sweep reports
// (wall times are process-local, so zeroed first — shard_test's helper).
func diffSweepReports(t *testing.T, label string, live, rep *SweepReport) {
	t.Helper()
	zeroElapsed(live)
	zeroElapsed(rep)
	lj, _ := json.Marshal(live)
	rj, _ := json.Marshal(rep)
	if !bytes.Equal(lj, rj) {
		t.Errorf("%s: replayed sweep report differs:\n live:   %s\n replay: %s", label, lj, rj)
	}
}

// TestSweepReplayFoldsToLiveCheckpoint archives a full sweep of a kernel and
// asserts ReplayDir's checkpoint is byte-identical to the live sweep's.
func TestSweepReplayFoldsToLiveCheckpoint(t *testing.T) {
	k := mustKernel(t, "docker-abba-order")
	dets := All()
	dir := t.TempDir()
	cpLive := filepath.Join(t.TempDir(), "live.ckpt")
	cpReplay := filepath.Join(t.TempDir(), "replay.ckpt")

	opts := SweepOptions{
		Runs: 24, BaseSeed: 3, Config: k.Config(3), Workers: 4,
		RecordDir: dir, Checkpoint: cpLive,
	}
	live := Sweep(k.Buggy, opts, dets...)

	files, _ := filepath.Glob(filepath.Join(dir, "*.trace"))
	if len(files) != opts.Runs {
		t.Fatalf("archive holds %d trace files, want %d", len(files), opts.Runs)
	}

	ropts := opts
	ropts.RecordDir, ropts.Checkpoint = "", cpReplay
	rep, err := ReplayDir(dir, ropts, dets...)
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	diffSweepReports(t, "serial", live, rep)
	if !bytes.Equal(readFile(t, cpLive), readFile(t, cpReplay)) {
		t.Error("replay checkpoint is not byte-identical to the live sweep's")
	}
}

// TestShardedRecordingsReplayToSerialCheckpoint records a sweep as two shard
// processes would — two Sweeps, each archiving its contiguous block into the
// same directory — and asserts the assembled archive replays to the exact
// checkpoint a serial live sweep writes.
func TestShardedRecordingsReplayToSerialCheckpoint(t *testing.T) {
	k := mustKernel(t, "grpc-missing-send")
	dets := All()
	dir := t.TempDir()
	cpSerial := filepath.Join(t.TempDir(), "serial.ckpt")
	cpReplay := filepath.Join(t.TempDir(), "replay.ckpt")

	base := SweepOptions{Runs: 20, BaseSeed: 11, Config: k.Config(11), Workers: 2}
	for shard := 0; shard < 2; shard++ {
		opts := base
		opts.RecordDir = dir
		opts.ShardCount, opts.ShardIndex = 2, shard
		Sweep(k.Buggy, opts, dets...)
	}

	serialOpts := base
	serialOpts.Checkpoint = cpSerial
	live := Sweep(k.Buggy, serialOpts, dets...)

	ropts := base
	ropts.Checkpoint = cpReplay
	rep, err := ReplayDir(dir, ropts, dets...)
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	diffSweepReports(t, "sharded", live, rep)
	if !bytes.Equal(readFile(t, cpSerial), readFile(t, cpReplay)) {
		t.Error("replay of the sharded archive is not byte-identical to the serial live checkpoint")
	}
}

// TestFaultInjectedSweepReplaysIdentically archives a benign fault-injected
// sweep and asserts replay folds to the live checkpoint — injected runs are
// attributable (plan in the trailer) and re-judgeable like any other.
func TestFaultInjectedSweepReplaysIdentically(t *testing.T) {
	k := mustKernel(t, "docker-abba-order")
	dets := All()
	dir := t.TempDir()
	cpLive := filepath.Join(t.TempDir(), "live.ckpt")
	cpReplay := filepath.Join(t.TempDir(), "replay.ckpt")
	injectorFor := func(run int, seed int64) sim.Injector {
		return inject.ForRun(inject.Options{Seed: 9, Budget: 2}, run)
	}

	opts := SweepOptions{
		Runs: 20, BaseSeed: 1, Config: k.Config(1), Workers: 4,
		InjectorFor: injectorFor, RecordDir: dir, Checkpoint: cpLive,
	}
	live := Sweep(k.Buggy, opts, dets...)

	ropts := opts
	ropts.RecordDir, ropts.Checkpoint = "", cpReplay
	rep, err := ReplayDir(dir, ropts, dets...)
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	diffSweepReports(t, "fault-injected", live, rep)
	if !bytes.Equal(readFile(t, cpLive), readFile(t, cpReplay)) {
		t.Error("fault-injected replay checkpoint differs from the live sweep's")
	}

	// At least one frame must carry a recorded plan in its header — that is
	// the re-execution recipe for archived injected runs.
	found := false
	files, _ := filepath.Glob(filepath.Join(dir, "*.trace"))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.NewReader(f)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := tr.NextRun()
		if err != nil {
			t.Fatal(err)
		}
		if len(meta.FaultPlan) > 0 {
			if _, err := inject.DecodePlan(meta.FaultPlan); err != nil {
				t.Errorf("%s: header plan does not decode: %v", path, err)
			}
			found = true
		}
		f.Close()
	}
	if !found {
		t.Error("no archived frame carries a fault-plan header despite InjectorFor being set")
	}
}

// TestReplayWithDetectorsUnknownAtRecordTime records a sweep judged by the
// race detector alone, then replays the archive under the full registry and
// asserts the result equals a live sweep with the full registry — re-judging
// old archives with new detectors is the point of the archive.
func TestReplayWithDetectorsUnknownAtRecordTime(t *testing.T) {
	k := mustKernel(t, "kubernetes-map-race")
	dir := t.TempDir()
	cpLive := filepath.Join(t.TempDir(), "live.ckpt")
	cpReplay := filepath.Join(t.TempDir(), "replay.ckpt")

	opts := SweepOptions{Runs: 16, BaseSeed: 2, Config: k.Config(2), Workers: 2, RecordDir: dir}
	Sweep(k.Buggy, opts, MustLookup("race"))

	full := All()
	liveOpts := opts
	liveOpts.RecordDir, liveOpts.Checkpoint = "", cpLive
	live := Sweep(k.Buggy, liveOpts, full...)

	ropts := opts
	ropts.RecordDir, ropts.Checkpoint = "", cpReplay
	rep, err := ReplayDir(dir, ropts, full...)
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	diffSweepReports(t, "new-detectors", live, rep)
	if !bytes.Equal(readFile(t, cpLive), readFile(t, cpReplay)) {
		t.Error("replaying with detectors unknown at record time does not match the live full-registry sweep")
	}
}

// TestReplayDirStructuredErrors pins the failure modes: empty directories,
// archives recorded under different options, duplicated runs, and frames
// beyond the sweep's range all fail with structured errors, never panics.
func TestReplayDirStructuredErrors(t *testing.T) {
	k := mustKernel(t, "docker-abba-order")
	dets := []Detector{MustLookup("race")}
	dir := t.TempDir()
	opts := SweepOptions{Runs: 4, BaseSeed: 1, Config: k.Config(1), Workers: 1, RecordDir: dir}
	Sweep(k.Buggy, opts, dets...)

	t.Run("empty-dir", func(t *testing.T) {
		if _, err := ReplayDir(t.TempDir(), opts, dets...); err == nil {
			t.Error("want error for an archive-less directory")
		}
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		wrong := opts
		wrong.Config.Name = "some-other-kernel"
		_, err := ReplayDir(dir, wrong, dets...)
		var fe *trace.FingerprintError
		if !errors.As(err, &fe) {
			t.Errorf("want *trace.FingerprintError, got %v", err)
		}
	})
	t.Run("duplicate-run", func(t *testing.T) {
		dup := filepath.Join(dir, "zz-dup.trace")
		data := readFile(t, filepath.Join(dir, "run-00000.trace"))
		if err := os.WriteFile(dup, data, 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.Remove(dup)
		if _, err := ReplayDir(dir, opts, dets...); err == nil {
			t.Error("want error for a run archived twice")
		}
	})
	t.Run("run-out-of-range", func(t *testing.T) {
		small := opts
		small.Runs = 2
		// Runs is part of the trace fingerprint, so shrinking it trips the
		// fingerprint check before the range check — both reject the
		// archive, which is what matters.
		if _, err := ReplayDir(dir, small, dets...); err == nil {
			t.Error("want error replaying a 4-run archive as a 2-run sweep")
		}
	})
	t.Run("no-frames", func(t *testing.T) {
		var hdr bytes.Buffer
		trace.NewWriter(&hdr).Flush()
		if _, err := RunAllTrace(bytes.NewReader(hdr.Bytes()), dets...); err == nil {
			t.Error("want error for a frame-less trace")
		}
	})
}
