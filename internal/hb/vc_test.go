package hb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genVC builds a random small vector clock from a rand source.
func genVC(r *rand.Rand) VC {
	vc := New()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		vc.Set(1+r.Intn(6), uint64(1+r.Intn(40)))
	}
	return vc
}

// quickCfg adapts quick.Check to our generator.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500}
}

func TestJoinIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone()
		j.Join(b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone()
		j.Join(b)
		// Any other upper bound dominates the join.
		u := a.Clone()
		u.Join(b)
		u.Set(1+r.Intn(6), uint64(1+r.Intn(80)))
		u.Join(j) // make u an upper bound again
		return j.Leq(u)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCommutativeAndIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Leq(ba) || !ba.Leq(ab) {
			return false
		}
		aa := a.Clone()
		aa.Join(a)
		return aa.Leq(a) && a.Leq(aa)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestLeqIsPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genVC(r), genVC(r), genVC(r)
		// reflexive
		if !a.Leq(a) {
			return false
		}
		// antisymmetric up to equality of maps
		if a.Leq(b) && b.Leq(a) {
			for g, v := range a {
				if v != 0 && b[g] != v {
					return false
				}
			}
		}
		// transitive
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIsSymmetricAndIrreflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		if Concurrent(a, a) {
			return false
		}
		return Concurrent(a, b) == Concurrent(b, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestTickMakesStrictlyLater(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		g := 1 + r.Intn(6)
		before := a.Clone()
		a.Tick(g)
		return before.Leq(a) && !a.Leq(before)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHappensBeforeMatchesEpochComparison(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		g := 1 + r.Intn(6)
		e := Epoch{G: g, C: uint64(1 + r.Intn(40))}
		return a.HappensBefore(e) == (a.Get(g) >= e.C)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New()
	a.Set(1, 5)
	b := a.Clone()
	b.Set(1, 9)
	if a.Get(1) != 5 {
		t.Fatalf("clone aliases its source")
	}
}

func TestStringDeterministic(t *testing.T) {
	a := New()
	a.Set(3, 7)
	a.Set(1, 2)
	if got := a.String(); got != "{1:2 3:7}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Epoch{G: 2, C: 9}).String(); got != "2@9" {
		t.Fatalf("Epoch.String() = %q", got)
	}
}
