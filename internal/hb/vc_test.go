package hb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genVC builds a random small vector clock from a rand source.
func genVC(r *rand.Rand) VC {
	vc := New()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		vc.Set(1+r.Intn(6), uint64(1+r.Intn(40)))
	}
	return vc
}

// quickCfg adapts quick.Check to our generator.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500}
}

func TestJoinIsUpperBound(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone()
		j.Join(b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone()
		j.Join(b)
		// Any other upper bound dominates the join.
		u := a.Clone()
		u.Join(b)
		u.Set(1+r.Intn(6), uint64(1+r.Intn(80)))
		u.Join(j) // make u an upper bound again
		return j.Leq(u)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCommutativeAndIdempotent(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Leq(ba) || !ba.Leq(ab) {
			return false
		}
		aa := a.Clone()
		aa.Join(a)
		return aa.Leq(a) && a.Leq(aa)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestLeqIsPartialOrder(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genVC(r), genVC(r), genVC(r)
		// reflexive
		if !a.Leq(a) {
			return false
		}
		// antisymmetric up to equality of components
		if a.Leq(b) && b.Leq(a) {
			for g := 0; g <= 8; g++ {
				if a.Get(g) != b.Get(g) {
					return false
				}
			}
		}
		// transitive
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIsSymmetricAndIrreflexive(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		if Concurrent(a, a) {
			return false
		}
		return Concurrent(a, b) == Concurrent(b, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestTickMakesStrictlyLater(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		g := 1 + r.Intn(6)
		before := a.Clone()
		a.Tick(g)
		return before.Leq(a) && !a.Leq(before)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHappensBeforeMatchesEpochComparison(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		g := 1 + r.Intn(6)
		e := Epoch{G: g, C: uint64(1 + r.Intn(40))}
		return a.HappensBefore(e) == (a.Get(g) >= e.C)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	t.Parallel()
	a := New()
	a.Set(1, 5)
	b := a.Clone()
	b.Set(1, 9)
	if a.Get(1) != 5 {
		t.Fatalf("clone aliases its source")
	}
}

func TestGrowthPastPooledCapacity(t *testing.T) {
	t.Parallel()
	// Components far beyond any pooled backing's capacity must round-trip,
	// and growth must preserve everything set before it.
	a := New()
	for g := 1; g <= 300; g++ {
		a.Set(g, uint64(g*g))
	}
	for g := 1; g <= 300; g++ {
		if a.Get(g) != uint64(g*g) {
			t.Fatalf("component %d = %d after growth, want %d", g, a.Get(g), g*g)
		}
	}
	b := a.Clone()
	if !a.Leq(b) || !b.Leq(a) {
		t.Fatalf("clone of grown clock differs from source")
	}
}

func TestPoolReuseDoesNotLeakComponents(t *testing.T) {
	t.Parallel()
	// Dirty a pooled backing with large components, free it, and verify
	// clocks built from the pool afterwards read as empty.
	for i := 0; i < 100; i++ {
		dirty := New()
		for g := 1; g <= 64; g++ {
			dirty.Set(g, ^uint64(0))
		}
		dirty.Free()

		fresh := New()
		fresh.Set(1, 1) // forces a (possibly pooled) backing
		for g := 0; g <= 64; g++ {
			want := uint64(0)
			if g == 1 {
				want = 1
			}
			if fresh.Get(g) != want {
				t.Fatalf("iteration %d: component %d = %d, want %d (stale pool data)",
					i, g, fresh.Get(g), want)
			}
		}
		clone := dirty.Clone() // dirty is empty again after Free
		if clone.Len() != 0 {
			t.Fatalf("clone of freed clock has %d components", clone.Len())
		}
	}
}

func TestUseAfterFreeIsEmpty(t *testing.T) {
	t.Parallel()
	a := New()
	a.Set(3, 7)
	a.Free()
	if a.Get(3) != 0 || a.Len() != 0 {
		t.Fatalf("freed clock still has components: %v", a)
	}
	a.Tick(2)
	if a.Get(2) != 1 {
		t.Fatalf("freed clock is not reusable")
	}
}

func TestJoinDominatedPathDoesNotAllocate(t *testing.T) {
	t.Parallel()
	big := New()
	for g := 1; g <= 16; g++ {
		big.Set(g, 100)
	}
	small := New()
	small.Set(3, 7)
	small.Set(16, 2)
	allocs := testing.AllocsPerRun(100, func() {
		big.Join(small)
	})
	if allocs != 0 {
		t.Fatalf("dominated-clock Join allocated %.1f times per op, want 0", allocs)
	}
	// Equal-span but not dominated: still no allocation (in-place max).
	other := New()
	other.Set(16, 500)
	allocs = testing.AllocsPerRun(100, func() {
		big.Join(other)
	})
	if allocs != 0 {
		t.Fatalf("equal-span Join allocated %.1f times per op, want 0", allocs)
	}
}

func TestJoinTrimsTrailingZeros(t *testing.T) {
	t.Parallel()
	// A longer argument whose extra components are all zero must not force
	// the receiver to grow.
	long := New()
	long.Set(40, 0)
	long.Set(1, 9)
	short := New()
	short.Set(1, 1)
	allocs := testing.AllocsPerRun(100, func() {
		short.Join(long) // long's only nonzero component is within short's span
	})
	if allocs != 0 {
		t.Fatalf("Join grew for an argument whose extra components are zero (%.1f allocs)", allocs)
	}
	if short.Get(1) != 9 || short.Get(40) != 0 {
		t.Fatalf("join lost components: %v", short)
	}
}

func TestStringDeterministic(t *testing.T) {
	t.Parallel()
	a := New()
	a.Set(3, 7)
	a.Set(1, 2)
	if got := a.String(); got != "{1:2 3:7}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Epoch{G: 2, C: 9}).String(); got != "2@9" {
		t.Fatalf("Epoch.String() = %q", got)
	}
}
