package hb

import "testing"

// BenchmarkVCOps measures the vector-clock primitives on the shapes the
// simulated runtime produces: small dense clocks (a handful of goroutines)
// hit by Join/Tick/HappensBefore on every synchronization edge.
func BenchmarkVCOps(b *testing.B) {
	mk := func(n int) VC {
		vc := New()
		for g := 1; g <= n; g++ {
			vc.Set(g, uint64(g*3))
		}
		return vc
	}

	b.Run("JoinDominated", func(b *testing.B) {
		b.ReportAllocs()
		big, small := mk(8), mk(4)
		for i := 0; i < b.N; i++ {
			big.Join(small)
		}
	})
	b.Run("JoinGrowing", func(b *testing.B) {
		b.ReportAllocs()
		big := mk(16)
		for i := 0; i < b.N; i++ {
			small := mk(2)
			small.Join(big)
			small.Free()
		}
	})
	b.Run("Clone", func(b *testing.B) {
		b.ReportAllocs()
		vc := mk(8)
		for i := 0; i < b.N; i++ {
			c := vc.Clone()
			c.Free()
		}
	})
	b.Run("Tick", func(b *testing.B) {
		b.ReportAllocs()
		vc := mk(8)
		for i := 0; i < b.N; i++ {
			vc.Tick(3)
		}
	})
	b.Run("HappensBefore", func(b *testing.B) {
		b.ReportAllocs()
		vc := mk(8)
		e := Epoch{G: 5, C: 9}
		sink := false
		for i := 0; i < b.N; i++ {
			sink = vc.HappensBefore(e)
		}
		_ = sink
	})
	b.Run("Leq", func(b *testing.B) {
		b.ReportAllocs()
		a, c := mk(8), mk(8)
		sink := false
		for i := 0; i < b.N; i++ {
			sink = a.Leq(c)
		}
		_ = sink
	})
}
