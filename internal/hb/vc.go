// Package hb provides the happens-before machinery shared by the simulated
// runtime and the data race detector: vector clocks and epochs.
//
// The representation follows the FastTrack/ThreadSanitizer model the paper's
// Section 6.3 describes: every goroutine carries a vector clock, every
// synchronization object carries the join of the clocks published into it,
// and individual memory accesses are summarized as epochs (goroutine id @
// scalar clock) so a detector can store them compactly in shadow words.
package hb

import (
	"fmt"
	"sort"
	"strings"
)

// VC is a vector clock mapping goroutine id -> logical clock. The zero value
// is the empty clock and is ready to use.
type VC map[int]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Get returns the clock component for goroutine g (0 when absent).
func (vc VC) Get(g int) uint64 { return vc[g] }

// Set assigns the clock component for goroutine g.
func (vc VC) Set(g int, v uint64) { vc[g] = v }

// Tick increments goroutine g's own component and returns the new value.
func (vc VC) Tick(g int) uint64 {
	vc[g]++
	return vc[g]
}

// Join merges other into vc, taking the component-wise maximum.
func (vc VC) Join(other VC) {
	for g, v := range other {
		if v > vc[g] {
			vc[g] = v
		}
	}
}

// Clone returns a deep copy of vc.
func (vc VC) Clone() VC {
	out := make(VC, len(vc))
	for g, v := range vc {
		out[g] = v
	}
	return out
}

// HappensBefore reports whether an event stamped with epoch e is ordered
// before the point in time described by vc: that is, whether vc has already
// observed e.
func (vc VC) HappensBefore(e Epoch) bool { return vc[e.G] >= e.C }

// Leq reports whether vc <= other component-wise, i.e. every event vc knows
// about is also known to other.
func (vc VC) Leq(other VC) bool {
	for g, v := range vc {
		if v > other[g] {
			return false
		}
	}
	return true
}

// Concurrent reports whether the two clocks are incomparable.
func Concurrent(a, b VC) bool { return !a.Leq(b) && !b.Leq(a) }

// String renders the clock deterministically, e.g. "{1:3 2:7}".
func (vc VC) String() string {
	gs := make([]int, 0, len(vc))
	for g := range vc {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	var b strings.Builder
	b.WriteByte('{')
	for i, g := range gs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", g, vc[g])
	}
	b.WriteByte('}')
	return b.String()
}

// Epoch summarizes a single event as goroutine G at scalar clock C. This is
// the compact per-access stamp a shadow word stores.
type Epoch struct {
	G int
	C uint64
}

// EpochOf returns the current epoch of goroutine g under clock vc.
func EpochOf(vc VC, g int) Epoch { return Epoch{G: g, C: vc[g]} }

// String renders the epoch as "g@c".
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.G, e.C) }
