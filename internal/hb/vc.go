// Package hb provides the happens-before machinery shared by the simulated
// runtime and the data race detector: vector clocks and epochs.
//
// The representation follows the FastTrack/ThreadSanitizer model the paper's
// Section 6.3 describes: every goroutine carries a vector clock, every
// synchronization object carries the join of the clocks published into it,
// and individual memory accesses are summarized as epochs (goroutine id @
// scalar clock) so a detector can store them compactly in shadow words.
//
// # Representation
//
// A VC is backed by a dense []uint64 indexed by goroutine id. Simulated
// goroutine ids are small consecutive integers (main is 1), so the dense
// layout makes Get/Set/Tick a bounds-checked array access and Join a single
// linear pass with no hashing, no map iteration, and — when the receiver
// already spans the argument — no allocation at all. Backings are recycled
// through a sync.Pool: call Free on clocks whose lifetime provably ends
// (e.g. a buffered channel item after its receiver has joined it) to return
// the backing for reuse. A component that was never set reads as 0, which by
// construction means "never synchronized with": the zero value of VC is the
// empty clock and is ready to use.
package hb

import (
	"fmt"
	"strings"
	"sync"
)

// VC is a vector clock mapping goroutine id -> logical clock. The zero value
// is the empty clock and is ready to use. Reading methods (Get, Leq,
// HappensBefore, ...) take value receivers and never mutate; mutating
// methods (Set, Tick, Join) take pointer receivers because they may grow the
// backing.
type VC struct {
	c []uint64 // c[g] is goroutine g's component; ids start at 1
}

// minPooledCap is the smallest backing worth recycling; anything at least
// this large round-trips through the pool.
const minPooledCap = 8

// backingPool holds recycled backings; boxPool holds the empty *[]uint64
// boxes they travel in, so neither Free nor newBacking allocates a box in
// steady state (a slice passed to Put directly would be boxed into an
// interface — a fresh allocation per call).
var backingPool = sync.Pool{
	New: func() any { return new([]uint64) },
}

var boxPool = sync.Pool{
	New: func() any { return new([]uint64) },
}

// newBacking returns a length-n slice with undefined contents, reusing a
// pooled backing when one is large enough. Callers must overwrite or zero
// all n components.
func newBacking(n int) []uint64 {
	bp := backingPool.Get().(*[]uint64)
	b := *bp
	*bp = nil
	boxPool.Put(bp)
	if cap(b) >= n {
		return b[:n]
	}
	capacity := max(n, minPooledCap)
	return make([]uint64, n, capacity)
}

// New returns an empty vector clock.
func New() VC { return VC{} }

// Get returns the clock component for goroutine g (0 when absent).
func (vc VC) Get(g int) uint64 {
	if g < 0 || g >= len(vc.c) {
		return 0
	}
	return vc.c[g]
}

// grow extends the backing to cover component g, preserving existing
// components and zeroing the new ones.
func (vc *VC) grow(n int) {
	if n <= len(vc.c) {
		return
	}
	if n <= cap(vc.c) {
		old := len(vc.c)
		vc.c = vc.c[:n]
		clear(vc.c[old:])
		return
	}
	b := newBacking(max(n, 2*len(vc.c)))
	copy(b, vc.c)
	clear(b[len(vc.c):])
	vc.free()
	vc.c = b[:n]
}

// Set assigns the clock component for goroutine g.
func (vc *VC) Set(g int, v uint64) {
	if g < 0 {
		return
	}
	vc.grow(g + 1)
	vc.c[g] = v
}

// Tick increments goroutine g's own component and returns the new value.
func (vc *VC) Tick(g int) uint64 {
	if g < 0 {
		return 0
	}
	if g < len(vc.c) {
		vc.c[g]++
		return vc.c[g]
	}
	vc.grow(g + 1)
	vc.c[g] = 1
	return 1
}

// Join merges other into vc, taking the component-wise maximum. When vc
// already spans other (the dominated-clock fast path: every synchronization
// after the first between a pair of goroutines), Join performs no
// allocation.
func (vc *VC) Join(other VC) {
	o := other.c
	if len(o) > len(vc.c) {
		// Trim components that are zero in other; they cannot raise vc.
		for len(o) > len(vc.c) && o[len(o)-1] == 0 {
			o = o[:len(o)-1]
		}
		vc.grow(len(o))
	}
	c := vc.c
	if len(o) > len(c) {
		o = o[:len(c)] // unreachable after grow; keeps bounds checks out of the loop
	}
	for i, v := range o {
		if v > c[i] {
			c[i] = v
		}
	}
}

// Clone returns a deep copy of vc, drawing its backing from the pool.
func (vc VC) Clone() VC {
	n := len(vc.c)
	// Trim trailing zeros so pooled clones stay as small as the clock's
	// live span.
	for n > 0 && vc.c[n-1] == 0 {
		n--
	}
	if n == 0 {
		return VC{}
	}
	b := newBacking(n)
	copy(b, vc.c[:n])
	return VC{c: b}
}

// Reset empties the clock while keeping its backing for reuse. The result
// is semantically a fresh clock: grow zero-fills reclaimed components before
// they become visible, so a Reset clock and a New clock are indistinguishable.
// Use it for clocks embedded in pooled structures (sim's run pooling), where
// Free's backing hand-off would just churn the pool.
func (vc *VC) Reset() {
	vc.c = vc.c[:0]
}

// Free returns the clock's backing to the pool and resets vc to the empty
// clock. Only call it when vc is the sole owner of its backing (clones and
// freshly grown clocks are; aliases of a live clock are not). Using vc after
// Free is safe — it is simply empty again.
func (vc *VC) Free() {
	vc.free()
	vc.c = nil
}

func (vc *VC) free() {
	if cap(vc.c) < minPooledCap {
		return
	}
	bp := boxPool.Get().(*[]uint64)
	*bp = vc.c[:0]
	backingPool.Put(bp)
}

// HappensBefore reports whether an event stamped with epoch e is ordered
// before the point in time described by vc: that is, whether vc has already
// observed e.
func (vc VC) HappensBefore(e Epoch) bool { return vc.Get(e.G) >= e.C }

// Leq reports whether vc <= other component-wise, i.e. every event vc knows
// about is also known to other.
func (vc VC) Leq(other VC) bool {
	n := min(len(vc.c), len(other.c))
	for i, v := range vc.c[:n] {
		if v > other.c[i] {
			return false
		}
	}
	for _, v := range vc.c[n:] {
		if v > 0 {
			return false
		}
	}
	return true
}

// Concurrent reports whether the two clocks are incomparable.
func Concurrent(a, b VC) bool { return !a.Leq(b) && !b.Leq(a) }

// Span returns the length of the clock's live prefix: one past the highest
// goroutine id with a nonzero component. Two clocks with equal Span and
// equal components over it are semantically equal — trailing zeros never
// matter — so Span is the canonical length for serializing a clock
// (package trace encodes exactly Span components).
func (vc VC) Span() int {
	n := len(vc.c)
	for n > 0 && vc.c[n-1] == 0 {
		n--
	}
	return n
}

// Len returns the number of nonzero components.
func (vc VC) Len() int {
	n := 0
	for _, v := range vc.c {
		if v > 0 {
			n++
		}
	}
	return n
}

// String renders the clock deterministically, e.g. "{1:3 2:7}".
func (vc VC) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for g, v := range vc.c {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", g, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Epoch summarizes a single event as goroutine G at scalar clock C. This is
// the compact per-access stamp a shadow word stores.
type Epoch struct {
	G int
	C uint64
}

// EpochOf returns the current epoch of goroutine g under clock vc.
func EpochOf(vc VC, g int) Epoch { return Epoch{G: g, C: vc.Get(g)} }

// String renders the epoch as "g@c".
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.G, e.C) }
