package hb

import "testing"

// FuzzJoinLaws exercises the vector-clock lattice laws on fuzz-provided
// component values (the seed corpus runs under plain `go test`).
func FuzzJoinLaws(f *testing.F) {
	f.Add(uint8(1), uint64(3), uint8(2), uint64(7), uint8(1), uint64(5))
	f.Add(uint8(0), uint64(0), uint8(0), uint64(0), uint8(0), uint64(0))
	f.Add(uint8(5), uint64(1<<40), uint8(5), uint64(1), uint8(6), uint64(2))
	f.Fuzz(func(t *testing.T, g1 uint8, c1 uint64, g2 uint8, c2 uint64, g3 uint8, c3 uint64) {
		a, b := New(), New()
		a.Set(int(g1), c1)
		a.Set(int(g3), c3)
		b.Set(int(g2), c2)

		j := a.Clone()
		j.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("join is not an upper bound: a=%v b=%v j=%v", a, b, j)
		}
		// Commutativity.
		k := b.Clone()
		k.Join(a)
		if !j.Leq(k) || !k.Leq(j) {
			t.Fatalf("join not commutative: %v vs %v", j, k)
		}
		// Epoch consistency.
		e := EpochOf(a, int(g1))
		if !a.HappensBefore(e) {
			t.Fatalf("a does not know its own epoch %v", e)
		}
		if c2 > 0 && a.Get(int(g2)) == 0 && a.HappensBefore(Epoch{G: int(g2), C: c2}) {
			t.Fatalf("a claims to know an epoch it never saw")
		}
	})
}
