package hb

import (
	"math/rand"
	"testing"
)

// mapVC is the reference model: the original map-backed vector clock
// implementation, kept here so the dense slice representation can be
// differentially fuzzed against the old semantics.
type mapVC map[int]uint64

func (m mapVC) join(other mapVC) {
	for g, v := range other {
		if v > m[g] {
			m[g] = v
		}
	}
}

func (m mapVC) leq(other mapVC) bool {
	for g, v := range m {
		if v > other[g] {
			return false
		}
	}
	return true
}

func (m mapVC) happensBefore(e Epoch) bool { return m[e.G] >= e.C }

// buildPair derives a dense VC and its map model from the same component
// stream.
func buildPair(r *rand.Rand, maxG, n int) (VC, mapVC) {
	vc := New()
	m := mapVC{}
	for i := 0; i < n; i++ {
		g := r.Intn(maxG)
		v := uint64(r.Intn(50))
		vc.Set(g, v)
		if v == 0 {
			// Dense Set(g, 0) erases the component; mirror that in
			// the model (the map kept an explicit zero, which is
			// observationally identical for every operation).
			delete(m, g)
		} else {
			m[g] = v
		}
	}
	return vc, m
}

// FuzzDenseVsMapSemantics differentially fuzzes the dense representation
// against the original map semantics: Join/Leq/Concurrent/HappensBefore must
// agree on arbitrary clock pairs, including components far past the pooled
// backing size.
func FuzzDenseVsMapSemantics(f *testing.F) {
	f.Add(int64(1), 8, 4)
	f.Add(int64(2), 64, 12)
	f.Add(int64(3), 300, 20) // forces growth well past any small backing
	f.Fuzz(func(t *testing.T, seed int64, maxG, n int) {
		if maxG <= 0 || maxG > 1<<12 || n < 0 || n > 1<<8 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		a, ma := buildPair(r, maxG, n)
		b, mb := buildPair(r, maxG, n)

		if got, want := a.Leq(b), ma.leq(mb); got != want {
			t.Fatalf("Leq disagreement: dense=%v map=%v (a=%v b=%v)", got, want, a, b)
		}
		if got, want := Concurrent(a, b), !ma.leq(mb) && !mb.leq(ma); got != want {
			t.Fatalf("Concurrent disagreement: dense=%v map=%v", got, want)
		}
		e := Epoch{G: r.Intn(maxG), C: uint64(r.Intn(50))}
		if got, want := a.HappensBefore(e), ma.happensBefore(e); got != want {
			t.Fatalf("HappensBefore(%v) disagreement: dense=%v map=%v (a=%v)", e, got, want, a)
		}

		j := a.Clone()
		j.Join(b)
		mj := mapVC{}
		mj.join(ma)
		mj.join(mb)
		for g := 0; g < maxG; g++ {
			if j.Get(g) != mj[g] {
				t.Fatalf("Join component %d: dense=%d map=%d", g, j.Get(g), mj[g])
			}
		}
		// Tick agrees too.
		g := r.Intn(maxG)
		mj[g]++
		if j.Tick(g) != mj[g] {
			t.Fatalf("Tick(%d): dense=%d map=%d", g, j.Get(g), mj[g])
		}
		j.Free() // feed the pool so later iterations exercise reuse
	})
}

// FuzzJoinLaws exercises the vector-clock lattice laws on fuzz-provided
// component values (the seed corpus runs under plain `go test`).
func FuzzJoinLaws(f *testing.F) {
	f.Add(uint8(1), uint64(3), uint8(2), uint64(7), uint8(1), uint64(5))
	f.Add(uint8(0), uint64(0), uint8(0), uint64(0), uint8(0), uint64(0))
	f.Add(uint8(5), uint64(1<<40), uint8(5), uint64(1), uint8(6), uint64(2))
	f.Fuzz(func(t *testing.T, g1 uint8, c1 uint64, g2 uint8, c2 uint64, g3 uint8, c3 uint64) {
		a, b := New(), New()
		a.Set(int(g1), c1)
		a.Set(int(g3), c3)
		b.Set(int(g2), c2)

		j := a.Clone()
		j.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("join is not an upper bound: a=%v b=%v j=%v", a, b, j)
		}
		// Commutativity.
		k := b.Clone()
		k.Join(a)
		if !j.Leq(k) || !k.Leq(j) {
			t.Fatalf("join not commutative: %v vs %v", j, k)
		}
		// Epoch consistency.
		e := EpochOf(a, int(g1))
		if !a.HappensBefore(e) {
			t.Fatalf("a does not know its own epoch %v", e)
		}
		if c2 > 0 && a.Get(int(g2)) == 0 && a.HappensBefore(Epoch{G: int(g2), C: c2}) {
			t.Fatalf("a claims to know an epoch it never saw")
		}
	})
}
