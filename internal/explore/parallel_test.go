package explore

import (
	"reflect"
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// The parallel search must be observationally identical to the serial DFS:
// same Runs, same Complete verdict, same failure count, and the *same first
// failing schedule* — not just some failing schedule. These tests pin that
// equivalence on real kernels across worker counts.

func systematicEqual(t *testing.T, label string, serial, parallel *SystematicResult) {
	t.Helper()
	if serial.Runs != parallel.Runs {
		t.Errorf("%s: Runs serial=%d parallel=%d", label, serial.Runs, parallel.Runs)
	}
	if serial.Complete != parallel.Complete {
		t.Errorf("%s: Complete serial=%v parallel=%v", label, serial.Complete, parallel.Complete)
	}
	if serial.Failures != parallel.Failures {
		t.Errorf("%s: Failures serial=%d parallel=%d", label, serial.Failures, parallel.Failures)
	}
	if serial.MaxDepth != parallel.MaxDepth {
		t.Errorf("%s: MaxDepth serial=%d parallel=%d", label, serial.MaxDepth, parallel.MaxDepth)
	}
	if !reflect.DeepEqual(serial.FailureSchedule, parallel.FailureSchedule) {
		t.Errorf("%s: FailureSchedule serial=%v parallel=%v", label, serial.FailureSchedule, parallel.FailureSchedule)
	}
	if (serial.FirstFailure == nil) != (parallel.FirstFailure == nil) {
		t.Fatalf("%s: FirstFailure serial=%v parallel=%v", label, serial.FirstFailure, parallel.FirstFailure)
	}
	if serial.FirstFailure != nil {
		s, p := serial.FirstFailure, parallel.FirstFailure
		if s.Outcome != p.Outcome || s.Steps != p.Steps || !reflect.DeepEqual(s.CheckFailures, p.CheckFailures) {
			t.Errorf("%s: FirstFailure diverged: outcome %v/%v steps %d/%d checks %v/%v",
				label, s.Outcome, p.Outcome, s.Steps, p.Steps, s.CheckFailures, p.CheckFailures)
		}
	}
}

func TestParallelSystematicMatchesSerialOnKernels(t *testing.T) {
	ids := []string{
		"boltdb-392-double-lock",
		"docker-24007-double-close",
		"kubernetes-finishreq",
	}
	for _, id := range ids {
		k, ok := kernels.ByID(id)
		if !ok {
			t.Fatalf("kernel %s missing", id)
		}
		for _, prog := range []struct {
			name string
			p    sim.Program
		}{{"buggy", k.Buggy}, {"fixed", k.Fixed}} {
			opts := SystematicOptions{Config: k.Config(0), MaxRuns: 5000}
			opts.Workers = 1
			serial := Systematic(prog.p, opts)
			for _, w := range []int{2, 4, 7} {
				opts.Workers = w
				systematicEqual(t, id+"/"+prog.name, serial, Systematic(prog.p, opts))
			}
		}
	}
}

func TestParallelSystematicMatchesSerialTruncated(t *testing.T) {
	// A MaxRuns budget far below the tree size exercises the canonical
	// ordering: the parallel search must report exactly the first
	// MaxRuns schedules the serial DFS would have run.
	for _, maxRuns := range []int{1, 7, 100} {
		opts := SystematicOptions{MaxRuns: maxRuns}
		opts.Workers = 1
		serial := Systematic(tinyRace, opts)
		opts.Workers = 4
		systematicEqual(t, "tinyRace/truncated", serial, Systematic(tinyRace, opts))
		if serial.Runs != maxRuns {
			t.Fatalf("budget not consumed: runs=%d", serial.Runs)
		}
	}
}

func TestParallelSystematicMatchesSerialStopAtFirstFailure(t *testing.T) {
	opts := SystematicOptions{MaxRuns: 50000, StopAtFirstFailure: true}
	opts.Workers = 1
	serial := Systematic(tinyRace, opts)
	if serial.FirstFailure == nil {
		t.Fatal("serial search found no failure")
	}
	opts.Workers = 4
	parallel := Systematic(tinyRace, opts)
	systematicEqual(t, "tinyRace/stop-at-first", serial, parallel)
	// The recovered schedule must replay to the same failure.
	replay, err := ReplaySchedule(tinyRace, sim.Config{}, parallel.FailureSchedule)
	if err != nil {
		t.Fatalf("replay mismatch: %v", err)
	}
	if !replay.Failed() {
		t.Fatal("parallel FailureSchedule does not reproduce the failure")
	}
}

func TestParallelSystematicPreemptionBound(t *testing.T) {
	opts := SystematicOptions{MaxRuns: 50000, PreemptionBound: 2}
	opts.Workers = 1
	serial := Systematic(tinyRace, opts)
	opts.Workers = 4
	systematicEqual(t, "tinyRace/preemption-bound", serial, Systematic(tinyRace, opts))
}
