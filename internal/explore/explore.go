// Package explore runs a simulated program under many seeds and aggregates
// manifestation and detection statistics.
//
// It is the harness behind the paper's detection experiments: Table 12 ran
// each reproduced non-blocking bug 100 times under the race detector ("We
// consider a bug detected within runs as a detected bug"), and Section 4
// notes bugs sometimes needed many runs or manual sleeps to reproduce at
// all. With the deterministic runtime, "many runs" is simply "many seeds".
package explore

import (
	"context"
	"runtime"
	"sync"

	"goconcbugs/internal/event"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// Runs is the number of seeds to try (default 100, the paper's
	// Table 12 protocol).
	Runs int
	// BaseSeed is the first seed; run i uses BaseSeed+i.
	BaseSeed int64
	// Config is the per-run sim configuration (Seed and Sinks are
	// overwritten per run).
	Config sim.Config
	// WithRace attaches a fresh race detector to every run.
	WithRace bool
	// ShadowWords is the per-variable shadow budget when WithRace is set
	// (0 = the Go detector's 4; negative = unbounded).
	ShadowWords int
	// Workers fans the runs out over that many host goroutines (each
	// simulated run is self-contained, so this is safe); 0 or negative
	// uses GOMAXPROCS, 1 runs serially. Aggregation folds results in
	// seed order, so the Stats are identical either way.
	Workers int
	// Context, when non-nil, stops dispatching new runs once canceled;
	// in-flight runs finish and the partial Stats fold only completed runs
	// (Completed < Runs flags the truncation). Nil means run to the end.
	Context context.Context
	// InjectorFor, when non-nil, builds a fresh fault injector for each
	// run (injectors are stateful and single-run). The derivation must be
	// a pure function of (run, seed) to keep the exploration replayable.
	InjectorFor func(run int, seed int64) sim.Injector
}

// Stats aggregates the outcomes of an exploration.
type Stats struct {
	Runs             int
	Completed        int // runs that executed (== Runs unless canceled or panicked)
	Manifested       int // runs where Result.Failed()
	Panics           int
	LeakRuns         int
	BuiltinDeadlocks int
	CheckFailureRuns int
	RaceDetectedRuns int // runs where the race detector reported anything
	RacesTotal       int
	FirstManifestRun int // index of first manifesting run, -1 if none
	FirstDetectedRun int // index of first race-detected run, -1 if none
	RacyVars         map[string]int
	SampleRace       string // one representative race report
	SampleLeak       string // one representative leak description
	SamplePanic      string
	SampleCheckFail  string
	// Errors records runs that panicked on the host side; they count
	// toward Runs but not Completed, and the exploration continues past
	// them.
	Errors []*harness.RunError
}

// ManifestRate returns the fraction of runs where the bug manifested.
func (s *Stats) ManifestRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Manifested) / float64(s.Runs)
}

// RaceDetectRate returns the fraction of runs where a race was reported.
func (s *Stats) RaceDetectRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.RaceDetectedRuns) / float64(s.Runs)
}

// Detected reports whether any run detected a race — the paper's Table 12
// criterion.
func (s *Stats) Detected() bool { return s.RaceDetectedRuns > 0 }

// runOutcome is one seed's raw result, kept so parallel execution can fold
// deterministically in seed order.
type runOutcome struct {
	res      *sim.Result
	reports  []race.Report
	racyVars []string
	err      *harness.RunError
	skipped  bool // never dispatched (context canceled first)
}

// Run explores prog under opts.
func Run(prog sim.Program, opts Options) *Stats {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	outcomes := make([]runOutcome, opts.Runs)
	oneRun := func(i int) {
		cfg := opts.Config
		cfg.Seed = opts.BaseSeed + int64(i)
		if opts.InjectorFor != nil {
			cfg.Injector = opts.InjectorFor(i, cfg.Seed)
		}
		var det *race.Detector
		if opts.WithRace {
			det = race.New(opts.ShadowWords)
			// Fresh slice per run: workers must not share an appended-to
			// backing array.
			cfg.Sinks = []event.Sink{det}
		}
		var out runOutcome
		out.err = harness.Capture(i, cfg.Seed, func() {
			out.res = sim.Run(cfg, prog)
		})
		if det != nil && out.err == nil {
			out.reports = det.Reports()
			out.racyVars = det.RacyVars()
		}
		outcomes[i] = out
	}
	if workers == 1 {
		for i := 0; i < opts.Runs; i++ {
			if ctx.Err() != nil {
				outcomes[i] = runOutcome{skipped: true}
				continue
			}
			oneRun(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					oneRun(i)
				}
			}()
		}
		dispatched := 0
		for ; dispatched < opts.Runs && ctx.Err() == nil; dispatched++ {
			next <- dispatched
		}
		close(next)
		wg.Wait()
		for i := dispatched; i < opts.Runs; i++ {
			outcomes[i] = runOutcome{skipped: true}
		}
	}

	st := &Stats{Runs: opts.Runs, FirstManifestRun: -1, FirstDetectedRun: -1, RacyVars: map[string]int{}}
	for i := 0; i < opts.Runs; i++ {
		if outcomes[i].skipped {
			continue
		}
		if e := outcomes[i].err; e != nil {
			st.Errors = append(st.Errors, e)
			continue
		}
		st.Completed++
		res := outcomes[i].res
		if res.Failed() {
			st.Manifested++
			if st.FirstManifestRun < 0 {
				st.FirstManifestRun = i
			}
		}
		if res.Outcome == sim.OutcomePanic {
			st.Panics++
			if st.SamplePanic == "" && len(res.Panics) > 0 {
				st.SamplePanic = res.Panics[0].Msg
			}
		}
		if res.Outcome == sim.OutcomeBuiltinDeadlock {
			st.BuiltinDeadlocks++
		}
		if len(res.Leaked) > 0 {
			st.LeakRuns++
			if st.SampleLeak == "" {
				g := res.Leaked[0]
				st.SampleLeak = g.Name + " blocked on " + g.BlockKind.String()
			}
		}
		if len(res.CheckFailures) > 0 {
			st.CheckFailureRuns++
			if st.SampleCheckFail == "" {
				st.SampleCheckFail = res.CheckFailures[0]
			}
		}
		if reports := outcomes[i].reports; len(reports) > 0 {
			st.RaceDetectedRuns++
			st.RacesTotal += len(reports)
			if st.FirstDetectedRun < 0 {
				st.FirstDetectedRun = i
			}
			for _, v := range outcomes[i].racyVars {
				st.RacyVars[v]++
			}
			if st.SampleRace == "" {
				st.SampleRace = reports[0].String()
			}
		}
	}
	return st
}
