// Package explore runs a simulated program under many seeds and aggregates
// manifestation and detection statistics.
//
// It is the harness behind the paper's detection experiments: Table 12 ran
// each reproduced non-blocking bug 100 times under the race detector ("We
// consider a bug detected within runs as a detected bug"), and Section 4
// notes bugs sometimes needed many runs or manual sleeps to reproduce at
// all. With the deterministic runtime, "many runs" is simply "many seeds".
package explore

import (
	"context"
	"runtime"
	"sync"

	"goconcbugs/internal/event"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// Runs is the number of seeds to try (default 100, the paper's
	// Table 12 protocol).
	Runs int
	// BaseSeed is the first seed; run i uses BaseSeed+i.
	BaseSeed int64
	// Config is the per-run sim configuration (Seed and Sinks are
	// overwritten per run).
	Config sim.Config
	// WithRace attaches a fresh race detector to every run.
	WithRace bool
	// ShadowWords is the per-variable shadow budget when WithRace is set
	// (0 = the Go detector's 4; negative = unbounded).
	ShadowWords int
	// Workers fans the runs out over that many host goroutines (each
	// simulated run is self-contained, so this is safe); 0 or negative
	// uses GOMAXPROCS, 1 runs serially. Aggregation folds results in
	// seed order, so the Stats are identical either way.
	Workers int
	// Context, when non-nil, stops dispatching new runs once canceled;
	// in-flight runs finish and the partial Stats fold only completed runs
	// (Completed < Runs flags the truncation). Nil means run to the end.
	Context context.Context
	// InjectorFor, when non-nil, builds a fresh fault injector for each
	// run (injectors are stateful and single-run). The derivation must be
	// a pure function of (run, seed) to keep the exploration replayable.
	InjectorFor func(run int, seed int64) sim.Injector
}

// Stats aggregates the outcomes of an exploration.
type Stats struct {
	Runs             int
	Completed        int // runs that executed (== Runs unless canceled or panicked)
	Manifested       int // runs where Result.Failed()
	Panics           int
	LeakRuns         int
	BuiltinDeadlocks int
	CheckFailureRuns int
	RaceDetectedRuns int // runs where the race detector reported anything
	RacesTotal       int
	FirstManifestRun int // index of first manifesting run, -1 if none
	FirstDetectedRun int // index of first race-detected run, -1 if none
	RacyVars         map[string]int
	SampleRace       string // one representative race report
	SampleLeak       string // one representative leak description
	SamplePanic      string
	SampleCheckFail  string
	// Errors records runs that panicked on the host side; they count
	// toward Runs but not Completed, and the exploration continues past
	// them.
	Errors []*harness.RunError
}

// ManifestRate returns the fraction of runs where the bug manifested.
func (s *Stats) ManifestRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Manifested) / float64(s.Runs)
}

// RaceDetectRate returns the fraction of runs where a race was reported.
func (s *Stats) RaceDetectRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.RaceDetectedRuns) / float64(s.Runs)
}

// Detected reports whether any run detected a race — the paper's Table 12
// criterion.
func (s *Stats) Detected() bool { return s.RaceDetectedRuns > 0 }

// runOutcome is one seed's extracted result, kept so parallel execution can
// fold deterministically in seed order. It stores scalars and samples rather
// than the *sim.Result itself: runs execute on recycled RunPool runtimes
// whose Result is only valid until the worker's next run.
type runOutcome struct {
	failed      bool
	panicked    bool
	panicMsg    string
	builtin     bool
	leaked      bool
	leakSample  string
	checkFailed bool
	checkSample string
	reports     []race.Report
	racyVars    []string
	err         *harness.RunError
}

// Run explores prog under opts.
func Run(prog sim.Program, opts Options) *Stats {
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	// Pointers, not values: a huge Runs count must not pay for zeroing
	// outcome structs it will never dispatch (nil = never dispatched).
	outcomes := make([]*runOutcome, opts.Runs)
	// Each worker owns a RunPool: the recycled runtime makes back-to-back
	// seeds nearly allocation-free, and pools are single-owner by contract.
	oneRun := func(pool *sim.RunPool, i int) {
		cfg := opts.Config
		cfg.Seed = opts.BaseSeed + int64(i)
		if opts.InjectorFor != nil {
			cfg.Injector = opts.InjectorFor(i, cfg.Seed)
		}
		var det *race.Detector
		if opts.WithRace {
			det = race.New(opts.ShadowWords)
			// Fresh slice per run: workers must not share an appended-to
			// backing array.
			cfg.Sinks = []event.Sink{det}
		}
		out := new(runOutcome)
		out.err = harness.Capture(i, cfg.Seed, func() {
			res := pool.Run(cfg, prog)
			// Extract everything the fold needs before the pool recycles
			// the Result on the next run.
			out.failed = res.Failed()
			out.panicked = res.Outcome == sim.OutcomePanic
			if out.panicked && len(res.Panics) > 0 {
				out.panicMsg = res.Panics[0].Msg
			}
			out.builtin = res.Outcome == sim.OutcomeBuiltinDeadlock
			if len(res.Leaked) > 0 {
				out.leaked = true
				g := res.Leaked[0]
				out.leakSample = g.Name + " blocked on " + g.BlockKind.String()
			}
			if len(res.CheckFailures) > 0 {
				out.checkFailed = true
				out.checkSample = res.CheckFailures[0]
			}
		})
		if det != nil && out.err == nil {
			out.reports = det.Reports()
			out.racyVars = det.RacyVars()
		}
		outcomes[i] = out
	}
	if workers == 1 {
		pool := sim.NewRunPool()
		defer pool.Close()
		for i := 0; i < opts.Runs; i++ {
			if ctx.Err() != nil {
				break
			}
			oneRun(pool, i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool := sim.NewRunPool()
				defer pool.Close()
				for i := range next {
					oneRun(pool, i)
				}
			}()
		}
		dispatched := 0
		for ; dispatched < opts.Runs && ctx.Err() == nil; dispatched++ {
			next <- dispatched
		}
		close(next)
		wg.Wait()
	}

	st := &Stats{Runs: opts.Runs, FirstManifestRun: -1, FirstDetectedRun: -1, RacyVars: map[string]int{}}
	for i := 0; i < opts.Runs; i++ {
		out := outcomes[i]
		if out == nil { // never dispatched (context canceled first)
			continue
		}
		if e := out.err; e != nil {
			st.Errors = append(st.Errors, e)
			continue
		}
		st.Completed++
		if out.failed {
			st.Manifested++
			if st.FirstManifestRun < 0 {
				st.FirstManifestRun = i
			}
		}
		if out.panicked {
			st.Panics++
			if st.SamplePanic == "" && out.panicMsg != "" {
				st.SamplePanic = out.panicMsg
			}
		}
		if out.builtin {
			st.BuiltinDeadlocks++
		}
		if out.leaked {
			st.LeakRuns++
			if st.SampleLeak == "" {
				st.SampleLeak = out.leakSample
			}
		}
		if out.checkFailed {
			st.CheckFailureRuns++
			if st.SampleCheckFail == "" {
				st.SampleCheckFail = out.checkSample
			}
		}
		if reports := outcomes[i].reports; len(reports) > 0 {
			st.RaceDetectedRuns++
			st.RacesTotal += len(reports)
			if st.FirstDetectedRun < 0 {
				st.FirstDetectedRun = i
			}
			for _, v := range outcomes[i].racyVars {
				st.RacyVars[v]++
			}
			if st.SampleRace == "" {
				st.SampleRace = reports[0].String()
			}
		}
	}
	return st
}
