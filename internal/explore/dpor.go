package explore

import (
	"context"
	"fmt"
	"sort"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
	"goconcbugs/internal/sim"
)

// Dynamic partial-order reduction (DPOR) for the systematic explorer, in the
// style of Flanagan & Godefroid (POPL 2005) with sleep sets.
//
// Plain DFS enumerates every decision sequence, including the astronomically
// many that differ only in the order of *independent* transitions — two
// goroutines touching disjoint objects reach the same state in either order,
// so exploring both orders proves nothing new. DPOR prunes those: it runs one
// schedule, inspects which transitions actually conflicted (same object,
// at least one mutation), and backtracks only at the decision points where
// reversing a conflict could reach a genuinely different state.
//
// The machinery, per explored schedule:
//
//   - The sim runtime streams one sim.SchedStep per transition (goroutine,
//     consumed Chooser-call index, runnable set, object footprint) as
//     event.Sched events; a ready select additionally reports the decision
//     index it consumed (event.SelectReady).
//
//   - The explorer replays the step stream and computes a vector clock per
//     transition over the *dependence* relation of the executed trace: clock
//     component g = (index of the latest transition by g ordered before this
//     one) + 1. Two dependent transitions i < j whose clocks do not already
//     order them form a reversible race: a backtrack point for j's goroutine
//     is added at the decision node that scheduled i (or, when j's goroutine
//     was not runnable there, every runnable option — the conservative
//     fallback of the original algorithm).
//
//   - Sleep sets kill the remaining redundancy: once a branch is fully
//     explored at a node, the first transition of that branch is put to
//     sleep; it stays asleep down later sibling branches until some executed
//     transition conflicts with it, and a backtrack candidate whose
//     transition is still asleep is provably redundant and skipped
//     (counted in SleepSetHits).
//
// Soundness: for every maximal schedule the full DFS reaches, the reduced
// search executes some schedule in the same Mazurkiewicz trace (equal up to
// swapping adjacent independent transitions). Every sim.Result outcome —
// checks, panics, deadlocks, leaks, final variable values — is a function of
// the trace, not the interleaving chosen within it, so failure detection and
// the conformance oracle's outcome-signature sets are preserved exactly.
// The differential suite in dpor_equiv_test.go checks this against full DFS
// on every kernel and on generated programs.
//
// Determinism: the reduced search is a serial canonical walk — branches
// advance deepest-first, backtrack candidates in ascending goroutine id —
// so its result is bit-identical for any Workers value (Workers is ignored
// under Reduction; the pruning itself removes far more work than worker
// fan-out recovers on the small programs this explorer targets).

// objKey identifies one footprint object. IDs are only comparable within a
// class, so the class is part of the key.
type objKey struct {
	class sim.ObjClass
	id    int
}

// access records one object access: the step that performed it and that
// step's dependence clock.
type access struct {
	step int
	gid  int
	vc   hb.VC
}

// objRec holds the most recent write and the reads since it for one object.
// Older accesses are ordered before the retained ones by trace dependence,
// so races against them are found transitively.
type objRec struct {
	lastWrite *access
	reads     []access
}

// sleepEntry is a transition parked in a sleep set: the goroutine whose
// pending operation it is, and that operation's footprint. The pending
// operation of a sleeping goroutine is stable while it sleeps (the goroutine
// has not run, and a simulated operation's footprint is determined by the
// objects it names), so the recorded footprint remains valid down the tree.
type sleepEntry struct {
	gid int
	ops []sim.OpRef
}

// dporNode is one decision node on the current DFS path: either a scheduler
// pick (which runnable goroutine next) or a ready-select choice (which case).
// Select nodes are expanded fully — case independence is not modeled — and
// are never backtrack targets.
type dporNode struct {
	idx    int // chooser-call index; equals the node's position on the path
	curVal int // decision value of the branch currently being explored

	// Scheduler-pick state.
	optionGs     []int // runnable goroutine ids, scheduler option order
	preferred    int   // index into optionGs continuing the last goroutine, -1
	curGid       int
	curHasSel    bool         // current branch's first transition held a select
	curOps       []sim.OpRef  // that transition's footprint
	backtrack    map[int]bool // gids requested by race reversal
	done         map[int]bool // gids completed (explored or sleep-skipped)
	executed     int          // branches actually run
	sleepAtEntry []sleepEntry
	sleepAdded   []sleepEntry

	// Ready-select state.
	isSelect bool
	ncases   int

	// Memoization state (see memo.go). hash canonically identifies the
	// program state at node entry; baseline snapshots the search's unquiet
	// run count at creation (a store is only sound when it never moved);
	// summary accumulates the subtree's object footprint; covered marks a
	// node whose remaining branches are pruned by a memo hit (or that sits
	// inside a pruned region); tainted marks a node some run through which
	// consulted T.Rand.
	hash     memoKey
	baseline int
	summary  nodeSummary
	covered  bool
	tainted  bool
}

// valueFor maps a goroutine id to the decision value selecting it at this
// node — the inverse of runSchedule's preferred-first reordering.
func (n *dporNode) valueFor(gid int) int {
	a := -1
	for i, g := range n.optionGs {
		if g == gid {
			a = i
			break
		}
	}
	if a < 0 {
		panic(fmt.Sprintf("explore: dpor: g%d not among options %v at decision %d", gid, n.optionGs, n.idx))
	}
	if n.preferred < 0 {
		return a
	}
	switch {
	case a == n.preferred:
		return 0
	case a < n.preferred:
		return a + 1
	default:
		return a
	}
}

// selPoint is one ready-select decision observed during a run.
type selPoint struct{ dec, ncases int }

// recStep is one transition of the recorded run.
type recStep struct {
	g, decision, preferred int
	optionGs               []int
	ops                    []sim.OpRef
	hasSelect              bool
}

// dporRecorder is the event sink buffering one run's scheduling stream
// (Sched transitions plus ready-select decision points).
type dporRecorder struct {
	steps      []recStep
	selects    []selPoint
	pendingSel bool
}

// Kinds implements event.Sink.
func (r *dporRecorder) Kinds() []event.Kind {
	return []event.Kind{event.Sched, event.SelectReady}
}

// Event implements event.Sink.
func (r *dporRecorder) Event(ev *event.Event) {
	if ev.Kind == event.Sched {
		r.Step(*ev.Sched)
		return
	}
	r.SelectPoint(ev.G, ev.Dec, ev.Counter)
}

func (r *dporRecorder) reset() {
	r.steps = r.steps[:0]
	r.selects = r.selects[:0]
	r.pendingSel = false
}

// Step receives a completed transition. The slices are runtime-owned and
// reused, so they are cloned here.
func (r *dporRecorder) Step(st sim.SchedStep) {
	r.steps = append(r.steps, recStep{
		g: st.G, decision: st.Decision, preferred: st.Preferred,
		optionGs:  append([]int(nil), st.OptionGs...),
		ops:       append([]sim.OpRef(nil), st.Ops...),
		hasSelect: r.pendingSel,
	})
	r.pendingSel = false
}

// SelectPoint fires mid-transition; the owning transition is delivered by
// the next Step call, which picks up pendingSel.
func (r *dporRecorder) SelectPoint(g, dec, ncases int) {
	r.selects = append(r.selects, selPoint{dec: dec, ncases: ncases})
	r.pendingSel = true
}

// conflicts reports whether two footprints are dependent: some object named
// by both with at least one side mutating it (reads commute).
func conflicts(a, b []sim.OpRef) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Class == y.Class && x.ID == y.ID && (x.Write || y.Write) {
				return true
			}
		}
	}
	return false
}

// dporSearch is the reduced-DFS controller.
type dporSearch struct {
	opts  SystematicOptions
	nodes []*dporNode // current DFS path, position == chooser index
	res   *SystematicResult
	// memo is the cross-run state table (nil = memoization off);
	// unquietRuns counts runs that failed, errored, truncated at the
	// decision horizon, or drew program randomness — a node's subtree is
	// storable only if the counter never moved past its baseline.
	memo        *MemoTable
	unquietRuns int
}

// systematicDPOR is the Reduction entry point, called from Systematic.
func systematicDPOR(prog sim.Program, opts SystematicOptions) *SystematicResult {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	s := &dporSearch{opts: opts, res: &SystematicResult{}}
	cfg := opts.Config
	if opts.Memo != nil && cfg.Injector == nil {
		// A fault injector is stateful in consultation order, so program
		// state is not a function of the dependence trace; memoization
		// silently disables itself rather than prune unsoundly.
		s.memo = opts.Memo
		s.memo.bind(fmt.Sprintf("memo/v1 prog=%s seed=%d", cfg.Name, cfg.Seed))
	}
	rec := &dporRecorder{}
	// Full slice expression: don't grow a caller-owned backing array.
	cfg.Sinks = append(cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)], rec)
	pool := sim.NewRunPool()
	defer pool.Close()
	var prefix []int
	for s.res.Runs < opts.MaxRuns {
		if err := ctx.Err(); err != nil {
			s.res.Frontier = s.frontier()
			return s.res.finish(err, opts.MaxRuns)
		}
		rec.reset()
		chosen, _, r, runErr := runSchedule(pool, prog, cfg, opts.MaxChoices, -1, prefix)
		s.res.Runs++
		if runErr != nil {
			runErr.Run = s.res.Runs - 1
			s.res.Errors = append(s.res.Errors, runErr)
		} else {
			if opts.OnRun != nil {
				opts.OnRun(r, chosen)
			}
			if len(chosen) > s.res.MaxDepth {
				s.res.MaxDepth = len(chosen)
			}
			if r.Failed() {
				s.res.Failures++
				if s.res.FirstFailure == nil {
					// r lives in the pool's recycled runtime; clone to retain
					// it past the next run.
					s.res.FirstFailure = r.Clone()
					s.res.FailureSchedule = append([]int(nil), chosen...)
				}
				if opts.StopAtFirstFailure {
					return s.res.finish(nil, opts.MaxRuns)
				}
			}
		}
		s.processRun(rec, chosen, r)
		// Quietness accounting happens after processRun so nodes created by
		// this run snapshot the pre-run counter: an unquiet creating run
		// then blocks its own nodes from ever being stored.
		if runErr != nil || r.Failed() || len(chosen) >= opts.MaxChoices || r.RandDraws > 0 {
			s.unquietRuns++
		}
		next, ok := s.advance()
		if !ok {
			s.res.Complete = true
			s.res.Frontier = 0
			return s.res.finish(nil, opts.MaxRuns)
		}
		prefix = next
	}
	s.res.Frontier = s.frontier()
	return s.res.finish(nil, opts.MaxRuns)
}

// frontier counts the backtrack points planned but not yet explored along
// the current DFS path.
func (s *dporSearch) frontier() int {
	total := 0
	for _, n := range s.nodes {
		if n.covered {
			continue // resolved by a memo hit: nothing left to explore
		}
		if n.isSelect {
			total += n.ncases - 1 - n.curVal
			continue
		}
		for g := range n.backtrack {
			if !n.done[g] {
				total++
			}
		}
	}
	return total
}

// processRun walks one recorded run: it materializes new decision nodes,
// maintains the live sleep set along the path, computes dependence clocks,
// and inserts backtrack points for every reversible race.
func (s *dporSearch) processRun(rec *dporRecorder, chosen []int, r *sim.Result) {
	horizon := s.opts.MaxChoices
	objects := map[objKey]*objRec{}
	clocks := map[int]hb.VC{}
	born := map[int]hb.VC{}
	var sleep []sleepEntry
	selIdx := 0

	// Memoization walk state: the incremental canonical prefix hash, each
	// step's per-goroutine index (canonical step identity for dependence
	// edges), and whether this run consulted program randomness — which
	// taints every node on its path against memo store and hit (the drawn
	// values depend on the concrete interleaving, not just the trace).
	var acc stateHash
	gIdxs := make([]int, len(rec.steps))
	perG := map[int]int{}
	runTainted := s.memo != nil && (r == nil || r.RandDraws > 0)
	if runTainted {
		for _, n := range s.nodes {
			n.tainted = true
		}
	}

	for j := range rec.steps {
		st := &rec.steps[j]
		gIdxs[j] = perG[st.g]
		perG[st.g]++
		var node *dporNode
		if st.decision >= 0 && st.decision < horizon {
			node = s.ensureNode(st, chosen, sleep, acc.key(), runTainted)
		}
		if st.hasSelect {
			sp := rec.selects[selIdx]
			selIdx++
			if sp.dec < horizon {
				// A ready-select point is mid-transition: distinguish its
				// state from the owning pick node's by folding the deciding
				// goroutine into the hash.
				selKey := acc
				selKey.addStep(splitmix64(uint64(st.g) ^ 0x73e1_5c2d_91af_04b3))
				s.ensureSelectNode(sp, chosen, selKey.key(), runTainted)
			}
		}
		if s.memo != nil {
			// Accumulate the step into every open node's footprint summary.
			// Early-path steps land in deeper nodes' summaries too — an
			// over-approximation, which only ever plants extra backtracks.
			for _, n := range s.nodes {
				n.summary.add(st.ops, st.g)
			}
		}

		// Sleep maintenance: entering a branch at a node wakes nothing but
		// adds the node's already-explored first transitions; executing the
		// step then wakes every entry it conflicts with (and the executing
		// goroutine's own entry, whose pending transition just ran).
		merged := sleep
		if node != nil && len(node.sleepAdded) > 0 {
			merged = make([]sleepEntry, 0, len(sleep)+len(node.sleepAdded))
			merged = append(merged, sleep...)
			merged = append(merged, node.sleepAdded...)
		}
		var nextSleep []sleepEntry
		for _, e := range merged {
			if e.gid == st.g || conflicts(e.ops, st.ops) {
				continue
			}
			nextSleep = append(nextSleep, e)
		}
		sleep = nextSleep

		// Dependence clock for this step: start from the goroutine's
		// previous step (or its spawn point), join every dependent prior
		// access, detecting races on the way.
		c, ok := clocks[st.g]
		if !ok {
			if b, okb := born[st.g]; okb {
				c = b.Clone()
			} else {
				c = hb.New()
			}
		}
		var edgeSum uint64
		for _, op := range st.ops {
			if op.Class == sim.ObjSpawn {
				continue
			}
			rec2 := objects[objKey{op.Class, op.ID}]
			if rec2 == nil {
				continue
			}
			if rec2.lastWrite != nil {
				s.race(&c, rec2.lastWrite, st, rec.steps)
				edgeSum += edgeHash(rec2.lastWrite.gid, gIdxs[rec2.lastWrite.step])
			}
			if op.Write {
				for i := range rec2.reads {
					s.race(&c, &rec2.reads[i], st, rec.steps)
					edgeSum += edgeHash(rec2.reads[i].gid, gIdxs[rec2.reads[i].step])
				}
			}
		}
		c.Set(st.g, uint64(j)+1)
		clocks[st.g] = c
		// Fold the completed step into the canonical prefix hash: its own
		// content plus the commutative sum of its dependence edges. The
		// per-step contributions also combine commutatively, so any
		// interleaving of the same Mazurkiewicz trace accumulates the same
		// 128-bit key.
		acc.addStep(stepPreHash(st.g, gIdxs[j], st.ops, edgeSum))

		// Record this step's accesses with its finalized clock; a spawn
		// roots the child's clock in this transition (the fork edge).
		for _, op := range st.ops {
			if op.Class == sim.ObjSpawn {
				born[op.ID] = c.Clone()
				continue
			}
			k := objKey{op.Class, op.ID}
			r2 := objects[k]
			if r2 == nil {
				r2 = &objRec{}
				objects[k] = r2
			}
			ac := access{step: j, gid: st.g, vc: c.Clone()}
			if op.Write {
				r2.lastWrite = &ac
				r2.reads = nil
			} else {
				r2.reads = append(r2.reads, ac)
			}
		}
	}

	// A host-side panic leaves no result to inspect; the run is already
	// recorded as a RunError and the verdict will be Incomplete, so the
	// abandoned-goroutine analysis below has nothing trustworthy to read.
	if r == nil {
		return
	}

	// Truncated runs: a simulated panic (or the step budget) tears the run
	// down with goroutines still runnable. Their pending transitions never
	// executed, so no race involving them was observable — yet scheduling
	// them earlier can reach outcomes this run's crash hid (e.g. a second
	// close racing the panicking send). With the footprint unknown, the
	// only sound move is the conservative one: backtrack each abandoned
	// goroutine at every node where it was runnable past its last executed
	// step, exactly as Flanagan–Godefroid falls back to "all enabled" when
	// dependence cannot be ruled out.
	var abandoned []int
	for _, g := range r.Goroutines {
		if g.State == sim.GAbandoned {
			abandoned = append(abandoned, g.ID)
		}
	}
	if len(abandoned) > 0 {
		lastExec := map[int]int{}
		for j := range rec.steps {
			lastExec[rec.steps[j].g] = j
		}
		for j := range rec.steps {
			st := &rec.steps[j]
			if st.decision < 0 || st.decision >= len(s.nodes) {
				continue
			}
			n := s.nodes[st.decision]
			for _, a := range abandoned {
				last, ran := lastExec[a]
				if ran && j <= last {
					continue // a's pending transition here did execute later
				}
				for _, g := range n.optionGs {
					if g == a {
						n.backtrack[a] = true
						break
					}
				}
			}
		}
	}
}

// race checks one dependent prior access against the step being processed.
// If the dependence clocks do not already order them, reversing the pair
// could reach a new trace: request a backtrack at the node that scheduled
// the prior access. Either way the prior clock is joined (trace order plus
// dependence orders the pair from here on).
func (s *dporSearch) race(c *hb.VC, prior *access, st *recStep, steps []recStep) {
	if prior.gid != st.g && c.Get(prior.gid) < uint64(prior.step)+1 {
		if target := steps[prior.step].decision; target >= 0 && target < len(s.nodes) {
			n := s.nodes[target]
			if n.isSelect {
				panic("explore: dpor: race target is a select node")
			}
			inOptions := false
			for _, g := range n.optionGs {
				if g == st.g {
					inOptions = true
					break
				}
			}
			if inOptions {
				n.backtrack[st.g] = true
			} else {
				// The racing goroutine was not runnable at the target:
				// fall back to every option, as in the original algorithm.
				for _, g := range n.optionGs {
					n.backtrack[g] = true
				}
			}
		}
	}
	c.Join(prior.vc)
}

// ensureNode returns the pick node at st.decision, creating it when the run
// has descended past the known path. Existing nodes must replay identically:
// the decisions above them are fixed and the sim is deterministic.
func (s *dporSearch) ensureNode(st *recStep, chosen []int, sleep []sleepEntry, hash memoKey, tainted bool) *dporNode {
	idx := st.decision
	if idx < len(s.nodes) {
		n := s.nodes[idx]
		if n.isSelect || n.curGid != st.g {
			panic(fmt.Sprintf("explore: dpor: replay divergence at decision %d: ran g%d, path holds g%d", idx, st.g, n.curGid))
		}
		n.curOps = append(n.curOps[:0], st.ops...)
		n.curHasSel = st.hasSelect
		n.tainted = n.tainted || tainted
		return n
	}
	if idx != len(s.nodes) {
		panic(fmt.Sprintf("explore: dpor: non-dense decision index %d with %d nodes", idx, len(s.nodes)))
	}
	n := &dporNode{
		idx:          idx,
		curVal:       chosen[idx],
		optionGs:     append([]int(nil), st.optionGs...),
		preferred:    st.preferred,
		curGid:       st.g,
		curHasSel:    st.hasSelect,
		curOps:       append([]sim.OpRef(nil), st.ops...),
		backtrack:    map[int]bool{st.g: true},
		done:         map[int]bool{},
		sleepAtEntry: append([]sleepEntry(nil), sleep...),
	}
	s.initMemoNode(n, hash, tainted)
	s.nodes = append(s.nodes, n)
	return n
}

// ensureSelectNode materializes the decision node for a ready select.
func (s *dporSearch) ensureSelectNode(sp selPoint, chosen []int, hash memoKey, tainted bool) {
	if sp.dec < len(s.nodes) {
		n := s.nodes[sp.dec]
		if !n.isSelect {
			panic(fmt.Sprintf("explore: dpor: decision %d is a pick on the path but replayed as a select", sp.dec))
		}
		n.tainted = n.tainted || tainted
		return
	}
	if sp.dec != len(s.nodes) {
		panic(fmt.Sprintf("explore: dpor: non-dense select index %d with %d nodes", sp.dec, len(s.nodes)))
	}
	n := &dporNode{
		idx: sp.dec, isSelect: true, ncases: sp.ncases, curVal: chosen[sp.dec],
	}
	s.initMemoNode(n, hash, tainted)
	s.nodes = append(s.nodes, n)
}

// initMemoNode seeds a fresh node's memoization state: its canonical entry
// hash, the quietness baseline, taint and coverage inheritance, and — the
// payoff — the table lookup that prunes the node on a hit.
func (s *dporSearch) initMemoNode(n *dporNode, hash memoKey, tainted bool) {
	if s.memo == nil {
		return
	}
	n.hash = hash
	n.baseline = s.unquietRuns
	n.tainted = tainted
	for _, m := range s.nodes {
		if m.covered {
			// Inside a region already pruned by an ancestor's hit: nothing
			// to explore here, nothing sound to store.
			n.covered = true
			return
		}
	}
	if !tainted {
		s.tryMemoHit(n)
	}
}

// tryMemoHit looks the node's entry state up in the memo table; on a hit the
// node's remaining branches are pruned and the stored subtree footprint
// conservatively replants the backtracks its exploration would have caused
// at the current path's nodes.
func (s *dporSearch) tryMemoHit(n *dporNode) bool {
	objs, ok := s.memo.lookup(n.hash)
	if !ok {
		return false
	}
	n.covered = true
	s.res.PrefixesDeduped++
	for _, m := range s.nodes {
		if m.idx >= n.idx {
			break
		}
		if m.isSelect {
			continue
		}
		for _, op := range m.curOps {
			for oi := range objs {
				o := &objs[oi]
				if op.Class != o.Class || op.ID != o.ID || (!op.Write && !o.Write) {
					continue
				}
				// The subtree's accesses to this object would have raced
				// with the transition scheduled at m: request the same
				// backtracks its exploration would have, without clocks
				// (over-approximate, never under).
				for _, g := range o.Gids {
					in := false
					for _, opt := range m.optionGs {
						if opt == g {
							in = true
							break
						}
					}
					if in {
						m.backtrack[g] = true
					} else {
						for _, opt := range m.optionGs {
							m.backtrack[opt] = true
						}
					}
				}
			}
		}
	}
	return true
}

// sleepHolds reports whether gid's pending transition is asleep.
func sleepHolds(entries []sleepEntry, gid int) bool {
	for _, e := range entries {
		if e.gid == gid {
			return true
		}
	}
	return false
}

// advance completes the deepest explored branch and moves to the next
// pending one in canonical order, returning the decision prefix of the next
// run. ok is false when the whole reduced tree is exhausted.
func (s *dporSearch) advance() ([]int, bool) {
	for d := len(s.nodes) - 1; d >= 0; d-- {
		n := s.nodes[d]
		// A node whose entry state was pruned by a memo hit — at creation,
		// or right now against an entry stored since — has every remaining
		// branch equivalent to a subtree some search already exhausted
		// failure-free.
		if n.covered || (s.memo != nil && !n.tainted && s.tryMemoHit(n)) {
			if n.isSelect {
				s.res.SchedulesPruned += n.ncases - 1 - n.curVal
			} else {
				s.res.SchedulesPruned += len(n.optionGs) - n.executed
			}
			continue
		}
		if n.isSelect {
			if n.curVal+1 < n.ncases {
				n.curVal++
				s.nodes = s.nodes[:d+1]
				return s.prefix(), true
			}
			s.memoStore(n)
			continue // fully expanded; nothing is ever pruned here
		}
		// Everything below this node is exhausted, so its current branch
		// is complete: mark it done and put its first transition to sleep
		// for the siblings (unless that transition embedded a select —
		// then its continuation is not a single transition, and parking it
		// could hide unexplored cases, so it is conservatively skipped).
		if !n.done[n.curGid] {
			n.done[n.curGid] = true
			n.executed++
			if !n.curHasSel {
				n.sleepAdded = append(n.sleepAdded, sleepEntry{
					gid: n.curGid, ops: append([]sim.OpRef(nil), n.curOps...),
				})
			}
		}
		var cands []int
		for g := range n.backtrack {
			if !n.done[g] {
				cands = append(cands, g)
			}
		}
		sort.Ints(cands)
		for _, g := range cands {
			if sleepHolds(n.sleepAtEntry, g) {
				// g's pending transition was fully explored from an
				// ancestor and nothing since conflicts with it: any
				// schedule starting with it here is equivalent to one
				// already covered.
				s.res.SleepSetHits++
				n.done[g] = true
				continue
			}
			n.curGid = g
			n.curVal = n.valueFor(g)
			n.curHasSel = false
			n.curOps = n.curOps[:0]
			s.nodes = s.nodes[:d+1]
			return s.prefix(), true
		}
		// Node exhausted: every option never explored from here is a
		// pruned sibling subtree.
		s.res.SchedulesPruned += len(n.optionGs) - n.executed
		s.memoStore(n)
	}
	return nil, false
}

// memoStore records an exhausted node's entry state as a known-quiet
// subtree, when that is sound: memoization on, the node not itself pruned
// or randomness-tainted, its footprint summary complete, and no run since
// its creation unquiet (failed, errored, truncated, or drawing).
func (s *dporSearch) memoStore(n *dporNode) {
	if s.memo == nil || n.covered || n.tainted || n.summary.overflow || s.unquietRuns != n.baseline {
		return
	}
	if s.memo.store(n.hash, n.summary.freeze()) {
		s.res.StatesMemoized++
	}
}

// prefix rebuilds the decision sequence pinning the current path.
func (s *dporSearch) prefix() []int {
	p := make([]int, len(s.nodes))
	for i, n := range s.nodes {
		p[i] = n.curVal
	}
	return p
}
