package explore_test

// Differential equivalence suite for dynamic partial-order reduction.
//
// DPOR's correctness contract is behavioral: the reduced search must reach
// every outcome the full DFS reaches — it may only skip schedules that are
// Mazurkiewicz-trace-equivalent to one it ran. These tests enforce the
// contract directly, by comparing the *set* of trace-invariant outcome
// signatures collected by the reduced and unreduced searches on
//
//   - every kernel in the corpus, buggy and fixed variant alike, and
//   - generated conformance-IR programs (a different program distribution:
//     racy shared variables, WaitGroups, buffered fan-in trees),
//
// plus the determinism half of the contract: the reduced search must be
// bit-identical for any Workers value.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"goconcbugs/internal/conformance"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// traceSignature folds a run result down to its trace-invariant content:
// the outcome class, what is blocked forever and on what kind of object,
// simulated panics, and violated invariants. Goroutine ids and names are
// deliberately excluded — concurrent spawns may be numbered in either order
// within one equivalence class — as are step counts and virtual time.
func traceSignature(r *sim.Result) string {
	var leaks []string
	for _, g := range r.Leaked {
		leaks = append(leaks, g.BlockKind.String()+" on "+g.BlockObj)
	}
	sort.Strings(leaks)
	var panics []string
	for _, p := range r.Panics {
		panics = append(panics, p.Msg)
	}
	sort.Strings(panics)
	checks := append([]string(nil), r.CheckFailures...)
	sort.Strings(checks)
	return fmt.Sprintf("%v | leaked[%s] | panic[%s] | check[%s]",
		r.Outcome, strings.Join(leaks, "; "), strings.Join(panics, "; "), strings.Join(checks, "; "))
}

// exploreSigs runs a systematic exploration and collects the signature set.
func exploreSigs(prog sim.Program, opts explore.SystematicOptions) (map[string]bool, *explore.SystematicResult) {
	sigs := map[string]bool{}
	opts.OnRun = func(r *sim.Result, schedule []int) { sigs[traceSignature(r)] = true }
	res := explore.Systematic(prog, opts)
	return sigs, res
}

func sortedKeys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// kernelBudget is the full-DFS schedule budget per kernel variant. Variants
// whose unreduced space exceeds it are compared on the schedules both
// searches did run (subset check) rather than exact set equality.
const kernelBudget = 120_000

// TestDPORKernelEquivalence: on every kernel, buggy and fixed, the reduced
// search must (a) reach exactly the signature set of the full DFS whenever
// both complete, (b) never run more schedules than the full DFS, and
// (c) agree on whether a failure exists.
func TestDPORKernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive kernel sweep")
	}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			for _, variant := range []struct {
				name string
				prog sim.Program
			}{{"buggy", k.Buggy}, {"fixed", k.Fixed}} {
				opts := explore.SystematicOptions{
					Config:  k.Config(0),
					MaxRuns: kernelBudget,
					Workers: 1,
				}
				dfsSigs, dfs := exploreSigs(variant.prog, opts)
				opts.Reduction = true
				dporSigs, dpor := exploreSigs(variant.prog, opts)

				if dpor.Runs > dfs.Runs {
					t.Errorf("%s: DPOR ran %d schedules, full DFS %d — reduction must never explore more",
						variant.name, dpor.Runs, dfs.Runs)
				}
				switch {
				case dfs.Complete && dpor.Complete:
					if !reflect.DeepEqual(dfsSigs, dporSigs) {
						t.Errorf("%s: signature sets differ\nfull DFS (%d runs): %v\nDPOR (%d runs): %v",
							variant.name, dfs.Runs, sortedKeys(dfsSigs), dpor.Runs, sortedKeys(dporSigs))
					}
					if (dfs.Failures > 0) != (dpor.Failures > 0) {
						t.Errorf("%s: failure disagreement: DFS %d failing schedules, DPOR %d",
							variant.name, dfs.Failures, dpor.Failures)
					}
				case dpor.Complete:
					// The reduced space fit the budget, the full one did
					// not: every signature DPOR found must be DFS-reachable
					// eventually, and everything the truncated DFS saw must
					// be in the (complete) DPOR set.
					for sig := range dfsSigs {
						if !dporSigs[sig] {
							t.Errorf("%s: complete DPOR search misses DFS-reachable signature %q", variant.name, sig)
						}
					}
				default:
					t.Logf("%s: neither search complete within %d runs (DFS %d, DPOR %d) — sets not comparable",
						variant.name, kernelBudget, dfs.Runs, dpor.Runs)
				}
			}
		})
	}
}

// TestDPORWorkerDeterminism: under Reduction the search is a canonical
// serial walk; any Workers value must produce a bit-identical result and
// the identical OnRun sequence.
func TestDPORWorkerDeterminism(t *testing.T) {
	for _, id := range []string{"kubernetes-finishreq", "docker-abba-order", "etcd-double-recv"} {
		k, ok := kernels.ByID(id)
		if !ok {
			t.Fatalf("kernel %s missing", id)
		}
		type runLog struct {
			res    *explore.SystematicResult
			runs   []string
			scheds [][]int
		}
		collect := func(workers int) runLog {
			var l runLog
			opts := explore.SystematicOptions{
				Config:    k.Config(0),
				MaxRuns:   50_000,
				Reduction: true,
				Workers:   workers,
				OnRun: func(r *sim.Result, schedule []int) {
					l.runs = append(l.runs, traceSignature(r))
					l.scheds = append(l.scheds, append([]int(nil), schedule...))
				},
			}
			l.res = explore.Systematic(k.Buggy, opts)
			return l
		}
		base := collect(1)
		for _, w := range []int{0, 4, 16} {
			got := collect(w)
			if !reflect.DeepEqual(base.res, got.res) {
				t.Errorf("%s: Workers=%d result differs from Workers=1:\n%+v\nvs\n%+v", id, w, got.res, base.res)
			}
			if !reflect.DeepEqual(base.runs, got.runs) || !reflect.DeepEqual(base.scheds, got.scheds) {
				t.Errorf("%s: Workers=%d OnRun sequence differs from Workers=1", id, w)
			}
		}
	}
}

// TestDPORConformanceIREquivalence: 200 generated IR programs — a program
// family independent of the kernel corpus — must yield identical signature
// sets under full enumeration and under reduction.
func TestDPORConformanceIREquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("200-program sweep")
	}
	const programs = 200
	const budget = 20_000
	skipped := 0
	for seed := int64(0); seed < programs; seed++ {
		p := conformance.Generate(seed, conformance.ModeSafe)
		full := conformance.ExploreSimReduced(p, budget, false, false)
		red := conformance.ExploreSimReduced(p, budget, false, true)
		if red.Schedules > full.Schedules {
			t.Errorf("seed %d: DPOR ran %d schedules, full DFS %d", seed, red.Schedules, full.Schedules)
		}
		if !full.Complete || !red.Complete {
			skipped++
			continue
		}
		for sig := range full.Sigs {
			if red.Sigs[sig] == 0 {
				t.Errorf("seed %d: DPOR misses DFS-reachable signature %v\nreproduce with: go test ./internal/conformance -run TestReplaySeed -conformance.seed=%d -v",
					seed, sig, seed)
			}
		}
		for sig := range red.Sigs {
			if full.Sigs[sig] == 0 {
				t.Errorf("seed %d: DPOR reaches signature %v the full DFS does not — reduction must not invent outcomes", seed, sig)
			}
		}
	}
	if skipped > programs/4 {
		t.Errorf("%d of %d programs exceeded the %d-schedule budget — equivalence barely exercised", skipped, programs, budget)
	}
}

// TestReplayScheduleMismatch: a schedule recorded against a different
// program must be rejected explicitly, not silently truncated (regression
// for the old clamp-to-zero behavior).
func TestReplayScheduleMismatch(t *testing.T) {
	twoWorkers := func(t *sim.T) {
		v := sim.NewIntVar(t, "x")
		done := sim.NewChan[int](t, 2)
		for i := 0; i < 2; i++ {
			t.Go(func(t *sim.T) {
				v.Incr(t, 1)
				done.Send(t, 1)
			})
		}
		done.Recv(t)
		done.Recv(t)
	}
	// Out-of-range decision index: at most 3 goroutines are ever runnable,
	// so index 9 can never be a valid option.
	if _, err := explore.ReplaySchedule(twoWorkers, sim.Config{}, []int{9, 9, 9}); err == nil {
		t.Fatalf("out-of-range schedule replayed without error")
	} else if !strings.Contains(err.Error(), "schedule mismatch") {
		t.Fatalf("unexpected error text: %v", err)
	}
	// Overlong schedule: more decisions than the program ever asks for.
	long := make([]int, 10_000)
	if _, err := explore.ReplaySchedule(twoWorkers, sim.Config{}, long); err == nil {
		t.Fatalf("overlong schedule replayed without error")
	}
	// A genuinely recorded schedule must replay cleanly and reproduce its
	// result.
	res := explore.Systematic(twoWorkers, explore.SystematicOptions{MaxRuns: 50, Workers: 1})
	var recorded [][]int
	opts := explore.SystematicOptions{MaxRuns: 50, Workers: 1,
		OnRun: func(r *sim.Result, s []int) { recorded = append(recorded, append([]int(nil), s...)) }}
	explore.Systematic(twoWorkers, opts)
	_ = res
	for _, s := range recorded[:min(len(recorded), 5)] {
		if _, err := explore.ReplaySchedule(twoWorkers, sim.Config{}, s); err != nil {
			t.Fatalf("recorded schedule %v failed to replay: %v", s, err)
		}
	}
}
