package explore

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"goconcbugs/internal/harness"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/sim"
)

// slowSpin burns scheduler steps so cancellation can land mid-exploration.
func slowSpin(tt *sim.T) {
	ch := sim.NewChan[int](tt, 0)
	tt.Go(func(ct *sim.T) {
		for i := 0; i < 100; i++ {
			ct.Yield()
		}
		ch.Send(ct, 1)
	})
	ch.Recv(tt)
}

// panicOnSomeSeeds host-panics (a raw Go panic, not a simulated one) on a
// seed-dependent subset of runs — the stand-in for a buggy kernel or
// detector crashing the host side.
func panicOnSomeSeeds(tt *sim.T) {
	if tt.Rand(3) == 0 {
		panic("host-side bug in the kernel")
	}
	ch := sim.NewChan[int](tt, 1)
	ch.Send(tt, 1)
	ch.Recv(tt)
}

// TestRunSurvivesHostPanics: explore.Run must isolate host panics per run,
// keep the pool draining, and account every run as completed or errored —
// identically for serial and parallel execution.
func TestRunSurvivesHostPanics(t *testing.T) {
	var firstErrs []*harness.RunError
	for _, workers := range []int{1, 4} {
		st := Run(panicOnSomeSeeds, Options{Runs: 60, BaseSeed: 1, Workers: workers})
		if len(st.Errors) == 0 {
			t.Fatalf("workers=%d: no host panics captured; the fixture should panic on ~1/3 of seeds", workers)
		}
		if st.Completed+len(st.Errors) != st.Runs {
			t.Fatalf("workers=%d: completed %d + errors %d != runs %d", workers, st.Completed, len(st.Errors), st.Runs)
		}
		for _, e := range st.Errors {
			if e.PanicValue != "host-side bug in the kernel" {
				t.Fatalf("workers=%d: captured wrong panic: %+v", workers, e)
			}
		}
		if workers == 1 {
			firstErrs = st.Errors
		} else if len(firstErrs) != len(st.Errors) {
			t.Fatalf("serial captured %d errors, parallel %d — fold must be worker-independent", len(firstErrs), len(st.Errors))
		}
	}
}

// TestRunCancellationReturnsPartial: a canceled exploration stops promptly
// with Completed < Runs instead of discarding or finishing the work.
func TestRunCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	st := Run(slowSpin, Options{Runs: 500000, BaseSeed: 1, Workers: 2, Context: ctx})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled exploration took %v", elapsed)
	}
	if st.Completed == 0 || st.Completed >= st.Runs {
		t.Fatalf("Completed = %d of %d, want a strict partial result", st.Completed, st.Runs)
	}
}

// TestSystematicBudgetVerdict: exhausting MaxRuns on a space larger than the
// budget yields Incomplete{budget} with a nonzero frontier — distinguishable
// from both refutation and cancellation.
func TestSystematicBudgetVerdict(t *testing.T) {
	res := Systematic(tinyRace, SystematicOptions{MaxRuns: 3})
	if res.Complete {
		t.Fatal("a 3-run budget cannot cover tinyRace's schedule space")
	}
	if res.Verdict.Status != harness.Incomplete || res.Verdict.Reason != harness.ReasonBudget {
		t.Fatalf("verdict = %v, want incomplete(budget)", res.Verdict)
	}
	if res.Frontier <= 0 {
		t.Fatalf("frontier = %d, want > 0 when the search stops early", res.Frontier)
	}
}

// TestSystematicVerdictConfirmedAndRefuted: the two terminal verdicts.
func TestSystematicVerdictConfirmedAndRefuted(t *testing.T) {
	if res := Systematic(tinyRace, SystematicOptions{MaxRuns: 20000}); res.Verdict.Status != harness.Confirmed {
		t.Fatalf("buggy program verdict = %v, want confirmed", res.Verdict)
	}
	res := Systematic(tinySynced, SystematicOptions{MaxRuns: 100_000})
	if res.Verdict.Status != harness.Refuted {
		t.Fatalf("fixed program verdict = %v, want refuted", res.Verdict)
	}
	if res.Frontier != 0 {
		t.Fatalf("complete search left frontier %d", res.Frontier)
	}
}

// TestSystematicCancellation: all three search modes (serial, parallel,
// DPOR) stop between runs on cancellation and return the partial result
// with an Incomplete verdict naming the context reason.
func TestSystematicCancellation(t *testing.T) {
	modes := []struct {
		name string
		opts SystematicOptions
	}{
		{"serial", SystematicOptions{Workers: 1}},
		{"parallel", SystematicOptions{Workers: 4}},
		{"dpor", SystematicOptions{Workers: 1, Reduction: true}},
	}
	for _, m := range modes {
		ctx, cancel := context.WithCancel(context.Background())
		opts := m.opts
		opts.MaxRuns = 1_000_000
		opts.Context = ctx
		var runs atomic.Int64 // OnRun fires from worker goroutines in parallel mode
		opts.OnRun = func(r *sim.Result, schedule []int) {
			if runs.Add(1) == 5 {
				cancel()
			}
		}
		start := time.Now()
		res := Systematic(tinySynced, opts)
		cancel()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: canceled search took %v", m.name, elapsed)
		}
		if res.Complete {
			t.Fatalf("%s: search claims completeness after cancellation at run 5", m.name)
		}
		if res.Verdict.Status != harness.Incomplete || res.Verdict.Reason != harness.ReasonCanceled {
			t.Fatalf("%s: verdict = %v, want incomplete(canceled)", m.name, res.Verdict)
		}
		if res.Runs == 0 {
			t.Fatalf("%s: partial result lost the completed runs", m.name)
		}
	}
}

// alwaysPanics host-panics on every schedule: the worst-case crashing
// kernel. The systematic search must survive every run erroring and report
// Incomplete{panic} rather than crashing or claiming refutation.
func alwaysPanics(tt *sim.T) {
	ch := sim.NewChan[int](tt, 0)
	tt.Go(func(ct *sim.T) { ch.Send(ct, 1) })
	ch.Recv(tt)
	panic("kernel always crashes the host")
}

func TestSystematicSurvivesHostPanics(t *testing.T) {
	for _, m := range []struct {
		name string
		opts SystematicOptions
	}{
		{"serial", SystematicOptions{Workers: 1}},
		{"parallel", SystematicOptions{Workers: 4}},
		{"dpor", SystematicOptions{Workers: 1, Reduction: true}},
	} {
		opts := m.opts
		opts.MaxRuns = 100
		res := Systematic(alwaysPanics, opts)
		if len(res.Errors) == 0 {
			t.Fatalf("%s: no RunErrors captured from an always-panicking program", m.name)
		}
		if res.Verdict.Status != harness.Incomplete || res.Verdict.Reason != harness.ReasonPanic {
			t.Fatalf("%s: verdict = %v, want incomplete(panic)", m.name, res.Verdict)
		}
	}
}

// TestRunInjectionIsWorkerIndependent: with InjectorFor a pure function of
// the run index, explore.Run folds identically for any worker count even
// under aggressive injection.
func TestRunInjectionIsWorkerIndependent(t *testing.T) {
	injOpts := inject.Options{Seed: 9, Budget: 4, Aggressive: true}
	mk := func(workers int) *Stats {
		return Run(slowSpin, Options{
			Runs: 40, BaseSeed: 2, Workers: workers, WithRace: true,
			InjectorFor: func(run int, seed int64) sim.Injector { return inject.ForRun(injOpts, run) },
		})
	}
	a, b := mk(1), mk(8)
	if a.Manifested != b.Manifested || a.Panics != b.Panics || a.LeakRuns != b.LeakRuns ||
		a.FirstManifestRun != b.FirstManifestRun || a.RaceDetectedRuns != b.RaceDetectedRuns {
		t.Fatalf("serial and parallel folds differ under aggressive injection:\n%+v\n%+v", a, b)
	}
}
