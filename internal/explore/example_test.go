package explore_test

import (
	"fmt"

	"goconcbugs/internal/explore"
	"goconcbugs/internal/sim"
)

// unsyncedIncrement is the classic lost update: two goroutines perform a
// read-modify-write with no synchronization.
func unsyncedIncrement(t *sim.T) {
	x := sim.NewVarInit(t, "x", 0)
	wg := sim.NewWaitGroup(t, "wg")
	wg.Add(t, 2)
	for i := 0; i < 2; i++ {
		t.Go(func(ct *sim.T) {
			x.Store(ct, x.Load(ct)+1)
			wg.Done(ct)
		})
	}
	wg.Wait(t)
	t.Checkf(x.Load(t) == 2, "lost update: x=%d", x.Load(t))
}

// ExampleRun samples 100 seeds, the paper's Table 12 protocol.
func ExampleRun() {
	st := explore.Run(unsyncedIncrement, explore.Options{Runs: 100})
	fmt.Println("manifested in some runs:", st.Manifested > 0)
	fmt.Println("manifested in all runs:", st.Manifested == st.Runs)
	// Output:
	// manifested in some runs: true
	// manifested in all runs: false
}

// ExampleSystematic enumerates every schedule instead of sampling: the
// search is complete and counts exactly how many schedules fail.
func ExampleSystematic() {
	res := explore.Systematic(unsyncedIncrement, explore.SystematicOptions{MaxRuns: 100_000})
	fmt.Println("complete:", res.Complete)
	fmt.Println("found failing schedules:", res.Failures > 0)
	// Output:
	// complete: true
	// found failing schedules: true
}
