package explore

import (
	"testing"

	"goconcbugs/internal/sim"
)

// leakyProg leaks a sender on every run.
func leakyProg(t *sim.T) {
	ch := sim.NewChan[int](t, 0)
	t.Go(func(ct *sim.T) { ch.Send(ct, 1) })
	t.Sleep(10)
}

// racyProg races unconditionally.
func racyProg(t *sim.T) {
	x := sim.NewVar[int](t, "x")
	t.Go(func(ct *sim.T) { x.Store(ct, 1) })
	x.Store(t, 2)
	t.Sleep(10)
}

// cleanProg is healthy.
func cleanProg(t *sim.T) {
	ch := sim.NewChan[int](t, 0)
	t.Go(func(ct *sim.T) { ch.Send(ct, 1) })
	ch.Recv(t)
}

func TestDefaultRunsIsPaperProtocol(t *testing.T) {
	st := Run(cleanProg, Options{})
	if st.Runs != 100 {
		t.Fatalf("default runs = %d, want the paper's 100", st.Runs)
	}
}

func TestLeakAggregation(t *testing.T) {
	st := Run(leakyProg, Options{Runs: 20})
	if st.Manifested != 20 || st.LeakRuns != 20 {
		t.Fatalf("manifested %d leak %d, want 20/20", st.Manifested, st.LeakRuns)
	}
	if st.FirstManifestRun != 0 {
		t.Fatalf("first manifest run = %d", st.FirstManifestRun)
	}
	if st.SampleLeak == "" {
		t.Fatal("no sample leak recorded")
	}
	if st.ManifestRate() != 1.0 {
		t.Fatalf("manifest rate = %f", st.ManifestRate())
	}
}

func TestRaceAggregation(t *testing.T) {
	st := Run(racyProg, Options{Runs: 20, WithRace: true})
	if !st.Detected() || st.RaceDetectedRuns != 20 {
		t.Fatalf("race detected in %d/20 runs", st.RaceDetectedRuns)
	}
	if st.RacyVars["x"] != 20 {
		t.Fatalf("racy vars = %v", st.RacyVars)
	}
	if st.SampleRace == "" {
		t.Fatal("no sample race recorded")
	}
	if st.RaceDetectRate() != 1.0 {
		t.Fatalf("detect rate = %f", st.RaceDetectRate())
	}
}

func TestWithoutRaceDetectorNothingReported(t *testing.T) {
	st := Run(racyProg, Options{Runs: 10})
	if st.RaceDetectedRuns != 0 {
		t.Fatal("race runs counted without a detector attached")
	}
	if st.Manifested != 0 {
		t.Fatal("a silent data race should not manifest functionally")
	}
}

func TestCleanProgramAggregatesClean(t *testing.T) {
	st := Run(cleanProg, Options{Runs: 30, WithRace: true})
	if st.Manifested != 0 || st.RaceDetectedRuns != 0 || st.Panics != 0 {
		t.Fatalf("clean program flagged: %+v", st)
	}
	if st.FirstManifestRun != -1 || st.FirstDetectedRun != -1 {
		t.Fatal("first-run markers should stay -1")
	}
}

func TestPanicAggregation(t *testing.T) {
	st := Run(func(tt *sim.T) {
		ch := sim.NewChan[int](tt, 0)
		ch.Close(tt)
		ch.Close(tt)
	}, Options{Runs: 5})
	if st.Panics != 5 || st.SamplePanic == "" {
		t.Fatalf("panics = %d sample=%q", st.Panics, st.SamplePanic)
	}
}

// TestParallelMatchesSerial: the parallel fan-out must produce the exact
// Stats the serial loop does (aggregation is in seed order).
func TestParallelMatchesSerial(t *testing.T) {
	prog := func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		tt.Go(func(ct *sim.T) { x.Store(ct, 1) })
		if tt.Rand(2) == 0 {
			_ = x.Load(tt)
		}
		tt.Sleep(10)
	}
	serial := Run(prog, Options{Runs: 60, WithRace: true, Workers: 1})
	parallel := Run(prog, Options{Runs: 60, WithRace: true, Workers: -1})
	if serial.RaceDetectedRuns != parallel.RaceDetectedRuns ||
		serial.Manifested != parallel.Manifested ||
		serial.FirstDetectedRun != parallel.FirstDetectedRun ||
		serial.SampleRace != parallel.SampleRace {
		t.Fatalf("parallel diverged: serial=%+v parallel=%+v", serial, parallel)
	}
}

func TestSeedsActuallyVary(t *testing.T) {
	// A program whose outcome depends on a two-way select choice must not
	// produce identical results across all seeds.
	prog := func(tt *sim.T) {
		a := sim.NewChan[int](tt, 1)
		b := sim.NewChan[int](tt, 1)
		a.Send(tt, 1)
		b.Send(tt, 2)
		idx := sim.Select(tt, sim.OnRecv(a, nil), sim.OnRecv(b, nil))
		tt.Check(idx == 0, "took case 1")
	}
	st := Run(prog, Options{Runs: 40})
	if st.CheckFailureRuns == 0 || st.CheckFailureRuns == 40 {
		t.Fatalf("select choice did not vary across seeds: %d/40", st.CheckFailureRuns)
	}
}
