package explore

import (
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// TestPreemptionBoundShrinksTheSpace: the bounded search covers far fewer
// schedules than the full DFS on the same program.
func TestPreemptionBoundShrinksTheSpace(t *testing.T) {
	full := Systematic(tinySynced, SystematicOptions{MaxRuns: 100_000})
	if !full.Complete {
		t.Fatalf("full DFS did not complete (%d runs)", full.Runs)
	}
	bounded := Systematic(tinySynced, SystematicOptions{MaxRuns: 100_000, PreemptionBound: 2})
	if !bounded.Complete {
		t.Fatalf("bounded search did not complete (%d runs)", bounded.Runs)
	}
	if bounded.Runs*4 > full.Runs {
		t.Fatalf("preemption bound barely helped: %d bounded vs %d full", bounded.Runs, full.Runs)
	}
	if bounded.Failures != 0 {
		t.Fatalf("the fix failed within 2 preemptions: %d", bounded.Failures)
	}
}

// TestPreemptionBoundStillFindsTheBug: the CHESS claim — the lost update
// needs only a couple of preemptions, so the bounded search finds it fast.
func TestPreemptionBoundStillFindsTheBug(t *testing.T) {
	bounded := Systematic(tinyRace, SystematicOptions{
		MaxRuns: 100_000, PreemptionBound: 2, StopAtFirstFailure: true,
	})
	if bounded.FirstFailure == nil {
		t.Fatalf("bounded search missed the lost update (%d runs)", bounded.Runs)
	}
	full := Systematic(tinyRace, SystematicOptions{
		MaxRuns: 100_000, StopAtFirstFailure: true,
	})
	if bounded.Runs > full.Runs*2 {
		t.Fatalf("bounded first-failure took %d runs vs full %d", bounded.Runs, full.Runs)
	}
}

// TestPreemptionBoundedReplay: a failing schedule found under a bound
// replays deterministically.
func TestPreemptionBoundedReplay(t *testing.T) {
	res := Systematic(tinyRace, SystematicOptions{
		MaxRuns: 100_000, PreemptionBound: 2, StopAtFirstFailure: true,
	})
	if res.FirstFailure == nil {
		t.Fatal("no failure found")
	}
	replay, err := ReplaySchedule(tinyRace, sim.Config{}, res.FailureSchedule)
	if err != nil {
		t.Fatalf("replay mismatch: %v", err)
	}
	if !replay.Failed() {
		t.Fatal("bounded failing schedule did not replay")
	}
}

// TestZeroPreemptionScheduleIsTheLeftmostPath: with the preferred-first
// reordering, the all-zeros schedule never preempts, so a race that *needs*
// a preemption cannot fail on it.
func TestZeroPreemptionScheduleIsTheLeftmostPath(t *testing.T) {
	replay, err := ReplaySchedule(tinyRace, sim.Config{}, nil) // all defaults
	if err != nil {
		t.Fatalf("replay mismatch: %v", err)
	}
	if replay.Failed() {
		t.Fatalf("the run-to-completion schedule manifested the preemption bug: %v",
			replay.CheckFailures)
	}
}

// TestBoundedSearchOnKernels: the double-close bug needs few preemptions;
// bounded exploration finds it with a fraction of the full space.
func TestBoundedSearchOnKernels(t *testing.T) {
	k, _ := kernels.ByID("docker-24007-double-close")
	full := Systematic(k.Buggy, SystematicOptions{Config: k.Config(0), MaxRuns: 50_000})
	bounded := Systematic(k.Buggy, SystematicOptions{
		Config: k.Config(0), MaxRuns: 50_000, PreemptionBound: 2,
	})
	if !bounded.Complete || bounded.Failures == 0 {
		t.Fatalf("bounded: complete=%v failures=%d runs=%d",
			bounded.Complete, bounded.Failures, bounded.Runs)
	}
	if bounded.Runs >= full.Runs {
		t.Fatalf("bounded (%d) not smaller than full (%d)", bounded.Runs, full.Runs)
	}
	t.Logf("schedules: full=%d bounded(2)=%d", full.Runs, bounded.Runs)
}
