package explore_test

// Soundness and reuse tests for DPOR state memoization.
//
// The contract under test: a memoized search must reach the same verdict as
// the unmemoized reduced search on every program — memoization may only
// prune subtrees proven equivalent to quiet, fully explored ones — and a
// table carried across sequential searches of the same program re-verifies
// an already-covered space in O(1) runs.

import (
	"testing"

	"goconcbugs/internal/explore"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

const memoBudget = 50_000

func memoOpts(memo *explore.MemoTable, name string) explore.SystematicOptions {
	return explore.SystematicOptions{
		Config:    sim.Config{Seed: 1, Name: name},
		MaxRuns:   memoBudget,
		Reduction: true,
		Memo:      memo,
	}
}

// TestMemoSoundnessOnKernels: on every kernel, buggy and fixed, the
// memoized search agrees with the unmemoized one on verdict, completeness,
// and failure existence, and never runs more schedules.
func TestMemoSoundnessOnKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus memo differential")
	}
	totalStored, totalDeduped := 0, 0
	for _, k := range kernels.All() {
		for _, v := range []struct {
			name string
			prog sim.Program
		}{{"buggy", k.Buggy}, {"fixed", k.Fixed}} {
			base := explore.Systematic(v.prog, memoOpts(nil, k.ID))
			memo := explore.Systematic(v.prog, memoOpts(explore.NewMemoTable(0), k.ID))
			label := k.ID + "/" + v.name
			if base.Verdict.Status != memo.Verdict.Status {
				t.Errorf("%s: verdict differs: plain=%v memoized=%v", label, base.Verdict, memo.Verdict)
			}
			if base.Complete != memo.Complete {
				t.Errorf("%s: completeness differs: plain=%v memoized=%v", label, base.Complete, memo.Complete)
			}
			if (base.Failures > 0) != (memo.Failures > 0) {
				t.Errorf("%s: failure existence differs: plain=%d memoized=%d", label, base.Failures, memo.Failures)
			}
			// A hit's conservative backtrack replanting may open a few
			// extra ancestor branches the clock-precise analysis would
			// have skipped, so a small run-count overshoot is legitimate;
			// anything larger means the pruning is not paying for itself.
			if memo.Runs > base.Runs+base.Runs/4+8 {
				t.Errorf("%s: memoized search ran far more schedules (%d vs %d)", label, memo.Runs, base.Runs)
			}
			totalStored += memo.StatesMemoized
			totalDeduped += memo.PrefixesDeduped
		}
	}
	if totalStored == 0 {
		t.Error("no kernel stored a single memo entry — memoization is inert")
	}
	t.Logf("across the corpus: %d states memoized, %d prefixes deduped cold", totalStored, totalDeduped)
}

// TestMemoWarmTableReverifiesInOneRun: after a complete refuting search, a
// second search sharing the table must hit the root state immediately and
// finish complete in a single run — the resumed/sharded-campaign payoff.
func TestMemoWarmTableReverifiesInOneRun(t *testing.T) {
	verified := 0
	for _, k := range kernels.All() {
		table := explore.NewMemoTable(0)
		first := explore.Systematic(k.Fixed, memoOpts(table, k.ID))
		if !first.Complete || first.Verdict.Status != harness.Refuted || first.StatesMemoized == 0 {
			continue
		}
		second := explore.Systematic(k.Fixed, memoOpts(table, k.ID))
		if second.Verdict.Status != harness.Refuted || !second.Complete {
			t.Errorf("%s: warm re-verification verdict = %v (complete=%v), want complete refutation",
				k.ID, second.Verdict, second.Complete)
		}
		if second.Runs != 1 {
			t.Errorf("%s: warm re-verification took %d runs, want 1", k.ID, second.Runs)
		}
		if second.PrefixesDeduped == 0 {
			t.Errorf("%s: warm re-verification reported no prefix dedup", k.ID)
		}
		verified++
		if verified >= 5 && testing.Short() {
			break
		}
	}
	if verified == 0 {
		t.Fatal("no kernel produced a complete, refuted, memoized first search — cannot exercise warm tables")
	}
	t.Logf("%d kernels re-verified in one run each", verified)
}

// TestMemoEncodeDecodeRoundtrip: a table serialized in one "process" and
// decoded in another keeps its entries — the cross-process half of sharded
// campaigns.
func TestMemoEncodeDecodeRoundtrip(t *testing.T) {
	var pick *kernels.Kernel
	for _, k := range kernels.All() {
		table := explore.NewMemoTable(0)
		res := explore.Systematic(k.Fixed, memoOpts(table, k.ID))
		if res.Complete && res.Verdict.Status == harness.Refuted && res.StatesMemoized > 0 {
			kk := k
			pick = &kk
			data, err := table.Encode()
			if err != nil {
				t.Fatalf("%s: encode: %v", k.ID, err)
			}
			decoded, err := explore.DecodeMemoTable(data)
			if err != nil {
				t.Fatalf("%s: decode: %v", k.ID, err)
			}
			if decoded.Len() != table.Len() {
				t.Fatalf("%s: roundtrip dropped entries: %d != %d", k.ID, decoded.Len(), table.Len())
			}
			second := explore.Systematic(k.Fixed, memoOpts(decoded, k.ID))
			if second.Runs != 1 || second.Verdict.Status != harness.Refuted {
				t.Fatalf("%s: decoded table did not re-verify in one run: runs=%d verdict=%v",
					k.ID, second.Runs, second.Verdict)
			}
			break
		}
	}
	if pick == nil {
		t.Fatal("no kernel produced a memoized complete refutation")
	}
}

// TestMemoDeterministic: two memoized searches with separate fresh tables
// are bit-identical — the serial canonical walk survives memoization.
func TestMemoDeterministic(t *testing.T) {
	for _, k := range kernels.All()[:6] {
		for _, prog := range []sim.Program{k.Buggy, k.Fixed} {
			a := explore.Systematic(prog, memoOpts(explore.NewMemoTable(0), k.ID))
			b := explore.Systematic(prog, memoOpts(explore.NewMemoTable(0), k.ID))
			if a.Runs != b.Runs || a.StatesMemoized != b.StatesMemoized ||
				a.PrefixesDeduped != b.PrefixesDeduped || a.SchedulesPruned != b.SchedulesPruned ||
				a.Verdict.Status != b.Verdict.Status || a.Complete != b.Complete {
				t.Errorf("%s: memoized search not deterministic:\n  a: %+v\n  b: %+v", k.ID, a, b)
			}
		}
	}
}

// randDrawer consults T.Rand: its state depends on the concrete
// interleaving, so memoization must disable itself (nothing stored, nothing
// pruned) while the verdict stays intact.
func randDrawer(tt *sim.T) {
	x := sim.NewVar[int](tt, "x")
	done := sim.NewChan[int](tt, 2)
	tt.Go(func(ct *sim.T) { x.Store(ct, ct.Rand(10)); done.Send(ct, 1) })
	tt.Go(func(ct *sim.T) { _ = x.Load(ct); done.Recv(ct) })
	done.Send(tt, 0)
}

func TestMemoDisabledByRand(t *testing.T) {
	table := explore.NewMemoTable(0)
	opts := memoOpts(table, "rand-drawer")
	res := explore.Systematic(randDrawer, opts)
	if res.StatesMemoized != 0 || res.PrefixesDeduped != 0 {
		t.Fatalf("memoization acted on a T.Rand-consuming program: stored=%d deduped=%d",
			res.StatesMemoized, res.PrefixesDeduped)
	}
	if table.Len() != 0 {
		t.Fatalf("table holds %d entries for a rand-tainted program", table.Len())
	}
	base := explore.Systematic(randDrawer, memoOpts(nil, "rand-drawer"))
	if base.Verdict.Status != res.Verdict.Status || base.Runs != res.Runs {
		t.Fatalf("rand-tainted memoized search diverged from plain: %+v vs %+v", res, base)
	}
}

// TestMemoDisabledByInjector: a stateful fault injector likewise disables
// memoization entirely.
func TestMemoDisabledByInjector(t *testing.T) {
	k := kernels.All()[0]
	table := explore.NewMemoTable(0)
	opts := memoOpts(table, k.ID)
	opts.Config.Injector = inject.New(inject.Options{Seed: 3, Budget: 2})
	res := explore.Systematic(k.Fixed, opts)
	if res.StatesMemoized != 0 || res.PrefixesDeduped != 0 || table.Len() != 0 {
		t.Fatalf("memoization acted under a fault injector: stored=%d deduped=%d table=%d",
			res.StatesMemoized, res.PrefixesDeduped, table.Len())
	}
}

// TestMemoTableRejectsCrossProgramReuse: binding one table to two different
// (program, config) identities is a caller bug and must panic rather than
// prune with meaningless entries.
func TestMemoTableRejectsCrossProgramReuse(t *testing.T) {
	ks := kernels.All()
	table := explore.NewMemoTable(0)
	explore.Systematic(ks[0].Fixed, memoOpts(table, ks[0].ID))
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a bound MemoTable for a different program did not panic")
		}
	}()
	explore.Systematic(ks[1].Fixed, memoOpts(table, ks[1].ID))
}
