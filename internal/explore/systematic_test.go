package explore

import (
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// tinyRace: two writers, no sync; the check fails only under the schedule
// where both load before either stores.
func tinyRace(t *sim.T) {
	x := sim.NewVarInit(t, "x", 0)
	done := sim.NewChan[struct{}](t, 2)
	for i := 0; i < 2; i++ {
		t.Go(func(ct *sim.T) {
			v := x.Load(ct)
			x.Store(ct, v+1)
			done.Send(ct, struct{}{})
		})
	}
	done.Recv(t)
	done.Recv(t)
	t.Checkf(x.Load(t) == 2, "lost update: x=%d", x.Load(t))
}

func TestSystematicFindsTheLostUpdate(t *testing.T) {
	res := Systematic(tinyRace, SystematicOptions{MaxRuns: 20000})
	if !res.Complete {
		t.Fatalf("exploration did not complete in %d runs (depth %d)", res.Runs, res.MaxDepth)
	}
	if res.Failures == 0 {
		t.Fatal("exhaustive search missed the lost-update schedule")
	}
	if res.Runs < 2 {
		t.Fatalf("suspiciously few schedules: %d", res.Runs)
	}
}

func TestReplayReproducesTheFailure(t *testing.T) {
	res := Systematic(tinyRace, SystematicOptions{MaxRuns: 20000, StopAtFirstFailure: true})
	if res.FirstFailure == nil {
		t.Fatal("no failing schedule found")
	}
	replay, err := ReplaySchedule(tinyRace, sim.Config{}, res.FailureSchedule)
	if err != nil {
		t.Fatalf("replay mismatch: %v", err)
	}
	if !replay.Failed() {
		t.Fatal("replaying the recorded schedule did not reproduce the failure")
	}
	if len(replay.CheckFailures) != len(res.FirstFailure.CheckFailures) {
		t.Fatalf("replay diverged: %v vs %v", replay.CheckFailures, res.FirstFailure.CheckFailures)
	}
}

// tinySynced is the mutex-fixed variant; no schedule may fail. (It signals
// completion through a WaitGroup rather than a channel purely to keep the
// schedule space enumerable — ~39k schedules vs >200k.)
func tinySynced(t *sim.T) {
	x := sim.NewVarInit(t, "x", 0)
	mu := sim.NewMutex(t, "mu")
	wg := sim.NewWaitGroup(t, "wg")
	wg.Add(t, 2)
	for i := 0; i < 2; i++ {
		t.Go(func(ct *sim.T) {
			mu.Lock(ct)
			x.Store(ct, x.Load(ct)+1)
			mu.Unlock(ct)
			wg.Done(ct)
		})
	}
	wg.Wait(t)
	t.Checkf(x.Load(t) == 2, "lost update: x=%d", x.Load(t))
}

func TestVerifyAllSchedulesProvesTheFix(t *testing.T) {
	ok, res := VerifyAllSchedules(tinySynced, SystematicOptions{MaxRuns: 100_000})
	if !ok {
		t.Fatalf("fix not verified: complete=%v failures=%d runs=%d",
			res.Complete, res.Failures, res.Runs)
	}
	if res.Runs < 1000 {
		t.Fatalf("suspiciously small schedule space: %d", res.Runs)
	}
}

func TestSystematicVerifiesBoltDBFix(t *testing.T) {
	k, _ := kernels.ByID("boltdb-392-double-lock")
	// The buggy variant deadlocks on *every* schedule.
	buggy := Systematic(k.Buggy, SystematicOptions{Config: k.Config(0), MaxRuns: 5000})
	if !buggy.Complete || buggy.Failures != buggy.Runs {
		t.Fatalf("buggy: complete=%v failures=%d/%d", buggy.Complete, buggy.Failures, buggy.Runs)
	}
	// The patch holds on every schedule.
	ok, res := VerifyAllSchedules(k.Fixed, SystematicOptions{Config: k.Config(0), MaxRuns: 5000})
	if !ok {
		t.Fatalf("fixed: complete=%v failures=%d runs=%d", res.Complete, res.Failures, res.Runs)
	}
}

func TestSystematicFindsDoubleCloseWithoutLuck(t *testing.T) {
	k, _ := kernels.ByID("docker-24007-double-close")
	res := Systematic(k.Buggy, SystematicOptions{
		Config: k.Config(0), MaxRuns: 50000, StopAtFirstFailure: true,
	})
	if res.FirstFailure == nil {
		t.Fatalf("no double-close schedule found in %d runs", res.Runs)
	}
	if res.FirstFailure.Outcome != sim.OutcomePanic {
		t.Fatalf("failing schedule outcome = %v", res.FirstFailure.Outcome)
	}
}

func TestDeterministicProgramExploresExactlyOnce(t *testing.T) {
	res := Systematic(func(tt *sim.T) {
		ch := sim.NewChan[int](tt, 1)
		ch.Send(tt, 1)
		ch.Recv(tt)
	}, SystematicOptions{})
	if !res.Complete || res.Runs != 1 {
		t.Fatalf("single-goroutine program: runs=%d complete=%v", res.Runs, res.Complete)
	}
}
