package explore

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"goconcbugs/internal/sim"
)

// Cross-run state memoization for the DPOR search.
//
// Sleep sets remove most of the redundancy the race-reversal backtracking
// creates, but the conservative fallbacks survive them: abandoned-goroutine
// handling backtracks at every node, a race whose reverser was not runnable
// at the target backtracks every option, and ready selects are expanded
// case by case. Each fallback can descend into a subtree whose entry state
// is Mazurkiewicz-equivalent to one the search already exhausted — same
// per-goroutine histories, same dependence edges, hence (by determinism of
// the simulated runtime) the same concrete program state and the same
// reachable outcomes.
//
// The memo table keys those states canonically: an incremental 128-bit hash
// over the executed prefix in which each transition contributes
// (goroutine, per-goroutine index, object footprint, dependence edges) and
// contributions combine commutatively — so any two interleavings of the
// same trace prefix hash identically, while the dependence edges keep
// genuinely different traces apart. When a decision node's entry state hits
// a table entry, the node's remaining branches are pruned
// (PrefixesDeduped); when a node's subtree is exhausted provably quiet —
// no failure, no host error, no depth truncation, no T.Rand draw, footprint
// summary within bounds — its entry state is stored (StatesMemoized).
//
// Soundness is one-directional by construction: only quiet, completely
// explored subtrees are ever stored, so a hit can only prune schedules
// whose outcomes are already known failure-free — a memoized search reaches
// a failure iff the unmemoized search does. Two conservative obligations
// make the pruning safe:
//
//   - Races between a prefix transition and a pruned-subtree transition
//     would have planted backtrack points at the *current* path's nodes had
//     the subtree run. Each stored entry therefore carries the subtree's
//     bounded object-footprint summary; a hit replants those backtracks
//     without clocks (conflict ⇒ backtrack — over-approximate, never
//     under).
//
//   - Program-visible randomness (T.Rand) draws from one shared stream in
//     interleaving order, so equal traces need not mean equal states; any
//     run that drew taints every node on its path against both store and
//     hit. Fault injectors are stateful in the same way, so a non-nil
//     Config.Injector disables memoization entirely.
//
// A table outlives a single search: sharing one across sequential sweeps of
// the SAME program and configuration (a resumed or sharded campaign)
// re-verifies already-covered state spaces in O(1) runs. Sharing across
// different programs, seeds, or injector setups is a caller error the
// fingerprint check turns into a panic. Concurrent sharers stay sound
// (entries are only ever valid facts) but make each search's run counts
// timing-dependent; the serial canonical walk is bit-reproducible only when
// searches use the table one at a time.

// memoKey is the 128-bit canonical state hash (two independent 64-bit
// mixes of the same trace-prefix content).
type memoKey struct{ H1, H2 uint64 }

// memoObj is one object of a stored subtree's footprint summary: the
// object, whether the subtree wrote it, and which goroutines touched it.
type memoObj struct {
	Class sim.ObjClass `json:"class"`
	ID    int          `json:"id"`
	Write bool         `json:"write"`
	Gids  []int        `json:"gids"`
}

// memoEntry is one stored quiet subtree.
type memoEntry struct {
	key  memoKey
	objs []memoObj
	elem *list.Element // LRU position
}

// DefaultMemoCap bounds a MemoTable's entry count unless overridden.
const DefaultMemoCap = 1 << 16

// MemoTable is a bounded-memory LRU map from canonical state hashes to
// quiet-subtree summaries, shared across DPOR searches via
// SystematicOptions.Memo. The zero value is not usable; construct with
// NewMemoTable. All methods are safe for concurrent use.
type MemoTable struct {
	mu      sync.Mutex
	cap     int
	entries map[memoKey]*memoEntry
	lru     *list.List // front = most recently used
	fp      string     // identity of the (program, config) the table serves
}

// NewMemoTable creates a table holding at most capEntries states
// (DefaultMemoCap when <= 0).
func NewMemoTable(capEntries int) *MemoTable {
	if capEntries <= 0 {
		capEntries = DefaultMemoCap
	}
	return &MemoTable{
		cap:     capEntries,
		entries: map[memoKey]*memoEntry{},
		lru:     list.New(),
	}
}

// Len returns the number of stored states.
func (m *MemoTable) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// bind pins the table to one (program, config) identity; a second bind with
// a different identity is a caller bug (stored states would be meaningless)
// and panics.
func (m *MemoTable) bind(fp string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fp == "" {
		m.fp = fp
		return
	}
	if m.fp != fp {
		panic(fmt.Sprintf("explore: MemoTable bound to %q reused for %q — one table per (program, config)", m.fp, fp))
	}
}

// lookup returns the summary for k, refreshing its LRU position.
func (m *MemoTable) lookup(k memoKey) ([]memoObj, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok {
		return nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.objs, true
}

// store inserts a quiet-subtree entry, evicting the least recently used
// state when the table is full. It reports whether the entry was new.
func (m *MemoTable) store(k memoKey, objs []memoObj) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[k]; ok {
		m.lru.MoveToFront(e.elem)
		return false
	}
	e := &memoEntry{key: k, objs: objs}
	e.elem = m.lru.PushFront(e)
	m.entries[k] = e
	for len(m.entries) > m.cap {
		oldest := m.lru.Back()
		old := oldest.Value.(*memoEntry)
		m.lru.Remove(oldest)
		delete(m.entries, old.key)
	}
	return true
}

// memoTableJSON is the persistence format: enough to rebuild the table in
// another process (a sharded or resumed campaign).
type memoTableJSON struct {
	Version     string `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Cap         int    `json:"cap"`
	Entries     []struct {
		H1   uint64    `json:"h1"`
		H2   uint64    `json:"h2"`
		Objs []memoObj `json:"objs,omitempty"`
	} `json:"entries"`
}

// Encode serializes the table (most recently used first).
func (m *MemoTable) Encode() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := memoTableJSON{Version: "memo/v1", Fingerprint: m.fp, Cap: m.cap}
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*memoEntry)
		out.Entries = append(out.Entries, struct {
			H1   uint64    `json:"h1"`
			H2   uint64    `json:"h2"`
			Objs []memoObj `json:"objs,omitempty"`
		}{e.key.H1, e.key.H2, e.objs})
	}
	return json.Marshal(&out)
}

// DecodeMemoTable rebuilds a table serialized by Encode.
func DecodeMemoTable(data []byte) (*MemoTable, error) {
	var in memoTableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	if in.Version != "memo/v1" {
		return nil, fmt.Errorf("explore: unknown memo table version %q", in.Version)
	}
	m := NewMemoTable(in.Cap)
	m.fp = in.Fingerprint
	// Reverse order: PushFront restores the serialized MRU-first order.
	for i := len(in.Entries) - 1; i >= 0; i-- {
		e := in.Entries[i]
		m.store(memoKey{e.H1, e.H2}, e.Objs)
	}
	return m, nil
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stateHash accumulates the canonical prefix hash. Steps add their
// contributions commutatively (addition), so the hash is invariant under
// reordering of independent transitions; the dependence edges folded into
// each contribution keep distinct traces distinct.
type stateHash struct{ h1, h2 uint64 }

func (s *stateHash) key() memoKey { return memoKey{s.h1, s.h2} }

// addStep folds one transition in. pre is the step's order-independent
// content hash (goroutine, per-goroutine index, footprint, commutative
// dependence-edge sum).
func (s *stateHash) addStep(pre uint64) {
	s.h1 += splitmix64(pre ^ 0x8e51_0c52_6d1f_35a7)
	s.h2 += splitmix64(pre ^ 0x5fc1_6a2e_93b7_d841)
}

// stepPreHash hashes one transition's own content sequentially (the
// goroutine-local parts are ordered by the goroutine's own history, which
// is trace-invariant) and takes the dependence-edge sum computed by the
// caller.
func stepPreHash(gid, gIdx int, ops []sim.OpRef, edgeSum uint64) uint64 {
	h := splitmix64(uint64(gid)<<32 | uint64(uint32(gIdx)))
	for _, op := range ops {
		w := uint64(0)
		if op.Write {
			w = 1
		}
		h = splitmix64(h ^ splitmix64(uint64(op.Class)<<48|uint64(uint32(op.ID))<<1|w))
	}
	return h ^ edgeSum
}

// edgeHash is one dependence edge's commutative contribution: the prior
// conflicting transition identified canonically by (goroutine,
// per-goroutine index).
func edgeHash(gid, gIdx int) uint64 {
	return splitmix64(uint64(gid)<<32 | uint64(uint32(gIdx)) | 1<<63)
}

// memoSummaryCap bounds a node's footprint summary; a subtree touching more
// distinct objects is not memoized (the summary is what makes a later hit's
// backtrack replanting sound, so it must stay complete).
const memoSummaryCap = 256

// nodeSummary accumulates the object footprint of one node's subtree.
type nodeSummary struct {
	objs     map[objKey]*memoObj
	overflow bool
}

func (ns *nodeSummary) add(ops []sim.OpRef, gid int) {
	if ns.overflow {
		return
	}
	if ns.objs == nil {
		ns.objs = map[objKey]*memoObj{}
	}
	for _, op := range ops {
		if op.Class == sim.ObjSpawn {
			continue
		}
		k := objKey{op.Class, op.ID}
		o := ns.objs[k]
		if o == nil {
			if len(ns.objs) >= memoSummaryCap {
				ns.overflow = true
				return
			}
			o = &memoObj{Class: op.Class, ID: op.ID}
			ns.objs[k] = o
		}
		o.Write = o.Write || op.Write
		seen := false
		for _, g := range o.Gids {
			if g == gid {
				seen = true
				break
			}
		}
		if !seen {
			o.Gids = append(o.Gids, gid)
		}
	}
}

// freeze renders the summary for storage (deterministic order not required:
// hits only iterate it).
func (ns *nodeSummary) freeze() []memoObj {
	out := make([]memoObj, 0, len(ns.objs))
	for _, o := range ns.objs {
		out = append(out, *o)
	}
	return out
}
