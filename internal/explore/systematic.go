package explore

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"goconcbugs/internal/harness"
	"goconcbugs/internal/sim"
)

// Systematic schedule exploration: a stateless model checker over the
// simulated runtime's scheduling decisions.
//
// Random seeds (the paper's and Run's protocol) find bugs probabilistically;
// Section 4 notes some bugs needed many runs or hand-inserted sleeps.
// Systematic exploration goes further: because every interleaving of a
// simulated program is a pure function of the sequence of scheduling
// choices (which runnable goroutine next, which ready select case), a
// depth-first enumeration of those choice sequences covers *every* schedule
// of a small program — turning "we never saw it fail" into "it cannot fail
// within the bound". That is the strongest form of the detection direction
// the paper's Implication 4 asks for, and it verifies patches, not just
// finds bugs: a Fixed kernel that passes exhaustive exploration is correct
// for every interleaving, not just 100 sampled ones.
//
// Input randomness (T.Rand) stays fixed by the seed; the exploration is
// over scheduling only, as in stateless model checkers like CHESS.

// SystematicOptions bounds the exploration.
type SystematicOptions struct {
	// Config seeds input randomness and labels runs; its Chooser is
	// overwritten.
	Config sim.Config
	// Context, when non-nil, bounds the exploration's wall-clock: on
	// cancellation or deadline expiry the search stops between runs (serial
	// and DPOR modes) or between batches (parallel mode) and returns the
	// partial result with an Incomplete verdict instead of discarding the
	// work done. Nil means no deadline.
	Context context.Context
	// MaxRuns bounds the number of schedules explored (default 10000).
	MaxRuns int
	// MaxChoices bounds the per-run decision depth that participates in
	// backtracking (default 2000); deeper decisions take the first
	// option. Completeness is relative to this bound.
	MaxChoices int
	// StopAtFirstFailure ends the search at the first failing schedule.
	StopAtFirstFailure bool
	// PreemptionBound, when > 0, explores only schedules with at most
	// that many preemptions (a context switch away from a goroutine that
	// could have kept running) — the CHESS insight that most concurrency
	// bugs need very few preemptions, which shrinks the schedule space by
	// orders of magnitude. Zero or negative means unbounded (full DFS).
	// With a bound, Complete means "complete within the preemption
	// bound".
	PreemptionBound int
	// Reduction enables dynamic partial-order reduction (see dpor.go):
	// the search skips schedules that only reorder independent
	// transitions, which is sound — every reachable outcome (failures,
	// terminal states, the conformance signature set) is still reached —
	// and typically shrinks the schedule count by orders of magnitude on
	// channel-heavy programs. Runs are pruned, so OnRun fires for fewer
	// schedules, and Runs/MaxDepth/FailureSchedule describe the reduced
	// search; SchedulesPruned and SleepSetHits report what was skipped.
	// The reduced search is a serial canonical walk: its result is
	// bit-identical for any Workers value (Workers is ignored).
	// Reduction reasons about unbounded dependence, not preemption
	// budgets, so it is ignored when PreemptionBound > 0 (the bound
	// already prunes far harder, at the cost of completeness).
	Reduction bool
	// Memo, when non-nil, enables cross-run state memoization on the
	// reduced search (see memo.go): decision-node entry states are hashed
	// canonically over the executed dependence trace, provably-quiet
	// exhausted subtrees are stored, and a node whose entry state matches a
	// stored one has its remaining branches pruned (with the stored
	// footprint summary conservatively replanting ancestor backtracks).
	// The same table can be shared across sequential searches of the SAME
	// program and configuration — a resumed or sharded campaign re-verifies
	// covered state spaces in O(1) runs. Ignored without Reduction, and
	// self-disabling when Config.Injector is set or a run consults T.Rand
	// (both make program state depend on more than the dependence trace).
	Memo *MemoTable
	// Workers fans independent schedules out over that many host
	// goroutines; 0 or negative uses GOMAXPROCS, 1 explores serially.
	// The result is bit-identical to the serial search for any worker
	// count: schedules are merged in canonical DFS order, so Runs,
	// Complete, Failures, FirstFailure, and FailureSchedule do not depend
	// on execution timing. Config.Observer and Config.Monitor are shared
	// across concurrent runs and must be nil or thread-safe when
	// Workers != 1.
	Workers int
	// OnRun, when non-nil, receives every executed schedule's result and
	// decision sequence as soon as the run finishes. This is how the
	// conformance oracle collects the full set of terminal states a
	// program can reach. With Workers == 1 the callback fires serially in
	// DFS order; with parallel workers it fires from worker goroutines in
	// execution order and must be thread-safe. The slice is reused by the
	// search, and in serial mode the Result lives in a recycled run pool:
	// clone either (r.Clone, append) to retain it past the callback.
	OnRun func(r *sim.Result, schedule []int)
}

// SystematicResult summarizes an exploration.
type SystematicResult struct {
	// Runs is the number of schedules executed.
	Runs int
	// Complete is true when every schedule within the depth bound was
	// covered (the search tree was exhausted rather than the run budget).
	Complete bool
	// Failures counts failing schedules; FirstFailure holds the first
	// failing run and FailureSchedule the decision sequence reproducing
	// it (feed it back via ReplaySchedule).
	Failures        int
	FirstFailure    *sim.Result
	FailureSchedule []int
	// MaxDepth is the deepest decision sequence seen.
	MaxDepth int
	// SchedulesPruned counts sibling subtrees the DPOR search proved
	// redundant and never entered (one per unexplored option at each
	// exhausted decision node); zero without Reduction. The number of
	// full schedules avoided is typically far larger — each pruned
	// subtree holds many.
	SchedulesPruned int
	// SleepSetHits counts backtrack candidates skipped because their
	// pending transition was asleep (already explored from an equivalent
	// state); zero without Reduction.
	SleepSetHits int
	// StatesMemoized counts quiet exhausted subtrees this search stored in
	// the memo table; PrefixesDeduped counts decision nodes whose branches
	// were pruned because their entry state hit a stored one (possibly
	// stored by an earlier search sharing the table). Zero without
	// Reduction and a SystematicOptions.Memo table.
	StatesMemoized  int
	PrefixesDeduped int
	// Verdict is the structured outcome: Confirmed when at least one
	// schedule failed, Refuted when the search exhausted the tree with no
	// failure, and Incomplete (with a reason) when it ran out of budget,
	// deadline, or context before either — in which case "no failures so
	// far" is NOT verification.
	Verdict harness.Verdict
	// Frontier sizes the unexplored remainder when the search stopped
	// early: the number of known-untried sibling options (serial and DPOR
	// modes) or pending prefix jobs (parallel mode). Zero when Complete.
	Frontier int
	// Errors records schedules whose execution panicked on the host side
	// (a detector sink or kernel bug); such runs are isolated, counted
	// here, and the search continues past them.
	Errors []*harness.RunError
}

// finish derives the verdict from the search's terminal state. ctxErr is
// non-nil when a context cut the search short.
func (res *SystematicResult) finish(ctxErr error, maxRuns int) *SystematicResult {
	switch {
	case res.Failures > 0:
		res.Verdict = harness.Verdict{Status: harness.Confirmed}
	case ctxErr != nil:
		res.Verdict = harness.Incompletef(harness.CtxReason(ctxErr),
			"stopped after %d runs with %d frontier entries", res.Runs, res.Frontier)
	case !res.Complete:
		res.Verdict = harness.Incompletef(harness.ReasonBudget,
			"run budget %d exhausted with %d frontier entries", maxRuns, res.Frontier)
	case len(res.Errors) > 0:
		res.Verdict = harness.Incompletef(harness.ReasonPanic,
			"%d of %d runs panicked", len(res.Errors), res.Runs)
	default:
		res.Verdict = harness.Verdict{Status: harness.Refuted}
	}
	return res
}

// frontierOf counts the untried sibling options of one recorded schedule —
// the subtrees a serial DFS stopped before entering.
func frontierOf(chosen, options []int) int {
	n := 0
	for d := range chosen {
		n += options[d] - 1 - chosen[d]
	}
	return n
}

// runSchedule executes one schedule: the decision at depth d takes prefix[d]
// when present and the first (non-preempting) option past the prefix. It
// returns the recorded decision sequence, the option count at every recorded
// depth, and the run result. The decision index is a position in a
// *reordered* option list with the preferred option first, so the leftmost
// descent is the preemption-free schedule and the preemption budget prunes
// consistently across replays.
//
// A host-side panic during the run (a buggy detector sink, a kernel bug in
// host code) is captured as runErr with r nil; chosen and options keep the
// decisions recorded before the panic, so the DFS can still backtrack past
// the schedule.
//
// With a non-nil pool the run recycles the pool's runtime and r is only
// valid until the pool's next run — callers clone what they retain.
func runSchedule(pool *sim.RunPool, prog sim.Program, cfg sim.Config, maxChoices, bound int, prefix []int) (chosen, options []int, r *sim.Result, runErr *harness.RunError) {
	preemptions := 0
	cfg.Chooser = func(n, preferred int) int {
		d := len(chosen)
		if d >= maxChoices {
			if preferred >= 0 {
				return preferred
			}
			return 0
		}
		if bound >= 0 && preferred >= 0 && preemptions >= bound {
			// Out of preemption budget: forced. Recorded with a
			// single option so replay stays aligned and the DFS
			// never branches here.
			chosen = append(chosen, 0)
			options = append(options, 1)
			return preferred
		}
		c := 0
		if d < len(prefix) {
			c = prefix[d]
		}
		if c >= n {
			c = 0
		}
		chosen = append(chosen, c)
		options = append(options, n)
		actual := c
		if preferred >= 0 {
			// Reorder: position 0 = preferred, positions 1..
			// = the remaining options in index order.
			switch {
			case c == 0:
				actual = preferred
			case c <= preferred:
				actual = c - 1
			default:
				actual = c
			}
			if actual != preferred {
				preemptions++
			}
		}
		return actual
	}
	runErr = harness.Capture(0, cfg.Seed, func() {
		if pool != nil {
			r = pool.Run(cfg, prog)
		} else {
			r = sim.Run(cfg, prog)
		}
	})
	return chosen, options, r, runErr
}

// Systematic explores prog's schedules depth-first.
func Systematic(prog sim.Program, opts SystematicOptions) *SystematicResult {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 10000
	}
	if opts.MaxChoices <= 0 {
		opts.MaxChoices = 2000
	}
	bound := -1 // unbounded
	if opts.PreemptionBound > 0 {
		bound = opts.PreemptionBound
	}
	if opts.Reduction && bound < 0 {
		return systematicDPOR(prog, opts)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return systematicParallel(prog, opts, bound, workers)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res := &SystematicResult{}
	pool := sim.NewRunPool()
	defer pool.Close()
	var prefix []int
	for res.Runs < opts.MaxRuns {
		if err := ctx.Err(); err != nil {
			return res.finish(err, opts.MaxRuns)
		}
		chosen, options, r, runErr := runSchedule(pool, prog, opts.Config, opts.MaxChoices, bound, prefix)
		res.Runs++
		res.Frontier = frontierOf(chosen, options)
		if runErr != nil {
			runErr.Run = res.Runs - 1
			res.Errors = append(res.Errors, runErr)
		} else {
			if opts.OnRun != nil {
				opts.OnRun(r, chosen)
			}
			if len(chosen) > res.MaxDepth {
				res.MaxDepth = len(chosen)
			}
			if r.Failed() {
				res.Failures++
				if res.FirstFailure == nil {
					// r lives in the pool's recycled runtime; clone to retain
					// it past the next run.
					res.FirstFailure = r.Clone()
					res.FailureSchedule = append([]int(nil), chosen...)
				}
				if opts.StopAtFirstFailure {
					return res.finish(nil, opts.MaxRuns)
				}
			}
		}
		// Backtrack: advance the deepest decision that still has an
		// untried option; exhausting all of them completes the search.
		d := len(chosen) - 1
		for ; d >= 0; d-- {
			if chosen[d]+1 < options[d] {
				break
			}
		}
		if d < 0 {
			res.Complete = true
			res.Frontier = 0
			return res.finish(nil, opts.MaxRuns)
		}
		prefix = append(prefix[:0], chosen[:d+1]...)
		prefix[d] = chosen[d] + 1
	}
	return res.finish(nil, opts.MaxRuns)
}

// The parallel search decomposes the same DFS tree into independent jobs.
// A job is a decision prefix; executing it runs the leftmost schedule below
// that prefix (the decisions past the prefix are all 0) and spawns a child
// job for every untried sibling option at every depth at or past the prefix
// length. Each schedule the serial DFS would run is the leftmost descent of
// exactly one such prefix, and its full decision sequence is the prefix
// padded with zeros — so the serial execution order is precisely the
// lexicographic order of zero-padded prefixes. That gives a canonical total
// order independent of which worker finished first, which is what makes the
// merge deterministic.

// cmpPadded compares decision prefixes in zero-padded lexicographic order.
func cmpPadded(a, b []int) int {
	n := max(len(a), len(b))
	for i := 0; i < n; i++ {
		av, bv := 0, 0
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// jobHeap is a min-heap of pending prefixes in canonical order.
type jobHeap [][]int

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return cmpPadded(h[i], h[j]) < 0 }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.([]int)) }
func (h *jobHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h jobHeap) min() []int         { return h[0] }

// leafRec is one executed schedule, keyed by the prefix that generated it.
type leafRec struct {
	key    []int
	depth  int
	failed bool
	// result and chosen are kept only for failing schedules; passing
	// ones need nothing beyond depth for the merge.
	result *sim.Result
	chosen []int
	// err records a host-side panic; the schedule still participates in
	// the canonical merge so resumption and backtracking stay aligned.
	err *harness.RunError
}

func systematicParallel(prog sim.Program, opts SystematicOptions, bound, workers int) *SystematicResult {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	pending := &jobHeap{[]int{}}
	var leaves []leafRec
	// A leaf is "settled" once every schedule the serial DFS would run
	// before it has been executed. Because a child prefix always sorts
	// after its parent's leaf and the heap pops the global minimum, every
	// leaf ordered before the smallest pending prefix is settled.
	open := []int{} // indices into leaves not yet settled
	settled := 0
	settledFailure := false
	exhausted := false
	var ctxErr error

	for pending.Len() > 0 {
		if ctxErr = ctx.Err(); ctxErr != nil {
			break
		}
		batch := min(workers, pending.Len())
		jobs := make([][]int, batch)
		for i := range jobs {
			jobs[i] = heap.Pop(pending).([]int)
		}
		recs := make([]leafRec, batch)
		children := make([][][]int, batch)
		var wg sync.WaitGroup
		for i, q := range jobs {
			wg.Add(1)
			go func(i int, q []int) {
				defer wg.Done()
				chosen, options, r, runErr := runSchedule(nil, prog, opts.Config, opts.MaxChoices, bound, q)
				rec := leafRec{key: q, depth: len(chosen), err: runErr}
				if runErr == nil {
					if opts.OnRun != nil {
						opts.OnRun(r, chosen)
					}
					if r.Failed() {
						rec.failed = true
						rec.result = r
						rec.chosen = append([]int(nil), chosen...)
					}
				}
				recs[i] = rec
				// Sibling options at depths before len(q) belong to
				// jobs spawned by this job's ancestors.
				for d := len(q); d < len(chosen); d++ {
					for v := chosen[d] + 1; v < options[d]; v++ {
						child := make([]int, d+1)
						copy(child, chosen[:d])
						child[d] = v
						children[i] = append(children[i], child)
					}
				}
			}(i, q)
		}
		wg.Wait()
		for i := range recs {
			open = append(open, len(leaves))
			leaves = append(leaves, recs[i])
			for _, c := range children[i] {
				heap.Push(pending, c)
			}
		}
		if pending.Len() == 0 {
			exhausted = true
			break
		}
		frontier := pending.min()
		keep := open[:0]
		for _, idx := range open {
			if cmpPadded(leaves[idx].key, frontier) < 0 {
				settled++
				if leaves[idx].failed {
					settledFailure = true
				}
			} else {
				keep = append(keep, idx)
			}
		}
		open = keep
		// Enough settled schedules pin down the serial result: either
		// the run budget is spent on them, or (when stopping at the
		// first failure) a settled failure bounds the search.
		if settled >= opts.MaxRuns || (opts.StopAtFirstFailure && settledFailure) {
			break
		}
	}

	sort.Slice(leaves, func(i, j int) bool { return cmpPadded(leaves[i].key, leaves[j].key) < 0 })
	res := &SystematicResult{Frontier: pending.Len()}
	limit := min(len(leaves), opts.MaxRuns)
	for i := 0; i < limit; i++ {
		res.Runs++
		if leaves[i].depth > res.MaxDepth {
			res.MaxDepth = leaves[i].depth
		}
		if leaves[i].err != nil {
			e := *leaves[i].err
			e.Run = i
			res.Errors = append(res.Errors, &e)
			continue
		}
		if leaves[i].failed {
			res.Failures++
			if res.FirstFailure == nil {
				res.FirstFailure = leaves[i].result
				res.FailureSchedule = leaves[i].chosen
			}
			if opts.StopAtFirstFailure {
				return res.finish(ctxErr, opts.MaxRuns)
			}
		}
	}
	res.Complete = exhausted && len(leaves) <= opts.MaxRuns && ctxErr == nil
	if res.Complete {
		res.Frontier = 0
	}
	return res.finish(ctxErr, opts.MaxRuns)
}

// ReplaySchedule re-executes prog under a recorded decision sequence,
// returning the (deterministic) result — how a failing schedule found by
// Systematic is reproduced for debugging, typically with Trace enabled.
//
// A schedule only reproduces a run of the same program under the same
// Config: if a decision index exceeds the options actually offered at that
// depth, or the run ends before consuming the whole schedule, the schedule
// belongs to a different program and the result would be an arbitrary
// interleaving. Both mismatches return an error (alongside the result of
// the run as executed) instead of being silently coerced.
func ReplaySchedule(prog sim.Program, cfg sim.Config, schedule []int) (*sim.Result, error) {
	choose, check := ScheduleChooser(schedule)
	cfg.Chooser = choose
	r := sim.Run(cfg, prog)
	return r, check()
}

// ScheduleChooser adapts a recorded decision sequence to a sim.Config.Chooser,
// for harnesses that drive the run themselves (the offline-replay suite
// re-executes DPOR-discovered schedules under the detector pipeline and a
// trace recorder). The chooser is single-run; check, called after the run,
// returns ReplaySchedule's mismatch error when the schedule did not fit the
// program, nil when every decision was consumed exactly.
func ScheduleChooser(schedule []int) (choose func(n, preferred int) int, check func() error) {
	depth := 0
	var mismatch error
	choose = func(n, preferred int) int {
		c := 0
		if depth < len(schedule) {
			c = schedule[depth]
		}
		if c >= n || c < 0 {
			if mismatch == nil {
				mismatch = fmt.Errorf(
					"explore: schedule mismatch at decision %d: index %d of %d options — the schedule was recorded against a different program or config",
					depth, c, n)
			}
			c = 0
		}
		depth++
		if preferred >= 0 {
			switch {
			case c == 0:
				return preferred
			case c <= preferred:
				return c - 1
			default:
				return c
			}
		}
		return c
	}
	check = func() error {
		if mismatch == nil && depth < len(schedule) {
			return fmt.Errorf(
				"explore: schedule mismatch: run ended after %d decisions but the schedule holds %d — the schedule was recorded against a different program or config",
				depth, len(schedule))
		}
		return mismatch
	}
	return choose, check
}

// VerifyAllSchedules is the patch-verification entry point: it reports
// whether prog is failure-free on every schedule within the bounds, along
// with the exploration evidence.
func VerifyAllSchedules(prog sim.Program, opts SystematicOptions) (bool, *SystematicResult) {
	res := Systematic(prog, opts)
	return res.Complete && res.Failures == 0, res
}
