package explore

import (
	"goconcbugs/internal/sim"
)

// Systematic schedule exploration: a stateless model checker over the
// simulated runtime's scheduling decisions.
//
// Random seeds (the paper's and Run's protocol) find bugs probabilistically;
// Section 4 notes some bugs needed many runs or hand-inserted sleeps.
// Systematic exploration goes further: because every interleaving of a
// simulated program is a pure function of the sequence of scheduling
// choices (which runnable goroutine next, which ready select case), a
// depth-first enumeration of those choice sequences covers *every* schedule
// of a small program — turning "we never saw it fail" into "it cannot fail
// within the bound". That is the strongest form of the detection direction
// the paper's Implication 4 asks for, and it verifies patches, not just
// finds bugs: a Fixed kernel that passes exhaustive exploration is correct
// for every interleaving, not just 100 sampled ones.
//
// Input randomness (T.Rand) stays fixed by the seed; the exploration is
// over scheduling only, as in stateless model checkers like CHESS.

// SystematicOptions bounds the exploration.
type SystematicOptions struct {
	// Config seeds input randomness and labels runs; its Chooser is
	// overwritten.
	Config sim.Config
	// MaxRuns bounds the number of schedules explored (default 10000).
	MaxRuns int
	// MaxChoices bounds the per-run decision depth that participates in
	// backtracking (default 2000); deeper decisions take the first
	// option. Completeness is relative to this bound.
	MaxChoices int
	// StopAtFirstFailure ends the search at the first failing schedule.
	StopAtFirstFailure bool
	// PreemptionBound, when > 0, explores only schedules with at most
	// that many preemptions (a context switch away from a goroutine that
	// could have kept running) — the CHESS insight that most concurrency
	// bugs need very few preemptions, which shrinks the schedule space by
	// orders of magnitude. Zero or negative means unbounded (full DFS).
	// With a bound, Complete means "complete within the preemption
	// bound".
	PreemptionBound int
}

// SystematicResult summarizes an exploration.
type SystematicResult struct {
	// Runs is the number of schedules executed.
	Runs int
	// Complete is true when every schedule within the depth bound was
	// covered (the search tree was exhausted rather than the run budget).
	Complete bool
	// Failures counts failing schedules; FirstFailure holds the first
	// failing run and FailureSchedule the decision sequence reproducing
	// it (feed it back via ReplaySchedule).
	Failures        int
	FirstFailure    *sim.Result
	FailureSchedule []int
	// MaxDepth is the deepest decision sequence seen.
	MaxDepth int
}

// Systematic explores prog's schedules depth-first.
func Systematic(prog sim.Program, opts SystematicOptions) *SystematicResult {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 10000
	}
	if opts.MaxChoices <= 0 {
		opts.MaxChoices = 2000
	}
	bound := -1 // unbounded
	if opts.PreemptionBound > 0 {
		bound = opts.PreemptionBound
	}
	res := &SystematicResult{}
	var prefix []int
	for res.Runs < opts.MaxRuns {
		var chosen, options []int
		preemptions := 0
		cfg := opts.Config
		// The decision index c is a position in a *reordered* option
		// list with the preferred (non-preempting) option first, so the
		// leftmost DFS path is the preemption-free schedule and the
		// preemption budget prunes consistently across replays.
		cfg.Chooser = func(n, preferred int) int {
			d := len(chosen)
			if d >= opts.MaxChoices {
				if preferred >= 0 {
					return preferred
				}
				return 0
			}
			if bound >= 0 && preferred >= 0 && preemptions >= bound {
				// Out of preemption budget: forced. Recorded with a
				// single option so replay stays aligned and the DFS
				// never branches here.
				chosen = append(chosen, 0)
				options = append(options, 1)
				return preferred
			}
			c := 0
			if d < len(prefix) {
				c = prefix[d]
			}
			if c >= n {
				c = 0
			}
			chosen = append(chosen, c)
			options = append(options, n)
			actual := c
			if preferred >= 0 {
				// Reorder: position 0 = preferred, positions 1..
				// = the remaining options in index order.
				switch {
				case c == 0:
					actual = preferred
				case c <= preferred:
					actual = c - 1
				default:
					actual = c
				}
				if actual != preferred {
					preemptions++
				}
			}
			return actual
		}
		r := sim.Run(cfg, prog)
		res.Runs++
		if len(chosen) > res.MaxDepth {
			res.MaxDepth = len(chosen)
		}
		if r.Failed() {
			res.Failures++
			if res.FirstFailure == nil {
				res.FirstFailure = r
				res.FailureSchedule = append([]int(nil), chosen...)
			}
			if opts.StopAtFirstFailure {
				return res
			}
		}
		// Backtrack: advance the deepest decision that still has an
		// untried option; exhausting all of them completes the search.
		d := len(chosen) - 1
		for ; d >= 0; d-- {
			if chosen[d]+1 < options[d] {
				break
			}
		}
		if d < 0 {
			res.Complete = true
			return res
		}
		prefix = append(prefix[:0], chosen[:d+1]...)
		prefix[d] = chosen[d] + 1
	}
	return res
}

// ReplaySchedule re-executes prog under a recorded decision sequence,
// returning the (deterministic) result — how a failing schedule found by
// Systematic is reproduced for debugging, typically with Trace enabled.
func ReplaySchedule(prog sim.Program, cfg sim.Config, schedule []int) *sim.Result {
	depth := 0
	cfg.Chooser = func(n, preferred int) int {
		c := 0
		if depth < len(schedule) {
			c = schedule[depth]
		}
		depth++
		if c >= n {
			c = 0
		}
		if preferred >= 0 {
			switch {
			case c == 0:
				return preferred
			case c <= preferred:
				return c - 1
			default:
				return c
			}
		}
		return c
	}
	return sim.Run(cfg, prog)
}

// VerifyAllSchedules is the patch-verification entry point: it reports
// whether prog is failure-free on every schedule within the bounds, along
// with the exploration evidence.
func VerifyAllSchedules(prog sim.Program, opts SystematicOptions) (bool, *SystematicResult) {
	res := Systematic(prog, opts)
	return res.Complete && res.Failures == 0, res
}
