package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{Verdict{Status: Confirmed}, "confirmed"},
		{Verdict{Status: Refuted}, "refuted"},
		{Incompletef(ReasonBudget, "10 runs left"), "incomplete (budget: 10 runs left)"},
		{Verdict{Status: Incomplete, Reason: ReasonPanic}, "incomplete (panic)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v renders %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCtxReason(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if r := CtxReason(canceled.Err()); r != ReasonCanceled {
		t.Errorf("canceled context classified %q", r)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if r := CtxReason(expired.Err()); r != ReasonDeadline {
		t.Errorf("expired deadline classified %q", r)
	}
}

func TestCaptureRecordsPanic(t *testing.T) {
	err := Capture(7, 42, func() { panic("kaboom") })
	if err == nil {
		t.Fatal("Capture swallowed the panic silently")
	}
	if err.Run != 7 || err.Seed != 42 || err.PanicValue != "kaboom" {
		t.Fatalf("RunError = %+v", err)
	}
	if !strings.Contains(err.Stack, "harness_test") {
		t.Error("stack trace missing the panicking frame")
	}
	if !strings.Contains(err.Error(), "run 7 (seed 42)") {
		t.Errorf("Error() = %q", err.Error())
	}
	if e := Capture(0, 0, func() {}); e != nil {
		t.Fatalf("clean fn reported %v", e)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	base := errors.New("still broken")
	err := Retry(context.Background(), 3, time.Microsecond, func() error { calls++; return base })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	err := Retry(ctx, 10, time.Hour, func() error {
		calls++
		cancel() // cancel mid-flight: the backoff sleep must not run
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not cut the backoff sleep")
	}
}

// TestRetrySleepSchedule pins the deterministic backoff schedule: doubling
// from the base, capped at MaxBackoff, jitter seeded so equal options replay
// equal sleeps and never stretch a sleep past its un-jittered value.
func TestRetrySleepSchedule(t *testing.T) {
	o := RetryOptions{Attempts: 8, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for i, w := range want {
		if got := o.SleepFor(i); got != w {
			t.Errorf("SleepFor(%d) = %v, want %v", i, got, w)
		}
	}

	j := o
	j.Jitter, j.Seed = 0.5, 42
	for i := 0; i < len(want); i++ {
		a, b := j.SleepFor(i), j.SleepFor(i)
		if a != b {
			t.Fatalf("jittered SleepFor(%d) not deterministic: %v vs %v", i, a, b)
		}
		full := o.SleepFor(i)
		if a > full || a < full/2 {
			t.Errorf("jittered SleepFor(%d) = %v outside [%v, %v]", i, a, full/2, full)
		}
	}
	j2 := j
	j2.Seed = 43
	differs := false
	for i := 0; i < len(want); i++ {
		if j.SleepFor(i) != j2.SleepFor(i) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical jitter schedules")
	}
}

// TestRetryTotalBackoffBounded is the regression the cap exists for: the sum
// of every sleep a retry loop can take stays under (attempts-1)*MaxBackoff —
// exponential growth never outruns the cap, and huge attempt counts do not
// overflow into negative (i.e. zero) sleeps.
func TestRetryTotalBackoffBounded(t *testing.T) {
	o := RetryOptions{Attempts: 200, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond, Jitter: 0.5, Seed: 7}
	var total time.Duration
	for i := 0; i < o.Attempts-1; i++ {
		s := o.SleepFor(i)
		if s < 0 || s > o.MaxBackoff {
			t.Fatalf("SleepFor(%d) = %v outside [0, %v]", i, s, o.MaxBackoff)
		}
		total += s
	}
	if limit := time.Duration(o.Attempts-1) * o.MaxBackoff; total > limit {
		t.Fatalf("total backoff %v exceeds bound %v", total, limit)
	}
}

// TestRetryWithCancelCutsSleep: a cancellation arriving mid-sleep must end
// the wait immediately even when the (capped, jittered) sleep is huge.
func TestRetryWithCancelCutsSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := RetryWith(ctx, RetryOptions{Attempts: 5, Backoff: time.Hour, Jitter: 0.9, Seed: 3}, func() error {
		calls++
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not cut the jittered sleep")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	type state struct {
		Name string  `json:"name"`
		Done []int   `json:"done"`
		Rate float64 `json:"rate"`
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	want := state{Name: "sweep", Done: []int{0, 2, 5}, Rate: 0.5}
	if err := SaveCheckpoint(path, &want); err != nil {
		t.Fatal(err)
	}
	// Overwrite must be atomic-replace, not append.
	want.Done = append(want.Done, 7)
	if err := SaveCheckpoint(path, &want); err != nil {
		t.Fatal(err)
	}
	var got state
	if err := LoadCheckpoint(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Done) != 4 || got.Done[3] != 7 || got.Rate != want.Rate {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want just the checkpoint", len(entries))
	}
}

func TestLoadCheckpointMissingIsNotExist(t *testing.T) {
	var v struct{}
	err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"), &v)
	if !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint yields %v, want os.IsNotExist", err)
	}
}

func TestLoadCheckpointCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	os.WriteFile(path, []byte("{torn"), 0o644)
	var v struct{}
	if err := LoadCheckpoint(path, &v); err == nil || os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint yields %v, want a decode error", err)
	}
}

// TestLoadCheckpointTornWrite: a checkpoint truncated mid-file (the torn
// write SaveCheckpoint's sync+rename exists to prevent, simulated here by
// truncating a valid one) must come back as a structured
// ErrCorruptCheckpoint — never a panic, never os.IsNotExist.
func TestLoadCheckpointTornWrite(t *testing.T) {
	type state struct {
		Name string `json:"name"`
		Done []int  `json:"done"`
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := SaveCheckpoint(path, &state{Name: "sweep", Done: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(whole) / 2, len(whole) - 1} {
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		var v state
		err := LoadCheckpoint(path, &v)
		if err == nil {
			t.Fatalf("checkpoint truncated to %d bytes loaded cleanly", cut)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation to %d bytes yields %v, want ErrCorruptCheckpoint", cut, err)
		}
		if os.IsNotExist(err) {
			t.Fatalf("truncated checkpoint misreported as missing: %v", err)
		}
	}
}

// TestShardPartitions: for many (n, count) shapes the blocks are contiguous,
// disjoint, balanced to within one item, and cover [0, n) exactly.
func TestShardPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 7, 23, 100, 101} {
		for _, count := range []int{1, 2, 3, 4, 16} {
			next, min, max := 0, n, 0
			for i := 0; i < count; i++ {
				lo, hi := Shard(n, count, i)
				if lo != next || hi < lo {
					t.Fatalf("Shard(%d, %d, %d) = [%d, %d): blocks must be contiguous from %d", n, count, i, lo, hi, next)
				}
				next = hi
				sz := hi - lo
				if sz < min {
					min = sz
				}
				if sz > max {
					max = sz
				}
			}
			if next != n {
				t.Fatalf("Shard(%d, %d, *) covers [0, %d), want [0, %d)", n, count, next, n)
			}
			if count > 1 && max-min > 1 {
				t.Fatalf("Shard(%d, %d, *): block sizes range %d..%d, want balanced within 1", n, count, min, max)
			}
		}
	}
}

func TestShardPanicsOnBadIndex(t *testing.T) {
	for _, bad := range [][2]int{{0, 0}, {4, 4}, {4, -1}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(10, %d, %d) did not panic", bad[0], bad[1])
				}
			}()
			Shard(10, bad[0], bad[1])
		}()
	}
}
