// Package harness is the shared hardening layer for the long-running
// exploration harnesses (detect.Sweep, explore.Systematic, the conformance
// sweep). It provides the structured error taxonomy the harnesses report
// instead of crashing (a panic in one detector or kernel must not take down
// a thousand-run sweep), bounded retry for flaky host-side subprocesses,
// and atomic JSON checkpoints so an interrupted sweep resumes instead of
// restarting.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// Status is the top-level outcome of a harness invocation.
type Status int

const (
	// Confirmed: the harness completed enough work to establish the
	// property it was probing for (e.g. at least one run fired a detector).
	Confirmed Status = iota
	// Refuted: every scheduled run completed and none established the
	// property.
	Refuted
	// Incomplete: the harness could not finish — budget or deadline
	// exhaustion, cancellation, or errors — so absence of evidence is not
	// evidence of absence. Reason says why.
	Incomplete
)

var statusNames = [...]string{"confirmed", "refuted", "incomplete"}

func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// Reason classifies why a harness result is Incomplete (empty otherwise).
const (
	ReasonPanic    = "panic"    // a run panicked on the host side
	ReasonDeadline = "deadline" // the context's deadline expired
	ReasonCanceled = "canceled" // the context was canceled
	ReasonBudget   = "budget"   // run/choice budget exhausted with work left
	ReasonRetries  = "retries"  // subprocess retries exhausted
)

// Verdict is the structured outcome attached to harness reports.
type Verdict struct {
	Status Status `json:"status"`
	// Reason is one of the Reason* constants when Status is Incomplete.
	Reason string `json:"reason,omitempty"`
	// Detail is a human-readable elaboration (what was left undone).
	Detail string `json:"detail,omitempty"`
}

func (v Verdict) String() string {
	s := v.Status.String()
	if v.Reason != "" {
		s += " (" + v.Reason
		if v.Detail != "" {
			s += ": " + v.Detail
		}
		s += ")"
	} else if v.Detail != "" {
		s += " (" + v.Detail + ")"
	}
	return s
}

// Incompletef builds an Incomplete verdict with a formatted detail.
func Incompletef(reason, format string, args ...any) Verdict {
	return Verdict{Status: Incomplete, Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// CtxReason maps a context error to the matching Reason constant.
func CtxReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return ReasonDeadline
	}
	return ReasonCanceled
}

// RunError records one panicking run: which run, under which seed, what the
// panic value was and where. It satisfies error so harnesses can fold it
// into errors slices, but it is data first — sweeps keep draining after one.
type RunError struct {
	Run        int    `json:"run"`
	Seed       int64  `json:"seed"`
	PanicValue string `json:"panic"`
	Stack      string `json:"stack,omitempty"`
}

func (e *RunError) Error() string {
	return fmt.Sprintf("run %d (seed %d) panicked: %s", e.Run, e.Seed, e.PanicValue)
}

// Capture runs fn, converting a panic into a *RunError carrying the stack.
// Returns nil when fn completes normally.
func Capture(run int, seed int64, fn func()) (err *RunError) {
	defer func() {
		if v := recover(); v != nil {
			err = &RunError{
				Run:        run,
				Seed:       seed,
				PanicValue: fmt.Sprint(v),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	fn()
	return nil
}

// Retry runs fn up to attempts times, sleeping backoff, 2*backoff, ... between
// failures (context-aware: cancellation cuts both the sleep and the loop).
// It returns nil on the first success, the context error if canceled, and
// otherwise the last failure wrapped with the attempt count.
func Retry(ctx context.Context, attempts int, backoff time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if last = fn(); last == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff << i):
		}
	}
	return fmt.Errorf("%d attempts exhausted: %w", attempts, last)
}

// SaveCheckpoint atomically writes v as JSON to path: the bytes land in a
// temp file in the same directory and are renamed over path, so a reader
// (or a resume after SIGKILL) never observes a torn checkpoint.
func SaveCheckpoint(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: creating checkpoint temp: %w", err)
	}
	_, werr := tmp.Write(data)
	// Sync before the rename publishes the name: without it a power cut can
	// leave the directory entry pointing at never-flushed bytes — exactly
	// the torn checkpoint the temp+rename dance exists to prevent.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("harness: writing checkpoint: %w", werr)
		}
		if serr != nil {
			return fmt.Errorf("harness: syncing checkpoint: %w", serr)
		}
		return fmt.Errorf("harness: closing checkpoint: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: publishing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into v.
// A missing file is reported via os.IsNotExist on the returned error, which
// resuming callers treat as "start fresh".
func LoadCheckpoint(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("harness: decoding checkpoint %s: %w (%w)", path, err, ErrCorruptCheckpoint)
	}
	return nil
}

// ErrCorruptCheckpoint marks a checkpoint file that exists but does not
// decode — a torn write from a crashed kernel or filesystem, not a missing
// file. Callers match it with errors.Is to distinguish "start fresh" from
// "refuse to silently discard progress".
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// Shard partitions n work items into count contiguous blocks and returns the
// half-open range [lo, hi) of block index (0-based). Blocks are balanced to
// within one item and together cover [0, n) exactly, so count processes each
// taking their own block partition the work with no overlap and no gap —
// the seed-range splitting behind sharded sweeps. Out-of-range arguments
// (count < 1, index outside [0, count)) panic: they are caller bugs, and a
// silently empty shard would drop work.
func Shard(n, count, index int) (lo, hi int) {
	if count < 1 || index < 0 || index >= count {
		panic(fmt.Sprintf("harness: Shard(%d, %d, %d): index must be in [0, count)", n, count, index))
	}
	if n < 0 {
		n = 0
	}
	return n * index / count, n * (index + 1) / count
}
