// Package harness is the shared hardening layer for the long-running
// exploration harnesses (detect.Sweep, explore.Systematic, the conformance
// sweep). It provides the structured error taxonomy the harnesses report
// instead of crashing (a panic in one detector or kernel must not take down
// a thousand-run sweep), bounded retry for flaky host-side subprocesses,
// and atomic JSON checkpoints so an interrupted sweep resumes instead of
// restarting.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// Status is the top-level outcome of a harness invocation.
type Status int

const (
	// Confirmed: the harness completed enough work to establish the
	// property it was probing for (e.g. at least one run fired a detector).
	Confirmed Status = iota
	// Refuted: every scheduled run completed and none established the
	// property.
	Refuted
	// Incomplete: the harness could not finish — budget or deadline
	// exhaustion, cancellation, or errors — so absence of evidence is not
	// evidence of absence. Reason says why.
	Incomplete
)

var statusNames = [...]string{"confirmed", "refuted", "incomplete"}

func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// Reason classifies why a harness result is Incomplete (empty otherwise).
const (
	ReasonPanic    = "panic"    // a run panicked on the host side
	ReasonDeadline = "deadline" // the context's deadline expired
	ReasonCanceled = "canceled" // the context was canceled
	ReasonBudget   = "budget"   // run/choice budget exhausted with work left
	ReasonRetries  = "retries"  // subprocess retries exhausted
)

// Verdict is the structured outcome attached to harness reports.
type Verdict struct {
	Status Status `json:"status"`
	// Reason is one of the Reason* constants when Status is Incomplete.
	Reason string `json:"reason,omitempty"`
	// Detail is a human-readable elaboration (what was left undone).
	Detail string `json:"detail,omitempty"`
}

func (v Verdict) String() string {
	s := v.Status.String()
	if v.Reason != "" {
		s += " (" + v.Reason
		if v.Detail != "" {
			s += ": " + v.Detail
		}
		s += ")"
	} else if v.Detail != "" {
		s += " (" + v.Detail + ")"
	}
	return s
}

// Incompletef builds an Incomplete verdict with a formatted detail.
func Incompletef(reason, format string, args ...any) Verdict {
	return Verdict{Status: Incomplete, Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// CtxReason maps a context error to the matching Reason constant.
func CtxReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return ReasonDeadline
	}
	return ReasonCanceled
}

// RunError records one panicking run: which run, under which seed, what the
// panic value was and where. It satisfies error so harnesses can fold it
// into errors slices, but it is data first — sweeps keep draining after one.
type RunError struct {
	Run        int    `json:"run"`
	Seed       int64  `json:"seed"`
	PanicValue string `json:"panic"`
	Stack      string `json:"stack,omitempty"`
}

func (e *RunError) Error() string {
	return fmt.Sprintf("run %d (seed %d) panicked: %s", e.Run, e.Seed, e.PanicValue)
}

// Capture runs fn, converting a panic into a *RunError carrying the stack.
// Returns nil when fn completes normally.
func Capture(run int, seed int64, fn func()) (err *RunError) {
	defer func() {
		if v := recover(); v != nil {
			err = &RunError{
				Run:        run,
				Seed:       seed,
				PanicValue: fmt.Sprint(v),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	fn()
	return nil
}

// DefaultMaxBackoff caps a single retry sleep when RetryOptions.MaxBackoff
// is zero. Uncapped exponential backoff turns a handful of attempts into
// minutes of dead air — precisely the failure mode a fleet scheduler waiting
// on a flapping daemon cannot afford.
const DefaultMaxBackoff = 30 * time.Second

// RetryOptions tunes RetryWith. The zero value means one attempt with no
// sleep; fill Attempts and Backoff for the classic exponential schedule.
type RetryOptions struct {
	// Attempts is the total number of calls to fn (minimum 1).
	Attempts int
	// Backoff is the base sleep before the second attempt; attempt i
	// (0-based) sleeps up to Backoff<<i, capped at MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps every individual sleep (0 = DefaultMaxBackoff). The
	// cap also bounds the total: Attempts-1 sleeps never exceed
	// (Attempts-1)*MaxBackoff no matter how the doubling would grow.
	MaxBackoff time.Duration
	// Jitter is the fraction of each sleep randomized away, in [0, 1): a
	// sleep of d becomes uniform in [d*(1-Jitter), d]. Jitter decorrelates
	// a fleet of retriers hammering one recovering daemon; 0 disables it.
	Jitter float64
	// Seed makes the jitter sequence deterministic: equal options replay
	// equal sleeps, so retry schedules are testable and reproducible.
	Seed uint64
}

// SleepFor returns the (jittered, capped) sleep after failed attempt i
// (0-based). It is a pure function of the options and i — the deterministic
// schedule RetryWith executes and tests pin.
func (o RetryOptions) SleepFor(i int) time.Duration {
	max := o.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := o.Backoff
	// Double step by step instead of shifting by i: backoff<<i overflows
	// for large attempt counts, and past the cap the exact value is moot.
	for k := 0; k < i && d < max; k++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	if o.Jitter > 0 && o.Jitter < 1 {
		// Seeded per (Seed, attempt): deterministic, and attempts are
		// independently jittered rather than replaying one stream offset.
		r := rand.New(rand.NewPCG(o.Seed, uint64(i)))
		d = time.Duration(float64(d) * (1 - o.Jitter*r.Float64()))
	}
	return d
}

// RetryWith runs fn up to o.Attempts times with exponential backoff between
// failures — jittered and capped per o, context-aware throughout: a
// cancellation cuts both the sleep and the loop immediately. It returns nil
// on the first success, the context error if canceled, and otherwise the
// last failure wrapped with the attempt count.
func RetryWith(ctx context.Context, o RetryOptions, fn func() error) error {
	if o.Attempts < 1 {
		o.Attempts = 1
	}
	var last error
	for i := 0; i < o.Attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if last = fn(); last == nil {
			return nil
		}
		if i == o.Attempts-1 {
			break
		}
		sleep := o.SleepFor(i)
		if sleep <= 0 {
			continue
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return fmt.Errorf("%d attempts exhausted: %w", o.Attempts, last)
}

// Retry is RetryWith under the classic signature: exponential backoff from
// the given base, capped at DefaultMaxBackoff, with a deterministic 50%
// jitter (fixed seed 1) that staggers one retrier's successive attempts off
// the pure power-of-two schedule. Because every Retry caller shares the
// seed, identical concurrent retriers compute identical sleeps — callers
// that need decorrelation between retriers must use RetryWith with a
// caller-distinct Seed.
func Retry(ctx context.Context, attempts int, backoff time.Duration, fn func() error) error {
	return RetryWith(ctx, RetryOptions{
		Attempts: attempts, Backoff: backoff, Jitter: 0.5, Seed: 1,
	}, fn)
}

// SaveCheckpoint atomically writes v as JSON to path: the bytes land in a
// temp file in the same directory and are renamed over path, so a reader
// (or a resume after SIGKILL) never observes a torn checkpoint.
func SaveCheckpoint(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: creating checkpoint temp: %w", err)
	}
	_, werr := tmp.Write(data)
	// Sync before the rename publishes the name: without it a power cut can
	// leave the directory entry pointing at never-flushed bytes — exactly
	// the torn checkpoint the temp+rename dance exists to prevent.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("harness: writing checkpoint: %w", werr)
		}
		if serr != nil {
			return fmt.Errorf("harness: syncing checkpoint: %w", serr)
		}
		return fmt.Errorf("harness: closing checkpoint: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: publishing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into v.
// A missing file is reported via os.IsNotExist on the returned error, which
// resuming callers treat as "start fresh".
func LoadCheckpoint(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("harness: decoding checkpoint %s: %w (%w)", path, err, ErrCorruptCheckpoint)
	}
	return nil
}

// ErrCorruptCheckpoint marks a checkpoint file that exists but does not
// decode — a torn write from a crashed kernel or filesystem, not a missing
// file. Callers match it with errors.Is to distinguish "start fresh" from
// "refuse to silently discard progress".
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// Shard partitions n work items into count contiguous blocks and returns the
// half-open range [lo, hi) of block index (0-based). Blocks are balanced to
// within one item and together cover [0, n) exactly, so count processes each
// taking their own block partition the work with no overlap and no gap —
// the seed-range splitting behind sharded sweeps. Out-of-range arguments
// (count < 1, index outside [0, count)) panic: they are caller bugs, and a
// silently empty shard would drop work.
func Shard(n, count, index int) (lo, hi int) {
	if count < 1 || index < 0 || index >= count {
		panic(fmt.Sprintf("harness: Shard(%d, %d, %d): index must be in [0, count)", n, count, index))
	}
	if n < 0 {
		n = 0
	}
	return n * index / count, n * (index + 1) / count
}
