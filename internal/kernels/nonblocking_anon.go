package kernels

import (
	"fmt"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/sim"
)

// The anonymous-function kernels of Table 12 (4 used, 3 detected). "All
// local variables declared before a Go anonymous function are accessible by
// the anonymous function ... developers may not pay enough attention to
// protect such shared local variables" (Section 6.1.1). Nine of the paper's
// eleven bugs of this class race a child created with an anonymous function
// against its parent; the Figure 8 loop-variable capture is the canonical
// instance.

func init() {
	register(Kernel{
		ID:               "docker-apiversion",
		App:              corpus.Docker,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBAnonymous,
		Figure:           8,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "Figure 8: the loop variable i is captured by every " +
			"child goroutine while the parent keeps writing it; the " +
			"children's apiVersion strings are non-deterministic and " +
			"often all equal to the final 'v1.21'.",
		FixDescription: "Pass i as a parameter, giving each goroutine a " +
			"private copy (Private — the lift(anonymous, private) " +
			"correlation of Section 6.2).",
		Buggy: func(t *sim.T) {
			i := sim.NewVar[int](t, "i")
			seen := sim.NewChanNamed[string](t, "seen", 8)
			for k := 17; k <= 21; k++ {
				i.Store(t, k) // write
				t.GoNamed(fmt.Sprintf("child%d", k), func(ct *sim.T) {
					apiVersion := fmt.Sprintf("v1.%d", i.Load(ct)) // read
					seen.Send(ct, apiVersion)
				})
			}
			versions := map[string]bool{}
			for k := 17; k <= 21; k++ {
				v, _ := seen.Recv(t)
				versions[v] = true
			}
			t.Checkf(len(versions) == 5,
				"children saw %d distinct versions, want 5", len(versions))
		},
		Fixed: func(t *sim.T) {
			seen := sim.NewChanNamed[string](t, "seen", 8)
			for k := 17; k <= 21; k++ {
				k := k // the copied parameter of the patch
				t.GoNamed(fmt.Sprintf("child%d", k), func(ct *sim.T) {
					seen.Send(ct, fmt.Sprintf("v1.%d", k))
				})
			}
			versions := map[string]bool{}
			for k := 17; k <= 21; k++ {
				v, _ := seen.Recv(t)
				versions[v] = true
			}
			t.Checkf(len(versions) == 5,
				"children saw %d distinct versions, want 5", len(versions))
		},
	})

	register(Kernel{
		ID:               "kubernetes-anon-err",
		App:              corpus.Kubernetes,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBAnonymous,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "An anonymous retry goroutine assigns the enclosing " +
			"function's err variable while the parent inspects it — " +
			"the parent/child race 9 of the 11 anonymous-function " +
			"bugs exhibit.",
		FixDescription: "Return the error over a channel instead of " +
			"assigning the captured variable (Add_s, Channel).",
		Buggy: func(t *sim.T) {
			err := sim.NewVarInit(t, "err", "")
			t.GoNamed("retry", func(ct *sim.T) {
				ct.Work(sim.Duration(ct.Rand(4)))
				err.Store(ct, "timeout") // races with the parent's read
			})
			t.Work(2)
			_ = err.Load(t)
			t.Sleep(50)
		},
		Fixed: func(t *sim.T) {
			errCh := sim.NewChanNamed[string](t, "errCh", 1)
			t.GoNamed("retry", func(ct *sim.T) {
				ct.Work(sim.Duration(ct.Rand(4)))
				errCh.Send(ct, "timeout")
			})
			v, _ := errCh.Recv(t)
			_ = v
			t.Sleep(50)
		},
	})

	register(Kernel{
		ID:               "cockroachdb-anon-siblings",
		App:              corpus.CockroachDB,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBAnonymous,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "Two sibling goroutines created with anonymous " +
			"functions share the enclosing scope's batch buffer — the " +
			"rarer child/child variant (2 of the paper's 11).",
		FixDescription: "Give each sibling its own buffer (Private).",
		Buggy: func(t *sim.T) {
			batch := sim.NewVarInit(t, "batch", 0)
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed(fmt.Sprintf("flush%d", i), func(ct *sim.T) {
					batch.Store(ct, batch.Load(ct)+1)
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			t.Sleep(20)
		},
		Fixed: func(t *sim.T) {
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed(fmt.Sprintf("flush%d", i), func(ct *sim.T) {
					private := sim.NewVarInit(ct, fmt.Sprintf("batch%d", ct.ID()), 0)
					private.Store(ct, private.Load(ct)+1)
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			t.Sleep(20)
		},
	})

	register(Kernel{
		ID:              "etcd-anon-stale-capture",
		App:             corpus.Etcd,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBAnonymous,
		InDetectorStudy: true,
		Description: "Anonymous member-sync goroutines capture the loop " +
			"variable but only run after a barrier that orders every " +
			"loop-body write before them: no data race exists, yet " +
			"every goroutine syncs the final member instead of its " +
			"own — the anonymous-function bug the race detector " +
			"cannot see (Table 12's undetected fourth).",
		FixDescription: "Capture a per-iteration copy (Private).",
		Buggy: func(t *sim.T) {
			member := sim.NewVar[int](t, "member")
			start := sim.NewChanNamed[struct{}](t, "start", 0)
			synced := sim.NewChanNamed[int](t, "synced", 4)
			for m := 1; m <= 3; m++ {
				member.Store(t, m)
				t.GoNamed(fmt.Sprintf("sync%d", m), func(ct *sim.T) {
					start.Recv(ct) // barrier: runs after the loop
					synced.Send(ct, member.Load(ct))
				})
			}
			start.Close(t) // release the barrier; all writes are ordered before
			distinct := map[int]bool{}
			for m := 1; m <= 3; m++ {
				v, _ := synced.Recv(t)
				distinct[v] = true
			}
			t.Checkf(len(distinct) == 3,
				"synced %d distinct members, want 3", len(distinct))
		},
		Fixed: func(t *sim.T) {
			start := sim.NewChanNamed[struct{}](t, "start", 0)
			synced := sim.NewChanNamed[int](t, "synced", 4)
			for m := 1; m <= 3; m++ {
				m := m
				t.GoNamed(fmt.Sprintf("sync%d", m), func(ct *sim.T) {
					start.Recv(ct)
					synced.Send(ct, m)
				})
			}
			start.Close(t)
			distinct := map[int]bool{}
			for m := 1; m <= 3; m++ {
				v, _ := synced.Recv(t)
				distinct[v] = true
			}
			t.Checkf(len(distinct) == 3,
				"synced %d distinct members, want 3", len(distinct))
		},
	})
}
