package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/sim"
)

// Supplementary kernels beyond the Table 8 / Table 12 reproduction sets,
// covering dataset cells that otherwise have no runnable instance: the
// Kubernetes RWMutex bugs, a receive-side Chan-w/ bug, a channel-to-channel
// circular wait, a context leak from a forgotten cancel, and a second
// select-nondeterminism bug.

func init() {
	register(Kernel{
		ID:         "kubernetes-rwmutex-nested-read",
		App:        corpus.Kubernetes,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassRWMutex,
		Description: "An informer callback read-locks the cache and calls a " +
			"helper that read-locks it again; a writer's update request " +
			"lands in between and Go's writer priority wedges both — " +
			"the same Go-specific semantics as Section 5.1.1, in its " +
			"Kubernetes incarnation.",
		FixDescription: "Pass the already-read snapshot to the helper " +
			"instead of re-locking (Rm_s).",
		Buggy: func(t *sim.T) {
			cache := sim.NewRWMutex(t, "cache.rw")
			listLocked := func(tt *sim.T) {
				cache.RLock(tt) // nested read lock
				cache.RUnlock(tt)
			}
			t.GoNamed("callback", func(tt *sim.T) {
				cache.RLock(tt)
				tt.Work(10) // the writer arrives here
				listLocked(tt)
				cache.RUnlock(tt)
			})
			t.GoNamed("updater", func(tt *sim.T) {
				tt.Sleep(5)
				cache.Lock(tt)
				cache.Unlock(tt)
			})
			t.Sleep(100)
		},
		Fixed: func(t *sim.T) {
			cache := sim.NewRWMutex(t, "cache.rw")
			list := func(tt *sim.T) { /* operates on the snapshot */ }
			t.GoNamed("callback", func(tt *sim.T) {
				cache.RLock(tt)
				tt.Work(10)
				snapshotList := list
				cache.RUnlock(tt)
				snapshotList(tt)
			})
			t.GoNamed("updater", func(tt *sim.T) {
				tt.Sleep(5)
				cache.Lock(tt)
				cache.Unlock(tt)
			})
			t.Sleep(100)
		},
	})

	register(Kernel{
		ID:         "grpc-chanw-recv-under-lock",
		App:        corpus.GRPC,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassChanWith,
		Description: "The control loop *receives* from its buffer while " +
			"holding the transport lock; the producer needs that lock " +
			"before it can send — the receive-side mirror of Figure 7.",
		FixDescription: "Receive outside the critical section (Move_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "transport.mu")
			controlBuf := sim.NewChanNamed[int](t, "controlBuf", 0)
			t.GoNamed("loopy", func(tt *sim.T) {
				mu.Lock(tt)
				controlBuf.Recv(tt) // blocks holding transport.mu
				mu.Unlock(tt)
			})
			t.GoNamed("producer", func(tt *sim.T) {
				tt.Sleep(5)
				mu.Lock(tt) // blocks: loopy holds it
				mu.Unlock(tt)
				controlBuf.Send(tt, 1)
			})
			t.Sleep(100)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "transport.mu")
			controlBuf := sim.NewChanNamed[int](t, "controlBuf", 0)
			t.GoNamed("loopy", func(tt *sim.T) {
				v, _ := controlBuf.Recv(tt) // receive first ...
				mu.Lock(tt)                 // ... lock to apply
				_ = v
				mu.Unlock(tt)
			})
			t.GoNamed("producer", func(tt *sim.T) {
				tt.Sleep(5)
				mu.Lock(tt)
				mu.Unlock(tt)
				controlBuf.Send(tt, 1)
			})
			t.Sleep(100)
		},
	})

	register(Kernel{
		ID:         "etcd-chan-circular",
		App:        corpus.Etcd,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassChan,
		Description: "Two peers each send their snapshot before receiving " +
			"the other's, over unbuffered channels: a circular wait " +
			"made purely of channel operations.",
		FixDescription: "Make the exchange asymmetric: one side receives " +
			"first (Move_s).",
		Buggy: func(t *sim.T) {
			aToB := sim.NewChanNamed[int](t, "aToB", 0)
			bToA := sim.NewChanNamed[int](t, "bToA", 0)
			t.GoNamed("peerA", func(tt *sim.T) {
				aToB.Send(tt, 1) // blocks: B is sending too
				bToA.Recv(tt)
			})
			t.GoNamed("peerB", func(tt *sim.T) {
				bToA.Send(tt, 2) // blocks: A is sending too
				aToB.Recv(tt)
			})
			t.Sleep(100)
		},
		Fixed: func(t *sim.T) {
			aToB := sim.NewChanNamed[int](t, "aToB", 0)
			bToA := sim.NewChanNamed[int](t, "bToA", 0)
			t.GoNamed("peerA", func(tt *sim.T) {
				aToB.Send(tt, 1)
				bToA.Recv(tt)
			})
			t.GoNamed("peerB", func(tt *sim.T) {
				aToB.Recv(tt) // receive first: breaks the cycle
				bToA.Send(tt, 2)
			})
			t.Sleep(100)
		},
	})

	register(Kernel{
		ID:         "docker-context-cancel-leak",
		App:        corpus.Docker,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassChan,
		Description: "A per-request worker waits on ctx.Done() and a job " +
			"channel, but the request path returns without calling " +
			"cancel and without closing the jobs channel: the worker " +
			"(and the context's propagation goroutine) outlive the " +
			"request forever.",
		FixDescription: "Defer the cancel so the worker's ctx.Done() case " +
			"fires (Add_s).",
		Buggy: contextCancelLeak(false),
		Fixed: contextCancelLeak(true),
	})

	register(Kernel{
		ID:         "docker-semaphore-leak",
		App:        corpus.Docker,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassChan,
		Description: "A pull-concurrency semaphore (the buffered-channel " +
			"idiom) is acquired before the layer download, but the " +
			"checksum-failure path returns without releasing; once " +
			"enough failures accumulate, every later pull starves on " +
			"Acquire.",
		FixDescription: "Release on every return path (Add_s).",
		Buggy:          semaphoreLeak(false),
		Fixed:          semaphoreLeak(true),
	})

	register(Kernel{
		ID:       "kubernetes-map-race",
		App:      corpus.Kubernetes,
		Behavior: corpus.NonBlocking,
		NBCause:  corpus.NBTraditional,
		Description: "Two controllers update the shared label map without " +
			"the store lock; overlapping writes hit the runtime's " +
			"best-effort check and crash with 'concurrent map writes' " +
			"— the production face of a traditional data race.",
		FixDescription: "Guard the map with the store mutex (Add_s, Mutex).",
		Buggy:          mapRace(false),
		Fixed:          mapRace(true),
	})

	register(Kernel{
		ID:       "docker-select-stop-race",
		App:      corpus.Docker,
		Behavior: corpus.NonBlocking,
		NBCause:  corpus.NBChan,
		Description: "A log flusher selects between a flush signal and a " +
			"stop signal; when both are pending, the runtime's random " +
			"choice can flush into the already-rotated file — the " +
			"second select-nondeterminism bug of the dataset's three.",
		FixDescription: "Check the stop signal before selecting (Add_s).",
		Buggy:          selectStopRace(false),
		Fixed:          selectStopRace(true),
	})
}

func contextCancelLeak(deferCancel bool) sim.Program {
	return func(t *sim.T) {
		root, rootCancel := sim.WithCancel(t, sim.Background(t))
		handle := func(tt *sim.T) {
			ctx, cancel := sim.WithCancel(tt, root)
			jobs := sim.NewChanNamed[int](tt, "jobs", 0)
			tt.GoNamed("worker", func(wt *sim.T) {
				for {
					done := false
					sim.Select(wt,
						sim.OnRecv(jobs, func(v int, ok bool) { done = !ok }),
						sim.OnRecv(ctx.Done(), func(struct{}, bool) { done = true }),
					)
					if done {
						return
					}
				}
			})
			jobs.Send(tt, 1)
			if deferCancel {
				cancel(tt) // the patch: the worker sees Done and exits
			}
			_ = cancel
		}
		handle(t)
		t.Sleep(100)
		// The service keeps running; root is cancelled only at process
		// shutdown, which never happens within the window.
		_ = rootCancel
	}
}

func semaphoreLeak(releaseOnError bool) sim.Program {
	return func(t *sim.T) {
		sem := sim.NewSemaphore(t, "pullLimit", 1)
		pull := func(tt *sim.T, corrupt bool) {
			sem.Acquire(tt)
			tt.Work(5) // download
			if corrupt {
				if releaseOnError {
					sem.Release(tt)
				}
				return // checksum mismatch
			}
			sem.Release(tt)
		}
		t.GoNamed("pull1", func(tt *sim.T) { pull(tt, true) })
		t.GoNamed("pull2", func(tt *sim.T) {
			tt.Sleep(10)
			pull(tt, false) // starves behind the leaked slot
		})
		t.Sleep(100)
	}
}

func mapRace(guarded bool) sim.Program {
	return func(t *sim.T) {
		labels := sim.NewMapVar[string, string](t, "pod.labels")
		mu := sim.NewMutex(t, "store.mu")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for g := 0; g < 2; g++ {
			g := g
			t.GoNamed("controller", func(ct *sim.T) {
				for i := 0; i < 3; i++ {
					if guarded {
						mu.Lock(ct)
					}
					labels.Store(ct, "owner", string(rune('a'+g)))
					if guarded {
						mu.Unlock(ct)
					}
				}
				wg.Done(ct)
			})
		}
		wg.Wait(t)
	}
}

func selectStopRace(fixed bool) sim.Program {
	return func(t *sim.T) {
		flush := sim.NewChanNamed[struct{}](t, "flush", 1)
		stop := sim.NewChanNamed[struct{}](t, "stop", 1)
		rotated := sim.NewAtomicInt64(t, "rotated")
		badFlush := sim.NewAtomicInt64(t, "badFlush")
		t.GoNamed("flusher", func(tt *sim.T) {
			for {
				if fixed {
					stopNow := false
					sim.Select(tt,
						sim.OnRecv(stop, func(struct{}, bool) { stopNow = true }),
						sim.Default(nil),
					)
					if stopNow {
						return
					}
				}
				stopNow := false
				sim.Select(tt,
					sim.OnRecv(stop, func(struct{}, bool) { stopNow = true }),
					sim.OnRecv(flush, func(struct{}, bool) {
						if rotated.Load(tt) == 1 {
							badFlush.Store(tt, 1) // wrote into the rotated file
						}
						tt.Work(5)
					}),
				)
				if stopNow {
					return
				}
			}
		})
		// Queue one flush, then rotate + stop while the flusher is busy,
		// so both channels are pending when it next selects.
		flush.Send(t, struct{}{})
		t.Sleep(2)
		flush.Send(t, struct{}{})
		rotated.Store(t, 1)
		stop.Send(t, struct{}{})
		t.Sleep(50)
		t.Check(badFlush.Load(t) == 0, "flushed after rotation (select nondeterminism)")
	}
}
