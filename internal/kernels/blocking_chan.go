package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/sim"
)

// The Chan-class blocking kernels of Table 8 (10 used, 0 detected). "Many of
// the channel-related blocking bugs are caused by the missing of a send to
// (or receive from) a channel or closing a channel" (Section 5.1.2). In
// every kernel the surrounding service keeps running (or exits), so the
// built-in detector — which needs the whole process asleep — misses all of
// them; the leak detector flags every one.

func init() {
	register(Kernel{
		ID:              "kubernetes-finishreq",
		App:             corpus.Kubernetes,
		Issue:           "kubernetes#5316",
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		Figure:          1,
		InDetectorStudy: true,
		Description: "Figure 1: finishReq runs fn in a child goroutine " +
			"that sends its result on an unbuffered channel; when the " +
			"select takes the timeout case, nobody ever receives and " +
			"the child blocks forever.",
		FixDescription: "Make the channel buffered (capacity 1) so the " +
			"child can always deposit its result (Misc., the paper's " +
			"unbuffered->buffered strategy).",
		Buggy:               finishReqProgram(0),
		Fixed:               finishReqProgram(1),
		ExpectBuiltinDetect: false,
	})

	register(Kernel{
		ID:              "etcd-context-switch",
		App:             corpus.Etcd,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		Figure:          6,
		InDetectorStudy: true,
		Description: "Figure 6: a cancellable context (and the goroutine " +
			"attached to it) is created unconditionally, then the " +
			"variable is re-assigned to a WithTimeout context when a " +
			"timeout is configured; the first context's goroutine can " +
			"no longer be reached or cancelled.",
		FixDescription: "Create exactly one context: WithTimeout when " +
			"timeout > 0, WithCancel otherwise (Move_s).",
		Buggy: func(t *sim.T) {
			root, rootCancel := sim.WithCancel(t, sim.Background(t))
			_ = rootCancel // the request context outlives this call
			timeout := sim.Duration(50)
			// Buggy: the unconditional WithCancel attaches a
			// propagation goroutine that is orphaned below.
			hctx, hcancel := sim.WithCancel(t, root)
			if timeout > 0 {
				hctx, hcancel = sim.WithTimeout(t, root, timeout)
			}
			useRequestContext(t, hctx)
			hcancel(t)
		},
		Fixed: func(t *sim.T) {
			root, rootCancel := sim.WithCancel(t, sim.Background(t))
			_ = rootCancel
			timeout := sim.Duration(50)
			var hctx *sim.Context
			var hcancel sim.CancelFunc
			if timeout > 0 {
				hctx, hcancel = sim.WithTimeout(t, root, timeout)
			} else {
				hctx, hcancel = sim.WithCancel(t, root)
			}
			useRequestContext(t, hctx)
			hcancel(t)
		},
	})

	register(Kernel{
		ID:              "docker-missing-close",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "An event producer returns on an error path without " +
			"closing its channel, so the draining consumer waits for " +
			"the next event forever.",
		FixDescription: "Close the channel on every return path (Add_s).",
		Buggy:          missingCloseProgram(false),
		Fixed:          missingCloseProgram(true),
	})

	register(Kernel{
		ID:              "grpc-missing-send",
		App:             corpus.GRPC,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A connection handler returns early on a dial error " +
			"without sending on its error channel; the RPC waiter " +
			"blocks on the receive forever.",
		FixDescription: "Send the error before returning (Add_s).",
		Buggy:          missingSendProgram(false),
		Fixed:          missingSendProgram(true),
	})

	register(Kernel{
		ID:              "cockroachdb-nil-chan",
		App:             corpus.CockroachDB,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A channel is only initialized when a feature flag " +
			"is on; with the flag off, a worker sends on the nil " +
			"channel and blocks forever (channels 'can only be used " +
			"after initialization', Section 2.3).",
		FixDescription: "Initialize the channel unconditionally (Misc.).",
		Buggy:          nilChanProgram(false),
		Fixed:          nilChanProgram(true),
	})

	register(Kernel{
		ID:              "kubernetes-select-stuck",
		App:             corpus.Kubernetes,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A watcher selects on an update channel that no " +
			"producer feeds after a reconfiguration, with no other " +
			"case to fall through to.",
		FixDescription: "Add a case on the shutdown channel (Add_s, the " +
			"paper's 'case with operation on a different channel').",
		Buggy: func(t *sim.T) {
			updates := sim.NewChanNamed[int](t, "updates", 0)
			t.GoNamed("watcher", func(tt *sim.T) {
				sim.Select(tt, sim.OnRecv(updates, nil)) // stuck
			})
			t.Sleep(20) // serve a while, then shut down
		},
		Fixed: func(t *sim.T) {
			updates := sim.NewChanNamed[int](t, "updates", 0)
			stopCh := sim.NewChanNamed[struct{}](t, "stopCh", 0)
			t.GoNamed("watcher", func(tt *sim.T) {
				sim.Select(tt,
					sim.OnRecv(updates, nil),
					sim.OnRecv(stopCh, nil),
				)
			})
			t.Sleep(20)
			stopCh.Close(t)
		},
	})

	register(Kernel{
		ID:              "etcd-double-recv",
		App:             corpus.Etcd,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "Two goroutines wait for the same single completion " +
			"message; only one receive can ever be matched and the " +
			"other waiter leaks.",
		FixDescription: "Close the channel instead of sending one value, " +
			"broadcasting completion to all waiters (Misc.).",
		Buggy: func(t *sim.T) {
			ready := sim.NewChanNamed[struct{}](t, "ready", 0)
			for i := 0; i < 2; i++ {
				t.GoNamed("waiter", func(tt *sim.T) {
					ready.Recv(tt)
				})
			}
			t.Sleep(5)
			ready.Send(t, struct{}{}) // wakes only one waiter
			t.Sleep(20)
		},
		Fixed: func(t *sim.T) {
			ready := sim.NewChanNamed[struct{}](t, "ready", 0)
			for i := 0; i < 2; i++ {
				t.GoNamed("waiter", func(tt *sim.T) {
					ready.Recv(tt)
				})
			}
			t.Sleep(5)
			ready.Close(t)
			t.Sleep(20)
		},
	})

	register(Kernel{
		ID:              "docker-buffered-full",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A log producer pushes into a fixed buffer while the " +
			"consumer aborts after an error; once the buffer fills, " +
			"the producer blocks with no consumer left.",
		FixDescription: "Drain the channel on the consumer's error path " +
			"(Add_s).",
		Buggy: bufferedFullProgram(false),
		Fixed: bufferedFullProgram(true),
	})

	register(Kernel{
		ID:              "grpc-workers-leak",
		App:             corpus.GRPC,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A dispatcher fans three probes out to an unbuffered " +
			"result channel and returns after the first answer; the " +
			"two losing probes block on their sends forever (the " +
			"classic fastest-reply pattern gone wrong).",
		FixDescription: "Size the buffer to the number of probes (Misc.).",
		Buggy:          fastestReplyProgram(0),
		Fixed:          fastestReplyProgram(3),
	})

	register(Kernel{
		ID:              "kubernetes-shutdown-missed",
		App:             corpus.Kubernetes,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChan,
		InDetectorStudy: true,
		Description: "A periodic syncer selects on its ticker and a stop " +
			"channel nobody ever closes; when the service winds down " +
			"the syncer stays parked in the select forever.",
		FixDescription: "Close the stop channel during shutdown (Add_s).",
		Buggy:          shutdownProgram(false),
		Fixed:          shutdownProgram(true),
	})
}

// finishReqProgram builds Figure 1's finishReq with the given channel
// capacity (0 reproduces the bug; 1 is the patch).
func finishReqProgram(capacity int) sim.Program {
	return func(t *sim.T) {
		finishReq := func(tt *sim.T, work, timeout sim.Duration) (int, bool) {
			ch := sim.NewChanNamed[int](tt, "ch", capacity)
			tt.GoNamed("handler", func(ct *sim.T) {
				ct.Work(work) // result := fn()
				ch.Send(ct, 42)
			})
			got, timedOut := 0, false
			sim.Select(tt,
				sim.OnRecv(ch, func(v int, ok bool) { got = v }),
				sim.OnRecv(sim.After(tt, timeout), func(int64, bool) { timedOut = true }),
			)
			return got, timedOut
		}
		// A short request completes; a slow one trips the timeout and
		// (in the buggy variant) strands its handler.
		finishReq(t, 10, 100)
		finishReq(t, 200, 100)
		finishReq(t, 100, 100) // both cases ready: runtime picks randomly
	}
}

// useRequestContext models the request work of Figure 6's RPC call.
func useRequestContext(t *sim.T, ctx *sim.Context) {
	reply := sim.NewChanNamed[int](t, "reply", 1)
	t.GoNamed("rpc", func(tt *sim.T) {
		tt.Work(10)
		reply.Send(tt, 1)
	})
	sim.Select(t,
		sim.OnRecv(reply, nil),
		sim.OnRecv(ctx.Done(), nil),
	)
}

func missingCloseProgram(closeOnError bool) sim.Program {
	return func(t *sim.T) {
		events := sim.NewChanNamed[int](t, "events", 0)
		t.GoNamed("consumer", func(tt *sim.T) {
			for {
				if _, ok := events.Recv(tt); !ok {
					return
				}
			}
		})
		t.GoNamed("producer", func(tt *sim.T) {
			for i := 0; i < 3; i++ {
				events.Send(tt, i)
			}
			if failed := true; failed {
				if closeOnError {
					events.Close(tt)
				}
				return // buggy: consumer keeps waiting
			}
		})
		t.Sleep(100)
	}
}

func missingSendProgram(sendOnError bool) sim.Program {
	return func(t *sim.T) {
		errCh := sim.NewChanNamed[string](t, "errCh", 0)
		t.GoNamed("dialer", func(tt *sim.T) {
			tt.Work(5)
			if dialFailed := true; dialFailed {
				if sendOnError {
					errCh.Send(tt, "dial error")
				}
				return
			}
			errCh.Send(tt, "")
		})
		t.GoNamed("waiter", func(tt *sim.T) {
			errCh.Recv(tt) // leaks when the dialer skipped its send
		})
		t.Sleep(100)
	}
}

func nilChanProgram(initialize bool) sim.Program {
	return func(t *sim.T) {
		var readyCh sim.Chan[struct{}] // nil until initialized
		if initialize {
			readyCh = sim.NewChanNamed[struct{}](t, "readyCh", 1)
		}
		t.GoNamed("reporter", func(tt *sim.T) {
			readyCh.Send(tt, struct{}{}) // send on nil blocks forever
		})
		t.Sleep(50)
	}
}

func bufferedFullProgram(drainOnError bool) sim.Program {
	return func(t *sim.T) {
		logCh := sim.NewChanNamed[int](t, "logCh", 2)
		t.GoNamed("producer", func(tt *sim.T) {
			for i := 0; i < 6; i++ {
				logCh.Send(tt, i)
			}
		})
		t.GoNamed("consumer", func(tt *sim.T) {
			for i := 0; i < 6; i++ {
				v, _ := logCh.Recv(tt)
				if v == 1 { // write error: abort
					if drainOnError {
						for j := i + 1; j < 6; j++ {
							logCh.Recv(tt)
						}
					}
					return
				}
			}
		})
		t.Sleep(100)
	}
}

func fastestReplyProgram(capacity int) sim.Program {
	return func(t *sim.T) {
		results := sim.NewChanNamed[int](t, "results", capacity)
		for i := 0; i < 3; i++ {
			i := i
			t.GoNamed("probe", func(tt *sim.T) {
				tt.Work(sim.Duration(10 * (i + 1)))
				results.Send(tt, i)
			})
		}
		results.Recv(t) // take the fastest, abandon the rest
		t.Sleep(100)
	}
}

func shutdownProgram(closeStop bool) sim.Program {
	return func(t *sim.T) {
		stopCh := sim.NewChanNamed[struct{}](t, "stopCh", 0)
		tick := sim.NewTickerN(t, 10, 4)
		t.GoNamed("syncer", func(tt *sim.T) {
			for {
				stop := false
				sim.Select(tt,
					sim.OnRecv(tick.C, nil),
					sim.OnRecv(stopCh, func(struct{}, bool) { stop = true }),
				)
				if stop {
					return
				}
			}
		})
		t.Sleep(25) // serve a couple of sync rounds
		if closeStop {
			stopCh.Close(t)
		}
	}
}
