package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/sim"
)

// The remaining Table 12 kernels — the WaitGroup order violation (Figure 9),
// the time-library misuse (Figure 12), and the double channel close
// (Figure 10) — none of which are data races, which is exactly why the race
// detector misses all three. Two supplementary kernels reproduce Figure 11
// (select nondeterminism) and etcd#7816 (a race through a context object)
// outside the Table 12 set.

func init() {
	register(Kernel{
		ID:              "etcd-waitgroup-order",
		App:             corpus.Etcd,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBWaitGroup,
		Figure:          9,
		InDetectorStudy: true,
		Description: "Figure 9: nothing guarantees peer.send's Add " +
			"happens before stop's Wait; when Wait runs first it " +
			"returns immediately and the peer is stopped while a send " +
			"is still in flight. WaitGroup operations synchronize, so " +
			"no data race exists.",
		FixDescription: "Move Add into the critical section that Wait's " +
			"caller also takes, so Add either precedes Wait or is " +
			"skipped (Move_s).",
		Buggy: waitGroupOrderProgram(false),
		Fixed: waitGroupOrderProgram(true),
	})

	register(Kernel{
		ID:              "grpc-timer-zero",
		App:             corpus.GRPC,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBMsgLib,
		Figure:          12,
		InDetectorStudy: true,
		Description: "Figure 12: time.NewTimer(0) starts its countdown " +
			"immediately, so with dur <= 0 the timer channel fires at " +
			"once and the wait returns prematurely instead of lasting " +
			"until ctx.Done().",
		FixDescription: "Create the timer only when dur > 0 and select " +
			"on a nil channel otherwise (Bypass).",
		Buggy: timerZeroProgram(false),
		Fixed: timerZeroProgram(true),
	})

	register(Kernel{
		ID:              "docker-24007-double-close",
		App:             corpus.Docker,
		Issue:           "docker#24007",
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBChan,
		Figure:          10,
		InDetectorStudy: true,
		Description: "Figure 10: several goroutines race through the " +
			"select's default branch and each tries to close the " +
			"channel; 'a channel can only be closed once', so the " +
			"second close panics the runtime. Channel operations are " +
			"synchronization, so no data race is reported.",
		FixDescription: "Close through a sync.Once (Add_s, the paper's " +
			"Once fix).",
		Buggy: doubleCloseProgram(false),
		Fixed: doubleCloseProgram(true),
	})

	// ----- Supplementary figure bugs outside the Table 12 set -----

	register(Kernel{
		ID:       "kubernetes-select-ticker",
		App:      corpus.Kubernetes,
		Behavior: corpus.NonBlocking,
		NBCause:  corpus.NBChan,
		Figure:   11,
		Description: "Figure 11: when the stop message and a tick are " +
			"both ready, select picks randomly; choosing the tick " +
			"runs the heavy f() once more after shutdown was " +
			"requested (one of the three select-nondeterminism bugs).",
		FixDescription: "Re-check stopCh at the top of the loop before " +
			"selecting (Add_s).",
		Buggy: selectTickerProgram(false),
		Fixed: selectTickerProgram(true),
	})

	register(Kernel{
		ID:       "etcd-7816-context-value",
		App:      corpus.Etcd,
		Issue:    "etcd#7816",
		Behavior: corpus.NonBlocking,
		NBCause:  corpus.NBLib,
		Description: "etcd#7816: multiple goroutines attached to the " +
			"same context object race on a string field stored in it " +
			"(Section 6.1.1's special-library category).",
		FixDescription: "Copy the field before sharing the context " +
			"(Private).",
		Buggy: func(t *sim.T) {
			authToken := sim.NewVarInit(t, "ctx.authToken", "old")
			ctx := sim.WithValue(t, sim.Background(t), "token", authToken)
			t.GoNamed("refresher", func(ct *sim.T) {
				tok := ctx.Value("token").(*sim.Var[string])
				tok.Store(ct, "new") // races with the reader
			})
			t.GoNamed("request", func(ct *sim.T) {
				tok := ctx.Value("token").(*sim.Var[string])
				_ = tok.Load(ct)
			})
			t.Sleep(50)
		},
		Fixed: func(t *sim.T) {
			authToken := sim.NewVarInit(t, "ctx.authToken", "old")
			snapshot := authToken.Load(t) // private copy
			ctx := sim.WithValue(t, sim.Background(t), "token", snapshot)
			t.GoNamed("refresher", func(ct *sim.T) {
				authToken.Store(ct, "new")
			})
			t.GoNamed("request", func(ct *sim.T) {
				_ = ctx.Value("token").(string)
			})
			t.Sleep(50)
		},
	})
}

func waitGroupOrderProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "peer.mu")
		wg := sim.NewWaitGroup(t, "peer.wg")
		stopped := false // guarded by mu
		connClosed := sim.NewAtomicInt64(t, "conn.closed")
		t.GoNamed("send", func(tt *sim.T) {
			if fixed {
				// Patch: Add inside the critical section, skipped
				// once the peer is stopped.
				mu.Lock(tt)
				if stopped {
					mu.Unlock(tt)
					return
				}
				wg.Add(tt, 1)
				mu.Unlock(tt)
			} else {
				tt.Work(sim.Duration(tt.Rand(4)))
				wg.Add(tt, 1) // buggy: may land after Wait
			}
			tt.Work(2) // the message write itself
			// Invariant: Stop must not have torn the connection down
			// under an in-flight send.
			tt.Check(connClosed.Load(tt) == 0, "send on closed connection after Stop")
			wg.Done(tt)
		})
		t.GoNamed("stop", func(tt *sim.T) {
			tt.Work(sim.Duration(tt.Rand(4)))
			mu.Lock(tt)
			stopped = true
			mu.Unlock(tt)
			wg.Wait(tt)
			connClosed.Store(tt, 1)
		})
		t.Sleep(100)
	}
}

func timerZeroProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		waitWithTimeout := func(tt *sim.T, dur sim.Duration, ctx *sim.Context) string {
			var timeout sim.Chan[int64]
			if fixed {
				if dur > 0 {
					timeout = sim.NewTimer(tt, dur).C
				}
				// dur <= 0: timeout stays nil and never fires.
			} else {
				timer := sim.NewTimer(tt, 0) // starts counting down NOW
				if dur > 0 {
					timer.Reset(tt, dur)
				}
				timeout = timer.C
			}
			why := ""
			sim.Select(tt,
				sim.OnRecv(timeout, func(int64, bool) { why = "timeout" }),
				sim.OnRecv(ctx.Done(), func(struct{}, bool) { why = "ctx" }),
			)
			return why
		}
		ctx, cancel := sim.WithCancel(t, sim.Background(t))
		t.GoNamed("canceller", func(tt *sim.T) {
			tt.Sleep(20)
			cancel(tt)
		})
		why := waitWithTimeout(t, 0, ctx) // dur <= 0: must wait for ctx
		t.Checkf(why == "ctx", "returned prematurely via %q with dur<=0", why)
	}
}

func doubleCloseProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		closed := sim.NewChanNamed[struct{}](t, "c.closed", 0)
		once := sim.NewOnce(t, "closeOnce")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for i := 0; i < 2; i++ {
			t.GoNamed("shutdown", func(tt *sim.T) {
				defer wg.Done(tt)
				sim.Select(tt,
					sim.OnRecv(closed, nil),
					sim.Default(func() {
						if fixed {
							once.Do(tt, func(ot *sim.T) { closed.Close(ot) })
							return
						}
						closed.Close(tt) // second closer panics
					}),
				)
			})
		}
		wg.Wait(t)
	}
}

func selectTickerProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		stopCh := sim.NewChanNamed[struct{}](t, "stopCh", 1)
		tick := sim.NewTickerN(t, 10, 6)
		ranAfterStop := sim.NewAtomicInt64(t, "ranAfterStop")
		stopRequested := sim.NewAtomicInt64(t, "stopRequested")
		// f() is heavy (Figure 11 line 8): while it runs, both the next
		// tick and the stop message queue up, so the following select
		// has two ready cases and picks one at random.
		f := func(tt *sim.T) {
			if stopRequested.Load(tt) == 1 {
				ranAfterStop.Store(tt, 1)
			}
			tt.Work(15)
		}
		t.GoNamed("loop", func(tt *sim.T) {
			for {
				if fixed {
					// Patch: drain the stop signal first.
					stop := false
					sim.Select(tt,
						sim.OnRecv(stopCh, func(struct{}, bool) { stop = true }),
						sim.Default(nil),
					)
					if stop {
						return
					}
				}
				stop := false
				sim.Select(tt,
					sim.OnRecv(stopCh, func(struct{}, bool) { stop = true }),
					sim.OnRecv(tick.C, func(int64, bool) { f(tt) }),
				)
				if stop {
					return
				}
			}
		})
		t.Sleep(22) // lands while f() for the t=10 tick is running
		stopRequested.Store(t, 1)
		stopCh.Send(t, struct{}{})
		t.Sleep(80)
		t.Check(ranAfterStop.Load(t) == 0, "f() executed after stop (Figure 11)")
	}
}
