package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/sim"
)

// The mixed-primitive ("Chan w/") and messaging-library blocking kernels of
// Table 8 (3 + 1 used; BoltDB#240 is the one detected because it stalls the
// whole process), plus the figure bugs outside the Table 8 set: Figure 5's
// WaitGroup bug (Docker#25384), the Go-specific RWMutex priority deadlock,
// and a lost Cond signal.

func init() {
	register(Kernel{
		ID:                  "boltdb-240-chan-mutex",
		App:                 corpus.BoltDB,
		Issue:               "boltdb#240",
		Behavior:            corpus.Blocking,
		BlockClass:          deadlock.ClassChanWith,
		Figure:              7,
		InDetectorStudy:     true,
		ExpectBuiltinDetect: true,
		Description: "Figure 7: goroutine1 blocks sending a request while " +
			"holding the mutex that goroutine2 needs before it can " +
			"receive; the circular wait spans a channel and a lock. " +
			"Both goroutines are the whole program, so the built-in " +
			"detector fires.",
		FixDescription: "Give the send a select with a default branch so " +
			"it cannot block under the lock (Add_s).",
		Buggy: func(t *sim.T) {
			m := sim.NewMutex(t, "m")
			ch := sim.NewChanNamed[int](t, "ch", 0)
			t.GoNamed("goroutine1", func(tt *sim.T) {
				m.Lock(tt)
				ch.Send(tt, 1) // blocks holding m
				m.Unlock(tt)
			})
			t.Sleep(5)
			m.Lock(t) // blocks: goroutine1 holds m
			ch.Recv(t)
			m.Unlock(t)
		},
		Fixed: func(t *sim.T) {
			m := sim.NewMutex(t, "m")
			ch := sim.NewChanNamed[int](t, "ch", 0)
			t.GoNamed("goroutine1", func(tt *sim.T) {
				m.Lock(tt)
				sim.Select(tt,
					sim.OnSend(ch, 1, nil),
					sim.Default(nil), // drop rather than block
				)
				m.Unlock(tt)
			})
			t.Sleep(5)
			m.Lock(t)
			sim.Select(t, sim.OnRecv(ch, nil), sim.Default(nil))
			m.Unlock(t)
		},
	})

	register(Kernel{
		ID:              "docker-chan-waitgroup",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChanWith,
		InDetectorStudy: true,
		Description: "A collector waits on a WaitGroup whose last worker " +
			"is blocked sending into an unbuffered channel the " +
			"collector only drains after Wait returns — a channel/" +
			"WaitGroup circular wait behind a live daemon.",
		FixDescription: "Drain the channel in a separate goroutine " +
			"spawned before Wait (Move_s).",
		Buggy: func(t *sim.T) {
			wg := sim.NewWaitGroup(t, "wg")
			out := sim.NewChanNamed[int](t, "out", 0)
			wg.Add(t, 1)
			t.GoNamed("worker", func(tt *sim.T) {
				out.Send(tt, 7) // blocks: nobody receives yet
				wg.Done(tt)
			})
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("collector", func(tt *sim.T) {
				wg.Wait(tt) // blocks: Done never runs
				out.Recv(tt)
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 500)
		},
		Fixed: func(t *sim.T) {
			wg := sim.NewWaitGroup(t, "wg")
			out := sim.NewChanNamed[int](t, "out", 0)
			wg.Add(t, 1)
			t.GoNamed("worker", func(tt *sim.T) {
				out.Send(tt, 7)
				wg.Done(tt)
			})
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("drainer", func(tt *sim.T) { out.Recv(tt) })
			t.GoNamed("collector", func(tt *sim.T) {
				wg.Wait(tt)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 500) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "etcd-chan-lock-live",
		App:             corpus.Etcd,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassChanWith,
		InDetectorStudy: true,
		Description: "The raft processor blocks sending a snapshot while " +
			"holding the replica mutex; the applier blocks on that " +
			"mutex; the node's heartbeat loop keeps running, hiding " +
			"the pair from the built-in detector.",
		FixDescription: "Move the channel send out of the critical " +
			"section (Move_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "replica.mu")
			snaps := sim.NewChanNamed[int](t, "snaps", 0)
			t.GoNamed("raft", func(tt *sim.T) {
				mu.Lock(tt)
				snaps.Send(tt, 1) // blocks holding replica.mu
				mu.Unlock(tt)
			})
			t.GoNamed("applier", func(tt *sim.T) {
				tt.Sleep(5)
				mu.Lock(tt) // blocks
				mu.Unlock(tt)
				snaps.Recv(tt)
			})
			heartbeat := sim.NewTickerN(t, 10, 5)
			for i := 0; i < 4; i++ {
				heartbeat.C.Recv(t)
			}
			heartbeat.Stop(t)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "replica.mu")
			snaps := sim.NewChanNamed[int](t, "snaps", 0)
			t.GoNamed("raft", func(tt *sim.T) {
				mu.Lock(tt)
				mu.Unlock(tt)
				snaps.Send(tt, 1) // send outside the lock
			})
			t.GoNamed("applier", func(tt *sim.T) {
				tt.Sleep(5)
				mu.Lock(tt)
				mu.Unlock(tt)
				snaps.Recv(tt)
			})
			heartbeat := sim.NewTickerN(t, 10, 5)
			for i := 0; i < 4; i++ {
				heartbeat.C.Recv(t)
			}
			heartbeat.Stop(t)
		},
	})

	register(Kernel{
		ID:              "docker-pipe-unclosed",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMessagingLib,
		InDetectorStudy: true,
		Description: "A layer download streams through a Pipe; the reader " +
			"aborts after the first chunk without closing its end, " +
			"leaving the writer blocked in Pipe.Write forever " +
			"(Section 5.1.2's messaging-library category).",
		FixDescription: "Close the reader on every return path so the " +
			"writer's next Write fails fast (Add_s).",
		Buggy: pipeProgram(false),
		Fixed: pipeProgram(true),
	})

	// ----- Figure bugs outside the Table 8 reproduction set -----

	register(Kernel{
		ID:         "docker-25384-waitgroup",
		App:        corpus.Docker,
		Issue:      "docker#25384",
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassWait,
		Figure:     5,
		Description: "Figure 5: Wait() sits inside the plugin loop, so " +
			"the first iteration blocks waiting for len(pm.plugins) " +
			"Done() calls while the later goroutines that would call " +
			"Done() have not even been created.",
		FixDescription: "Move Wait() out of the loop (Move_s).",
		Buggy: func(t *sim.T) {
			plugins := []int{1, 2, 3}
			group := sim.NewWaitGroup(t, "group")
			group.Add(t, len(plugins))
			for range plugins {
				t.GoNamed("plugin", func(tt *sim.T) {
					tt.Work(5)
					group.Done(tt)
				})
				group.Wait(t) // buggy: inside the loop
			}
		},
		Fixed: func(t *sim.T) {
			plugins := []int{1, 2, 3}
			group := sim.NewWaitGroup(t, "group")
			group.Add(t, len(plugins))
			for range plugins {
				t.GoNamed("plugin", func(tt *sim.T) {
					tt.Work(5)
					group.Done(tt)
				})
			}
			group.Wait(t)
		},
	})

	register(Kernel{
		ID:         "cockroachdb-rwmutex-priority",
		App:        corpus.CockroachDB,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassRWMutex,
		Description: "Section 5.1.1's Go-specific RWMutex bug: goroutine A " +
			"read-locks twice with goroutine B's write-lock request " +
			"arriving in between; Go's writer priority blocks A's " +
			"second RLock behind B, and B behind A's first RLock.",
		FixDescription: "Hold a single read lock across the nested call " +
			"(Rm_s).",
		Buggy: func(t *sim.T) {
			rw := sim.NewRWMutex(t, "index.rw")
			t.GoNamed("thA", func(tt *sim.T) {
				rw.RLock(tt)
				tt.Sleep(10) // B's Lock lands here
				rw.RLock(tt) // blocked behind the waiting writer
				rw.RUnlock(tt)
				rw.RUnlock(tt)
			})
			t.GoNamed("thB", func(tt *sim.T) {
				tt.Sleep(5)
				rw.Lock(tt)
				rw.Unlock(tt)
			})
			t.Sleep(100)
		},
		Fixed: func(t *sim.T) {
			rw := sim.NewRWMutex(t, "index.rw")
			t.GoNamed("thA", func(tt *sim.T) {
				rw.RLock(tt)
				tt.Sleep(10)
				// The nested helper no longer re-acquires the lock.
				rw.RUnlock(tt)
			})
			t.GoNamed("thB", func(tt *sim.T) {
				tt.Sleep(5)
				rw.Lock(tt)
				rw.Unlock(tt)
			})
			t.Sleep(100)
		},
	})

	register(Kernel{
		ID:         "docker-cond-missing-signal",
		App:        corpus.Docker,
		Behavior:   corpus.Blocking,
		BlockClass: deadlock.ClassWait,
		Description: "A flow-control waiter calls Cond.Wait() but the " +
			"only Signal() sits on a path the connection teardown " +
			"skips — one of the two Cond bugs in Section 5.1.1's Wait " +
			"category.",
		FixDescription: "Signal on the teardown path too (Add_s).",
		Buggy:          condProgram(false),
		Fixed:          condProgram(true),
	})
}

func pipeProgram(closeReader bool) sim.Program {
	return func(t *sim.T) {
		r, w := sim.NewPipe(t, "layer")
		t.GoNamed("downloader", func(tt *sim.T) {
			for i := 0; i < 3; i++ {
				if _, err := w.Write(tt, []byte{byte(i)}); err != nil {
					return
				}
			}
			w.Close(tt)
		})
		t.GoNamed("extractor", func(tt *sim.T) {
			r.Read(tt)
			// Checksum mismatch: abort.
			if closeReader {
				r.Close(tt)
			}
		})
		t.Sleep(100)
	}
}

func condProgram(signalOnTeardown bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "quota.mu")
		cond := sim.NewCond(t, mu, "quota.cond")
		quota := sim.NewVarInit(t, "quota", 0)
		t.GoNamed("sender", func(tt *sim.T) {
			mu.Lock(tt)
			for quota.Load(tt) == 0 {
				cond.Wait(tt) // leaks when nobody signals
			}
			mu.Unlock(tt)
		})
		t.GoNamed("teardown", func(tt *sim.T) {
			tt.Sleep(10)
			mu.Lock(tt)
			quota.Store(tt, 1)
			mu.Unlock(tt)
			if signalOnTeardown {
				cond.Signal(tt)
			}
		})
		t.Sleep(100)
	}
}
