// Package kernels contains runnable reproductions of the concurrency bugs
// the paper studied.
//
// Each Kernel distills one bug into a pair of sim programs: Buggy encodes
// the synchronization structure of the original buggy code (for the bugs the
// paper shows in Figures 1 and 5–12, often literally that code), and Fixed
// applies the patch the developers landed. Running Buggy under the detectors
// of packages deadlock and race regenerates the paper's Tables 8 and 12;
// running Fixed demonstrates the patch.
//
// The 21 blocking kernels with InDetectorStudy set are the Table 8 set
// (root-cause mix: Mutex 7, Chan 10, Chan w/ 3, Messaging libraries 1); the
// 20 non-blocking ones are the Table 12 set (traditional 13, anonymous
// function 4, WaitGroup 1, lib 1, chan 1). Additional kernels reproduce
// figure bugs outside those sets (e.g. Figure 5's Docker#25384, a Wait-class
// bug Table 8 did not include).
package kernels

import (
	"fmt"
	"sort"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/sim"
)

// Kernel is one reproduced bug.
type Kernel struct {
	// ID is stable and unique, e.g. "kubernetes-finishreq".
	ID string
	// App is the application the bug came from.
	App corpus.App
	// Issue is the upstream issue/PR number when the paper names one.
	Issue string
	// Behavior places the bug on the taxonomy's first dimension.
	Behavior corpus.Behavior
	// BlockClass is the Table 6/8 root-cause class (blocking bugs).
	BlockClass deadlock.BlockClass
	// NBCause is the Table 9/12 root-cause class (non-blocking bugs).
	NBCause corpus.NonBlockingCause
	// Figure is the paper figure showing this bug, 0 if none.
	Figure int
	// InDetectorStudy marks membership in the Table 8 / Table 12
	// reproduction sets.
	InDetectorStudy bool
	// Description explains the bug; FixDescription the landed patch.
	Description    string
	FixDescription string
	// Buggy and Fixed are the two program variants.
	Buggy sim.Program
	Fixed sim.Program
	// MaxSteps overrides the default step budget when non-zero (server
	// kernels that must hit the step limit set this low).
	MaxSteps int64
	// ExpectBuiltinDetect records the paper-reported built-in detector
	// verdict (Table 8); ExpectRaceDetect the race detector verdict
	// (Table 12). Benches compare these expectations with measurements.
	ExpectBuiltinDetect bool
	ExpectRaceDetect    bool
}

// Config returns the sim configuration for running this kernel.
func (k Kernel) Config(seed int64) sim.Config {
	return sim.Config{Seed: seed, MaxSteps: k.MaxSteps, Name: k.ID}
}

var registry []Kernel

func register(k Kernel) {
	if k.Buggy == nil || k.Fixed == nil {
		panic(fmt.Sprintf("kernel %s missing a variant", k.ID))
	}
	registry = append(registry, k)
}

// All returns every kernel, sorted by ID.
func All() []Kernel {
	out := make([]Kernel, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Blocking returns the blocking kernels, sorted by ID.
func Blocking() []Kernel { return filter(func(k Kernel) bool { return k.Behavior == corpus.Blocking }) }

// NonBlocking returns the non-blocking kernels, sorted by ID.
func NonBlocking() []Kernel {
	return filter(func(k Kernel) bool { return k.Behavior == corpus.NonBlocking })
}

// DeadlockStudySet returns the 21 blocking kernels of Table 8.
func DeadlockStudySet() []Kernel {
	return filter(func(k Kernel) bool { return k.Behavior == corpus.Blocking && k.InDetectorStudy })
}

// RaceStudySet returns the 20 non-blocking kernels of Table 12.
func RaceStudySet() []Kernel {
	return filter(func(k Kernel) bool { return k.Behavior == corpus.NonBlocking && k.InDetectorStudy })
}

// ByID looks a kernel up by its ID.
func ByID(id string) (Kernel, bool) {
	for _, k := range registry {
		if k.ID == id {
			return k, true
		}
	}
	return Kernel{}, false
}

func filter(keep func(Kernel) bool) []Kernel {
	var out []Kernel
	for _, k := range All() {
		if keep(k) {
			out = append(out, k)
		}
	}
	return out
}
