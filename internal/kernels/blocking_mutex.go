package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/sim"
)

// The Mutex-class blocking kernels of Table 8 (7 used, 1 detected). All of
// them are "traditional bugs" in the paper's terms — double locking,
// conflicting lock order, forgotten unlocks (Section 5.1.1) — and only
// BoltDB#392 stops the whole program, which is why it is the only one the
// built-in detector catches.

// waitOrTimeout blocks until done delivers or d elapses; it returns whether
// done delivered. This is the bounded wait real servers wrap around
// potentially-stuck work.
func waitOrTimeout(t *sim.T, done sim.Chan[struct{}], d sim.Duration) bool {
	ok := false
	sim.Select(t,
		sim.OnRecv(done, func(struct{}, bool) { ok = true }),
		sim.OnRecv(sim.After(t, d), nil),
	)
	return ok
}

func init() {
	register(Kernel{
		ID:                  "boltdb-392-double-lock",
		App:                 corpus.BoltDB,
		Issue:               "boltdb#392",
		Behavior:            corpus.Blocking,
		BlockClass:          deadlock.ClassMutex,
		InDetectorStudy:     true,
		ExpectBuiltinDetect: true,
		Description: "The main goroutine re-acquires a mutex it already " +
			"holds inside a helper it calls with the lock held; Go " +
			"locks are not reentrant, so the whole program stops — " +
			"the one Mutex bug the built-in detector reports.",
		FixDescription: "Remove the inner lock acquisition (Rm_s).",
		Buggy: func(t *sim.T) {
			db := sim.NewMutex(t, "db.metalock")
			update := func(tt *sim.T) {
				db.Lock(tt) // double lock: blocks forever
				db.Unlock(tt)
			}
			db.Lock(t)
			update(t)
			db.Unlock(t)
		},
		Fixed: func(t *sim.T) {
			db := sim.NewMutex(t, "db.metalock")
			update := func(tt *sim.T) {
				// The patch removed the re-acquisition; the caller
				// already holds the lock.
			}
			db.Lock(t)
			update(t)
			db.Unlock(t)
		},
	})

	register(Kernel{
		ID:              "docker-abba-order",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "Two goroutines acquire the container lock and the " +
			"daemon lock in opposite orders; under the adversarial " +
			"interleaving both block. The serving main goroutine " +
			"times out and moves on, so the built-in detector — " +
			"which needs *every* goroutine asleep — stays silent.",
		FixDescription: "Make both paths take the locks in the same " +
			"order (Move_s).",
		Buggy: func(t *sim.T) {
			a := sim.NewMutex(t, "daemon.mu")
			b := sim.NewMutex(t, "container.mu")
			done := sim.NewChan[struct{}](t, 2)
			t.GoNamed("commit", func(tt *sim.T) {
				a.Lock(tt)
				tt.Sleep(5) // widen the window
				b.Lock(tt)
				b.Unlock(tt)
				a.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			t.GoNamed("inspect", func(tt *sim.T) {
				b.Lock(tt)
				tt.Sleep(5)
				a.Lock(tt)
				a.Unlock(tt)
				b.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 1000)
			waitOrTimeout(t, done, 1000)
		},
		Fixed: func(t *sim.T) {
			a := sim.NewMutex(t, "daemon.mu")
			b := sim.NewMutex(t, "container.mu")
			done := sim.NewChan[struct{}](t, 2)
			t.GoNamed("commit", func(tt *sim.T) {
				a.Lock(tt)
				tt.Sleep(5)
				b.Lock(tt)
				b.Unlock(tt)
				a.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			t.GoNamed("inspect", func(tt *sim.T) {
				a.Lock(tt) // same order as commit
				tt.Sleep(5)
				b.Lock(tt)
				b.Unlock(tt)
				a.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) || !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "kubernetes-missing-unlock",
		App:             corpus.Kubernetes,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "An error path returns without unlocking the pod " +
			"store; the next worker blocks forever on Lock while the " +
			"controller keeps running.",
		FixDescription: "Add the missing unlock on the error path (Add_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "store.mu")
			done := sim.NewChan[struct{}](t, 2)
			work := func(tt *sim.T, fail bool) {
				mu.Lock(tt)
				if fail {
					return // forgot mu.Unlock
				}
				mu.Unlock(tt)
			}
			t.GoNamed("worker1", func(tt *sim.T) {
				work(tt, true)
				done.Send(tt, struct{}{})
			})
			t.GoNamed("worker2", func(tt *sim.T) {
				tt.Sleep(10)
				work(tt, false) // blocks forever
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 1000)
			waitOrTimeout(t, done, 1000)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "store.mu")
			done := sim.NewChan[struct{}](t, 2)
			work := func(tt *sim.T, fail bool) {
				mu.Lock(tt)
				if fail {
					mu.Unlock(tt) // the patch
					return
				}
				mu.Unlock(tt)
			}
			t.GoNamed("worker1", func(tt *sim.T) {
				work(tt, true)
				done.Send(tt, struct{}{})
			})
			t.GoNamed("worker2", func(tt *sim.T) {
				tt.Sleep(10)
				work(tt, false)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) || !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "cockroachdb-double-lock-helper",
		App:             corpus.CockroachDB,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "A replica method takes the store lock and then calls " +
			"a helper that also takes it — double locking inside a " +
			"worker goroutine while the main goroutine keeps serving.",
		FixDescription: "Call the lock-free variant of the helper from " +
			"the locked context (Rm_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "store.mu")
			done := sim.NewChan[struct{}](t, 1)
			getLocked := func(tt *sim.T) {
				mu.Lock(tt) // double lock
				mu.Unlock(tt)
			}
			t.GoNamed("replica", func(tt *sim.T) {
				mu.Lock(tt)
				getLocked(tt)
				mu.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 1000)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "store.mu")
			done := sim.NewChan[struct{}](t, 1)
			getRLocked := func(tt *sim.T) { /* caller holds mu */ }
			t.GoNamed("replica", func(tt *sim.T) {
				mu.Lock(tt)
				getRLocked(tt)
				mu.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "grpc-abba-under-server",
		App:             corpus.GRPC,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "Connection teardown and stream creation take the " +
			"transport and stream locks in opposite orders while the " +
			"accept loop keeps running; the deadlocked pair leaks " +
			"behind a live server.",
		FixDescription: "Release the transport lock before taking the " +
			"stream lock (Move_s).",
		Buggy: func(t *sim.T) {
			transport := sim.NewMutex(t, "transport.mu")
			stream := sim.NewMutex(t, "stream.mu")
			t.GoNamed("teardown", func(tt *sim.T) {
				transport.Lock(tt)
				tt.Sleep(5)
				stream.Lock(tt)
				stream.Unlock(tt)
				transport.Unlock(tt)
			})
			t.GoNamed("newstream", func(tt *sim.T) {
				stream.Lock(tt)
				tt.Sleep(5)
				transport.Lock(tt)
				transport.Unlock(tt)
				stream.Unlock(tt)
			})
			// The accept loop keeps the process busy.
			tick := sim.NewTickerN(t, 20, 8)
			for i := 0; i < 6; i++ {
				tick.C.Recv(t)
			}
			tick.Stop(t)
		},
		Fixed: func(t *sim.T) {
			transport := sim.NewMutex(t, "transport.mu")
			stream := sim.NewMutex(t, "stream.mu")
			done := sim.NewChan[struct{}](t, 2)
			t.GoNamed("teardown", func(tt *sim.T) {
				transport.Lock(tt)
				tt.Sleep(5)
				transport.Unlock(tt) // release before the next lock
				stream.Lock(tt)
				stream.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			t.GoNamed("newstream", func(tt *sim.T) {
				stream.Lock(tt)
				tt.Sleep(5)
				stream.Unlock(tt)
				transport.Lock(tt)
				transport.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) || !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "docker-unlock-skipped-iteration",
		App:             corpus.Docker,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "A loop takes the lock each iteration but a `continue` " +
			"path skips the unlock, so the second iteration self-blocks.",
		FixDescription: "Move the unlock before the continue (Move_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "graph.mu")
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("scanner", func(tt *sim.T) {
				for i := 0; i < 3; i++ {
					mu.Lock(tt)
					if i == 0 {
						continue // forgot mu.Unlock
					}
					mu.Unlock(tt)
				}
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 1000)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "graph.mu")
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("scanner", func(tt *sim.T) {
				for i := 0; i < 3; i++ {
					mu.Lock(tt)
					if i == 0 {
						mu.Unlock(tt)
						continue
					}
					mu.Unlock(tt)
				}
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})

	register(Kernel{
		ID:              "cockroachdb-holder-exits",
		App:             corpus.CockroachDB,
		Behavior:        corpus.Blocking,
		BlockClass:      deadlock.ClassMutex,
		InDetectorStudy: true,
		Description: "A goroutine exits while still holding the gossip " +
			"lock (its unlock was behind a condition that never held), " +
			"starving every later acquirer.",
		FixDescription: "Add a deferred unlock (Add_s).",
		Buggy: func(t *sim.T) {
			mu := sim.NewMutex(t, "gossip.mu")
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("bootstrap", func(tt *sim.T) {
				mu.Lock(tt)
				connected := false
				if connected {
					mu.Unlock(tt) // never reached
				}
			})
			t.GoNamed("client", func(tt *sim.T) {
				tt.Sleep(10)
				mu.Lock(tt) // blocks forever
				mu.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			waitOrTimeout(t, done, 1000)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "gossip.mu")
			done := sim.NewChan[struct{}](t, 1)
			t.GoNamed("bootstrap", func(tt *sim.T) {
				mu.Lock(tt)
				mu.Unlock(tt) // deferred unlock in the patch
			})
			t.GoNamed("client", func(tt *sim.T) {
				tt.Sleep(10)
				mu.Lock(tt)
				mu.Unlock(tt)
				done.Send(tt, struct{}{})
			})
			if !waitOrTimeout(t, done, 1000) {
				t.Fail("fixed variant timed out")
			}
		},
	})
}
