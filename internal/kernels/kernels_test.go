package kernels

import (
	"testing"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/sim"
)

const testRuns = 100

func TestRegistryShape(t *testing.T) {
	if got := len(DeadlockStudySet()); got != 21 {
		t.Errorf("Table 8 set has %d kernels, want 21", got)
	}
	if got := len(RaceStudySet()); got != 20 {
		t.Errorf("Table 12 set has %d kernels, want 20", got)
	}
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.ID] {
			t.Errorf("duplicate kernel id %s", k.ID)
		}
		seen[k.ID] = true
	}
}

func TestTable8CategoryMix(t *testing.T) {
	want := map[deadlock.BlockClass]int{
		deadlock.ClassMutex:        7,
		deadlock.ClassChan:         10,
		deadlock.ClassChanWith:     3,
		deadlock.ClassMessagingLib: 1,
	}
	got := map[deadlock.BlockClass]int{}
	for _, k := range DeadlockStudySet() {
		got[k.BlockClass]++
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("class %s: %d kernels, want %d", c, got[c], n)
		}
	}
}

func TestTable12CategoryMix(t *testing.T) {
	want := map[corpus.NonBlockingCause]int{
		corpus.NBTraditional: 13,
		corpus.NBAnonymous:   4,
		corpus.NBWaitGroup:   1,
		corpus.NBLib:         0, // the lib slot in Table 12 is the time library
		corpus.NBMsgLib:      1,
		corpus.NBChan:        1,
	}
	got := map[corpus.NonBlockingCause]int{}
	for _, k := range RaceStudySet() {
		got[k.NBCause]++
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("cause %s: %d kernels, want %d", c, got[c], n)
		}
	}
}

// TestBuggyVariantsManifest: each buggy kernel must misbehave on at least
// one seed within the study protocol's 100 runs.
func TestBuggyVariantsManifest(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			// Non-blocking bugs that are pure data races have no
			// functional oracle; the race detector is how they are
			// observed, as in the paper's protocol.
			st := explore.Run(k.Buggy, explore.Options{
				Runs:     testRuns,
				Config:   k.Config(0),
				WithRace: k.Behavior == corpus.NonBlocking,
			})
			if st.Manifested == 0 && st.RaceDetectedRuns == 0 {
				t.Fatalf("buggy variant never manifested in %d runs", testRuns)
			}
		})
	}
}

// TestFixedVariantsClean: the landed patch must remove the misbehavior on
// every seed.
func TestFixedVariantsClean(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			st := explore.Run(k.Fixed, explore.Options{
				Runs:   testRuns,
				Config: k.Config(0),
			})
			if st.Manifested != 0 {
				t.Fatalf("fixed variant manifested %d/%d: leak=%q panic=%q check=%q",
					st.Manifested, testRuns, st.SampleLeak, st.SamplePanic, st.SampleCheckFail)
			}
		})
	}
}

// TestBlockingManifestsAsBlocking: blocking kernels must leak or deadlock,
// and the built-in detector verdict must match the paper's Table 8.
func TestBlockingManifestsAsBlocking(t *testing.T) {
	for _, k := range DeadlockStudySet() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			res := sim.Run(k.Config(1), k.Buggy)
			builtin := deadlock.Builtin{}.Detect(res)
			leak := deadlock.Leak{}.Detect(res)
			if !builtin.Detected && !leak.Detected {
				t.Fatalf("no blocking manifestation: outcome=%v", res.Outcome)
			}
			if builtin.Detected != k.ExpectBuiltinDetect {
				t.Fatalf("builtin detected=%v, paper says %v (outcome=%v)",
					builtin.Detected, k.ExpectBuiltinDetect, res.Outcome)
			}
		})
	}
}

// TestRaceDetectorMatchesTable12: over 100 seeded runs, the race detector
// must detect exactly the kernels the paper's Table 12 reports detected.
func TestRaceDetectorMatchesTable12(t *testing.T) {
	for _, k := range RaceStudySet() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			st := explore.Run(k.Buggy, explore.Options{
				Runs:     testRuns,
				Config:   k.Config(0),
				WithRace: true,
			})
			if st.Detected() != k.ExpectRaceDetect {
				t.Fatalf("race detected=%v (%d/%d runs), paper says %v; sample=%s",
					st.Detected(), st.RaceDetectedRuns, st.Runs,
					k.ExpectRaceDetect, st.SampleRace)
			}
		})
	}
}

// TestFixedVariantsRaceFree: no patched kernel may still race.
func TestFixedVariantsRaceFree(t *testing.T) {
	for _, k := range RaceStudySet() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			st := explore.Run(k.Fixed, explore.Options{
				Runs:     testRuns,
				Config:   k.Config(0),
				WithRace: true,
			})
			if st.RaceDetectedRuns != 0 {
				t.Fatalf("fixed variant still races: %s", st.SampleRace)
			}
		})
	}
}

// TestFigureBugsPresent: every figure the paper shows has a kernel.
func TestFigureBugsPresent(t *testing.T) {
	want := map[int]bool{1: true, 5: true, 6: true, 7: true, 8: true, 9: true, 10: true, 11: true, 12: true}
	got := map[int]bool{}
	for _, k := range All() {
		if k.Figure > 0 {
			got[k.Figure] = true
		}
	}
	for f := range want {
		if !got[f] {
			t.Errorf("no kernel reproduces Figure %d", f)
		}
	}
}

// TestKernelsDeterministic: same seed, same outcome.
func TestKernelsDeterministic(t *testing.T) {
	for _, k := range All() {
		a := sim.Run(k.Config(42), k.Buggy)
		b := sim.Run(k.Config(42), k.Buggy)
		if a.Outcome != b.Outcome || a.Steps != b.Steps || len(a.Leaked) != len(b.Leaked) {
			t.Errorf("%s: non-deterministic (outcome %v/%v steps %d/%d)",
				k.ID, a.Outcome, b.Outcome, a.Steps, b.Steps)
		}
	}
}

// TestCorpusKernelLinksResolve: every corpus record that claims a runnable
// kernel must point at a registered one, every reproduced record must link
// a study-set kernel of the matching behavior and app, and every study-set
// kernel must be reachable from the dataset.
func TestCorpusKernelLinksResolve(t *testing.T) {
	linked := map[string]bool{}
	for _, b := range corpus.WithKernels() {
		k, ok := ByID(b.KernelID)
		if !ok {
			t.Errorf("%s: kernel %q not registered", b.ID, b.KernelID)
			continue
		}
		linked[k.ID] = true
		if k.Behavior != b.Behavior {
			t.Errorf("%s: behavior mismatch (%s vs %s)", b.ID, b.Behavior, k.Behavior)
		}
		if k.App != b.App {
			t.Errorf("%s: app mismatch (%s vs %s)", b.ID, b.App, k.App)
		}
		if b.Reproduced && !k.InDetectorStudy {
			t.Errorf("%s: reproduced record links non-study kernel %s", b.ID, k.ID)
		}
	}
	for _, k := range All() {
		if k.InDetectorStudy && !linked[k.ID] {
			t.Errorf("study kernel %s has no corpus record", k.ID)
		}
	}
}
