package kernels

import (
	"goconcbugs/internal/corpus"
	"goconcbugs/internal/sim"
)

// The traditional-class non-blocking kernels of Table 12 (13 used, 7
// detected). "More than half of our collected non-blocking bugs are caused
// by traditional problems that also happen in classic languages like C and
// Java, such as atomicity violation, order violation, and data race"
// (Section 6.1.1).
//
// The seven with ExpectRaceDetect carry genuine happens-before races; four
// of those execute the racing statement only on a randomly-taken select
// branch, so — as the paper observed — "around 100 runs were needed before
// the detector reported a bug". The six without ExpectRaceDetect are
// atomicity or order violations whose accesses are all synchronized: no
// data race exists for a happens-before detector to find, yet the behavior
// is wrong (the kernels' Check oracles fail).

func init() {
	register(Kernel{
		ID:               "docker-22985-ref-through-chan",
		App:              corpus.Docker,
		Issue:            "docker#22985",
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "A config object's reference is handed to a worker " +
			"through a channel, but the sender keeps mutating the " +
			"object afterwards — a data race on everything behind the " +
			"reference (the paper's Docker#22985/CockroachDB#6111 " +
			"pattern).",
		FixDescription: "Guard the object with a mutex (Add_s, Mutex).",
		Buggy: func(t *sim.T) {
			cfg := sim.NewVarInit(t, "cfg.image", "v1")
			work := sim.NewChanNamed[*sim.Var[string]](t, "work", 1)
			t.GoNamed("worker", func(tt *sim.T) {
				c, _ := work.Recv(tt)
				_ = c.Load(tt) // races with the post-send mutation
			})
			work.Send(t, cfg)
			cfg.Store(t, "v2") // sender mutates after handing it off
			t.Sleep(50)
		},
		Fixed: func(t *sim.T) {
			mu := sim.NewMutex(t, "cfg.mu")
			cfg := sim.NewVarInit(t, "cfg.image", "v1")
			work := sim.NewChanNamed[*sim.Var[string]](t, "work", 1)
			t.GoNamed("worker", func(tt *sim.T) {
				c, _ := work.Recv(tt)
				mu.Lock(tt)
				_ = c.Load(tt)
				mu.Unlock(tt)
			})
			work.Send(t, cfg)
			mu.Lock(t)
			cfg.Store(t, "v2")
			mu.Unlock(t)
			t.Sleep(50)
		},
	})

	register(Kernel{
		ID:               "cockroachdb-6111-status",
		App:              corpus.CockroachDB,
		Issue:            "cockroachdb#6111",
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "A replica descriptor crosses a channel into the " +
			"store queue while the raft goroutine keeps updating its " +
			"status field.",
		FixDescription: "Send a deep copy into the queue (Private).",
		Buggy: func(t *sim.T) {
			status := sim.NewVarInit(t, "replica.status", 0)
			queue := sim.NewChanNamed[*sim.Var[int]](t, "queue", 1)
			t.GoNamed("queue-worker", func(tt *sim.T) {
				st, _ := queue.Recv(tt)
				_ = st.Load(tt)
			})
			queue.Send(t, status)
			status.Store(t, 2)
			t.Sleep(50)
		},
		Fixed: func(t *sim.T) {
			status := sim.NewVarInit(t, "replica.status", 0)
			queue := sim.NewChanNamed[int](t, "queue", 1)
			t.GoNamed("queue-worker", func(tt *sim.T) {
				v, _ := queue.Recv(tt)
				_ = v
			})
			queue.Send(t, status.Load(t)) // value copy, no sharing
			status.Store(t, 2)
			t.Sleep(50)
		},
	})

	register(Kernel{
		ID:               "kubernetes-lazy-init",
		App:              corpus.Kubernetes,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "Two handlers lazily initialize a shared client with " +
			"an unsynchronized check-then-store, racing on both the " +
			"flag and the client and occasionally initializing twice.",
		FixDescription: "Initialize through sync.Once (Add_s).",
		Buggy: func(t *sim.T) {
			inited := sim.NewVarInit(t, "client.inited", false)
			inits := sim.NewAtomicInt64(t, "inits")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed("handler", func(tt *sim.T) {
					if !inited.Load(tt) {
						tt.Work(sim.Duration(tt.Rand(5)))
						inited.Store(tt, true)
						inits.Add(tt, 1)
					}
					wg.Done(tt)
				})
			}
			wg.Wait(t)
			t.Checkf(inits.Load(t) == 1, "client initialized %d times", inits.Load(t))
		},
		Fixed: func(t *sim.T) {
			once := sim.NewOnce(t, "client.once")
			inits := sim.NewAtomicInt64(t, "inits")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed("handler", func(tt *sim.T) {
					once.Do(tt, func(ot *sim.T) {
						ot.Work(2)
						inits.Add(ot, 1)
					})
					wg.Done(tt)
				})
			}
			wg.Wait(t)
			t.Checkf(inits.Load(t) == 1, "client initialized %d times", inits.Load(t))
		},
	})

	register(Kernel{
		ID:               "grpc-lost-update",
		App:              corpus.GRPC,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "Two streams bump the connection's active-stream " +
			"counter with an unprotected read-modify-write; updates " +
			"are lost under interleaving.",
		FixDescription: "Use an atomic add (Add_s, Atomic).",
		Buggy: func(t *sim.T) {
			active := sim.NewIntVar(t, "conn.active")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed("stream", func(tt *sim.T) {
					active.Incr(tt, 1)
					wg.Done(tt)
				})
			}
			wg.Wait(t)
			t.Checkf(active.Load(t) == 2, "active=%d after 2 increments", active.Load(t))
		},
		Fixed: func(t *sim.T) {
			active := sim.NewAtomicInt64(t, "conn.active")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				t.GoNamed("stream", func(tt *sim.T) {
					active.Add(tt, 1)
					wg.Done(tt)
				})
			}
			wg.Wait(t)
			t.Checkf(active.Load(t) == 2, "active=%d after 2 increments", active.Load(t))
		},
	})

	register(Kernel{
		ID:               "etcd-shutdown-flag",
		App:              corpus.Etcd,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "The closer sets stopped=true while the stream " +
			"worker polls the flag without synchronization.",
		FixDescription: "Replace the flag with a closed channel (Add_s, " +
			"Channel — message passing fixing a shared-memory bug, " +
			"Observation 9).",
		Buggy: func(t *sim.T) {
			stopped := sim.NewVarInit(t, "stream.stopped", false)
			t.GoNamed("worker", func(tt *sim.T) {
				for i := 0; i < 5 && !stopped.Load(tt); i++ {
					tt.Work(5)
				}
			})
			t.Work(7)
			stopped.Store(t, true)
			t.Sleep(100)
		},
		Fixed: func(t *sim.T) {
			stopCh := sim.NewChanNamed[struct{}](t, "stopCh", 0)
			t.GoNamed("worker", func(tt *sim.T) {
				for i := 0; i < 5; i++ {
					stop := false
					sim.Select(tt,
						sim.OnRecv(stopCh, func(struct{}, bool) { stop = true }),
						sim.Default(nil),
					)
					if stop {
						return
					}
					tt.Work(5)
				}
			})
			t.Work(7)
			stopCh.Close(t)
			t.Sleep(100)
		},
	})

	// ----- Races on rarely-taken paths: detected in a minority of runs -----

	register(Kernel{
		ID:               "docker-race-on-error-path",
		App:              corpus.Docker,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "The unsynchronized read of the container's error " +
			"field only happens on the select branch that loses the " +
			"race against normal completion, so most runs never " +
			"execute the racing statement.",
		FixDescription: "Guard the field with the container mutex (Add_s).",
		Buggy:          rarePathRace(false),
		Fixed:          rarePathRace(true),
	})

	register(Kernel{
		ID:               "cockroachdb-rare-retry-read",
		App:              corpus.CockroachDB,
		Behavior:         corpus.NonBlocking,
		NBCause:          corpus.NBTraditional,
		InDetectorStudy:  true,
		ExpectRaceDetect: true,
		Description: "A retry loop consults an unprotected backoff " +
			"statistic, but only when two random select choices both " +
			"pick the retry arm — a race on a deep path.",
		FixDescription: "Read the statistic under the stats mutex (Add_s).",
		Buggy:          deepPathRace(false),
		Fixed:          deepPathRace(true),
	})

	// ----- Not data races at all: invisible to the happens-before detector -----

	register(Kernel{
		ID:              "docker-atomicity-check-act",
		App:             corpus.Docker,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "Quota check and quota consumption sit in two " +
			"separate critical sections; two allocators both pass the " +
			"check and overcommit. Every access is lock-protected — " +
			"no data race — so the race detector has nothing to " +
			"report ('not all non-blocking bugs are data races', " +
			"Section 6.3).",
		FixDescription: "Merge check and act into one critical section " +
			"(Move_s).",
		Buggy: checkActProgram(false),
		Fixed: checkActProgram(true),
	})

	register(Kernel{
		ID:              "kubernetes-order-publish",
		App:             corpus.Kubernetes,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "The pod store publishes its ready flag before " +
			"filling the spec: an order violation. The consumer's " +
			"acquire-load orders the accesses, so there is no data " +
			"race, only a premature read of incomplete data.",
		FixDescription: "Set the flag after the data is complete (Move_s).",
		Buggy:          orderPublishProgram(false),
		Fixed:          orderPublishProgram(true),
	})

	register(Kernel{
		ID:              "etcd-stale-decision",
		App:             corpus.Etcd,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "The lease revoker samples the TTL in one critical " +
			"section and acts on the stale sample in a later one, " +
			"revoking a lease that was just refreshed.",
		FixDescription: "Re-validate under the same lock before acting " +
			"(Move_s).",
		Buggy: staleDecisionProgram(false),
		Fixed: staleDecisionProgram(true),
	})

	register(Kernel{
		ID:              "grpc-send-after-close",
		App:             corpus.GRPC,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "Stream teardown and a pending send each take the " +
			"stream lock, but nothing orders them: the send can be " +
			"applied to a closed stream. All accesses are protected, " +
			"so no race is reported.",
		FixDescription: "Check the closed flag inside the send's " +
			"critical section and fail the send (Add_s).",
		Buggy: sendAfterCloseProgram(false),
		Fixed: sendAfterCloseProgram(true),
	})

	register(Kernel{
		ID:              "cockroachdb-double-apply",
		App:             corpus.CockroachDB,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "Two appliers claim work with a lock-protected read " +
			"followed by a separate lock-protected mark; both observe " +
			"'unclaimed' and the command applies twice.",
		FixDescription: "Claim-and-mark in a single critical section " +
			"(Move_s).",
		Buggy: doubleApplyProgram(false),
		Fixed: doubleApplyProgram(true),
	})

	register(Kernel{
		ID:              "docker-torn-snapshot",
		App:             corpus.Docker,
		Behavior:        corpus.NonBlocking,
		NBCause:         corpus.NBTraditional,
		InDetectorStudy: true,
		Description: "The stats endpoint reads rx and tx in two separate " +
			"critical sections while the collector updates both under " +
			"one lock; the reported pair violates the rx==tx " +
			"invariant. Lock-protected everywhere: no data race.",
		FixDescription: "Snapshot both counters in one critical section " +
			"(Move_s).",
		Buggy: tornSnapshotProgram(false),
		Fixed: tornSnapshotProgram(true),
	})
}

// rarePathRace executes its racing read only when a two-way select picks
// the losing branch (about half of all schedules at one choice point).
func rarePathRace(guarded bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "container.mu")
		errField := sim.NewVarInit(t, "container.err", "")
		okCh := sim.NewChanNamed[struct{}](t, "okCh", 1)
		failCh := sim.NewChanNamed[struct{}](t, "failCh", 1)
		okCh.Send(t, struct{}{})
		failCh.Send(t, struct{}{})
		t.GoNamed("runner", func(tt *sim.T) {
			if guarded {
				mu.Lock(tt)
			}
			errField.Store(tt, "exit 1")
			if guarded {
				mu.Unlock(tt)
			}
		})
		// Both cases are ready; the runtime picks one at random.
		sim.Select(t,
			sim.OnRecv(okCh, nil),
			sim.OnRecv(failCh, func(struct{}, bool) {
				if guarded {
					mu.Lock(t)
				}
				_ = errField.Load(t) // the rarely-run racing read
				if guarded {
					mu.Unlock(t)
				}
			}),
		)
		t.Sleep(50)
	}
}

// deepPathRace requires two consecutive random select choices to reach the
// racing read (~a quarter of schedules).
func deepPathRace(guarded bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "stats.mu")
		backoff := sim.NewVarInit(t, "stats.backoff", 1)
		t.GoNamed("tuner", func(tt *sim.T) {
			if guarded {
				mu.Lock(tt)
			}
			backoff.Store(tt, 2)
			if guarded {
				mu.Unlock(tt)
			}
		})
		retry := 0
		for depth := 0; depth < 2; depth++ {
			a := sim.NewChan[struct{}](t, 1)
			b := sim.NewChan[struct{}](t, 1)
			a.Send(t, struct{}{})
			b.Send(t, struct{}{})
			sim.Select(t,
				sim.OnRecv(a, nil),
				sim.OnRecv(b, func(struct{}, bool) { retry++ }),
			)
		}
		if retry == 2 {
			if guarded {
				mu.Lock(t)
			}
			_ = backoff.Load(t)
			if guarded {
				mu.Unlock(t)
			}
		}
		t.Sleep(50)
	}
}

func checkActProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "quota.mu")
		free := sim.NewVarInit(t, "quota.free", 1)
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for i := 0; i < 2; i++ {
			t.GoNamed("allocator", func(tt *sim.T) {
				defer wg.Done(tt)
				if fixed {
					mu.Lock(tt)
					if free.Load(tt) > 0 {
						free.Store(tt, free.Load(tt)-1)
					}
					mu.Unlock(tt)
					return
				}
				mu.Lock(tt)
				ok := free.Load(tt) > 0 // check ...
				mu.Unlock(tt)
				if ok {
					tt.Work(sim.Duration(tt.Rand(4)))
					mu.Lock(tt) // ... act, too late
					free.Store(tt, free.Load(tt)-1)
					mu.Unlock(tt)
				}
			})
		}
		wg.Wait(t)
		mu.Lock(t)
		t.Checkf(free.Load(t) >= 0, "quota overcommitted: free=%d", free.Load(t))
		mu.Unlock(t)
	}
}

func orderPublishProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		ready := sim.NewAtomicInt64(t, "pod.ready")
		spec := sim.NewAtomicInt64(t, "pod.spec")
		t.GoNamed("writer", func(tt *sim.T) {
			if fixed {
				spec.Store(tt, 42)
				ready.Store(tt, 1)
				return
			}
			ready.Store(tt, 1) // published before the data exists
			tt.Work(5)
			spec.Store(tt, 42)
		})
		t.GoNamed("reader", func(tt *sim.T) {
			for i := 0; i < 50 && ready.Load(tt) == 0; i++ {
				tt.Work(1)
			}
			if ready.Load(tt) == 1 {
				tt.Checkf(spec.Load(tt) == 42,
					"read incomplete pod: spec=%d", spec.Load(tt))
			}
		})
		t.Sleep(200)
	}
}

func staleDecisionProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "lease.mu")
		ttl := sim.NewVarInit(t, "lease.ttl", 0)
		revokedAtTTL := sim.NewVarInit(t, "lease.revokedAtTTL", -1)
		revoke := func(tt *sim.T) { // caller holds mu
			revokedAtTTL.Store(tt, ttl.Load(tt))
		}
		t.GoNamed("refresher", func(tt *sim.T) {
			tt.Work(3)
			mu.Lock(tt)
			ttl.Store(tt, 10)
			mu.Unlock(tt)
		})
		t.GoNamed("revoker", func(tt *sim.T) {
			mu.Lock(tt)
			expired := ttl.Load(tt) == 0
			if fixed {
				// Validate and act under one lock.
				if expired {
					revoke(tt)
				}
				mu.Unlock(tt)
				return
			}
			mu.Unlock(tt)
			tt.Work(5) // the refresh lands here
			if expired {
				mu.Lock(tt)
				revoke(tt) // acting on a stale sample
				mu.Unlock(tt)
			}
		})
		t.Sleep(100)
		mu.Lock(t)
		if at := revokedAtTTL.Load(t); at != -1 {
			// A correct revoker only ever revokes an expired lease.
			t.Checkf(at == 0, "revoked a live lease (ttl was %d)", at)
		}
		mu.Unlock(t)
	}
}

func sendAfterCloseProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "stream.mu")
		closed := sim.NewVarInit(t, "stream.closed", false)
		sent := sim.NewVarInit(t, "stream.sentAfterClose", false)
		t.GoNamed("closer", func(tt *sim.T) {
			tt.Work(sim.Duration(tt.Rand(6)))
			mu.Lock(tt)
			closed.Store(tt, true)
			mu.Unlock(tt)
		})
		t.GoNamed("sender", func(tt *sim.T) {
			tt.Work(sim.Duration(tt.Rand(6)))
			mu.Lock(tt)
			if fixed {
				if !closed.Load(tt) {
					// deliver the frame
				}
				mu.Unlock(tt)
				return
			}
			mu.Unlock(tt)
			tt.Work(1)
			mu.Lock(tt)
			if closed.Load(tt) {
				sent.Store(tt, true) // frame written to a closed stream
			}
			mu.Unlock(tt)
		})
		t.Sleep(100)
		mu.Lock(t)
		t.Check(!sent.Load(t), "frame sent after stream close")
		mu.Unlock(t)
	}
}

func doubleApplyProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "cmd.mu")
		claimed := sim.NewVarInit(t, "cmd.claimed", false)
		applies := sim.NewVarInit(t, "cmd.applies", 0)
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for i := 0; i < 2; i++ {
			t.GoNamed("applier", func(tt *sim.T) {
				defer wg.Done(tt)
				if fixed {
					mu.Lock(tt)
					if !claimed.Load(tt) {
						claimed.Store(tt, true)
						applies.Store(tt, applies.Load(tt)+1)
					}
					mu.Unlock(tt)
					return
				}
				mu.Lock(tt)
				free := !claimed.Load(tt)
				mu.Unlock(tt)
				if free {
					tt.Work(sim.Duration(tt.Rand(4)))
					mu.Lock(tt)
					claimed.Store(tt, true)
					applies.Store(tt, applies.Load(tt)+1)
					mu.Unlock(tt)
				}
			})
		}
		wg.Wait(t)
		mu.Lock(t)
		t.Checkf(applies.Load(t) == 1, "command applied %d times", applies.Load(t))
		mu.Unlock(t)
	}
}

func tornSnapshotProgram(fixed bool) sim.Program {
	return func(t *sim.T) {
		mu := sim.NewMutex(t, "stats.mu")
		rx := sim.NewVarInit(t, "stats.rx", 0)
		tx := sim.NewVarInit(t, "stats.tx", 0)
		t.GoNamed("collector", func(tt *sim.T) {
			for i := 0; i < 3; i++ {
				mu.Lock(tt)
				rx.Store(tt, rx.Load(tt)+1)
				tx.Store(tt, tx.Load(tt)+1)
				mu.Unlock(tt)
				tt.Work(2)
			}
		})
		t.GoNamed("reporter", func(tt *sim.T) {
			tt.Work(3)
			var a, b int
			if fixed {
				mu.Lock(tt)
				a = rx.Load(tt)
				b = tx.Load(tt)
				mu.Unlock(tt)
			} else {
				mu.Lock(tt)
				a = rx.Load(tt)
				mu.Unlock(tt)
				tt.Work(2) // collector slips in between
				mu.Lock(tt)
				b = tx.Load(tt)
				mu.Unlock(tt)
			}
			tt.Checkf(a == b, "torn snapshot: rx=%d tx=%d", a, b)
		})
		t.Sleep(100)
	}
}
