package kernels

import (
	"testing"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

// perRunRace resets the detector at every schedule boundary (vector clocks
// from different runs are incomparable). Serial exploration only.
type perRunRace struct {
	det     *race.Detector
	reports int
}

func (o *perRunRace) Kinds() []event.Kind   { return o.det.Kinds() }
func (o *perRunRace) Event(ev *event.Event) { o.det.Event(ev) }

// TestFixedVariantsQuietOverSchedules is the metamorphic half of the
// conformance story: applying the landed patch must leave NO schedule in
// the (preemption-bounded) exploration space that deadlocks, panics, leaks,
// fails a check — or, for the non-blocking kernels, races. Random-seed
// sweeps (TestFixedVariantsClean) sample the space; this drives it
// systematically, so a fix that merely shrinks the buggy window would be
// caught.
//
// The race assertion is restricted to the non-blocking kernels because that
// is what their patch claims to fix; blocking-bug fixes restructure the
// blocking and make no data-race promise about incidental shared state.
func TestFixedVariantsQuietOverSchedules(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			cfg := k.Config(0)
			var obs *perRunRace
			if k.Behavior == corpus.NonBlocking {
				obs = &perRunRace{det: race.New(-1)}
				cfg.Sinks = []event.Sink{obs}
			}
			res := explore.Systematic(k.Fixed, explore.SystematicOptions{
				Config:          cfg,
				MaxRuns:         200,
				PreemptionBound: 2,
				Workers:         1, // serial so the per-run race reset is sound
				OnRun: func(r *sim.Result, schedule []int) {
					if obs == nil {
						return
					}
					obs.reports += len(obs.det.Reports())
					obs.det = race.New(-1)
				},
			})
			if res.Failures > 0 {
				t.Errorf("fixed variant fails on %d/%d schedules; first: %v (schedule %v)",
					res.Failures, res.Runs, res.FirstFailure.Outcome, res.FailureSchedule)
			}
			if obs != nil && obs.reports > 0 {
				t.Errorf("fixed variant still races: %d reports across %d schedules", obs.reports, res.Runs)
			}
		})
	}
}
