package deadlock_test

import (
	"strings"
	"testing"

	"goconcbugs/internal/deadlock"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

func TestABBACycleDetected(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		a := sim.NewMutex(tt, "A")
		b := sim.NewMutex(tt, "B")
		tt.Go(func(ct *sim.T) {
			a.Lock(ct)
			ct.Sleep(5)
			b.Lock(ct)
			b.Unlock(ct)
			a.Unlock(ct)
		})
		tt.Go(func(ct *sim.T) {
			b.Lock(ct)
			ct.Sleep(5)
			a.Lock(ct)
			a.Unlock(ct)
			b.Unlock(ct)
		})
		tt.Sleep(100)
	})
	c := deadlock.AnalyzeCircularity(res)
	if !c.CircularWait || len(c.Cycle) != 2 {
		t.Fatalf("circularity = %+v", c)
	}
	if !strings.Contains(c.Description, "waits A held by") &&
		!strings.Contains(c.Description, "waits B held by") {
		t.Fatalf("description = %q", c.Description)
	}
}

func TestSelfDeadlockIsACycleOfOne(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "mu")
		mu.Lock(tt)
		mu.Lock(tt)
	})
	c := deadlock.AnalyzeCircularity(res)
	if !c.CircularWait || len(c.Cycle) != 1 {
		t.Fatalf("circularity = %+v", c)
	}
	if !strings.Contains(c.Description, "holds itself") &&
		!strings.Contains(c.Description, "waits mu held by g1") {
		t.Fatalf("description = %q", c.Description)
	}
}

func TestChannelLeakIsNotCircular(t *testing.T) {
	// Figure 1's shape: the blocked sender waits on nothing anyone holds.
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChan[int](tt, 0)
		tt.Go(func(ct *sim.T) { ch.Send(ct, 1) })
		tt.Sleep(10)
	})
	if c := deadlock.AnalyzeCircularity(res); c.CircularWait {
		t.Fatalf("channel leak misclassified as circular: %+v", c)
	}
}

func TestFigure7IsNotALockCycle(t *testing.T) {
	// The paper's point: Figure 7's circularity spans a channel, so
	// traditional lock-cycle detection does not see it.
	k, _ := kernels.ByID("boltdb-240-chan-mutex")
	res := sim.Run(k.Config(1), k.Buggy)
	if c := deadlock.AnalyzeCircularity(res); c.CircularWait {
		t.Fatalf("Figure 7 reported as a lock cycle: %+v", c)
	}
	// Yet it is a real blocking bug (the built-in detector even fires).
	if res.Outcome != sim.OutcomeBuiltinDeadlock {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

// TestStudySetCircularitySplit: the lock-class kernels split into circular
// (lock-order/self deadlocks) and non-circular ones, and no channel-class
// kernel is a lock cycle — the taxonomy boundary of Section 4.
func TestStudySetCircularitySplit(t *testing.T) {
	circular := map[string]bool{}
	for _, k := range kernels.DeadlockStudySet() {
		res := sim.Run(k.Config(1), k.Buggy)
		c := deadlock.AnalyzeCircularity(res)
		circular[k.ID] = c.CircularWait
		if c.CircularWait && k.BlockClass != deadlock.ClassMutex && k.BlockClass != deadlock.ClassRWMutex {
			t.Errorf("%s (%s): unexpected lock cycle: %s", k.ID, k.BlockClass, c.Description)
		}
	}
	for _, id := range []string{"boltdb-392-double-lock", "docker-abba-order", "grpc-abba-under-server"} {
		if !circular[id] {
			t.Errorf("%s: lock-order deadlock not recognized as circular", id)
		}
	}
	for _, id := range []string{"kubernetes-finishreq", "docker-missing-close", "cockroachdb-nil-chan"} {
		if circular[id] {
			t.Errorf("%s: non-circular blocking misclassified", id)
		}
	}
}

func TestHealthyRunNotCircular(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "mu")
		mu.Lock(tt)
		mu.Unlock(tt)
	})
	if c := deadlock.AnalyzeCircularity(res); c.CircularWait {
		t.Fatalf("healthy run circular: %+v", c)
	}
}
