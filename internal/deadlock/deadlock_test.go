package deadlock

import (
	"strings"
	"testing"

	"goconcbugs/internal/sim"
)

func TestBuiltinDetectsGlobalDeadlock(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		mu := sim.NewMutex(tt, "mu")
		mu.Lock(tt)
		mu.Lock(tt)
	})
	v := Builtin{}.Detect(res)
	if !v.Detected {
		t.Fatal("builtin should detect a whole-program deadlock")
	}
	if !strings.Contains(v.Message, "all goroutines are asleep") {
		t.Fatalf("message = %q", v.Message)
	}
	if len(v.Goroutines) == 0 {
		t.Fatal("no implicated goroutines")
	}
}

func TestBuiltinMissesPartialDeadlock(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChan[int](tt, 0)
		tt.Go(func(ct *sim.T) { ch.Send(ct, 1) })
		tt.Sleep(10) // main stays alive and then exits normally
	})
	if v := (Builtin{}).Detect(res); v.Detected {
		t.Fatal("builtin fired on a partial deadlock it cannot see")
	}
	if v := (Leak{}).Detect(res); !v.Detected {
		t.Fatal("leak detector should flag the stuck sender")
	}
}

func TestLeakMessageNamesGoroutines(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChanNamed[int](tt, "results", 0)
		tt.GoNamed("probe", func(ct *sim.T) { ch.Send(ct, 1) })
		tt.Sleep(10)
	})
	v := Leak{}.Detect(res)
	if !v.Detected || !strings.Contains(v.Message, "probe") || !strings.Contains(v.Message, "results") {
		t.Fatalf("message = %q", v.Message)
	}
}

func TestLeakCleanOnHealthyRun(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		ch := sim.NewChan[int](tt, 0)
		tt.Go(func(ct *sim.T) { ch.Send(ct, 1) })
		ch.Recv(tt)
	})
	if v := (Leak{}).Detect(res); v.Detected {
		t.Fatalf("leak reported on a healthy run: %s", v.Message)
	}
}

func TestClassify(t *testing.T) {
	mk := func(kinds ...sim.BlockKind) []sim.GoroutineInfo {
		var out []sim.GoroutineInfo
		for _, k := range kinds {
			out = append(out, sim.GoroutineInfo{BlockKind: k})
		}
		return out
	}
	cases := []struct {
		name string
		in   []sim.GoroutineInfo
		want BlockClass
	}{
		{"empty", nil, ClassNone},
		{"mutex only", mk(sim.BlockMutex, sim.BlockMutex), ClassMutex},
		{"rwmutex", mk(sim.BlockRWMutexR, sim.BlockRWMutexW), ClassRWMutex},
		{"wait", mk(sim.BlockWaitGroup), ClassWait},
		{"cond", mk(sim.BlockCond), ClassWait},
		{"chan only", mk(sim.BlockChanSend, sim.BlockSelect), ClassChan},
		{"chan with mutex", mk(sim.BlockChanSend, sim.BlockMutex), ClassChanWith},
		{"chan with waitgroup", mk(sim.BlockChanSend, sim.BlockWaitGroup), ClassChanWith},
		{"pipe", mk(sim.BlockPipe), ClassMessagingLib},
		{"external", mk(sim.BlockExternal), ClassMessagingLib},
		{"rw beats wait precedence", mk(sim.BlockRWMutexW, sim.BlockWaitGroup), ClassRWMutex},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyOnRealKernelShapes(t *testing.T) {
	// Figure 7: one goroutine on a channel send, one on a mutex.
	res := sim.Run(sim.Config{Seed: 1}, func(tt *sim.T) {
		m := sim.NewMutex(tt, "m")
		ch := sim.NewChan[int](tt, 0)
		tt.Go(func(ct *sim.T) {
			m.Lock(ct)
			ch.Send(ct, 1)
			m.Unlock(ct)
		})
		tt.Sleep(5)
		m.Lock(tt)
		ch.Recv(tt)
		m.Unlock(tt)
	})
	if got := Classify(res.Blocked); got != ClassChanWith {
		t.Fatalf("Figure 7 classified as %v, want %v", got, ClassChanWith)
	}
}
