package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"goconcbugs/internal/sim"
)

// Circular-wait analysis. Section 4: "Most previous concurrency bug studies
// categorize bugs into deadlock bugs and non-deadlock bugs, where deadlocks
// include situations where there is a circular wait across multiple
// threads. Our definition of blocking is broader than deadlocks and include
// situations where there is no circular wait but one (or more) goroutines
// wait for resources that no other goroutines supply."
//
// This analyzer draws that line on a finished run: it builds the classic
// lock wait-for graph (goroutine -> lock it waits on -> goroutine holding
// it) and looks for cycles. Lock-order deadlocks (ABBA, double locking) are
// circular; the channel bugs the paper emphasizes — a sender nobody
// receives from, a Figure 7 lock/channel tangle — are not lock-cycles,
// which is exactly why "traditional deadlock detection algorithms" (which
// hunt lock cycles) would catch the former and miss the latter.

// Circularity classifies a blocked run.
type Circularity struct {
	// CircularWait is true when the lock wait-for graph has a cycle.
	CircularWait bool
	// Cycle lists the goroutine ids along a detected cycle, in order.
	Cycle []int
	// Description renders the cycle, e.g. "g2 waits daemon.mu held by g3;
	// g3 waits container.mu held by g2".
	Description string
}

// AnalyzeCircularity builds the lock wait-for graph over the still-blocked
// goroutines of a run.
func AnalyzeCircularity(res *sim.Result) Circularity {
	// holder[lock] = goroutine id holding it at the end of the run.
	holder := map[string]int{}
	for _, g := range res.Goroutines {
		for _, l := range g.HeldLocks {
			holder[l] = g.ID
		}
	}
	// waits[g] = goroutine that g transitively waits on via a lock.
	waits := map[int]int{}
	info := map[int]sim.GoroutineInfo{}
	for _, g := range res.Blocked {
		info[g.ID] = g
		switch g.BlockKind {
		case sim.BlockMutex, sim.BlockRWMutexR, sim.BlockRWMutexW:
			if h, ok := holder[g.BlockObj]; ok {
				waits[g.ID] = h
			}
		}
	}
	// Walk each blocked goroutine's chain looking for a cycle, in id order
	// so the reported cycle (and its rendering) is deterministic.
	starts := make([]int, 0, len(waits))
	for start := range waits {
		starts = append(starts, start)
	}
	sort.Ints(starts)
	for _, start := range starts {
		seen := map[int]int{} // goroutine -> position in the walk
		var path []int
		cur := start
		for {
			if pos, ok := seen[cur]; ok {
				cycle := append([]int(nil), path[pos:]...)
				return Circularity{
					CircularWait: true,
					Cycle:        cycle,
					Description:  describeCycle(cycle, info),
				}
			}
			next, ok := waits[cur]
			if !ok {
				// A self-deadlock: the goroutine waits on a lock
				// it holds itself.
				if g, blocked := info[cur]; blocked && holdsOwnWait(g) {
					return Circularity{
						CircularWait: true,
						Cycle:        []int{cur},
						Description: fmt.Sprintf("g%d waits on %s which it holds itself",
							cur, g.BlockObj),
					}
				}
				break
			}
			seen[cur] = len(path)
			path = append(path, cur)
			cur = next
		}
	}
	// Also catch the pure self-deadlock where waits has the self edge.
	for _, g := range res.Blocked {
		if holdsOwnWait(g) {
			return Circularity{
				CircularWait: true,
				Cycle:        []int{g.ID},
				Description:  fmt.Sprintf("g%d waits on %s which it holds itself", g.ID, g.BlockObj),
			}
		}
	}
	return Circularity{}
}

func holdsOwnWait(g sim.GoroutineInfo) bool {
	switch g.BlockKind {
	case sim.BlockMutex, sim.BlockRWMutexR, sim.BlockRWMutexW:
	default:
		return false
	}
	for _, l := range g.HeldLocks {
		if l == g.BlockObj {
			return true
		}
	}
	return false
}

func describeCycle(cycle []int, info map[int]sim.GoroutineInfo) string {
	var parts []string
	for i, id := range cycle {
		g := info[id]
		next := cycle[(i+1)%len(cycle)]
		parts = append(parts, fmt.Sprintf("g%d waits %s held by g%d", id, g.BlockObj, next))
	}
	return strings.Join(parts, "; ")
}
