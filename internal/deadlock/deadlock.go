// Package deadlock provides the two blocking-bug detectors the paper
// evaluates and proposes.
//
// Builtin models Go's runtime deadlock detector (Section 5.3): "implemented
// in the goroutine scheduler ... it reports deadlock when no goroutines in a
// running process can make progress." Its two documented blind spots are
// reproduced by the simulated runtime: it stays silent while any goroutine
// is still runnable, and it does not understand waits on non-primitive
// resources (sim.BlockExternal).
//
// Leak is the detector the paper's Implication 4 calls for: it flags
// goroutines blocked beyond any possibility (or reasonable likelihood) of
// progress — the paper's broader blocking-bug definition, which "include[s]
// situations where there is no circular wait but one (or more) goroutines
// wait for resources that no other goroutines supply."
package deadlock

import (
	"fmt"
	"strings"

	"goconcbugs/internal/sim"
)

// Verdict is a detector's judgement of one run.
type Verdict struct {
	Detector string
	Detected bool
	Message  string
	// Goroutines lists the blocked goroutines implicated, when detected.
	Goroutines []sim.GoroutineInfo
}

// Builtin is the model of Go's built-in global deadlock detector.
type Builtin struct{}

// Detect inspects a finished run. The heavy lifting happened inside the
// scheduler (only it can observe "no goroutine can make progress"); the
// verdict surfaces that observation.
func (Builtin) Detect(res *sim.Result) Verdict {
	v := Verdict{Detector: "builtin"}
	if res.Outcome == sim.OutcomeBuiltinDeadlock {
		v.Detected = true
		v.Message = res.DeadlockReport
		v.Goroutines = res.Blocked
	}
	return v
}

// Leak is the goroutine-leak (partial deadlock) detector.
type Leak struct{}

// Detect flags any goroutine judged blocked forever.
func (Leak) Detect(res *sim.Result) Verdict {
	v := Verdict{Detector: "leak"}
	if len(res.Leaked) == 0 {
		return v
	}
	v.Detected = true
	v.Goroutines = res.Leaked
	var b strings.Builder
	fmt.Fprintf(&b, "goroutine leak: %d goroutine(s) blocked forever", len(res.Leaked))
	for _, g := range res.Leaked {
		fmt.Fprintf(&b, "\n  g%d(%s) blocked on %s (%s) since step %d",
			g.ID, g.Name, g.BlockKind, g.BlockObj, g.BlockedSince)
	}
	v.Message = b.String()
	return v
}

// BlockClass matches Table 6/8's root-cause columns for blocking bugs.
type BlockClass string

// Blocking root-cause classes (Table 6).
const (
	ClassNone         BlockClass = "none"
	ClassMutex        BlockClass = "Mutex"
	ClassRWMutex      BlockClass = "RWMutex"
	ClassWait         BlockClass = "Wait"
	ClassChan         BlockClass = "Chan"
	ClassChanWith     BlockClass = "Chan w/"
	ClassMessagingLib BlockClass = "Messaging libraries"
)

// Classify maps the blocked goroutines of a manifested blocking bug onto the
// paper's root-cause taxonomy, from what each goroutine is stuck on:
// pure lock waits, Go's priority-inverted RWMutex, condition/WaitGroup
// waits, pure channel operations, channels mixed with other primitives
// ("Chan w/"), or message-passing library calls.
func Classify(blocked []sim.GoroutineInfo) BlockClass {
	if len(blocked) == 0 {
		return ClassNone
	}
	var hasChan, hasMutex, hasRW, hasWait, hasLib bool
	for _, g := range blocked {
		switch g.BlockKind {
		case sim.BlockChanSend, sim.BlockChanRecv, sim.BlockSelect:
			hasChan = true
		case sim.BlockMutex:
			hasMutex = true
		case sim.BlockRWMutexR, sim.BlockRWMutexW:
			hasRW = true
		case sim.BlockWaitGroup, sim.BlockCond:
			hasWait = true
		case sim.BlockPipe, sim.BlockExternal:
			hasLib = true
		}
	}
	switch {
	case hasChan && (hasMutex || hasRW || hasWait || hasLib):
		return ClassChanWith
	case hasChan:
		return ClassChan
	case hasLib:
		return ClassMessagingLib
	case hasRW:
		return ClassRWMutex
	case hasWait:
		return ClassWait
	case hasMutex:
		return ClassMutex
	default:
		return ClassNone
	}
}
