package event

import "testing"

type recorder struct {
	kinds   []Kind
	got     []Kind
	endings int
}

func (r *recorder) Kinds() []Kind   { return r.kinds }
func (r *recorder) Event(ev *Event) { r.got = append(r.got, ev.Kind) }
func (r *recorder) RunEnd()         { r.endings++ }

func TestMuxDispatchesByKind(t *testing.T) {
	mem := &recorder{kinds: []Kind{MemRead, MemWrite}}
	chn := &recorder{kinds: []Kind{ChanSend, MemWrite}}
	m := NewMux([]Sink{mem, chn})

	for _, k := range []Kind{MemRead, ChanSend, MemWrite, MutexLock} {
		if m.Wants(k) {
			m.Emit(&Event{Kind: k})
		}
	}
	if m.Wants(MutexLock) {
		t.Error("Wants(MutexLock) = true with no subscriber")
	}
	want := func(r *recorder, ks ...Kind) {
		t.Helper()
		if len(r.got) != len(ks) {
			t.Fatalf("got %v, want %v", r.got, ks)
		}
		for i, k := range ks {
			if r.got[i] != k {
				t.Fatalf("got %v, want %v", r.got, ks)
			}
		}
	}
	want(mem, MemRead, MemWrite)
	want(chn, ChanSend, MemWrite)

	m.RunEnd()
	if mem.endings != 1 || chn.endings != 1 {
		t.Errorf("RunEnd deliveries = %d, %d; want 1, 1", mem.endings, chn.endings)
	}
}

func TestMuxIgnoresDuplicateAndInvalidKinds(t *testing.T) {
	r := &recorder{kinds: []Kind{MemRead, MemRead, KindInvalid, NumKinds, Kind(200)}}
	m := NewMux([]Sink{nil, r})
	m.Emit(&Event{Kind: MemRead})
	if len(r.got) != 1 {
		t.Errorf("duplicate subscription delivered %d times, want 1", len(r.got))
	}
}

func TestNewMuxEmptyIsNil(t *testing.T) {
	if NewMux(nil) != nil {
		t.Error("NewMux(nil) != nil; the no-sink fast path depends on a nil mux")
	}
}

func TestKindStringsAreDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); k < NumKinds; k++ {
		s := k.String()
		if s == "" || s == "invalid" {
			t.Errorf("kind %d has no name", k)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
}
