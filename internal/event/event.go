// Package event defines the simulated runtime's unified observation
// surface: one typed Event per synchronization, memory, or scheduling
// transition, delivered to any number of Sinks through a per-kind
// pre-dispatched multiplexer.
//
// The paper's detection experiments (Tables 8 and 12) observe the same
// execution through different lenses — the built-in deadlock detector, the
// happens-before race detector, and the Section 7 proposals (goroutine-leak
// and dynamic rule enforcement). Before this package each lens had its own
// bespoke runtime hook, so attaching N detectors cost N instrumented runs.
// Now every instrumented primitive emits exactly one event stream and every
// consumer — race detection, rule vetting, DPOR footprint collection,
// execution tracing, Chrome-trace export — is a Sink over it, so a single
// pass feeds them all (package detect composes detector sets on top).
//
// # Dispatch cost model
//
// A Sink declares the event kinds it wants via Kinds(); NewMux buckets the
// sinks into a [NumKinds][]Sink array once, at run start. Emitting is then
//
//	sinks := mux.byKind[ev.Kind]   // one array index
//	for _, s := range sinks { s.Event(ev) }
//
// so a sink that only wants mutex events never sees channel traffic, and a
// kind nobody subscribed to costs one array-indexed length check
// (Mux.Wants) at the emission site — the same order of cost as the nil
// checks the legacy per-hook fields needed. The runtime reuses one Event
// scratch buffer per run, so emission allocates nothing.
//
// # Writing a sink
//
// Implement Kinds() (return the kinds you need — fewer kinds, fewer
// callbacks) and Event(*Event). The *Event and every slice reachable from
// it (VC, HeldLocks, Sched.OptionGs, Sched.Ops) are owned by the runtime
// and reused across emissions: read what you need during the callback and
// clone anything you retain. Callbacks run strictly serially on the
// simulated program's host goroutines. A sink that also implements
// RunEnder gets a RunEnd() call when the run finishes (after the final
// flushed SchedStep) — that is where a streaming sink flushes its output.
package event

import "goconcbugs/internal/hb"

// Kind identifies the operation an Event describes. Kinds are deliberately
// fine-grained — one per distinct emission point in the runtime — so a
// consumer's subscription, not a coarse category, decides what it sees.
//
// The numeric values are part of the trace/v1 wire format (package trace
// uses the Kind byte as the on-disk record tag), so the enum is
// append-only: new kinds go immediately before NumKinds, and existing
// values must never be reordered or removed — archived traces would decode
// as the wrong operations. internal/trace's kind-pinning test fails loudly
// on any accidental renumbering.
type Kind uint8

// The event taxonomy. "Attempt" kinds fire before an operation may block
// (what a rule monitor wants: the intent, with the acting goroutine's held
// locks); "completion" kinds fire when the effect lands (what a tracer
// wants: the observable hand-off).
const (
	KindInvalid Kind = iota

	// Memory accesses on instrumented Vars. The race detector subscribes
	// to these plus the Map kinds; the tracer renders only the Var kinds,
	// mirroring the runtime's original trace surface.
	MemRead
	MemWrite
	// Memory accesses on instrumented MapVars (the "concurrent map
	// writes" model). Same payload as MemRead/MemWrite.
	MapRead
	MapWrite

	// Channel operations. ChanSend/ChanRecv/ChanClose are attempts;
	// the *Done kinds are completions (Aux carries the partner goroutine
	// for a hand-off or rendezvous, 0 when there is none).
	ChanSend
	ChanRecv
	ChanClose
	ChanSendDone
	ChanRecvDone
	ChanCloseClosed // close of an already-closed channel (about to panic)
	ChanSendClosed  // send on a closed channel (about to panic)
	ChanNil         // operation on a nil channel (blocks forever)

	// Select. SelectBlocking fires when a default-less select is about to
	// park; SelectReady fires when a ready select consumed a Chooser
	// decision (Dec = decision index, Counter = number of ready cases).
	SelectBlocking
	SelectReady

	// Locks. MutexLock/MutexUnlock are sync.Mutex; the RW kinds keep
	// reader/writer identity for tracing (a rule monitor that only cares
	// about "a lock was taken" subscribes to all of them). Detail is
	// "after wait" when the acquisition blocked first.
	MutexLock
	MutexTryLock // successful TryLock only; failed attempts emit nothing
	MutexUnlock
	RWRLock
	RWRUnlock
	RWWLock
	RWWUnlock

	// WaitGroup. Counter is the counter value after the operation; Delta
	// is the Add delta (-1 for Done). WGWaitEnd's Detail distinguishes
	// "immediate" returns from "released" ones.
	WGAdd
	WGDone
	WGNegative // counter went negative (about to panic)
	WGWaitStart
	WGWaitEnd

	// Once and Cond.
	OnceDo     // first Do only; later calls emit nothing
	CondWait   // about to release the mutex and park
	CondSignal // Counter = number of waiters at the signal
	CondBroadcast

	// Goroutine lifecycle. GoSpawn's Obj is the child's name and Aux its
	// id; GoPanic's Detail is the panic message; GoBlock/GoBlockForever
	// carry the blocking object in Obj and the block kind in Detail.
	GoSpawn
	GoExit
	GoPanic
	GoBlock
	GoBlockForever

	// Sched delivers one completed scheduler transition (the SchedStep
	// payload) — the raw material for dynamic partial-order reduction.
	// It fires at the next scheduler pick, or once at run end.
	Sched

	// FaultInject records one injected fault (package inject): Obj names
	// the object the faulted operation targeted, Detail is the fault
	// action name, and Counter is the numeric fault site. It fires before
	// the fault takes effect, so a trace shows the injection ahead of its
	// consequences.
	FaultInject

	// NumKinds bounds the Kind space for per-kind dispatch tables.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindInvalid: "invalid",
	MemRead:     "mem-read", MemWrite: "mem-write",
	MapRead: "map-read", MapWrite: "map-write",
	ChanSend: "chan-send", ChanRecv: "chan-recv", ChanClose: "chan-close",
	ChanSendDone: "chan-send-done", ChanRecvDone: "chan-recv-done",
	ChanCloseClosed: "chan-close-closed", ChanSendClosed: "chan-send-closed",
	ChanNil:        "chan-nil",
	SelectBlocking: "select-blocking", SelectReady: "select-ready",
	MutexLock: "mutex-lock", MutexTryLock: "mutex-trylock", MutexUnlock: "mutex-unlock",
	RWRLock: "rw-rlock", RWRUnlock: "rw-runlock", RWWLock: "rw-wlock", RWWUnlock: "rw-wunlock",
	WGAdd: "wg-add", WGDone: "wg-done", WGNegative: "wg-negative",
	WGWaitStart: "wg-wait-start", WGWaitEnd: "wg-wait-end",
	OnceDo: "once-do", CondWait: "cond-wait", CondSignal: "cond-signal",
	CondBroadcast: "cond-broadcast",
	GoSpawn:       "go-spawn", GoExit: "go-exit", GoPanic: "go-panic",
	GoBlock: "go-block", GoBlockForever: "go-block-forever",
	Sched:       "sched-step",
	FaultInject: "fault-inject",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < NumKinds && kindNames[k] != "" {
		return kindNames[k]
	}
	return "Kind(" + itoa(int(k)) + ")"
}

// itoa avoids importing strconv for the one cold error path above.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// VarMeta identifies an instrumented variable (Var or MapVar) in memory
// events.
type VarMeta struct {
	ID        int
	Name      string
	CreatedBy int
}

// ObjClass classifies the object a footprint entry refers to. IDs are only
// comparable within a class.
type ObjClass uint8

const (
	// ObjVar: an instrumented Var; ID is VarMeta.ID. Loads report
	// Write=false, so concurrent readers stay independent.
	ObjVar ObjClass = iota
	// ObjChan: a chanCore-backed object (channels, and the semaphore,
	// pipe, and context libraries built on them); ID is the channel id.
	// Nil-channel operations report ID 0 — a distinct object nothing else
	// touches, which is exact: a nil-channel operation commutes with
	// everything (it only parks its own goroutine forever).
	ObjChan
	// ObjSync: a mutex, rwmutex, waitgroup, once, cond, atomic, or map
	// variable; ID is the runtime's nextSyncID number.
	ObjSync
	// ObjSpawn: goroutine creation; ID is the child goroutine id. Nothing
	// else ever touches this object — the entry exists so the explorer can
	// root the child's causal clock in the spawning transition.
	ObjSpawn
	// ObjWorld: virtual time. Timer and ticker API calls and scheduler-
	// driven timer fires all touch this single object, making every
	// time-driven transition conservatively dependent on every other.
	ObjWorld
)

// OpRef is one footprint entry: an object the transition examined or
// mutated. Write=false is only reported for operations that commute with
// each other on the same object (Var and atomic loads).
type OpRef struct {
	Class ObjClass
	ID    int
	Write bool
}

// SchedStep describes one completed scheduler transition.
type SchedStep struct {
	// G is the goroutine that executed the transition.
	G int
	// Decision is the index of the Chooser call that picked G (the same
	// numbering as the explorer's recorded decision sequence), or -1 when
	// the pick was forced (a single runnable goroutine, or no Chooser).
	Decision int
	// OptionGs lists the runnable goroutine ids the pick chose among, in
	// the scheduler's option order. Preferred indexes the option that
	// continues the previously running goroutine (-1 when none).
	OptionGs  []int
	Preferred int
	// Ops is the transition's object footprint, in program order.
	Ops []OpRef
}

// Event is one observed runtime transition. The common header (Step..
// HeldLocks) is filled for every kind emitted from a running goroutine;
// the payload fields past it are kind-specific and zero elsewhere.
//
// Ownership: the runtime reuses one Event per run, and VC, HeldLocks, and
// the Sched payload's slices alias live runtime state. Sinks must not
// retain any of them past the callback — clone what must outlive it.
type Event struct {
	Kind Kind
	// Step and Time are the scheduler step count and virtual time at
	// emission.
	Step int64
	Time int64
	// G and GName identify the acting goroutine; VC is its live vector
	// clock and HeldLocks the lock names it currently holds.
	G         int
	GName     string
	VC        hb.VC
	HeldLocks []string

	// Obj names the object operated on (channel/lock/waitgroup/... report
	// name); ObjID is its dense per-class id.
	Obj   string
	ObjID int
	// Var identifies the variable of a memory event.
	Var *VarMeta
	// Counter and Delta carry WaitGroup counter/delta values, the number
	// of ready select cases (SelectReady), and the waiter count
	// (CondSignal).
	Counter int
	Delta   int
	// Aux is a partner goroutine id: the receiver of a channel hand-off,
	// the sender of a rendezvous, or the child of a GoSpawn. 0 means none
	// (goroutine ids start at 1).
	Aux int
	// Dec is the Chooser decision index a SelectReady consumed.
	Dec int
	// Detail is a kind-specific annotation ("after wait", "immediate",
	// a panic message, a block-kind name, ...). Always a shared or
	// pre-existing string — emission never formats.
	Detail string
	// Sched is the SchedStep payload; nil for every other kind.
	Sched *SchedStep
}

// Sink consumes a run's event stream.
type Sink interface {
	// Kinds returns the event kinds this sink wants to receive. It is
	// consulted once, when the run's Mux is built.
	Kinds() []Kind
	// Event delivers one event. See Event's ownership rules.
	Event(ev *Event)
}

// RunEnder is implemented by sinks that need an end-of-run signal (e.g. to
// flush streamed output). RunEnd fires exactly once per run, after the last
// event.
type RunEnder interface {
	RunEnd()
}

// Mux fans events out to sinks, pre-dispatched by kind.
type Mux struct {
	byKind [NumKinds][]Sink
	enders []RunEnder
}

// NewMux builds the dispatch table for sinks. Sinks appear in each kind's
// list in registration order; a sink listing a kind twice is delivered to
// once. Returns nil when sinks is empty, so callers can keep a single
// nil-check fast path.
func NewMux(sinks []Sink) *Mux {
	if len(sinks) == 0 {
		return nil
	}
	m := &Mux{}
	for _, s := range sinks {
		if s == nil {
			continue
		}
		seen := [NumKinds]bool{}
		for _, k := range s.Kinds() {
			if k <= KindInvalid || k >= NumKinds || seen[k] {
				continue
			}
			seen[k] = true
			m.byKind[k] = append(m.byKind[k], s)
		}
		if e, ok := s.(RunEnder); ok {
			m.enders = append(m.enders, e)
		}
	}
	return m
}

// Wants reports whether any sink subscribed to k — the emission-site guard
// that lets the runtime skip assembling events nobody will see.
func (m *Mux) Wants(k Kind) bool { return len(m.byKind[k]) > 0 }

// Emit delivers ev to every sink subscribed to its kind.
func (m *Mux) Emit(ev *Event) {
	for _, s := range m.byKind[ev.Kind] {
		s.Event(ev)
	}
}

// RunEnd notifies every RunEnder sink that the run is over.
func (m *Mux) RunEnd() {
	for _, e := range m.enders {
		e.RunEnd()
	}
}

// AllKinds returns every valid kind — the subscription of a sink that wants
// the full stream (tracers, counters).
func AllKinds() []Kind {
	out := make([]Kind, 0, NumKinds-1)
	for k := KindInvalid + 1; k < NumKinds; k++ {
		out = append(out, k)
	}
	return out
}
