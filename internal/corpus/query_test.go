package corpus

import "testing"

func TestQueryHelpers(t *testing.T) {
	t.Parallel()
	if got := len(BlockingBugs()); got != 85 {
		t.Errorf("BlockingBugs = %d", got)
	}
	if got := len(NonBlockingBugs()); got != 86 {
		t.Errorf("NonBlockingBugs = %d", got)
	}
	if got := len(ReproducedBugs()); got != 41 {
		t.Errorf("ReproducedBugs = %d", got)
	}
	if got := len(WithKernels()); got < 41 {
		t.Errorf("WithKernels = %d, want at least the reproduction sets", got)
	}
	total := 0
	for _, app := range Apps {
		total += len(ByApp(app))
	}
	if total != 171 {
		t.Errorf("per-app sums to %d", total)
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	b, ok := ByID("boltdb#392")
	if !ok || b.App != BoltDB || b.BlockingCause != BCMutex || !b.Reproduced {
		t.Fatalf("boltdb#392 = %+v ok=%v", b, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom record")
	}
}

func TestCountBy(t *testing.T) {
	t.Parallel()
	byCause := CountBy(BlockingBugs(), func(b Bug) BlockingCause { return b.BlockingCause })
	if byCause[BCMutex] != 28 || byCause[BCChan] != 29 {
		t.Fatalf("counts = %v", byCause)
	}
	byApp := CountBy(Bugs(), func(b Bug) App { return b.App })
	if byApp[Docker] != 44 || byApp[Etcd] != 24 {
		t.Fatalf("per-app counts = %v", byApp)
	}
}
