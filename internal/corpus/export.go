package corpus

import (
	"encoding/json"
	"io"
)

// JSON export of the dataset, so downstream tooling (or a GoBench-style
// benchmark consumer) can ingest the study without linking this module.

// exportBug is the stable wire form of one record.
type exportBug struct {
	ID                   string   `json:"id"`
	App                  string   `json:"app"`
	Behavior             string   `json:"behavior"`
	Cause                string   `json:"cause"`
	SubCause             string   `json:"subCause"`
	SelectNondeterminism bool     `json:"selectNondeterminism,omitempty"`
	FixStrategy          string   `json:"fixStrategy"`
	PatchPrimitives      []string `json:"patchPrimitives"`
	LifetimeDays         int      `json:"lifetimeDays"`
	ReportToFixDays      int      `json:"reportToFixDays"`
	PatchLines           int      `json:"patchLines"`
	Reproduced           bool     `json:"reproduced,omitempty"`
	KernelID             string   `json:"kernelId,omitempty"`
	Reconstructed        bool     `json:"reconstructed,omitempty"`
}

type exportFile struct {
	Source      string      `json:"source"`
	BugCount    int         `json:"bugCount"`
	Blocking    int         `json:"blocking"`
	NonBlocking int         `json:"nonBlocking"`
	Bugs        []exportBug `json:"bugs"`
}

// WriteJSON streams the full dataset as indented JSON.
func WriteJSON(w io.Writer) error {
	out := exportFile{
		Source: "Understanding Real-World Concurrency Bugs in Go (ASPLOS 2019); " +
			"cell-level reconstructions flagged per record",
	}
	for _, b := range Bugs() {
		sub := string(b.BlockingCause)
		if b.Behavior == NonBlocking {
			sub = string(b.NonBlockingCause)
		}
		prims := make([]string, 0, len(b.PatchPrimitives))
		for _, p := range b.PatchPrimitives {
			prims = append(prims, string(p))
		}
		out.Bugs = append(out.Bugs, exportBug{
			ID:                   b.ID,
			App:                  string(b.App),
			Behavior:             string(b.Behavior),
			Cause:                string(b.Cause),
			SubCause:             sub,
			SelectNondeterminism: b.SelectNondeterminism,
			FixStrategy:          string(b.FixStrategy),
			PatchPrimitives:      prims,
			LifetimeDays:         b.LifetimeDays,
			ReportToFixDays:      b.ReportToFixDays,
			PatchLines:           b.PatchLines,
			Reproduced:           b.Reproduced,
			KernelID:             b.KernelID,
			Reconstructed:        b.Reconstructed,
		})
		out.BugCount++
		if b.Behavior == Blocking {
			out.Blocking++
		} else {
			out.NonBlocking++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
