package corpus

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		BugCount    int `json:"bugCount"`
		Blocking    int `json:"blocking"`
		NonBlocking int `json:"nonBlocking"`
		Bugs        []struct {
			ID       string `json:"id"`
			App      string `json:"app"`
			Behavior string `json:"behavior"`
			SubCause string `json:"subCause"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.BugCount != 171 || decoded.Blocking != 85 || decoded.NonBlocking != 86 {
		t.Fatalf("header = %+v", decoded)
	}
	if len(decoded.Bugs) != 171 {
		t.Fatalf("bugs = %d", len(decoded.Bugs))
	}
	seen := map[string]bool{}
	for _, b := range decoded.Bugs {
		if b.ID == "" || b.App == "" || b.Behavior == "" || b.SubCause == "" {
			t.Fatalf("incomplete record: %+v", b)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate id %s", b.ID)
		}
		seen[b.ID] = true
	}
}
