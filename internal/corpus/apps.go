package corpus

// AppInfo reproduces Table 1: "Information of selected applications".
// Stars for Docker and Kubernetes and every LOC figure and development
// history come straight from the paper; the remaining stars, commit and
// contributor counts were garbled in the source extraction and are
// period-plausible reconstructions (flagged).
type AppInfo struct {
	App           App
	Stars         int // GitHub stars (thousands are spelled out)
	Commits       int
	Contributors  int
	LOC           int     // total source lines
	DevYears      float64 // development history on GitHub
	Reconstructed bool    // true when any cell is reconstructed
}

// AppInfos returns Table 1's rows in order.
func AppInfos() []AppInfo {
	return []AppInfo{
		{App: Docker, Stars: 48900, Commits: 35600, Contributors: 1767, LOC: 786_000, DevYears: 4.2, Reconstructed: true},
		{App: Kubernetes, Stars: 36500, Commits: 65800, Contributors: 1679, LOC: 2_297_000, DevYears: 3.9, Reconstructed: true},
		{App: Etcd, Stars: 18300, Commits: 14100, Contributors: 436, LOC: 441_000, DevYears: 4.9, Reconstructed: true},
		{App: CockroachDB, Stars: 13100, Commits: 29485, Contributors: 197, LOC: 520_000, DevYears: 4.2, Reconstructed: true},
		{App: GRPC, Stars: 5594, Commits: 2528, Contributors: 148, LOC: 53_000, DevYears: 3.3, Reconstructed: true},
		{App: BoltDB, Stars: 8970, Commits: 816, Contributors: 98, LOC: 9_000, DevYears: 4.4, Reconstructed: true},
	}
}
