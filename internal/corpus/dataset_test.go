package corpus

import (
	"testing"
)

func countIf(t *testing.T, pred func(Bug) bool) int {
	t.Helper()
	n := 0
	for _, b := range Bugs() {
		if pred(b) {
			n++
		}
	}
	return n
}

// TestProseTotals asserts every count the paper's prose states outright.
func TestProseTotals(t *testing.T) {
	t.Parallel()
	if got := len(Bugs()); got != 171 {
		t.Fatalf("dataset has %d bugs, want 171", got)
	}
	cases := []struct {
		name string
		pred func(Bug) bool
		want int
	}{
		{"blocking", func(b Bug) bool { return b.Behavior == Blocking }, 85},
		{"non-blocking", func(b Bug) bool { return b.Behavior == NonBlocking }, 86},
		{"shared memory", func(b Bug) bool { return b.Cause == SharedMemory }, 105},
		{"message passing", func(b Bug) bool { return b.Cause == MessagePassing }, 66},
		{"Mutex blocking", func(b Bug) bool { return b.BlockingCause == BCMutex }, 28},
		{"RWMutex blocking", func(b Bug) bool { return b.BlockingCause == BCRWMutex }, 5},
		{"Wait blocking", func(b Bug) bool { return b.BlockingCause == BCWait }, 3},
		{"Chan blocking", func(b Bug) bool { return b.BlockingCause == BCChan }, 29},
		{"Chan w/ blocking", func(b Bug) bool { return b.BlockingCause == BCChanW }, 16},
		{"Lib blocking", func(b Bug) bool { return b.BlockingCause == BCLib }, 4},
		{"traditional", func(b Bug) bool { return b.NonBlockingCause == NBTraditional }, 46},
		{"anonymous", func(b Bug) bool { return b.NonBlockingCause == NBAnonymous }, 11},
		{"waitgroup", func(b Bug) bool { return b.NonBlockingCause == NBWaitGroup }, 6},
		{"lib shared", func(b Bug) bool { return b.NonBlockingCause == NBLib }, 6},
		{"chan non-blocking", func(b Bug) bool { return b.NonBlockingCause == NBChan }, 16},
		{"msg lib non-blocking", func(b Bug) bool { return b.NonBlockingCause == NBMsgLib }, 1},
		{"select nondeterminism", func(b Bug) bool { return b.SelectNondeterminism }, 3},
		{"reproduced blocking (Table 8)", func(b Bug) bool { return b.Reproduced && b.Behavior == Blocking }, 21},
		{"reproduced non-blocking (Table 12)", func(b Bug) bool { return b.Reproduced && b.Behavior == NonBlocking }, 20},
	}
	for _, c := range cases {
		if got := countIf(t, c.pred); got != c.want {
			t.Errorf("%s: %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMutexRWFixSplit asserts Section 5.2's "among the 33 Mutex- or
// RWMutex-related bugs, 8 were fixed by adding a missing unlock; 9 by
// moving lock or unlock; 11 by removing an extra lock".
func TestMutexRWFixSplit(t *testing.T) {
	t.Parallel()
	lockBug := func(b Bug) bool {
		return b.BlockingCause == BCMutex || b.BlockingCause == BCRWMutex
	}
	if got := countIf(t, lockBug); got != 33 {
		t.Fatalf("Mutex+RWMutex bugs = %d, want 33", got)
	}
	counts := map[FixStrategy]int{}
	for _, b := range Bugs() {
		if lockBug(b) {
			counts[b.FixStrategy]++
		}
	}
	if counts[AddSync] != 8 || counts[MoveSync] != 9 || counts[RemoveSync] != 11 {
		t.Errorf("lock-bug fixes add/move/remove = %d/%d/%d, want 8/9/11",
			counts[AddSync], counts[MoveSync], counts[RemoveSync])
	}
}

// TestNonBlockingStrategyTotals asserts Table 10's prose anchors: 10
// bypasses, 14 data-private fixes, and roughly two thirds timing fixes.
func TestNonBlockingStrategyTotals(t *testing.T) {
	t.Parallel()
	counts := map[FixStrategy]int{}
	nb := 0
	for _, b := range Bugs() {
		if b.Behavior != NonBlocking {
			continue
		}
		nb++
		counts[b.FixStrategy]++
	}
	if counts[Bypass] != 10 {
		t.Errorf("bypass = %d, want 10", counts[Bypass])
	}
	if counts[DataPrivate] != 14 {
		t.Errorf("private = %d, want 14", counts[DataPrivate])
	}
	timing := float64(counts[AddSync]+counts[MoveSync]) / float64(nb)
	if timing < 0.60 || timing > 0.75 {
		t.Errorf("timing-restriction share = %.2f, want ≈0.69", timing)
	}
}

// TestTable11Totals asserts the fully-extracted fix-primitive totals.
func TestTable11Totals(t *testing.T) {
	t.Parallel()
	counts := map[FixPrimitive]int{}
	entries := 0
	for _, b := range Bugs() {
		if b.Behavior != NonBlocking {
			continue
		}
		for _, p := range b.PatchPrimitives {
			counts[p]++
			entries++
		}
	}
	want := map[FixPrimitive]int{
		FPMutex: 32, FPChannel: 19, FPAtomic: 10, FPWaitGroup: 7,
		FPCond: 4, FPMisc: 3, FPNone: 19,
	}
	for p, n := range want {
		if counts[p] != n {
			t.Errorf("primitive %s = %d, want %d", p, counts[p], n)
		}
	}
	if entries != 94 {
		t.Errorf("total primitive entries = %d, want 94", entries)
	}
}

// TestPerAppTotals asserts the per-app taxonomy (Table 5) internal
// consistency and the cells the extraction preserved.
func TestPerAppTotals(t *testing.T) {
	t.Parallel()
	type row struct{ blocking, nonBlocking, shared, message int }
	want := map[App]row{
		Docker:      {21, 23, 28, 16},
		Kubernetes:  {17, 17, 19, 15},
		Etcd:        {17, 7, 6, 18},
		CockroachDB: {16, 23, 34, 5},
		GRPC:        {12, 12, 13, 11},
		BoltDB:      {2, 4, 5, 1},
	}
	got := map[App]*row{}
	for _, a := range Apps {
		got[a] = &row{}
	}
	for _, b := range Bugs() {
		r := got[b.App]
		if b.Behavior == Blocking {
			r.blocking++
		} else {
			r.nonBlocking++
		}
		if b.Cause == SharedMemory {
			r.shared++
		} else {
			r.message++
		}
	}
	for a, w := range want {
		g := got[a]
		if *g != w {
			t.Errorf("%s: got %+v, want %+v", a, *g, w)
		}
	}
}

func TestUniqueIDsAndSaneFields(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, b := range Bugs() {
		if b.ID == "" {
			t.Fatalf("bug with empty ID: %+v", b)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate bug ID %s", b.ID)
		}
		seen[b.ID] = true
		if b.LifetimeDays <= 0 || b.PatchLines <= 0 || b.ReportToFixDays <= 0 {
			t.Errorf("%s: non-positive duration fields: %+v", b.ID, b)
		}
		if len(b.PatchPrimitives) == 0 {
			t.Errorf("%s: no patch primitives", b.ID)
		}
		if b.Behavior == Blocking && b.BlockingCause == "" {
			t.Errorf("%s: blocking bug without blocking cause", b.ID)
		}
		if b.Behavior == NonBlocking && b.NonBlockingCause == "" {
			t.Errorf("%s: non-blocking bug without cause", b.ID)
		}
	}
}

// TestDeterministicBuild: two reads of the dataset agree.
func TestDeterministicBuild(t *testing.T) {
	t.Parallel()
	a, b := Bugs(), Bugs()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].FixStrategy != b[i].FixStrategy || a[i].LifetimeDays != b[i].LifetimeDays {
			t.Fatalf("dataset not deterministic at %d", i)
		}
	}
}

// TestBlockingPatchSize asserts the mean patch size is near the reported
// 6.8 lines.
func TestBlockingPatchSize(t *testing.T) {
	t.Parallel()
	total, n := 0, 0
	for _, b := range Bugs() {
		if b.Behavior == Blocking {
			total += b.PatchLines
			n++
		}
	}
	mean := float64(total) / float64(n)
	if mean < 5.8 || mean > 7.8 {
		t.Errorf("mean blocking patch size = %.2f, want ≈6.8", mean)
	}
}

// TestLifetimesAreLong: Figure 4's shape — the median lifetime is many
// months for both cause classes.
func TestLifetimesAreLong(t *testing.T) {
	t.Parallel()
	for _, cause := range []Cause{SharedMemory, MessagePassing} {
		var days []int
		for _, b := range Bugs() {
			if b.Cause == cause {
				days = append(days, b.LifetimeDays)
			}
		}
		long := 0
		for _, d := range days {
			if d >= 180 {
				long++
			}
		}
		if frac := float64(long) / float64(len(days)); frac < 0.5 {
			t.Errorf("%s: only %.0f%% of bugs lived ≥180 days; Figure 4 shows long lifetimes", cause, frac*100)
		}
	}
}
