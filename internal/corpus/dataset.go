package corpus

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// This file constructs the 171-bug dataset. The construction is
// deterministic and satisfies, exactly, every count the paper states:
//
//   - Taxonomy totals (Section 4): 171 bugs = 85 blocking + 86 non-blocking
//     = 105 shared-memory + 66 message-passing.
//   - Blocking root causes (Table 6): Mutex 28, RWMutex 5, Wait 3, Chan 29,
//     Chan w/ 16, Messaging libraries 4; the per-app rows follow the
//     recovered extraction (Docker 9/0/3/5/2/2, etcd ?/0/0/10/5/1, ...),
//     with the two cells the extraction lost (Kubernetes and etcd Mutex)
//     reconstructed as 6 and 1 against the column total of 28.
//   - Blocking fixes (Table 7): among the 33 Mutex+RWMutex bugs, 8 add a
//     missing unlock, 9 move operations, 11 remove extra ones;
//     lift(Mutex, Move_s) ≈ 1.52 the strongest, lift(Chan, Add_s) ≈ 1.42
//     second, all other >10-bug categories below 1.16.
//   - Non-blocking root causes (Table 9): shared memory 69 (traditional 46,
//     anonymous function 11, WaitGroup 6, lib 6) and message passing 17
//     (chan 16 — three of them select-nondeterminism — and lib 1).
//   - Non-blocking fixes (Table 10): timing-restriction ≈ two thirds,
//     Bypass 10, Private 14; lift(anonymous, Private) ≈ 2.23,
//     lift(chan, Move_s) ≈ 2.21.
//   - Fix primitives (Table 11), which the extraction preserved fully:
//     totals Mutex 32, Channel 19, Atomic 10, WaitGroup 7, Cond 4, Misc 3,
//     None 19 (94 primitive entries across the 86 bugs; patches may use
//     several primitives), and lift(chan, Channel) ≈ 2.7.
//
// Cell-level placements not pinned by the paper are synthetic and flagged
// via Bug.Reconstructed.

// blockingMatrix is Table 6: per-app blocking root-cause counts.
var blockingMatrix = map[App]map[BlockingCause]int{
	Docker:      {BCMutex: 9, BCRWMutex: 0, BCWait: 3, BCChan: 5, BCChanW: 2, BCLib: 2},
	Kubernetes:  {BCMutex: 6, BCRWMutex: 2, BCWait: 0, BCChan: 3, BCChanW: 6, BCLib: 0},
	Etcd:        {BCMutex: 1, BCRWMutex: 0, BCWait: 0, BCChan: 10, BCChanW: 5, BCLib: 1},
	CockroachDB: {BCMutex: 8, BCRWMutex: 3, BCWait: 0, BCChan: 5, BCChanW: 0, BCLib: 0},
	GRPC:        {BCMutex: 3, BCRWMutex: 0, BCWait: 0, BCChan: 6, BCChanW: 2, BCLib: 1},
	BoltDB:      {BCMutex: 1, BCRWMutex: 0, BCWait: 0, BCChan: 0, BCChanW: 1, BCLib: 0},
}

// nonBlockingMatrix is Table 9: per-app non-blocking root-cause counts.
var nonBlockingMatrix = map[App]map[NonBlockingCause]int{
	Docker:      {NBTraditional: 9, NBAnonymous: 3, NBWaitGroup: 1, NBLib: 3, NBChan: 7, NBMsgLib: 0},
	Kubernetes:  {NBTraditional: 7, NBAnonymous: 2, NBWaitGroup: 1, NBLib: 1, NBChan: 6, NBMsgLib: 0},
	Etcd:        {NBTraditional: 2, NBAnonymous: 1, NBWaitGroup: 1, NBLib: 1, NBChan: 2, NBMsgLib: 0},
	CockroachDB: {NBTraditional: 18, NBAnonymous: 3, NBWaitGroup: 2, NBLib: 0, NBChan: 0, NBMsgLib: 0},
	GRPC:        {NBTraditional: 7, NBAnonymous: 2, NBWaitGroup: 1, NBLib: 0, NBChan: 1, NBMsgLib: 1},
	BoltDB:      {NBTraditional: 3, NBAnonymous: 0, NBWaitGroup: 0, NBLib: 1, NBChan: 0, NBMsgLib: 0},
}

// blockingStrategy is Table 7: fix-strategy counts per blocking cause
// (Add_s, Move_s, Rm_s, Misc.).
var blockingStrategy = map[BlockingCause][4]int{
	BCMutex:   {6, 9, 10, 3},
	BCRWMutex: {2, 0, 1, 2},
	BCWait:    {0, 2, 0, 1},
	BCChan:    {13, 4, 9, 3},
	BCChanW:   {5, 3, 6, 2},
	BCLib:     {1, 0, 3, 0},
}

// nonBlockingStrategy is Table 10: fix-strategy counts per non-blocking
// cause (Add_s, Move_s, Bypass, Private, Misc.).
var nonBlockingStrategy = map[NonBlockingCause][5]int{
	NBTraditional: {30, 6, 2, 8, 0},
	NBAnonymous:   {3, 1, 1, 4, 2},
	NBWaitGroup:   {2, 2, 1, 0, 1},
	NBLib:         {2, 1, 1, 1, 1},
	NBChan:        {4, 7, 4, 1, 0},
	NBMsgLib:      {0, 0, 1, 0, 0},
}

// nonBlockingPrimitives is Table 11 exactly as extracted: primitive-entry
// counts per cause (Mutex, Channel, Atomic, WaitGroup, Cond, Misc, None).
var nonBlockingPrimitives = map[NonBlockingCause][7]int{
	NBTraditional: {24, 3, 6, 0, 0, 0, 13},
	NBWaitGroup:   {2, 0, 0, 4, 3, 0, 0},
	NBAnonymous:   {3, 2, 3, 0, 0, 0, 3},
	NBLib:         {0, 2, 1, 1, 0, 1, 2},
	NBChan:        {3, 11, 0, 2, 1, 2, 1},
	NBMsgLib:      {0, 1, 0, 0, 0, 0, 0},
}

// namedBug pins a real, paper-named bug (or a reproduced kernel) onto the
// record generated for its (app, cause) cell.
type namedBug struct {
	id       string // upstream id when the paper names one, else kernel id
	kernelID string
	repro    bool // member of the Table 8 / Table 12 reproduction sets
}

var namedBlocking = map[App]map[BlockingCause][]namedBug{
	Docker: {
		BCMutex: {{id: "docker-abba-order", kernelID: "docker-abba-order", repro: true},
			{id: "docker-unlock-skipped-iteration", kernelID: "docker-unlock-skipped-iteration", repro: true}},
		BCWait: {{id: "docker#25384", kernelID: "docker-25384-waitgroup"},
			{id: "docker-cond-missing-signal", kernelID: "docker-cond-missing-signal"}},
		BCChan: {{id: "docker-missing-close", kernelID: "docker-missing-close", repro: true},
			{id: "docker-buffered-full", kernelID: "docker-buffered-full", repro: true},
			{id: "docker-context-cancel-leak", kernelID: "docker-context-cancel-leak"},
			{id: "docker-semaphore-leak", kernelID: "docker-semaphore-leak"}},
		BCChanW: {{id: "docker-chan-waitgroup", kernelID: "docker-chan-waitgroup", repro: true}},
		BCLib:   {{id: "docker-pipe-unclosed", kernelID: "docker-pipe-unclosed", repro: true}},
	},
	Kubernetes: {
		BCMutex:   {{id: "kubernetes-missing-unlock", kernelID: "kubernetes-missing-unlock", repro: true}},
		BCRWMutex: {{id: "kubernetes-rwmutex-nested-read", kernelID: "kubernetes-rwmutex-nested-read"}},
		BCChan: {{id: "kubernetes#5316", kernelID: "kubernetes-finishreq", repro: true},
			{id: "kubernetes-select-stuck", kernelID: "kubernetes-select-stuck", repro: true},
			{id: "kubernetes-shutdown-missed", kernelID: "kubernetes-shutdown-missed", repro: true}},
	},
	Etcd: {
		BCChan: {{id: "etcd-context-switch", kernelID: "etcd-context-switch", repro: true},
			{id: "etcd-double-recv", kernelID: "etcd-double-recv", repro: true},
			{id: "etcd-chan-circular", kernelID: "etcd-chan-circular"}},
		BCChanW: {{id: "etcd-chan-lock-live", kernelID: "etcd-chan-lock-live", repro: true}},
	},
	CockroachDB: {
		BCMutex: {{id: "cockroachdb-double-lock-helper", kernelID: "cockroachdb-double-lock-helper", repro: true},
			{id: "cockroachdb-holder-exits", kernelID: "cockroachdb-holder-exits", repro: true}},
		BCRWMutex: {{id: "cockroachdb-rwmutex-priority", kernelID: "cockroachdb-rwmutex-priority"}},
		BCChan:    {{id: "cockroachdb-nil-chan", kernelID: "cockroachdb-nil-chan", repro: true}},
	},
	GRPC: {
		BCMutex: {{id: "grpc-abba-under-server", kernelID: "grpc-abba-under-server", repro: true}},
		BCChan: {{id: "grpc-missing-send", kernelID: "grpc-missing-send", repro: true},
			{id: "grpc-workers-leak", kernelID: "grpc-workers-leak", repro: true}},
		BCChanW: {{id: "grpc-chanw-recv-under-lock", kernelID: "grpc-chanw-recv-under-lock"}},
	},
	BoltDB: {
		BCMutex: {{id: "boltdb#392", kernelID: "boltdb-392-double-lock", repro: true}},
		BCChanW: {{id: "boltdb#240", kernelID: "boltdb-240-chan-mutex", repro: true}},
	},
}

var namedNonBlocking = map[App]map[NonBlockingCause][]namedBug{
	Docker: {
		NBTraditional: {{id: "docker#22985", kernelID: "docker-22985-ref-through-chan", repro: true},
			{id: "docker-race-on-error-path", kernelID: "docker-race-on-error-path", repro: true},
			{id: "docker-atomicity-check-act", kernelID: "docker-atomicity-check-act", repro: true},
			{id: "docker-torn-snapshot", kernelID: "docker-torn-snapshot", repro: true}},
		NBAnonymous: {{id: "docker-apiversion", kernelID: "docker-apiversion", repro: true}},
		NBChan: {{id: "docker#24007", kernelID: "docker-24007-double-close", repro: true},
			{id: "docker-select-stop-race", kernelID: "docker-select-stop-race"}},
	},
	Kubernetes: {
		NBTraditional: {{id: "kubernetes-lazy-init", kernelID: "kubernetes-lazy-init", repro: true},
			{id: "kubernetes-order-publish", kernelID: "kubernetes-order-publish", repro: true},
			{id: "kubernetes-map-race", kernelID: "kubernetes-map-race"}},
		NBAnonymous: {{id: "kubernetes-anon-err", kernelID: "kubernetes-anon-err", repro: true}},
		NBChan:      {{id: "kubernetes-select-ticker", kernelID: "kubernetes-select-ticker"}},
	},
	Etcd: {
		NBTraditional: {{id: "etcd-shutdown-flag", kernelID: "etcd-shutdown-flag", repro: true},
			{id: "etcd-stale-decision", kernelID: "etcd-stale-decision", repro: true}},
		NBAnonymous: {{id: "etcd-anon-stale-capture", kernelID: "etcd-anon-stale-capture", repro: true}},
		NBWaitGroup: {{id: "etcd-waitgroup-order", kernelID: "etcd-waitgroup-order", repro: true}},
		NBLib:       {{id: "etcd#7816", kernelID: "etcd-7816-context-value"}},
	},
	CockroachDB: {
		NBTraditional: {{id: "cockroachdb#6111", kernelID: "cockroachdb-6111-status", repro: true},
			{id: "cockroachdb-rare-retry-read", kernelID: "cockroachdb-rare-retry-read", repro: true},
			{id: "cockroachdb-double-apply", kernelID: "cockroachdb-double-apply", repro: true}},
		NBAnonymous: {{id: "cockroachdb-anon-siblings", kernelID: "cockroachdb-anon-siblings", repro: true}},
	},
	GRPC: {
		NBTraditional: {{id: "grpc-lost-update", kernelID: "grpc-lost-update", repro: true},
			{id: "grpc-send-after-close", kernelID: "grpc-send-after-close", repro: true}},
		NBMsgLib: {{id: "grpc-timer-zero", kernelID: "grpc-timer-zero", repro: true}},
	},
	BoltDB: {},
}

var (
	bugsOnce sync.Once
	allBugs  []Bug
)

// Bugs returns the full 171-record dataset (a copy).
func Bugs() []Bug {
	bugsOnce.Do(func() { allBugs = buildDataset() })
	out := make([]Bug, len(allBugs))
	copy(out, allBugs)
	return out
}

func buildDataset() []Bug {
	var bugs []Bug
	bugs = append(bugs, buildBlocking()...)
	bugs = append(bugs, buildNonBlocking()...)
	for i := range bugs {
		stampDurations(&bugs[i])
	}
	return bugs
}

func buildBlocking() []Bug {
	var bugs []Bug
	for _, cause := range BlockingCauses {
		var cell []Bug
		for _, app := range Apps {
			n := blockingMatrix[app][cause]
			named := namedBlocking[app][cause]
			for i := 0; i < n; i++ {
				b := Bug{
					App:           app,
					Behavior:      Blocking,
					Cause:         CauseOfBlocking(cause),
					BlockingCause: cause,
					Reconstructed: true,
				}
				if i < len(named) {
					b.ID = named[i].id
					b.KernelID = named[i].kernelID
					b.Reproduced = named[i].repro
					b.Reconstructed = false
				} else {
					b.ID = fmt.Sprintf("%s-blocking-%s-%d", lower(app), slug(string(cause)), i+1)
				}
				cell = append(cell, b)
			}
		}
		assignBlockingDetail(cause, cell)
		bugs = append(bugs, cell...)
	}
	return bugs
}

// assignBlockingDetail distributes Table 7's strategy counts and the
// cause-correlated patch primitives over one cause's bugs.
func assignBlockingDetail(cause BlockingCause, cell []Bug) {
	dist := blockingStrategy[cause]
	strategies := expand4(dist, BlockingFixStrategies)
	shuffle(strategies, "blocking-strategy-"+string(cause))
	for i := range cell {
		cell[i].FixStrategy = strategies[i]
		cell[i].PatchPrimitives = blockingPatchPrimitives(cause, i)
	}
}

// blockingPatchPrimitives reflects Section 5.2: "most bugs whose causes are
// related to a certain type of primitive were also fixed by adjusting that
// primitive. For example, all Mutex-related bugs were fixed by adjusting
// Mutex primitives."
func blockingPatchPrimitives(cause BlockingCause, i int) []FixPrimitive {
	switch cause {
	case BCMutex, BCRWMutex:
		return []FixPrimitive{FPMutex}
	case BCWait:
		if i == 0 {
			return []FixPrimitive{FPWaitGroup}
		}
		return []FixPrimitive{FPCond}
	case BCChan:
		return []FixPrimitive{FPChannel}
	case BCChanW:
		if i%3 == 0 {
			return []FixPrimitive{FPChannel, FPMutex}
		}
		return []FixPrimitive{FPChannel}
	default:
		return []FixPrimitive{FPMisc}
	}
}

func buildNonBlocking() []Bug {
	var bugs []Bug
	selectLeft := 1 // plus the two select kernels = the paper's 3 select bugs
	for _, cause := range NonBlockingCauses {
		var cell []Bug
		for _, app := range Apps {
			n := nonBlockingMatrix[app][cause]
			named := namedNonBlocking[app][cause]
			for i := 0; i < n; i++ {
				b := Bug{
					App:              app,
					Behavior:         NonBlocking,
					Cause:            CauseOfNonBlocking(cause),
					NonBlockingCause: cause,
					Reconstructed:    true,
				}
				if i < len(named) {
					b.ID = named[i].id
					b.KernelID = named[i].kernelID
					b.Reproduced = named[i].repro
					b.Reconstructed = false
					if b.KernelID == "kubernetes-select-ticker" ||
						b.KernelID == "docker-select-stop-race" {
						b.SelectNondeterminism = true
					}
				} else {
					b.ID = fmt.Sprintf("%s-nonblocking-%s-%d", lower(app), slug(string(cause)), i+1)
					if cause == NBChan && selectLeft > 0 && app == Kubernetes {
						b.SelectNondeterminism = true
						selectLeft--
					}
				}
				cell = append(cell, b)
			}
		}
		assignNonBlockingDetail(cause, cell)
		bugs = append(bugs, cell...)
	}
	return bugs
}

// assignNonBlockingDetail distributes Table 10's strategies and Table 11's
// primitive entries over one cause's bugs. Causes whose Table 11 row holds
// more entries than bugs get second primitives on their leading bugs —
// patches can adjust several primitives at once.
func assignNonBlockingDetail(cause NonBlockingCause, cell []Bug) {
	strategies := expand5(nonBlockingStrategy[cause], NonBlockingFixStrategies)
	shuffle(strategies, "nonblocking-strategy-"+string(cause))
	prims := expand7(nonBlockingPrimitives[cause], FixPrimitives)
	shuffle(prims, "nonblocking-prims-"+string(cause))
	// Primary primitives, one per bug; FPNone must come first so extras
	// never pair with it.
	sort.SliceStable(prims, func(i, j int) bool {
		return prims[i] == FPNone && prims[j] != FPNone
	})
	for i := range cell {
		cell[i].FixStrategy = strategies[i]
		cell[i].PatchPrimitives = []FixPrimitive{prims[i]}
	}
	// Distribute surplus entries as secondary primitives.
	extra := prims[len(cell):]
	j := len(cell) - 1
	for _, p := range extra {
		for ; j >= 0; j-- {
			first := cell[j].PatchPrimitives[0]
			if first != FPNone && first != p {
				cell[j].PatchPrimitives = append(cell[j].PatchPrimitives, p)
				j--
				break
			}
		}
	}
}

// stampDurations derives each bug's lifetime (Figure 4), report-to-fix gap,
// and patch size from a per-bug seeded source. Lifetimes are log-normal
// around roughly one year — "most bugs we study ... have long life time" —
// for both cause classes; blocking patch sizes average the paper's 6.8
// lines.
func stampDurations(b *Bug) {
	h := fnv.New64a()
	h.Write([]byte(b.ID))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	life := int(math.Exp(math.Log(330) + rng.NormFloat64()*1.0))
	if life < 3 {
		life = 3
	}
	if life > 1460 {
		life = 1460
	}
	b.LifetimeDays = life
	b.ReportToFixDays = 1 + rng.Intn(21)
	if b.Behavior == Blocking {
		b.PatchLines = 2 + rng.Intn(10) // mean ~6.5, close to the 6.8 reported
	} else {
		b.PatchLines = 3 + rng.Intn(14)
	}
}

// --- helpers ---

func expand4(counts [4]int, labels []FixStrategy) []FixStrategy {
	var out []FixStrategy
	for i, n := range counts {
		for j := 0; j < n; j++ {
			out = append(out, labels[i])
		}
	}
	return out
}

func expand5(counts [5]int, labels []FixStrategy) []FixStrategy {
	var out []FixStrategy
	for i, n := range counts {
		for j := 0; j < n; j++ {
			out = append(out, labels[i])
		}
	}
	return out
}

func expand7(counts [7]int, labels []FixPrimitive) []FixPrimitive {
	var out []FixPrimitive
	for i, n := range counts {
		for j := 0; j < n; j++ {
			out = append(out, labels[i])
		}
	}
	return out
}

func shuffle[E any](s []E, key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

func lower(a App) string {
	switch a {
	case Docker:
		return "docker"
	case Kubernetes:
		return "kubernetes"
	case Etcd:
		return "etcd"
	case CockroachDB:
		return "cockroachdb"
	case GRPC:
		return "grpc"
	case BoltDB:
		return "boltdb"
	}
	return "unknown"
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
