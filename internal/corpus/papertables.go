package corpus

// Paper-reported measurement tables (Sections 3.1 and 3.2), stored so every
// bench can print paper-vs-measured side by side. Table 4's proportions
// survived extraction intact (plus etcd's absolute total of 2075 and
// gRPC-Go's 786 usages stated in prose); Table 2's cells were garbled, so
// its rows are reconstructions inside the prose-stated envelope
// ("creation sites per thousand source lines range from 0.18 to 0.83";
// anonymous outnumbers named everywhere except Kubernetes and BoltDB;
// gRPC-C has five creation sites, 0.03/KLOC).

// Table2Row is one application's goroutine-creation-site measurements.
type Table2Row struct {
	App           App
	Sites         int
	PerKLOC       float64
	AnonSites     int
	NamedSites    int
	Reconstructed bool
}

// Table2Paper returns the paper's Table 2 rows.
func Table2Paper() []Table2Row {
	return []Table2Row{
		{App: Docker, Sites: 416, PerKLOC: 0.53, AnonSites: 266, NamedSites: 150, Reconstructed: true},
		{App: Kubernetes, Sites: 413, PerKLOC: 0.18, AnonSites: 170, NamedSites: 243, Reconstructed: true},
		{App: Etcd, Sites: 366, PerKLOC: 0.83, AnonSites: 214, NamedSites: 152, Reconstructed: true},
		{App: CockroachDB, Sites: 322, PerKLOC: 0.62, AnonSites: 190, NamedSites: 132, Reconstructed: true},
		{App: GRPC, Sites: 44, PerKLOC: 0.83, AnonSites: 28, NamedSites: 16, Reconstructed: true},
		{App: BoltDB, Sites: 2, PerKLOC: 0.22, AnonSites: 0, NamedSites: 2, Reconstructed: true},
	}
}

// GRPCCCreationSites and GRPCCPerKLOC are the paper's gRPC-C contrast:
// "only five creation sites and 0.03 sites per KLOC".
const (
	GRPCCCreationSites = 5
	GRPCCPerKLOC       = 0.03
	// GRPCCPrimitiveUsages: "gRPC-C only uses lock, and it is used in 746
	// places (5.3 primitive usages per KLOC)".
	GRPCCPrimitiveUsages = 746
	GRPCCPrimPerKLOC     = 5.3
	// GRPCGoPrimitiveUsages: "gRPC-Go uses eight different types of
	// primitives in 786 places (14.8 primitive usages per KLOC)".
	GRPCGoPrimitiveUsages = 786
	GRPCGoPrimPerKLOC     = 14.8
)

// Table4Row is one application's primitive-usage proportions.
type Table4Row struct {
	App    App
	Shares map[string]float64 // keys: Mutex, atomic, Once, WaitGroup, Cond, chan, Misc
	Total  int                // absolute primitive usages
	// TotalReconstructed marks apps whose absolute total was not stated.
	TotalReconstructed bool
}

// Table4Paper returns Table 4 keyed by application. Every share is the
// paper's own number.
func Table4Paper() map[App]Table4Row {
	return map[App]Table4Row{
		Docker: {App: Docker, Total: 1410, TotalReconstructed: true, Shares: map[string]float64{
			"Mutex": .6262, "atomic": .0106, "Once": .0475, "WaitGroup": .0170, "Cond": .0099, "chan": .2787, "Misc.": .0099}},
		Kubernetes: {App: Kubernetes, Total: 4965, TotalReconstructed: true, Shares: map[string]float64{
			"Mutex": .7034, "atomic": .0121, "Once": .0613, "WaitGroup": .0268, "Cond": .0096, "chan": .1848, "Misc.": .0020}},
		Etcd: {App: Etcd, Total: 2075, Shares: map[string]float64{
			"Mutex": .4501, "atomic": .0063, "Once": .0718, "WaitGroup": .0395, "Cond": .0024, "chan": .4299, "Misc.": 0}},
		CockroachDB: {App: CockroachDB, Total: 2024, TotalReconstructed: true, Shares: map[string]float64{
			"Mutex": .5590, "atomic": .0049, "Once": .0376, "WaitGroup": .0857, "Cond": .0148, "chan": .2823, "Misc.": .0157}},
		GRPC: {App: GRPC, Total: 786, Shares: map[string]float64{
			"Mutex": .6120, "atomic": .0115, "Once": .0420, "WaitGroup": .0700, "Cond": .0165, "chan": .2303, "Misc.": .0178}},
		BoltDB: {App: BoltDB, Total: 47, TotalReconstructed: true, Shares: map[string]float64{
			"Mutex": .7021, "atomic": .0213, "Once": 0, "WaitGroup": 0, "Cond": 0, "chan": .2340, "Misc.": .0426}},
	}
}

// Table8Paper is the built-in deadlock detector evaluation: per root cause,
// bugs used and bugs detected. Detected counts and the total of 21 are the
// paper's; the per-cause used counts follow our kernel set's app placement.
type Table8Row struct {
	Cause    string
	Used     int
	Detected int
}

// Table8Paper returns Table 8's rows.
func Table8Paper() []Table8Row {
	return []Table8Row{
		{Cause: "Mutex", Used: 7, Detected: 1},
		{Cause: "Chan", Used: 10, Detected: 0},
		{Cause: "Chan w/", Used: 3, Detected: 1},
		{Cause: "Messaging libraries", Used: 1, Detected: 0},
	}
}

// Table12Row is the race detector evaluation: per root cause, bugs used and
// bugs detected within 100 runs.
type Table12Row struct {
	Cause    string
	Used     int
	Detected int
}

// Table12Paper returns Table 12's rows (traditional 13/7 and anonymous 4/3
// are stated; the remaining three undetected singletons follow the paper's
// category list).
func Table12Paper() []Table12Row {
	return []Table12Row{
		{Cause: "traditional", Used: 13, Detected: 7},
		{Cause: "anonymous function", Used: 4, Detected: 3},
		{Cause: "misusing WaitGroup", Used: 1, Detected: 0},
		{Cause: "lib (message)", Used: 1, Detected: 0},
		{Cause: "chan", Used: 1, Detected: 0},
	}
}
