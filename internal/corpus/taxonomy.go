// Package corpus holds the paper's study data: the two-dimensional bug
// taxonomy (Section 4), the 171 categorized bug records behind Tables 5, 6,
// 7, 9, 10 and 11 and Figure 4, and the application facts of Table 1.
//
// Numbers stated in the paper's prose are encoded verbatim; table cells the
// source extraction garbled are reconstructed to satisfy every stated
// marginal and are flagged Reconstructed (see DESIGN.md §4).
package corpus

// App identifies one of the six studied applications.
type App string

// The six studied applications (Section 2.4).
const (
	Docker      App = "Docker"
	Kubernetes  App = "Kubernetes"
	Etcd        App = "etcd"
	CockroachDB App = "CockroachDB"
	GRPC        App = "gRPC"
	BoltDB      App = "BoltDB"
)

// Apps lists the studied applications in the paper's table order.
var Apps = []App{Docker, Kubernetes, Etcd, CockroachDB, GRPC, BoltDB}

// Behavior is the taxonomy's first dimension (Section 4): does the bug
// involve goroutines that cannot proceed?
type Behavior string

// Behavior values.
const (
	Blocking    Behavior = "blocking"
	NonBlocking Behavior = "non-blocking"
)

// Cause is the taxonomy's second dimension: how were the involved
// goroutines communicating?
type Cause string

// Cause values.
const (
	SharedMemory   Cause = "shared memory"
	MessagePassing Cause = "message passing"
)

// BlockingCause is a blocking bug's root-cause category (Table 6).
type BlockingCause string

// Blocking root causes. The first three misuse shared-memory protection;
// the last three misuse message passing.
const (
	BCMutex   BlockingCause = "Mutex"
	BCRWMutex BlockingCause = "RWMutex"
	BCWait    BlockingCause = "Wait"
	BCChan    BlockingCause = "Chan"
	BCChanW   BlockingCause = "Chan w/"
	BCLib     BlockingCause = "Messaging libraries"
)

// BlockingCauses lists Table 6's columns in order.
var BlockingCauses = []BlockingCause{BCMutex, BCRWMutex, BCWait, BCChan, BCChanW, BCLib}

// CauseOfBlocking maps a blocking root cause to the taxonomy's cause
// dimension.
func CauseOfBlocking(bc BlockingCause) Cause {
	switch bc {
	case BCMutex, BCRWMutex, BCWait:
		return SharedMemory
	default:
		return MessagePassing
	}
}

// NonBlockingCause is a non-blocking bug's root-cause category (Table 9).
type NonBlockingCause string

// Non-blocking root causes. The first four fail to protect shared memory;
// the last two err during message passing.
const (
	NBTraditional NonBlockingCause = "traditional"
	NBAnonymous   NonBlockingCause = "anonymous function"
	NBWaitGroup   NonBlockingCause = "misusing WaitGroup"
	NBLib         NonBlockingCause = "lib"
	NBChan        NonBlockingCause = "chan"
	NBMsgLib      NonBlockingCause = "lib (message)"
)

// NonBlockingCauses lists Table 9's rows in order.
var NonBlockingCauses = []NonBlockingCause{
	NBTraditional, NBAnonymous, NBWaitGroup, NBLib, NBChan, NBMsgLib,
}

// CauseOfNonBlocking maps a non-blocking root cause to the cause dimension.
func CauseOfNonBlocking(nc NonBlockingCause) Cause {
	switch nc {
	case NBChan, NBMsgLib:
		return MessagePassing
	default:
		return SharedMemory
	}
}

// FixStrategy categorizes a patch the way Tables 7 and 10 do. Blocking bugs
// use AddSync/MoveSync/RemoveSync/MiscStrategy; non-blocking bugs
// additionally use Bypass and DataPrivate, following the C/C++
// categorization of [43] the paper adopts.
type FixStrategy string

// Fix strategies.
const (
	AddSync      FixStrategy = "Add_s"
	MoveSync     FixStrategy = "Move_s"
	RemoveSync   FixStrategy = "Rm_s"
	Bypass       FixStrategy = "Bypass"
	DataPrivate  FixStrategy = "Private"
	MiscStrategy FixStrategy = "Misc."
)

// BlockingFixStrategies lists Table 7's columns in order.
var BlockingFixStrategies = []FixStrategy{AddSync, MoveSync, RemoveSync, MiscStrategy}

// NonBlockingFixStrategies lists Table 10's columns in order.
var NonBlockingFixStrategies = []FixStrategy{AddSync, MoveSync, Bypass, DataPrivate, MiscStrategy}

// FixPrimitive is a concurrency primitive a patch leverages (Table 11).
type FixPrimitive string

// Fix primitives.
const (
	FPMutex     FixPrimitive = "Mutex"
	FPChannel   FixPrimitive = "Channel"
	FPAtomic    FixPrimitive = "Atomic"
	FPWaitGroup FixPrimitive = "WaitGroup"
	FPCond      FixPrimitive = "Cond"
	FPMisc      FixPrimitive = "Misc."
	FPNone      FixPrimitive = "None"
)

// FixPrimitives lists Table 11's columns in order.
var FixPrimitives = []FixPrimitive{FPMutex, FPChannel, FPAtomic, FPWaitGroup, FPCond, FPMisc, FPNone}

// Bug is one record of the 171-bug dataset.
type Bug struct {
	// ID is "app#issue" for bugs the paper names, else a synthetic
	// deterministic id.
	ID       string
	App      App
	Behavior Behavior
	Cause    Cause
	// BlockingCause is set for blocking bugs, NonBlockingCause for
	// non-blocking ones.
	BlockingCause    BlockingCause
	NonBlockingCause NonBlockingCause
	// SelectNondeterminism marks the three chan bugs caused by select's
	// random choice (Section 6.1.2, Figure 11).
	SelectNondeterminism bool
	FixStrategy          FixStrategy
	// PatchPrimitives lists the primitives the fixing patch leverages;
	// a patch can use several (Table 11) or none (FPNone).
	PatchPrimitives []FixPrimitive
	// LifetimeDays is the time from the buggy commit to the fix commit
	// (Figure 4).
	LifetimeDays int
	// ReportToFixDays is the (short) time from report to fix; the paper
	// found reports land close to fixes.
	ReportToFixDays int
	PatchLines      int
	// Reproduced marks membership in the detector-evaluation sets
	// (21 blocking for Table 8, 20 non-blocking for Table 12).
	Reproduced bool
	// KernelID links a reproduced bug to its runnable kernel.
	KernelID string
	// Reconstructed is true when this record's cell-level placement was
	// reconstructed from marginals rather than stated outright.
	Reconstructed bool
}
