package corpus

// Query helpers over the dataset, the API a downstream study-consumer uses
// instead of re-filtering Bugs() by hand.

// Filter returns the bugs satisfying pred.
func Filter(pred func(Bug) bool) []Bug {
	var out []Bug
	for _, b := range Bugs() {
		if pred(b) {
			out = append(out, b)
		}
	}
	return out
}

// BlockingBugs returns the 85 blocking records.
func BlockingBugs() []Bug {
	return Filter(func(b Bug) bool { return b.Behavior == Blocking })
}

// NonBlockingBugs returns the 86 non-blocking records.
func NonBlockingBugs() []Bug {
	return Filter(func(b Bug) bool { return b.Behavior == NonBlocking })
}

// ByApp returns one application's records.
func ByApp(app App) []Bug {
	return Filter(func(b Bug) bool { return b.App == app })
}

// ReproducedBugs returns the 41 records in the detector-evaluation sets.
func ReproducedBugs() []Bug {
	return Filter(func(b Bug) bool { return b.Reproduced })
}

// WithKernels returns every record linked to a runnable kernel.
func WithKernels() []Bug {
	return Filter(func(b Bug) bool { return b.KernelID != "" })
}

// ByID looks one record up.
func ByID(id string) (Bug, bool) {
	for _, b := range Bugs() {
		if b.ID == id {
			return b, true
		}
	}
	return Bug{}, false
}

// CountBy aggregates the dataset by an arbitrary key function.
func CountBy[K comparable](bugs []Bug, key func(Bug) K) map[K]int {
	out := map[K]int{}
	for _, b := range bugs {
		out[key(b)]++
	}
	return out
}
