// Package static implements the source-level measurements of Section 3 and
// the preliminary bug detector of Section 7, over Go syntax trees.
//
// Analyze walks a source tree and counts goroutine creation sites (Table 2;
// split into normal-function and anonymous-function creations) and
// concurrency-primitive usages (Table 4; shared-memory primitives Mutex,
// atomic, Once, WaitGroup, Cond versus message-passing primitives chan and
// the messaging libraries counted as Misc).
//
// Classification is name-based over the AST (a call to .Lock() counts as a
// Mutex usage, `make(chan T)` and channel sends/receives as chan usages,
// and so on). On the synthetic application trees under testdata/ — written
// for these analyzers — the heuristics are exact; on arbitrary code they
// are the usual approximation a types-free analyzer makes.
package static

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Primitive is a Table 4 column.
type Primitive string

// Table 4's primitive columns.
const (
	PrimMutex     Primitive = "Mutex" // includes RWMutex, as in the paper
	PrimAtomic    Primitive = "atomic"
	PrimOnce      Primitive = "Once"
	PrimWaitGroup Primitive = "WaitGroup"
	PrimCond      Primitive = "Cond"
	PrimChan      Primitive = "chan"
	PrimMisc      Primitive = "Misc."
)

// Primitives lists the columns in the paper's order.
var Primitives = []Primitive{PrimMutex, PrimAtomic, PrimOnce, PrimWaitGroup, PrimCond, PrimChan, PrimMisc}

// SharedMemoryPrimitives and MessagePassingPrimitives split Table 4's
// columns along the cause dimension.
var (
	SharedMemoryPrimitives   = []Primitive{PrimMutex, PrimAtomic, PrimOnce, PrimWaitGroup, PrimCond}
	MessagePassingPrimitives = []Primitive{PrimChan, PrimMisc}
)

// Metrics are the per-tree measurements.
type Metrics struct {
	Files int
	LOC   int
	// Goroutine creation sites (Table 2).
	GoStmts int
	GoAnon  int // `go func() {...}()`
	GoNamed int // `go f(...)`
	// Primitive usages (Table 4).
	Primitives map[Primitive]int
}

// GoPerKLOC returns goroutine creation sites per thousand lines.
func (m Metrics) GoPerKLOC() float64 {
	if m.LOC == 0 {
		return 0
	}
	return float64(m.GoStmts) / (float64(m.LOC) / 1000)
}

// PrimitiveTotal returns the total primitive usages.
func (m Metrics) PrimitiveTotal() int {
	t := 0
	for _, n := range m.Primitives {
		t += n
	}
	return t
}

// PrimitivesPerKLOC returns primitive usages per thousand lines.
func (m Metrics) PrimitivesPerKLOC() float64 {
	if m.LOC == 0 {
		return 0
	}
	return float64(m.PrimitiveTotal()) / (float64(m.LOC) / 1000)
}

// Share returns primitive p's proportion of all primitive usages.
func (m Metrics) Share(p Primitive) float64 {
	t := m.PrimitiveTotal()
	if t == 0 {
		return 0
	}
	return float64(m.Primitives[p]) / float64(t)
}

// ShareOf returns the combined proportion of a primitive group.
func (m Metrics) ShareOf(group []Primitive) float64 {
	t := 0.0
	for _, p := range group {
		t += m.Share(p)
	}
	return t
}

// Analyze parses every .go file under root and accumulates metrics.
func Analyze(root string) (Metrics, error) {
	files, fset, err := parseTree(root)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Primitives: map[Primitive]int{}}
	for path, f := range files {
		m.Files++
		m.LOC += countLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			countNode(&m, n)
			return true
		})
		_ = path
	}
	return m, nil
}

// AnalyzeFileSet analyzes already-parsed files (used by tests).
func AnalyzeFileSet(fset *token.FileSet, files []*ast.File) Metrics {
	m := Metrics{Primitives: map[Primitive]int{}}
	for _, f := range files {
		m.Files++
		m.LOC += countLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			countNode(&m, n)
			return true
		})
	}
	return m
}

func parseTree(root string) (map[string]*ast.File, *token.FileSet, error) {
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		files[path] = f
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("static: no Go files under %s", root)
	}
	return files, fset, nil
}

func countLines(fset *token.FileSet, f *ast.File) int {
	tf := fset.File(f.Pos())
	if tf == nil {
		return 0
	}
	return tf.LineCount()
}

func countNode(m *Metrics, n ast.Node) {
	switch x := n.(type) {
	case *ast.GoStmt:
		m.GoStmts++
		if _, anon := x.Call.Fun.(*ast.FuncLit); anon {
			m.GoAnon++
		} else {
			m.GoNamed++
		}
	case *ast.SendStmt:
		m.Primitives[PrimChan]++
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			m.Primitives[PrimChan]++
		}
	case *ast.CallExpr:
		countCall(m, x)
	case *ast.SelectStmt:
		m.Primitives[PrimChan]++
	case *ast.Field:
		countType(m, x.Type)
	case *ast.ValueSpec:
		countType(m, x.Type)
	case *ast.CompositeLit:
		countType(m, x.Type)
	}
}

// countCall classifies a call expression: make(chan), close(ch), method
// calls on sync primitives, and package calls into sync/atomic, context and
// time (the Misc. messaging libraries).
func countCall(m *Metrics, c *ast.CallExpr) {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if len(c.Args) > 0 {
				if _, ok := c.Args[0].(*ast.ChanType); ok {
					m.Primitives[PrimChan]++
				}
			}
		case "close":
			m.Primitives[PrimChan]++
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch pkg.Name {
			case "atomic":
				m.Primitives[PrimAtomic]++
				return
			case "context":
				m.Primitives[PrimMisc]++
				return
			case "io":
				if name == "Pipe" {
					m.Primitives[PrimMisc]++
					return
				}
			case "time":
				switch name {
				case "After", "NewTimer", "NewTicker", "Tick", "AfterFunc":
					m.Primitives[PrimMisc]++
					return
				}
			}
		}
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "RLocker":
			m.Primitives[PrimMutex]++
		case "Do":
			m.Primitives[PrimOnce]++
		case "Add", "Done":
			m.Primitives[PrimWaitGroup]++
		case "Wait":
			// Ambiguous between WaitGroup and Cond; attribute to
			// WaitGroup, the overwhelmingly common case.
			m.Primitives[PrimWaitGroup]++
		case "Signal", "Broadcast":
			m.Primitives[PrimCond]++
		}
	}
}

// countType attributes sync.* type mentions (declarations of Mutex,
// WaitGroup fields and variables, chan types).
func countType(m *Metrics, t ast.Expr) {
	switch x := t.(type) {
	case nil:
	case *ast.ChanType:
		m.Primitives[PrimChan]++
	case *ast.SelectorExpr:
		if pkg, ok := x.X.(*ast.Ident); ok && pkg.Name == "sync" {
			switch x.Sel.Name {
			case "Mutex", "RWMutex":
				m.Primitives[PrimMutex]++
			case "Once":
				m.Primitives[PrimOnce]++
			case "WaitGroup":
				m.Primitives[PrimWaitGroup]++
			case "Cond":
				m.Primitives[PrimCond]++
			case "Map", "Pool":
				m.Primitives[PrimMisc]++
			}
		}
	}
}

// SortedPrimitiveCounts returns "name=count" strings in column order, for
// stable debugging output.
func (m Metrics) SortedPrimitiveCounts() []string {
	var out []string
	for _, p := range Primitives {
		out = append(out, fmt.Sprintf("%s=%d", p, m.Primitives[p]))
	}
	sort.Strings(out)
	return out
}
