package static

import (
	"fmt"
	"go/ast"
	"go/token"
)

// This file implements the paper's Section 7 preliminary detector: "we
// built a detector targeting the non-blocking bugs caused by anonymous
// functions (e.g. Figure 8). Our detector has already discovered a few new
// bugs, one of which has been confirmed by real application developers."
//
// The detector flags goroutines created from anonymous functions that
// capture variables of the enclosing function when either
//
//   - the capture is a loop variable of a loop enclosing the go statement
//     (the Figure 8 pattern: every child reads `i` while the parent keeps
//     writing it), or
//   - the captured variable is written by the enclosing function after the
//     goroutine has been spawned (the parent/child race of Section 6.1.1).
//
// Both patterns are syntactic over-approximations: a capture synchronized
// through a channel or WaitGroup can be safe. That is faithful to the
// paper's tool, which reported candidates for human confirmation.

// AnonRaceFinding is one candidate bug.
type AnonRaceFinding struct {
	File   string
	Line   int
	Var    string
	Reason string // "loop variable" or "written after go"
}

// String renders the finding like a compiler diagnostic.
func (f AnonRaceFinding) String() string {
	return fmt.Sprintf("%s:%d: goroutine captures %q (%s)", f.File, f.Line, f.Var, f.Reason)
}

// FindAnonRaces analyzes every .go file under root.
func FindAnonRaces(root string) ([]AnonRaceFinding, error) {
	files, fset, err := parseTree(root)
	if err != nil {
		return nil, err
	}
	var out []AnonRaceFinding
	for _, f := range files {
		out = append(out, findInFile(fset, f)...)
	}
	sortFindings(out)
	return out, nil
}

// FindAnonRacesInFiles analyzes already-parsed files.
func FindAnonRacesInFiles(fset *token.FileSet, files []*ast.File) []AnonRaceFinding {
	var out []AnonRaceFinding
	for _, f := range files {
		out = append(out, findInFile(fset, f)...)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []AnonRaceFinding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func less(a, b AnonRaceFinding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Var < b.Var
}

func findInFile(fset *token.FileSet, f *ast.File) []AnonRaceFinding {
	var out []AnonRaceFinding
	// Examine every function (declaration or literal) independently.
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		out = append(out, analyzeFunc(fset, fn.Body, paramNames(fn.Type))...)
		return true
	})
	return out
}

func paramNames(ft *ast.FuncType) map[string]bool {
	names := map[string]bool{}
	if ft.Params != nil {
		for _, fld := range ft.Params.List {
			for _, id := range fld.Names {
				names[id.Name] = true
			}
		}
	}
	if ft.Results != nil {
		for _, fld := range ft.Results.List {
			for _, id := range fld.Names {
				names[id.Name] = true
			}
		}
	}
	return names
}

// analyzeFunc inspects one function body for go-statements over FuncLits.
func analyzeFunc(fset *token.FileSet, body *ast.BlockStmt, params map[string]bool) []AnonRaceFinding {
	// Collect local declarations (including params) — capture candidates.
	locals := map[string]bool{}
	for n := range params {
		locals[n] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						locals[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			if x.Tok == token.VAR {
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							if id.Name != "_" {
								locals[id.Name] = true
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					locals[id.Name] = true
				}
			}
		}
		return true
	})

	var out []AnonRaceFinding
	// Walk with a stack of enclosing loops.
	var walk func(n ast.Node, loopVars []map[string]bool)
	walk = func(n ast.Node, loopVars []map[string]bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			vars := map[string]bool{}
			if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						vars[id.Name] = true
					}
				}
			}
			walk(x.Body, append(loopVars, vars))
			return
		case *ast.RangeStmt:
			vars := map[string]bool{}
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					vars[id.Name] = true
				}
			}
			walk(x.Body, append(loopVars, vars))
			return
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				out = append(out, checkGoLit(fset, x, lit, locals, loopVars, body)...)
			}
		}
		// Generic traversal for everything else.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.GoStmt:
				walk(c, loopVars)
				return false
			case *ast.FuncLit:
				// Nested function literals get their own analysis
				// scope; do not descend here.
				return false
			}
			return true
		})
	}
	walk(body, nil)
	return out
}

// checkGoLit reports captures of loop variables and of locals written after
// the go statement.
func checkGoLit(fset *token.FileSet, g *ast.GoStmt, lit *ast.FuncLit, locals map[string]bool, loopVars []map[string]bool, body *ast.BlockStmt) []AnonRaceFinding {
	captured := capturedIdents(lit, locals)
	if len(captured) == 0 {
		return nil
	}
	writtenAfter := identsWrittenAfter(body, g.End())
	var out []AnonRaceFinding
	pos := fset.Position(g.Pos())
	for name := range captured {
		reason := ""
		for _, vars := range loopVars {
			if vars[name] {
				reason = "loop variable"
			}
		}
		if reason == "" && writtenAfter[name] {
			reason = "written after go"
		}
		if reason == "" {
			continue
		}
		out = append(out, AnonRaceFinding{
			File: pos.Filename, Line: pos.Line, Var: name, Reason: reason,
		})
	}
	return out
}

// capturedIdents returns enclosing-function locals referenced by the
// literal but not re-declared inside it (nor bound as its parameters).
func capturedIdents(lit *ast.FuncLit, locals map[string]bool) map[string]bool {
	shadowed := map[string]bool{}
	for n := range paramNames(lit.Type) {
		shadowed[n] = true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						shadowed[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok {
					shadowed[id.Name] = true
				}
			}
		}
		return true
	})
	captured := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// Skip selector tails (x.Field) — only the receiver matters.
		if sel, ok := n.(*ast.SelectorExpr); ok {
			ast.Inspect(sel.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && locals[id.Name] && !shadowed[id.Name] {
					captured[id.Name] = true
				}
				return true
			})
			return false
		}
		if id, ok := n.(*ast.Ident); ok && locals[id.Name] && !shadowed[id.Name] {
			captured[id.Name] = true
		}
		return true
	})
	return captured
}

// identsWrittenAfter collects names assigned (or ++/--) at positions after
// pos within the function body.
func identsWrittenAfter(body *ast.BlockStmt, pos token.Pos) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Pos() > pos {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if x.Pos() > pos {
				if id, ok := x.X.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.ForStmt:
			// A loop's post statement re-executes "after" any go
			// statement inside its body.
			if x.Post != nil && x.End() > pos && x.Pos() < pos {
				switch p := x.Post.(type) {
				case *ast.IncDecStmt:
					if id, ok := p.X.(*ast.Ident); ok {
						out[id.Name] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range p.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}
