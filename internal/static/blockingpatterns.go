package static

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Static blocking-pattern detectors, following Section 7's discussion:
// "static analysis plus previous deadlock detection algorithms will still be
// useful in detecting most Go blocking bugs caused by errors in shared
// memory synchronization. Static technologies can also help in detecting
// bugs that are caused by the combination of channel and locks, such as the
// one in Figure 7."
//
// Two detectors are implemented, both syntactic over-approximations that
// report candidates for review (like the paper's own preliminary tool):
//
//   - ChanUnderLock: a potentially blocking channel operation (send,
//     receive, or default-less select) lexically between an X.Lock() and
//     the matching X.Unlock() in the same function — the Figure 7 /
//     BoltDB#240 shape. Selects with a default branch are skipped: adding
//     one is precisely the paper's fix for this bug class.
//   - MissingUnlock: a return statement reachable while a lock taken in the
//     same function is still held (no deferred unlock, no unlock before the
//     return) — the forgotten-unlock shape behind several of the paper's 28
//     Mutex bugs.

// BlockingFinding is one candidate blocking bug.
type BlockingFinding struct {
	File    string
	Line    int
	Pattern string // "chan-under-lock" or "missing-unlock"
	Lock    string
	Detail  string
}

// String renders the finding like a compiler diagnostic.
func (f BlockingFinding) String() string {
	return fmt.Sprintf("%s:%d: [%s] lock %q: %s", f.File, f.Line, f.Pattern, f.Lock, f.Detail)
}

// FindBlockingPatterns analyzes every .go file under root.
func FindBlockingPatterns(root string) ([]BlockingFinding, error) {
	files, fset, err := parseTree(root)
	if err != nil {
		return nil, err
	}
	var out []BlockingFinding
	for _, f := range files {
		out = append(out, FindBlockingPatternsInFile(fset, f)...)
	}
	sortBlockingFindings(out)
	return out, nil
}

// FindBlockingPatternsInFile analyzes one parsed file.
func FindBlockingPatternsInFile(fset *token.FileSet, f *ast.File) []BlockingFinding {
	var out []BlockingFinding
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		out = append(out, analyzeLockRegions(fset, fn)...)
		return true
	})
	sortBlockingFindings(out)
	return out
}

func sortBlockingFindings(fs []BlockingFinding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && blockingLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func blockingLess(a, b BlockingFinding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Pattern < b.Pattern
}

// lockEvent is a Lock/Unlock call site within a function, in source order.
type lockEvent struct {
	pos      token.Pos
	recv     string // receiver expression, e.g. "s.mu"
	unlock   bool
	deferred bool
}

// analyzeLockRegions walks one function's statements in source order and
// tracks which lock receivers are held.
func analyzeLockRegions(fset *token.FileSet, fn *ast.FuncDecl) []BlockingFinding {
	var events []lockEvent
	deferredUnlocks := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if recv, unlock := lockCall(x.Call); unlock {
				deferredUnlocks[recv] = true
			}
			return false
		case *ast.CallExpr:
			if recv, unlock := lockCall(x); recv != "" || unlock {
				if recv != "" {
					events = append(events, lockEvent{pos: x.Pos(), recv: recv, unlock: unlock})
				}
			}
		case *ast.FuncLit:
			return false // literals get their own conceptual scope
		}
		return true
	})

	// heldAt reports the set of receivers lexically locked at pos.
	heldAt := func(pos token.Pos) []string {
		held := map[string]int{}
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			if e.unlock {
				if held[e.recv] > 0 {
					held[e.recv]--
				}
			} else {
				held[e.recv]++
			}
		}
		var out []string
		for r, n := range held {
			if n > 0 && !deferredUnlocks[r] {
				out = append(out, r)
			}
		}
		return out
	}

	var out []BlockingFinding
	// Pattern 0: double acquisition of the same lock with no release in
	// between — the BoltDB#392 shape ("we believe traditional deadlock
	// detection algorithms should be able to detect these bugs with
	// static program analysis", Section 5.1.1).
	held := map[string]bool{}
	for _, e := range events {
		if e.unlock {
			delete(held, e.recv)
			continue
		}
		if held[e.recv] && !deferredUnlocks[e.recv] {
			p := fset.Position(e.pos)
			out = append(out, BlockingFinding{
				File: p.Filename, Line: p.Line, Pattern: "double-lock",
				Lock: e.recv, Detail: "second acquisition with the lock still held (locks are not reentrant)",
			})
		}
		held[e.recv] = true
	}

	// Pattern 1: channel operations under a held lock.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var pos token.Pos
		var what string
		switch x := n.(type) {
		case *ast.SendStmt:
			pos, what = x.Pos(), "channel send"
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pos, what = x.Pos(), "channel receive"
			}
		case *ast.SelectStmt:
			if selectHasDefault(x) {
				return false // the Figure 7 fix: never blocks
			}
			pos, what = x.Pos(), "default-less select"
		}
		if what == "" {
			return true
		}
		for _, lock := range heldAt(pos) {
			p := fset.Position(pos)
			out = append(out, BlockingFinding{
				File: p.Filename, Line: p.Line, Pattern: "chan-under-lock",
				Lock: lock, Detail: what + " while the lock is held (Figure 7 pattern)",
			})
		}
		return true
	})

	// Pattern 2: returns with a lock still held.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, lock := range heldAt(ret.Pos()) {
			p := fset.Position(ret.Pos())
			out = append(out, BlockingFinding{
				File: p.Filename, Line: p.Line, Pattern: "missing-unlock",
				Lock: lock, Detail: "return while the lock is held and no unlock is deferred",
			})
		}
		return true
	})
	return out
}

// lockCall classifies a call as a lock or unlock on some receiver, and
// returns the receiver's source text.
func lockCall(c *ast.CallExpr) (recv string, unlock bool) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprText(sel.X), false
	case "Unlock", "RUnlock":
		return exprText(sel.X), true
	}
	return "", false
}

// exprText renders a (simple) receiver expression for matching Lock with
// Unlock.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	default:
		return strings.TrimSpace(fmt.Sprintf("%T", e))
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
