package static

import (
	"path/filepath"
	"testing"
)

// The analyzers must handle a real, non-trivial Go codebase — this
// repository itself.

func TestAnalyzeOwnSources(t *testing.T) {
	root := filepath.Join("..", "..", "internal")
	m, err := Analyze(root)
	if err != nil {
		t.Fatal(err)
	}
	if m.Files < 20 || m.LOC < 5000 {
		t.Fatalf("implausible self-scan: %d files, %d lines", m.Files, m.LOC)
	}
	// This repo launches real goroutines (sim's host goroutines, rpc's
	// workers) and uses sync primitives.
	if m.GoStmts == 0 {
		t.Fatal("no goroutine creation sites found in the repo")
	}
	if m.Primitives[PrimMutex] == 0 || m.Primitives[PrimChan] == 0 {
		t.Fatalf("primitive counts implausible: %v", m.Primitives)
	}
}

func TestAnonRacesOnOwnSourcesDoesNotCrash(t *testing.T) {
	root := filepath.Join("..", "..", "internal")
	findings, err := FindAnonRaces(root)
	if err != nil {
		t.Fatal(err)
	}
	// The detector is an over-approximation; it may flag candidates in
	// this repo (e.g. captures synchronized through sim's own channels).
	// The contract here is robustness, not silence.
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Var == "" {
			t.Fatalf("malformed finding: %+v", f)
		}
	}
}

func TestBlockingPatternsOnOwnSourcesDoesNotCrash(t *testing.T) {
	root := filepath.Join("..", "..", "internal")
	findings, err := FindBlockingPatterns(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 {
			t.Fatalf("malformed finding: %+v", f)
		}
	}
}

func TestAnalyzeMissingDirErrors(t *testing.T) {
	if _, err := Analyze(filepath.Join("..", "..", "no-such-dir")); err == nil {
		t.Fatal("expected an error for a missing directory")
	}
}
