package static

import "testing"

func findBlocking(t *testing.T, src string) []BlockingFinding {
	t.Helper()
	fset, files := parseSrc(t, src)
	return FindBlockingPatternsInFile(fset, files[0])
}

func TestChanSendUnderLockFlagged(t *testing.T) {
	// Figure 7's goroutine1.
	src := `package p
import "sync"
func f(m *sync.Mutex, ch chan int) {
	m.Lock()
	ch <- 1
	m.Unlock()
}
`
	got := findBlocking(t, src)
	if len(got) != 1 || got[0].Pattern != "chan-under-lock" || got[0].Lock != "m" {
		t.Fatalf("findings = %v, want one chan-under-lock on m", got)
	}
}

func TestChanRecvUnderLockFlagged(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, ch chan int) {
	m.Lock()
	<-ch
	m.Unlock()
}
`
	got := findBlocking(t, src)
	if len(got) != 1 || got[0].Detail != "channel receive while the lock is held (Figure 7 pattern)" {
		t.Fatalf("findings = %v", got)
	}
}

func TestSelectWithDefaultUnderLockClean(t *testing.T) {
	// The paper's fix for Figure 7: select with a default branch.
	src := `package p
import "sync"
func f(m *sync.Mutex, ch chan int) {
	m.Lock()
	select {
	case ch <- 1:
	default:
	}
	m.Unlock()
}
`
	if got := findBlocking(t, src); len(got) != 0 {
		t.Fatalf("patched Figure 7 flagged: %v", got)
	}
}

func TestDefaultlessSelectUnderLockFlagged(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, a, b chan int) {
	m.Lock()
	select {
	case <-a:
	case <-b:
	}
	m.Unlock()
}
`
	got := findBlocking(t, src)
	found := false
	for _, g := range got {
		if g.Pattern == "chan-under-lock" && g.Detail == "default-less select while the lock is held (Figure 7 pattern)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings = %v, want a default-less-select finding", got)
	}
}

func TestChanAfterUnlockClean(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, ch chan int) {
	m.Lock()
	m.Unlock()
	ch <- 1
}
`
	if got := findBlocking(t, src); len(got) != 0 {
		t.Fatalf("lock-free send flagged: %v", got)
	}
}

func TestMissingUnlockOnReturnFlagged(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, fail bool) {
	m.Lock()
	if fail {
		return
	}
	m.Unlock()
}
`
	got := findBlocking(t, src)
	if len(got) != 1 || got[0].Pattern != "missing-unlock" {
		t.Fatalf("findings = %v, want one missing-unlock", got)
	}
}

func TestDeferredUnlockClean(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, fail bool) {
	m.Lock()
	defer m.Unlock()
	if fail {
		return
	}
}
`
	if got := findBlocking(t, src); len(got) != 0 {
		t.Fatalf("deferred unlock flagged: %v", got)
	}
}

func TestUnlockBeforeReturnClean(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, fail bool) {
	m.Lock()
	if fail {
		m.Unlock()
		return
	}
	m.Unlock()
}
`
	if got := findBlocking(t, src); len(got) != 0 {
		t.Fatalf("correct unlock-then-return flagged: %v", got)
	}
}

func TestSelectorReceiversMatch(t *testing.T) {
	src := `package p
import "sync"
type S struct{ mu sync.Mutex; ch chan int }
func (s *S) f(fail bool) {
	s.mu.Lock()
	if fail {
		return
	}
	s.ch <- 1
	s.mu.Unlock()
}
`
	got := findBlocking(t, src)
	var patterns []string
	for _, g := range got {
		if g.Lock != "s.mu" {
			t.Fatalf("lock receiver = %q, want s.mu", g.Lock)
		}
		patterns = append(patterns, g.Pattern)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %v, want missing-unlock and chan-under-lock", got)
	}
}

func TestFuncLitBodiesAreSeparateScopes(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex, ch chan int) {
	m.Lock()
	go func() {
		ch <- 1 // separate goroutine, not under f's lexical lock region
	}()
	m.Unlock()
}
`
	if got := findBlocking(t, src); len(got) != 0 {
		t.Fatalf("goroutine body flagged against the parent's lock: %v", got)
	}
}

func TestDoubleLockFlagged(t *testing.T) {
	// BoltDB#392's shape, lexically.
	src := `package p
import "sync"
func f(m *sync.Mutex) {
	m.Lock()
	m.Lock()
	m.Unlock()
	m.Unlock()
}
`
	got := findBlocking(t, src)
	found := false
	for _, g := range got {
		if g.Pattern == "double-lock" && g.Lock == "m" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double lock not flagged: %v", got)
	}
}

func TestLockUnlockLockClean(t *testing.T) {
	src := `package p
import "sync"
func f(m *sync.Mutex) {
	m.Lock()
	m.Unlock()
	m.Lock()
	m.Unlock()
}
`
	for _, g := range findBlocking(t, src) {
		if g.Pattern == "double-lock" {
			t.Fatalf("re-acquisition after release flagged: %v", g)
		}
	}
}

func TestTwoDifferentLocksClean(t *testing.T) {
	src := `package p
import "sync"
func f(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
`
	for _, g := range findBlocking(t, src) {
		if g.Pattern == "double-lock" {
			t.Fatalf("nested distinct locks flagged: %v", g)
		}
	}
}
