package static

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestCountsGoroutineCreationSites(t *testing.T) {
	src := `package p
import "fmt"
func work() {}
func main() {
	go work()
	go func() { fmt.Println("x") }()
	go func() {}()
}
`
	_, files := parseSrc(t, src)
	fset, _ := parseSrc(t, src)
	m := AnalyzeFileSet(fset, files)
	if m.GoStmts != 3 || m.GoAnon != 2 || m.GoNamed != 1 {
		t.Fatalf("go stmts=%d anon=%d named=%d, want 3/2/1", m.GoStmts, m.GoAnon, m.GoNamed)
	}
}

func TestCountsPrimitives(t *testing.T) {
	src := `package p
import (
	"sync"
	"sync/atomic"
)
type S struct {
	mu sync.Mutex
	wg sync.WaitGroup
	once sync.Once
	c chan int
}
var n int64
func f(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
	s.wg.Add(1)
	s.wg.Done()
	s.wg.Wait()
	s.once.Do(func() {})
	atomic.AddInt64(&n, 1)
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
	select {
	case <-ch:
	default:
	}
}
`
	fset, files := parseSrc(t, src)
	m := AnalyzeFileSet(fset, files)
	want := map[Primitive]int{
		PrimMutex:     3, // field decl + Lock + Unlock
		PrimWaitGroup: 4, // field decl + Add + Done + Wait
		PrimOnce:      2, // field decl + Do
		PrimAtomic:    1,
	}
	for p, n := range want {
		if m.Primitives[p] != n {
			t.Errorf("%s = %d, want %d", p, m.Primitives[p], n)
		}
	}
	// chan: field decl, make, send, 2 recv (one in select case), close,
	// select.
	if m.Primitives[PrimChan] < 6 {
		t.Errorf("chan = %d, want >= 6", m.Primitives[PrimChan])
	}
}

func TestSharesSumToOne(t *testing.T) {
	src := `package p
import "sync"
var mu sync.Mutex
func f() { mu.Lock(); mu.Unlock(); ch := make(chan int); close(ch) }
`
	fset, files := parseSrc(t, src)
	m := AnalyzeFileSet(fset, files)
	total := 0.0
	for _, p := range Primitives {
		total += m.Share(p)
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %f", total)
	}
}

func TestAnonRaceLoopVariable(t *testing.T) {
	// Figure 8's shape.
	src := `package p
import "fmt"
func f() {
	for i := 17; i <= 21; i++ {
		go func() {
			apiVersion := fmt.Sprintf("v1.%d", i)
			_ = apiVersion
		}()
	}
}
`
	fset, files := parseSrc(t, src)
	got := FindAnonRacesInFiles(fset, files)
	if len(got) != 1 || got[0].Var != "i" || got[0].Reason != "loop variable" {
		t.Fatalf("findings = %+v, want one loop-variable capture of i", got)
	}
}

func TestAnonRaceRangeVariable(t *testing.T) {
	src := `package p
func f(items []string) {
	for _, it := range items {
		go func() { _ = it }()
	}
}
`
	fset, files := parseSrc(t, src)
	got := FindAnonRacesInFiles(fset, files)
	if len(got) != 1 || got[0].Var != "it" {
		t.Fatalf("findings = %+v, want one capture of it", got)
	}
}

func TestAnonRaceWrittenAfterGo(t *testing.T) {
	src := `package p
func f() {
	err := error(nil)
	go func() { _ = err }()
	err = doWork()
	_ = err
}
func doWork() error { return nil }
`
	fset, files := parseSrc(t, src)
	got := FindAnonRacesInFiles(fset, files)
	if len(got) != 1 || got[0].Var != "err" || got[0].Reason != "written after go" {
		t.Fatalf("findings = %+v, want one written-after-go capture of err", got)
	}
}

func TestAnonRaceCopiedParameterIsClean(t *testing.T) {
	// The Figure 8 patch: pass i as a parameter.
	src := `package p
func f() {
	for i := 0; i < 3; i++ {
		go func(i int) { _ = i }(i)
	}
}
`
	fset, files := parseSrc(t, src)
	if got := FindAnonRacesInFiles(fset, files); len(got) != 0 {
		t.Fatalf("patched code flagged: %+v", got)
	}
}

func TestAnonRaceShadowedRedeclarationIsClean(t *testing.T) {
	src := `package p
func f() {
	for i := 0; i < 3; i++ {
		i := i
		go func() { _ = i }()
	}
}
`
	fset, files := parseSrc(t, src)
	got := FindAnonRacesInFiles(fset, files)
	// The classic i := i copy: the captured i is the per-iteration copy.
	// Our syntactic detector cannot distinguish the two declarations by
	// name, so this remains a (documented) false positive of the
	// over-approximating detector — assert the current behavior so any
	// improvement is deliberate.
	if len(got) != 1 {
		t.Fatalf("findings = %+v; the i := i idiom is a known false positive", got)
	}
}

func TestAnonRaceNamedFunctionIsClean(t *testing.T) {
	src := `package p
func g(i int) {}
func f() {
	for i := 0; i < 3; i++ {
		go g(i)
	}
}
`
	fset, files := parseSrc(t, src)
	if got := FindAnonRacesInFiles(fset, files); len(got) != 0 {
		t.Fatalf("named-function goroutine flagged: %+v", got)
	}
}
