// Package stats provides the statistical tools the paper's analysis uses:
// the lift correlation metric of Sections 5.2 and 6.2 and the empirical CDF
// behind Figure 4.
package stats

import (
	"fmt"
	"sort"
)

// Lift computes lift(A, B) = P(AB) / (P(A) * P(B)) over a population of
// size total, where countA is |A|, countB is |B| and countAB is |A ∩ B|.
// A lift of 1 means independence; above 1, positive correlation ("if a
// blocking is caused by A, it is more likely to be fixed by B"); below 1,
// negative correlation.
func Lift(total, countA, countB, countAB int) float64 {
	if total == 0 || countA == 0 || countB == 0 {
		return 0
	}
	pAB := float64(countAB) / float64(total)
	pA := float64(countA) / float64(total)
	pB := float64(countB) / float64(total)
	return pAB / (pA * pB)
}

// Contingency is a labeled 2-D count table (rows = causes, cols = fixes)
// with lift computation per cell.
type Contingency struct {
	RowLabels []string
	ColLabels []string
	Counts    [][]int
}

// NewContingency allocates a zeroed table.
func NewContingency(rows, cols []string) *Contingency {
	c := &Contingency{RowLabels: rows, ColLabels: cols, Counts: make([][]int, len(rows))}
	for i := range c.Counts {
		c.Counts[i] = make([]int, len(cols))
	}
	return c
}

// Add increments cell (row, col); unknown labels panic (a programming
// error, not data).
func (c *Contingency) Add(row, col string, n int) {
	i, j := index(c.RowLabels, row), index(c.ColLabels, col)
	c.Counts[i][j] += n
}

func index(labels []string, l string) int {
	for i, x := range labels {
		if x == l {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown label %q", l))
}

// RowTotal returns the sum of one row.
func (c *Contingency) RowTotal(row string) int {
	i := index(c.RowLabels, row)
	t := 0
	for _, v := range c.Counts[i] {
		t += v
	}
	return t
}

// ColTotal returns the sum of one column.
func (c *Contingency) ColTotal(col string) int {
	j := index(c.ColLabels, col)
	t := 0
	for i := range c.Counts {
		t += c.Counts[i][j]
	}
	return t
}

// Total returns the table's grand total.
func (c *Contingency) Total() int {
	t := 0
	for i := range c.Counts {
		for _, v := range c.Counts[i] {
			t += v
		}
	}
	return t
}

// CellLift returns lift(row, col) over the table.
func (c *Contingency) CellLift(row, col string) float64 {
	i, j := index(c.RowLabels, row), index(c.ColLabels, col)
	return Lift(c.Total(), c.RowTotal(row), c.ColTotal(col), c.Counts[i][j])
}

// LiftRanking lists every (row, col) pair with a positive count, sorted by
// descending lift; minRow filters out rows with fewer bugs, matching the
// paper's "we omit categories that have less than 10 bugs".
type LiftEntry struct {
	Row, Col string
	Count    int
	Lift     float64
}

// LiftRanking computes the ranking.
func (c *Contingency) LiftRanking(minRow int) []LiftEntry {
	var out []LiftEntry
	for i, r := range c.RowLabels {
		if c.RowTotal(r) < minRow {
			continue
		}
		for j, col := range c.ColLabels {
			if c.Counts[i][j] == 0 {
				continue
			}
			out = append(out, LiftEntry{Row: r, Col: col, Count: c.Counts[i][j], Lift: c.CellLift(r, col)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Lift != out[b].Lift {
			return out[a].Lift > out[b].Lift
		}
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		return out[a].Col < out[b].Col
	})
	return out
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Median returns the 0.5-quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points samples the CDF at n evenly spaced x positions across the data
// range, for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	t := 0.0
	for _, s := range samples {
		t += s
	}
	return t / float64(len(samples))
}
