package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiftIndependenceIsOne(t *testing.T) {
	t.Parallel()
	// P(AB) = P(A)P(B) exactly: 100 total, A=20, B=50, AB=10.
	if got := Lift(100, 20, 50, 10); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("lift = %f, want 1", got)
	}
}

func TestLiftPaperExample(t *testing.T) {
	t.Parallel()
	// The Mutex->Move_s correlation: 85 bugs, 28 Mutex, 18 moves, 9 both.
	got := Lift(85, 28, 18, 9)
	if math.Abs(got-1.5178) > 0.001 {
		t.Fatalf("lift = %f, want ≈1.518", got)
	}
}

func TestLiftDegenerateInputs(t *testing.T) {
	t.Parallel()
	if Lift(0, 1, 1, 1) != 0 || Lift(10, 0, 5, 0) != 0 || Lift(10, 5, 0, 0) != 0 {
		t.Fatal("degenerate lifts should be 0")
	}
}

func TestLiftMonotoneInOverlap(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 20 + r.Intn(200)
		a := 1 + r.Intn(total/2)
		b := 1 + r.Intn(total/2)
		maxAB := a
		if b < a {
			maxAB = b
		}
		ab1 := r.Intn(maxAB)
		ab2 := ab1 + 1
		return Lift(total, a, b, ab1) < Lift(total, a, b, ab2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContingencyTotals(t *testing.T) {
	t.Parallel()
	c := NewContingency([]string{"r1", "r2"}, []string{"c1", "c2", "c3"})
	c.Add("r1", "c1", 3)
	c.Add("r1", "c3", 2)
	c.Add("r2", "c2", 5)
	if c.RowTotal("r1") != 5 || c.RowTotal("r2") != 5 {
		t.Fatal("row totals wrong")
	}
	if c.ColTotal("c1") != 3 || c.ColTotal("c2") != 5 || c.ColTotal("c3") != 2 {
		t.Fatal("col totals wrong")
	}
	if c.Total() != 10 {
		t.Fatal("grand total wrong")
	}
}

func TestContingencyUnknownLabelPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown label")
		}
	}()
	c := NewContingency([]string{"a"}, []string{"b"})
	c.Add("nope", "b", 1)
}

func TestLiftRankingSortedAndFiltered(t *testing.T) {
	t.Parallel()
	c := NewContingency([]string{"big", "small"}, []string{"x", "y"})
	c.Add("big", "x", 12)
	c.Add("big", "y", 3)
	c.Add("small", "y", 2)
	ranking := c.LiftRanking(10)
	for _, e := range ranking {
		if e.Row == "small" {
			t.Fatalf("row below the minimum leaked into the ranking: %+v", e)
		}
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i-1].Lift < ranking[i].Lift {
			t.Fatalf("ranking not sorted: %+v", ranking)
		}
	}
}

func TestCDFBasics(t *testing.T) {
	t.Parallel()
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %f", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %f", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %f", got)
	}
	if got := c.Median(); got != 3 {
		t.Fatalf("Median() = %f", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64() * 100
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -10.0; x <= 110; x += 7 {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64() * 100
		}
		c := NewCDF(samples)
		for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.9, 1, 1.5} {
			v := c.Quantile(q)
			if v < c.Quantile(0) || v > c.Quantile(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	t.Parallel()
	c := NewCDF([]float64{1, 5, 9})
	pts := c.Points(5)
	if len(pts) != 5 || pts[0][0] != 1 || pts[4][0] != 9 || pts[4][1] != 1 {
		t.Fatalf("points = %v", pts)
	}
}

func TestMean(t *testing.T) {
	t.Parallel()
	if Mean(nil) != 0 {
		t.Fatal("mean of nothing should be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %f", got)
	}
}
