package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	s := openT(t, filepath.Join(t.TempDir(), "v.db"), Options{})
	if err := s.Put("k1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get(k1) = %q, %v", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	s := openT(t, path, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.Get("k"); string(got) != "v2" {
		t.Fatalf("in-memory Get = %q, want v2", got)
	}
	s.Close()
	// The log holds all three records; reopening must index the latest.
	r := openT(t, path, Options{})
	if got, ok := r.Get("k"); !ok || string(got) != "v2" {
		t.Fatalf("reopened Get = %q, %v, want v2", got, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", r.Len())
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	s := openT(t, path, Options{})
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%d", i*i)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	r := openT(t, path, Options{})
	for k, v := range want {
		if got, ok := r.Get(k); !ok || string(got) != v {
			t.Errorf("Get(%s) = %q, %v, want %q", k, got, ok, v)
		}
	}
}

// TestLRUEvictionOrderAndCounters fills the store past its size bound and
// asserts the least-recently-used entries go first — including that a Get
// refreshes recency — and that the counters account every eviction.
func TestLRUEvictionOrderAndCounters(t *testing.T) {
	t.Parallel()
	// Each record is recordHeader(8) + keylen(4) + key(4) + val(100) = 116
	// bytes; a 500-byte budget fits 4.
	s := openT(t, filepath.Join(t.TempDir(), "v.db"), Options{MaxBytes: 500})
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if ev := s.Stats().Evictions; ev != 0 {
		t.Fatalf("%d evictions before crossing the budget", ev)
	}
	// Freshen k000 so k001 is now the LRU entry.
	if _, ok := s.Get("k000"); !ok {
		t.Fatal("k000 missing before eviction")
	}
	if err := s.Put("k004", val); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k001"); ok {
		t.Error("k001 survived eviction; want it dropped as LRU")
	}
	for _, k := range []string{"k000", "k002", "k003", "k004"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%s evicted; want it live", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 4 {
		t.Errorf("Entries = %d, want 4", st.Entries)
	}
	if st.LiveBytes > 500 {
		t.Errorf("LiveBytes = %d, want <= budget 500", st.LiveBytes)
	}

	// Keep filling: every additional put past the budget evicts exactly one
	// more, in recency order.
	for i := 5; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Evictions; got != 6 {
		t.Errorf("Evictions after refill = %d, want 6", got)
	}
	keys := s.Keys()
	if len(keys) != 4 {
		t.Fatalf("live keys = %v, want 4 entries", keys)
	}
	// The survivors are the four most recent puts, LRU-first.
	for i, want := range []string{"k006", "k007", "k008", "k009"} {
		if keys[i] != want {
			t.Errorf("Keys()[%d] = %s, want %s (full order %v)", i, keys[i], want, keys)
		}
	}
}

// TestBitFlipQuarantineAndRecompute corrupts one stored record on disk and
// asserts the store still opens, quarantines exactly the bad entry, misses
// on its key (so the caller recomputes), and serves the others intact.
func TestBitFlipQuarantineAndRecompute(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	s := openT(t, path, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte('a' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one bit inside the LAST record's value region: framing stays
	// intact, the CRC does not.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, path, Options{})
	st := r.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if _, ok := r.Get("k2"); ok {
		t.Error("corrupted k2 served from the store; want a miss")
	}
	for _, k := range []string{"k0", "k1"} {
		if _, ok := r.Get(k); !ok {
			t.Errorf("%s lost; corruption must quarantine only the bad record", k)
		}
	}
	// The caller's recompute path: put the recomputed value, read it back,
	// and it must also survive a reopen.
	if err := r.Put("k2", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("k2"); !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed k2 = %q, %v", got, ok)
	}
	r.Close()
	r2 := openT(t, path, Options{})
	if got, ok := r2.Get("k2"); !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed k2 after reopen = %q, %v", got, ok)
	}
}

// TestTornTailTruncatedOnOpen simulates a crash mid-append: the file ends in
// half a record. Open must recover every complete record and truncate the
// tail so the next append starts clean.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	s := openT(t, path, Options{})
	if err := s.Put("whole", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", bytes.Repeat([]byte("y"), 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the second record.
	if err := os.WriteFile(path, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, path, Options{})
	if _, ok := r.Get("whole"); !ok {
		t.Error("record before the torn tail lost")
	}
	if _, ok := r.Get("torn"); ok {
		t.Error("torn record served")
	}
	if q := r.Stats().Quarantined; q != 1 {
		t.Errorf("Quarantined = %d, want 1", q)
	}
	// The tail is gone: an append after recovery must be readable.
	if err := r.Put("after", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openT(t, path, Options{})
	for _, k := range []string{"whole", "after"} {
		if _, ok := r2.Get(k); !ok {
			t.Errorf("%s unreadable after torn-tail recovery + append", k)
		}
	}
}

// TestForeignFileMovedAside: a file that is not a store (bad magic) is moved
// to .corrupt and replaced — Open never refuses a cache.
func TestForeignFileMovedAside(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	if err := os.WriteFile(path, []byte("this is not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, path, Options{})
	if q := s.Stats().Quarantined; q != 1 {
		t.Errorf("Quarantined = %d, want 1", q)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("foreign file not preserved at .corrupt: %v", err)
	}
}

// TestCompactionShrinksFile: overwriting one key many times leaves dead
// records; once they dominate, the log is rewritten and reopening still
// serves the latest values.
func TestCompactionShrinksFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "v.db")
	s := openT(t, path, Options{MaxBytes: 4096})
	val := bytes.Repeat([]byte("z"), 256)
	for i := 0; i < 200; i++ {
		if err := s.Put("hot", val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 200 overwrites (file %d bytes)", st.FileBytes)
	}
	// Dead records re-accumulate between compactions; the invariant is
	// that the log never exceeds twice the budget (plus the record that
	// crossed the threshold).
	if st.FileBytes > 2*4096+512 {
		t.Errorf("FileBytes = %d, want <= 2*MaxBytes", st.FileBytes)
	}
	s.Close()
	r := openT(t, path, Options{MaxBytes: 4096})
	if got, ok := r.Get("hot"); !ok || !bytes.Equal(got, val) {
		t.Error("hot key wrong after compaction + reopen")
	}
	if got, ok := r.Get("cold"); !ok || string(got) != "keep" {
		t.Error("cold key wrong after compaction + reopen")
	}
}

func TestKeyCanonicalForm(t *testing.T) {
	t.Parallel()
	k := Key{
		Fingerprint: "sweep/v1 kernel=docker-abba-order variant=buggy",
		Config:      "cfg-123",
		Detectors:   "leak,race,vet",
		Seeds:       "base=1 runs=100",
	}
	want := "sweep/v1 kernel=docker-abba-order variant=buggy | cfg=cfg-123 | dets=leak,race,vet | base=1 runs=100"
	if k.String() != want {
		t.Errorf("Key.String() = %q, want %q", k.String(), want)
	}
	if (Key{}).String() == k.String() {
		t.Error("distinct keys rendered identically")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	t.Parallel()
	s := openT(t, filepath.Join(t.TempDir(), "v.db"), Options{MaxBytes: 128})
	if err := s.Put("big", bytes.Repeat([]byte("b"), 4096)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("big"); ok {
		t.Error("value larger than the whole budget was cached")
	}
	// Normal entries still work around it.
	if err := s.Put("small", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("small"); !ok {
		t.Error("small entry lost")
	}
}

func TestGetHitAllocsZero(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "v.db"), Options{})
	if err := s.Put("key", bytes.Repeat([]byte("v"), 64)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Get("key"); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	s := openT(t, filepath.Join(t.TempDir(), "v.db"), Options{MaxBytes: 1 << 16, NoSync: true})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%17)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(k); ok && string(v) != k {
					t.Errorf("Get(%s) = %q", k, v)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
