// Package store is the persistent verdict cache behind the job engine: a
// single-file, crash-safe key/value store memoizing exploration results so a
// long-running godetect daemon (or a resumed one-shot sweep) serves verdicts
// it has already computed instead of re-exploring.
//
// The design is a bbolt-style single file reduced to what a cache needs: an
// append-only log of CRC-guarded records with an in-memory index and the
// values resident in memory (the cache is size-bounded, so memory is too).
// Every Put appends one record and fsyncs before acknowledging, so a
// SIGKILL at any instant loses at most the in-flight record; Open tolerates
// whatever a crash can leave behind — a torn tail is truncated away, a
// bit-flipped record is quarantined (skipped and counted, the reader keeps
// going), and a file whose header is unreadable is moved aside rather than
// trusted. Rewrites (eviction compaction) go through the standard temp +
// fsync + rename dance, so the file on disk is always either the old
// generation or the new one.
//
// Eviction is LRU over a live-byte budget: Get refreshes recency, Put past
// the budget drops the least-recently-used entries first (counted), and when
// the file accumulates enough dead records (overwritten or evicted) it is
// compacted in recency order. Counters for hits, misses, puts, evictions,
// quarantined records, and compactions feed the daemon's stats endpoint.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

const (
	// magic identifies a store file (format store/v1).
	magic = "gcbstor1"
	// recordHeader is the fixed per-record prefix: u32 payload length +
	// u32 CRC32(payload).
	recordHeader = 8
	// maxRecordBytes bounds a single record; a length field beyond it is
	// treated as corruption, not as a 4 GB allocation request.
	maxRecordBytes = 1 << 26 // 64 MB

	// DefaultMaxBytes is the live-value budget when Options.MaxBytes is
	// unset.
	DefaultMaxBytes = 64 << 20
)

// Key names one memoized exploration result. The four fields mirror what
// makes a verdict reusable: what was explored (kernel fingerprint), under
// which runtime parameters (config digest), judged by which detector set,
// and over which seed range. String renders the canonical form used as the
// store key; equal Keys always render equal strings.
type Key struct {
	// Fingerprint identifies the explored program and mode, e.g.
	// "sweep/v1 kernel=docker-abba-order variant=buggy".
	Fingerprint string
	// Config is a digest of the deterministic sim configuration (step
	// budget, leak threshold, shadow words, ...).
	Config string
	// Detectors is the judgment set, canonical order, comma-joined.
	// Empty for modes without attached detectors.
	Detectors string
	// Seeds is the seed range or schedule budget, e.g. "base=1 runs=100".
	Seeds string
}

// String is the canonical store key for k.
func (k Key) String() string {
	return k.Fingerprint + " | cfg=" + k.Config + " | dets=" + k.Detectors + " | " + k.Seeds
}

// Options configures Open.
type Options struct {
	// MaxBytes bounds the live (indexed) record bytes; past it the
	// least-recently-used entries are evicted. <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// NoSync skips the fsync after each append. Only for tests and
	// benchmarks that measure the in-memory path: without the sync a crash
	// can lose acknowledged puts (never corrupt the file — Open still
	// recovers the readable prefix).
	NoSync bool
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries and LiveBytes describe the indexed (servable) records;
	// FileBytes is the on-disk log size including dead records awaiting
	// compaction.
	Entries   int   `json:"entries"`
	LiveBytes int64 `json:"liveBytes"`
	FileBytes int64 `json:"fileBytes"`
	// Hits and Misses count Get outcomes; Puts counts acknowledged
	// appends.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// Evictions counts entries dropped by the LRU budget; Quarantined
	// counts records skipped as corrupt at Open; Compactions counts log
	// rewrites.
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
	Compactions uint64 `json:"compactions"`
}

// entry is one live record: the value, its recency stamp, and its on-disk
// footprint (header + key + value) for the byte budgets.
type entry struct {
	val  []byte
	seq  uint64
	size int64
}

// Store is a crash-safe persistent cache. All methods are safe for
// concurrent use.
type Store struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	opts      Options
	idx       map[string]*entry
	seq       uint64
	liveBytes int64
	fileBytes int64
	stats     Stats
}

// Open opens or creates the store file at path. Open never fails on
// corruption: torn tails are truncated, undecodable records are quarantined
// (counted in Stats.Quarantined), and a file whose header is not a store
// file is moved aside to path+".corrupt" and replaced with a fresh store.
func Open(path string, opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	s := &Store{path: path, opts: opts, idx: make(map[string]*entry)}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load reads the whole log, building the index. Later records for a key win
// (an overwrite leaves the older record dead until compaction).
func (s *Store) load() error {
	data, err := os.ReadFile(s.path)
	switch {
	case os.IsNotExist(err):
		return s.create()
	case err != nil:
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		// The header itself is gone: nothing in the file can be trusted.
		// Move it aside for post-mortems and start fresh — a cache must
		// open, the worst case is recomputing.
		if len(data) > 0 {
			_ = os.Rename(s.path, s.path+".corrupt")
			s.stats.Quarantined++
		}
		return s.create()
	}

	off := len(magic)
	good := off // end of the last cleanly parsed record
	for off < len(data) {
		if len(data)-off < recordHeader {
			break // torn header: a crash mid-append
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n < 4 || n > maxRecordBytes || off+recordHeader+n > len(data) {
			// The length field is implausible or runs past EOF. Either a
			// torn tail or a corrupted length — record boundaries are lost
			// from here on, so quarantine the remainder.
			s.stats.Quarantined++
			break
		}
		payload := data[off+recordHeader : off+recordHeader+n]
		off += recordHeader + n
		if crc32.ChecksumIEEE(payload) != sum {
			// A bit-flipped record with intact framing: skip just it and
			// keep reading — the next read of its key will miss and
			// recompute.
			s.stats.Quarantined++
			good = off
			continue
		}
		kl := int(binary.LittleEndian.Uint32(payload))
		if kl < 0 || 4+kl > len(payload) {
			s.stats.Quarantined++
			good = off
			continue
		}
		key := string(payload[4 : 4+kl])
		val := append([]byte(nil), payload[4+kl:]...)
		s.index(key, val, int64(recordHeader+n))
		good = off
	}

	// O_APPEND: every put lands after the recovered prefix, even right
	// after the truncate below.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening %s: %w", s.path, err)
	}
	s.f = f
	if good < len(data) {
		// Drop the torn/quarantined tail so the next append starts at a
		// clean record boundary.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	s.fileBytes = int64(good)
	s.evict()
	return nil
}

func (s *Store) create() error {
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", s.path, err)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return fmt.Errorf("store: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing header: %w", err)
	}
	s.f = f
	s.fileBytes = int64(len(magic))
	return nil
}

// index stores (key, val) in memory, replacing any older entry (whose bytes
// become dead file weight until compaction).
func (s *Store) index(key string, val []byte, size int64) {
	if old, ok := s.idx[key]; ok {
		s.liveBytes -= old.size
	}
	s.seq++
	s.idx[key] = &entry{val: val, seq: s.seq, size: size}
	s.liveBytes += size
}

// Get returns the value stored under key and refreshes its recency. The
// returned slice is the store's own copy: callers must treat it as read-only
// and decode before the entry can be evicted. The hit path performs no
// allocations.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.idx[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.stats.Hits++
	s.seq++
	e.seq = s.seq
	v := e.val
	s.mu.Unlock()
	return v, true
}

// GetKey is Get over a structured Key.
func (s *Store) GetKey(k Key) ([]byte, bool) { return s.Get(k.String()) }

// Put stores val under key: one appended, CRC-guarded, fsynced record.
// Values whose record alone would exceed the live budget are silently not
// cached (storing them would evict everything else for one entry). The
// append is atomic from a reader's point of view: a crash mid-write leaves a
// torn tail the next Open truncates.
func (s *Store) Put(key string, val []byte) error {
	rec := int64(recordHeader + 4 + len(key) + len(val))
	if rec > s.opts.MaxBytes {
		return nil
	}
	payload := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint32(payload, uint32(len(key)))
	copy(payload[4:], key)
	copy(payload[4+len(key):], val)
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %w", s.path, err)
		}
	}
	s.fileBytes += int64(len(buf))
	s.index(key, append([]byte(nil), val...), rec)
	s.stats.Puts++
	s.evict()
	return s.maybeCompact()
}

// PutKey is Put over a structured Key.
func (s *Store) PutKey(k Key, val []byte) error { return s.Put(k.String(), val) }

// evict drops least-recently-used entries until the live bytes fit the
// budget. Called with mu held.
func (s *Store) evict() {
	if s.liveBytes <= s.opts.MaxBytes {
		return
	}
	// Collect and sort by recency once per eviction wave; waves are rare
	// (only when a put crosses the budget), so the O(n log n) is paid off
	// the hot path.
	type cand struct {
		key string
		e   *entry
	}
	cands := make([]cand, 0, len(s.idx))
	for k, e := range s.idx {
		cands = append(cands, cand{k, e})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].e.seq < cands[j].e.seq })
	for _, c := range cands {
		if s.liveBytes <= s.opts.MaxBytes {
			break
		}
		delete(s.idx, c.key)
		s.liveBytes -= c.e.size
		s.stats.Evictions++
	}
}

// maybeCompact rewrites the log when dead records (overwritten or evicted)
// dominate it: the live entries are written in recency order to a temp file
// which is fsynced and renamed over the log. Called with mu held.
func (s *Store) maybeCompact() error {
	if s.fileBytes <= 2*s.opts.MaxBytes || s.fileBytes <= 2*s.liveBytes {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	type cand struct {
		key string
		e   *entry
	}
	cands := make([]cand, 0, len(s.idx))
	for k, e := range s.idx {
		cands = append(cands, cand{k, e})
	}
	// Oldest first, so the rebuilt log's scan order reproduces recency.
	sort.Slice(cands, func(i, j int) bool { return cands[i].e.seq < cands[j].e.seq })

	tmp, err := os.CreateTemp(dirOf(s.path), "store.compact*")
	if err != nil {
		return fmt.Errorf("store: compaction temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(magic); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction header: %w", err)
	}
	total := int64(len(magic))
	for _, c := range cands {
		payload := make([]byte, 4+len(c.key)+len(c.e.val))
		binary.LittleEndian.PutUint32(payload, uint32(len(c.key)))
		copy(payload[4:], c.key)
		copy(payload[4+len(c.key):], c.e.val)
		hdr := make([]byte, recordHeader)
		binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction write: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction write: %w", err)
		}
		total += int64(len(hdr) + len(payload))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing compaction: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compaction: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: publishing compaction: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening after compaction: %w", err)
	}
	s.f.Close()
	// Reopen in append mode so subsequent puts land after the rebuilt log.
	s.f = f
	s.fileBytes = total
	s.stats.Compactions++
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Compact forces a log rewrite regardless of the dead-record ratio.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Keys returns the live keys, least-recently-used first — the eviction
// order. Intended for tests and diagnostics.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		key string
		seq uint64
	}
	cands := make([]cand, 0, len(s.idx))
	for k, e := range s.idx {
		cands = append(cands, cand{k, e.seq})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.key
	}
	return out
}

// Stats returns a snapshot of the counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.idx)
	st.LiveBytes = s.liveBytes
	st.FileBytes = s.fileBytes
	return st
}

// Close syncs and closes the file. Further puts fail; the Store is done.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if !s.opts.NoSync {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
