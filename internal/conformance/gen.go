package conformance

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Mode selects the family of programs the generator draws from.
type Mode int

const (
	// ModeSafe generates programs whose host execution is free of data
	// races by construction (every shared var is accessed under its own
	// host-side mutex), so the default differential suite stays green
	// under `go test -race`. All scheduling nondeterminism — rendezvous
	// order, select choice, lock-order deadlocks, lost updates through
	// two-step read-modify-writes — is still present.
	ModeSafe Mode = iota
	// ModeRacy additionally marks one shared var as deliberately
	// unsynchronized and injects unconditional accesses to it from two
	// goroutines: emitted as real Go source and built with -race, such a
	// program must draw a host race report, and the sim race detector
	// must flag it somewhere in the schedule space.
	ModeRacy
)

// Families selects which of the newer primitive families the generator may
// draw from; the channel/mutex/waitgroup core is always present. CI's
// per-primitive lanes narrow the set via godetect -kinds.
type Families struct {
	Cond  bool
	Timer bool
	Ctx   bool
	Sem   bool
}

// AllFamilies enables every primitive family (the default sweep).
var AllFamilies = Families{Cond: true, Timer: true, Ctx: true, Sem: true}

// ParseFamilies parses a comma-separated family list ("cond,timer,ctx,sem")
// as the godetect -kinds flag supplies it; empty means all families.
func ParseFamilies(csv string) (Families, error) {
	if strings.TrimSpace(csv) == "" {
		return AllFamilies, nil
	}
	var f Families
	for _, part := range strings.Split(csv, ",") {
		switch strings.TrimSpace(part) {
		case "cond":
			f.Cond = true
		case "timer":
			f.Timer = true
		case "ctx", "context":
			f.Ctx = true
		case "sem", "semaphore":
			f.Sem = true
		case "":
		default:
			return Families{}, fmt.Errorf("unknown primitive family %q (want cond, timer, ctx, sem)", strings.TrimSpace(part))
		}
	}
	return f, nil
}

// generator bundles the random source with the program being built.
type generator struct {
	rng  *rand.Rand
	p    *Program
	fams Families
	// tailG is the goroutine carrying the timer tail (-1: none); insertions
	// into it stay before the tail, keeping the tail the final statement.
	tailG int
	// noWaitG is the wake-guaranteed broadcaster goroutine (-1: none);
	// statements that can block forever stay out of it.
	noWaitG int
}

// Generate builds the program for a seed. Equal (seed, mode) pairs always
// yield identical programs — a failing program is reproduced from its seed
// alone.
func Generate(seed int64, mode Mode) *Program {
	return GenerateWith(seed, mode, AllFamilies)
}

// GenerateWith is Generate with the drawable primitive families narrowed.
// Narrowing boosts the included families' weights, so a small per-primitive
// sweep still covers them densely; program identity depends on the full
// (seed, mode, families) triple.
func GenerateWith(seed int64, mode Mode, fams Families) *Program {
	g := &generator{
		// The second PCG word is a fixed arbitrary constant so program
		// identity depends only on the seed.
		rng:     rand.New(rand.NewPCG(uint64(seed), 0x5eed5eed5eed5eed)),
		p:       &Program{Seed: seed},
		fams:    fams,
		tailG:   -1,
		noWaitG: -1,
	}
	p := g.p

	// Resource counts. At least one channel and one var so every program
	// has message passing and observable state.
	nChans := 1 + g.intn(3)
	for i := 0; i < nChans; i++ {
		decl := ChanDecl{Cap: g.intn(3)}
		if g.chance(8) { // rare: a nil channel (blocks forever, close panics)
			decl.Nil = true
		}
		p.Chans = append(p.Chans, decl)
	}
	p.Mutexes = g.intn(3)
	p.RWMutexes = g.intn(2)
	p.Onces = g.intn(2)
	p.Vars = 1 + g.intn(3)
	if g.chance(50) {
		p.WaitGroups = 1
	}
	p.RacyVars = make([]bool, p.Vars)
	// New-primitive resources. Semaphores and contexts get statements
	// through stmt()'s weighted draw below; whether a declared resource is
	// actually used in a given program is itself random.
	if fams.Sem && g.chance(g.pct(25)) {
		p.Sems = append(p.Sems, 1+g.intn(2))
	}
	if fams.Ctx && g.chance(g.pct(30)) {
		// The root cancellable context derives from Background, which (as
		// in real Go) attaches no propagation goroutine on either backend.
		p.Ctxs = append(p.Ctxs, CtxDecl{Parent: -1})
		if g.chance(30) {
			// A derived context does spawn the sim's propagation goroutine;
			// Generate plants a guaranteed cancel below so no schedule can
			// leak it while the host-side (goroutine-free) context runs on.
			p.Ctxs = append(p.Ctxs, CtxDecl{Parent: 0})
		}
	}

	// Size class: mostly small programs so systematic exploration of the
	// schedule space completes, with a tail of larger ones that exercise
	// the oracle's weak (budget-bounded) mode.
	var nGs, maxStmts int
	switch c := g.intn(100); {
	case c < 50:
		nGs, maxStmts = 2, 3
	case c < 85:
		nGs, maxStmts = 3, 3
	default:
		nGs, maxStmts = 2+g.intn(4), 4 // 2-5 goroutines
	}

	p.Goroutines = make([][]Stmt, nGs)
	for gi := 0; gi < nGs; gi++ {
		p.Goroutines[gi] = g.stmts(1+g.intn(maxStmts), 0)
	}

	// Structured constructs over the base bodies. Order matters: the cond
	// construct may append the broadcaster goroutine, the context shapes
	// insert at unconstrained positions, and the timer tail claims its
	// goroutine's final slot — everything inserted after it goes through
	// randPos, which respects that slot.
	if fams.Cond && g.chance(g.pct(30)) {
		g.condConstruct()
	}
	if len(p.Ctxs) > 0 && g.chance(35) {
		g.ctxLeakShape()
	}
	if len(p.Ctxs) > 1 {
		// Guaranteed cancel for the derived context: in every schedule its
		// carrier goroutine either runs the (non-blocking, idempotent)
		// cancel — waking the sim's propagation goroutine — or blocks or
		// panics first, hanging or crashing both backends alike.
		g.insert(Stmt{Kind: StCtxCancel, Cx: 1}, false)
	}
	if fams.Timer && len(p.Goroutines) > 1 && g.chance(g.pct(20)) {
		g.timerTail()
	}

	// WaitGroup discipline: every Add happens in main before any spawn
	// (prepended below), which is the documented usage rule — and exactly
	// the discipline that avoids the real runtime's "Add called
	// concurrently with Wait" misuse panic, which the simulator does not
	// model. Done and Wait go anywhere; an unbalanced count yields a
	// negative-counter panic or a hang on both backends.
	wgAdds := 0
	if p.WaitGroups > 0 {
		wgAdds = 1 + g.intn(3)
		dones := wgAdds + []int{-1, 0, 0, 0, 1}[g.intn(5)]
		for i := 0; i < dones; i++ {
			g.insert(Stmt{Kind: StWgDone, Wg: 0}, false)
		}
		for i, n := 0, g.intn(2); i < n; i++ {
			g.insert(Stmt{Kind: StWgWait, Wg: 0}, true)
		}
	}

	// Racy injection: two distinct goroutines get an unconditional
	// top-level write to a dedicated racy var each, with no possible
	// synchronization between them.
	if mode == ModeRacy {
		rv := g.intn(p.Vars)
		p.RacyVars[rv] = true
		nAll := len(p.Goroutines)
		a, b := g.intn(nAll), g.intn(nAll)
		for b == a {
			b = g.intn(nAll)
		}
		for _, gi := range []int{a, b} {
			g.insertInto(gi, Stmt{Kind: StVarAdd, Dst: rv, Val: g.val()})
		}
	}

	// Main's prologue: WaitGroup Adds first, then spawns at random
	// positions in the rest of its body — except the broadcaster's spawn,
	// which is forced to the front so a cond waiter in main can never park
	// before its wake-up source exists.
	main := p.Goroutines[0]
	for gi := len(p.Goroutines) - 1; gi >= 1; gi-- {
		if gi == g.noWaitG {
			continue
		}
		at := g.intn(len(main) + 1)
		main = insertAt(main, at, Stmt{Kind: StSpawn, G: gi})
	}
	if g.noWaitG > 0 {
		main = insertAt(main, 0, Stmt{Kind: StSpawn, G: g.noWaitG})
	}
	if wgAdds > 0 {
		main = insertAt(main, 0, Stmt{Kind: StWgAdd, Wg: 0, Val: int64(wgAdds)})
	}
	p.Goroutines[0] = main
	return p
}

// pct widens a family's inclusion probability when the family set is
// narrowed: the -kinds lanes sweep few programs and want dense coverage.
func (g *generator) pct(base int) int {
	if g.fams == AllFamilies {
		return base
	}
	out := base * 5 / 2
	if out > 90 {
		out = 90
	}
	return out
}

// condConstruct adds the program's cond (at most one) in one of two shapes.
//
// Shape A ("signal-guaranteed"): 1-2 waiters with either guard at random
// top-level positions, plus a dedicated broadcaster goroutine whose whole
// body is one predicate-setting Broadcast and whose spawn Generate forces
// to the front of main. The broadcaster can neither block nor be kept from
// spawning, setting the predicate under the lock keeps any waiter from
// parking after the broadcast, and Broadcast wakes every earlier parker —
// so no schedule of a non-panicking run can end with a goroutine on the
// cond, which is exactly what the liveness oracle asserts. (Signal would
// not do: with two waiters parked it wakes only one.)
//
// Shape B ("orphanable"): an if-guarded waiter whose wake-up is not
// guaranteed — no signaller at all, a signaller that does not set the
// predicate (the paper's missed-signal bug: delivered before the wait, the
// signal is lost and the waiter parks forever), or a predicate-setting
// signaller that may itself block first. Those hangs are schedule-dependent
// and identical across backends, so the membership oracle alone judges them.
func (g *generator) condConstruct() {
	p := g.p
	p.Conds = 1
	if g.chance(60) {
		for i, n := 0, 1+g.intn(2); i < n; i++ {
			g.insert(Stmt{Kind: StCondWait, C: 0, ForGuard: g.chance(50)}, true)
		}
		g.noWaitG = len(p.Goroutines)
		p.Goroutines = append(p.Goroutines, []Stmt{{Kind: StCondBroadcast, C: 0, SetReady: true}})
		p.SignalGuaranteed = true
		return
	}
	g.insert(Stmt{Kind: StCondWait, C: 0}, true)
	switch g.intn(3) {
	case 0: // orphaned outright
	case 1:
		g.insert(Stmt{Kind: StCondSignal, C: 0}, true)
	default:
		g.insert(Stmt{Kind: StCondSignal, C: 0, SetReady: true}, true)
	}
	p.CondOrphaned = true
}

// ctxLeakShape injects the paper's context-cancellation leak: a receiver
// guarded by <-ctx.Done() in a select, and a bare sender on the same fresh
// unbuffered channel in another goroutine. In cancel-first schedules the
// receiver takes the done arm and the sender blocks forever — reachable on
// both backends and judged by membership.
func (g *generator) ctxLeakShape() {
	p := g.p
	ch := len(p.Chans)
	p.Chans = append(p.Chans, ChanDecl{Cap: 0})
	cx := g.intn(len(p.Ctxs))
	pick := func() int {
		for {
			if gi := g.intn(len(p.Goroutines)); gi != g.noWaitG {
				return gi
			}
		}
	}
	a := pick()
	b := pick()
	for b == a {
		b = pick()
	}
	g.insertInto(a, Stmt{Kind: StSelect, Cases: []SelCase{
		{Ch: ch, Dst: g.dst()},
		{CtxDone: true, Cx: cx, Dst: -1},
	}})
	g.insertInto(b, Stmt{Kind: StSend, Ch: ch, Val: g.val()})
}

// timerTail appends exactly one timer construct as the FINAL statement of
// one spawned goroutine, in one of three forms: a plain <-time.After, a
// bounded ticker loop, or a select with a timeout arm guarding a channel op
// (the paper's timeout idiom). Finality is the soundness invariant: the sim
// fires timers only at quiescence (maximal progress), so a timer construct
// with nothing after it cannot order a continuation against other
// goroutines' statements — which makes the sim's virtual-time schedule
// space a superset of the host's real-time outcomes. randPos keeps every
// later insertion before the tail.
func (g *generator) timerTail() {
	p := g.p
	gi := 1 + g.intn(len(p.Goroutines)-1)
	rank := 1 + g.intn(2)
	var s Stmt
	switch g.intn(3) {
	case 0:
		s = Stmt{Kind: StTimerAfter, Dur: rank}
	case 1:
		s = Stmt{Kind: StTickerLoop, Dur: rank, N: 2 + g.intn(2)}
	default:
		c := SelCase{Ch: g.intn(len(p.Chans))}
		if g.chance(50) {
			c.Send, c.Val = true, g.val()
		} else {
			c.Dst = g.dst()
		}
		s = Stmt{Kind: StSelect, Cases: []SelCase{c, {Timeout: true, Dur: rank, Dst: -1}}}
	}
	p.Goroutines[gi] = append(p.Goroutines[gi], s)
	g.tailG = gi
}

// stmts generates n statements at the given lock-nesting depth.
func (g *generator) stmts(n, depth int) []Stmt {
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth)...)
	}
	return out
}

// stmt generates one statement — possibly a balanced lock region holding
// nested statements, which is how lock-order and double-lock deadlocks enter
// the program family.
func (g *generator) stmt(depth int) []Stmt {
	p := g.p
	for {
		switch g.intn(15) {
		case 0, 1: // send
			return []Stmt{{Kind: StSend, Ch: g.intn(len(p.Chans)), Val: g.val()}}
		case 2, 3: // recv
			return []Stmt{{Kind: StRecv, Ch: g.intn(len(p.Chans)), Dst: g.dst()}}
		case 4: // close
			return []Stmt{{Kind: StClose, Ch: g.intn(len(p.Chans))}}
		case 5: // select
			return []Stmt{g.selectStmt()}
		case 6, 7: // mutex region
			if p.Mutexes == 0 {
				continue
			}
			mu := g.intn(p.Mutexes)
			var body []Stmt
			if depth < 2 { // bound region nesting
				body = g.stmts(g.intn(2)+1, depth+1)
			}
			region := []Stmt{{Kind: StLock, Mu: mu}}
			region = append(region, body...)
			return append(region, Stmt{Kind: StUnlock, Mu: mu})
		case 8: // rwmutex region
			if p.RWMutexes == 0 {
				continue
			}
			mu := g.intn(p.RWMutexes)
			lk, ulk := StRLock, StRUnlock
			if g.chance(40) {
				lk, ulk = StWLock, StWUnlock
			}
			var body []Stmt
			if depth < 2 {
				body = g.stmts(g.intn(2)+1, depth+1)
			}
			region := []Stmt{{Kind: lk, Mu: mu}}
			region = append(region, body...)
			return append(region, Stmt{Kind: ulk, Mu: mu})
		case 9: // once
			if p.Onces == 0 {
				continue
			}
			return []Stmt{{Kind: StOnceDo, O: g.intn(p.Onces), Body: g.onceBody()}}
		case 10: // var ops
			if g.chance(50) {
				return []Stmt{{Kind: StVarStore, Dst: g.intn(p.Vars), Val: g.val()}}
			}
			return []Stmt{{Kind: StVarAdd, Dst: g.intn(p.Vars), Val: g.val()}}
		case 11:
			return []Stmt{{Kind: StYield}}
		case 12: // semaphore: balanced region, rare orphan acquire or bare release
			if len(p.Sems) == 0 {
				continue
			}
			sem := g.intn(len(p.Sems))
			if g.chance(12) { // leaked token: later acquirers may starve
				return []Stmt{{Kind: StSemAcquire, Sem: sem}}
			}
			if g.chance(8) { // may panic, schedule-dependent; sim explores both
				return []Stmt{{Kind: StSemRelease, Sem: sem}}
			}
			var body []Stmt
			if depth < 2 {
				body = g.stmts(g.intn(2)+1, depth+1)
			}
			region := []Stmt{{Kind: StSemAcquire, Sem: sem}}
			region = append(region, body...)
			return append(region, Stmt{Kind: StSemRelease, Sem: sem})
		case 13: // context cancel (idempotent, never blocks)
			if len(p.Ctxs) == 0 {
				continue
			}
			return []Stmt{{Kind: StCtxCancel, Cx: g.intn(len(p.Ctxs))}}
		case 14: // wait for cancellation (blocks forever if never cancelled)
			if len(p.Ctxs) == 0 {
				continue
			}
			return []Stmt{{Kind: StCtxDone, Cx: g.intn(len(p.Ctxs))}}
		}
	}
}

// selectStmt builds a select with 1-3 cases and an optional default.
func (g *generator) selectStmt() Stmt {
	p := g.p
	n := 1 + g.intn(3)
	s := Stmt{Kind: StSelect, HasDefault: g.chance(40)}
	for i := 0; i < n; i++ {
		if len(p.Ctxs) > 0 && g.chance(20) {
			s.Cases = append(s.Cases, SelCase{CtxDone: true, Cx: g.intn(len(p.Ctxs)), Dst: -1})
			continue
		}
		c := SelCase{Ch: g.intn(len(p.Chans))}
		if g.chance(50) {
			c.Send, c.Val = true, g.val()
		} else {
			c.Dst = g.dst()
		}
		s.Cases = append(s.Cases, c)
	}
	return s
}

// onceBody keeps Once bodies shallow: plain sends, stores and yields.
func (g *generator) onceBody() []Stmt {
	p := g.p
	var out []Stmt
	for i, n := 0, 1+g.intn(2); i < n; i++ {
		switch g.intn(3) {
		case 0:
			out = append(out, Stmt{Kind: StSend, Ch: g.intn(len(p.Chans)), Val: g.val()})
		case 1:
			out = append(out, Stmt{Kind: StVarStore, Dst: g.intn(p.Vars), Val: g.val()})
		case 2:
			out = append(out, Stmt{Kind: StYield})
		}
	}
	return out
}

// insert places s at a random top-level position of a random goroutine,
// subject to the structural invariants: nothing lands after a timer tail,
// and statements that can block forever (canBlock) stay out of the
// wake-guaranteed broadcaster goroutine.
func (g *generator) insert(s Stmt, canBlock bool) {
	gi := g.intn(len(g.p.Goroutines))
	for canBlock && gi == g.noWaitG {
		gi = g.intn(len(g.p.Goroutines))
	}
	g.insertInto(gi, s)
}

// insertInto places s at a random position of goroutine gi, before gi's
// timer tail if it has one.
func (g *generator) insertInto(gi int, s Stmt) {
	g.p.Goroutines[gi] = insertAt(g.p.Goroutines[gi], g.randPos(gi), s)
}

// randPos draws an insertion position in goroutine gi that keeps a timer
// tail final.
func (g *generator) randPos(gi int) int {
	limit := len(g.p.Goroutines[gi])
	if gi == g.tailG {
		limit--
	}
	return g.intn(limit + 1)
}

func insertAt(body []Stmt, at int, s Stmt) []Stmt {
	body = append(body, Stmt{})
	copy(body[at+1:], body[at:])
	body[at] = s
	return body
}

// val draws a small positive payload (never 0, so a zero in a receive
// destination always means "closed channel or never received").
func (g *generator) val() int64 { return int64(g.intn(8)) + 1 }

// dst draws a receive destination: a var index, or -1 (discard).
func (g *generator) dst() int {
	if g.chance(30) {
		return -1
	}
	return g.intn(g.p.Vars)
}

func (g *generator) intn(n int) int { return g.rng.IntN(n) }

// chance returns true pct% of the time.
func (g *generator) chance(pct int) bool { return g.rng.IntN(100) < pct }
