package conformance

import "math/rand/v2"

// Mode selects the family of programs the generator draws from.
type Mode int

const (
	// ModeSafe generates programs whose host execution is free of data
	// races by construction (every shared var is accessed under its own
	// host-side mutex), so the default differential suite stays green
	// under `go test -race`. All scheduling nondeterminism — rendezvous
	// order, select choice, lock-order deadlocks, lost updates through
	// two-step read-modify-writes — is still present.
	ModeSafe Mode = iota
	// ModeRacy additionally marks one shared var as deliberately
	// unsynchronized and injects unconditional accesses to it from two
	// goroutines: emitted as real Go source and built with -race, such a
	// program must draw a host race report, and the sim race detector
	// must flag it somewhere in the schedule space.
	ModeRacy
)

// generator bundles the random source with the program being built.
type generator struct {
	rng *rand.Rand
	p   *Program
}

// Generate builds the program for a seed. Equal (seed, mode) pairs always
// yield identical programs — a failing program is reproduced from its seed
// alone.
func Generate(seed int64, mode Mode) *Program {
	g := &generator{
		// The second PCG word is a fixed arbitrary constant so program
		// identity depends only on the seed.
		rng: rand.New(rand.NewPCG(uint64(seed), 0x5eed5eed5eed5eed)),
		p:   &Program{Seed: seed},
	}
	p := g.p

	// Resource counts. At least one channel and one var so every program
	// has message passing and observable state.
	nChans := 1 + g.intn(3)
	for i := 0; i < nChans; i++ {
		decl := ChanDecl{Cap: g.intn(3)}
		if g.chance(8) { // rare: a nil channel (blocks forever, close panics)
			decl.Nil = true
		}
		p.Chans = append(p.Chans, decl)
	}
	p.Mutexes = g.intn(3)
	p.RWMutexes = g.intn(2)
	p.Onces = g.intn(2)
	p.Vars = 1 + g.intn(3)
	if g.chance(50) {
		p.WaitGroups = 1
	}
	p.RacyVars = make([]bool, p.Vars)

	// Size class: mostly small programs so systematic exploration of the
	// schedule space completes, with a tail of larger ones that exercise
	// the oracle's weak (budget-bounded) mode.
	var nGs, maxStmts int
	switch c := g.intn(100); {
	case c < 50:
		nGs, maxStmts = 2, 3
	case c < 85:
		nGs, maxStmts = 3, 3
	default:
		nGs, maxStmts = 2+g.intn(4), 4 // 2-5 goroutines
	}

	p.Goroutines = make([][]Stmt, nGs)
	for gi := 0; gi < nGs; gi++ {
		p.Goroutines[gi] = g.stmts(1+g.intn(maxStmts), 0)
	}

	// WaitGroup discipline: every Add happens in main before any spawn
	// (prepended below), which is the documented usage rule — and exactly
	// the discipline that avoids the real runtime's "Add called
	// concurrently with Wait" misuse panic, which the simulator does not
	// model. Done and Wait go anywhere; an unbalanced count yields a
	// negative-counter panic or a hang on both backends.
	wgAdds := 0
	if p.WaitGroups > 0 {
		wgAdds = 1 + g.intn(3)
		dones := wgAdds + []int{-1, 0, 0, 0, 1}[g.intn(5)]
		for i := 0; i < dones; i++ {
			g.insert(Stmt{Kind: StWgDone, Wg: 0})
		}
		for i, n := 0, g.intn(2); i < n; i++ {
			g.insert(Stmt{Kind: StWgWait, Wg: 0})
		}
	}

	// Racy injection: two distinct goroutines get an unconditional
	// top-level write to a dedicated racy var each, with no possible
	// synchronization between them.
	if mode == ModeRacy {
		rv := g.intn(p.Vars)
		p.RacyVars[rv] = true
		a, b := g.intn(nGs), g.intn(nGs)
		for b == a {
			b = g.intn(nGs)
		}
		for _, gi := range []int{a, b} {
			at := g.intn(len(p.Goroutines[gi]) + 1)
			p.Goroutines[gi] = insertAt(p.Goroutines[gi], at,
				Stmt{Kind: StVarAdd, Dst: rv, Val: g.val()})
		}
	}

	// Main's prologue: WaitGroup Adds first, then spawns at random
	// positions in the rest of its body.
	main := p.Goroutines[0]
	for gi := nGs - 1; gi >= 1; gi-- {
		at := g.intn(len(main) + 1)
		main = insertAt(main, at, Stmt{Kind: StSpawn, G: gi})
	}
	if wgAdds > 0 {
		main = insertAt(main, 0, Stmt{Kind: StWgAdd, Wg: 0, Val: int64(wgAdds)})
	}
	p.Goroutines[0] = main
	return p
}

// stmts generates n statements at the given lock-nesting depth.
func (g *generator) stmts(n, depth int) []Stmt {
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth)...)
	}
	return out
}

// stmt generates one statement — possibly a balanced lock region holding
// nested statements, which is how lock-order and double-lock deadlocks enter
// the program family.
func (g *generator) stmt(depth int) []Stmt {
	p := g.p
	for {
		switch g.intn(12) {
		case 0, 1: // send
			return []Stmt{{Kind: StSend, Ch: g.intn(len(p.Chans)), Val: g.val()}}
		case 2, 3: // recv
			return []Stmt{{Kind: StRecv, Ch: g.intn(len(p.Chans)), Dst: g.dst()}}
		case 4: // close
			return []Stmt{{Kind: StClose, Ch: g.intn(len(p.Chans))}}
		case 5: // select
			return []Stmt{g.selectStmt()}
		case 6, 7: // mutex region
			if p.Mutexes == 0 {
				continue
			}
			mu := g.intn(p.Mutexes)
			var body []Stmt
			if depth < 2 { // bound region nesting
				body = g.stmts(g.intn(2)+1, depth+1)
			}
			region := []Stmt{{Kind: StLock, Mu: mu}}
			region = append(region, body...)
			return append(region, Stmt{Kind: StUnlock, Mu: mu})
		case 8: // rwmutex region
			if p.RWMutexes == 0 {
				continue
			}
			mu := g.intn(p.RWMutexes)
			lk, ulk := StRLock, StRUnlock
			if g.chance(40) {
				lk, ulk = StWLock, StWUnlock
			}
			var body []Stmt
			if depth < 2 {
				body = g.stmts(g.intn(2)+1, depth+1)
			}
			region := []Stmt{{Kind: lk, Mu: mu}}
			region = append(region, body...)
			return append(region, Stmt{Kind: ulk, Mu: mu})
		case 9: // once
			if p.Onces == 0 {
				continue
			}
			return []Stmt{{Kind: StOnceDo, O: g.intn(p.Onces), Body: g.onceBody()}}
		case 10: // var ops
			if g.chance(50) {
				return []Stmt{{Kind: StVarStore, Dst: g.intn(p.Vars), Val: g.val()}}
			}
			return []Stmt{{Kind: StVarAdd, Dst: g.intn(p.Vars), Val: g.val()}}
		case 11:
			return []Stmt{{Kind: StYield}}
		}
	}
}

// selectStmt builds a select with 1-3 cases and an optional default.
func (g *generator) selectStmt() Stmt {
	p := g.p
	n := 1 + g.intn(3)
	s := Stmt{Kind: StSelect, HasDefault: g.chance(40)}
	for i := 0; i < n; i++ {
		c := SelCase{Ch: g.intn(len(p.Chans))}
		if g.chance(50) {
			c.Send, c.Val = true, g.val()
		} else {
			c.Dst = g.dst()
		}
		s.Cases = append(s.Cases, c)
	}
	return s
}

// onceBody keeps Once bodies shallow: plain sends, stores and yields.
func (g *generator) onceBody() []Stmt {
	p := g.p
	var out []Stmt
	for i, n := 0, 1+g.intn(2); i < n; i++ {
		switch g.intn(3) {
		case 0:
			out = append(out, Stmt{Kind: StSend, Ch: g.intn(len(p.Chans)), Val: g.val()})
		case 1:
			out = append(out, Stmt{Kind: StVarStore, Dst: g.intn(p.Vars), Val: g.val()})
		case 2:
			out = append(out, Stmt{Kind: StYield})
		}
	}
	return out
}

// insert places s at a random top-level position of a random goroutine.
func (g *generator) insert(s Stmt) {
	gi := g.intn(len(g.p.Goroutines))
	at := g.intn(len(g.p.Goroutines[gi]) + 1)
	g.p.Goroutines[gi] = insertAt(g.p.Goroutines[gi], at, s)
}

func insertAt(body []Stmt, at int, s Stmt) []Stmt {
	body = append(body, Stmt{})
	copy(body[at+1:], body[at:])
	body[at] = s
	return body
}

// val draws a small positive payload (never 0, so a zero in a receive
// destination always means "closed channel or never received").
func (g *generator) val() int64 { return int64(g.intn(8)) + 1 }

// dst draws a receive destination: a var index, or -1 (discard).
func (g *generator) dst() int {
	if g.chance(30) {
		return -1
	}
	return g.intn(g.p.Vars)
}

func (g *generator) intn(n int) int { return g.rng.IntN(n) }

// chance returns true pct% of the time.
func (g *generator) chance(pct int) bool { return g.rng.IntN(100) < pct }
