package conformance

import (
	"testing"

	"goconcbugs/internal/explore"
	"goconcbugs/internal/sim"
)

// FuzzMemoCanonicalHash drives the DPOR memoization's canonical state hash
// over the generated IR corpus. The properties fuzzed are the ones the
// hash's soundness rests on:
//
//   - determinism: two memoized searches of the same program with separate
//     fresh tables are bit-identical (equal hashes on equal traces);
//   - verdict preservation: the memoized search agrees with the unmemoized
//     reduced search on verdict and failure existence (a hash collision
//     that pruned a failing subtree would break this);
//   - warm-table convergence: re-searching with the populated table stays
//     within a small slack of the cold run count (hits may replant a few
//     conservative backtracks), and a quiet complete search re-verifies
//     with hits.
func FuzzMemoCanonicalHash(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed, seed%2 == 0)
	}
	// Seeds whose programs reach the cond/timer/ticker/ctx/sem kinds.
	for _, seed := range []int64{28, 243, 254, 457} {
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, safe bool) {
		if seed < 0 {
			seed = -(seed + 1)
		}
		seed %= 1 << 20
		mode := ModeRacy
		if safe {
			mode = ModeSafe
		}
		p := Generate(seed, mode)
		prog, _ := simProgram(p)
		opts := func(memo *explore.MemoTable) explore.SystematicOptions {
			return explore.SystematicOptions{
				Config:    sim.Config{Seed: seed, Name: "memo-fuzz"},
				MaxRuns:   2000,
				Reduction: true,
				Memo:      memo,
			}
		}

		base := explore.Systematic(prog, opts(nil))
		table := explore.NewMemoTable(0)
		cold := explore.Systematic(prog, opts(table))
		again := explore.Systematic(prog, opts(explore.NewMemoTable(0)))

		if cold.Runs != again.Runs || cold.StatesMemoized != again.StatesMemoized ||
			cold.PrefixesDeduped != again.PrefixesDeduped || cold.Verdict.Status != again.Verdict.Status {
			t.Fatalf("seed %d: memoized search not deterministic:\n  %+v\n  %+v", seed, cold, again)
		}
		if base.Complete && cold.Complete {
			if base.Verdict.Status != cold.Verdict.Status {
				t.Fatalf("seed %d: verdict differs: plain=%v memoized=%v", seed, base.Verdict, cold.Verdict)
			}
			if (base.Failures > 0) != (cold.Failures > 0) {
				t.Fatalf("seed %d: failure existence differs: plain=%d memoized=%d", seed, base.Failures, cold.Failures)
			}
		}

		warm := explore.Systematic(prog, opts(table))
		if warm.Verdict.Status != cold.Verdict.Status {
			t.Fatalf("seed %d: warm verdict differs: cold=%v warm=%v", seed, cold.Verdict, warm.Verdict)
		}
		// A hit's conservative backtrack replanting may open a few extra
		// ancestor branches, so allow a small overshoot (same slack as the
		// kernel soundness test).
		if warm.Runs > cold.Runs+cold.Runs/4+8 {
			t.Fatalf("seed %d: warm search ran far more schedules (%d vs %d)", seed, warm.Runs, cold.Runs)
		}
		if cold.Complete && cold.Failures == 0 && cold.StatesMemoized > 0 && warm.PrefixesDeduped == 0 {
			t.Fatalf("seed %d: warm search over a stored quiet space reported no hits", seed)
		}
	})
}
