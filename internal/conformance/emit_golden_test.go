package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the emit golden files")

// goldenPrograms are hand-built (seed 0) so the goldens pin EmitGo's
// rendering of each statement kind independent of generator tuning. Each
// covers one new primitive family end to end, including its select arms.
func goldenPrograms() []struct {
	name string
	p    *Program
} {
	return []struct {
		name string
		p    *Program
	}{
		{"cond", &Program{
			Conds: 1,
			Vars:  1, RacyVars: []bool{false},
			Goroutines: [][]Stmt{
				{ // main: spawn the waiter, then broadcast readiness
					{Kind: StSpawn, G: 1},
					{Kind: StCondBroadcast, C: 0, SetReady: true},
				},
				{ // waiter: if-guard (buggy shape) then for-guard (fixed)
					{Kind: StCondWait, C: 0},
					{Kind: StCondWait, C: 0, ForGuard: true},
					{Kind: StVarStore, Dst: 0, Val: 7},
					{Kind: StCondSignal, C: 0},
				},
			},
		}},
		{"timer", &Program{
			Chans: []ChanDecl{{Cap: 1}},
			Goroutines: [][]Stmt{
				{
					{Kind: StSpawn, G: 1},
					{Kind: StSelect, Cases: []SelCase{
						{Dst: -1, Ch: 0},
						{Timeout: true, Dur: 2},
					}},
				},
				{
					{Kind: StTimerAfter, Dur: 1},
					{Kind: StTickerLoop, Dur: 1, N: 3},
					{Kind: StSend, Ch: 0, Val: 42},
				},
			},
		}},
		{"ctx", &Program{
			Chans: []ChanDecl{{Cap: 0}},
			Ctxs:  []CtxDecl{{Parent: -1}, {Parent: 0}},
			Goroutines: [][]Stmt{
				{
					{Kind: StSpawn, G: 1},
					{Kind: StCtxCancel, Cx: 0},
					{Kind: StCtxDone, Cx: 1},
				},
				{
					{Kind: StSelect, Cases: []SelCase{
						{CtxDone: true, Cx: 1},
						{Send: true, Ch: 0, Val: 9},
					}},
				},
			},
		}},
		{"sem", &Program{
			Sems: []int{2},
			Vars: 1, RacyVars: []bool{true},
			Goroutines: [][]Stmt{
				{
					{Kind: StSpawn, G: 1},
					{Kind: StSemAcquire, Sem: 0},
					{Kind: StVarAdd, Dst: 0, Val: 1},
					{Kind: StSemRelease, Sem: 0},
				},
				{
					{Kind: StSemAcquire, Sem: 0},
					{Kind: StSemRelease, Sem: 0},
				},
			},
		}},
	}
}

// TestEmitGolden pins EmitGo's rendering of the new primitive kinds. Run
// with -update to rewrite testdata/golden/*.golden after an intentional
// emitter change.
func TestEmitGolden(t *testing.T) {
	for _, tc := range goldenPrograms() {
		got := EmitGo(tc.p)
		path := filepath.Join("testdata", "golden", tc.name+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", tc.name, err)
		}
		if got != string(want) {
			t.Errorf("%s: emitted source drifted from %s (run with -update if intentional)\n--- got ---\n%s", tc.name, path, got)
		}
	}
}
