package conformance

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The subprocess lane emits generated programs as standalone Go source and
// runs them under the *actual* runtime machinery the in-process backend
// cannot reach: the built-in global deadlock detector (only fires when a
// whole process sleeps) and the real race detector (a report inside the
// test process would fail the suite). Needs the go toolchain on PATH.

func requireGo(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess lane skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
}

var raceProbe struct {
	once sync.Once
	ok   bool
	out  string
}

// raceToolchain probes whether `go build -race` works here (it needs cgo
// and a C toolchain); the result is cached for the package run.
func raceToolchain(t *testing.T) {
	t.Helper()
	raceProbe.once.Do(func() {
		dir, err := os.MkdirTemp("", "raceprobe")
		if err != nil {
			raceProbe.out = err.Error()
			return
		}
		defer os.RemoveAll(dir)
		src := filepath.Join(dir, "main.go")
		os.WriteFile(src, []byte("package main\n\nfunc main() {}\n"), 0o644)
		out, err := exec.Command("go", "build", "-race", "-o", filepath.Join(dir, "probe"), src).CombinedOutput()
		raceProbe.ok = err == nil
		raceProbe.out = string(out)
	})
	if !raceProbe.ok {
		t.Skipf("-race toolchain unavailable: %s", raceProbe.out)
	}
}

// buildEmitted compiles p's standalone source via the package-level helper
// (which retries transient toolchain failures); separating the build from
// the run keeps compile time out of the watchdog budget.
func buildEmitted(t *testing.T, p *Program, race bool) string {
	t.Helper()
	bin, err := BuildEmitted(context.Background(), p, race, t.TempDir())
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, EmitGo(p))
	}
	return bin
}

// runEmitted executes the binary under an external timeout and classifies
// its outcome with the same Signature vocabulary the oracle uses.
func runEmitted(t *testing.T, bin string, timeout time.Duration) (Signature, string) {
	t.Helper()
	sig, out, err := RunEmitted(context.Background(), bin, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return sig, out
}

// scanSeeds returns the first n ModeSafe seeds whose explored space
// satisfies pred, so the subprocess tests track the generator instead of
// going stale against pinned seed numbers.
func scanSeeds(t *testing.T, n int, mode Mode, withRace bool, pred func(*SimSpace) bool) []int64 {
	t.Helper()
	var out []int64
	for seed := int64(1); seed <= 2000 && len(out) < n; seed++ {
		if pred(ExploreSim(Generate(seed, mode), 600, withRace)) {
			out = append(out, seed)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d seeds matching predicate in 2000", len(out), n)
	}
	return out
}

// TestEmittedDeadlockDirection: programs the simulator proves globally
// deadlocked on every schedule must hang for real — and since the emitted
// source has no internal watchdog, the real runtime's built-in detector
// gets to fire and name the condition itself.
func TestEmittedDeadlockDirection(t *testing.T) {
	requireGo(t)
	builtinFired := 0
	seeds := scanSeeds(t, 3, ModeSafe, false, func(sp *SimSpace) bool {
		return sp.Complete && sp.AllHung()
	})
	for _, seed := range seeds {
		p := Generate(seed, ModeSafe)
		bin := buildEmitted(t, p, false)
		sig, out := runEmitted(t, bin, 5*time.Second)
		if sig.Kind != KindHung {
			t.Errorf("seed %d: sim proves every schedule deadlocks, but the host process terminated %v\n%s\nprogram:\n%s",
				seed, sig, out, p)
		}
		if strings.Contains(out, "all goroutines are asleep - deadlock!") {
			builtinFired++
		}
	}
	// At least one of the three must trip the built-in detector outright
	// (a program parked on a timer-free global deadlock always does).
	if builtinFired == 0 {
		t.Error("built-in deadlock detector never fired across must-deadlock programs")
	}
}

// TestEmittedMustFinishMatchesSim: clean subprocess terminal states must be
// members of the sim schedule space, through the emission path too.
func TestEmittedMustFinishMatchesSim(t *testing.T) {
	requireGo(t)
	seeds := scanSeeds(t, 2, ModeSafe, false, func(sp *SimSpace) bool {
		if !sp.Complete || sp.AllowsHang() {
			return false
		}
		for s := range sp.Sigs {
			if s.Kind != KindDone {
				return false
			}
		}
		return true
	})
	for _, seed := range seeds {
		p := Generate(seed, ModeSafe)
		sp := ExploreSim(p, 600, false)
		bin := buildEmitted(t, p, false)
		sig, out := runEmitted(t, bin, 10*time.Second)
		if !sp.Allows(sig) {
			t.Errorf("seed %d: emitted run terminated %v, outside sim space %s\n%s", seed, sig, sp.Summary(), out)
		}
	}
}

// TestEmittedRaceDirection closes the race loop in both directions on
// always-racy generations: the sim race detector flags every schedule, so
// the single host schedule must be racy too and `-race` must report; and
// any host report implies sim reports (trivially here — sim flags all).
func TestEmittedRaceDirection(t *testing.T) {
	requireGo(t)
	raceToolchain(t)
	seeds := scanSeeds(t, 2, ModeRacy, true, func(sp *SimSpace) bool {
		return sp.Complete && sp.RacyVarSchedules == sp.Schedules
	})
	for _, seed := range seeds {
		p := Generate(seed, ModeRacy)
		bin := buildEmitted(t, p, true)
		// Always-racy includes schedules that hang after racing; the race
		// report lands on stderr before any hang, so classify by output.
		_, out := runEmitted(t, bin, 5*time.Second)
		if !strings.Contains(out, "WARNING: DATA RACE") {
			t.Errorf("seed %d: sim races on the injected var in all %s, but host -race stayed silent\n%s\nprogram:\n%s",
				seed, "schedules", out, p)
		}
	}
}

// TestEmitGoCompiles: the emitter must produce compilable source for a wide
// band of programs in both modes, not just the ones other tests pick.
func TestEmitGoCompiles(t *testing.T) {
	requireGo(t)
	dir := t.TempDir()
	for seed := int64(1); seed <= 25; seed++ {
		for _, mode := range []Mode{ModeSafe, ModeRacy} {
			p := Generate(seed, mode)
			src := filepath.Join(dir, "main.go")
			if err := os.WriteFile(src, []byte(EmitGo(p)), 0o644); err != nil {
				t.Fatal(err)
			}
			if out, err := exec.Command("go", "vet", src).CombinedOutput(); err != nil {
				t.Fatalf("seed %d mode %d: emitted source does not vet: %v\n%s\nsource:\n%s",
					seed, mode, err, out, EmitGo(p))
			}
		}
	}
}
