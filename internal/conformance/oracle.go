package conformance

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

// Signature kinds: the three terminal states a program run can be observed
// in from outside, on either backend.
const (
	// KindDone: every goroutine finished; Vars holds terminal state.
	KindDone = "done"
	// KindHung: at least one goroutine was blocked forever — the union of
	// the simulator's built-in-deadlock and goroutine-leak outcomes, which
	// a host watchdog cannot tell apart.
	KindHung = "hung"
	// KindPanic: the program crashed; Panic holds the panic class.
	KindPanic = "panic"
)

// Signature is a backend-neutral summary of one run's terminal state. Two
// runs with equal signatures are observationally equivalent to the oracle.
type Signature struct {
	Kind  string
	Panic string // normalized panic class, KindPanic only
	Vars  string // rendered terminal var values, KindDone only
}

// String implements fmt.Stringer.
func (s Signature) String() string {
	switch s.Kind {
	case KindPanic:
		return "panic:" + s.Panic
	case KindDone:
		return "done:" + s.Vars
	default:
		return s.Kind
	}
}

func doneSignature(vars []int64) Signature {
	return Signature{Kind: KindDone, Vars: fmt.Sprint(vars)}
}

func panicSignature(msg string) Signature {
	return Signature{Kind: KindPanic, Panic: PanicClass(msg)}
}

// PanicClass normalizes a panic message to a backend-neutral identity: the
// simulator's messages carry object names ("send on closed channel c1") and
// the real runtime's do not, so the class is what the two can agree on.
func PanicClass(msg string) string {
	switch {
	case strings.Contains(msg, "send on closed channel"):
		return "send-on-closed"
	case strings.Contains(msg, "close of closed channel"):
		return "close-of-closed"
	case strings.Contains(msg, "close of nil channel"):
		return "close-of-nil"
	case strings.Contains(msg, "negative WaitGroup counter"):
		return "negative-waitgroup"
	case strings.Contains(msg, "concurrent map"):
		return "concurrent-map"
	case strings.Contains(msg, "release of un-acquired semaphore"):
		return "sem-release-unacquired"
	default:
		return "unrecognized: " + msg
	}
}

// simSignature classifies one simulated run. Step-limit terminations are
// folded into KindHung; IR programs are loop-free, so a run that exhausts
// the step budget is counted separately as evidence of a harness bug.
func simSignature(res *sim.Result, env *simEnv) Signature {
	switch {
	case res.Outcome == sim.OutcomePanic:
		return panicSignature(res.Panics[0].Msg)
	case res.Outcome == sim.OutcomeBuiltinDeadlock,
		res.Outcome == sim.OutcomeStepLimit,
		len(res.Blocked) > 0:
		return Signature{Kind: KindHung}
	default:
		return doneSignature(env.finalVars())
	}
}

// SimSpace is the set of terminal states the simulator reaches for one
// program across its (budget-bounded) schedule space.
type SimSpace struct {
	// Schedules is the number of schedules executed; Complete is true when
	// they are the whole space, which is when membership is a sound oracle.
	Schedules int
	Complete  bool
	// Sigs counts schedules per signature.
	Sigs map[Signature]int
	// StepLimited counts schedules that hit the step budget (always 0 for
	// generated programs; nonzero means the harness itself is broken).
	StepLimited int
	// RaceSchedules counts schedules on which a per-run race detector
	// (unbounded shadow words) reported at least one race; -1 when the
	// exploration ran without race detection.
	RaceSchedules int
	// RacyVarSchedules counts schedules whose reports include one of the
	// program's deliberately racy vars. The distinction matters for the
	// host direction: the sim instruments every var bare, so it also
	// reports "races" on vars the *host* accesses under per-var locks —
	// only a racy-var report predicts a host -race report.
	RacyVarSchedules int
	// CondBlocked counts non-panicking schedules that end with at least
	// one goroutine parked on a condition variable. The liveness oracle:
	// for signal-guaranteed programs with complete exploration this must
	// be 0 — every CondWait can wake on every schedule. (Panicking runs
	// are excluded: a crash legitimately strands waiters, identically on
	// both backends.)
	CondBlocked int
}

// Allows reports whether the host observation sig is a member of the space.
func (sp *SimSpace) Allows(sig Signature) bool { return sp.Sigs[sig] > 0 }

// AllowsHang reports whether any schedule hangs.
func (sp *SimSpace) AllowsHang() bool {
	return sp.Sigs[Signature{Kind: KindHung}] > 0
}

// AllHung reports whether every schedule hangs — the programs the sim
// deadlock detectors call unconditionally stuck, which must hang for real.
func (sp *SimSpace) AllHung() bool {
	return len(sp.Sigs) == 1 && sp.AllowsHang()
}

// Summary renders the space compactly, most frequent signature first.
func (sp *SimSpace) Summary() string {
	sigs := make([]Signature, 0, len(sp.Sigs))
	for s := range sp.Sigs {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sp.Sigs[sigs[i]] != sp.Sigs[sigs[j]] {
			return sp.Sigs[sigs[i]] > sp.Sigs[sigs[j]]
		}
		return sigs[i].String() < sigs[j].String()
	})
	parts := make([]string, len(sigs))
	for i, s := range sigs {
		parts[i] = fmt.Sprintf("%v×%d", s, sp.Sigs[s])
	}
	return fmt.Sprintf("{%s} over %d schedules (complete=%v)",
		strings.Join(parts, ", "), sp.Schedules, sp.Complete)
}

// perRunRace resets a race detector at every run boundary so shadow state
// and vector clocks never leak between runs (clocks from different runs are
// incomparable). Serial exploration only. It forwards the memory-event
// stream to whichever detector is current.
type perRunRace struct {
	det *race.Detector
}

func (o *perRunRace) Kinds() []event.Kind { return o.det.Kinds() }

func (o *perRunRace) Event(ev *event.Event) { o.det.Event(ev) }

// ExploreSim enumerates p's schedule space (up to maxSchedules) on the
// simulated runtime and collects the set of reachable terminal signatures.
// With withRace, each schedule additionally runs under a fresh
// unbounded-shadow race detector and RaceSchedules counts the schedules
// that drew a report.
func ExploreSim(p *Program, maxSchedules int, withRace bool) *SimSpace {
	return ExploreSimReduced(p, maxSchedules, withRace, false)
}

// ExploreSimReduced is ExploreSim with dynamic partial-order reduction
// switchable. Reduction prunes schedules that only reorder independent
// transitions; the signature set it collects is provably the same (outcome
// signatures are trace-equivalence invariants), which the differential
// equivalence suite in package explore asserts against full enumeration.
// Schedules and the per-signature counts differ — only the *set* of
// signatures is preserved.
func ExploreSimReduced(p *Program, maxSchedules int, withRace, reduce bool) *SimSpace {
	prog, envSlot := simProgram(p)
	sp := &SimSpace{Sigs: map[Signature]int{}, RaceSchedules: -1, RacyVarSchedules: -1}
	var obs *perRunRace
	cfg := sim.Config{Name: fmt.Sprintf("conformance-%d", p.Seed)}
	if withRace {
		obs = &perRunRace{det: race.New(-1)}
		cfg.Sinks = []event.Sink{obs}
		sp.RaceSchedules = 0
		sp.RacyVarSchedules = 0
	}
	racyNames := map[string]bool{}
	for i, racy := range p.RacyVars {
		if racy {
			racyNames[fmt.Sprintf("v%d", i)] = true
		}
	}
	res := explore.Systematic(prog, explore.SystematicOptions{
		Config:    cfg,
		MaxRuns:   maxSchedules,
		Reduction: reduce,
		Workers:   1, // serial: OnRun must pair with the envSlot of its run
		OnRun: func(r *sim.Result, schedule []int) {
			sp.Sigs[simSignature(r, *envSlot)]++
			if r.Outcome == sim.OutcomeStepLimit {
				sp.StepLimited++
			}
			if r.Outcome != sim.OutcomePanic && r.Outcome != sim.OutcomeStepLimit {
				for _, gi := range r.Blocked {
					if gi.BlockKind == sim.BlockCond {
						sp.CondBlocked++
						break
					}
				}
			}
			if obs != nil {
				reports := obs.det.Reports()
				if len(reports) > 0 {
					sp.RaceSchedules++
				}
				for _, rep := range reports {
					if racyNames[rep.Var] {
						sp.RacyVarSchedules++
						break
					}
				}
				obs.det = race.New(-1)
			}
		},
	})
	sp.Schedules = res.Runs
	sp.Complete = res.Complete
	return sp
}

// CheckOptions tunes one differential check.
type CheckOptions struct {
	// MaxSchedules bounds the sim-side exploration (default 600). When
	// the bound is hit the check degrades to weak mode: the host run still
	// executes, but membership is not asserted, because the simulator may
	// reach the host's outcome in an unexplored schedule.
	MaxSchedules int
	// HangPatience is the watchdog timeout when the simulator says a hang
	// is reachable (default 50ms): misreading a slow completion as hung
	// is then still inside the sim space.
	HangPatience time.Duration
	// FinishPatience is the watchdog timeout when the simulator says the
	// program must finish (default 2s): only a genuinely stuck program is
	// reported divergent.
	FinishPatience time.Duration
	// Reduction explores the sim side with dynamic partial-order
	// reduction: the same signature set from far fewer schedules, so
	// complete (strict) exploration fits the budget on more programs.
	Reduction bool
	// Families narrows the primitive families the generator draws from
	// (nil: all). CI's per-primitive lanes set this via godetect -kinds.
	Families *Families
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 600
	}
	if o.HangPatience <= 0 {
		o.HangPatience = 50 * time.Millisecond
	}
	if o.FinishPatience <= 0 {
		o.FinishPatience = 2 * time.Second
	}
	return o
}

// Divergence is one sim-vs-host disagreement: the host runtime produced a
// terminal state the simulator's complete schedule space does not contain —
// or, with Liveness set, the missed-signal liveness oracle fired.
type Divergence struct {
	Seed    int64
	Host    Signature
	Space   *SimSpace
	Program *Program
	// Liveness marks a missed-signal liveness violation instead of a
	// membership failure: a signal-guaranteed program whose complete
	// exploration contains schedules ending with a goroutine parked on a
	// cond. Host is zero for these.
	Liveness bool
}

// String renders the divergence with everything needed to reproduce it
// standalone: the generator seed, the program, and the replay command.
func (d *Divergence) String() string {
	if d.Liveness {
		return fmt.Sprintf(
			"LIVENESS VIOLATION at generator seed %d: program is signal-guaranteed but %d of %d schedules end parked on a cond\n%s"+
				"reproduce with: go test ./internal/conformance -run TestReplaySeed -conformance.seed=%d -v",
			d.Seed, d.Space.CondBlocked, d.Space.Schedules, d.Program, d.Seed)
	}
	return fmt.Sprintf(
		"DIVERGENCE at generator seed %d: host runtime observed %v, simulator reaches %s\n%s"+
			"reproduce with: go test ./internal/conformance -run TestReplaySeed -conformance.seed=%d -v",
		d.Seed, d.Host, d.Space.Summary(), d.Program, d.Seed)
}

// CheckResult is the outcome of one seed's differential check.
type CheckResult struct {
	Seed    int64
	Program *Program
	Space   *SimSpace
	Host    Signature
	// HostRan is false when the host half was skipped: under a -race test
	// binary, programs whose channel closes are unordered with sends are
	// genuinely racy on the channel's internal state and must not execute
	// in-process (see closeUnordered). The sim half still runs.
	HostRan bool
	// Strict is true when the sim exploration was complete and membership
	// was therefore asserted.
	Strict bool
	// Divergence is non-nil when the check failed.
	Divergence *Divergence
}

// CheckSeed generates the program for seed, explores its simulated schedule
// space, runs it once on the real runtime, and cross-checks the outcomes.
func CheckSeed(seed int64, opts CheckOptions) *CheckResult {
	opts = opts.withDefaults()
	fams := AllFamilies
	if opts.Families != nil {
		fams = *opts.Families
	}
	return CheckProgram(GenerateWith(seed, ModeSafe, fams), opts)
}

// CheckProgram runs the differential check on an already-built program —
// the path hand-written regression programs (Seed 0) share with generated
// ones.
func CheckProgram(p *Program, opts CheckOptions) *CheckResult {
	opts = opts.withDefaults()
	space := ExploreSimReduced(p, opts.MaxSchedules, false, opts.Reduction)
	res := &CheckResult{Seed: p.Seed, Program: p, Space: space}
	// Missed-signal liveness oracle: a signal-guaranteed program whose
	// complete schedule space still contains cond-parked terminal states
	// is a generator or simulator bug, regardless of what the host does.
	if p.SignalGuaranteed && space.Complete && space.CondBlocked > 0 {
		res.Divergence = &Divergence{Seed: p.Seed, Space: space, Program: p, Liveness: true}
		return res
	}
	if raceEnabled && closeUnordered(p) {
		return res
	}
	patience := opts.HangPatience
	if space.Complete && !space.AllowsHang() {
		patience = opts.FinishPatience
	}
	res.Host = RunHost(p, patience)
	res.HostRan = true
	if space.Complete {
		res.Strict = true
		if !space.Allows(res.Host) {
			res.Divergence = &Divergence{Seed: p.Seed, Host: res.Host, Space: space, Program: p}
		}
	}
	return res
}

// SweepOptions configures a conformance sweep over consecutive seeds.
type SweepOptions struct {
	// Programs is the number of seeds checked (default 1000).
	Programs int
	// BaseSeed is the first seed; program i uses BaseSeed+i.
	BaseSeed int64
	// Workers fans programs out over host goroutines (0 = the larger of 8
	// and 2×GOMAXPROCS: hung host runs spend their time sleeping on the
	// watchdog, so the sweep oversubscribes the CPUs). The per-program
	// check stays serial either way; results are folded in seed order.
	Workers int
	// Check tunes each differential check.
	Check CheckOptions
	// Context, when non-nil, stops dispatching new seeds once canceled;
	// in-flight checks finish and the partial stats fold what completed,
	// with the Verdict marked Incomplete. Nil means run all seeds.
	Context context.Context
}

// SweepStats aggregates a sweep.
type SweepStats struct {
	Programs    int
	Strict      int // programs whose exploration completed (membership asserted)
	Schedules   int // total sim schedules executed
	StepLimited int // schedules that hit the sim step budget (harness bug if nonzero)
	HostSkipped int // host halves skipped under -race (closeUnordered programs)
	HostKinds   map[string]int
	// KindCoverage counts programs containing each statement kind, the
	// sweep's evidence that the whole IR is exercised.
	KindCoverage map[StmtKind]int
	// SignalGuaranteed counts programs subject to the missed-signal
	// liveness oracle.
	SignalGuaranteed int
	// AllHungConfirmed counts programs where every sim schedule hangs and
	// the host run indeed hung — the deadlock-direction oracle.
	AllHungConfirmed int
	Divergences      []*Divergence
	// Completed counts seeds whose check ran to the end; seeds skipped by
	// cancellation or lost to a host-side panic are the difference, with
	// panics itemized in Errors.
	Completed int
	Errors    []*harness.RunError
	// Verdict: Confirmed when a divergence was found, Refuted when every
	// seed was checked without one, Incomplete when the sweep was cut
	// short — in which case "no divergences" is not conformance evidence.
	Verdict harness.Verdict
}

// Sweep runs the differential oracle over opts.Programs consecutive seeds.
// Each seed's check is panic-isolated, and cancellation via Context yields
// the partial fold instead of discarding completed work.
func Sweep(opts SweepOptions) *SweepStats {
	if opts.Programs <= 0 {
		opts.Programs = 1000
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	if workers > opts.Programs {
		workers = opts.Programs
	}
	results := make([]*CheckResult, opts.Programs)
	errs := make([]*harness.RunError, opts.Programs)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				seed := opts.BaseSeed + int64(i)
				errs[i] = harness.Capture(i, seed, func() {
					results[i] = CheckSeed(seed, opts.Check)
				})
			}
		}()
	}
	dispatched := 0
	for ; dispatched < opts.Programs && ctx.Err() == nil; dispatched++ {
		next <- dispatched
	}
	close(next)
	wg.Wait()

	st := &SweepStats{Programs: opts.Programs, HostKinds: map[string]int{}, KindCoverage: map[StmtKind]int{}}
	for i, r := range results {
		if errs[i] != nil {
			st.Errors = append(st.Errors, errs[i])
			continue
		}
		if r == nil { // never dispatched
			continue
		}
		st.Completed++
		if r.Strict {
			st.Strict++
		}
		st.Schedules += r.Space.Schedules
		st.StepLimited += r.Space.StepLimited
		for k := range r.Program.Kinds() {
			st.KindCoverage[k]++
		}
		if r.Program.SignalGuaranteed {
			st.SignalGuaranteed++
		}
		if r.Divergence != nil {
			// Collected before the HostRan gate: liveness violations skip
			// the host half entirely.
			st.Divergences = append(st.Divergences, r.Divergence)
		}
		if !r.HostRan {
			st.HostSkipped++
			continue
		}
		st.HostKinds[r.Host.Kind]++
		if r.Space.Complete && r.Space.AllHung() && r.Host.Kind == KindHung {
			st.AllHungConfirmed++
		}
	}
	switch {
	case len(st.Divergences) > 0:
		st.Verdict = harness.Verdict{Status: harness.Confirmed}
	case st.Completed == opts.Programs:
		st.Verdict = harness.Verdict{Status: harness.Refuted}
	case ctx.Err() != nil:
		st.Verdict = harness.Incompletef(harness.CtxReason(ctx.Err()),
			"%d of %d seeds checked", st.Completed, opts.Programs)
	default:
		st.Verdict = harness.Incompletef(harness.ReasonPanic,
			"%d of %d seeds panicked", len(st.Errors), opts.Programs)
	}
	return st
}
