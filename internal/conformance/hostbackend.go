package conformance

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"
)

// Host backend: the same IR executed on the real Go runtime — real
// goroutines, real channels, real sync primitives — under a watchdog. The
// host scheduler picks one interleaving; the oracle then asks whether the
// simulator's schedule space contains the outcome it produced.
//
// Shared vars are int64s; in ModeSafe each access takes that var's own
// host-side mutex, which makes the run clean under the real race detector
// without introducing any synchronization between *different* vars or
// turning two-step read-modify-writes atomic (the lock covers one load or
// one store at a time, exactly the granularity at which the simulator
// serializes accesses). Racy vars are accessed bare.

// closeUnordered reports whether some channel may be closed concurrently
// with a send or another close on it: a close in one goroutine with a send
// (including a select send case — the runtime polls the closed flag for
// unchosen cases too) or close in a different goroutine. That pattern is a
// real data race on the channel's internal state per the Go memory model —
// the runtime tolerates it by panicking — so an instrumented (-race) test
// binary must not execute it in-process. The uninstrumented lane runs these
// programs normally; the race-enabled lane skips only their host half.
func closeUnordered(p *Program) bool {
	type use struct{ sendG, closeG map[int]bool }
	uses := make([]use, len(p.Chans))
	for i := range uses {
		uses[i] = use{sendG: map[int]bool{}, closeG: map[int]bool{}}
	}
	var walk func(gi int, body []Stmt)
	walk = func(gi int, body []Stmt) {
		for _, s := range body {
			switch s.Kind {
			case StSend:
				uses[s.Ch].sendG[gi] = true
			case StClose:
				uses[s.Ch].closeG[gi] = true
			case StSelect:
				for _, c := range s.Cases {
					if c.Send {
						uses[c.Ch].sendG[gi] = true
					}
				}
			case StOnceDo:
				// The body runs in whichever goroutine reaches the Once
				// first; each call site has its own body, so attribute
				// it to the only goroutine that can execute this one.
				walk(gi, s.Body)
			}
		}
	}
	for gi, body := range p.Goroutines {
		walk(gi, body)
	}
	for _, u := range uses {
		for cg := range u.closeG {
			for sg := range u.sendG {
				if sg != cg {
					return true
				}
			}
			for og := range u.closeG {
				if og != cg {
					return true
				}
			}
		}
	}
	return false
}

// hostCond mirrors simCond on the real runtime: a sync.Cond over a
// dedicated mutex plus a bool predicate guarded by that same mutex, so
// generated cond use is race-free under -race.
type hostCond struct {
	mu    sync.Mutex
	c     *sync.Cond
	ready bool
}

// hostEnv is one run's resource instantiation on the real runtime.
type hostEnv struct {
	p     *Program
	chans []chan int64
	mus   []*sync.Mutex
	rws   []*sync.RWMutex
	wgs   []*sync.WaitGroup
	onces []*sync.Once
	varMu []*sync.Mutex
	vars  []int64
	conds []*hostCond
	ctxs  []context.Context
	// cancels holds each context's CancelFunc (idempotent, as in the
	// package contract).
	cancels []context.CancelFunc
	// sems are counting semaphores as buffered token channels: acquire is
	// a send, release a non-blocking receive that panics when no token is
	// outstanding — exactly sim.Semaphore's semantics.
	sems []chan struct{}
	// harness bookkeeping
	hwg        sync.WaitGroup
	firstPanic chan string
}

func newHostEnv(p *Program) *hostEnv {
	env := &hostEnv{p: p, firstPanic: make(chan string, 1)}
	for _, d := range p.Chans {
		if d.Nil {
			env.chans = append(env.chans, nil)
			continue
		}
		env.chans = append(env.chans, make(chan int64, d.Cap))
	}
	for i := 0; i < p.Mutexes; i++ {
		env.mus = append(env.mus, new(sync.Mutex))
	}
	for i := 0; i < p.RWMutexes; i++ {
		env.rws = append(env.rws, new(sync.RWMutex))
	}
	for i := 0; i < p.WaitGroups; i++ {
		env.wgs = append(env.wgs, new(sync.WaitGroup))
	}
	for i := 0; i < p.Onces; i++ {
		env.onces = append(env.onces, new(sync.Once))
	}
	env.vars = make([]int64, p.Vars)
	for i := 0; i < p.Vars; i++ {
		env.varMu = append(env.varMu, new(sync.Mutex))
	}
	for i := 0; i < p.Conds; i++ {
		hc := &hostCond{}
		hc.c = sync.NewCond(&hc.mu)
		env.conds = append(env.conds, hc)
	}
	for _, d := range p.Ctxs {
		parent := context.Background()
		if d.Parent >= 0 {
			parent = env.ctxs[d.Parent]
		}
		ctx, cancel := context.WithCancel(parent)
		env.ctxs = append(env.ctxs, ctx)
		env.cancels = append(env.cancels, cancel)
	}
	for _, n := range p.Sems {
		env.sems = append(env.sems, make(chan struct{}, n))
	}
	return env
}

// launch starts one goroutine of the program. A panic is recovered and
// recorded (an unrecovered panic would take the whole test process down);
// outcome classification treats any recorded panic as the run's terminal
// state, as a real program would have crashed there.
func (env *hostEnv) launch(body []Stmt) {
	env.hwg.Add(1)
	go func() {
		defer env.hwg.Done()
		defer func() {
			if r := recover(); r != nil {
				select {
				case env.firstPanic <- fmt.Sprint(r):
				default:
				}
			}
		}()
		env.exec(body)
	}()
}

func (env *hostEnv) loadVar(i int) int64 {
	if env.p.RacyVars[i] {
		return env.vars[i]
	}
	env.varMu[i].Lock()
	defer env.varMu[i].Unlock()
	return env.vars[i]
}

func (env *hostEnv) storeVar(i int, v int64) {
	if env.p.RacyVars[i] {
		env.vars[i] = v
		return
	}
	env.varMu[i].Lock()
	defer env.varMu[i].Unlock()
	env.vars[i] = v
}

// exec interprets a statement list on the real runtime.
func (env *hostEnv) exec(body []Stmt) {
	for _, s := range body {
		switch s.Kind {
		case StSpawn:
			env.launch(env.p.Goroutines[s.G])
		case StSend:
			env.chans[s.Ch] <- s.Val
		case StRecv:
			v := <-env.chans[s.Ch]
			if s.Dst >= 0 {
				env.storeVar(s.Dst, v)
			}
		case StClose:
			close(env.chans[s.Ch])
		case StSelect:
			env.execSelect(s)
		case StLock:
			env.mus[s.Mu].Lock()
		case StUnlock:
			env.mus[s.Mu].Unlock()
		case StRLock:
			env.rws[s.Mu].RLock()
		case StRUnlock:
			env.rws[s.Mu].RUnlock()
		case StWLock:
			env.rws[s.Mu].Lock()
		case StWUnlock:
			env.rws[s.Mu].Unlock()
		case StWgAdd:
			env.wgs[s.Wg].Add(int(s.Val))
		case StWgDone:
			env.wgs[s.Wg].Done()
		case StWgWait:
			env.wgs[s.Wg].Wait()
		case StOnceDo:
			env.onces[s.O].Do(func() {
				env.exec(s.Body)
			})
		case StVarStore:
			env.storeVar(s.Dst, s.Val)
		case StVarAdd:
			env.storeVar(s.Dst, env.loadVar(s.Dst)+s.Val)
		case StYield:
			runtime.Gosched()
		case StCondWait:
			cd := env.conds[s.C]
			cd.mu.Lock()
			if s.ForGuard {
				for !cd.ready {
					cd.c.Wait()
				}
			} else if !cd.ready {
				cd.c.Wait()
			}
			cd.mu.Unlock()
		case StCondSignal, StCondBroadcast:
			cd := env.conds[s.C]
			cd.mu.Lock()
			if s.SetReady {
				cd.ready = true
			}
			if s.Kind == StCondSignal {
				cd.c.Signal()
			} else {
				cd.c.Broadcast()
			}
			cd.mu.Unlock()
		case StTimerAfter:
			<-time.After(hostAfterDur(s.Dur))
		case StTickerLoop:
			tk := time.NewTicker(hostTickDur(s.Dur))
			for i := 0; i < s.N; i++ {
				<-tk.C
			}
			tk.Stop()
		case StCtxCancel:
			env.cancels[s.Cx]()
		case StCtxDone:
			<-env.ctxs[s.Cx].Done()
		case StSemAcquire:
			env.sems[s.Sem] <- struct{}{}
		case StSemRelease:
			select {
			case <-env.sems[s.Sem]:
			default:
				panic(fmt.Sprintf("release of un-acquired semaphore sem%d", s.Sem))
			}
		default:
			panic(fmt.Sprintf("conformance: unknown statement kind %d", s.Kind))
		}
	}
}

// execSelect runs a select with a dynamic case list via reflect.Select. A
// nil channel's case is never ready, matching a literal select statement.
func (env *hostEnv) execSelect(s Stmt) {
	cases := make([]reflect.SelectCase, 0, len(s.Cases)+1)
	for _, c := range s.Cases {
		switch {
		case c.CtxDone:
			cases = append(cases, reflect.SelectCase{
				Dir:  reflect.SelectRecv,
				Chan: reflect.ValueOf(env.ctxs[c.Cx].Done()),
			})
		case c.Timeout:
			cases = append(cases, reflect.SelectCase{
				Dir:  reflect.SelectRecv,
				Chan: reflect.ValueOf(time.After(hostAfterDur(c.Dur))),
			})
		case c.Send:
			cases = append(cases, reflect.SelectCase{
				Dir:  reflect.SelectSend,
				Chan: reflect.ValueOf(env.chans[c.Ch]),
				Send: reflect.ValueOf(c.Val),
			})
		default:
			cases = append(cases, reflect.SelectCase{
				Dir:  reflect.SelectRecv,
				Chan: reflect.ValueOf(env.chans[c.Ch]),
			})
		}
	}
	if s.HasDefault {
		cases = append(cases, reflect.SelectCase{Dir: reflect.SelectDefault})
	}
	chosen, recv, _ := reflect.Select(cases)
	if chosen < len(s.Cases) {
		if c := s.Cases[chosen]; !c.Send && !c.CtxDone && !c.Timeout && c.Dst >= 0 {
			var v int64
			if recv.IsValid() {
				v = recv.Int()
			}
			env.storeVar(c.Dst, v)
		}
	}
}

// RunHost executes p once on the real Go runtime and classifies the outcome.
// patience is how long to wait before declaring the run hung; callers pass a
// short patience when the simulator says a hang is reachable (misreading a
// slow completion as "hung" is then still a member of the sim space) and a
// long one when the simulator says the program must finish, so only a
// genuinely stuck program is reported as divergent. Goroutines of a hung
// program are abandoned, as a watchdog-killed process would abandon them.
func RunHost(p *Program, patience time.Duration) Signature {
	env := newHostEnv(p)
	env.launch(p.Goroutines[0])
	done := make(chan struct{})
	go func() {
		env.hwg.Wait()
		close(done)
	}()
	timer := time.NewTimer(patience)
	defer timer.Stop()
	select {
	case msg := <-env.firstPanic:
		return panicSignature(msg)
	case <-done:
		// A panic and normal completion can race: the panicking
		// goroutine still runs its deferred hwg.Done. Panic wins, as
		// it would have crashed a real process.
		select {
		case msg := <-env.firstPanic:
			return panicSignature(msg)
		default:
		}
		vars := make([]int64, p.Vars)
		for i := range vars {
			vars[i] = env.loadVar(i)
		}
		return doneSignature(vars)
	case <-timer.C:
		select {
		case msg := <-env.firstPanic:
			return panicSignature(msg)
		default:
		}
		return Signature{Kind: KindHung}
	}
}
