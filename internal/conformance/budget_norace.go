//go:build !race

package conformance

// raceEnabled reports whether this binary runs under the real race
// detector. The differential tests shrink their program budgets when it
// does: instrumented sim exploration is roughly an order of magnitude
// slower, and the coverage argument belongs to the uninstrumented lane.
const raceEnabled = false
