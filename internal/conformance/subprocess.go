package conformance

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"goconcbugs/internal/harness"
)

// Subprocess lane, library side: emit a generated program as standalone Go
// source, build it with the host toolchain, run it under an external
// timeout, and classify the outcome in the oracle's Signature vocabulary.
// The test file wraps these with skip logic; the chaos/CI scripts reach
// them through the tests.
//
// Toolchain invocations are the one flaky part of the whole harness (the
// build cache, the linker, and transient ETXTBSY on freshly written
// binaries all fail spuriously under parallel load), so both build and run
// go through harness.Retry with exponential backoff.

// subprocessAttempts bounds the retries for one toolchain invocation.
const subprocessAttempts = 3

// BuildEmitted writes p's standalone source into dir and compiles it,
// optionally instrumented with -race, retrying transient toolchain
// failures. It returns the binary path.
func BuildEmitted(ctx context.Context, p *Program, race bool, dir string) (string, error) {
	src := filepath.Join(dir, "main.go")
	if err := os.WriteFile(src, []byte(EmitGo(p)), 0o644); err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "prog")
	args := []string{"build"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, src)
	err := harness.Retry(ctx, subprocessAttempts, 200*time.Millisecond, func() error {
		out, err := exec.CommandContext(ctx, "go", args...).CombinedOutput()
		if err != nil {
			return fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	return bin, nil
}

var varsLine = regexp.MustCompile(`CONFORMANCE-VARS (\[[^\]]*\])`)

// ClassifyEmitted maps an emitted program's combined output to a Signature.
// hung reports that the external timeout expired before the process exited.
// The error is non-nil when the output matches no terminal state — a
// harness bug, not a program outcome.
func ClassifyEmitted(out string, hung bool) (Signature, error) {
	switch {
	case hung, strings.Contains(out, "all goroutines are asleep - deadlock!"):
		return Signature{Kind: KindHung}, nil
	case strings.Contains(out, "panic: "):
		msg := out[strings.Index(out, "panic: ")+len("panic: "):]
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		return panicSignature(msg), nil
	}
	// A -race build exits 66 after reporting yet still prints the vars
	// line; any run that got there completed.
	if m := varsLine.FindStringSubmatch(out); m != nil {
		return Signature{Kind: KindDone, Vars: m[1]}, nil
	}
	return Signature{}, fmt.Errorf("emitted program terminated unrecognizably:\n%s", out)
}

// RunEmitted executes a built binary under an external timeout and
// classifies its outcome. A start failure (not a program outcome) is
// retried with backoff; classification errors are returned as-is.
func RunEmitted(ctx context.Context, bin string, timeout time.Duration) (Signature, string, error) {
	var sig Signature
	var output string
	err := harness.Retry(ctx, subprocessAttempts, 100*time.Millisecond, func() error {
		runCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		out, _ := exec.CommandContext(runCtx, bin).CombinedOutput()
		output = string(out)
		hung := runCtx.Err() == context.DeadlineExceeded
		s, cerr := ClassifyEmitted(output, hung)
		if cerr != nil {
			return cerr
		}
		sig = s
		return nil
	})
	return sig, output, err
}
