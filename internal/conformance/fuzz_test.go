package conformance

import (
	"testing"
	"time"
)

// FuzzConformance feeds arbitrary generator seeds through the full
// differential oracle. The generator maps any int64 to a valid program, so
// the fuzzer is effectively searching the program family for a sim-vs-host
// disagreement; the checked-in corpus under testdata/fuzz keeps the
// historically interesting seeds in every plain `go test` run.
func FuzzConformance(f *testing.F) {
	// 28, 243, 254 and 457 cover the cond/timer/ticker/ctx/sem kinds.
	for _, seed := range []int64{1, 4, 6, 28, 44, 97, 103, 243, 254, 457} {
		f.Add(seed)
	}
	opts := CheckOptions{
		MaxSchedules:   256,
		HangPatience:   30 * time.Millisecond,
		FinishPatience: 2 * time.Second,
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		res := CheckSeed(seed, opts)
		if res.Divergence != nil {
			t.Fatalf("%v", res.Divergence)
		}
	})
}
