package conformance

import (
	"reflect"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// Differential coverage of the unified event stream over the generated IR
// corpus: on 200 generator programs the adapter-sink path (legacy
// MemoryObserver / Monitor callbacks behind ObserverSink / MonitorSink)
// must reproduce the native-sink path verdicts, the run's trace must be
// event-for-event identical under either sink set, and the DPOR explorer —
// now fed by event.Sched instead of a dedicated hook — must keep its
// schedule counts deterministic.

const pipelinePrograms = 200

func pipelineModes(seed int64) Mode {
	if seed%2 == 0 {
		return ModeSafe
	}
	return ModeRacy
}

func TestAdapterSinksMatchNativeOnGeneratedPrograms(t *testing.T) {
	n := pipelinePrograms
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := Generate(seed, pipelineModes(seed))
		prog, _ := simProgram(p)
		cfg := sim.Config{Seed: seed, Name: "pipeline-equiv"}

		nativeRace := race.New(-1)
		nativeVet := vet.New()
		nativeTrace := &sim.TraceCollector{}
		nc := cfg
		nc.Sinks = []event.Sink{nativeTrace, nativeRace, nativeVet}
		nres := sim.Run(nc, prog)

		adapterRace := race.New(-1)
		adapterVet := vet.New()
		adapterTrace := &sim.TraceCollector{}
		ac := cfg
		ac.Sinks = []event.Sink{
			adapterTrace,
			sim.ObserverSink{Obs: adapterRace},
			sim.MonitorSink{Mon: adapterVet},
		}
		ares := sim.Run(ac, prog)

		if nres.Outcome != ares.Outcome {
			t.Fatalf("seed %d: outcome differs native=%v adapter=%v", seed, nres.Outcome, ares.Outcome)
		}
		if got, want := len(adapterRace.Reports()), len(nativeRace.Reports()); got != want {
			t.Errorf("seed %d: race report count differs adapter=%d native=%d", seed, got, want)
		}
		for i, r := range adapterRace.Reports() {
			if want := nativeRace.Reports()[i].String(); r.String() != want {
				t.Errorf("seed %d: race report %d differs:\n  adapter: %s\n  native:  %s", seed, i, r, want)
			}
		}
		nv, av := nativeVet.Violations(), adapterVet.Violations()
		if len(nv) != len(av) {
			t.Errorf("seed %d: vet violation count differs adapter=%d native=%d", seed, len(av), len(nv))
		} else {
			for i := range nv {
				if nv[i].String() != av[i].String() {
					t.Errorf("seed %d: vet violation %d differs:\n  adapter: %s\n  native:  %s",
						seed, i, av[i], nv[i])
				}
			}
		}
		ne, ae := nativeTrace.Events(), adapterTrace.Events()
		if len(ne) != len(ae) {
			t.Fatalf("seed %d: trace length differs adapter=%d native=%d — sink set perturbed the run",
				seed, len(ae), len(ne))
		}
		for i := range ne {
			if ne[i] != ae[i] {
				t.Fatalf("seed %d: trace diverges at event %d:\n  adapter: %s\n  native:  %s",
					seed, i, ae[i], ne[i])
			}
		}
	}
}

// TestDPORScheduleCountsDeterministicOnGeneratedPrograms re-runs the
// reduced exploration — whose race-reversal analysis is now fed purely by
// event.Sched / event.SelectReady events — and requires identical schedule
// and pruning counts, program by program.
func TestDPORScheduleCountsDeterministicOnGeneratedPrograms(t *testing.T) {
	n := pipelinePrograms
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < int64(n); seed += 10 {
		p := Generate(seed, pipelineModes(seed))
		prog, _ := simProgram(p)
		run := func() *explore.SystematicResult {
			return explore.Systematic(prog, explore.SystematicOptions{
				Config:    sim.Config{Name: "pipeline-dpor"},
				MaxRuns:   300,
				Reduction: true,
			})
		}
		a, b := run(), run()
		if a.Runs != b.Runs || a.SchedulesPruned != b.SchedulesPruned ||
			a.SleepSetHits != b.SleepSetHits || a.Complete != b.Complete ||
			a.Failures != b.Failures || !reflect.DeepEqual(a.FailureSchedule, b.FailureSchedule) {
			t.Errorf("seed %d: DPOR exploration not deterministic:\n  first:  runs=%d pruned=%d sleep=%d complete=%v failures=%d\n  second: runs=%d pruned=%d sleep=%d complete=%v failures=%d",
				seed, a.Runs, a.SchedulesPruned, a.SleepSetHits, a.Complete, a.Failures,
				b.Runs, b.SchedulesPruned, b.SleepSetHits, b.Complete, b.Failures)
		}
	}
}
