package conformance

import (
	"reflect"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// TestPooledMatchesFreshOnGeneratedPrograms extends the RunPool
// differential (internal/sim/sim_pool_differential_test.go) to the
// generated IR corpus: 200 generator programs through ONE shared pool,
// each compared against a fresh sim.Run for Result, event stream, race
// reports, and vet violations. The generator's structural variety (chans,
// selects, locks, waitgroups, nested spawns) exercises arena recycling
// across wildly different object populations.
func TestPooledMatchesFreshOnGeneratedPrograms(t *testing.T) {
	n := pipelinePrograms
	if testing.Short() {
		n = 40
	}
	pool := sim.NewRunPool()
	defer pool.Close()
	for seed := int64(0); seed < int64(n); seed++ {
		p := Generate(seed, pipelineModes(seed))
		prog, _ := simProgram(p)
		cfg := sim.Config{Seed: seed, Name: "pool-equiv"}

		run := func(pooled bool) (*sim.Result, []sim.Event, []string, []string) {
			tr := &sim.TraceCollector{}
			det := race.New(-1)
			vt := vet.New()
			c := cfg
			c.Sinks = []event.Sink{tr, det, vt}
			var res *sim.Result
			if pooled {
				res = pool.Run(c, prog).Clone()
			} else {
				res = sim.Run(c, prog)
			}
			var races, vets []string
			for _, r := range det.Reports() {
				races = append(races, r.String())
			}
			for _, v := range vt.Violations() {
				vets = append(vets, v.String())
			}
			return res, tr.Events(), races, vets
		}

		fres, fev, frace, fvet := run(false)
		pres, pev, prace, pvet := run(true)

		if !reflect.DeepEqual(fres, pres) {
			t.Errorf("seed %d: Result differs\n  fresh:  %+v\n  pooled: %+v", seed, fres, pres)
		}
		if len(fev) != len(pev) {
			t.Fatalf("seed %d: trace length differs fresh=%d pooled=%d", seed, len(fev), len(pev))
		}
		for i := range fev {
			if fev[i] != pev[i] {
				t.Fatalf("seed %d: trace diverges at event %d:\n  fresh:  %s\n  pooled: %s",
					seed, i, fev[i], pev[i])
			}
		}
		if !reflect.DeepEqual(frace, prace) {
			t.Errorf("seed %d: race reports differ\n  fresh:  %v\n  pooled: %v", seed, frace, prace)
		}
		if !reflect.DeepEqual(fvet, pvet) {
			t.Errorf("seed %d: vet violations differ\n  fresh:  %v\n  pooled: %v", seed, fvet, pvet)
		}
	}
}
