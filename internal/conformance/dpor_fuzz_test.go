package conformance

import (
	"flag"
	"fmt"
	"testing"
)

// -conformance.mode picks the generator mode for TestDPORSoundnessSeed.
var modeFlag = flag.String("conformance.mode", "safe",
	"generator mode (safe|racy) for TestDPORSoundnessSeed")

// dporReplayHint is the one-line reproduction recipe printed with every
// FuzzDPORSoundness failure: the generator seed pins the program, and the
// named test re-runs the full-vs-reduced comparison standalone.
func dporReplayHint(seed int64, racy bool) string {
	mode := "safe"
	if racy {
		mode = "racy"
	}
	return fmt.Sprintf("reproduce with: go test ./internal/conformance -run TestDPORSoundnessSeed -conformance.seed=%d -conformance.mode=%s -v", seed, mode)
}

// checkDPORSoundness compares the outcome-signature set of the reduced
// exploration against full enumeration for one generated program. The
// contract is one-sided and absolute: DPOR may skip schedules, but it must
// never miss a DFS-reachable outcome — a missed signature means an unsound
// pruning decision (a dependence the footprints failed to capture, a sleep
// entry that should have been woken).
func checkDPORSoundness(t *testing.T, seed int64, racy bool) {
	t.Helper()
	mode := ModeSafe
	if racy {
		mode = ModeRacy
	}
	p := Generate(seed, mode)
	const budget = 4000
	full := ExploreSimReduced(p, budget, false, false)
	red := ExploreSimReduced(p, budget, false, true)
	if red.Schedules > full.Schedules {
		t.Errorf("generator seed %d: DPOR ran %d schedules, full DFS ran %d — the reduction must never explore more\n%s",
			seed, red.Schedules, full.Schedules, dporReplayHint(seed, racy))
	}
	if !full.Complete {
		// The unreduced space exceeded the budget; without the full set
		// there is nothing to compare against.
		return
	}
	if !red.Complete {
		t.Errorf("generator seed %d: full DFS completed in %d schedules but DPOR did not complete in %d\n%s",
			seed, full.Schedules, budget, dporReplayHint(seed, racy))
		return
	}
	for sig := range full.Sigs {
		if red.Sigs[sig] == 0 {
			t.Errorf("generator seed %d: DPOR misses DFS-reachable outcome %v (full %s, reduced %s)\n%s",
				seed, sig, full.Summary(), red.Summary(), dporReplayHint(seed, racy))
		}
	}
	for sig := range red.Sigs {
		if full.Sigs[sig] == 0 {
			t.Errorf("generator seed %d: DPOR reaches outcome %v the full DFS does not\n%s",
				seed, sig, dporReplayHint(seed, racy))
		}
	}
}

// FuzzDPORSoundness searches the generated-program family for interleaving
// spaces where dynamic partial-order reduction loses an outcome. The
// checked-in corpus under testdata/fuzz keeps the historically interesting
// inputs — including seed 97, whose leftmost schedule panics and abandons
// runnable goroutines, the truncated-run case that required conservative
// backtracking — in every plain `go test` run.
func FuzzDPORSoundness(f *testing.F) {
	// 28, 243, 254 and 457 cover the cond/timer/ticker/ctx/sem kinds.
	for _, seed := range []int64{0, 1, 6, 44, 97, 103, 28, 243, 254, 457} {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, racy bool) {
		checkDPORSoundness(t, seed, racy)
	})
}

// TestDPORSoundnessSeed re-checks a single seed from the command line — the
// replay half of the recipe FuzzDPORSoundness prints on failure.
func TestDPORSoundnessSeed(t *testing.T) {
	if *seedFlag < 0 {
		t.Skip("pass -conformance.seed=N (and optionally -conformance.mode=racy)")
	}
	checkDPORSoundness(t, *seedFlag, *modeFlag == "racy")
}
