package conformance

import (
	"testing"
	"time"
)

// missedSignalProgram is the paper's Section 5.1.1 missed-signal bug as IR:
// the waiter guards with `if` and the signaller signals without setting the
// predicate, so a signal delivered before the waiter parks is lost and the
// waiter sleeps forever on some schedules.
func missedSignalProgram() *Program {
	return &Program{
		Conds: 1,
		Goroutines: [][]Stmt{
			{
				{Kind: StSpawn, G: 1},
				{Kind: StCondSignal, C: 0}, // no SetReady: wake-up is lossy
			},
			{
				{Kind: StCondWait, C: 0}, // if-guard: a lost signal strands it
			},
		},
	}
}

// TestLivenessMetamorphicCondPair is the metamorphic check behind the
// missed-signal oracle: the buggy variant's schedule space must contain
// runs that end parked on the cond, and the mechanically fixed variant
// (for-guard + broadcast that sets the predicate) must be completely quiet.
func TestLivenessMetamorphicCondPair(t *testing.T) {
	t.Parallel()
	buggy := missedSignalProgram()
	sp := ExploreSim(buggy, 600, false)
	if !sp.Complete {
		t.Fatalf("missed-signal space not fully explored: %s", sp.Summary())
	}
	if sp.CondBlocked == 0 {
		t.Fatalf("no schedule ends parked on the cond; the missed-signal bug is unreachable: %s", sp.Summary())
	}

	fixed := FixedCondVariant(buggy)
	sp = ExploreSim(fixed, 600, false)
	if !sp.Complete {
		t.Fatalf("fixed-variant space not fully explored: %s", sp.Summary())
	}
	if sp.CondBlocked != 0 {
		t.Fatalf("fixed variant still parks on the cond in %d schedules: %s", sp.CondBlocked, sp.Summary())
	}
	if sp.AllowsHang() {
		t.Fatalf("fixed variant can still hang: %s", sp.Summary())
	}
}

// TestLivenessOracleFiresOnSeededBug drives the full CheckSeed path: a
// program tagged SignalGuaranteed whose guarantee is a lie must produce a
// liveness divergence, without any host run.
func TestLivenessOracleFiresOnSeededBug(t *testing.T) {
	t.Parallel()
	p := missedSignalProgram()
	p.SignalGuaranteed = true // falsely claimed; the oracle must catch it
	res := CheckProgram(p, CheckOptions{})
	if res.Divergence == nil || !res.Divergence.Liveness {
		t.Fatalf("liveness oracle silent on a missed-signal program: %+v", res.Divergence)
	}
	if res.HostRan {
		t.Error("host ran despite a sim-side liveness verdict")
	}
}

// ctxLeakProgram is the paper's Section 5.1.2 context-cancellation leak:
// the receiver gives up via ctx.Done() while the sender's bare send has no
// second way out — schedules where the cancel wins strand the sender.
func ctxLeakProgram() *Program {
	return &Program{
		Chans: []ChanDecl{{Cap: 0}},
		Ctxs:  []CtxDecl{{Parent: -1}},
		Goroutines: [][]Stmt{
			{
				{Kind: StSpawn, G: 1},
				{Kind: StSpawn, G: 2},
			},
			{
				{Kind: StSelect, Cases: []SelCase{
					{Dst: -1, Ch: 0},
					{CtxDone: true, Cx: 0},
				}},
			},
			{
				{Kind: StCtxCancel, Cx: 0},
				{Kind: StSend, Ch: 0, Val: 1},
			},
		},
	}
}

// TestCtxLeakShapeReachable pins that the context-leak shape really is
// schedule-dependent on the simulator: some schedules finish (receiver takes
// the channel arm) and some hang with the sender blocked (receiver took
// ctx.Done first) — the two outcomes the membership oracle must reconcile
// with whichever one the host draws.
func TestCtxLeakShapeReachable(t *testing.T) {
	t.Parallel()
	p := ctxLeakProgram()
	sp := ExploreSim(p, 600, false)
	if !sp.Complete {
		t.Fatalf("ctx-leak space not fully explored: %s", sp.Summary())
	}
	var done, hung bool
	for sig := range sp.Sigs {
		switch sig.Kind {
		case KindDone:
			done = true
		case KindHung:
			hung = true
		}
	}
	if !done || !hung {
		t.Fatalf("ctx-leak shape lost an outcome (done=%v hung=%v): %s", done, hung, sp.Summary())
	}
}

// TestHostMissedSignalFailsFast pins the host-side deadline guard: because
// the sim declares the hang reachable, the host run gets the short patience
// and a genuinely stranded cond waiter comes back as a structured hung
// verdict in well under a second — not a test-suite timeout.
func TestHostMissedSignalFailsFast(t *testing.T) {
	t.Parallel()
	start := time.Now()
	sig := RunHost(missedSignalProgram(), 100*time.Millisecond)
	elapsed := time.Since(start)
	// The host may win the race and finish; what it must never do is stall.
	if sig.Kind != KindHung && sig.Kind != KindDone {
		t.Fatalf("host outcome = %v, want hung or done", sig)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("host classification took %v; the deadline guard is broken", elapsed)
	}
}
