// Package conformance differentially tests the simulated runtime against
// the real Go runtime.
//
// Everything this repository claims — the Table 8/12 reproductions, the
// schedule explorer, the rule monitor — rests on internal/sim faithfully
// modeling Go's channel, mutex, select, WaitGroup and Once semantics, and on
// internal/race and internal/deadlock matching the behavior of `-race` and
// the built-in deadlock detector. Hand-written kernels spot-check that
// claim; this package stress-tests it: a seeded generator produces small
// random concurrent programs as a backend-neutral IR, each program executes
// on two backends — the deterministic simulator (every schedule, via
// explore.Systematic) and the real Go runtime (host goroutines and real
// sync primitives under a watchdog) — and a differential oracle cross-checks
// the outcomes:
//
//   - membership: the host run's terminal state (completion, panic identity,
//     final shared-variable values, or a hang) must be one the simulator can
//     reach in its schedule space;
//   - deadlock direction: when every simulated schedule deadlocks, the host
//     program must actually hang;
//   - race direction: programs with injected unsynchronized accesses,
//     emitted as real Go source and built with -race, must draw a host race
//     report — and the sim race detector must report the same program racy
//     somewhere in its schedule space.
//
// A divergence is reported with the generator seed and a standalone
// reproduction command, and the pinned corpus under testdata/conformance/
// keeps previously interesting programs in every future run.
package conformance

import "fmt"

// Program is a backend-neutral description of a small concurrent program.
// Goroutine 0 is main; it spawns the others at the positions of its Spawn
// statements. The zero values of all resources are meaningful: channels
// carry int64s, vars are int64s initialized to zero.
type Program struct {
	// Seed is the generator seed that produced the program (for reports);
	// 0 for hand-built programs.
	Seed int64
	// Chans declares the program's channels.
	Chans []ChanDecl
	// Mutexes, RWMutexes, WaitGroups, Onces and Vars are resource counts;
	// statements refer to them by index.
	Mutexes    int
	RWMutexes  int
	WaitGroups int
	Onces      int
	Vars       int
	// RacyVars marks vars whose host accesses are deliberately
	// unsynchronized (the race-direction oracle); all other vars are
	// accessed under a per-var mutex on the host, which keeps the default
	// differential suite clean under `go test -race` without adding any
	// cross-variable synchronization the simulator does not have.
	RacyVars []bool
	// Goroutines holds each goroutine's statement list; Goroutines[0] is
	// main.
	Goroutines [][]Stmt
}

// ChanDecl declares one channel.
type ChanDecl struct {
	Cap int
	// Nil makes every reference to this channel a nil-channel operation:
	// sends and receives block forever, close panics.
	Nil bool
}

// StmtKind enumerates the IR's statement forms.
type StmtKind int

// Statement kinds. Lock-type statements are generated balanced (every Lock
// has a matching Unlock in the same goroutine, properly nested), which
// sidesteps the simulator's one documented mutex divergence (it forbids
// cross-goroutine unlocks that real Go permits) while still reaching
// double-lock self-deadlocks and lock-order deadlocks through nesting.
const (
	// StSpawn starts goroutine G (main only; each spawned exactly once).
	StSpawn StmtKind = iota
	// StSend sends Val on channel Ch.
	StSend
	// StRecv receives from channel Ch into var Dst (Dst < 0 discards).
	// A receive from a closed, drained channel stores 0.
	StRecv
	// StClose closes channel Ch.
	StClose
	// StSelect runs a select over Cases, with a default when HasDefault.
	StSelect
	// StLock / StUnlock bracket mutex Mu.
	StLock
	StUnlock
	// StRLock / StRUnlock and StWLock / StWUnlock bracket rwmutex Mu.
	StRLock
	StRUnlock
	StWLock
	StWUnlock
	// StWgAdd adds Val to WaitGroup Wg; StWgDone decrements it; StWgWait
	// waits for it.
	StWgAdd
	StWgDone
	StWgWait
	// StOnceDo runs Body under Once O.
	StOnceDo
	// StVarStore stores Val into var Dst.
	StVarStore
	// StVarAdd loads var Dst, adds Val, stores the sum — a two-step
	// read-modify-write on both backends, so lost updates are reachable.
	StVarAdd
	// StYield reschedules (runtime.Gosched on the host).
	StYield
)

// Stmt is one IR statement. Fields are interpreted per Kind.
type Stmt struct {
	Kind  StmtKind
	G     int   // StSpawn: goroutine index
	Ch    int   // channel index
	Mu    int   // mutex or rwmutex index
	Wg    int   // waitgroup index
	O     int   // once index
	Dst   int   // var index (-1: discard)
	Val   int64 // sent value / stored value / add delta
	Cases []SelCase
	// HasDefault makes an StSelect non-blocking.
	HasDefault bool
	// Body is StOnceDo's nested statement list.
	Body []Stmt
}

// SelCase is one arm of an StSelect.
type SelCase struct {
	Send bool
	Ch   int
	Val  int64 // sent value (Send)
	Dst  int   // receive destination var, -1 to discard (!Send)
}

// String renders a compact, single-line form of the statement for reports.
func (s Stmt) String() string {
	switch s.Kind {
	case StSpawn:
		return fmt.Sprintf("spawn g%d", s.G)
	case StSend:
		return fmt.Sprintf("c%d <- %d", s.Ch, s.Val)
	case StRecv:
		if s.Dst < 0 {
			return fmt.Sprintf("<-c%d", s.Ch)
		}
		return fmt.Sprintf("v%d = <-c%d", s.Dst, s.Ch)
	case StClose:
		return fmt.Sprintf("close(c%d)", s.Ch)
	case StSelect:
		out := "select{"
		for i, c := range s.Cases {
			if i > 0 {
				out += "; "
			}
			if c.Send {
				out += fmt.Sprintf("c%d <- %d", c.Ch, c.Val)
			} else if c.Dst >= 0 {
				out += fmt.Sprintf("v%d = <-c%d", c.Dst, c.Ch)
			} else {
				out += fmt.Sprintf("<-c%d", c.Ch)
			}
		}
		if s.HasDefault {
			out += "; default"
		}
		return out + "}"
	case StLock:
		return fmt.Sprintf("mu%d.Lock", s.Mu)
	case StUnlock:
		return fmt.Sprintf("mu%d.Unlock", s.Mu)
	case StRLock:
		return fmt.Sprintf("rw%d.RLock", s.Mu)
	case StRUnlock:
		return fmt.Sprintf("rw%d.RUnlock", s.Mu)
	case StWLock:
		return fmt.Sprintf("rw%d.Lock", s.Mu)
	case StWUnlock:
		return fmt.Sprintf("rw%d.Unlock", s.Mu)
	case StWgAdd:
		return fmt.Sprintf("wg%d.Add(%d)", s.Wg, s.Val)
	case StWgDone:
		return fmt.Sprintf("wg%d.Done", s.Wg)
	case StWgWait:
		return fmt.Sprintf("wg%d.Wait", s.Wg)
	case StOnceDo:
		out := fmt.Sprintf("once%d.Do{", s.O)
		for i, b := range s.Body {
			if i > 0 {
				out += "; "
			}
			out += b.String()
		}
		return out + "}"
	case StVarStore:
		return fmt.Sprintf("v%d = %d", s.Dst, s.Val)
	case StVarAdd:
		return fmt.Sprintf("v%d += %d", s.Dst, s.Val)
	case StYield:
		return "yield"
	default:
		return fmt.Sprintf("stmt(%d)", int(s.Kind))
	}
}

// String renders the whole program.
func (p *Program) String() string {
	out := fmt.Sprintf("program seed=%d chans=%v mutexes=%d rwmutexes=%d wgs=%d onces=%d vars=%d racy=%v\n",
		p.Seed, p.Chans, p.Mutexes, p.RWMutexes, p.WaitGroups, p.Onces, p.Vars, p.RacyVars)
	for gi, body := range p.Goroutines {
		name := fmt.Sprintf("g%d", gi)
		if gi == 0 {
			name = "main"
		}
		out += name + ":\n"
		for _, s := range body {
			out += "  " + s.String() + "\n"
		}
	}
	return out
}
