// Package conformance differentially tests the simulated runtime against
// the real Go runtime.
//
// Everything this repository claims — the Table 8/12 reproductions, the
// schedule explorer, the rule monitor — rests on internal/sim faithfully
// modeling Go's channel, mutex, select, WaitGroup and Once semantics, and on
// internal/race and internal/deadlock matching the behavior of `-race` and
// the built-in deadlock detector. Hand-written kernels spot-check that
// claim; this package stress-tests it: a seeded generator produces small
// random concurrent programs as a backend-neutral IR, each program executes
// on two backends — the deterministic simulator (every schedule, via
// explore.Systematic) and the real Go runtime (host goroutines and real
// sync primitives under a watchdog) — and a differential oracle cross-checks
// the outcomes:
//
//   - membership: the host run's terminal state (completion, panic identity,
//     final shared-variable values, or a hang) must be one the simulator can
//     reach in its schedule space;
//   - deadlock direction: when every simulated schedule deadlocks, the host
//     program must actually hang;
//   - race direction: programs with injected unsynchronized accesses,
//     emitted as real Go source and built with -race, must draw a host race
//     report — and the sim race detector must report the same program racy
//     somewhere in its schedule space.
//
// A divergence is reported with the generator seed and a standalone
// reproduction command, and the pinned corpus under testdata/conformance/
// keeps previously interesting programs in every future run.
package conformance

import "fmt"

// Program is a backend-neutral description of a small concurrent program.
// Goroutine 0 is main; it spawns the others at the positions of its Spawn
// statements. The zero values of all resources are meaningful: channels
// carry int64s, vars are int64s initialized to zero.
type Program struct {
	// Seed is the generator seed that produced the program (for reports);
	// 0 for hand-built programs.
	Seed int64
	// Chans declares the program's channels.
	Chans []ChanDecl
	// Mutexes, RWMutexes, WaitGroups, Onces and Vars are resource counts;
	// statements refer to them by index.
	Mutexes    int
	RWMutexes  int
	WaitGroups int
	Onces      int
	Vars       int
	// RacyVars marks vars whose host accesses are deliberately
	// unsynchronized (the race-direction oracle); all other vars are
	// accessed under a per-var mutex on the host, which keeps the default
	// differential suite clean under `go test -race` without adding any
	// cross-variable synchronization the simulator does not have.
	RacyVars []bool
	// Conds counts condition variables. Each cond owns a dedicated internal
	// mutex and a boolean "ready" predicate; StCondWait/Signal/Broadcast are
	// composite statements that lock, test or set the predicate, and unlock,
	// so generated cond use is race-free by construction on the host.
	Conds int
	// Ctxs declares the program's cancellable contexts; statements refer to
	// them by index.
	Ctxs []CtxDecl
	// Sems holds one capacity per counting semaphore (a buffered channel of
	// tokens on the host, sim.Semaphore on the simulator).
	Sems []int
	// Goroutines holds each goroutine's statement list; Goroutines[0] is
	// main.
	Goroutines [][]Stmt
	// SignalGuaranteed tags programs whose cond construct is wake-guaranteed
	// by construction: a dedicated broadcaster goroutine (spawned first in
	// main, body is a single predicate-setting Broadcast) that can never
	// block before broadcasting. For such programs the liveness oracle
	// requires that no completely explored schedule ends with a goroutine
	// parked on a cond.
	SignalGuaranteed bool
	// CondOrphaned tags programs whose cond waiters may miss their wake-up
	// (no signaller, or a signaller that does not set the predicate): a
	// schedule-dependent or certain hang on the cond is expected and the
	// membership oracle alone judges it.
	CondOrphaned bool
}

// CtxDecl declares one cancellable context. Contexts form a tree:
// Parent < 0 derives from Background, otherwise from Ctxs[Parent]
// (which must have a smaller index).
type CtxDecl struct {
	Parent int
}

// ChanDecl declares one channel.
type ChanDecl struct {
	Cap int
	// Nil makes every reference to this channel a nil-channel operation:
	// sends and receives block forever, close panics.
	Nil bool
}

// StmtKind enumerates the IR's statement forms.
type StmtKind int

// Statement kinds. Lock-type statements are generated balanced (every Lock
// has a matching Unlock in the same goroutine, properly nested), which
// sidesteps the simulator's one documented mutex divergence (it forbids
// cross-goroutine unlocks that real Go permits) while still reaching
// double-lock self-deadlocks and lock-order deadlocks through nesting.
const (
	// StSpawn starts goroutine G (main only; each spawned exactly once).
	StSpawn StmtKind = iota
	// StSend sends Val on channel Ch.
	StSend
	// StRecv receives from channel Ch into var Dst (Dst < 0 discards).
	// A receive from a closed, drained channel stores 0.
	StRecv
	// StClose closes channel Ch.
	StClose
	// StSelect runs a select over Cases, with a default when HasDefault.
	StSelect
	// StLock / StUnlock bracket mutex Mu.
	StLock
	StUnlock
	// StRLock / StRUnlock and StWLock / StWUnlock bracket rwmutex Mu.
	StRLock
	StRUnlock
	StWLock
	StWUnlock
	// StWgAdd adds Val to WaitGroup Wg; StWgDone decrements it; StWgWait
	// waits for it.
	StWgAdd
	StWgDone
	StWgWait
	// StOnceDo runs Body under Once O.
	StOnceDo
	// StVarStore stores Val into var Dst.
	StVarStore
	// StVarAdd loads var Dst, adds Val, stores the sum — a two-step
	// read-modify-write on both backends, so lost updates are reachable.
	StVarAdd
	// StYield reschedules (runtime.Gosched on the host).
	StYield
	// StCondWait locks cond C's mutex, tests its predicate (an if when
	// ForGuard is false — the paper's missed-signal shape — or the
	// documented for-loop when true), waits while unready, and unlocks.
	StCondWait
	// StCondSignal locks cond C's mutex, optionally sets the predicate
	// (SetReady), signals one waiter, and unlocks. A signal without
	// SetReady reproduces the missed-signal bug: delivered before any
	// waiter parks, it is lost and an if-guarded waiter sleeps forever.
	StCondSignal
	// StCondBroadcast is StCondSignal with Broadcast (wakes all waiters).
	StCondBroadcast
	// StTimerAfter blocks on <-time.After(d): virtual time on the sim,
	// a short real duration on the host, value discarded on both. Dur is
	// a small duration rank, not a literal duration.
	StTimerAfter
	// StTickerLoop receives N ticks from a fresh ticker of rank Dur, then
	// stops it.
	StTickerLoop
	// StCtxCancel cancels context Cx (idempotent on both backends).
	StCtxCancel
	// StCtxDone blocks on <-ctx.Done() for context Cx; if the context is
	// never cancelled it blocks forever on both backends.
	StCtxDone
	// StSemAcquire acquires one token from semaphore Sem (blocks at
	// capacity); StSemRelease returns one, panicking if none is held —
	// the host's release is a non-blocking token receive with an explicit
	// panic, mirroring sim.Semaphore.Release exactly.
	StSemAcquire
	StSemRelease
)

// stmtKindNames indexes StmtKind; keep in sync with the const block above.
var stmtKindNames = [...]string{
	"spawn", "send", "recv", "close", "select",
	"lock", "unlock", "rlock", "runlock", "wlock", "wunlock",
	"wg-add", "wg-done", "wg-wait", "once-do",
	"var-store", "var-add", "yield",
	"cond-wait", "cond-signal", "cond-broadcast",
	"timer-after", "ticker-loop",
	"ctx-cancel", "ctx-done",
	"sem-acquire", "sem-release",
}

// String implements fmt.Stringer for kind-coverage reports.
func (k StmtKind) String() string {
	if int(k) < len(stmtKindNames) {
		return stmtKindNames[k]
	}
	return fmt.Sprintf("StmtKind(%d)", int(k))
}

// AllStmtKinds lists every statement kind in declaration order, for
// coverage iteration in stable order.
var AllStmtKinds = func() []StmtKind {
	out := make([]StmtKind, len(stmtKindNames))
	for i := range out {
		out[i] = StmtKind(i)
	}
	return out
}()

// Stmt is one IR statement. Fields are interpreted per Kind.
type Stmt struct {
	Kind  StmtKind
	G     int   // StSpawn: goroutine index
	Ch    int   // channel index
	Mu    int   // mutex or rwmutex index
	Wg    int   // waitgroup index
	O     int   // once index
	Dst   int   // var index (-1: discard)
	Val   int64 // sent value / stored value / add delta
	C     int   // cond index
	Cx    int   // context index
	Sem   int   // semaphore index
	Dur   int   // timer duration rank (≥ 1)
	N     int   // StTickerLoop: number of ticks received
	Cases []SelCase
	// HasDefault makes an StSelect non-blocking.
	HasDefault bool
	// ForGuard selects the for-loop predicate guard on StCondWait.
	ForGuard bool
	// SetReady makes StCondSignal/StCondBroadcast set the predicate before
	// waking, so already-woken and future waiters both pass their guard.
	SetReady bool
	// Body is StOnceDo's nested statement list.
	Body []Stmt
}

// SelCase is one arm of an StSelect.
type SelCase struct {
	Send bool
	Ch   int
	Val  int64 // sent value (Send)
	Dst  int   // receive destination var, -1 to discard (!Send)
	// CtxDone makes the case a receive from context Cx's Done channel
	// (value always discarded; Send/Ch unused).
	CtxDone bool
	Cx      int
	// Timeout makes the case a receive from time.After of rank Dur (the
	// paper's timeout-guarded send/receive idiom; value always discarded).
	Timeout bool
	Dur     int
}

// String renders a compact, single-line form of the statement for reports.
func (s Stmt) String() string {
	switch s.Kind {
	case StSpawn:
		return fmt.Sprintf("spawn g%d", s.G)
	case StSend:
		return fmt.Sprintf("c%d <- %d", s.Ch, s.Val)
	case StRecv:
		if s.Dst < 0 {
			return fmt.Sprintf("<-c%d", s.Ch)
		}
		return fmt.Sprintf("v%d = <-c%d", s.Dst, s.Ch)
	case StClose:
		return fmt.Sprintf("close(c%d)", s.Ch)
	case StSelect:
		out := "select{"
		for i, c := range s.Cases {
			if i > 0 {
				out += "; "
			}
			switch {
			case c.CtxDone:
				out += fmt.Sprintf("<-ctx%d.Done()", c.Cx)
			case c.Timeout:
				out += fmt.Sprintf("<-after(%d)", c.Dur)
			case c.Send:
				out += fmt.Sprintf("c%d <- %d", c.Ch, c.Val)
			case c.Dst >= 0:
				out += fmt.Sprintf("v%d = <-c%d", c.Dst, c.Ch)
			default:
				out += fmt.Sprintf("<-c%d", c.Ch)
			}
		}
		if s.HasDefault {
			out += "; default"
		}
		return out + "}"
	case StLock:
		return fmt.Sprintf("mu%d.Lock", s.Mu)
	case StUnlock:
		return fmt.Sprintf("mu%d.Unlock", s.Mu)
	case StRLock:
		return fmt.Sprintf("rw%d.RLock", s.Mu)
	case StRUnlock:
		return fmt.Sprintf("rw%d.RUnlock", s.Mu)
	case StWLock:
		return fmt.Sprintf("rw%d.Lock", s.Mu)
	case StWUnlock:
		return fmt.Sprintf("rw%d.Unlock", s.Mu)
	case StWgAdd:
		return fmt.Sprintf("wg%d.Add(%d)", s.Wg, s.Val)
	case StWgDone:
		return fmt.Sprintf("wg%d.Done", s.Wg)
	case StWgWait:
		return fmt.Sprintf("wg%d.Wait", s.Wg)
	case StOnceDo:
		out := fmt.Sprintf("once%d.Do{", s.O)
		for i, b := range s.Body {
			if i > 0 {
				out += "; "
			}
			out += b.String()
		}
		return out + "}"
	case StVarStore:
		return fmt.Sprintf("v%d = %d", s.Dst, s.Val)
	case StVarAdd:
		return fmt.Sprintf("v%d += %d", s.Dst, s.Val)
	case StYield:
		return "yield"
	case StCondWait:
		guard := "if"
		if s.ForGuard {
			guard = "for"
		}
		return fmt.Sprintf("cond%d.Wait[%s !ready]", s.C, guard)
	case StCondSignal:
		if s.SetReady {
			return fmt.Sprintf("cond%d.Signal[ready=true]", s.C)
		}
		return fmt.Sprintf("cond%d.Signal", s.C)
	case StCondBroadcast:
		if s.SetReady {
			return fmt.Sprintf("cond%d.Broadcast[ready=true]", s.C)
		}
		return fmt.Sprintf("cond%d.Broadcast", s.C)
	case StTimerAfter:
		return fmt.Sprintf("<-after(%d)", s.Dur)
	case StTickerLoop:
		return fmt.Sprintf("ticker(%d)x%d", s.Dur, s.N)
	case StCtxCancel:
		return fmt.Sprintf("cancel%d()", s.Cx)
	case StCtxDone:
		return fmt.Sprintf("<-ctx%d.Done()", s.Cx)
	case StSemAcquire:
		return fmt.Sprintf("sem%d.Acquire", s.Sem)
	case StSemRelease:
		return fmt.Sprintf("sem%d.Release", s.Sem)
	default:
		return fmt.Sprintf("stmt(%d)", int(s.Kind))
	}
}

// Kinds reports every statement kind the program contains, folding select
// arms into the kind they exercise (a ctx-done arm counts as StCtxDone, a
// timeout arm as StTimerAfter). Sweeps use it to prove kind coverage.
func (p *Program) Kinds() map[StmtKind]bool {
	out := map[StmtKind]bool{}
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, s := range body {
			out[s.Kind] = true
			for _, c := range s.Cases {
				switch {
				case c.CtxDone:
					out[StCtxDone] = true
				case c.Timeout:
					out[StTimerAfter] = true
				}
			}
			walk(s.Body)
		}
	}
	for _, body := range p.Goroutines {
		walk(body)
	}
	return out
}

// FixedCondVariant returns a copy of p with the paper's recommended
// missed-signal fix applied to every top-level cond statement: waits become
// for-guarded, and signals become predicate-setting broadcasts. The
// metamorphic liveness pass requires the oracle to stay quiet on the fixed
// variant of any flagged program. Cond statements are top-level by
// construction, so the rewrite does not descend into Once bodies.
func FixedCondVariant(p *Program) *Program {
	q := *p
	q.Goroutines = make([][]Stmt, len(p.Goroutines))
	for gi, body := range p.Goroutines {
		nb := make([]Stmt, len(body))
		copy(nb, body)
		for i := range nb {
			switch nb[i].Kind {
			case StCondWait:
				nb[i].ForGuard = true
			case StCondSignal, StCondBroadcast:
				nb[i].Kind = StCondBroadcast
				nb[i].SetReady = true
			}
		}
		q.Goroutines[gi] = nb
	}
	return &q
}

// String renders the whole program.
func (p *Program) String() string {
	out := fmt.Sprintf("program seed=%d chans=%v mutexes=%d rwmutexes=%d wgs=%d onces=%d vars=%d racy=%v\n",
		p.Seed, p.Chans, p.Mutexes, p.RWMutexes, p.WaitGroups, p.Onces, p.Vars, p.RacyVars)
	if p.Conds > 0 || len(p.Ctxs) > 0 || len(p.Sems) > 0 {
		out += fmt.Sprintf("  conds=%d ctxs=%v sems=%v signalGuaranteed=%v condOrphaned=%v\n",
			p.Conds, p.Ctxs, p.Sems, p.SignalGuaranteed, p.CondOrphaned)
	}
	for gi, body := range p.Goroutines {
		name := fmt.Sprintf("g%d", gi)
		if gi == 0 {
			name = "main"
		}
		out += name + ":\n"
		for _, s := range body {
			out += "  " + s.String() + "\n"
		}
	}
	return out
}
