package conformance

import (
	"fmt"
	"time"

	"goconcbugs/internal/sim"
)

// Duration ranks map to backend-specific durations. The simulator runs on
// virtual time, so its unit is nominal; the host units are chosen large
// enough that real scheduling noise cannot fire a timeout before a merely
// slow (but runnable) counterpart acts, yet small enough to stay far under
// the oracle's FinishPatience watchdog.
func simDur(rank int) time.Duration { return time.Duration(rank) * time.Millisecond }

func hostAfterDur(rank int) time.Duration { return time.Duration(rank) * 100 * time.Millisecond }

// hostTickDur is shorter than hostAfterDur: ticker ticks are unconditional
// (no competing case can lose to them), so they only need to be nonzero.
func hostTickDur(rank int) time.Duration { return time.Duration(rank) * 3 * time.Millisecond }

// simCond is a cond resource's instantiation: the cond, its dedicated
// mutex, and its ready predicate. The predicate is a sim.Var (not a plain
// bool) so DPOR footprints and the HB race detector see its accesses.
type simCond struct {
	mu    *sim.Mutex
	c     *sim.Cond
	ready *sim.Var[int64]
}

// simEnv is one run's instantiation of a program's resources on the
// simulated runtime. The oracle reads terminal var state from it after
// sim.Run returns.
type simEnv struct {
	p       *Program
	chans   []sim.Chan[int64]
	mus     []*sim.Mutex
	rws     []*sim.RWMutex
	wgs     []*sim.WaitGroup
	onces   []*sim.Once
	vars    []*sim.Var[int64]
	conds   []*simCond
	ctxs    []*sim.Context
	cancels []sim.CancelFunc
	sems    []*sim.Semaphore
}

// SimProgram compiles p into a sim.Program for external harnesses (the
// offline-replay differential suite runs generated programs through the
// detector pipeline). The final-variable environment is discarded; callers
// that need terminal signatures go through ExploreSim instead.
func SimProgram(p *Program) sim.Program {
	prog, _ := simProgram(p)
	return prog
}

// simProgram compiles p into a sim.Program. Every invocation builds fresh
// resources, so the same value can be run under many seeds or schedules; the
// returned slot points at the environment of the most recently *started*
// run, which equals the just-finished run whenever runs are serial (the
// conformance oracle explores with Workers == 1 for exactly this reason).
func simProgram(p *Program) (prog sim.Program, envSlot **simEnv) {
	slot := new(*simEnv)
	return func(t *sim.T) {
		env := &simEnv{p: p}
		*slot = env
		for i, d := range p.Chans {
			if d.Nil {
				env.chans = append(env.chans, sim.NilChan[int64]())
				continue
			}
			env.chans = append(env.chans, sim.NewChanNamed[int64](t, fmt.Sprintf("c%d", i), d.Cap))
		}
		for i := 0; i < p.Mutexes; i++ {
			env.mus = append(env.mus, sim.NewMutex(t, fmt.Sprintf("mu%d", i)))
		}
		for i := 0; i < p.RWMutexes; i++ {
			env.rws = append(env.rws, sim.NewRWMutex(t, fmt.Sprintf("rw%d", i)))
		}
		for i := 0; i < p.WaitGroups; i++ {
			env.wgs = append(env.wgs, sim.NewWaitGroup(t, fmt.Sprintf("wg%d", i)))
		}
		for i := 0; i < p.Onces; i++ {
			env.onces = append(env.onces, sim.NewOnce(t, fmt.Sprintf("once%d", i)))
		}
		for i := 0; i < p.Vars; i++ {
			env.vars = append(env.vars, sim.NewVar[int64](t, fmt.Sprintf("v%d", i)))
		}
		for i := 0; i < p.Conds; i++ {
			mu := sim.NewMutex(t, fmt.Sprintf("cond%d.mu", i))
			env.conds = append(env.conds, &simCond{
				mu:    mu,
				c:     sim.NewCond(t, mu, fmt.Sprintf("cond%d", i)),
				ready: sim.NewVar[int64](t, fmt.Sprintf("cond%d.ready", i)),
			})
		}
		for _, d := range p.Ctxs {
			parent := sim.Background(t)
			if d.Parent >= 0 {
				parent = env.ctxs[d.Parent]
			}
			ctx, cancel := sim.WithCancel(t, parent)
			env.ctxs = append(env.ctxs, ctx)
			env.cancels = append(env.cancels, cancel)
		}
		for i, n := range p.Sems {
			env.sems = append(env.sems, sim.NewSemaphore(t, fmt.Sprintf("sem%d", i), n))
		}
		env.exec(t, p.Goroutines[0])
	}, slot
}

// exec interprets a statement list on the simulated runtime.
func (env *simEnv) exec(t *sim.T, body []Stmt) {
	for _, s := range body {
		switch s.Kind {
		case StSpawn:
			gBody := env.p.Goroutines[s.G]
			t.GoNamed(fmt.Sprintf("g%d", s.G), func(t *sim.T) {
				env.exec(t, gBody)
			})
		case StSend:
			env.chans[s.Ch].Send(t, s.Val)
		case StRecv:
			v, _ := env.chans[s.Ch].Recv(t)
			if s.Dst >= 0 {
				env.vars[s.Dst].Store(t, v)
			}
		case StClose:
			env.chans[s.Ch].Close(t)
		case StSelect:
			cases := make([]sim.Case, 0, len(s.Cases)+1)
			for _, c := range s.Cases {
				switch {
				case c.CtxDone:
					cases = append(cases, sim.OnRecv[struct{}](env.ctxs[c.Cx].Done(), nil))
				case c.Timeout:
					cases = append(cases, sim.OnRecv[int64](sim.After(t, simDur(c.Dur)), nil))
				case c.Send:
					cases = append(cases, sim.OnSend(env.chans[c.Ch], c.Val, nil))
				case c.Dst >= 0:
					dst := c.Dst
					cases = append(cases, sim.OnRecv(env.chans[c.Ch], func(v int64, ok bool) {
						env.vars[dst].Store(t, v)
					}))
				default:
					cases = append(cases, sim.OnRecv[int64](env.chans[c.Ch], nil))
				}
			}
			if s.HasDefault {
				cases = append(cases, sim.Default(nil))
			}
			sim.Select(t, cases...)
		case StLock:
			env.mus[s.Mu].Lock(t)
		case StUnlock:
			env.mus[s.Mu].Unlock(t)
		case StRLock:
			env.rws[s.Mu].RLock(t)
		case StRUnlock:
			env.rws[s.Mu].RUnlock(t)
		case StWLock:
			env.rws[s.Mu].Lock(t)
		case StWUnlock:
			env.rws[s.Mu].Unlock(t)
		case StWgAdd:
			env.wgs[s.Wg].Add(t, int(s.Val))
		case StWgDone:
			env.wgs[s.Wg].Done(t)
		case StWgWait:
			env.wgs[s.Wg].Wait(t)
		case StOnceDo:
			env.onces[s.O].Do(t, func(t *sim.T) {
				env.exec(t, s.Body)
			})
		case StVarStore:
			env.vars[s.Dst].Store(t, s.Val)
		case StVarAdd:
			v := env.vars[s.Dst].Load(t)
			env.vars[s.Dst].Store(t, v+s.Val)
		case StYield:
			t.Yield()
		case StCondWait:
			cd := env.conds[s.C]
			cd.mu.Lock(t)
			if s.ForGuard {
				for cd.ready.Load(t) == 0 {
					cd.c.Wait(t)
				}
			} else if cd.ready.Load(t) == 0 {
				cd.c.Wait(t)
			}
			cd.mu.Unlock(t)
		case StCondSignal, StCondBroadcast:
			cd := env.conds[s.C]
			cd.mu.Lock(t)
			if s.SetReady {
				cd.ready.Store(t, 1)
			}
			if s.Kind == StCondSignal {
				cd.c.Signal(t)
			} else {
				cd.c.Broadcast(t)
			}
			cd.mu.Unlock(t)
		case StTimerAfter:
			sim.After(t, simDur(s.Dur)).Recv(t)
		case StTickerLoop:
			tk := sim.NewTickerN(t, simDur(s.Dur), s.N)
			for i := 0; i < s.N; i++ {
				tk.C.Recv(t)
			}
			tk.Stop(t)
		case StCtxCancel:
			env.cancels[s.Cx](t)
		case StCtxDone:
			env.ctxs[s.Cx].Done().Recv(t)
		case StSemAcquire:
			env.sems[s.Sem].Acquire(t)
		case StSemRelease:
			env.sems[s.Sem].Release(t)
		default:
			panic(fmt.Sprintf("conformance: unknown statement kind %d", s.Kind))
		}
	}
}

// finalVars snapshots terminal var state after a run.
func (env *simEnv) finalVars() []int64 {
	out := make([]int64, len(env.vars))
	for i, v := range env.vars {
		out[i] = v.Peek()
	}
	return out
}
