//go:build race

package conformance

// raceEnabled: see budget_norace.go.
const raceEnabled = true
