package conformance

import (
	"context"
	"testing"
	"time"

	"goconcbugs/internal/harness"
)

// TestIncompleteExplorationIsNeverStrict pins the membership-oracle
// soundness rule: when the sim-side exploration truncates (Complete false),
// the check must not assert membership — Strict stays false and no
// divergence can be reported, because the host's outcome may live in the
// unexplored remainder of the schedule space.
func TestIncompleteExplorationIsNeverStrict(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 400 && found < 5; seed++ {
		full := ExploreSim(Generate(seed, ModeSafe), 600, false)
		if !full.Complete || full.Schedules < 3 {
			continue
		}
		found++
		res := CheckSeed(seed, CheckOptions{MaxSchedules: 1, HangPatience: 20 * time.Millisecond})
		if res.Space.Complete {
			t.Fatalf("seed %d: a 1-schedule budget cannot complete a %d-schedule space", seed, full.Schedules)
		}
		if res.Strict {
			t.Errorf("seed %d: Strict asserted on an incomplete exploration", seed)
		}
		if res.Divergence != nil {
			t.Errorf("seed %d: divergence reported without a complete space: %v", seed, res.Divergence)
		}
	}
	if found == 0 {
		t.Fatal("no multi-schedule seeds found to pin the rule against")
	}
}

// TestSweepCancellationReturnsPartial: a canceled conformance sweep folds
// what completed and reports Incomplete with the context's reason — "no
// divergences" from a truncated sweep must not read as conformance.
func TestSweepCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	st := Sweep(SweepOptions{Programs: 300, BaseSeed: 1, Workers: 2, Context: ctx})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled sweep took %v", elapsed)
	}
	if st.Completed != 0 {
		t.Fatalf("pre-canceled sweep completed %d checks", st.Completed)
	}
	if st.Verdict.Status != harness.Incomplete || st.Verdict.Reason != harness.ReasonCanceled {
		t.Fatalf("verdict = %v, want incomplete(canceled)", st.Verdict)
	}
}

// TestSweepDeadlinePartialFold: with a mid-sweep deadline, completed checks
// are folded (Completed in (0, Programs)) and the verdict is Incomplete.
func TestSweepDeadlinePartialFold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent partial sweep skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	st := Sweep(SweepOptions{Programs: 100000, BaseSeed: 1, Workers: 4, Context: ctx})
	if st.Completed == 0 || st.Completed >= st.Programs {
		t.Fatalf("Completed = %d of %d, want a strict partial fold", st.Completed, st.Programs)
	}
	if st.Verdict.Status != harness.Incomplete || st.Verdict.Reason != harness.ReasonDeadline {
		t.Fatalf("verdict = %v, want incomplete(deadline)", st.Verdict)
	}
}

// TestSweepRefutedWhenComplete: an uninterrupted clean sweep is Refuted —
// the positive control for the verdict taxonomy.
func TestSweepRefutedWhenComplete(t *testing.T) {
	st := Sweep(SweepOptions{Programs: 25, BaseSeed: 1, Workers: 4})
	if st.Completed != 25 {
		t.Fatalf("Completed = %d of 25 with no cancellation (errors: %v)", st.Completed, st.Errors)
	}
	if len(st.Divergences) > 0 {
		t.Fatalf("unexpected divergences: %v", st.Divergences)
	}
	if st.Verdict.Status != harness.Refuted {
		t.Fatalf("verdict = %v, want refuted", st.Verdict)
	}
}
