package conformance

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// -conformance.seed replays one generator seed verbosely; the repro command
// in every divergence report points here.
var seedFlag = flag.Int64("conformance.seed", -1,
	"replay a single conformance generator seed verbosely")

// sweepPrograms is the seed budget of the default differential sweep: 1000
// generated programs per plain `go test` run, shrunk under -short and under
// the real race detector (instrumented sim exploration is ~10× slower).
func sweepPrograms(t *testing.T) int {
	if raceEnabled || testing.Short() {
		return 150
	}
	return 1000
}

// TestDifferentialSweep is the tentpole check: every generated program's
// host-runtime outcome must be a member of the simulator's schedule space.
func TestDifferentialSweep(t *testing.T) {
	st := Sweep(SweepOptions{Programs: sweepPrograms(t), BaseSeed: 1})
	t.Logf("programs=%d strict=%d schedules=%d hostSkipped=%d hostKinds=%v allHungConfirmed=%d",
		st.Programs, st.Strict, st.Schedules, st.HostSkipped, st.HostKinds, st.AllHungConfirmed)
	if st.StepLimited > 0 {
		t.Errorf("%d schedules hit the sim step budget; IR programs are loop-free, so the harness is broken", st.StepLimited)
	}
	// The sweep must be doing real work: most explorations complete (strict
	// membership), and every outcome kind shows up on the host. The kind
	// coverage assertion belongs to the uninstrumented lane: under -race
	// the close-unordered programs (where most panics live) skip their
	// host half by design.
	if st.Strict < st.Programs/2 {
		t.Errorf("only %d/%d programs explored completely; generator sizes or budget drifted", st.Strict, st.Programs)
	}
	if !raceEnabled {
		if st.HostSkipped != 0 {
			t.Errorf("%d host runs skipped outside a -race build", st.HostSkipped)
		}
		for _, kind := range []string{KindDone, KindHung, KindPanic} {
			if st.HostKinds[kind] == 0 {
				t.Errorf("no host run terminated as %q; the program family no longer covers it", kind)
			}
		}
	}
	if st.AllHungConfirmed == 0 {
		t.Error("no must-deadlock program confirmed hung on the host")
	}
	if st.SignalGuaranteed == 0 {
		t.Error("no signal-guaranteed cond program generated; the liveness oracle never ran")
	}
	// Every statement kind must appear somewhere in the sweep; with the
	// -short/-race budget (150 programs) the rarest kinds can legitimately
	// miss, so full-IR coverage is the default lane's assertion.
	if !raceEnabled && !testing.Short() {
		for _, k := range AllStmtKinds {
			if st.KindCoverage[k] == 0 {
				t.Errorf("no generated program contained %v; the sweep no longer exercises it", k)
			}
		}
	}
	for _, d := range st.Divergences {
		t.Errorf("%v", d)
	}
	writeDivergenceDelta(t, st.Divergences)
}

// writeDivergenceDelta materializes each divergence as files (report,
// program, emitted standalone source) under $CONFORMANCE_DELTA_DIR so CI can
// upload them as an artifact — the "regression corpus delta" a maintainer
// reviews and, once understood, pins into testdata/conformance/.
func writeDivergenceDelta(t *testing.T, divs []*Divergence) {
	dir := os.Getenv("CONFORMANCE_DELTA_DIR")
	if dir == "" || len(divs) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Errorf("delta dir: %v", err)
		return
	}
	for _, d := range divs {
		base := filepath.Join(dir, fmt.Sprintf("seed-%d", d.Seed))
		if err := os.WriteFile(base+".txt", []byte(d.String()+"\n"), 0o644); err != nil {
			t.Errorf("delta write: %v", err)
		}
		if err := os.WriteFile(base+".go.txt", []byte(EmitGo(d.Program)), 0o644); err != nil {
			t.Errorf("delta write: %v", err)
		}
	}
	t.Logf("wrote %d divergence(s) to %s", len(divs), dir)
}

// TestRegressionCorpus replays the pinned corpus: seeds whose programs
// historically exercised an interesting corner (each panic class, a
// must-deadlock program, a multi-outcome program, budget-bounded weak mode,
// and always-racy generations). The corpus keeps those behaviors in every
// future run even if generator tuning moves them away from small seeds.
func TestRegressionCorpus(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "conformance", "seeds.txt"))
	if err != nil {
		t.Fatalf("pinned corpus: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("corpus line %q: want `safe|racy <seed> [comment]`", line)
		}
		seed, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("corpus line %q: %v", line, err)
		}
		n++
		switch fields[0] {
		case "safe":
			res := CheckSeed(seed, CheckOptions{})
			if res.Divergence != nil {
				t.Errorf("pinned seed %d: %v", seed, res.Divergence)
			}
		case "racy":
			p := Generate(seed, ModeRacy)
			sp := ExploreSim(p, 600, true)
			if sp.RacyVarSchedules <= 0 {
				t.Errorf("pinned racy seed %d: sim race detector found no schedule racing on the injected var\n%s", seed, p)
			}
		default:
			t.Fatalf("corpus line %q: unknown mode %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("pinned corpus is empty")
	}
}

// TestReplaySeed is the repro entry point named by divergence reports: with
// -conformance.seed it re-runs one seed verbosely (program, emitted source,
// sim schedule space, host outcome); without it, it smoke-replays a few
// fixed seeds so the path stays exercised.
func TestReplaySeed(t *testing.T) {
	seeds := []int64{1, 4, 6}
	verbose := *seedFlag >= 0
	if verbose {
		seeds = []int64{*seedFlag}
	}
	for _, seed := range seeds {
		res := CheckSeed(seed, CheckOptions{})
		if verbose {
			t.Logf("generated program:\n%s", res.Program)
			t.Logf("standalone source:\n%s", EmitGo(res.Program))
			t.Logf("sim schedule space: %s", res.Space.Summary())
			t.Logf("host outcome: %v (strict=%v)", res.Host, res.Strict)
		}
		if res.Divergence != nil {
			t.Errorf("%v", res.Divergence)
		}
	}
}

// TestGenerateDeterministic: equal (seed, mode) pairs must yield identical
// programs — seed-only reproduction is the whole repro story.
func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 200; seed++ {
		for _, mode := range []Mode{ModeSafe, ModeRacy} {
			a, b := Generate(seed, mode), Generate(seed, mode)
			if a.String() != b.String() {
				t.Fatalf("seed %d mode %d: two generations differ:\n%s\nvs\n%s", seed, mode, a, b)
			}
		}
	}
}

// TestExploreSimDeterministic: the sim side of the oracle must itself be
// reproducible — same program, same budget, same signature multiset.
func TestExploreSimDeterministic(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 30; seed++ {
		p := Generate(seed, ModeSafe)
		a, b := ExploreSim(p, 300, false), ExploreSim(p, 300, false)
		if a.Summary() != b.Summary() {
			t.Fatalf("seed %d: two explorations differ: %s vs %s", seed, a.Summary(), b.Summary())
		}
	}
}

// TestPanicClass pins the normalization of both backends' panic texts.
func TestPanicClass(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"send on closed channel c1":         "send-on-closed", // sim, with object name
		"send on closed channel":            "send-on-closed", // real runtime
		"close of closed channel c0":        "close-of-closed",
		"close of nil channel":              "close-of-nil",
		"sync: negative WaitGroup counter":  "negative-waitgroup",
		"negative WaitGroup counter on wg0": "negative-waitgroup",
		"concurrent map writes":             "concurrent-map",
		"some future panic nobody has seen": "unrecognized: some future panic nobody has seen",
	}
	for msg, want := range cases {
		if got := PanicClass(msg); got != want {
			t.Errorf("PanicClass(%q) = %q, want %q", msg, got, want)
		}
	}
}

// TestHostPatiencePolicy pins the watchdog policy: a must-finish program
// gets the long patience, a may-hang program the short one. (Indirect check
// through CheckSeed timing would be flaky; assert the classification that
// drives it instead.)
func TestHostPatiencePolicy(t *testing.T) {
	t.Parallel()
	mustFinish := Generate(19, ModeSafe) // pinned: complete, never hangs
	sp := ExploreSim(mustFinish, 600, false)
	if !sp.Complete || sp.AllowsHang() {
		t.Fatalf("seed 19 drifted: %s", sp.Summary())
	}
	mayHang := Generate(1, ModeSafe) // pinned: every schedule hangs
	sp = ExploreSim(mayHang, 600, false)
	if !sp.Complete || !sp.AllHung() {
		t.Fatalf("seed 1 drifted: %s", sp.Summary())
	}
	// And the short-patience path must classify a genuinely hung program
	// within its budget.
	if raceEnabled && closeUnordered(mayHang) {
		t.Skip("seed 1 closes a channel concurrently with a send; host half is skipped under -race")
	}
	start := time.Now()
	sig := RunHost(mayHang, 50*time.Millisecond)
	if sig.Kind != KindHung {
		t.Fatalf("must-deadlock program classified %v on host", sig)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("short-patience classification took %v", d)
	}
}
