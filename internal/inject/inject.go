// Package inject is the deterministic fault-injection layer: a seeded
// sim.Injector that perturbs instrumented primitive operations and records
// every decision in a FaultPlan, so any failing run replays bit-identically
// from (schedule seed, fault seed) — or from the plan alone.
//
// The studied bugs manifest under rare timing and failure conditions:
// "Sometimes, we needed to run a buggy program a lot of times or manually
// add sleep" (Section 4 of the paper); delay and fault injection is how
// dynamic tools flush these bugs out in practice. The injector draws a gap
// (number of consultations to skip) from its own seeded PRNG, fires one
// fault when the gap runs out, and repeats until its budget is spent. Its
// randomness is independent of the run's schedule seed, so the same fault
// seed perturbs different schedules the same way.
//
// Determinism: Consult is a pure function of the injector's state and the
// consultation sequence, and the simulated run presents an identical
// consultation sequence for an identical (config, program, prior faults)
// history. A fresh injector per run with seed f(baseSeed, run) therefore
// makes the whole sweep a pure function of its options, for any worker
// count.
//
// Soundness classes (see sim's fault documentation): the default mode
// injects only FaultYield — a pure schedule perturbation under which a
// program correct on every schedule stays correct. Aggressive mode adds
// early timeouts, spurious cond wakeups, goroutine kills, injected panics,
// and channel closes; those change the program, and a correct program may
// legitimately fail under them.
package inject

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strings"

	"goconcbugs/internal/sim"
)

// Options configures a fresh injector.
type Options struct {
	// Seed drives the injector's own PRNG (the -faultseed flag). Equal
	// options give identical injectors.
	Seed int64
	// Budget bounds the number of faults injected in one run (the -faults
	// flag); 0 or negative means DefaultBudget.
	Budget int
	// Aggressive enables the program-changing actions (timeout, wake,
	// kill, panic, close) in addition to benign yields.
	Aggressive bool
	// MeanGap is the mean number of consultations between injected faults
	// (0 = DefaultMeanGap). Smaller gaps front-load the faults.
	MeanGap int
}

// Defaults applied by New when Options leaves the fields zero.
const (
	DefaultBudget  = 3
	DefaultMeanGap = 7
)

// Fault is one recorded injection: where in the consultation sequence it
// fired, and what it did.
type Fault struct {
	// Index is the consultation index (the Nth Consult call of the run).
	Index int `json:"i"`
	// Site and Action identify the perturbed operation and the
	// perturbation.
	Site   sim.FaultSite   `json:"site"`
	Action sim.FaultAction `json:"action"`
	// G is the acting goroutine and Obj the operated object's report
	// name, recorded for report rendering; replay keys on Index alone.
	G   int    `json:"g"`
	Obj string `json:"obj,omitempty"`
}

// String renders one fault for reports.
func (f Fault) String() string {
	return fmt.Sprintf("#%d %s@%s g%d %s", f.Index, f.Action, f.Site, f.G, f.Obj)
}

// Plan is the full record of one run's injections, sufficient to replay
// them exactly (Replay) or to re-derive them from scratch (New with the
// same options against the same run).
type Plan struct {
	Seed       int64   `json:"seed"`
	Budget     int     `json:"budget"`
	Aggressive bool    `json:"aggressive,omitempty"`
	Faults     []Fault `json:"faults"`
}

// String renders the plan on one line.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faultseed %d budget %d", p.Seed, p.Budget)
	if p.Aggressive {
		b.WriteString(" aggressive")
	}
	for _, f := range p.Faults {
		b.WriteString(" [")
		b.WriteString(f.String())
		b.WriteString("]")
	}
	return b.String()
}

// Encode serializes the plan to JSON.
func (p *Plan) Encode() ([]byte, error) { return json.Marshal(p) }

// DecodePlan parses a plan produced by Encode.
func DecodePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("inject: decoding plan: %w", err)
	}
	return &p, nil
}

// Injector is the standard sim.Injector. It is stateful and single-run:
// create a fresh one per sim.Run (sweeps use one per seed).
type Injector struct {
	rng        *rand.Rand
	budget     int
	aggressive bool
	meanGap    int
	gap        int
	consult    int
	plan       Plan
	// replay maps consultation index to the recorded action when the
	// injector was built from a plan; nil in generation mode.
	replay map[int]sim.FaultAction
}

// New creates a seeded generating injector.
func New(opts Options) *Injector {
	if opts.Budget <= 0 {
		opts.Budget = DefaultBudget
	}
	if opts.MeanGap <= 0 {
		opts.MeanGap = DefaultMeanGap
	}
	in := &Injector{
		rng:        rand.New(rand.NewPCG(uint64(opts.Seed), 0xda3e39cb94b95bdb)),
		budget:     opts.Budget,
		aggressive: opts.Aggressive,
		meanGap:    opts.MeanGap,
		plan:       Plan{Seed: opts.Seed, Budget: opts.Budget, Aggressive: opts.Aggressive},
	}
	in.gap = in.drawGap()
	return in
}

// Replay creates an injector that re-applies a recorded plan: the fault at
// consultation index i fires again at consultation index i. Against the
// same program and schedule seed the run is bit-identical to the recorded
// one.
func Replay(p *Plan) *Injector {
	in := &Injector{
		plan:   Plan{Seed: p.Seed, Budget: p.Budget, Aggressive: p.Aggressive},
		replay: make(map[int]sim.FaultAction, len(p.Faults)),
	}
	for _, f := range p.Faults {
		in.replay[f.Index] = f.Action
	}
	return in
}

// ForRun derives the per-run injector of a sweep: run i perturbs with seed
// opts.Seed+i, so the sweep's outcome is a pure function of its options for
// any worker count.
func ForRun(opts Options, run int) *Injector {
	opts.Seed += int64(run)
	return New(opts)
}

// Plan returns the injections recorded so far (aliased, not copied; read it
// after the run completes).
func (in *Injector) Plan() *Plan { return &in.plan }

// Consult implements sim.Injector.
func (in *Injector) Consult(site sim.FaultSite, g int, obj string) sim.FaultAction {
	idx := in.consult
	in.consult++
	if in.replay != nil {
		act, ok := in.replay[idx]
		if !ok {
			return sim.FaultNone
		}
		in.record(idx, site, act, g, obj)
		return act
	}
	if in.budget <= 0 {
		return sim.FaultNone
	}
	if in.gap > 0 {
		in.gap--
		return sim.FaultNone
	}
	in.gap = in.drawGap()
	act := in.pick(site, g)
	if act == sim.FaultNone {
		return sim.FaultNone
	}
	in.budget--
	in.record(idx, site, act, g, obj)
	return act
}

func (in *Injector) record(idx int, site sim.FaultSite, act sim.FaultAction, g int, obj string) {
	in.plan.Faults = append(in.plan.Faults, Fault{
		Index: idx, Site: site, Action: act, G: g, Obj: obj,
	})
}

// drawGap draws the number of consultations to skip before the next fault,
// uniform on [1, 2*meanGap-1] (mean meanGap).
func (in *Injector) drawGap() int {
	return 1 + in.rng.IntN(2*in.meanGap-1)
}

// pick chooses a site-appropriate action. Benign mode has exactly one
// candidate (yield); aggressive mode draws uniformly from the actions the
// site supports. The main goroutine is never killed.
func (in *Injector) pick(site sim.FaultSite, g int) sim.FaultAction {
	if !in.aggressive {
		return sim.FaultYield
	}
	cands := []sim.FaultAction{sim.FaultYield, sim.FaultTimeout, sim.FaultPanic}
	if g != 1 {
		cands = append(cands, sim.FaultKill)
	}
	switch site {
	case sim.SiteCond:
		cands = append(cands, sim.FaultWake)
	case sim.SiteChanSend, sim.SiteChanRecv:
		cands = append(cands, sim.FaultClose)
	}
	return cands[in.rng.IntN(len(cands))]
}
