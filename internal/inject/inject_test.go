package inject_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/sim"
)

// drive feeds the injector a synthetic consultation sequence cycling through
// every site, and returns the actions it chose.
func drive(in *inject.Injector, n int) []sim.FaultAction {
	out := make([]sim.FaultAction, n)
	for i := 0; i < n; i++ {
		site := sim.FaultSite(i % int(sim.NumFaultSites))
		g := 1 + i%3
		out[i] = in.Consult(site, g, fmt.Sprintf("obj%d", i%4))
	}
	return out
}

func TestNewIsDeterministic(t *testing.T) {
	opts := inject.Options{Seed: 42, Budget: 5, Aggressive: true}
	a := drive(inject.New(opts), 200)
	b := drive(inject.New(opts), 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two injectors from identical options chose different actions")
	}
	pa, _ := inject.New(opts).Plan().Encode()
	inj := inject.New(opts)
	drive(inj, 200)
	pb, _ := inj.Plan().Encode()
	if string(pa) == string(pb) {
		t.Fatal("plan should grow as consultations happen")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := drive(inject.New(inject.Options{Seed: 1}), 300)
	b := drive(inject.New(inject.Options{Seed: 2}), 300)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 produced identical action sequences")
	}
}

func TestBudgetBoundsFaults(t *testing.T) {
	for _, budget := range []int{1, 2, 5} {
		in := inject.New(inject.Options{Seed: 7, Budget: budget})
		acts := drive(in, 1000)
		fired := 0
		for _, a := range acts {
			if a != sim.FaultNone {
				fired++
			}
		}
		if fired != budget {
			t.Errorf("budget %d: fired %d faults over 1000 consultations", budget, fired)
		}
		if len(in.Plan().Faults) != fired {
			t.Errorf("plan records %d faults, injector fired %d", len(in.Plan().Faults), fired)
		}
	}
}

func TestBenignModeOnlyYields(t *testing.T) {
	in := inject.New(inject.Options{Seed: 3, Budget: 50, MeanGap: 2})
	for i, a := range drive(in, 500) {
		if a != sim.FaultNone && a != sim.FaultYield {
			t.Fatalf("consultation %d: benign mode chose %v", i, a)
		}
	}
}

func TestAggressiveActionsAreSiteAppropriate(t *testing.T) {
	in := inject.New(inject.Options{Seed: 11, Budget: 500, MeanGap: 1, Aggressive: true})
	for i := 0; i < 3000; i++ {
		site := sim.FaultSite(i % int(sim.NumFaultSites))
		g := 1 + i%3
		act := in.Consult(site, g, "obj")
		switch act {
		case sim.FaultWake:
			if site != sim.SiteCond {
				t.Fatalf("FaultWake at %v", site)
			}
		case sim.FaultClose:
			if site != sim.SiteChanSend && site != sim.SiteChanRecv {
				t.Fatalf("FaultClose at %v", site)
			}
		case sim.FaultKill:
			if g == 1 {
				t.Fatal("FaultKill aimed at the main goroutine")
			}
		}
	}
}

func TestReplayReproducesPlan(t *testing.T) {
	opts := inject.Options{Seed: 99, Budget: 6, Aggressive: true, MeanGap: 3}
	gen := inject.New(opts)
	want := drive(gen, 400)
	data, err := gen.Plan().Encode()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := inject.DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := inject.Replay(plan)
	got := drive(rep, 400)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replayed injector diverged from the generating one")
	}
	if !reflect.DeepEqual(rep.Plan().Faults, gen.Plan().Faults) {
		t.Fatalf("replay re-recorded a different plan:\n%v\n%v", rep.Plan(), gen.Plan())
	}
}

func TestForRunShiftsSeed(t *testing.T) {
	opts := inject.Options{Seed: 10, Budget: 4}
	a := drive(inject.ForRun(opts, 5), 300)
	b := drive(inject.New(inject.Options{Seed: 15, Budget: 4}), 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ForRun(opts, 5) differs from New with Seed+5")
	}
	if opts.Seed != 10 {
		t.Fatal("ForRun mutated the caller's options")
	}
}

func TestPlanString(t *testing.T) {
	in := inject.New(inject.Options{Seed: 4, Budget: 2, MeanGap: 1})
	drive(in, 50)
	s := in.Plan().String()
	if !strings.Contains(s, "faultseed 4") || !strings.Contains(s, "budget 2") {
		t.Fatalf("plan string missing header: %q", s)
	}
	if !strings.Contains(s, "yield@") {
		t.Fatalf("plan string missing recorded faults: %q", s)
	}
}

// traceSink records the full event stream as strings — the bit-identity
// witness for the replay fuzz target.
type traceSink struct{ lines []string }

func (s *traceSink) Kinds() []event.Kind { return event.AllKinds() }
func (s *traceSink) Event(ev *event.Event) {
	s.lines = append(s.lines, fmt.Sprintf("%d %d %v %s %s %d %d",
		ev.Step, ev.G, ev.Kind, ev.Obj, ev.Detail, ev.Counter, ev.Aux))
}

// fuzzProgram is a small program touching channels, mutexes, conds, selects
// and timers, so injected faults land on many site kinds. It is
// deliberately bug-free on uninjected schedules; aggressive injection may
// still crash or deadlock it, which is fine — the property under test is
// bit-identical replay, not success.
func fuzzProgram(tt *sim.T) {
	mu := sim.NewMutex(tt, "mu")
	cond := sim.NewCond(tt, mu, "cond")
	ch := sim.NewChan[int](tt, 1)
	done := sim.NewChan[int](tt, 0)
	ready := false
	tt.Go(func(ct *sim.T) {
		mu.Lock(ct)
		ready = true
		cond.Signal(ct)
		mu.Unlock(ct)
		ch.Send(ct, 1)
		done.Send(ct, 1)
	})
	mu.Lock(tt)
	for !ready {
		cond.Wait(tt)
	}
	mu.Unlock(tt)
	ch.Recv(tt)
	done.Recv(tt)
}

// runOnce executes fuzzProgram under the given schedule seed and injector
// and returns a stable digest of everything observable: outcome, steps,
// panics, leaks, check failures, the full event trace, and the fault plan.
func runOnce(simSeed int64, in *inject.Injector) string {
	sink := &traceSink{}
	res := sim.Run(sim.Config{Seed: simSeed, Sinks: []event.Sink{sink}, Injector: in}, fuzzProgram)
	var b strings.Builder
	fmt.Fprintf(&b, "outcome=%v steps=%d leaked=%d checks=%v panics=%v\n",
		res.Outcome, res.Steps, len(res.Leaked), res.CheckFailures, res.Panics)
	for _, l := range sink.lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	b.WriteString(in.Plan().String())
	return b.String()
}

// FuzzFaultPlanReplay is the determinism contract of the fault layer: for
// any (schedule seed, fault seed, budget, gap, aggressiveness),
//
//  1. generating twice from the same options is bit-identical, and
//  2. replaying the recorded FaultPlan is bit-identical to the generating
//     run — verdict, full event trace, and re-recorded plan.
//
// This is what makes "replay: godetect ... -seed S -faultseed F" an exact
// reproduction of a sweep hit for any worker count.
func FuzzFaultPlanReplay(f *testing.F) {
	f.Add(int64(1), int64(1), int64(3), int64(7), false)
	f.Add(int64(2), int64(9), int64(5), int64(2), true)
	f.Add(int64(77), int64(0), int64(1), int64(1), true)
	f.Add(int64(-4), int64(-11), int64(8), int64(4), false)
	f.Fuzz(func(t *testing.T, simSeed, faultSeed, budget, meanGap int64, aggressive bool) {
		opts := inject.Options{
			Seed:       faultSeed,
			Budget:     int(budget%16) + 1,
			MeanGap:    int(meanGap%16) + 1,
			Aggressive: aggressive,
		}
		if opts.Budget < 1 {
			opts.Budget = 1
		}
		if opts.MeanGap < 1 {
			opts.MeanGap = 1
		}
		gen := inject.New(opts)
		first := runOnce(simSeed, gen)
		second := runOnce(simSeed, inject.New(opts))
		if first != second {
			t.Fatalf("two generating runs from identical options diverged:\n--- first\n%s\n--- second\n%s", first, second)
		}
		replayed := runOnce(simSeed, inject.Replay(gen.Plan()))
		if first != replayed {
			t.Fatalf("replay diverged from the recorded run:\n--- recorded\n%s\n--- replayed\n%s", first, replayed)
		}
	})
}
