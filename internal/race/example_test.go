package race_test

import (
	"fmt"

	"goconcbugs/internal/event"

	"goconcbugs/internal/race"
	"goconcbugs/internal/sim"
)

// Example attaches the happens-before detector to a run containing the
// Figure 8 race: children read the loop variable the parent keeps writing.
func Example() {
	det := race.New(0) // four shadow words, like Go's -race
	sim.Run(sim.Config{Seed: 1, Sinks: []event.Sink{det}}, func(t *sim.T) {
		i := sim.NewVar[int](t, "i")
		for k := 17; k <= 21; k++ {
			i.Store(t, k)
			t.Go(func(ct *sim.T) { _ = i.Load(ct) })
		}
		t.Sleep(50)
	})
	fmt.Println("racy variables:", det.RacyVars())
	// Output:
	// racy variables: [i]
}

// Example_synchronized shows the detector staying silent when a mutex
// orders the accesses — "the detector reports no false positives".
func Example_synchronized() {
	det := race.New(0)
	sim.Run(sim.Config{Seed: 1, Sinks: []event.Sink{det}}, func(t *sim.T) {
		x := sim.NewVar[int](t, "x")
		mu := sim.NewMutex(t, "mu")
		wg := sim.NewWaitGroup(t, "wg")
		wg.Add(t, 2)
		for i := 0; i < 2; i++ {
			t.Go(func(ct *sim.T) {
				mu.Lock(ct)
				x.Store(ct, x.Load(ct)+1)
				mu.Unlock(ct)
				wg.Done(ct)
			})
		}
		wg.Wait(t)
	})
	fmt.Println("races:", len(det.Reports()))
	// Output:
	// races: 0
}
