package race

import (
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/sim"
)

// runWith runs prog with a fresh detector attached and returns it.
func runWith(seed int64, shadow int, prog sim.Program) (*Detector, *sim.Result) {
	d := New(shadow)
	res := sim.Run(sim.Config{Seed: seed, Sinks: []event.Sink{d}}, prog)
	return d, res
}

func TestDetectsWriteWriteRace(t *testing.T) {
	d, _ := runWith(1, 0, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		tt.Go(func(ct *sim.T) { x.Store(ct, 1) })
		x.Store(tt, 2)
		tt.Sleep(10)
	})
	if len(d.Reports()) == 0 {
		t.Fatalf("expected a write/write race on x")
	}
}

func TestDetectsReadWriteRace(t *testing.T) {
	d, _ := runWith(1, 0, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		tt.Go(func(ct *sim.T) { _ = x.Load(ct) })
		x.Store(tt, 2)
		tt.Sleep(10)
	})
	if len(d.Reports()) == 0 {
		t.Fatalf("expected a read/write race on x")
	}
}

func TestReadReadIsNotARace(t *testing.T) {
	d, _ := runWith(1, 0, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		tt.Go(func(ct *sim.T) { _ = x.Load(ct) })
		_ = x.Load(tt)
		tt.Sleep(10)
	})
	if len(d.Reports()) != 0 {
		t.Fatalf("read/read flagged: %v", d.Reports())
	}
}

func TestMutexOrdersAccesses(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d, _ := runWith(seed, 0, func(tt *sim.T) {
			x := sim.NewVar[int](tt, "x")
			mu := sim.NewMutex(tt, "mu")
			wg := sim.NewWaitGroup(tt, "wg")
			wg.Add(tt, 2)
			for i := 0; i < 2; i++ {
				tt.Go(func(ct *sim.T) {
					mu.Lock(ct)
					x.Store(ct, x.Load(ct)+1)
					mu.Unlock(ct)
					wg.Done(ct)
				})
			}
			wg.Wait(tt)
		})
		if len(d.Reports()) != 0 {
			t.Fatalf("seed %d: mutex-protected accesses flagged: %v", seed, d.Reports())
		}
	}
}

func TestChannelOrdersAccesses(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d, _ := runWith(seed, 0, func(tt *sim.T) {
			x := sim.NewVar[int](tt, "x")
			ch := sim.NewChan[struct{}](tt, 0)
			tt.Go(func(ct *sim.T) {
				x.Store(ct, 1)
				ch.Send(ct, struct{}{})
			})
			ch.Recv(tt)
			_ = x.Load(tt)
		})
		if len(d.Reports()) != 0 {
			t.Fatalf("seed %d: channel-ordered accesses flagged: %v", seed, d.Reports())
		}
	}
}

func TestWaitGroupOrdersAccesses(t *testing.T) {
	d, _ := runWith(7, 0, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		wg := sim.NewWaitGroup(tt, "wg")
		wg.Add(tt, 1)
		tt.Go(func(ct *sim.T) {
			x.Store(ct, 1)
			wg.Done(ct)
		})
		wg.Wait(tt)
		_ = x.Load(tt)
	})
	if len(d.Reports()) != 0 {
		t.Fatalf("waitgroup-ordered accesses flagged: %v", d.Reports())
	}
}

func TestAtomicIsNotARaceAndCarriesHB(t *testing.T) {
	d, _ := runWith(3, 0, func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		flag := sim.NewAtomicInt64(tt, "flag")
		tt.Go(func(ct *sim.T) {
			x.Store(ct, 42)
			flag.Store(ct, 1)
		})
		for flag.Load(tt) == 0 {
			tt.Yield()
		}
		_ = x.Load(tt)
	})
	if len(d.Reports()) != 0 {
		t.Fatalf("atomic-published accesses flagged: %v", d.Reports())
	}
}

// TestShadowWordEviction reproduces the paper's third Table 12 failure mode:
// a bounded shadow history forgets an old concurrent access.
func TestShadowWordEviction(t *testing.T) {
	prog := func(tt *sim.T) {
		x := sim.NewVar[int](tt, "x")
		g1done := sim.NewChan[struct{}](tt, 0)
		// g2: an early read, never synchronized with anyone.
		tt.GoNamed("g2", func(ct *sim.T) { _ = x.Load(ct) })
		// g1: four later reads (no race with g2's read), then a sync
		// edge to g3.
		tt.GoNamed("g1", func(ct *sim.T) {
			ct.Sleep(10)
			for i := 0; i < 4; i++ {
				_ = x.Load(ct)
			}
			g1done.Send(ct, struct{}{})
		})
		// g3: a write that races with g2's read but is ordered after
		// g1's reads.
		tt.GoNamed("g3", func(ct *sim.T) {
			g1done.Recv(ct)
			x.Store(ct, 1)
		})
		tt.Sleep(100)
	}
	bounded, _ := runWith(5, 4, prog)
	unbounded, _ := runWith(5, -1, prog)
	if len(bounded.Reports()) != 0 {
		t.Fatalf("4 shadow words should have evicted g2's read: %v", bounded.Reports())
	}
	if len(unbounded.Reports()) == 0 {
		t.Fatalf("unbounded history should catch the g2/g3 race")
	}
}

func TestAnonymousFunctionLoopRace(t *testing.T) {
	// The Figure 8 shape: children read a loop variable the parent keeps
	// writing.
	d, _ := runWith(11, 0, func(tt *sim.T) {
		i := sim.NewVar[int](tt, "i")
		for k := 17; k <= 21; k++ {
			i.Store(tt, k)
			tt.Go(func(ct *sim.T) { _ = i.Load(ct) })
		}
		tt.Sleep(50)
	})
	if len(d.Reports()) == 0 {
		t.Fatalf("expected the loop-variable race")
	}
}

func TestNoFalsePositiveOnDisjointVars(t *testing.T) {
	d, _ := runWith(2, 0, func(tt *sim.T) {
		a := sim.NewVar[int](tt, "a")
		b := sim.NewVar[int](tt, "b")
		tt.Go(func(ct *sim.T) { a.Store(ct, 1) })
		b.Store(tt, 2)
		tt.Sleep(10)
	})
	if len(d.Reports()) != 0 {
		t.Fatalf("disjoint variables flagged: %v", d.Reports())
	}
}
