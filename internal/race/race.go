// Package race implements a happens-before data race detector in the style
// of Go's built-in detector.
//
// Section 6.3 of the paper: "Go provides a data race detector which uses the
// same happen-before algorithm as ThreadSanitizer ... the race detector
// creates up to four shadow words for every memory object to store
// historical accesses of the object. It compares every new access with the
// stored shadow word values to detect possible races."
//
// This implementation attaches to the simulated runtime as an event sink
// (sim.Config.Sinks) subscribed to the four memory-access kinds. Every
// instrumented access is summarized as an epoch
// (goroutine @ clock, see package hb) and stored in a bounded ring of shadow
// words per variable. A new access races with a stored one when they touch
// the same variable, at least one is a write, they come from different
// goroutines, and neither happens-before the other. The bounded shadow ring
// reproduces the paper's third failure mode: "with only four shadow words
// for each memory object, the detector cannot keep a long history and may
// miss data races."
package race

import (
	"fmt"
	"sort"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
	"goconcbugs/internal/sim"
)

// DefaultShadowWords matches the Go race detector's per-object budget the
// paper describes.
const DefaultShadowWords = 4

// Report describes one detected data race.
type Report struct {
	Var        string
	FirstG     int
	FirstEpoch hb.Epoch
	FirstWrite bool
	SecondG    int
	SecondName string
	SecondWrit bool
	Step       int64
}

// String renders the report like a condensed `-race` diagnostic.
func (r Report) String() string {
	kind := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("DATA RACE on %s: %s by g%d (epoch %s) vs %s by g%d(%s) at step %d",
		r.Var, kind(r.FirstWrite), r.FirstG, r.FirstEpoch,
		kind(r.SecondWrit), r.SecondG, r.SecondName, r.Step)
}

// shadowWord is one remembered access.
type shadowWord struct {
	epoch hb.Epoch
	write bool
}

type shadowState struct {
	words []shadowWord // ring, newest last
	// lastG/lastC cache the epoch of the most recently stored access.
	// When the same goroutine accesses again at the same clock value, no
	// synchronization happened in between, so the scan below would reach
	// exactly the same verdict as last time (FastTrack's same-epoch fast
	// path) and can be skipped.
	lastG     int
	lastC     uint64
	lastWrite bool
}

// pairKey dedups reports by variable and unordered goroutine pair without
// allocating a string per access.
type pairKey struct {
	varID    int
	gLo, gHi int
}

// Detector observes instrumented accesses and accumulates race reports. It
// implements sim.MemoryObserver. A Detector is single-run, single-threaded
// state: create one per sim.Run.
type Detector struct {
	shadowWords int
	vars        map[int]*shadowState
	varNames    map[int]string
	reports     []Report
	reported    map[pairKey]bool
}

// New creates a detector with the given shadow-word budget per variable
// (0 means DefaultShadowWords; negative means unbounded, the ablation
// configuration).
func New(shadowWords int) *Detector {
	if shadowWords == 0 {
		shadowWords = DefaultShadowWords
	}
	return &Detector{
		shadowWords: shadowWords,
		vars:        make(map[int]*shadowState),
		varNames:    make(map[int]string),
		reported:    make(map[pairKey]bool),
	}
}

var (
	_ sim.MemoryObserver = (*Detector)(nil)
	_ event.Sink         = (*Detector)(nil)
)

// Kinds implements event.Sink: the four memory-access kinds (plain Vars and
// MapVars), nothing else.
func (d *Detector) Kinds() []event.Kind {
	return []event.Kind{event.MemRead, event.MemWrite, event.MapRead, event.MapWrite}
}

// Event implements event.Sink.
func (d *Detector) Event(ev *event.Event) {
	d.Access(sim.MemAccess{
		Var: ev.Var, G: ev.G, GName: ev.GName, VC: ev.VC,
		Write: ev.Kind == event.MemWrite || ev.Kind == event.MapWrite,
		Step:  ev.Step, Time: ev.Time,
	})
}

// Access is the FastTrack-style check of the new access against every stored
// shadow word. It remains exported as the sim.MemoryObserver form of Event
// for tests and harnesses that synthesize accesses directly.
func (d *Detector) Access(ac sim.MemAccess) {
	st := d.vars[ac.Var.ID]
	if st == nil {
		st = &shadowState{}
		d.vars[ac.Var.ID] = st
		d.varNames[ac.Var.ID] = ac.Var.Name
	}
	c := ac.VC.Get(ac.G)
	// Same-epoch fast path: if the previous stored access came from this
	// goroutine at this clock value, no synchronization intervened, so the
	// scan below cannot produce a new report — vector clocks only grow
	// (ordered pairs stay ordered), the only word stored since is our own
	// (program order), and any racing pair was reported and deduped on the
	// previous scan. The one asymmetric case is a write following a read:
	// a write also races with stored reads the earlier read-check skipped,
	// so that combination still takes the scan.
	if ac.G == st.lastG && c == st.lastC && (st.lastWrite || !ac.Write) {
		st.store(shadowWord{epoch: hb.Epoch{G: ac.G, C: c}, write: ac.Write}, d.shadowWords)
		return
	}
	for _, w := range st.words {
		if w.epoch.G == ac.G {
			continue // same goroutine: program order
		}
		if !w.write && !ac.Write {
			continue // read/read never races
		}
		if ac.VC.HappensBefore(w.epoch) {
			continue // ordered by synchronization
		}
		key := pairKey{varID: ac.Var.ID, gLo: min(w.epoch.G, ac.G), gHi: max(w.epoch.G, ac.G)}
		if d.reported[key] {
			continue
		}
		d.reported[key] = true
		d.reports = append(d.reports, Report{
			Var:        ac.Var.Name,
			FirstG:     w.epoch.G,
			FirstEpoch: w.epoch,
			FirstWrite: w.write,
			SecondG:    ac.G,
			SecondName: ac.GName,
			SecondWrit: ac.Write,
			Step:       ac.Step,
		})
	}
	st.store(shadowWord{epoch: hb.Epoch{G: ac.G, C: c}, write: ac.Write}, d.shadowWords)
}

// store records a new access, evicting the oldest shadow word when the
// budget is exhausted (the detector's bounded history). The fast path skips
// the scan but never the store, so the ring's contents — and therefore which
// races the bounded history can still catch — are identical either way.
func (st *shadowState) store(word shadowWord, budget int) {
	st.lastG, st.lastC, st.lastWrite = word.epoch.G, word.epoch.C, word.write
	if budget > 0 && len(st.words) >= budget {
		copy(st.words, st.words[1:])
		st.words[len(st.words)-1] = word
		return
	}
	st.words = append(st.words, word)
}

// Reports returns the detected races in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// RacyVars returns the distinct variable names involved in races, sorted.
func (d *Detector) RacyVars() []string {
	seen := map[string]bool{}
	for _, r := range d.reports {
		seen[r.Var] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
