package race

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goconcbugs/internal/event"
	"goconcbugs/internal/sim"
)

// The paper notes of both evaluated detectors that they report no false
// positives. These properties pin that behavior down for the happens-before
// reimplementation: randomly structured programs whose accesses are all
// synchronized are never flagged, while planting a single unsynchronized
// write into the same structure is always flagged.

// syncStyle picks how a random program synchronizes its shared counter.
type syncStyle int

const (
	styleMutex syncStyle = iota
	styleChannelToken
	styleWaitGroupPhases
	styleAtomicPublish
)

// buildSynced constructs a program with `workers` goroutines touching one
// shared variable, fully ordered via the chosen style; when planted is
// true, one extra unsynchronized write races with everything.
func buildSynced(style syncStyle, workers int, planted bool) sim.Program {
	return func(t *sim.T) {
		x := sim.NewVarInit(t, "x", 0)
		if planted {
			t.GoNamed("rogue", func(ct *sim.T) { x.Store(ct, -1) })
		}
		switch style {
		case styleMutex:
			mu := sim.NewMutex(t, "mu")
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, workers)
			for i := 0; i < workers; i++ {
				t.Go(func(ct *sim.T) {
					mu.Lock(ct)
					x.Store(ct, x.Load(ct)+1)
					mu.Unlock(ct)
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			mu.Lock(t)
			_ = x.Load(t)
			mu.Unlock(t)
		case styleChannelToken:
			token := sim.NewChan[struct{}](t, 1)
			token.Send(t, struct{}{})
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, workers)
			for i := 0; i < workers; i++ {
				t.Go(func(ct *sim.T) {
					token.Recv(ct)
					x.Store(ct, x.Load(ct)+1)
					token.Send(ct, struct{}{})
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			token.Recv(t)
			_ = x.Load(t)
		case styleWaitGroupPhases:
			// Phase 1: every worker writes its own variable; phase 2:
			// the parent reads them all after Wait.
			vars := make([]*sim.Var[int], workers)
			wg := sim.NewWaitGroup(t, "wg")
			wg.Add(t, workers)
			for i := 0; i < workers; i++ {
				vars[i] = sim.NewVar[int](t, "v")
				i := i
				t.Go(func(ct *sim.T) {
					vars[i].Store(ct, i)
					wg.Done(ct)
				})
			}
			wg.Wait(t)
			for i := 0; i < workers; i++ {
				_ = vars[i].Load(t)
			}
			_ = x.Load(t)
		case styleAtomicPublish:
			flag := sim.NewAtomicInt64(t, "flag")
			t.Go(func(ct *sim.T) {
				x.Store(ct, 42)
				flag.Store(ct, 1)
			})
			for flag.Load(t) == 0 {
				t.Yield()
			}
			_ = x.Load(t)
		}
		t.Sleep(50)
	}
}

func TestNoFalsePositivesOnSynchronizedPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		style := syncStyle(r.Intn(4))
		workers := 1 + r.Intn(4)
		d := New(0)
		sim.Run(sim.Config{Seed: seed, Sinks: []event.Sink{d}}, buildSynced(style, workers, false))
		return len(d.Reports()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedRaceAlwaysCaughtWithUnboundedHistory(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		style := syncStyle(r.Intn(4))
		workers := 1 + r.Intn(4)
		d := New(-1) // unbounded shadow history: no eviction misses
		sim.Run(sim.Config{Seed: seed, Sinks: []event.Sink{d}}, buildSynced(style, workers, true))
		for _, rep := range d.Reports() {
			if rep.Var == "x" {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
