package engine

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"goconcbugs/internal/harness"
	"goconcbugs/internal/store"
)

func newStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "verdicts.db"), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(e.Close)
	return e
}

func sweepJob() Job {
	return Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 20, Seed: 1, Detectors: []string{"cycle"}}
}

// A cold submit, a warm (cached) submit, and a third on a fresh engine over
// the same store must all produce byte-identical text — the core service
// invariant.
func TestColdWarmByteIdentical(t *testing.T) {
	st := newStore(t)
	ctx := context.Background()

	e := New(Options{Workers: 1, SweepWorkers: 1, Store: st})
	cold, err := e.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if cold.CacheHit {
		t.Fatal("cold submit reported a cache hit")
	}
	warm, err := e.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if !warm.CacheHit {
		t.Fatal("second submit missed the cache")
	}
	if warm.Text != cold.Text {
		t.Fatalf("warm text diverged:\ncold:\n%s\nwarm:\n%s", cold.Text, warm.Text)
	}
	s := e.Stats()
	if s.Executed != 1 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 executed / 1 hit / 1 miss", s)
	}
	e.Close()

	// A fresh engine over the same store file (daemon restart) still hits.
	e2 := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: st})
	again, err := e2.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatalf("restart submit: %v", err)
	}
	if !again.CacheHit || again.Text != cold.Text {
		t.Fatalf("restarted engine: hit=%v, text match=%v", again.CacheHit, again.Text == cold.Text)
	}
	if !cold.Fired {
		t.Fatal("buggy docker-abba-order sweep did not fire")
	}
	if !strings.Contains(cold.Text, "replay: go run ./cmd/godetect -kernel docker-abba-order") {
		t.Fatalf("missing replay hint:\n%s", cold.Text)
	}
}

// N identical concurrent submissions while the job is in flight must execute
// once; the text each waiter observes is identical.
func TestCoalescing(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: newStore(t)})
	job := Job{Kind: KindSweep, Kernel: "grpc-lost-update", Runs: 200, Seed: 7, Detectors: []string{"race", "leak"}}

	const n = 8
	var wg sync.WaitGroup
	texts := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Submit(context.Background(), job)
			if err != nil {
				errs[i] = err
				return
			}
			texts[i] = res.Text
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if texts[i] != texts[0] {
			t.Fatalf("submission %d saw different text", i)
		}
	}
	if s := e.Stats(); s.Executed != 1 {
		t.Fatalf("executed %d times, want 1 (stats %+v)", s.Executed, s)
	}
}

func TestRunJobFiresOnBuggy(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1})
	res, err := e.Submit(context.Background(), Job{Kind: KindRun, Kernel: "grpc-lost-update", Runs: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatalf("buggy grpc-lost-update did not fire:\n%s", res.Text)
	}
	if res.Verdict.Status != harness.Confirmed {
		t.Fatalf("verdict %v, want Confirmed", res.Verdict)
	}
	if !strings.Contains(res.Text, "manifested") {
		t.Fatalf("unexpected text:\n%s", res.Text)
	}
}

func TestSystematicJob(t *testing.T) {
	e := newEngine(t, Options{Workers: 1})
	res, err := e.Submit(context.Background(), Job{Kind: KindSystematic, Kernel: "docker-24007-double-close", DPOR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatalf("systematic exploration found no failures:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "DPOR") || !strings.Contains(res.Text, "pruned") {
		t.Fatalf("missing DPOR stats:\n%s", res.Text)
	}
}

// Conformance jobs execute every time even with a store attached: host
// outcomes are not a pure function of the job.
func TestConformanceNeverCached(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep builds host subprocesses")
	}
	e := newEngine(t, Options{Workers: 1, Store: newStore(t)})
	job := Job{Kind: KindConformance, Programs: 5, Seed: 3}
	for i := 0; i < 2; i++ {
		res, err := e.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatal("conformance result served from cache")
		}
	}
	if s := e.Stats(); s.Executed != 2 || s.CacheHits != 0 {
		t.Fatalf("stats %+v, want 2 executions and 0 hits", s)
	}
}

// Deadline-truncated (Incomplete) results must not poison the cache: the
// next submission re-executes.
func TestIncompleteNotCached(t *testing.T) {
	st := newStore(t)
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: st})
	job := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 100000, Seed: 1,
		Detectors: []string{"cycle"}, Deadline: time.Microsecond}
	res, err := e.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Status != harness.Incomplete {
		t.Skipf("sweep finished inside the deadline (verdict %v); nothing to assert", res.Verdict)
	}
	if res.CacheHit {
		t.Fatal("first submission cannot be a hit")
	}
	if st.Len() != 0 {
		t.Fatalf("incomplete verdict was cached (%d entries)", st.Len())
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	e := newEngine(t, Options{Workers: 1})
	for _, job := range []Job{
		{Kind: "bogus"},
		{Kind: KindSweep, Kernel: "docker-abba-order"},                                              // no detectors
		{Kind: KindSweep, Kernel: "no-such-kernel", Detectors: []string{"cycle"}},                // unknown kernel
		{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"bogus"}},                // unknown detector
		{Kind: KindRun},                                                                             // no kernel
		{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"cycle"}, Shards: 4},  // no checkpoint
		{Kind: KindConformance, Kernel: "docker-abba-order"},                                        // kernel on conformance
	} {
		if _, err := e.Enqueue(job); err == nil {
			t.Errorf("job %+v validated", job)
		}
	}
}

// Anonymous in-process programs are executable but never cached: no sound
// key exists for them.
func TestAnonymousProgramNotCached(t *testing.T) {
	st := newStore(t)
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: st})
	job := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 5, Seed: 1, Detectors: []string{"cycle"}}
	r, err := job.resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SubmitProgram(context.Background(), Job{Kind: KindSweep, Runs: 5, Seed: 1, Detectors: []string{"cycle"}},
		"", r.prog, r.cfgFor)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || st.Len() != 0 {
		t.Fatalf("anonymous program was cached (hit=%v, entries=%d)", res.CacheHit, st.Len())
	}
}

// Named in-process programs cache under their supplied identity, and the
// text matches the kernel-registry path for the same program byte for byte.
func TestNamedProgramMatchesKernelPath(t *testing.T) {
	st := newStore(t)
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: st})
	ctx := context.Background()
	base := sweepJob()
	viaKernel, err := e.Submit(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	r, err := base.resolve()
	if err != nil {
		t.Fatal(err)
	}
	viaProg, err := e.SubmitProgram(ctx, Job{Kind: KindSweep, Runs: base.Runs, Seed: base.Seed, Detectors: base.Detectors},
		base.Kernel, r.prog, r.cfgFor)
	if err != nil {
		t.Fatal(err)
	}
	if viaProg.Text != viaKernel.Text {
		t.Fatalf("program path diverged from kernel path:\n%s\nvs\n%s", viaProg.Text, viaKernel.Text)
	}
	if !viaProg.CacheHit {
		t.Fatal("named program with identical key should have hit the kernel job's cache entry")
	}
}

func TestQueueBackpressure(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1, QueueDepth: 1})
	slow := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 5000, Seed: 99, Detectors: []string{"cycle"}}
	if _, err := e.Enqueue(slow); err != nil {
		t.Fatal(err)
	}
	// Fill the queue and then force ErrBusy with distinct (uncoalescable) jobs.
	sawBusy := false
	for i := int64(0); i < 64 && !sawBusy; i++ {
		_, err := e.Enqueue(Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 5000, Seed: 1000 + i, Detectors: []string{"cycle"}})
		if err == ErrBusy {
			sawBusy = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawBusy {
		t.Skip("workers drained faster than we could fill the queue")
	}
}
