// Package engine is the reusable job layer between the godetect CLI and the
// exploration harnesses: typed jobs (detector sweeps, seeded sampling runs,
// systematic exploration, conformance sweeps) executed by a bounded worker
// pool, memoized through a persistent verdict store, and coalesced so N
// concurrent identical requests cost one exploration.
//
// Both front ends route through it — the one-shot CLI submits a job and
// prints the result, the daemon (server.go) serves the same jobs over a
// socket — so a verdict is computed by exactly one code path no matter how
// it was requested. Result.Text is the canonical rendering both print; it is
// a deterministic function of the job (wall time never appears in it), which
// is what makes "daemon-served verdicts are byte-identical to one-shot CLI
// output, cold cache, warm cache, or coalesced" a testable invariant rather
// than a hope.
//
// Caching: jobs whose outcome is a pure function of their options (no
// archive replay, no recording side effects, no sharding) land in the store
// keyed by (program fingerprint, config digest, detector set, seed range).
// Incomplete results — deadline, cancellation, panic — are never cached.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goconcbugs/internal/corpus"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/inject"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/store"
)

// Kind selects a job's execution mode. The string values are the wire format
// of the daemon API.
type Kind string

const (
	// KindSweep is a detector-pipeline sweep: detect.Sweep (or its replay
	// / shard-fold variants) with a named detector set.
	KindSweep Kind = "sweep"
	// KindRun is the plain seeded sampling sweep (explore.Run) — the
	// paper's run-it-100-times protocol with the built-in observers and,
	// for non-blocking kernels, the race detector.
	KindRun Kind = "run"
	// KindSystematic explores the schedule space exhaustively
	// (explore.Systematic), optionally with DPOR.
	KindSystematic Kind = "systematic"
	// KindConformance differentially tests the sim against the real
	// runtime on generated programs. Host outcomes depend on the real
	// scheduler, so conformance results are never cached.
	KindConformance Kind = "conformance"
)

// Job is one unit of work. The zero value is invalid; fill Kind plus the
// fields the kind uses. Jobs are JSON-serializable (the daemon API accepts
// exactly this struct); in-process callers may instead attach an unexported
// program via Engine.SubmitProgram.
type Job struct {
	Kind Kind `json:"kind"`

	// Kernel is the registered kernel ID; Fixed selects the variant.
	Kernel string `json:"kernel,omitempty"`
	Fixed  bool   `json:"fixed,omitempty"`

	// Runs and Seed are the seed range for sweep/run kinds.
	Runs int   `json:"runs,omitempty"`
	Seed int64 `json:"seed"`

	// Detectors is the detector set for KindSweep (registry names).
	Detectors []string `json:"detectors,omitempty"`

	// Fault injection (sweep/run kinds).
	Faults     int   `json:"faults,omitempty"`
	FaultSeed  int64 `json:"faultseed,omitempty"`
	Aggressive bool  `json:"aggressive,omitempty"`

	// Shadow is the race-detector shadow-word budget for KindRun; Vet
	// additionally runs the usage-rule checker over the same seeds.
	Shadow int  `json:"shadow,omitempty"`
	Vet    bool `json:"vet,omitempty"`

	// MaxRuns and DPOR configure KindSystematic.
	MaxRuns int  `json:"maxruns,omitempty"`
	DPOR    bool `json:"dpor,omitempty"`

	// Programs and Families configure KindConformance.
	Programs int    `json:"programs,omitempty"`
	Families string `json:"families,omitempty"`

	// Deadline bounds the job's wall clock (0 = none). A job cut short by
	// it reports an Incomplete verdict and is not cached.
	Deadline time.Duration `json:"deadline,omitempty"`

	// Side-effecting sweep options: any of these disables caching (the
	// file is the product, or the input). Paths are daemon-local when the
	// job arrives over the API.
	ReplayDir  string `json:"replay,omitempty"`
	RecordDir  string `json:"record,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	Shard      int    `json:"shard,omitempty"`
	Fold       bool   `json:"fold,omitempty"`
	// InlineShard makes a sharded sweep return its shard checkpoint bytes
	// in Result.ShardCheckpoint instead of requiring a Checkpoint base on
	// the executing machine's disk: the daemon sweeps the shard into a
	// private temp file and ships the bytes back, so a fleet coordinator
	// can fold shards from daemons that share no filesystem with it.
	InlineShard bool `json:"inlineShard,omitempty"`

	// In-process program override (SubmitProgram): not serializable, so
	// daemon jobs always go through the kernel registry. ProgName is the
	// caller-supplied identity; caching requires a non-empty one.
	prog     sim.Program
	progCfg  func(seed int64) sim.Config
	ProgName string `json:"-"`
}

// normalize applies the CLI's documented defaults so equal requests build
// equal cache keys no matter which front end spelled them.
func (j *Job) normalize() {
	switch j.Kind {
	case KindSweep, KindRun:
		if j.Runs <= 0 {
			j.Runs = 100
		}
	case KindSystematic:
		if j.MaxRuns <= 0 {
			j.MaxRuns = 200_000
		}
	case KindConformance:
		if j.Programs <= 0 {
			j.Programs = 200
		}
	}
}

// Validate reports whether the job is well-formed and executable.
func (j *Job) Validate() error {
	switch j.Kind {
	case KindSweep:
		if len(j.Detectors) == 0 {
			return errors.New("engine: sweep job needs a detector set")
		}
		for _, name := range j.Detectors {
			if _, ok := detect.Lookup(name); !ok {
				return fmt.Errorf("engine: unknown detector %q (have %s)", name, strings.Join(detect.Names(), ", "))
			}
		}
		if j.ReplayDir != "" && (j.RecordDir != "" || j.Shards > 1 || j.Fold) {
			return errors.New("engine: replay cannot be combined with record, shards, or fold")
		}
		if j.InlineShard {
			if j.Shards <= 1 || j.Fold {
				return errors.New("engine: inline shard checkpoints need a sharded (non-fold) sweep")
			}
			if j.Checkpoint != "" {
				return errors.New("engine: inline shard sweeps use a private checkpoint; leave Checkpoint empty")
			}
		}
		if (j.Shards > 1 || j.Fold) && j.Checkpoint == "" && !j.InlineShard {
			return errors.New("engine: sharded sweeps need a checkpoint base")
		}
		if j.Shards > 1 && !j.Fold && (j.Shard < 0 || j.Shard >= j.Shards) {
			return fmt.Errorf("engine: shard %d out of range [0, %d)", j.Shard, j.Shards)
		}
	case KindRun, KindSystematic:
	case KindConformance:
		if j.Kernel != "" {
			return errors.New("engine: conformance jobs take no kernel")
		}
	default:
		return fmt.Errorf("engine: unknown job kind %q", j.Kind)
	}
	if j.Kind != KindConformance && j.prog == nil {
		if j.Kernel == "" {
			return errors.New("engine: job names no kernel")
		}
		if _, ok := kernels.ByID(j.Kernel); !ok {
			return fmt.Errorf("engine: unknown kernel %q", j.Kernel)
		}
	}
	return nil
}

// resolved is the executable form of a job: the program pair and config
// builder, either from the kernel registry or from an in-process override.
type resolved struct {
	name     string
	prog     sim.Program
	cfgFor   func(seed int64) sim.Config
	withRace bool // KindRun: attach the race detector (non-blocking kernels)
}

func (j *Job) resolve() (resolved, error) {
	if j.prog != nil {
		return resolved{name: j.ProgName, prog: j.prog, cfgFor: j.progCfg}, nil
	}
	k, ok := kernels.ByID(j.Kernel)
	if !ok {
		return resolved{}, fmt.Errorf("engine: unknown kernel %q", j.Kernel)
	}
	prog := k.Buggy
	if j.Fixed {
		prog = k.Fixed
	}
	return resolved{
		name:     k.ID,
		prog:     prog,
		cfgFor:   k.Config,
		withRace: k.Behavior == corpus.NonBlocking,
	}, nil
}

// variantLabel is the "buggy"/"fixed" half of every report header.
func (j *Job) variantLabel() string {
	if j.Fixed {
		return "fixed"
	}
	return "buggy"
}

// injOpts reconstructs the injector options, nil when injection is off.
func (j *Job) injOpts() *inject.Options {
	if j.Faults <= 0 {
		return nil
	}
	return &inject.Options{Seed: j.FaultSeed, Budget: j.Faults, Aggressive: j.Aggressive}
}

// injectorFor adapts the options to the per-run injector hook; nil when
// injection is off.
func (j *Job) injectorFor() func(run int, seed int64) sim.Injector {
	opts := j.injOpts()
	if opts == nil {
		return nil
	}
	o := *opts
	return func(run int, seed int64) sim.Injector { return inject.ForRun(o, run) }
}

// configDigest hashes the deterministic sim parameters the job runs under.
// Cache keys carry it so a kernel whose step budget or leak threshold
// changes stops matching stale entries.
func (j *Job) configDigest(r resolved) string {
	cfg := r.cfgFor(0)
	h := fnv.New64a()
	fmt.Fprintf(h, "name=%s maxsteps=%d leak=%d shadow=%d race=%v",
		cfg.Name, cfg.MaxSteps, cfg.LeakThreshold, j.Shadow, r.withRace)
	return fmt.Sprintf("%016x", h.Sum64())
}

// faultsKey renders the injection parameters for cache keys.
func (j *Job) faultsKey() string {
	if j.Faults <= 0 {
		return "off"
	}
	mode := "benign"
	if j.Aggressive {
		mode = "aggressive"
	}
	return fmt.Sprintf("%d/%d/%s", j.Faults, j.FaultSeed, mode)
}

// cacheKey builds the store key and reports whether the job is cacheable at
// all: its outcome must be a pure function of the key. Side-effecting sweeps
// (recording an archive, replaying one, sharding) and conformance jobs
// (host-scheduler-dependent) are not; a checkpoint alone does not disqualify
// (the checkpoint is crash insurance, the store is the cache).
func (j *Job) cacheKey() (store.Key, bool) {
	if j.Kind == KindConformance ||
		j.ReplayDir != "" || j.RecordDir != "" || j.Shards > 1 || j.Fold {
		return store.Key{}, false
	}
	r, err := j.resolve()
	if err != nil || r.name == "" {
		// In-process programs without a caller-supplied identity cannot be
		// keyed soundly.
		return store.Key{}, false
	}
	k := store.Key{Config: j.configDigest(r)}
	switch j.Kind {
	case KindSweep:
		k.Fingerprint = fmt.Sprintf("sweep/v1 prog=%s variant=%s faults=%s", r.name, j.variantLabel(), j.faultsKey())
		k.Detectors = strings.Join(j.Detectors, ",")
		k.Seeds = fmt.Sprintf("base=%d runs=%d", j.Seed, j.Runs)
	case KindRun:
		k.Fingerprint = fmt.Sprintf("run/v1 prog=%s variant=%s faults=%s vet=%v", r.name, j.variantLabel(), j.faultsKey(), j.Vet)
		k.Seeds = fmt.Sprintf("base=%d runs=%d", j.Seed, j.Runs)
	case KindSystematic:
		k.Fingerprint = fmt.Sprintf("systematic/v1 prog=%s variant=%s dpor=%v", r.name, j.variantLabel(), j.DPOR)
		k.Seeds = fmt.Sprintf("maxruns=%d", j.MaxRuns)
	default:
		return store.Key{}, false
	}
	return k, true
}

// Result is a completed job. Text is the canonical rendering both front ends
// print — a deterministic function of the job, byte-identical whether the
// result was computed cold, served warm from the store, or shared by a
// coalesced submission.
type Result struct {
	Job  Job    `json:"job"`
	Text string `json:"text"`
	// Fired reports whether any detector (or manifestation oracle) fired —
	// the bit the CLI turns into exit codes for -fixed regression gates.
	Fired   bool            `json:"fired"`
	Verdict harness.Verdict `json:"verdict"`
	// Sweep carries the structured fold for KindSweep jobs (per-detector
	// wall time zeroed: it is process-local and would break determinism).
	Sweep *detect.SweepReport `json:"sweep,omitempty"`
	// ShardCheckpoint is the full-length shard checkpoint file an
	// InlineShard sweep produced — exactly the bytes the same shard
	// sweeping into a -resume base would have written, so a coordinator
	// can lay the shards side by side and fold them byte-identically to a
	// serial sweep. (JSON marshals it base64.)
	ShardCheckpoint []byte `json:"shardCheckpoint,omitempty"`
	// CacheHit marks results served from the store without execution.
	CacheHit bool `json:"cacheHit,omitempty"`
}

// cached is the store payload: the deterministic portion of a Result.
type cached struct {
	Text    string              `json:"text"`
	Fired   bool                `json:"fired"`
	Verdict harness.Verdict     `json:"verdict"`
	Sweep   *detect.SweepReport `json:"sweep,omitempty"`
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Submitted counts accepted jobs; Executed the ones that actually ran
	// (submitted minus cache hits and coalesced shares); Errored the
	// executions that failed.
	Submitted uint64 `json:"submitted"`
	Executed  uint64 `json:"executed"`
	Errored   uint64 `json:"errored"`
	// CacheHits/CacheMisses count store lookups for cacheable jobs;
	// Coalesced counts submissions attached to an identical in-flight job.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	Coalesced   uint64 `json:"coalesced"`
	// Queued and Running describe the instantaneous pipeline state.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Store is the verdict store's snapshot, nil when the engine runs
	// uncached.
	Store *store.Stats `json:"store,omitempty"`
}

// VerdictStore is the persistence contract the engine caches through,
// satisfied by *store.Store. The indirection keeps the engine layer
// independent of the storage implementation and lets tests and benchmarks
// substitute instrumented doubles (e.g. one that gates PutKey to hold a
// worker at the publish barrier).
type VerdictStore interface {
	// Get returns the payload stored under a canonical key, if any.
	Get(key string) ([]byte, bool)
	// PutKey stores a payload under a structured key.
	PutKey(k store.Key, val []byte) error
	// Stats snapshots the store's counters for the engine's Stats view.
	Stats() store.Stats
}

// Options configures New.
type Options struct {
	// Workers is the number of job-executing goroutines, each owning a
	// sim.RunPool that serial sweeps recycle runs through. <= 0 means
	// GOMAXPROCS.
	Workers int
	// SweepWorkers is the per-job fan-out handed to the harnesses
	// (detect.SweepOptions.Workers / explore.Options.Workers). 0 means
	// GOMAXPROCS — right for a one-shot CLI running one job; a daemon
	// running Workers jobs concurrently sets 1 so jobs, not runs, are the
	// unit of parallelism (and per-worker pools actually get reused).
	SweepWorkers int
	// Store, when non-nil, is the persistent verdict cache. Leave it nil
	// (the interface zero value, not a typed-nil pointer) to run uncached.
	Store VerdictStore
	// Context bounds every execution (the engine's lifetime); nil means
	// Background. Cancel it to abort in-flight harness work — partial
	// results fold with Incomplete verdicts, exactly as the harnesses
	// already do.
	Context context.Context
	// QueueDepth bounds pending jobs (default 256). Enqueue past it fails
	// with ErrBusy rather than blocking — the daemon turns that into
	// backpressure (HTTP 503).
	QueueDepth int
}

// ErrBusy is returned by Enqueue when the job queue is full.
var ErrBusy = errors.New("engine: job queue full")

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("engine: closed")

// Engine executes jobs on a bounded worker pool with read-through caching
// and singleflight coalescing.
type Engine struct {
	opts  Options
	ctx   context.Context
	queue chan *Ticket
	wg    sync.WaitGroup
	start time.Time

	mu       sync.Mutex
	closed   bool
	nextID   uint64
	inflight map[string]*Ticket // cache key -> in-flight ticket
	stats    Stats
	running  int
}

// New starts an engine with opts.Workers workers. Close it to drain.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Engine{
		opts:     opts,
		ctx:      ctx,
		queue:    make(chan *Ticket, opts.QueueDepth),
		inflight: make(map[string]*Ticket),
		start:    time.Now(),
	}
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Ticket is a handle on a submitted job.
type Ticket struct {
	// ID is unique within the engine ("j-000001", ...).
	ID  string
	Job Job

	done chan struct{}
	// state is atomic: the daemon's status endpoint polls it from request
	// goroutines while a worker advances it.
	state atomic.Int32
	res   *Result
	err   error

	// cancelMu guards the cancel handshake between Cancel (any goroutine,
	// any time) and the worker installing the job context's cancel func.
	cancelMu sync.Mutex
	cancelFn context.CancelFunc
	canceled bool
}

// Cancel aborts the ticket's job: a queued job starts with an already-dead
// context (it folds an immediate Incomplete/canceled result), a running job
// has its context canceled so the harness stops dispatching and folds the
// partial work, and a done job is unaffected. Note that coalesced waiters
// share one ticket — canceling it cancels the job for all of them.
func (t *Ticket) Cancel() {
	t.cancelMu.Lock()
	t.canceled = true
	if t.cancelFn != nil {
		t.cancelFn()
	}
	t.cancelMu.Unlock()
}

// Canceled reports whether Cancel was called.
func (t *Ticket) Canceled() bool {
	t.cancelMu.Lock()
	defer t.cancelMu.Unlock()
	return t.canceled
}

// arm installs the running job's cancel func, collapsing the race with an
// earlier Cancel: if the ticket was canceled while queued, the fresh context
// is killed before execution observes it.
func (t *Ticket) arm(cancel context.CancelFunc) {
	t.cancelMu.Lock()
	t.cancelFn = cancel
	if t.canceled {
		cancel()
	}
	t.cancelMu.Unlock()
}

// disarm clears the cancel func once execution finished.
func (t *Ticket) disarm() {
	t.cancelMu.Lock()
	t.cancelFn = nil
	t.cancelMu.Unlock()
}

const (
	stateQueued = iota
	stateRunning
	stateDone
)

// State reports "queued", "running", or "done".
func (t *Ticket) State() string {
	select {
	case <-t.done:
		return "done"
	default:
	}
	if t.state.Load() == stateRunning {
		return "running"
	}
	return "queued"
}

// Wait blocks until the job completes or ctx is done.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Enqueue validates and submits a job without waiting. Identical cacheable
// jobs share one ticket (singleflight); cached jobs return an
// already-completed ticket.
func (e *Engine) Enqueue(job Job) (*Ticket, error) {
	job.normalize()
	if err := job.Validate(); err != nil {
		return nil, err
	}
	key, cacheable := job.cacheKey()
	ks := ""
	if cacheable {
		ks = key.String()
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.stats.Submitted++
	if cacheable {
		if t := e.inflight[ks]; t != nil {
			e.stats.Coalesced++
			e.mu.Unlock()
			return t, nil
		}
		if e.opts.Store != nil {
			if raw, ok := e.opts.Store.Get(ks); ok {
				var c cached
				if err := json.Unmarshal(raw, &c); err == nil {
					e.stats.CacheHits++
					e.nextID++
					t := &Ticket{
						ID: fmt.Sprintf("j-%06d", e.nextID), Job: job,
						done: make(chan struct{}),
						res: &Result{
							Job: job, Text: c.Text, Fired: c.Fired,
							Verdict: c.Verdict, Sweep: c.Sweep, CacheHit: true,
						},
					}
					t.state.Store(stateDone)
					close(t.done)
					e.mu.Unlock()
					return t, nil
				}
				// Undecodable entry (format drift): fall through and
				// recompute; the fresh put overwrites it.
			}
			e.stats.CacheMisses++
		}
	}
	e.nextID++
	t := &Ticket{ID: fmt.Sprintf("j-%06d", e.nextID), Job: job, done: make(chan struct{})}
	if cacheable {
		e.inflight[ks] = t
	}
	e.mu.Unlock()

	select {
	case e.queue <- t:
		return t, nil
	default:
		e.mu.Lock()
		if cacheable && e.inflight[ks] == t {
			delete(e.inflight, ks)
		}
		e.stats.Submitted--
		e.mu.Unlock()
		return nil, ErrBusy
	}
}

// Submit enqueues job and waits for its result: the one-shot entry point.
func (e *Engine) Submit(ctx context.Context, job Job) (*Result, error) {
	t, err := e.Enqueue(job)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

// SubmitProgram is Submit for an in-process program that is not in the
// kernel registry (conformance-IR programs, tests). cfgFor builds the
// per-seed config; name is the program's identity for reports and — when
// non-empty — cache keys. In-process only: program jobs cannot arrive over
// the daemon API.
func (e *Engine) SubmitProgram(ctx context.Context, job Job, name string, prog sim.Program, cfgFor func(seed int64) sim.Config) (*Result, error) {
	job.prog = prog
	job.progCfg = cfgFor
	job.ProgName = name
	return e.Submit(ctx, job)
}

// worker drains the queue. Each worker owns one RunPool for its lifetime, so
// back-to-back serial sweeps recycle a single warm runtime.
func (e *Engine) worker() {
	defer e.wg.Done()
	pool := sim.NewRunPool()
	defer pool.Close()
	for t := range e.queue {
		e.mu.Lock()
		t.state.Store(stateRunning)
		e.running++
		e.mu.Unlock()

		ctx, cancel := e.jobCtx(t.Job)
		t.arm(cancel)
		res, err := e.execute(ctx, pool, t.Job)
		t.disarm()
		cancel()

		key, cacheable := t.Job.cacheKey()
		if err == nil && cacheable && e.opts.Store != nil &&
			res.Verdict.Status != harness.Incomplete {
			if raw, merr := json.Marshal(cached{
				Text: res.Text, Fired: res.Fired, Verdict: res.Verdict, Sweep: res.Sweep,
			}); merr == nil {
				// A failed put costs future warm hits, never this result.
				_ = e.opts.Store.PutKey(key, raw)
			}
		}

		e.mu.Lock()
		if cacheable {
			delete(e.inflight, key.String())
		}
		e.stats.Executed++
		if err != nil {
			e.stats.Errored++
		}
		e.running--
		t.res, t.err = res, err
		t.state.Store(stateDone)
		e.mu.Unlock()
		close(t.done)
	}
}

// Health is the engine's load-and-liveness snapshot — the daemon's
// GET /v1/health payload. Unlike verdict text it is deliberately
// wall-clock-bearing: schedulers route on it, nothing folds it.
type Health struct {
	// Status is "ok" while the engine accepts jobs, "closed" after Close.
	Status string `json:"status"`
	// QueueDepth and Running are the instantaneous pipeline state;
	// InFlight is their sum — the number a scheduler compares across
	// daemons to find the least-loaded one.
	QueueDepth int `json:"queueDepth"`
	Running    int `json:"running"`
	InFlight   int `json:"inFlight"`
	// Workers and QueueCapacity are the static bounds the load is
	// relative to.
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queueCapacity"`
	// UptimeSeconds is time since the engine started.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// StoreHitRate is hits/(hits+misses) of the verdict store lookups, 0
	// with no store or no lookups yet.
	StoreHitRate float64 `json:"storeHitRate"`
	// Executed mirrors Stats.Executed — a cheap liveness delta for
	// probes that want progress, not just reachability.
	Executed uint64 `json:"executed"`
}

// Health snapshots the engine's health view.
func (e *Engine) Health() Health {
	e.mu.Lock()
	h := Health{
		Status:        "ok",
		QueueDepth:    len(e.queue),
		Running:       e.running,
		Workers:       e.opts.Workers,
		QueueCapacity: e.opts.QueueDepth,
		UptimeSeconds: time.Since(e.start).Seconds(),
		Executed:      e.stats.Executed,
	}
	if e.closed {
		h.Status = "closed"
	}
	e.mu.Unlock()
	h.InFlight = h.QueueDepth + h.Running
	if e.opts.Store != nil {
		ss := e.opts.Store.Stats()
		if total := ss.Hits + ss.Misses; total > 0 {
			h.StoreHitRate = float64(ss.Hits) / float64(total)
		}
	}
	return h
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	st.Queued = len(e.queue)
	st.Running = e.running
	e.mu.Unlock()
	if e.opts.Store != nil {
		ss := e.opts.Store.Stats()
		st.Store = &ss
	}
	return st
}

// Close stops accepting jobs and drains the queue: every already-enqueued
// ticket completes. It does not cancel in-flight work — cancel the engine's
// Context for that.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
}

// jobCtx derives the execution context from the engine lifetime and the
// job's deadline. The returned cancel must always be called.
func (e *Engine) jobCtx(job Job) (context.Context, context.CancelFunc) {
	if job.Deadline > 0 {
		return context.WithTimeout(e.ctx, job.Deadline)
	}
	return context.WithCancel(e.ctx)
}
