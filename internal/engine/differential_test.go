package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"goconcbugs/internal/conformance"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
)

// The differential suite pins the service-layer contract: a verdict's
// canonical text is a pure function of the job — identical whether computed
// by the one-shot CLI profile (SweepWorkers=0, uncached), the daemon
// profile (SweepWorkers=1, store-backed) cold, the same daemon warm from
// its store, or shared across coalesced submissions.

// profiles returns the two engine configurations whose outputs must agree.
func profiles(t *testing.T) (daemon, oneshot *Engine) {
	daemon = newEngine(t, Options{Workers: 2, SweepWorkers: 1, Store: newStore(t)})
	oneshot = newEngine(t, Options{Workers: 1, SweepWorkers: 0})
	return daemon, oneshot
}

// TestDifferentialAllKernels sweeps every registered kernel, buggy and
// fixed, through both profiles and requires cold, warm, and one-shot text
// to be byte-identical.
func TestDifferentialAllKernels(t *testing.T) {
	daemon, oneshot := profiles(t)
	ctx := context.Background()
	dets := detect.Names()
	for _, k := range kernels.All() {
		for _, fixed := range []bool{false, true} {
			job := Job{Kind: KindSweep, Kernel: k.ID, Fixed: fixed, Runs: 10, Seed: 1, Detectors: dets}
			cold, err := daemon.Submit(ctx, job)
			if err != nil {
				t.Fatalf("%s fixed=%v cold: %v", k.ID, fixed, err)
			}
			warm, err := daemon.Submit(ctx, job)
			if err != nil {
				t.Fatalf("%s fixed=%v warm: %v", k.ID, fixed, err)
			}
			direct, err := oneshot.Submit(ctx, job)
			if err != nil {
				t.Fatalf("%s fixed=%v one-shot: %v", k.ID, fixed, err)
			}
			if !warm.CacheHit {
				t.Errorf("%s fixed=%v: second daemon submit was not a cache hit", k.ID, fixed)
			}
			if warm.Text != cold.Text {
				t.Errorf("%s fixed=%v: warm text diverged from cold:\n%s\nvs\n%s", k.ID, fixed, cold.Text, warm.Text)
			}
			if direct.Text != cold.Text {
				t.Errorf("%s fixed=%v: one-shot profile diverged from daemon:\n%s\nvs\n%s", k.ID, fixed, direct.Text, cold.Text)
			}
			if direct.Fired != cold.Fired || warm.Fired != cold.Fired {
				t.Errorf("%s fixed=%v: fired bits disagree (cold %v, warm %v, one-shot %v)",
					k.ID, fixed, cold.Fired, warm.Fired, direct.Fired)
			}
		}
	}
}

// TestDifferentialConformanceIR runs 200 generated conformance-IR programs
// through the detector pipeline via SubmitProgram on both profiles — the
// in-process face of "the daemon serves arbitrary programs the same bytes
// the CLI computes".
func TestDifferentialConformanceIR(t *testing.T) {
	daemon, oneshot := profiles(t)
	ctx := context.Background()
	dets := detect.Names()
	fams := conformance.AllFamilies
	hits := 0
	for seed := int64(0); seed < 200; seed++ {
		p := conformance.GenerateWith(seed, conformance.ModeSafe, fams)
		prog := conformance.SimProgram(p)
		name := fmt.Sprintf("conformance-ir-%d", seed)
		cfgFor := func(s int64) sim.Config { return sim.Config{Name: name, Seed: s} }
		job := Job{Kind: KindSweep, Runs: 3, Seed: seed, Detectors: dets}

		cold, err := daemon.SubmitProgram(ctx, job, name, prog, cfgFor)
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		warm, err := daemon.SubmitProgram(ctx, job, name, prog, cfgFor)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		direct, err := oneshot.SubmitProgram(ctx, job, name, prog, cfgFor)
		if err != nil {
			t.Fatalf("seed %d one-shot: %v", seed, err)
		}
		if warm.CacheHit {
			hits++
		}
		if warm.Text != cold.Text || direct.Text != cold.Text {
			t.Fatalf("seed %d: texts diverged\ncold:\n%s\nwarm:\n%s\none-shot:\n%s",
				seed, cold.Text, warm.Text, direct.Text)
		}
	}
	if hits != 200 {
		t.Errorf("only %d/200 warm submissions hit the store", hits)
	}
}

// TestDifferentialFaultInjected pins the same agreement for a
// fault-injected sweep, including the coalesced path: eight concurrent
// identical submissions on a fresh engine share one execution and all see
// the cold text.
func TestDifferentialFaultInjected(t *testing.T) {
	daemon, oneshot := profiles(t)
	ctx := context.Background()
	job := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 25, Seed: 2,
		Detectors: detect.Names(), Faults: 3, FaultSeed: 5}

	cold, err := daemon.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := daemon.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := oneshot.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Text != cold.Text || direct.Text != cold.Text {
		t.Fatalf("fault-injected sweep diverged (warm hit=%v):\ncold:\n%s\nwarm:\n%s\none-shot:\n%s",
			warm.CacheHit, cold.Text, warm.Text, direct.Text)
	}

	coalesce := newEngine(t, Options{Workers: 1, SweepWorkers: 1, Store: newStore(t)})
	const n = 8
	var wg sync.WaitGroup
	texts := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := coalesce.Submit(ctx, job)
			if err == nil {
				texts[i] = res.Text
			}
		}(i)
	}
	wg.Wait()
	for i, text := range texts {
		if text != cold.Text {
			t.Fatalf("coalesced submission %d diverged:\n%s\nvs\n%s", i, text, cold.Text)
		}
	}
	if s := coalesce.Stats(); s.Executed != 1 {
		t.Fatalf("coalesced engine executed %d times, want 1", s.Executed)
	}
}

// TestWarmLoadHarness is the load proof for EXPERIMENTS.md: a store-backed
// engine answering a warm-cache request mix. It asserts only a conservative
// floor so CI never flakes; the measured numbers are logged.
func TestWarmLoadHarness(t *testing.T) {
	e := newEngine(t, Options{Workers: 4, SweepWorkers: 1, Store: newStore(t)})
	ctx := context.Background()
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 10,
			Seed: int64(100 + i), Detectors: []string{"cycle", "race"}}
		if _, err := e.Submit(ctx, jobs[i]); err != nil {
			t.Fatal(err)
		}
	}

	const requests = 4096
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests/8; i++ {
				res, err := e.Submit(ctx, jobs[(w+i)%len(jobs)])
				if err != nil {
					t.Error(err)
					return
				}
				if !res.CacheHit {
					t.Errorf("request missed warm cache")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	qps := float64(requests) / elapsed.Seconds()
	t.Logf("warm-cache load: %d requests in %v (%.0f QPS, %v mean latency)",
		requests, elapsed, qps, elapsed/time.Duration(requests))
	if qps < 1000 {
		t.Errorf("warm-cache QPS %.0f below the 1000 floor", qps)
	}
}
