package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Server exposes an Engine over HTTP — on a unix socket (the default
// deployment: filesystem permissions are the auth model) or a TCP address.
//
//	POST /v1/jobs              submit a Job; ?wait=1 blocks for the Result
//	GET  /v1/jobs/{id}         job state ("queued" | "running" | "done")
//	GET  /v1/jobs/{id}/result  block for (or fetch) the Result
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/stats             engine + store counters
//	GET  /v1/health            load/liveness snapshot for fleet schedulers
//
// Submissions past the queue bound get 503 (backpressure, not buffering).
// Shutdown drains: in-flight jobs finish and their tickets stay queryable
// until the listener closes.
type Server struct {
	eng *Engine

	mu      sync.Mutex
	tickets map[string]*Ticket

	http *http.Server
	lis  net.Listener
}

// NewServer wraps eng. The caller keeps ownership of the engine (and its
// store): Shutdown drains the HTTP side only.
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng, tickets: make(map[string]*Ticket)}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/health", s.handleHealth)
	s.http = &http.Server{Handler: mux}
	return s
}

// SplitAddr parses a daemon address into a (network, address) pair for
// net.Listen / net.Dial: "unix:///run/godetect.sock" or a bare path selects
// a unix socket, anything else is a TCP host:port.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix://"); ok {
		return "unix", rest
	}
	if strings.ContainsAny(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Listen binds the server's listener without serving yet, so callers can
// report "listening on ..." before blocking in Serve.
func (s *Server) Listen(addr string) error {
	network, address := SplitAddr(addr)
	lis, err := net.Listen(network, address)
	if err != nil {
		return err
	}
	s.lis = lis
	return nil
}

// Addr is the bound listener address (useful with "127.0.0.1:0").
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve blocks serving requests until Shutdown. It returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("engine: Serve before Listen")
	}
	err := s.http.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully drains the HTTP server: no new submissions, in-flight
// request handlers (including blocked waits) get until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// Close hard-stops the server: the listener and every active connection
// drop immediately, blocked waiters get connection errors. It exists for
// crash simulation (fleet chaos tests SIGKILL a daemon; in-process tests
// Close one) and last-resort teardown — prefer Shutdown.
func (s *Server) Close() error {
	return s.http.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusView is the wire form of a ticket's state.
type statusView struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST /v1/jobs"))
		return
	}
	var job Job
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job: %w", err))
		return
	}
	t, err := s.eng.Enqueue(job)
	switch {
	case errors.Is(err, ErrBusy):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.tickets[t.ID] = t
	s.mu.Unlock()
	if r.URL.Query().Get("wait") != "" {
		s.writeResult(w, r, t)
		return
	}
	writeJSON(w, http.StatusAccepted, statusView{ID: t.ID, State: t.State()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET (or POST .../cancel) only"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	t := s.tickets[id]
	s.mu.Unlock()
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	switch sub {
	case "":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET /v1/jobs/{id}"))
			return
		}
		writeJSON(w, http.StatusOK, statusView{ID: t.ID, State: t.State()})
	case "result":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET /v1/jobs/{id}/result"))
			return
		}
		s.writeResult(w, r, t)
	case "cancel":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST /v1/jobs/{id}/cancel"))
			return
		}
		t.Cancel()
		writeJSON(w, http.StatusOK, statusView{ID: t.ID, State: t.State()})
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no resource %q", sub))
	}
}

// writeResult blocks on the ticket under the request context, then renders
// the result. Execution errors are the job's outcome, not the transport's:
// they come back 200 with an error field.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, t *Ticket) {
	res, err := t.Wait(r.Context())
	if err != nil && res == nil && r.Context().Err() != nil {
		writeError(w, http.StatusGatewayTimeout, err)
		return
	}
	view := resultView{ID: t.ID, Result: res}
	if err != nil {
		view.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, view)
}

// resultView is the wire form of a completed job.
type resultView struct {
	ID     string  `json:"id"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, s.eng.Health())
}

// ClientOptions tunes a daemon client's failure detection. The zero value
// gets sane defaults via NewClient.
type ClientOptions struct {
	// ConnectTimeout bounds dialing the daemon (default 10s; negative =
	// none). Without it a daemon that blackholes SYNs (machine down, bad
	// route) blocks a -remote invocation until the kernel gives up.
	ConnectTimeout time.Duration
	// RequestTimeout bounds every individual request including the body
	// (0 = none). Leave it 0 for clients that legitimately block on
	// long-running jobs (Submit ?wait=1, Result); set it for probe-style
	// clients so a daemon that accepts connections but never answers —
	// hung worker, livelocked event loop — fails fast instead of hanging
	// the caller forever.
	RequestTimeout time.Duration
}

// Client is the remote face of the daemon: the same Submit/Stats surface as
// a local Engine, over its socket.
type Client struct {
	hc   *http.Client
	tr   *http.Transport
	base string
	opts ClientOptions
}

// NewClient targets addr (same forms SplitAddr accepts) with default
// options: a 10s connect timeout and no request timeout. Unix sockets get a
// dedicated dialer; the base URL host is then only decorative.
func NewClient(addr string) *Client {
	return NewClientWith(addr, ClientOptions{})
}

// NewClientWith is NewClient with explicit timeouts.
func NewClientWith(addr string, opts ClientOptions) *Client {
	if opts.ConnectTimeout == 0 {
		opts.ConnectTimeout = 10 * time.Second
	}
	network, address := SplitAddr(addr)
	dialer := &net.Dialer{}
	if opts.ConnectTimeout > 0 {
		dialer.Timeout = opts.ConnectTimeout
	}
	tr := &http.Transport{DialContext: dialer.DialContext}
	base := "http://" + address
	if network == "unix" {
		tr.DialContext = func(ctx context.Context, _, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, "unix", address)
		}
		base = "http://godetect"
	}
	return &Client{hc: &http.Client{Transport: tr}, tr: tr, base: base, opts: opts}
}

// Close releases the client's idle connections. A client is cheap but not
// free: each one keeps kept-alive sockets to its daemon, and a fleet
// coordinator cycling through many daemons must not leak them.
func (c *Client) Close() {
	c.tr.CloseIdleConnections()
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// 503 is the daemon's backpressure (full queue or draining):
			// wrap ErrBusy so schedulers can route the work elsewhere
			// instead of string-matching.
			if msg == "" {
				msg = "service unavailable"
			}
			return fmt.Errorf("daemon: %s (HTTP %d): %w", msg, resp.StatusCode, ErrBusy)
		}
		if msg != "" {
			return fmt.Errorf("daemon: %s (HTTP %d)", msg, resp.StatusCode)
		}
		return fmt.Errorf("daemon: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends the job and blocks for its result. A non-empty wire error is
// the job's execution error.
func (c *Client) Submit(ctx context.Context, job Job) (*Result, error) {
	var view resultView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", job, &view); err != nil {
		return nil, err
	}
	if view.Error != "" {
		return view.Result, errors.New(view.Error)
	}
	return view.Result, nil
}

// Enqueue submits without waiting and returns the job ID.
func (c *Client) Enqueue(ctx context.Context, job Job) (string, error) {
	var view statusView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", job, &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

// Status fetches a submitted job's state.
func (c *Client) Status(ctx context.Context, id string) (string, error) {
	var view statusView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &view); err != nil {
		return "", err
	}
	return view.State, nil
}

// Result blocks for (or fetches) a submitted job's result.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	var view resultView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &view); err != nil {
		return nil, err
	}
	if view.Error != "" {
		return view.Result, errors.New(view.Error)
	}
	return view.Result, nil
}

// Cancel asks the daemon to cancel a submitted job: queued jobs fold an
// immediate canceled verdict, running jobs stop dispatching and fold their
// partial work. Cancel of a done job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Stats fetches the daemon's engine counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Health fetches the daemon's load/liveness snapshot — the probe a fleet
// scheduler routes on. Callers should bound it with a short ctx (or a
// RequestTimeout client): a health check that can hang is no health check.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &h)
	return h, err
}

// WaitReady polls the daemon's stats endpoint until it answers or the
// deadline passes — the client-side half of daemon startup.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		probe, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
		_, err := c.Stats(probe)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready after %v: %w", timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}
