package engine

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"goconcbugs/internal/conformance"
	"goconcbugs/internal/detect"
	"goconcbugs/internal/explore"
	"goconcbugs/internal/harness"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/vet"
)

// execute runs one job to completion and renders its canonical text. The
// rendering is deliberately wall-time-free: equal jobs produce equal bytes
// whether computed here, served from the store, or printed by a remote
// client — the property the differential suite pins. ctx is the job's
// execution context (engine lifetime + job deadline + ticket cancel).
func (e *Engine) execute(ctx context.Context, pool *sim.RunPool, job Job) (*Result, error) {
	switch job.Kind {
	case KindSweep:
		return e.execSweep(ctx, pool, job)
	case KindRun:
		return e.execRun(ctx, job)
	case KindSystematic:
		return e.execSystematic(ctx, job)
	case KindConformance:
		return e.execConformance(ctx, job)
	}
	return nil, fmt.Errorf("engine: unknown job kind %q", job.Kind)
}

// ShardCheckpointName derives shard i's checkpoint file from the serial
// checkpoint base — the base itself stays reserved for the folded result.
// Exported because a fleet coordinator laying down InlineShard bytes must
// use exactly the names a local fold job will look for.
func ShardCheckpointName(base string, shard, shards int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", base, shard, shards)
}

// replayCommand is the one CLI command that reproduces run firstRun of a
// kernel sweep bit-identically: a single-run sweep whose base seeds are
// shifted so its run 0 is exactly the firing run. Empty for in-process
// program jobs (there is no CLI spelling for those).
func (j *Job) replayCommand(firstRun int) string {
	if j.prog != nil {
		return ""
	}
	cmd := fmt.Sprintf("go run ./cmd/godetect -kernel %s", j.Kernel)
	if j.Fixed {
		cmd += " -fixed"
	}
	cmd += fmt.Sprintf(" -runs 1 -seed %d", j.Seed+int64(firstRun))
	if inj := j.injOpts(); inj != nil {
		cmd += fmt.Sprintf(" -faults %d -faultseed %d", inj.Budget, inj.Seed+int64(firstRun))
		if inj.Aggressive {
			cmd += " -aggressive"
		}
	}
	return cmd
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// execSweep is the detector-pipeline job: a live sweep, an offline archive
// replay, a single shard, or a shard fold, all folding the same report.
func (e *Engine) execSweep(ctx context.Context, pool *sim.RunPool, job Job) (*Result, error) {
	r, err := job.resolve()
	if err != nil {
		return nil, err
	}
	dets := make([]detect.Detector, len(job.Detectors))
	for i, name := range job.Detectors {
		dets[i] = detect.MustLookup(name)
	}
	label := job.variantLabel()
	if inj := job.injOpts(); inj != nil {
		label += fmt.Sprintf(", %d faults/run", inj.Budget)
	}
	opts := detect.SweepOptions{
		Runs: job.Runs, BaseSeed: job.Seed, Config: r.cfgFor(job.Seed),
		Context:     ctx,
		InjectorFor: job.injectorFor(),
		Checkpoint:  job.Checkpoint,
		RecordDir:   job.RecordDir,
		Workers:     e.opts.SweepWorkers,
	}
	if e.opts.SweepWorkers == 1 {
		// Serial sweeps recycle the worker's warm runtime.
		opts.Pool = pool
	}
	var sw *detect.SweepReport
	var shardBytes []byte
	switch {
	case job.ReplayDir != "":
		if sw, err = detect.ReplayDir(job.ReplayDir, opts, dets...); err != nil {
			return nil, err
		}
		label += ", offline replay"
	case job.Fold:
		srcs := make([]string, job.Shards)
		for i := range srcs {
			srcs[i] = ShardCheckpointName(job.Checkpoint, i, job.Shards)
		}
		if sw, err = detect.MergeSweepCheckpoints(job.Checkpoint, srcs, opts, dets...); err != nil {
			return nil, err
		}
		label += fmt.Sprintf(", fold of %d shards", job.Shards)
	case job.Shards > 1:
		opts.ShardCount, opts.ShardIndex = job.Shards, job.Shard
		label += fmt.Sprintf(", shard %d/%d", job.Shard, job.Shards)
		if job.InlineShard {
			// The shard sweeps into a private temp checkpoint whose bytes
			// ship back in the result: same writer, same bytes as a shard
			// run against a -resume base, no shared filesystem needed.
			tmp, terr := os.CreateTemp("", "godetect-shard-*.ck")
			if terr != nil {
				return nil, fmt.Errorf("engine: inline shard checkpoint: %w", terr)
			}
			tmpPath := tmp.Name()
			tmp.Close()
			defer os.Remove(tmpPath)
			opts.Checkpoint = tmpPath
			sw = detect.Sweep(r.prog, opts, dets...)
			if shardBytes, err = os.ReadFile(tmpPath); err != nil {
				return nil, fmt.Errorf("engine: reading inline shard checkpoint: %w", err)
			}
		} else {
			opts.Checkpoint = ShardCheckpointName(job.Checkpoint, job.Shard, job.Shards)
			sw = detect.Sweep(r.prog, opts, dets...)
		}
	default:
		sw = detect.Sweep(r.prog, opts, dets...)
	}
	// Wall time is process-local; the canonical result carries none.
	for i := range sw.Detectors {
		sw.Detectors[i].Elapsed = 0
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %d runs, single pass per run): %s\n", r.name, label, sw.Runs, sw.Verdict)
	fired := false
	firstRun := -1
	for _, st := range sw.Detectors {
		status := "quiet"
		if st.Detected() {
			fired = true
			if firstRun < 0 || st.FirstRun < firstRun {
				firstRun = st.FirstRun
			}
			status = fmt.Sprintf("fired on %d/%d runs (first run %d)", st.DetectedRuns, sw.Runs, st.FirstRun)
		}
		fmt.Fprintf(&b, "    %-8s %-34s %9d events\n", st.Detector, status, st.Events)
		if st.Sample != "" {
			fmt.Fprintf(&b, "             e.g. %s\n", firstLine(st.Sample))
		}
	}
	if len(sw.Incomplete) > 0 {
		fmt.Fprintf(&b, "    %d incomplete run(s) (first: run %d, %s)\n",
			len(sw.Incomplete), sw.Incomplete[0].Run, sw.Incomplete[0].Reason)
	}
	if fired {
		if cmd := job.replayCommand(firstRun); cmd != "" {
			fmt.Fprintf(&b, "    replay: %s\n", cmd)
		}
	}
	return &Result{Job: job, Text: b.String(), Fired: fired, Verdict: sw.Verdict, Sweep: sw, ShardCheckpoint: shardBytes}, nil
}

// execRun is the plain seeded sampling sweep — the paper's
// run-it-many-times protocol with manifestation oracles and, on
// non-blocking kernels, the race detector; optionally also the usage-rule
// checker over the same seeds.
func (e *Engine) execRun(ctx context.Context, job Job) (*Result, error) {
	r, err := job.resolve()
	if err != nil {
		return nil, err
	}
	st := explore.Run(r.prog, explore.Options{
		Runs:        job.Runs,
		BaseSeed:    job.Seed,
		Config:      r.cfgFor(job.Seed),
		WithRace:    r.withRace,
		ShadowWords: job.Shadow,
		Workers:     e.opts.SweepWorkers,
		Context:     ctx,
		InjectorFor: job.injectorFor(),
	})
	label := job.variantLabel()
	if inj := job.injOpts(); inj != nil {
		label += fmt.Sprintf(", %d faults/run", inj.Budget)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %d runs): manifested %d, deadlock %d, leak %d, panic %d, check-fail %d, race-detected %d\n",
		r.name, label, st.Runs, st.Manifested, st.BuiltinDeadlocks, st.LeakRuns, st.Panics,
		st.CheckFailureRuns, st.RaceDetectedRuns)
	if st.Completed < st.Runs {
		fmt.Fprintf(&b, "    incomplete: %d/%d runs completed (%d host panics)\n", st.Completed, st.Runs, len(st.Errors))
	}
	for _, sample := range []string{st.SampleLeak, st.SamplePanic, st.SampleCheckFail, st.SampleRace} {
		if sample != "" {
			fmt.Fprintf(&b, "    e.g. %s\n", sample)
		}
	}
	fired := st.Manifested > 0 || st.RaceDetectedRuns > 0
	if fired {
		first := st.FirstManifestRun
		if first < 0 || (st.FirstDetectedRun >= 0 && st.FirstDetectedRun < first) {
			first = st.FirstDetectedRun
		}
		if cmd := job.replayCommand(first); cmd != "" {
			fmt.Fprintf(&b, "    replay: %s\n", cmd)
		}
	}
	if job.Vet {
		renderVet(&b, job, r)
	}

	var verdict harness.Verdict
	switch {
	case fired:
		verdict = harness.Verdict{Status: harness.Confirmed}
	case st.Completed == st.Runs:
		verdict = harness.Verdict{Status: harness.Refuted}
	case len(st.Errors) > 0:
		verdict = harness.Incompletef(harness.ReasonPanic, "%d of %d runs incomplete", st.Runs-st.Completed, st.Runs)
	default:
		reason := harness.ReasonCanceled
		if err := ctx.Err(); err != nil {
			reason = harness.CtxReason(err)
		}
		verdict = harness.Incompletef(reason, "%d of %d runs incomplete", st.Runs-st.Completed, st.Runs)
	}
	return &Result{Job: job, Text: b.String(), Fired: fired, Verdict: verdict}, nil
}

// renderVet sweeps the same seeds under the usage-rule checker and appends
// the distinct findings in sorted (deterministic) order.
func renderVet(b *strings.Builder, job Job, r resolved) {
	distinct := map[string]bool{}
	for i := 0; i < job.Runs; i++ {
		m, _ := vet.Check(r.cfgFor(job.Seed+int64(i)), r.prog)
		for _, v := range m.Violations() {
			distinct[v.String()] = true
		}
	}
	if len(distinct) == 0 {
		fmt.Fprintln(b, "    vet: no rule violations")
		return
	}
	findings := make([]string, 0, len(distinct))
	for v := range distinct {
		findings = append(findings, v)
	}
	sort.Strings(findings)
	for _, v := range findings {
		fmt.Fprintf(b, "    %s\n", v)
	}
}

// execSystematic exhaustively explores the schedule space, optionally with
// dynamic partial-order reduction.
func (e *Engine) execSystematic(ctx context.Context, job Job) (*Result, error) {
	r, err := job.resolve()
	if err != nil {
		return nil, err
	}
	res := explore.Systematic(r.prog, explore.SystematicOptions{
		Config:    r.cfgFor(0),
		MaxRuns:   job.MaxRuns,
		Reduction: job.DPOR,
		Context:   ctx,
	})
	mode := "full DFS"
	if job.DPOR {
		mode = "DPOR"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %s): %d schedules (complete=%v, max depth %d), %d failing — %s",
		r.name, job.variantLabel(), mode, res.Runs, res.Complete, res.MaxDepth, res.Failures, res.Verdict)
	if job.DPOR {
		fmt.Fprintf(&b, ", pruned %d, sleep-set hits %d", res.SchedulesPruned, res.SleepSetHits)
	}
	b.WriteString("\n")
	if res.FirstFailure != nil {
		fmt.Fprintf(&b, "    first failing decision sequence: %v\n", res.FailureSchedule)
	}
	return &Result{Job: job, Text: b.String(), Fired: res.Failures > 0, Verdict: res.Verdict}, nil
}

// execConformance differentially tests the sim against the real Go runtime
// on generated programs. Host outcome counts depend on the real scheduler,
// so this is the one kind whose text is not a pure function of the job —
// it is engine-routable (the daemon can serve it) but never cached.
func (e *Engine) execConformance(ctx context.Context, job Job) (*Result, error) {
	fams, err := conformance.ParseFamilies(job.Families)
	if err != nil {
		return nil, err
	}
	st := conformance.Sweep(conformance.SweepOptions{
		Programs: job.Programs,
		BaseSeed: job.Seed,
		Context:  ctx,
		Check:    conformance.CheckOptions{Families: &fams},
	})
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d programs from seed %d — %d checked, %d strict (complete exploration), %d sim schedules — %s\n",
		st.Programs, job.Seed, st.Completed, st.Strict, st.Schedules, st.Verdict)
	fmt.Fprintf(&b, "host outcomes: done %d, hung %d, panic %d; must-deadlock confirmed hung: %d\n",
		st.HostKinds[conformance.KindDone], st.HostKinds[conformance.KindHung],
		st.HostKinds[conformance.KindPanic], st.AllHungConfirmed)
	fmt.Fprintf(&b, "kind coverage (programs containing each statement kind, %d liveness-checked):\n", st.SignalGuaranteed)
	for _, k := range conformance.AllStmtKinds {
		if n := st.KindCoverage[k]; n > 0 {
			fmt.Fprintf(&b, "  %-16s %d\n", k, n)
		}
	}
	if st.StepLimited > 0 {
		fmt.Fprintf(&b, "WARNING: %d schedules hit the sim step budget (harness bug: IR programs are loop-free)\n", st.StepLimited)
	}
	if len(st.Divergences) == 0 {
		fmt.Fprintln(&b, "no divergences")
	} else {
		for _, d := range st.Divergences {
			fmt.Fprintf(&b, "\n%v\n", d)
		}
		fmt.Fprintf(&b, "\n%d divergence(s)\n", len(st.Divergences))
	}
	return &Result{Job: job, Text: b.String(), Fired: len(st.Divergences) > 0, Verdict: st.Verdict}, nil
}
