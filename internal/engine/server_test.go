package engine

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// startServer runs a daemon on a unix socket (or TCP addr) backed by a
// fresh store, returning a connected client.
func startServer(t *testing.T, addr string) (*Client, *Engine) {
	t.Helper()
	eng := New(Options{Workers: 2, SweepWorkers: 1, Store: newStore(t)})
	t.Cleanup(eng.Close)
	srv := NewServer(eng)
	if err := srv.Listen(addr); err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	var c *Client
	if addr == "127.0.0.1:0" {
		c = NewClient(srv.Addr().String())
	} else {
		c = NewClient(addr)
	}
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return c, eng
}

// A daemon-served result must be byte-identical to the same job computed by
// a local engine — over a unix socket, cold and warm.
func TestDaemonMatchesLocalUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "d.sock")
	c, _ := startServer(t, "unix://"+sock)
	ctx := context.Background()

	local := newEngine(t, Options{Workers: 1, SweepWorkers: 1})
	want, err := local.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatal(err)
	}

	cold, err := c.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Text != want.Text {
		t.Fatalf("daemon cold text diverged:\nlocal:\n%s\ndaemon:\n%s", want.Text, cold.Text)
	}
	if cold.CacheHit {
		t.Fatal("first daemon submit reported a hit")
	}
	warm, err := c.Submit(ctx, sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Text != want.Text {
		t.Fatalf("daemon warm: hit=%v identical=%v", warm.CacheHit, warm.Text == want.Text)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 2 || st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("daemon stats %+v, want 2 submitted / 1 executed / 1 hit", st)
	}
	if st.Store == nil || st.Store.Entries != 1 {
		t.Fatalf("store stats %+v, want 1 entry", st.Store)
	}
}

func TestDaemonTCPAndAsyncAPI(t *testing.T) {
	c, _ := startServer(t, "127.0.0.1:0")
	ctx := context.Background()

	id, err := c.Enqueue(ctx, sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty job id")
	}
	if _, err := c.Status(ctx, id); err != nil {
		t.Fatalf("status: %v", err)
	}
	res, err := c.Result(ctx, id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res == nil || res.Text == "" {
		t.Fatal("empty result over TCP")
	}
	state, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if state != "done" {
		t.Fatalf("state %q after result, want done", state)
	}
	if _, err := c.Status(ctx, "j-999999"); err == nil {
		t.Fatal("unknown job id did not error")
	}
}

// Invalid jobs are rejected at the API boundary with a client-visible error.
func TestDaemonRejectsInvalidJob(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "d.sock")
	c, _ := startServer(t, sock) // bare path form
	_, err := c.Submit(context.Background(), Job{Kind: KindSweep, Kernel: "no-such-kernel", Detectors: []string{"cycle"}})
	if err == nil {
		t.Fatal("invalid job accepted")
	}
}
