package engine

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goconcbugs/internal/harness"
)

// TestClientTimeouts is the stalled-daemon table: a server that accepts the
// connection but never answers (hung worker, wedged event loop) must not
// block a client forever once a request timeout or context deadline is in
// play — and must block when the caller asked for no bound (the legitimate
// long-wait Submit path), which we verify by observing the stall outlive a
// generous grace period via the request context.
func TestClientTimeouts(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold the request open until the client gives up
	}))
	defer stall.Close()
	addr := strings.TrimPrefix(stall.URL, "http://")

	cases := []struct {
		name    string
		opts    ClientOptions
		ctx     func() (context.Context, context.CancelFunc)
		within  time.Duration
		wantErr bool
	}{
		{
			name:   "request timeout cuts a stalled response",
			opts:   ClientOptions{RequestTimeout: 100 * time.Millisecond},
			ctx:    func() (context.Context, context.CancelFunc) { return context.WithCancel(context.Background()) },
			within: 5 * time.Second, wantErr: true,
		},
		{
			name: "context deadline cuts a stalled response",
			opts: ClientOptions{},
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 100*time.Millisecond)
			},
			within: 5 * time.Second, wantErr: true,
		},
		{
			name: "caller cancellation cuts a stalled response",
			opts: ClientOptions{},
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(50 * time.Millisecond); cancel() }()
				return ctx, func() {}
			},
			within: 5 * time.Second, wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewClientWith(addr, tc.opts)
			defer c.Close()
			ctx, cancel := tc.ctx()
			defer cancel()
			start := time.Now()
			_, err := c.Stats(ctx)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if d := time.Since(start); d > tc.within {
				t.Fatalf("request took %v, want under %v", d, tc.within)
			}
		})
	}
}

// TestClientConnectTimeout: dialing a dead address fails within the connect
// bound instead of the kernel's (minutes-long) default.
func TestClientConnectTimeout(t *testing.T) {
	// A unix socket path that exists for no listener: dial fails instantly,
	// which exercises the error path; the timeout bound is what we pin.
	c := NewClientWith("unix://"+filepath.Join(t.TempDir(), "absent.sock"), ClientOptions{ConnectTimeout: 200 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("dialing a dead socket succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("dead dial took %v", d)
	}
}

// TestClient503MapsToErrBusy: the daemon's backpressure answer classifies
// via errors.Is so schedulers can reroute instead of string-matching.
func TestClient503MapsToErrBusy(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"engine: job queue full"}`))
	}))
	defer busy.Close()
	c := NewClient(strings.TrimPrefix(busy.URL, "http://"))
	defer c.Close()
	_, err := c.Enqueue(context.Background(), sweepJob())
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("503 mapped to %v, want errors.Is(ErrBusy)", err)
	}
}

// TestHealthEndpoint: the daemon's health view carries the load numbers a
// scheduler routes on, and the store hit rate reflects lookups.
func TestHealthEndpoint(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "h.sock")
	c, eng := startServer(t, "unix://"+sock)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueCapacity <= 0 {
		t.Fatalf("health = %+v, want ok / 2 workers / positive queue capacity", h)	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime %v negative", h.UptimeSeconds)
	}

	if _, err := c.Submit(ctx, sweepJob()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, sweepJob()); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Executed != 1 {
		t.Fatalf("health executed = %d, want 1 (second submit was a hit)", h.Executed)
	}
	if h.StoreHitRate <= 0 || h.StoreHitRate > 1 {
		t.Fatalf("store hit rate = %v, want in (0, 1]", h.StoreHitRate)
	}
	if got := eng.Health(); got.Status != "ok" {
		t.Fatalf("local health status %q", got.Status)
	}
}

// TestCancelRunningJob: canceling an in-flight sweep stops dispatch and
// folds the partial work instead of hanging or running to completion. The
// verdict may be Confirmed (the detector fired in the completed prefix) or
// Incomplete — the cancellation observable is partial completion, which is
// exactly why a fleet scheduler must requeue on Completed < Runs rather
// than trusting the verdict alone.
func TestCancelRunningJob(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1})
	// A big sweep so cancellation lands mid-flight.
	job := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 2_000_000, Seed: 1, Detectors: []string{"cycle"}}
	tk, err := e.Enqueue(job)
	if err != nil {
		t.Fatal(err)
	}
	for tk.State() != "running" {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	tk.Cancel()
	if !tk.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("canceled job errored at the transport level: %v", err)
	}
	if res.Sweep == nil || res.Sweep.Completed >= job.Runs {
		t.Fatalf("canceled sweep completed all %d runs — cancellation did not stop dispatch", job.Runs)
	}
}

// TestCancelQueuedJob: a job canceled before a worker picks it up completes
// promptly with an Incomplete verdict — the worker does not burn the full
// sweep on a dead ticket.
func TestCancelQueuedJob(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1})
	// Occupy the single worker.
	blocker, err := e.Enqueue(Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 500, Seed: 1, Detectors: []string{"cycle"}})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := e.Enqueue(Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 1_000_000, Seed: 99, Detectors: []string{"cycle"}})
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := victim.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Status != harness.Incomplete {
		t.Fatalf("verdict = %v, want incomplete", res.Verdict)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("pre-canceled job still ran for %v", d)
	}
}

// TestCancelOverDaemonAPI drives POST /v1/jobs/{id}/cancel end to end.
func TestCancelOverDaemonAPI(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "c.sock")
	c, _ := startServer(t, "unix://"+sock)
	ctx := context.Background()

	const runs = 2_000_000
	id, err := c.Enqueue(ctx, Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: runs, Seed: 1, Detectors: []string{"cycle"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	res, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || res.Sweep.Completed >= runs {
		t.Fatalf("remotely canceled sweep completed all %d runs — cancel endpoint did not reach the job", runs)
	}
	if err := c.Cancel(ctx, "j-424242"); err == nil {
		t.Fatal("cancel of unknown job did not error")
	}
}

// TestInlineShardMatchesFileShard: the bytes an InlineShard job ships back
// are exactly the checkpoint a filesystem shard run writes — the invariant
// that lets a fleet coordinator fold remote shards byte-identically to a
// serial sweep.
func TestInlineShardMatchesFileShard(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, Options{Workers: 1, SweepWorkers: 1})
	ctx := context.Background()

	base := filepath.Join(dir, "sweep.ck")
	const shards = 3
	var inline [][]byte
	for s := 0; s < shards; s++ {
		fileJob := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 30, Seed: 7,
			Detectors: []string{"cycle"}, Shards: shards, Shard: s, Checkpoint: base}
		if _, err := e.Submit(ctx, fileJob); err != nil {
			t.Fatal(err)
		}
		inlineJob := fileJob
		inlineJob.Checkpoint = ""
		inlineJob.InlineShard = true
		res, err := e.Submit(ctx, inlineJob)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ShardCheckpoint) == 0 {
			t.Fatalf("shard %d: empty inline checkpoint", s)
		}
		inline = append(inline, res.ShardCheckpoint)

		fileBytes, err := os.ReadFile(ShardCheckpointName(base, s, shards))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.ShardCheckpoint, fileBytes) {
			t.Fatalf("shard %d: inline bytes differ from filesystem shard checkpoint", s)
		}
	}

	// Folding the inline bytes laid down under a fresh base reproduces the
	// canonical fold.
	base2 := filepath.Join(dir, "fleet.ck")
	for s, data := range inline {
		if err := os.WriteFile(ShardCheckpointName(base2, s, shards), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	foldJob := Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 30, Seed: 7,
		Detectors: []string{"cycle"}, Shards: shards, Fold: true, Checkpoint: base2}
	res, err := e.Submit(ctx, foldJob)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Submit(ctx, Job{Kind: KindSweep, Kernel: "docker-abba-order", Runs: 30, Seed: 7, Detectors: []string{"cycle"}})
	if err != nil {
		t.Fatal(err)
	}
	norm := strings.Replace(res.Text, ", fold of 3 shards", "", 1)
	if norm != serial.Text {
		t.Fatalf("fold text differs from serial:\nfold:\n%s\nserial:\n%s", res.Text, serial.Text)
	}
}

// TestInlineShardValidation: the flag composes only with a sharded,
// non-fold, checkpoint-free sweep.
func TestInlineShardValidation(t *testing.T) {
	bad := []Job{
		{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"cycle"}, InlineShard: true},
		{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"cycle"}, InlineShard: true, Shards: 4, Fold: true, Checkpoint: "x"},
		{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"cycle"}, InlineShard: true, Shards: 4, Shard: 0, Checkpoint: "x"},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d validated", i)
		}
	}
	good := Job{Kind: KindSweep, Kernel: "docker-abba-order", Detectors: []string{"cycle"}, InlineShard: true, Shards: 4, Shard: 1}
	good.normalize()
	if err := good.Validate(); err != nil {
		t.Errorf("good inline shard job rejected: %v", err)
	}
}
