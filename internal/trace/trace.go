// Package trace is the durable form of the unified event stream: a
// compact, versioned binary codec ("trace/v1") that archives simulated
// runs — every event of package event's 37-kind taxonomy plus the run's
// final sim.Result — so sweeps can be stored, replayed, and re-judged by
// detectors that did not exist when the run executed.
//
// The paper's own methodology is post-hoc: bugs were studied from recorded
// histories, not live executions. The codec is that decoupling for this
// repository — observation (a live sim.Run with a Recorder attached) and
// detection (detect.RunAllTrace over the archived stream) become separate
// phases, and an archive is a corpus any future detector can be run over.
//
// # File format (trace/v1)
//
// A trace file is a magic header followed by zero or more self-contained
// run frames:
//
//	file   := magic("gocbtrc1") version(uvarint, =1) run*
//	run    := tagRun(0x01) header event* tagEnd(0x00) trailer
//	header := fingerprint name (raw strings) run runs baseSeed seed
//	          maxSteps leakThreshold faultPlan(len-prefixed bytes)
//	event  := kind(byte, 1..NumKinds-1) g gname dStep dTime flags payload…
//
// Integers are LEB128 varints, signed values zigzag-encoded. Strings after
// the run header go through a per-run interning table: a reference is the
// string's 1-based id, or 0 followed by the literal bytes, which assigns
// the next id — so the table is rebuilt deterministically on decode and
// never stored. Steps and times are delta-encoded against the previous
// event; vector clocks are delta-encoded component-wise against the same
// goroutine's previously recorded clock. The trailer carries the complete
// sim.Result (outcomes, goroutine records, panics, check failures) so
// Result-only detectors re-judge an archived run exactly, plus the
// recorded fault plan when the run was fault-injected.
//
// Because the intern table, delta state, and scratch buffers are per-run,
// every frame is position-independent: frames recorded by different shard
// processes concatenate (or sit in per-run files) and replay identically
// to a serial recording.
//
// # Stability
//
// The numeric values of event.Kind and of sim's Outcome/GState/BlockKind
// enums are part of this wire format. They are append-only: inserting or
// reordering values breaks every archived trace, which the golden-file and
// kind-pinning tests under this package fail loudly on. Format changes
// bump the version; NewReader rejects unknown versions with a
// *VersionError rather than misreading data.
package trace

import (
	"fmt"
	"io"

	"goconcbugs/internal/event"
	"goconcbugs/internal/sim"
)

// Magic begins every trace file; the trailing '1' is the human-readable
// echo of the format major version.
const Magic = "gocbtrc1"

// Version is the codec version this package writes and the only one it
// reads.
const Version = 1

// Frame tags. Event kinds 1..NumKinds-1 double as in-run record tags, so
// the end-of-events marker reuses Kind 0 (KindInvalid, never emitted).
const (
	tagEnd = 0x00
	tagRun = 0x01
)

// Decode limits: corrupt length prefixes fail with a *FormatError instead
// of attempting a multi-gigabyte allocation.
const (
	maxStringLen = 1 << 20
	maxSliceLen  = 1 << 20
	maxVCLen     = 1 << 16
	maxBlobLen   = 1 << 24
)

// flushSize is the write-buffer threshold, the same streaming discipline
// as sim.ChromeTraceSink: O(1) memory regardless of trace length.
const flushSize = 32 << 10

// RunMeta is a run frame's header: everything needed to attribute the
// archived run and re-execute it bit-identically.
type RunMeta struct {
	// Fingerprint identifies the producer (kernel/config/sweep options,
	// detector-set excluded — re-judging with new detectors is the point).
	// Replay paths compare it before trusting an archive.
	Fingerprint string
	// Name is the run's sim.Config.Name (the kernel id).
	Name string
	// Run and Runs place the frame in its sweep: run index and sweep
	// length (0 and 1 for a standalone recording).
	Run  int
	Runs int
	// BaseSeed is the sweep's first seed; Seed the run's own.
	BaseSeed int64
	Seed     int64
	// MaxSteps and LeakThreshold mirror sim.Config.
	MaxSteps      int64
	LeakThreshold int64
	// FaultPlan is the fault injector's pre-run plan specification as
	// JSON (package inject's Plan with seed/budget/mode and no recorded
	// faults yet); nil when the run was not injected. The post-run plan,
	// faults included, lives in the trailer (Reader.FaultPlan).
	FaultPlan []byte
}

// Writer streams trace frames to w. Create one per output file; BeginRun
// opens each run frame. Like the Chrome-trace sink, write failures make
// the writer go quiet rather than disturb the simulation — check Err (or
// the error from FinishRun/Flush) after the run.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewWriter starts a trace file on w (the magic header is buffered
// immediately).
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: w, buf: make([]byte, 0, flushSize+1024)}
	tw.buf = append(tw.buf, Magic...)
	tw.buf = appendUvarint(tw.buf, Version)
	return tw
}

// Err returns the first write error, if any.
func (tw *Writer) Err() error { return tw.err }

// Flush drains the buffer to the underlying writer.
func (tw *Writer) Flush() error {
	if tw.err == nil && len(tw.buf) > 0 {
		if _, err := tw.w.Write(tw.buf); err != nil {
			tw.err = err
		}
		tw.buf = tw.buf[:0]
	}
	return tw.err
}

func (tw *Writer) maybeFlush() {
	if len(tw.buf) >= flushSize {
		_ = tw.Flush()
	}
}

// BeginRun writes a run frame header and returns the Recorder that encodes
// the run's event stream. The Recorder is an event.Sink subscribing to
// every kind — attach it to sim.Config.Sinks — and the caller must close
// the frame with FinishRun after the run returns. One run at a time per
// Writer.
func (tw *Writer) BeginRun(meta RunMeta) *Recorder {
	tw.buf = append(tw.buf, tagRun)
	tw.buf = appendRawString(tw.buf, meta.Fingerprint)
	tw.buf = appendRawString(tw.buf, meta.Name)
	tw.buf = appendUvarint(tw.buf, uint64(meta.Run))
	tw.buf = appendUvarint(tw.buf, uint64(meta.Runs))
	tw.buf = appendVarint(tw.buf, meta.BaseSeed)
	tw.buf = appendVarint(tw.buf, meta.Seed)
	tw.buf = appendVarint(tw.buf, meta.MaxSteps)
	tw.buf = appendVarint(tw.buf, meta.LeakThreshold)
	tw.buf = appendBlob(tw.buf, meta.FaultPlan)
	tw.maybeFlush()
	return &Recorder{tw: tw, strs: map[string]uint64{}}
}

// Recorder encodes one run's event stream into its Writer's frame. It is
// an event.Sink (plus RunEnder); everything it reads from an Event is
// copied into the output during the callback, honoring package event's
// ownership rules.
type Recorder struct {
	tw   *Writer
	strs map[string]uint64 // intern table: string -> 1-based id
	prevStep, prevTime int64
	vcs   [][]uint64 // per-goroutine previously recorded clock
	ended bool
}

// Kinds implements event.Sink: a recorder archives the full stream.
func (r *Recorder) Kinds() []event.Kind { return event.AllKinds() }

// Flag bits selecting which optional payload fields an event carries.
const (
	flagVC = 1 << iota
	flagHeld
	flagObj
	flagVar
	flagCounter
	flagDelta
	flagAux
	flagDec
	flagDetail
	flagSched
)

// Event implements event.Sink.
func (r *Recorder) Event(ev *event.Event) {
	tw := r.tw
	if tw.err != nil {
		return
	}
	var flags uint64
	vcSpan := ev.VC.Span()
	if vcSpan > 0 {
		flags |= flagVC
	}
	if len(ev.HeldLocks) > 0 {
		flags |= flagHeld
	}
	if ev.Obj != "" || ev.ObjID != 0 {
		flags |= flagObj
	}
	if ev.Var != nil {
		flags |= flagVar
	}
	if ev.Counter != 0 {
		flags |= flagCounter
	}
	if ev.Delta != 0 {
		flags |= flagDelta
	}
	if ev.Aux != 0 {
		flags |= flagAux
	}
	if ev.Dec != 0 {
		flags |= flagDec
	}
	if ev.Detail != "" {
		flags |= flagDetail
	}
	if ev.Sched != nil {
		flags |= flagSched
	}

	b := tw.buf
	b = append(b, byte(ev.Kind))
	b = appendUvarint(b, uint64(ev.G))
	b = r.ref(b, ev.GName)
	b = appendVarint(b, ev.Step-r.prevStep)
	b = appendVarint(b, ev.Time-r.prevTime)
	r.prevStep, r.prevTime = ev.Step, ev.Time
	b = appendUvarint(b, flags)

	if flags&flagVC != 0 {
		b = r.appendVC(b, ev.G, vcSpan, ev.VC.Get)
	}
	if flags&flagHeld != 0 {
		b = appendUvarint(b, uint64(len(ev.HeldLocks)))
		for _, l := range ev.HeldLocks {
			b = r.ref(b, l)
		}
	}
	if flags&flagObj != 0 {
		b = r.ref(b, ev.Obj)
		b = appendVarint(b, int64(ev.ObjID))
	}
	if flags&flagVar != 0 {
		b = appendVarint(b, int64(ev.Var.ID))
		b = r.ref(b, ev.Var.Name)
		b = appendVarint(b, int64(ev.Var.CreatedBy))
	}
	if flags&flagCounter != 0 {
		b = appendVarint(b, int64(ev.Counter))
	}
	if flags&flagDelta != 0 {
		b = appendVarint(b, int64(ev.Delta))
	}
	if flags&flagAux != 0 {
		b = appendUvarint(b, uint64(ev.Aux))
	}
	if flags&flagDec != 0 {
		b = appendVarint(b, int64(ev.Dec))
	}
	if flags&flagDetail != 0 {
		b = r.ref(b, ev.Detail)
	}
	if flags&flagSched != 0 {
		s := ev.Sched
		b = appendUvarint(b, uint64(s.G))
		b = appendVarint(b, int64(s.Decision))
		b = appendVarint(b, int64(s.Preferred))
		b = appendUvarint(b, uint64(len(s.OptionGs)))
		for _, g := range s.OptionGs {
			b = appendUvarint(b, uint64(g))
		}
		b = appendUvarint(b, uint64(len(s.Ops)))
		for _, op := range s.Ops {
			cb := byte(op.Class) << 1
			if op.Write {
				cb |= 1
			}
			b = append(b, cb)
			b = appendVarint(b, int64(op.ID))
		}
	}
	tw.buf = b
	tw.maybeFlush()
}

// appendVC delta-encodes an n-component clock against goroutine g's
// previously recorded clock, then remembers the new one.
func (r *Recorder) appendVC(b []byte, g, n int, get func(int) uint64) []byte {
	for len(r.vcs) <= g {
		r.vcs = append(r.vcs, nil)
	}
	prev := r.vcs[g]
	b = appendUvarint(b, uint64(n))
	if cap(prev) < n {
		np := make([]uint64, n)
		copy(np, prev)
		prev = np
	} else {
		for i := len(prev); i < n; i++ {
			prev = prev[:i+1]
			prev[i] = 0
		}
		prev = prev[:n]
	}
	for i := 0; i < n; i++ {
		c := get(i)
		b = appendVarint(b, int64(c-prev[i]))
		prev[i] = c
	}
	r.vcs[g] = prev
	return b
}

// RunEnd implements event.RunEnder: it marks the end of the event section.
// The frame stays open until FinishRun supplies the run's Result.
func (r *Recorder) RunEnd() {
	if r.ended || r.tw.err != nil {
		return
	}
	r.ended = true
	r.tw.buf = append(r.tw.buf, tagEnd)
}

// FinishRun closes the frame with the run's Result and, when the run was
// fault-injected, the recorded plan (JSON, faults included) — then flushes.
// It writes the end-of-events marker itself if no RunEnd was delivered
// (a run that panicked on the host side never reaches the mux's RunEnd).
func (r *Recorder) FinishRun(res *sim.Result, faultPlan []byte) error {
	r.RunEnd()
	tw := r.tw
	if tw.err != nil {
		return tw.err
	}
	b := tw.buf
	b = r.ref(b, res.Name)
	b = appendVarint(b, res.Seed)
	b = append(b, byte(res.Outcome))
	b = appendVarint(b, res.Steps)
	b = appendVarint(b, res.VirtualTime)
	b = appendUvarint(b, uint64(res.GoroutinesCreated))
	b = appendUvarint(b, uint64(res.RandDraws))
	b = r.ref(b, res.DeadlockReport)
	b = r.appendGoroutines(b, res.Goroutines)
	b = r.appendGoroutines(b, res.Leaked)
	b = r.appendGoroutines(b, res.Blocked)
	b = appendUvarint(b, uint64(len(res.Panics)))
	for _, p := range res.Panics {
		b = appendUvarint(b, uint64(p.G))
		b = r.ref(b, p.Name)
		b = r.ref(b, p.Msg)
		b = appendVarint(b, p.Step)
	}
	b = appendUvarint(b, uint64(len(res.CheckFailures)))
	for _, f := range res.CheckFailures {
		b = r.ref(b, f)
	}
	b = appendBlob(b, faultPlan)
	tw.buf = b
	return tw.Flush()
}

func (r *Recorder) appendGoroutines(b []byte, gs []sim.GoroutineInfo) []byte {
	b = appendUvarint(b, uint64(len(gs)))
	for _, g := range gs {
		b = appendUvarint(b, uint64(g.ID))
		b = r.ref(b, g.Name)
		b = append(b, byte(g.State), byte(g.BlockKind))
		b = r.ref(b, g.BlockObj)
		b = appendVarint(b, g.CreatedStep)
		b = appendVarint(b, g.CreatedTime)
		b = appendVarint(b, g.EndTime)
		b = appendVarint(b, g.BlockedSince)
		b = appendUvarint(b, uint64(len(g.HeldLocks)))
		for _, l := range g.HeldLocks {
			b = r.ref(b, l)
		}
	}
	return b
}

// ref appends an interned string reference: the known 1-based id, or 0
// followed by the literal, which assigns the next id (decode mirrors this).
func (r *Recorder) ref(b []byte, s string) []byte {
	if id, ok := r.strs[s]; ok {
		return appendUvarint(b, id)
	}
	r.strs[s] = uint64(len(r.strs)) + 1
	b = appendUvarint(b, 0)
	return appendRawString(b, s)
}

// Record archives one live run: it runs prog under cfg with a streaming
// Recorder appended to cfg.Sinks, writing a single-frame trace/v1 file to
// w, and returns the run's Result. Meta's Name/Seed/MaxSteps/LeakThreshold
// are filled from cfg when zero. Fault-injected runs that need the
// recorded plan in the trailer should drive Writer/BeginRun/FinishRun
// directly (detect's sweep recorder does).
func Record(w io.Writer, meta RunMeta, cfg sim.Config, prog sim.Program) (*sim.Result, error) {
	if meta.Name == "" {
		meta.Name = cfg.Name
	}
	if meta.Seed == 0 {
		meta.Seed = cfg.Seed
	}
	if meta.MaxSteps == 0 {
		meta.MaxSteps = cfg.MaxSteps
	}
	if meta.LeakThreshold == 0 {
		meta.LeakThreshold = cfg.LeakThreshold
	}
	if meta.Runs == 0 {
		meta.Runs = 1
	}
	if meta.Fingerprint == "" {
		meta.Fingerprint = fmt.Sprintf("run/v1 prog=%s seed=%d", meta.Name, meta.Seed)
	}
	tw := NewWriter(w)
	rec := tw.BeginRun(meta)
	cfg.Sinks = append(cfg.Sinks[:len(cfg.Sinks):len(cfg.Sinks)], rec)
	res := sim.Run(cfg, prog)
	if err := rec.FinishRun(res, nil); err != nil {
		return res, err
	}
	return res, nil
}

// appendUvarint appends v as an unsigned LEB128 varint.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarint appends v zigzag-encoded.
func appendVarint(b []byte, v int64) []byte {
	return appendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// appendRawString appends a length-prefixed literal string (header fields
// and intern-table definitions).
func appendRawString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBlob appends a length-prefixed byte blob; nil and empty both encode
// as length 0 and decode as nil.
func appendBlob(b, blob []byte) []byte {
	b = appendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}
