package trace_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/trace"
)

// encodeSeed builds a canonical single-frame trace by hand for the fuzz
// corpus: meta plus a synthetic event sequence exercising the optional
// payload flags.
func encodeSeed(meta trace.RunMeta, events []event.Event, res *sim.Result) []byte {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	rec := tw.BeginRun(meta)
	for i := range events {
		rec.Event(&events[i])
	}
	if err := rec.FinishRun(res, meta.FaultPlan); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzSeeds builds the named seed inputs: the in-process f.Add seeds and
// the checked-in corpus under testdata/fuzz/FuzzTraceRoundTrip (regenerated
// by TestWriteFuzzCorpus -update) are the same list.
func fuzzSeeds() []struct {
	name string
	data []byte
} {
	type seed = struct {
		name string
		data []byte
	}
	var seeds []seed
	// Empty run: header + end marker + zero Result.
	seeds = append(seeds, seed{"empty-run",
		encodeSeed(trace.RunMeta{Name: "empty", Runs: 1}, nil, &sim.Result{})})
	// Single event, minimal fields.
	seeds = append(seeds, seed{"single-event",
		encodeSeed(trace.RunMeta{Name: "one", Runs: 1},
			[]event.Event{{Kind: event.GoExit, G: 1, GName: "main", Step: 1, Time: 50}},
			&sim.Result{Name: "one", Outcome: sim.OutcomeOK})})
	// Extreme Counter/Delta/Detail values and a fault plan blob.
	seeds = append(seeds, seed{"max-values",
		encodeSeed(trace.RunMeta{Name: "max", Runs: 1, FaultPlan: []byte(`{"seed":1,"budget":2,"faults":[]}`)},
			[]event.Event{
				{Kind: event.WGAdd, G: 1, Counter: int(^uint(0) >> 1), Delta: -(int(^uint(0)>>1) - 1), Detail: strings.Repeat("x", 512)},
				{Kind: event.FaultInject, G: 2, Obj: "ch", ObjID: -9, Counter: 3, Detail: "oversleep"},
			},
			&sim.Result{Name: "max", Steps: 1 << 40, VirtualTime: -5})})
	// A real kernel recording (all payload kinds, interning, VC deltas).
	k, _ := kernels.ByID("docker-abba-order")
	var kbuf bytes.Buffer
	if _, err := trace.Record(&kbuf, trace.RunMeta{}, k.Config(11), k.Buggy); err != nil {
		panic(err)
	}
	seeds = append(seeds, seed{"kernel-run", kbuf.Bytes()})
	// Rejection cases: truncated file and corrupt header.
	seeds = append(seeds, seed{"truncated", kbuf.Bytes()[:len(kbuf.Bytes())/2]})
	seeds = append(seeds, seed{"corrupt-header", []byte("NOTATRACE-corrupt-header")})
	seeds = append(seeds, seed{"future-version", []byte(trace.Magic + "\x02")})
	return seeds
}

// TestWriteFuzzCorpus (-update) checks the seed inputs in as corpus files,
// so `go test -fuzz` starts from them even on machines without the build
// cache and the rejection cases are pinned as plain files.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the checked-in fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seed := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed.data)))
		if err := os.WriteFile(filepath.Join(dir, seed.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzTraceRoundTrip throws arbitrary bytes at the decoder and checks two
// properties. Robustness: decoding never panics, returning structured
// errors on garbage. Canonical round-trip: when the input IS a well-formed
// trace, re-encoding the decoded stream is itself decodable and a second
// re-encode reproduces it byte for byte — the encoder is a fixpoint, so
// decode(encode(stream)) == stream and archives survive arbitrarily many
// rewrite cycles unchanged.
func FuzzTraceRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed.data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Robustness: arbitrary bytes must decode to a structured error or
		// a valid stream, never a panic or runaway allocation.
		first, err := reencode(data)
		if err != nil {
			return
		}
		// data was well-formed. Its canonical re-encoding must round-trip
		// to a byte-identical fixpoint.
		second, err := reencode(first)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("re-encode is not a fixpoint: %d bytes then %d bytes", len(first), len(second))
		}
	})
}
