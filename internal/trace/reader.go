package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
	"goconcbugs/internal/sim"
)

// FormatError reports a malformed or truncated trace file. It is the
// structured decode failure: corrupt archives produce one of these (never
// a panic), with the byte offset of the first inconsistency.
type FormatError struct {
	Offset int64
	Reason string
	Err    error // wrapped cause (io.ErrUnexpectedEOF for truncation), may be nil
}

func (e *FormatError) Error() string {
	msg := fmt.Sprintf("trace: corrupt trace at byte %d: %s", e.Offset, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *FormatError) Unwrap() error { return e.Err }

// VersionError reports a trace written by a codec version this package
// does not read.
type VersionError struct {
	Version uint64
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("trace: version %d not supported (this reader speaks trace/v%d)", e.Version, Version)
}

// FingerprintError reports an archive whose recorded identity does not
// match what the replaying caller expected — replaying it would attribute
// verdicts to the wrong program or options.
type FingerprintError struct {
	Have, Want string
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("trace: fingerprint mismatch:\n  archive: %q\n  want:    %q", e.Have, e.Want)
}

// Reader decodes a trace/v1 file run frame by run frame. Typical use:
//
//	tr, err := trace.NewReader(f)
//	for {
//		meta, err := tr.NextRun()   // io.EOF after the last frame
//		res, err := tr.Replay(mux)  // dispatch the archived stream
//	}
//
// The events delivered during Replay follow package event's ownership
// rules: the *Event and its slices are reused across emissions.
type Reader struct {
	br  *bufio.Reader
	off int64
	err error

	inRun bool
	meta  RunMeta
	strs  []string
	prevStep, prevTime int64
	vcs [][]uint64

	// Reused event scratch state.
	ev    event.Event
	vc    hb.VC
	held  []string
	sched event.SchedStep
	vmeta event.VarMeta

	faultPlan []byte
}

// NewReader begins decoding a trace file, validating the magic and
// version. It returns *FormatError for a non-trace file and *VersionError
// for an unknown codec version.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{br: bufio.NewReaderSize(r, flushSize)}
	var m [len(Magic)]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return nil, &FormatError{Offset: 0, Reason: "missing magic header", Err: unexpectEOF(err)}
	}
	d.off = int64(len(Magic))
	if string(m[:]) != Magic {
		return nil, &FormatError{Offset: 0, Reason: fmt.Sprintf("bad magic %q (not a trace/v1 file)", m[:])}
	}
	v := d.uvarint("version")
	if d.err != nil {
		return nil, d.err
	}
	if v != Version {
		return nil, &VersionError{Version: v}
	}
	return d, nil
}

// NextRun advances to the next run frame and returns its header. It
// returns io.EOF after the last frame; any other error is structural. If
// the previous frame's events were not consumed, they are skipped.
func (d *Reader) NextRun() (*RunMeta, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.inRun {
		if _, err := d.Replay(nil); err != nil {
			return nil, err
		}
	}
	tag, err := d.br.ReadByte()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, d.fail("reading frame tag", err)
	}
	d.off++
	if tag != tagRun {
		return nil, d.corrupt(fmt.Sprintf("unexpected frame tag 0x%02x (want run frame 0x%02x)", tag, tagRun))
	}
	d.meta = RunMeta{
		Fingerprint: d.rawString("fingerprint"),
		Name:        d.rawString("name"),
		Run:         int(d.uvarint("run")),
		Runs:        int(d.uvarint("runs")),
		BaseSeed:    d.varint("base seed"),
		Seed:        d.varint("seed"),
		MaxSteps:    d.varint("max steps"),
		LeakThreshold: d.varint("leak threshold"),
		FaultPlan:   d.blob("header fault plan"),
	}
	if d.err != nil {
		return nil, d.err
	}
	// Per-run decode state: frames are position-independent.
	d.strs = d.strs[:0]
	d.prevStep, d.prevTime = 0, 0
	for i := range d.vcs {
		d.vcs[i] = d.vcs[i][:0]
	}
	d.faultPlan = nil
	d.inRun = true
	return &d.meta, nil
}

// Replay decodes the current frame's event stream, dispatching each event
// through mux (nil skips dispatch but still consumes the frame), fires
// mux.RunEnd after the final event, and returns the archived sim.Result.
// Call it once per NextRun.
func (d *Reader) Replay(mux *event.Mux) (*sim.Result, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.inRun {
		return nil, d.corrupt("Replay called outside a run frame (call NextRun first)")
	}
	for {
		tag, err := d.br.ReadByte()
		if err != nil {
			return nil, d.fail("reading event kind", err)
		}
		d.off++
		if tag == tagEnd {
			break
		}
		if tag >= byte(event.NumKinds) {
			return nil, d.corrupt(fmt.Sprintf("unknown event kind %d (this reader knows %d kinds)", tag, event.NumKinds-1))
		}
		d.decodeEvent(event.Kind(tag))
		if d.err != nil {
			return nil, d.err
		}
		if mux != nil {
			mux.Emit(&d.ev)
		}
	}
	if mux != nil {
		mux.RunEnd()
	}
	res := d.decodeResult()
	d.faultPlan = d.blob("trailer fault plan")
	if d.err != nil {
		return nil, d.err
	}
	d.inRun = false
	return res, nil
}

// FaultPlan returns the fault plan recorded with the most recently
// replayed run (JSON, injected faults included), nil when the run was not
// injected. Valid after Replay returns.
func (d *Reader) FaultPlan() []byte { return d.faultPlan }

func (d *Reader) decodeEvent(kind event.Kind) {
	d.ev = event.Event{Kind: kind}
	d.ev.G = int(d.uvarint("event goroutine"))
	d.ev.GName = d.ref("event goroutine name")
	d.ev.Step = d.prevStep + d.varint("event step delta")
	d.ev.Time = d.prevTime + d.varint("event time delta")
	d.prevStep, d.prevTime = d.ev.Step, d.ev.Time
	flags := d.uvarint("event flags")
	if d.err != nil {
		return
	}
	if flags&flagVC != 0 {
		d.ev.VC = d.decodeVC(d.ev.G)
	}
	if flags&flagHeld != 0 {
		n := d.length("held locks", maxSliceLen)
		d.held = d.held[:0]
		for i := 0; i < n && d.err == nil; i++ {
			d.held = append(d.held, d.ref("held lock"))
		}
		d.ev.HeldLocks = d.held
	}
	if flags&flagObj != 0 {
		d.ev.Obj = d.ref("object name")
		d.ev.ObjID = int(d.varint("object id"))
	}
	if flags&flagVar != 0 {
		d.vmeta = event.VarMeta{
			ID:        int(d.varint("var id")),
			Name:      d.ref("var name"),
			CreatedBy: int(d.varint("var creator")),
		}
		d.ev.Var = &d.vmeta
	}
	if flags&flagCounter != 0 {
		d.ev.Counter = int(d.varint("counter"))
	}
	if flags&flagDelta != 0 {
		d.ev.Delta = int(d.varint("delta"))
	}
	if flags&flagAux != 0 {
		d.ev.Aux = int(d.uvarint("aux goroutine"))
	}
	if flags&flagDec != 0 {
		d.ev.Dec = int(d.varint("decision index"))
	}
	if flags&flagDetail != 0 {
		d.ev.Detail = d.ref("detail")
	}
	if flags&flagSched != 0 {
		d.sched.G = int(d.uvarint("sched goroutine"))
		d.sched.Decision = int(d.varint("sched decision"))
		d.sched.Preferred = int(d.varint("sched preferred"))
		n := d.length("sched options", maxSliceLen)
		d.sched.OptionGs = d.sched.OptionGs[:0]
		for i := 0; i < n && d.err == nil; i++ {
			d.sched.OptionGs = append(d.sched.OptionGs, int(d.uvarint("sched option")))
		}
		n = d.length("sched ops", maxSliceLen)
		d.sched.Ops = d.sched.Ops[:0]
		for i := 0; i < n && d.err == nil; i++ {
			cb := d.byte("sched op class")
			d.sched.Ops = append(d.sched.Ops, event.OpRef{
				Class: event.ObjClass(cb >> 1),
				Write: cb&1 != 0,
				ID:    int(d.varint("sched op id")),
			})
		}
		d.ev.Sched = &d.sched
	}
}

// decodeVC rebuilds goroutine g's clock from the component deltas,
// mirroring Recorder.appendVC, into the reader's reused scratch clock.
func (d *Reader) decodeVC(g int) hb.VC {
	if g < 0 || g >= maxVCLen {
		d.corrupt(fmt.Sprintf("vector clock on out-of-range goroutine %d", g))
		return hb.VC{}
	}
	n := d.length("vector clock", maxVCLen)
	if d.err != nil {
		return hb.VC{}
	}
	for len(d.vcs) <= g {
		d.vcs = append(d.vcs, nil)
	}
	prev := d.vcs[g]
	if cap(prev) < n {
		np := make([]uint64, n)
		copy(np, prev)
		prev = np
	} else {
		for i := len(prev); i < n; i++ {
			prev = prev[:i+1]
			prev[i] = 0
		}
		prev = prev[:n]
	}
	d.vc.Reset()
	for i := 0; i < n; i++ {
		prev[i] += uint64(d.varint("clock component"))
		d.vc.Set(i, prev[i])
	}
	d.vcs[g] = prev
	return d.vc
}

func (d *Reader) decodeResult() *sim.Result {
	res := &sim.Result{
		Name:              d.ref("result name"),
		Seed:              d.varint("result seed"),
		Outcome:           sim.Outcome(d.byte("result outcome")),
		Steps:             d.varint("result steps"),
		VirtualTime:       d.varint("result virtual time"),
		GoroutinesCreated: int(d.uvarint("result goroutine count")),
		RandDraws:         int64(d.uvarint("result rand draws")),
		DeadlockReport:    d.ref("deadlock report"),
	}
	res.Goroutines = d.decodeGoroutines("goroutines")
	res.Leaked = d.decodeGoroutines("leaked")
	res.Blocked = d.decodeGoroutines("blocked")
	n := d.length("panics", maxSliceLen)
	for i := 0; i < n && d.err == nil; i++ {
		res.Panics = append(res.Panics, sim.PanicInfo{
			G:    int(d.uvarint("panic goroutine")),
			Name: d.ref("panic goroutine name"),
			Msg:  d.ref("panic message"),
			Step: d.varint("panic step"),
		})
	}
	n = d.length("check failures", maxSliceLen)
	for i := 0; i < n && d.err == nil; i++ {
		res.CheckFailures = append(res.CheckFailures, d.ref("check failure"))
	}
	return res
}

func (d *Reader) decodeGoroutines(what string) []sim.GoroutineInfo {
	n := d.length(what, maxSliceLen)
	var out []sim.GoroutineInfo
	for i := 0; i < n && d.err == nil; i++ {
		g := sim.GoroutineInfo{
			ID:   int(d.uvarint("goroutine id")),
			Name: d.ref("goroutine name"),
		}
		g.State = sim.GState(d.byte("goroutine state"))
		g.BlockKind = sim.BlockKind(d.byte("goroutine block kind"))
		g.BlockObj = d.ref("block object")
		g.CreatedStep = d.varint("created step")
		g.CreatedTime = d.varint("created time")
		g.EndTime = d.varint("end time")
		g.BlockedSince = d.varint("blocked since")
		nl := d.length("goroutine held locks", maxSliceLen)
		for j := 0; j < nl && d.err == nil; j++ {
			g.HeldLocks = append(g.HeldLocks, d.ref("goroutine held lock"))
		}
		out = append(out, g)
	}
	return out
}

// --- primitive decoders; the first failure latches into d.err and every
// later call returns a zero value, so decode paths need no per-field error
// plumbing.

func (d *Reader) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	b, err := d.br.ReadByte()
	if err != nil {
		d.fail("reading "+what, err)
		return 0
	}
	d.off++
	return b
}

func (d *Reader) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			d.corrupt("varint overflow in " + what)
			return 0
		}
		b, err := d.br.ReadByte()
		if err != nil {
			d.fail("reading "+what, err)
			return 0
		}
		d.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
}

func (d *Reader) varint(what string) int64 {
	u := d.uvarint(what)
	return int64(u>>1) ^ -int64(u&1)
}

// length decodes a slice length and bounds it.
func (d *Reader) length(what string, limit int) int {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return 0
	}
	if n > uint64(limit) {
		d.corrupt(fmt.Sprintf("%s length %d exceeds limit %d", what, n, limit))
		return 0
	}
	return int(n)
}

func (d *Reader) rawString(what string) string {
	n := d.length(what, maxStringLen)
	if d.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		d.fail("reading "+what, err)
		return ""
	}
	d.off += int64(n)
	return string(buf)
}

func (d *Reader) blob(what string) []byte {
	n := d.length(what, maxBlobLen)
	if d.err != nil || n == 0 {
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		d.fail("reading "+what, err)
		return nil
	}
	d.off += int64(n)
	return buf
}

// ref decodes an interned string reference, mirroring Recorder.ref.
func (d *Reader) ref(what string) string {
	id := d.uvarint(what + " ref")
	if d.err != nil {
		return ""
	}
	if id == 0 {
		s := d.rawString(what)
		if d.err != nil {
			return ""
		}
		d.strs = append(d.strs, s)
		return s
	}
	if id > uint64(len(d.strs)) {
		d.corrupt(fmt.Sprintf("%s references undefined string %d (table has %d)", what, id, len(d.strs)))
		return ""
	}
	return d.strs[id-1]
}

func (d *Reader) corrupt(reason string) error {
	if d.err == nil {
		d.err = &FormatError{Offset: d.off, Reason: reason}
	}
	return d.err
}

func (d *Reader) fail(reason string, err error) error {
	if d.err == nil {
		d.err = &FormatError{Offset: d.off, Reason: reason, Err: unexpectEOF(err)}
	}
	return d.err
}

// unexpectEOF maps a mid-record io.EOF to io.ErrUnexpectedEOF: clean EOF is
// only legal between frames, so inside one it means truncation.
func unexpectEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
