package trace_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/trace"
)

// drain decodes every frame of data to completion, returning the first
// error (nil for a well-formed trace).
func drain(data []byte) error {
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := tr.NextRun(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if _, err := tr.Replay(nil); err != nil {
			return err
		}
	}
}

func TestNotATraceFile(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":       {},
		"short":       []byte("goc"),
		"wrong-magic": []byte("NOTTRACE" + "rest of some other file format"),
		"json":        []byte(`{"fingerprint":"sweep/v1"}`),
	} {
		t.Run(name, func(t *testing.T) {
			_, err := trace.NewReader(bytes.NewReader(data))
			var fe *trace.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("NewReader = %v, want *FormatError", err)
			}
		})
	}
}

func TestVersionMismatch(t *testing.T) {
	data := append([]byte(trace.Magic), 2) // future version 2
	_, err := trace.NewReader(bytes.NewReader(data))
	var ve *trace.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("NewReader = %v, want *VersionError", err)
	}
	if ve.Version != 2 {
		t.Errorf("VersionError.Version = %d, want 2", ve.Version)
	}
	if !strings.Contains(ve.Error(), "version 2") {
		t.Errorf("error text %q does not name the offending version", ve.Error())
	}
}

// TestTruncatedTrace cuts a real recorded trace at every prefix length and
// asserts decoding reports structured truncation — *FormatError wrapping
// io.ErrUnexpectedEOF — and never panics or loops.
func TestTruncatedTrace(t *testing.T) {
	k, _ := kernels.ByID("docker-abba-order")
	data, _, _ := recordLive(t, k.Config(3), k.Buggy)
	step := 1
	if len(data) > 2048 {
		step = len(data) / 512
	}
	for cut := 0; cut < len(data); cut += step {
		if cut == len(trace.Magic)+1 {
			continue // magic+version alone is a legal zero-frame trace
		}
		err := drain(data[:cut])
		if err == nil {
			t.Fatalf("drain of %d/%d-byte prefix succeeded, want truncation error", cut, len(data))
		}
		var fe *trace.FormatError
		var ve *trace.VersionError
		if !errors.As(err, &fe) && !errors.As(err, &ve) {
			t.Fatalf("prefix %d: error %v is not structured", cut, err)
		}
	}
	if err := drain(data); err != nil {
		t.Fatalf("full trace failed to drain: %v", err)
	}
}

// minimalHeader is a hand-built run frame header: empty fingerprint and
// name, run 0 of 1, all-zero seeds/limits, no fault plan.
func minimalHeader() []byte {
	b := append([]byte(trace.Magic), 1) // version
	b = append(b, 0x01)                 // tagRun
	b = append(b, 0, 0)                 // fingerprint "", name ""
	b = append(b, 0, 1)                 // run 0, runs 1
	b = append(b, 0, 0, 0, 0)           // baseSeed, seed, maxSteps, leakThreshold
	b = append(b, 0)                    // fault plan: empty
	return b
}

func TestCorruptFrames(t *testing.T) {
	for name, tail := range map[string][]byte{
		// 0xFF is far beyond NumKinds: an event kind from a future schema.
		"unknown-event-kind": {0xFF},
		// String ref 5 with an empty intern table.
		"undefined-string-ref": {byte(event.MemRead), 1, 5},
		// A second run frame tag in event position decodes as Kind 1
		// (MemRead) — but a giant length prefix must be rejected, not
		// allocated: held-locks count 2^40 with flagHeld set.
		"giant-length": {byte(event.MemRead), 1, 0, 0, 0, 0, 0x02, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		// An 11-byte varint never terminates within 64 bits.
		"varint-overflow": {byte(event.MemRead), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	} {
		t.Run(name, func(t *testing.T) {
			err := drain(append(minimalHeader(), tail...))
			var fe *trace.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("drain = %v, want *FormatError", err)
			}
			if fe.Offset <= 0 {
				t.Errorf("FormatError.Offset = %d, want a positive byte position", fe.Offset)
			}
		})
	}
}

func TestReplayBeforeNextRun(t *testing.T) {
	tr, err := trace.NewReader(bytes.NewReader(minimalHeader()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := tr.Replay(nil); err == nil {
		t.Fatal("Replay before NextRun succeeded, want error")
	}
}

func TestFingerprintErrorRendering(t *testing.T) {
	err := &trace.FingerprintError{Have: "trace/v1 runs=10 prog=a", Want: "trace/v1 runs=10 prog=b"}
	for _, want := range []string{"mismatch", "prog=a", "prog=b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("FingerprintError text %q missing %q", err.Error(), want)
		}
	}
}
