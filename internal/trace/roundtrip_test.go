package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"goconcbugs/internal/event"
	"goconcbugs/internal/kernels"
	"goconcbugs/internal/sim"
	"goconcbugs/internal/trace"
)

// renderEvent canonicalizes one event into a comparable string during the
// sink callback (the Event and its slices are runtime-owned and reused, so
// rendering is also the cloning step).
func renderEvent(ev *event.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s step=%d time=%d g=%d gname=%q vc=%s held=%q obj=%q objid=%d",
		ev.Kind, ev.Step, ev.Time, ev.G, ev.GName, ev.VC.String(), ev.HeldLocks, ev.Obj, ev.ObjID)
	if ev.Var != nil {
		fmt.Fprintf(&b, " var={%d %q %d}", ev.Var.ID, ev.Var.Name, ev.Var.CreatedBy)
	}
	fmt.Fprintf(&b, " ctr=%d delta=%d aux=%d dec=%d detail=%q",
		ev.Counter, ev.Delta, ev.Aux, ev.Dec, ev.Detail)
	if s := ev.Sched; s != nil {
		fmt.Fprintf(&b, " sched={g=%d dec=%d pref=%d opts=%v", s.G, s.Decision, s.Preferred, s.OptionGs)
		b.WriteString(" ops=[")
		for i, op := range s.Ops {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d/%d/%t", op.Class, op.ID, op.Write)
		}
		b.WriteString("]}")
	}
	return b.String()
}

// renderResult canonicalizes a Result; nil and empty slices render alike,
// matching their identical wire encoding.
func renderResult(res *sim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%q seed=%d outcome=%d steps=%d vtime=%d created=%d draws=%d deadlock=%q\n",
		res.Name, res.Seed, res.Outcome, res.Steps, res.VirtualTime,
		res.GoroutinesCreated, res.RandDraws, res.DeadlockReport)
	rg := func(label string, gs []sim.GoroutineInfo) {
		fmt.Fprintf(&b, "%s(%d):", label, len(gs))
		for _, g := range gs {
			fmt.Fprintf(&b, " {%d %q %d %d %q %d %d %d %d %q}",
				g.ID, g.Name, g.State, g.BlockKind, g.BlockObj,
				g.CreatedStep, g.CreatedTime, g.EndTime, g.BlockedSince, g.HeldLocks)
		}
		b.WriteByte('\n')
	}
	rg("goroutines", res.Goroutines)
	rg("leaked", res.Leaked)
	rg("blocked", res.Blocked)
	fmt.Fprintf(&b, "panics=%v checks=%q", res.Panics, res.CheckFailures)
	return b.String()
}

// captureSink renders every event of a run, live or replayed.
type captureSink struct {
	events  []string
	runEnds int
}

func (c *captureSink) Kinds() []event.Kind { return event.AllKinds() }
func (c *captureSink) Event(ev *event.Event) {
	c.events = append(c.events, renderEvent(ev))
}
func (c *captureSink) RunEnd() { c.runEnds++ }

// recordLive runs prog under cfg with a Recorder and a capture sink
// attached, returning the encoded trace, the live stream, and the live
// Result.
func recordLive(t *testing.T, cfg sim.Config, prog sim.Program) ([]byte, *captureSink, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	cap := &captureSink{}
	cfg.Sinks = append(cfg.Sinks, cap)
	res, err := trace.Record(&buf, trace.RunMeta{}, cfg, prog)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	return buf.Bytes(), cap, res
}

// replayStream decodes the single-frame trace in data through a capture
// sink.
func replayStream(t *testing.T, data []byte) (*trace.RunMeta, *captureSink, *sim.Result) {
	t.Helper()
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	meta, err := tr.NextRun()
	if err != nil {
		t.Fatalf("NextRun: %v", err)
	}
	cap := &captureSink{}
	res, err := tr.Replay(event.NewMux([]event.Sink{cap}))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if _, err := tr.NextRun(); !errors.Is(err, io.EOF) {
		t.Fatalf("NextRun after last frame: got %v, want io.EOF", err)
	}
	return meta, cap, res
}

// roundTripKernelSet is a cross-section of the corpus: blocking mutex and
// channel bugs, a non-blocking race, a select kernel, and a cond kernel.
var roundTripKernelSet = []string{
	"docker-abba-order",
	"grpc-missing-send",
	"kubernetes-map-race",
	"etcd-double-recv",
	"docker-cond-missing-signal",
}

// TestRoundTripKernels replays recorded kernel runs and asserts the decoded
// stream — every field of every event, in order — and the decoded Result
// are identical to what the live run's sinks observed.
func TestRoundTripKernels(t *testing.T) {
	for _, id := range roundTripKernelSet {
		k, ok := kernels.ByID(id)
		if !ok {
			t.Fatalf("kernel %q not registered", id)
		}
		for variant, prog := range map[string]sim.Program{"buggy": k.Buggy, "fixed": k.Fixed} {
			t.Run(id+"/"+variant, func(t *testing.T) {
				data, live, liveRes := recordLive(t, k.Config(1), prog)
				meta, replayed, repRes := replayStream(t, data)

				if meta.Name != k.ID || meta.Seed != 1 {
					t.Errorf("meta = %+v, want name %q seed 1", meta, k.ID)
				}
				if len(replayed.events) != len(live.events) {
					t.Fatalf("replay delivered %d events, live %d", len(replayed.events), len(live.events))
				}
				for i := range live.events {
					if replayed.events[i] != live.events[i] {
						t.Fatalf("event %d differs:\n live:   %s\n replay: %s", i, live.events[i], replayed.events[i])
					}
				}
				if live.runEnds != 1 || replayed.runEnds != 1 {
					t.Errorf("RunEnd fired live=%d replay=%d times, want 1 and 1", live.runEnds, replayed.runEnds)
				}
				if got, want := renderResult(repRes), renderResult(liveRes); got != want {
					t.Errorf("replayed Result differs:\n got:  %s\n want: %s", got, want)
				}
			})
		}
	}
}

// reencode decodes every frame of data and re-encodes it through a fresh
// Writer, returning the bytes and whether data was a well-formed trace.
func reencode(data []byte) ([]byte, error) {
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	for {
		meta, err := tr.NextRun()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		rec := tw.BeginRun(*meta)
		res, err := tr.Replay(event.NewMux([]event.Sink{rec}))
		if err != nil {
			return nil, err
		}
		if err := rec.FinishRun(res, tr.FaultPlan()); err != nil {
			return nil, err
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestReencodeByteIdentity pins the codec as canonical: decoding a recorded
// trace and re-encoding the decoded stream reproduces the input byte for
// byte (delta state, interning order, and flag computation all included).
func TestReencodeByteIdentity(t *testing.T) {
	for _, id := range roundTripKernelSet {
		k, _ := kernels.ByID(id)
		t.Run(id, func(t *testing.T) {
			data, _, _ := recordLive(t, k.Config(7), k.Buggy)
			again, err := reencode(data)
			if err != nil {
				t.Fatalf("reencode: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encoded trace differs from original (%d vs %d bytes)", len(again), len(data))
			}
		})
	}
}

// TestKindValuesPinned pins the numeric value of every event kind: the Kind
// byte is the trace/v1 record tag, so any renumbering breaks every archived
// trace. If this test fails, you reordered the enum — new kinds must be
// appended before NumKinds instead.
func TestKindValuesPinned(t *testing.T) {
	pinned := map[event.Kind]uint8{
		event.KindInvalid: 0,
		event.MemRead:     1, event.MemWrite: 2,
		event.MapRead: 3, event.MapWrite: 4,
		event.ChanSend: 5, event.ChanRecv: 6, event.ChanClose: 7,
		event.ChanSendDone: 8, event.ChanRecvDone: 9,
		event.ChanCloseClosed: 10, event.ChanSendClosed: 11, event.ChanNil: 12,
		event.SelectBlocking: 13, event.SelectReady: 14,
		event.MutexLock: 15, event.MutexTryLock: 16, event.MutexUnlock: 17,
		event.RWRLock: 18, event.RWRUnlock: 19, event.RWWLock: 20, event.RWWUnlock: 21,
		event.WGAdd: 22, event.WGDone: 23, event.WGNegative: 24,
		event.WGWaitStart: 25, event.WGWaitEnd: 26,
		event.OnceDo: 27, event.CondWait: 28, event.CondSignal: 29, event.CondBroadcast: 30,
		event.GoSpawn: 31, event.GoExit: 32, event.GoPanic: 33,
		event.GoBlock: 34, event.GoBlockForever: 35,
		event.Sched: 36, event.FaultInject: 37,
		event.NumKinds: 38,
	}
	if int(event.NumKinds) != len(pinned)-1 {
		t.Fatalf("event declares %d kinds, this test pins %d — pin new kinds here (append-only!)",
			event.NumKinds, len(pinned)-1)
	}
	for k, v := range pinned {
		if uint8(k) != v {
			t.Errorf("event kind %s = %d, pinned wire value %d — kinds must never be renumbered", k, uint8(k), v)
		}
	}
}
