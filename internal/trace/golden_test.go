package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"goconcbugs/internal/kernels"
	"goconcbugs/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenKernels are the three pinned representatives: a blocking mutex
// cycle, a blocking channel bug, and a non-blocking data race — together
// they exercise lock, channel, memory, scheduler, and lifecycle kinds.
var goldenKernels = []string{
	"docker-abba-order",
	"grpc-missing-send",
	"kubernetes-map-race",
}

// TestGoldenTraces pins the on-disk trace/v1 format: recording these
// kernels must reproduce the checked-in archives byte for byte. A failure
// means the codec's output changed — if that was intentional, bump
// trace.Version and regenerate with -update; if not, you broke every
// archived trace in the wild.
func TestGoldenTraces(t *testing.T) {
	for _, id := range goldenKernels {
		k, ok := kernels.ByID(id)
		if !ok {
			t.Fatalf("kernel %q not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			data, _, _ := recordLive(t, k.Config(42), k.Buggy)
			path := filepath.Join("testdata", "golden", id+".trace")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(data, want) {
				i := 0
				for i < len(data) && i < len(want) && data[i] == want[i] {
					i++
				}
				t.Fatalf("recorded trace diverges from %s at byte %d (got %d bytes, want %d) — format change? bump trace.Version (now %d) and -update",
					path, i, len(data), len(want), trace.Version)
			}
		})
	}
}
