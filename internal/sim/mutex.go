package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Mutex models sync.Mutex. As in real Go, locks are not reentrant: a
// goroutine that locks a mutex it already holds blocks forever (the shape of
// the double-locking bugs in Section 5.1.1, e.g. BoltDB#392).
type Mutex struct {
	rt     *runtime
	id     int
	autoID int // id the cached auto-generated name was formatted for
	name   string
	holder *G
	waitq  []*G
	vc     hb.VC // clock published by the last Unlock
}

// NewMutex creates a mutex, recycling a pooled one when available.
func NewMutex(t *T, name string) *Mutex {
	rt := t.rt
	rt.nextSyncID++
	id := rt.nextSyncID
	m, recycled := arenaGet[Mutex](rt)
	if recycled {
		m.holder = nil
		m.waitq = m.waitq[:0]
		m.vc.Reset()
	}
	if name == "" {
		if !recycled || m.autoID != id {
			m.name = fmt.Sprintf("mutex#%d", id)
		}
		m.autoID = id
	} else {
		m.name = name
		m.autoID = 0
	}
	m.rt, m.id = rt, id
	return m
}

// Lock acquires the mutex, blocking while it is held — including when it is
// held by the calling goroutine itself.
func (m *Mutex) Lock(t *T) {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder == nil {
		m.holder = t.g
		t.g.vc.Join(m.vc)
		t.g.holdLock(m.name)
		t.emitObj(event.MutexLock, m.name)
		return
	}
	m.waitq = append(m.waitq, t.g)
	t.block(BlockMutex, m.name)
	// Ownership and the clock were transferred by the unlocker.
	t.g.holdLock(m.name)
	t.emitObjDetail(event.MutexLock, m.name, "after wait")
}

// Unlock releases the mutex, panicking if the caller does not hold it
// (sync: unlock of unlocked mutex).
func (m *Mutex) Unlock(t *T) {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder != t.g {
		t.Panicf("sync: unlock of unlocked mutex %s", m.name)
	}
	m.vc.Join(t.g.vc)
	t.g.tick()
	m.holder = nil
	t.g.releaseLock(m.name)
	t.emitObj(event.MutexUnlock, m.name)
	if len(m.waitq) > 0 {
		next := m.waitq[0]
		// Pop by copy-down so the queue's backing keeps its capacity —
		// re-slicing from the front would strand it and force a growslice
		// on every later contention round.
		n := copy(m.waitq, m.waitq[1:])
		m.waitq[n] = nil
		m.waitq = m.waitq[:n]
		m.holder = next
		next.vc.Join(m.vc)
		m.rt.unblock(next)
	}
}

// TryLock attempts the lock without blocking and reports success.
func (m *Mutex) TryLock(t *T) bool {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder != nil {
		return false
	}
	m.holder = t.g
	t.g.vc.Join(m.vc)
	t.g.holdLock(m.name)
	t.emitObj(event.MutexTryLock, m.name)
	return true
}

// Holder returns the id of the holding goroutine, or 0 when unlocked.
func (m *Mutex) Holder() int {
	if m.holder == nil {
		return 0
	}
	return m.holder.id
}

// Name returns the mutex's report name.
func (m *Mutex) Name() string { return m.name }
