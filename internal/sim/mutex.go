package sim

import (
	"fmt"

	"goconcbugs/internal/event"
	"goconcbugs/internal/hb"
)

// Mutex models sync.Mutex. As in real Go, locks are not reentrant: a
// goroutine that locks a mutex it already holds blocks forever (the shape of
// the double-locking bugs in Section 5.1.1, e.g. BoltDB#392).
type Mutex struct {
	rt     *runtime
	id     int
	name   string
	holder *G
	waitq  []*G
	vc     hb.VC // clock published by the last Unlock
}

// NewMutex creates a mutex.
func NewMutex(t *T, name string) *Mutex {
	t.rt.nextSyncID++
	if name == "" {
		name = fmt.Sprintf("mutex#%d", t.rt.nextSyncID)
	}
	return &Mutex{rt: t.rt, id: t.rt.nextSyncID, name: name, vc: hb.New()}
}

// Lock acquires the mutex, blocking while it is held — including when it is
// held by the calling goroutine itself.
func (m *Mutex) Lock(t *T) {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder == nil {
		m.holder = t.g
		t.g.vc.Join(m.vc)
		t.g.holdLock(m.name)
		t.emitObj(event.MutexLock, m.name)
		return
	}
	m.waitq = append(m.waitq, t.g)
	t.block(BlockMutex, m.name)
	// Ownership and the clock were transferred by the unlocker.
	t.g.holdLock(m.name)
	t.emitObjDetail(event.MutexLock, m.name, "after wait")
}

// Unlock releases the mutex, panicking if the caller does not hold it
// (sync: unlock of unlocked mutex).
func (m *Mutex) Unlock(t *T) {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder != t.g {
		t.Panicf("sync: unlock of unlocked mutex %s", m.name)
	}
	m.vc.Join(t.g.vc)
	t.g.tick()
	m.holder = nil
	t.g.releaseLock(m.name)
	t.emitObj(event.MutexUnlock, m.name)
	if len(m.waitq) > 0 {
		next := m.waitq[0]
		m.waitq = m.waitq[1:]
		m.holder = next
		next.vc.Join(m.vc)
		m.rt.unblock(next)
	}
}

// TryLock attempts the lock without blocking and reports success.
func (m *Mutex) TryLock(t *T) bool {
	t.yield()
	t.touch(ObjSync, m.id, true)
	t.fault(SiteMutex, m.name)
	if m.holder != nil {
		return false
	}
	m.holder = t.g
	t.g.vc.Join(m.vc)
	t.g.holdLock(m.name)
	t.emitObj(event.MutexTryLock, m.name)
	return true
}

// Holder returns the id of the holding goroutine, or 0 when unlocked.
func (m *Mutex) Holder() int {
	if m.holder == nil {
		return 0
	}
	return m.holder.id
}

// Name returns the mutex's report name.
func (m *Mutex) Name() string { return m.name }
