package sim

import "testing"

// Cancelling twice is the documented contract ("the first call cancels, the
// rest are no-ops"): the second call must neither panic (double close) nor
// disturb Err.
func TestContextDoubleCancel(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		ctx, cancel := WithCancel(tt, Background(tt))
		cancel(tt)
		cancel(tt)
		tt.Check(ctx.Err() == ErrCanceled, "Err after double cancel")
		ctx.Done().Recv(tt) // closed: must not block
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", res.Outcome)
	}
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
}

// A child derived from an already-cancelled parent must still observe the
// cancellation: the propagation goroutine sees the parent's closed Done as
// soon as it runs, so the child's Done closes and nothing leaks.
func TestContextChildAfterParentCancel(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		parent, cancelParent := WithCancel(tt, Background(tt))
		cancelParent(tt)
		child, _ := WithCancel(tt, parent)
		child.Done().Recv(tt) // must unblock via propagation
		tt.Check(child.Err() == ErrCanceled, "child Err after parent cancel")
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", res.Outcome)
	}
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
	if len(res.Leaked) != 0 {
		t.Fatalf("leaked = %+v, want none (propagate goroutine must exit)", res.Leaked)
	}
}

// Cancelling only the child must not cancel the parent, and the propagation
// goroutine must exit via its own-cancel arm rather than leak.
func TestContextChildCancelLeavesParentLive(t *testing.T) {
	res := Run(Config{Seed: 1}, func(tt *T) {
		parent, _ := WithCancel(tt, Background(tt))
		child, cancelChild := WithCancel(tt, parent)
		cancelChild(tt)
		child.Done().Recv(tt)
		tt.Check(parent.Err() == nil, "parent cancelled by child cancel")
	})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", res.Outcome)
	}
	if res.Failed() {
		t.Fatalf("failed: %+v", res.CheckFailures)
	}
	if len(res.Leaked) != 0 {
		t.Fatalf("leaked = %+v, want none", res.Leaked)
	}
}
