package sim

import (
	"strings"
	"testing"

	"goconcbugs/internal/event"
)

// injectFunc adapts a function to the Injector interface for scripted
// fault-injection tests.
type injectFunc func(site FaultSite, g int, obj string) FaultAction

func (f injectFunc) Consult(site FaultSite, g int, obj string) FaultAction { return f(site, g, obj) }

// onceAt fires act the first time the predicate matches, FaultNone after.
func onceAt(act FaultAction, pred func(site FaultSite, g int) bool) Injector {
	fired := false
	return injectFunc(func(site FaultSite, g int, obj string) FaultAction {
		if !fired && pred(site, g) {
			fired = true
			return act
		}
		return FaultNone
	})
}

// TestFaultYieldIsBenign: a correct program must stay correct under any
// amount of yield injection — the soundness property the chaos gate relies
// on. Inject a yield at every consultation across many seeds.
func TestFaultYieldIsBenign(t *testing.T) {
	always := injectFunc(func(FaultSite, int, string) FaultAction { return FaultYield })
	for seed := int64(1); seed <= 30; seed++ {
		res := Run(Config{Seed: seed, Injector: always}, func(tt *T) {
			mu := NewMutex(tt, "mu")
			ch := NewChan[int](tt, 1)
			done := NewChan[int](tt, 0)
			shared := 0
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				shared++
				mu.Unlock(ct)
				ch.Send(ct, 1)
				done.Send(ct, 1)
			})
			mu.Lock(tt)
			shared++
			mu.Unlock(tt)
			ch.Recv(tt)
			done.Recv(tt)
			tt.Check(shared == 2, "lost update under yield injection")
		})
		if res.Failed() {
			t.Fatalf("seed %d: correct program failed under yield injection: %+v", seed, res)
		}
	}
}

// TestFaultKillLeavesLocksHeld: a killed goroutine dies mid-protocol without
// releasing anything — the paper's stalled-participant condition. The victim
// holds a mutex when it is killed at its channel send, so main blocks on
// that mutex forever and the run manifests as a blocking failure.
func TestFaultKillLeavesLocksHeld(t *testing.T) {
	inj := onceAt(FaultKill, func(site FaultSite, g int) bool {
		return site == SiteChanSend && g != 1
	})
	res := Run(Config{Seed: 1, Injector: inj}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		ch := NewChan[int](tt, 0)
		tt.Go(func(ct *T) {
			mu.Lock(ct)
			ch.Send(ct, 1) // killed here, mutex still held
			mu.Unlock(ct)
		})
		ch.Recv(tt) // give the victim time to reach the send on any schedule
		mu.Lock(tt)
		mu.Unlock(tt)
	})
	if !res.Failed() {
		t.Fatalf("expected a blocking failure after FaultKill, got %+v", res)
	}
	killed := 0
	for _, g := range res.Goroutines {
		if g.State == GKilled {
			killed++
			if len(g.HeldLocks) == 0 {
				t.Errorf("killed goroutine %s should still hold its mutex, held %v", g.Name, g.HeldLocks)
			}
		}
	}
	if killed != 1 {
		t.Fatalf("killed goroutines = %d, want 1 (%+v)", killed, res.Goroutines)
	}
}

// TestFaultKillNeverTargetsMain: an injector asking to kill the main
// goroutine is coerced to a benign yield.
func TestFaultKillNeverTargetsMain(t *testing.T) {
	inj := onceAt(FaultKill, func(site FaultSite, g int) bool { return g == 1 })
	res := Run(Config{Seed: 1, Injector: inj}, func(tt *T) {
		ch := NewChan[int](tt, 1)
		ch.Send(tt, 7)
		v, _ := ch.Recv(tt)
		tt.Check(v == 7, "value survived")
	})
	if res.Failed() {
		t.Fatalf("kill-main should coerce to yield, got %+v", res)
	}
	for _, g := range res.Goroutines {
		if g.State == GKilled {
			t.Fatalf("main goroutine was killed: %+v", g)
		}
	}
}

// TestFaultWakeBreaksIfGuardedWait: a spurious cond wakeup breaks code that
// guards Wait with `if` (some seed fails), while the `for`-guarded fix stays
// quiet on every seed — exactly the sync.Cond contract the injection probes.
func TestFaultWakeBreaksIfGuardedWait(t *testing.T) {
	wake := injectFunc(func(site FaultSite, g int, obj string) FaultAction {
		if site == SiteCond {
			return FaultWake
		}
		return FaultNone
	})
	variant := func(forGuard bool) func(*T) {
		return func(tt *T) {
			mu := NewMutex(tt, "mu")
			cond := NewCond(tt, mu, "cond")
			ready := false
			tt.Go(func(ct *T) {
				mu.Lock(ct)
				ready = true
				cond.Signal(ct)
				mu.Unlock(ct)
			})
			mu.Lock(tt)
			if forGuard {
				for !ready {
					cond.Wait(tt)
				}
			} else if !ready {
				cond.Wait(tt)
			}
			tt.Check(ready, "woke before the predicate was set")
			mu.Unlock(tt)
		}
	}
	buggyFailed := false
	for seed := int64(1); seed <= 30; seed++ {
		if Run(Config{Seed: seed, Injector: wake}, variant(false)).Failed() {
			buggyFailed = true
		}
		if res := Run(Config{Seed: seed, Injector: wake}, variant(true)); res.Failed() {
			t.Fatalf("seed %d: for-guarded wait failed under spurious wakeups: %+v", seed, res)
		}
	}
	if !buggyFailed {
		t.Fatal("if-guarded wait never failed under spurious wakeups across 30 seeds")
	}
}

// TestFaultCloseMakesSendPanic: FaultClose at a send site closes the channel
// out from under it — the close-on-error-path pattern — and the send panics.
func TestFaultCloseMakesSendPanic(t *testing.T) {
	inj := onceAt(FaultClose, func(site FaultSite, g int) bool { return site == SiteChanSend })
	res := Run(Config{Seed: 1, Injector: inj}, func(tt *T) {
		ch := NewChan[int](tt, 1)
		ch.Send(tt, 1)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v, want panic from send on injected-closed channel", res.Outcome)
	}
}

// TestFaultPanicCrashesRun: an injected panic is a simulated crash, reported
// like any unrecovered panic.
func TestFaultPanicCrashesRun(t *testing.T) {
	inj := onceAt(FaultPanic, func(site FaultSite, g int) bool { return site == SiteMutex })
	res := Run(Config{Seed: 1, Injector: inj}, func(tt *T) {
		mu := NewMutex(tt, "mu")
		mu.Lock(tt)
		mu.Unlock(tt)
	})
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %v, want panic", res.Outcome)
	}
	if len(res.Panics) == 0 || !strings.Contains(res.Panics[0].Msg, "injected fault") {
		t.Fatalf("panic should name the injection, got %+v", res.Panics)
	}
}

// TestFaultInjectEventEmitted: every applied fault shows up in the event
// stream as a FaultInject event carrying the action and site.
func TestFaultInjectEventEmitted(t *testing.T) {
	inj := onceAt(FaultYield, func(site FaultSite, g int) bool { return site == SiteChanSend })
	sink := &kindRecorder{kinds: []event.Kind{event.FaultInject}}
	res := Run(Config{Seed: 1, Sinks: []event.Sink{sink}, Injector: inj}, func(tt *T) {
		ch := NewChan[int](tt, 1)
		ch.Send(tt, 1)
		ch.Recv(tt)
	})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res)
	}
	if len(sink.got) != 1 {
		t.Fatalf("FaultInject events = %d, want 1", len(sink.got))
	}
	if sink.got[0].Detail != "yield" || FaultSite(sink.got[0].Counter) != SiteChanSend {
		t.Fatalf("event = %+v, want yield at chan-send", sink.got[0])
	}
}

// kindRecorder buffers every event of its subscribed kinds.
type kindRecorder struct {
	kinds []event.Kind
	got   []event.Event
}

func (r *kindRecorder) Kinds() []event.Kind   { return r.kinds }
func (r *kindRecorder) Event(ev *event.Event) { r.got = append(r.got, *ev) }

// TestNoInjectorCostsNothingSemantically: the nil-injector path must not
// change behavior at all — same seed, same program, identical outcome with
// and without the (absent) hook.
func TestNoInjectorCostsNothingSemantically(t *testing.T) {
	prog := func(tt *T) {
		ch := NewChan[int](tt, 0)
		tt.Go(func(ct *T) { ch.Send(ct, 1) })
		ch.Recv(tt)
	}
	a := Run(Config{Seed: 3}, prog)
	none := injectFunc(func(FaultSite, int, string) FaultAction { return FaultNone })
	b := Run(Config{Seed: 3, Injector: none}, prog)
	if a.Steps != b.Steps || a.Outcome != b.Outcome {
		t.Fatalf("FaultNone injector changed the run: %d/%v vs %d/%v", a.Steps, a.Outcome, b.Steps, b.Outcome)
	}
}
