package sim

import "goconcbugs/internal/event"

// Adapter sinks: the four legacy Config hooks (Observer, Monitor, DPOR,
// Trace) re-expressed over the unified event stream. Each adapter subscribes
// to exactly the kinds its legacy hook used to see and reconstructs the
// legacy callback payload, so existing MemoryObserver / Monitor /
// DPORObserver implementations keep working unchanged behind
// Config.Sinks — differentially tested to be call-for-call identical to the
// deleted per-hook plumbing. (The Trace adapter, TraceCollector, lives in
// trace.go next to the Event type it rebuilds.)

// ObserverSink adapts a MemoryObserver to the event stream: every
// MemRead/MemWrite/MapRead/MapWrite event becomes one Access call.
type ObserverSink struct {
	Obs MemoryObserver
}

// Kinds implements event.Sink.
func (s ObserverSink) Kinds() []event.Kind {
	return []event.Kind{event.MemRead, event.MemWrite, event.MapRead, event.MapWrite}
}

// Event implements event.Sink.
func (s ObserverSink) Event(ev *event.Event) {
	s.Obs.Access(MemAccess{
		Var: ev.Var, G: ev.G, GName: ev.GName, VC: ev.VC,
		Write: ev.Kind == event.MemWrite || ev.Kind == event.MapWrite,
		Step:  ev.Step, Time: ev.Time,
	})
}

// monitorKindOps maps event kinds onto the legacy SyncOp vocabulary. All
// lock flavors collapse onto OpMutexLock/OpMutexUnlock, exactly as the
// per-primitive emitSync calls did.
var monitorKindOps = map[event.Kind]SyncOp{
	event.ChanSend:        OpChanSend,
	event.ChanRecv:        OpChanRecv,
	event.ChanClose:       OpChanClose,
	event.ChanCloseClosed: OpChanCloseClosed,
	event.ChanSendClosed:  OpChanSendClosed,
	event.ChanNil:         OpChanNil,
	event.SelectBlocking:  OpSelectBlocking,
	event.WGAdd:           OpWGAdd,
	event.WGDone:          OpWGDone,
	event.WGNegative:      OpWGNegative,
	event.WGWaitStart:     OpWGWaitStart,
	event.WGWaitEnd:       OpWGWaitEnd,
	event.MutexLock:       OpMutexLock,
	event.MutexTryLock:    OpMutexLock,
	event.RWRLock:         OpMutexLock,
	event.RWWLock:         OpMutexLock,
	event.MutexUnlock:     OpMutexUnlock,
	event.RWRUnlock:       OpMutexUnlock,
	event.RWWUnlock:       OpMutexUnlock,
	event.OnceDo:          OpOnceDo,
	event.CondWait:        OpCondWait,
	event.CondSignal:      OpCondSignal,
}

// MonitorSink adapts a Monitor: every rule-relevant event becomes one
// SyncEvent with the lock-held list cloned, per the legacy contract that the
// monitor may retain it.
type MonitorSink struct {
	Mon Monitor
}

// Kinds implements event.Sink.
func (s MonitorSink) Kinds() []event.Kind {
	out := make([]event.Kind, 0, len(monitorKindOps))
	for k := range monitorKindOps {
		out = append(out, k)
	}
	return out
}

// Event implements event.Sink.
func (s MonitorSink) Event(ev *event.Event) {
	s.Mon.SyncEvent(SyncEvent{
		Op: monitorKindOps[ev.Kind], G: ev.G, GName: ev.GName, Obj: ev.Obj,
		VC: ev.VC, Counter: ev.Counter, Delta: ev.Delta,
		HeldLocks: append([]string(nil), ev.HeldLocks...),
		Step:      ev.Step,
	})
}

// DPORObserver receives the scheduling stream the systematic explorer's
// partial-order reduction consumes: one Step per scheduler transition and
// one SelectPoint per ready-select decision.
type DPORObserver interface {
	// Step reports one completed transition. The slices inside st alias
	// runtime state reused on the next transition: clone to retain.
	Step(st SchedStep)
	// SelectPoint reports that decision dec picked among ncases ready
	// select cases on goroutine g.
	SelectPoint(g, dec, ncases int)
}

// DPORSink adapts a DPORObserver to the SchedStep/SelectReady events.
type DPORSink struct {
	Obs DPORObserver
}

// Kinds implements event.Sink.
func (s DPORSink) Kinds() []event.Kind {
	return []event.Kind{event.Sched, event.SelectReady}
}

// Event implements event.Sink.
func (s DPORSink) Event(ev *event.Event) {
	if ev.Kind == event.Sched {
		s.Obs.Step(*ev.Sched)
		return
	}
	s.Obs.SelectPoint(ev.G, ev.Dec, ev.Counter)
}
